// Manufacturers: the §4.5/Fig. 5 per-manufacturer protocol through the
// public API — train and evaluate separately on each anonymized DRAM
// manufacturer's nodes and compare against the whole-system model.
//
// Run with:
//
//	go run ./examples/manufacturers
package main

import (
	"fmt"
	"os"

	uerl "repro"
)

func main() {
	// A somewhat larger population so each manufacturer partition keeps a
	// few uncorrected errors.
	sys := uerl.NewSystem(uerl.WithBudgetCI(), uerl.WithScale(0.08))

	st := sys.LogStats()
	fmt.Printf("whole system: %d first UEs (A=%d B=%d C=%d)\n\n", st.FirstUEs,
		st.PerManufacturerUEs[0], st.PerManufacturerUEs[1], st.PerManufacturerUEs[2])

	fmt.Println("== MN/All: one model for the whole system ==")
	sys.Evaluate().Render(os.Stdout)

	for _, m := range []string{"A", "B", "C"} {
		fmt.Printf("\n== MN/%s: separate model for manufacturer %s ==\n", m, m)
		rep, err := sys.EvaluateManufacturer(m)
		if err != nil {
			fmt.Printf("  skipped: %v\n", err)
			continue
		}
		rep.Render(os.Stdout)
	}
}
