// Checkpointing: drive a checkpoint controller from the trained agent's
// decisions for a long-running job on a node with a degrading DIMM, and
// compare the lost node–hours against fixed-interval checkpointing and no
// checkpointing when an uncorrected error strikes.
//
// This is the paper's motivating scenario (§1): the agent is mitigation-
// method agnostic — here the mitigation action is "write a checkpoint",
// costing 2 node-minutes, and a UE loses everything since the last
// checkpoint.
//
// Run with:
//
//	go run ./examples/checkpointing
package main

import (
	"fmt"
	"os"
	"time"

	uerl "repro"
)

const (
	jobNodes        = 256
	checkpointCost  = 2.0 / 60 // node-hours per checkpoint action
	ueAtHour        = 36       // the uncorrected error strikes 36h into the job
	jobDurationHour = 48
)

// degradationTrace returns the node's telemetry during the job: quiet for
// the first day, then an escalating corrected-error storm and a firmware
// warning in the hours before the UE.
func degradationTrace(start time.Time) []uerl.Event {
	var evs []uerl.Event
	evs = append(evs, uerl.Event{Time: start, Node: 1, Type: uerl.NodeBoot,
		DIMM: -1, Rank: -1, Bank: -1, Row: -1, Col: -1})
	// Background: one small CE record every 4 hours.
	for h := 4; h < ueAtHour; h += 4 {
		evs = append(evs, uerl.Event{
			Time: start.Add(time.Duration(h) * time.Hour),
			Node: 1, DIMM: 8, Type: uerl.CorrectedError, Count: 2,
			Rank: 0, Bank: 1, Row: 900, Col: 12,
		})
	}
	// Escalation in the final 6 hours: dense, large CE records.
	for m := 0; m < 6*60; m += 10 {
		evs = append(evs, uerl.Event{
			Time: start.Add(time.Duration(ueAtHour-6)*time.Hour + time.Duration(m)*time.Minute),
			Node: 1, DIMM: 8, Type: uerl.CorrectedError, Count: 400,
			Rank: 0, Bank: 1, Row: 901, Col: 12,
		})
	}
	evs = append(evs, uerl.Event{
		Time: start.Add(time.Duration(ueAtHour)*time.Hour - 90*time.Minute),
		Node: 1, DIMM: 8, Type: uerl.UEWarning, Rank: -1, Bank: -1, Row: -1, Col: -1,
	})
	return evs
}

func main() {
	fmt.Println("training agent on synthetic cluster history...")
	sys := uerl.NewSystem(uerl.WithBudgetCI())
	policy, err := sys.TrainPolicy(uerl.PolicyRL)
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkpointing:", err)
		os.Exit(1)
	}

	start := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	ueTime := start.Add(ueAtHour * time.Hour)
	trace := degradationTrace(start)

	// Strategy 1: RL-driven checkpointing — consult the agent at every
	// telemetry event with the current potential loss (Eq. 3).
	ctl := uerl.NewController(policy)
	lastCkpt := start
	rlCheckpoints := 0
	for _, ev := range trace {
		if ev.Time.After(ueTime) {
			break
		}
		ctl.ObserveEvent(ev)
		potential := float64(jobNodes) * ev.Time.Sub(lastCkpt).Hours()
		if ctl.Recommend(1, ev.Time, potential).Mitigate() {
			lastCkpt = ev.Time
			rlCheckpoints++
		}
	}
	rlLost := float64(jobNodes)*ueTime.Sub(lastCkpt).Hours() + float64(rlCheckpoints)*checkpointCost

	// Strategy 2: fixed 6-hour checkpoint interval, blind to telemetry.
	fixedCkpts := 0
	lastCkpt = start
	for t := start.Add(6 * time.Hour); t.Before(ueTime); t = t.Add(6 * time.Hour) {
		lastCkpt = t
		fixedCkpts++
	}
	fixedLost := float64(jobNodes)*ueTime.Sub(lastCkpt).Hours() + float64(fixedCkpts)*checkpointCost

	// Strategy 3: no checkpointing.
	noneLost := float64(jobNodes) * ueTime.Sub(start).Hours()

	fmt.Printf("\n%d-node job, UE strikes at hour %d of %d:\n", jobNodes, ueAtHour, jobDurationHour)
	fmt.Printf("  no checkpointing:       %8.1f node-hours lost\n", noneLost)
	fmt.Printf("  fixed 6h interval:      %8.1f node-hours lost (%d checkpoints)\n", fixedLost, fixedCkpts)
	fmt.Printf("  RL-driven:              %8.1f node-hours lost (%d checkpoints)\n", rlLost, rlCheckpoints)
	if rlLost < noneLost {
		fmt.Printf("\nthe agent checkpointed on the pre-UE signature, saving %.1f node-hours vs none\n",
			noneLost-rlLost)
	}
}
