// Quickstart: generate a small synthetic MareNostrum-style world, run the
// paper's cost–benefit evaluation, then train the RL policy, persist it as
// a versioned model artifact, and serve it through the concurrent
// Controller API the way a production daemon would.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	uerl "repro"
)

func main() {
	// BudgetCI keeps everything in seconds: a ~120-node cluster over two
	// years with the paper's fault-model calibration. Options stack on the
	// paper's defaults; see WithScale, WithMitigationCost, ... for more.
	fmt.Println("== generating synthetic cluster history ==")
	sys := uerl.NewSystem(uerl.WithBudgetCI(), uerl.WithSeed(42))
	st := sys.LogStats()
	fmt.Printf("error log: %d events, %d corrected errors, %d uncorrected errors (%d after burst reduction)\n\n",
		st.Events, st.TotalCEs, st.UEs, st.FirstUEs)

	fmt.Println("== cost-benefit evaluation (time-series nested cross-validation) ==")
	rep := sys.Evaluate()
	rep.Render(os.Stdout)
	if never, ok := rep.Find("Never-mitigate"); ok {
		if rl, ok := rep.Find("RL"); ok && never.TotalNodeHours > 0 {
			fmt.Printf("\nRL saves %.0f%% of lost compute vs no mitigation\n",
				100*(1-rl.TotalNodeHours/never.TotalNodeHours))
		}
	}

	// Train the RL policy and round-trip it through the versioned model
	// format — the artifact a fleet daemon would ship to its nodes. Any
	// §4.2 kind works here: try uerl.PolicySC20RF or uerl.PolicyAlways.
	fmt.Println("\n== training and persisting the serving policy ==")
	trained, err := sys.TrainPolicy(uerl.PolicyRL)
	if err != nil {
		fail(err)
	}
	path := "quickstart-model.json"
	if err := uerl.SaveModelFile(path, trained); err != nil {
		fail(err)
	}
	defer os.Remove(path)
	policy, err := uerl.LoadModelFile(path)
	if err != nil {
		fail(err)
	}
	fmt.Printf("model artifact: kind=%s version=%s\n", policy.Kind(), policy.Version())

	fmt.Println("\n== live controller demo ==")
	ctl := uerl.NewController(policy, uerl.WithShards(8))

	now := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	// Node 7 is healthy; node 8 shows an escalating corrected-error storm
	// plus a firmware warning — the pre-UE signature. Batch ingestion
	// takes each shard's lock once for the whole batch.
	events := []uerl.Event{
		{Time: now, Node: 7, Type: uerl.NodeBoot, DIMM: -1, Rank: -1, Bank: -1, Row: -1, Col: -1},
	}
	for i := 0; i < 40; i++ {
		events = append(events, uerl.Event{
			Time: now.Add(time.Duration(i) * time.Minute),
			Node: 8, DIMM: 64, Type: uerl.CorrectedError, Count: 500,
			Rank: 0, Bank: 3, Row: 4000 + i%3, Col: 17,
		})
	}
	events = append(events, uerl.Event{Time: now.Add(40 * time.Minute), Node: 8, DIMM: 64,
		Type: uerl.UEWarning, Rank: -1, Bank: -1, Row: -1, Col: -1})
	if _, err := ctl.ObserveBatch(context.Background(), events); err != nil {
		fail(err)
	}

	for _, c := range []struct {
		node int
		cost float64
		desc string
	}{
		{7, 10, "healthy node, small job"},
		{7, 20000, "healthy node, huge job"},
		{8, 10, "degrading node, small job"},
		{8, 20000, "degrading node, huge job"},
	} {
		// Recommend is side-effect-free: polling never changes features.
		d := ctl.Recommend(c.node, now.Add(time.Hour), c.cost)
		detail := fmt.Sprintf("score=%+.2f", d.Score)
		if d.HasQ { // Q-values only exist for the RL policy
			detail = fmt.Sprintf("Q=[%.2f %.2f]", d.QValues[0], d.QValues[1])
		}
		fmt.Printf("  node %d, potential loss %7.0f node-hours (%s): %-8s %s\n",
			c.node, c.cost, c.desc, d.Action, detail)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "quickstart:", err)
	os.Exit(1)
}
