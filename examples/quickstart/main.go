// Quickstart: generate a small synthetic MareNostrum-style world, run the
// paper's cost–benefit evaluation, then train an agent and ask it for live
// mitigation recommendations through the Controller API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	uerl "repro"
)

func main() {
	// BudgetCI keeps everything in seconds: a ~120-node cluster over two
	// years with the paper's fault-model calibration.
	cfg := uerl.DefaultConfig(uerl.BudgetCI)
	cfg.Seed = 42

	fmt.Println("== generating synthetic cluster history ==")
	sys := uerl.NewSystem(cfg)
	st := sys.LogStats()
	fmt.Printf("error log: %d events, %d corrected errors, %d uncorrected errors (%d after burst reduction)\n\n",
		st.Events, st.TotalCEs, st.UEs, st.FirstUEs)

	fmt.Println("== cost-benefit evaluation (time-series nested cross-validation) ==")
	rep := sys.Evaluate()
	rep.Render(os.Stdout)
	if never, ok := rep.Find("Never-mitigate"); ok {
		if rl, ok := rep.Find("RL"); ok && never.TotalNodeHours > 0 {
			fmt.Printf("\nRL saves %.0f%% of lost compute vs no mitigation\n",
				100*(1-rl.TotalNodeHours/never.TotalNodeHours))
		}
	}

	fmt.Println("\n== live controller demo ==")
	agent := sys.TrainAgent()
	ctl := uerl.NewController(agent)

	now := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	// Node 7 is healthy; node 8 shows an escalating corrected-error storm
	// plus a firmware warning — the pre-UE signature.
	ctl.ObserveEvent(uerl.Event{Time: now, Node: 7, Type: uerl.NodeBoot, DIMM: -1, Rank: -1, Bank: -1, Row: -1, Col: -1})
	for i := 0; i < 40; i++ {
		ctl.ObserveEvent(uerl.Event{
			Time: now.Add(time.Duration(i) * time.Minute),
			Node: 8, DIMM: 64, Type: uerl.CorrectedError, Count: 500,
			Rank: 0, Bank: 3, Row: 4000 + i%3, Col: 17,
		})
	}
	ctl.ObserveEvent(uerl.Event{Time: now.Add(40 * time.Minute), Node: 8, DIMM: 64,
		Type: uerl.UEWarning, Rank: -1, Bank: -1, Row: -1, Col: -1})

	for _, c := range []struct {
		node int
		cost float64
		desc string
	}{
		{7, 10, "healthy node, small job"},
		{7, 20000, "healthy node, huge job"},
		{8, 10, "degrading node, small job"},
		{8, 20000, "degrading node, huge job"},
	} {
		rec := ctl.Recommend(c.node, now.Add(time.Hour), c.cost)
		fmt.Printf("  node %d, potential loss %7.0f node-hours (%s): mitigate=%v\n",
			c.node, c.cost, c.desc, rec)
	}
}
