// Jobsweep: the §5.6/Fig. 7 job-size sensitivity analysis through the
// public API — re-train and re-evaluate with job sizes scaled from 0.1x to
// 10x the MareNostrum 4 distribution, and report where the best static
// policy flips from Never-mitigate to Always-mitigate while the RL agent
// adapts automatically.
//
// Run with:
//
//	go run ./examples/jobsweep
package main

import (
	"fmt"

	uerl "repro"
)

func main() {
	sys := uerl.NewSystem(uerl.WithBudgetCI())

	factors := []float64{0.1, 0.3, 1, 3, 10}
	fmt.Println("total cost (node-hours) vs job size scaling factor, 2 node-minute mitigation")
	fmt.Printf("%-8s %12s %12s %12s %12s\n", "factor", "Never", "Always", "RL", "Oracle")
	for _, f := range factors {
		rep, err := sys.EvaluateJobScale(f)
		if err != nil {
			fmt.Printf("x%-7g failed: %v\n", f, err)
			continue
		}
		never, _ := rep.Find("Never-mitigate")
		always, _ := rep.Find("Always-mitigate")
		rl, _ := rep.Find("RL")
		oracle, _ := rep.Find("Oracle")
		fmt.Printf("x%-7g %12.0f %12.0f %12.0f %12.0f\n", f,
			never.TotalNodeHours, always.TotalNodeHours,
			rl.TotalNodeHours, oracle.TotalNodeHours)
	}
	fmt.Println("\nexpected shape: Never wins at small factors (mitigation overhead dominates),")
	fmt.Println("Always wins at large factors, and RL tracks the better of the two or beats both.")
}
