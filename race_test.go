//go:build race

package uerl

// raceEnabled reports that this test binary was built with -race. The
// race detector's instrumentation makes sync.Pool fall back to allocating,
// so allocation-count assertions are skipped under it.
const raceEnabled = true
