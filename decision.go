package uerl

import (
	"time"

	"repro/internal/features"
)

// FeatureDim is the length of the Table 1 feature vector exchanged across
// the serving API (raw, un-normalized, in the internal/features layout:
// CE counts and spatial spread, UE warnings, boot state, the Eq. 2
// variation ratios, and the Eq. 3 potential UE cost as the last element).
const FeatureDim = features.Dim

// Action is a mitigation decision.
type Action int

const (
	// ActionNone leaves the node alone.
	ActionNone Action = iota
	// ActionMitigate triggers the configured mitigation (checkpoint, live
	// migration or node clone — the agent is mitigation-method agnostic).
	ActionMitigate
)

// String returns "none" or "mitigate".
func (a Action) String() string {
	if a == ActionMitigate {
		return "mitigate"
	}
	return "none"
}

// Snapshot is the per-node state handed to a Policy at a decision point:
// the node, the decision time, and the raw Table 1 feature vector
// (potential UE cost included). Features is an inline array, so snapshots
// have pure value semantics: building one allocates nothing and a Policy
// may retain its copy freely.
type Snapshot struct {
	Node     int
	Time     time.Time
	Features [FeatureDim]float64
}

// vector converts the snapshot features back to the internal layout.
func (s Snapshot) vector() features.Vector {
	return features.Vector(s.Features)
}

// Decision is a full serving answer: the action plus everything an
// operator needs to audit it — the policy's confidence score, the raw
// Q-values when the policy is a Q-network, the feature snapshot the
// decision was made on, and the version of the model that made it.
//
// Decisions are plain values: the feature snapshot and Q-values are inline
// arrays, so the Recommend hot path returns a fully populated Decision
// without a single heap allocation, and callers can retain or compare
// decisions (==) freely.
type Decision struct {
	// Node and Time identify the decision point.
	Node int
	Time time.Time
	// Action is the recommended action.
	Action Action
	// Score is a policy-specific confidence signal; larger means a
	// stronger preference to mitigate, and zero crossing is the decision
	// boundary (Q-value gap for RL, probability margin over the threshold
	// for the forest policies, expected-cost margin for Myopic-RF).
	Score float64
	// QValues holds the Q-network outputs [Q(none), Q(mitigate)] when the
	// serving policy is the RL agent (HasQ true); zero otherwise.
	QValues [2]float64
	// HasQ reports whether QValues carries real Q-network outputs.
	HasQ bool
	// Features is the raw Table 1 feature snapshot the decision used.
	Features [FeatureDim]float64
	// Policy is the serving policy's report name.
	Policy string
	// ModelVersion identifies the model artifact (see Policy.Version).
	ModelVersion string
	// Vetoed reports that the serving policy recommended mitigation but
	// an attached Guard suppressed it against a tripped budget: Action is
	// ActionNone while Score/QValues still carry the policy's judgment,
	// so audits can see both what the model wanted and what the guard
	// allowed. VetoReason names the tripped budget.
	Vetoed bool
	// VetoReason names the budget that suppressed the mitigation (see
	// the guard package's Reason constants); empty when Vetoed is false.
	VetoReason string
	// Degraded reports that distributed serving could not reach the
	// worker owning this node (dead, hung, or backing off between
	// retries) and answered conservatively instead of blocking or
	// erroring: Action is ActionNone and the feature snapshot is empty.
	// The contract mirrors Vetoed — serving stays live, the caller can
	// see exactly why the answer is weaker than usual.
	Degraded bool
	// DegradeReason names the fault behind a degraded answer (see the
	// fleet package's Degrade* constants); empty when Degraded is false.
	DegradeReason string
	// StaleEvents bounds how stale the node state behind this decision
	// is under distributed serving: the number of this node's journaled
	// events not yet applied to the answering worker (replay pending)
	// plus any events that aged out of the bounded journal before a
	// failover could replay them (lost to rebuild). Zero in
	// single-process serving and whenever the owning worker is fully
	// caught up.
	StaleEvents int
}

// Mitigate reports whether the decision is to mitigate.
func (d Decision) Mitigate() bool { return d.Action == ActionMitigate }
