package uerl

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/errlog"
	"repro/internal/features"
)

// EventType classifies a telemetry event fed to a Controller.
type EventType int

const (
	// CorrectedError is an ECC-corrected memory error record (possibly
	// representing several errors via Count).
	CorrectedError EventType = iota
	// UEWarning is a firmware warning (correctable logging limit reached
	// or thermal throttling).
	UEWarning
	// NodeBoot marks a node (re)boot.
	NodeBoot
	// UncorrectedError is a realized uncorrected error — the outcome the
	// serving policies try to predict. Reporting it keeps the node's
	// feature history faithful and, when an OnlineLearner taps the
	// controller, supplies the realized-outcome signal continual learning
	// and shadow evaluation are driven by.
	UncorrectedError
)

// Event is one node telemetry record, the online analogue of the log
// records of §2.1. Location fields may be left -1 when unknown.
type Event struct {
	Time                 time.Time
	Node                 int
	DIMM                 int
	Type                 EventType
	Count                int
	Rank, Bank, Row, Col int
}

// toErrlog converts the public event to the internal log record.
func (e Event) toErrlog() errlog.Event {
	var ev errlog.Event
	ev.Time = e.Time
	ev.Node = e.Node
	ev.DIMM = e.DIMM
	ev.Count = e.Count
	if ev.Count <= 0 {
		ev.Count = 1
	}
	ev.Rank, ev.Bank, ev.Row, ev.Col = e.Rank, e.Bank, e.Row, e.Col
	switch e.Type {
	case CorrectedError:
		ev.Type = errlog.CE
	case UEWarning:
		ev.Type = errlog.UEWarning
	case NodeBoot:
		ev.Type = errlog.Boot
	case UncorrectedError:
		ev.Type = errlog.UE
	}
	return ev
}

// ctlShard owns the feature trackers of one slice of the node space.
type ctlShard struct {
	mu sync.RWMutex
	//uerl:guarded-by mu
	trackers map[int]*features.Tracker
	// evBuf backs the single-event tick handed to Tracker.Observe, so
	// ingesting an event allocates nothing. Guarded by mu; Observe does
	// not retain the events slice.
	//uerl:guarded-by mu
	evBuf [1]errlog.Event
}

// Controller is the serving layer of Fig. 1: it consumes a live stream of
// node telemetry events, maintains per-node Table 1 feature state, and
// answers mitigation queries with full Decisions from a pluggable Policy.
//
// The controller is safe for concurrent use. Node state is partitioned
// across shards (WithShards); events for different nodes proceed in
// parallel, and Recommend takes only a read lock, so a fleet poller never
// blocks ingestion. Events must arrive in non-decreasing time order per
// node; different nodes are independent.
//
// The serving policy is held behind an atomic pointer: SwapPolicy
// installs a retrained model with a single pointer swap, so hot-swapping
// never drops, blocks or torn-reads a concurrent Recommend, and all
// tracker state survives the swap.
type Controller struct {
	// policy is the hot-swappable serving policy. Everything outside the
	// three accessors — including the rest of this package — must go
	// through Policy()/SwapPolicy(), so a swap is always one atomic
	// pointer exchange and never a torn read; uerlvet enforces the list.
	//uerl:restrict-to NewController,Policy,SwapPolicy
	policy atomic.Pointer[Policy]
	// guard optionally vetoes mitigation recommendations against tripped
	// budgets, independent of the serving policy and of any learner
	// driving it; NewGuard attaches it exactly once. Unguarded
	// controllers pay one nil atomic load per Recommend.
	guard  atomic.Pointer[Guard]
	now    func() time.Time
	shards []*ctlShard
	mask   uint64
	// batchPool recycles ObserveBatch's per-shard bucket sets so batched
	// ingestion is allocation-free in steady state: the bucket slices grow
	// to the working batch shape once and are then reused (truncated, not
	// cleared) across calls, including concurrent ones.
	batchPool sync.Pool
}

// NewController builds a serving controller around a policy. Any Policy
// works — the trained RL agent, a §4.2 baseline, a LoadModel artifact, or
// a custom implementation (which must be safe for concurrent use).
func NewController(policy Policy, opts ...ControllerOption) *Controller {
	cfg := defaultControllerConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if policy == nil {
		panic("uerl: NewController with nil policy")
	}
	n := ceilPow2(cfg.shards)
	c := &Controller{
		now:    cfg.now,
		shards: make([]*ctlShard, n),
		mask:   uint64(n - 1),
	}
	c.policy.Store(&policy)
	for i := range c.shards {
		c.shards[i] = &ctlShard{trackers: map[int]*features.Tracker{}}
	}
	c.batchPool.New = func() any {
		b := make([][]Event, n)
		return &b
	}
	return c
}

// Policy returns the currently served policy.
func (c *Controller) Policy() Policy { return *c.policy.Load() }

// SwapPolicy atomically installs a new serving policy and returns the one
// it replaces — the hot-swap step of the online model lifecycle. The swap
// is a single pointer exchange: concurrent Recommend calls are never
// dropped or blocked, each completes against whichever policy it loaded
// at entry, and per-node tracker state (feature histories) carries over
// untouched. The new policy must be safe for concurrent use, like any
// policy served by a controller.
func (c *Controller) SwapPolicy(p Policy) Policy {
	if p == nil {
		panic("uerl: SwapPolicy with nil policy")
	}
	return *c.policy.Swap(&p)
}

// DeployPolicy installs a new serving policy and returns the one it
// replaces — the Serving-interface form of SwapPolicy. On a single
// controller deployment is a local atomic swap and never fails; the error
// return exists so distributed implementations (a fleet coordinator
// staging the artifact to workers and committing on quorum) satisfy the
// same interface, and so the OnlineLearner can treat a failed rollout as
// a rejected candidate instead of a promotion.
func (c *Controller) DeployPolicy(p Policy) (Policy, error) {
	return c.SwapPolicy(p), nil
}

// ShardCount reports the number of tracker shards.
func (c *Controller) ShardCount() int { return len(c.shards) }

// shardIndex maps a node id to its shard (Fibonacci hashing, so dense
// sequential node ids spread across shards instead of clustering).
func (c *Controller) shardIndex(node int) uint64 {
	return (uint64(node) * 0x9E3779B97F4A7C15 >> 32) & c.mask
}

// ObserveEvent ingests one telemetry event.
//
//uerl:hotpath
func (c *Controller) ObserveEvent(e Event) {
	sh := c.shards[c.shardIndex(e.Node)]
	sh.mu.Lock()
	sh.observe(e)
	sh.mu.Unlock()
}

// observe applies one event to the shard; the caller holds the write lock.
//
//uerl:hotpath
//uerl:locked mu
func (sh *ctlShard) observe(e Event) {
	tr, ok := sh.trackers[e.Node]
	if !ok {
		tr = features.NewTracker()
		sh.trackers[e.Node] = tr
	}
	sh.evBuf[0] = e.toErrlog()
	tr.Observe(errlog.Tick{Time: e.Time, Node: e.Node, Events: sh.evBuf[:]}, 0)
}

// ObserveBatch ingests a batch of telemetry events, taking each shard's
// lock once instead of once per event. The relative order of events for
// the same node is preserved. It returns the number of events ingested;
// when ctx is cancelled mid-batch, ingestion stops at a shard boundary
// and the context error is returned. A cancelled batch is partially
// applied — events are not idempotent (re-observing double-counts CEs),
// so treat unprocessed nodes as stale and rebuild them from the log
// rather than re-sending the whole batch.
//
//uerl:hotpath
func (c *Controller) ObserveBatch(ctx context.Context, events []Event) (int, error) {
	if len(events) == 0 {
		return 0, nil
	}
	bp := c.batchPool.Get().(*[][]Event)
	buckets := *bp
	//uerl:alloc-ok open-coded defer whose closure stays on the stack; ObserveBatch is alloc-asserted at 0 allocs/op steady state
	defer func() {
		// Truncate (keeping capacity) so the next batch reuses the grown
		// slices; stale Event values behind len are never read.
		for i := range buckets {
			buckets[i] = buckets[i][:0]
		}
		*bp = buckets
		c.batchPool.Put(bp)
	}()
	for _, e := range events {
		i := c.shardIndex(e.Node)
		buckets[i] = append(buckets[i], e) //uerl:alloc-ok pooled buckets grow to the working batch shape once, then recycle via batchPool (alloc-asserted)
	}
	ingested := 0
	for i, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return ingested, err
		}
		sh := c.shards[i]
		sh.mu.Lock()
		for _, e := range bucket {
			sh.observe(e)
		}
		sh.mu.Unlock()
		ingested += len(bucket)
	}
	return ingested, nil
}

// peek reads a node's feature vector side-effect-free under the shard's
// read lock; unknown nodes report the empty feature state.
//
//uerl:hotpath
func (c *Controller) peek(node int, at time.Time, cost float64) features.Vector {
	sh := c.shards[c.shardIndex(node)]
	var v features.Vector
	sh.mu.RLock()
	if tr, ok := sh.trackers[node]; ok {
		v = tr.Peek(at, cost)
	} else {
		v[features.UECost] = cost
	}
	sh.mu.RUnlock()
	return v
}

// Recommend asks the policy whether to mitigate on the node at time at,
// given the potential UE cost of Eq. 3 (running job's node count ×
// node–hours lost if a UE struck now — the only workload input the model
// needs). The query is side-effect-free: it reads the node's features
// under a shared lock without recording anything, so polling a node any
// number of times never changes its state. Unknown nodes answer from the
// empty feature state. at should not precede the node's last observed
// event — a lagging poller clock inflates the Eq. 2 variation features.
//
//uerl:hotpath
func (c *Controller) Recommend(node int, at time.Time, potentialCostNodeHours float64) Decision {
	// Load the policy once (through the accessor): a concurrent
	// SwapPolicy must not mix two models' outputs within one decision.
	policy := c.Policy()
	v := c.peek(node, at, potentialCostNodeHours)
	d := policy.Decide(Snapshot{Node: node, Time: at, Features: v})
	// Normalize bookkeeping so custom policies can leave it to us. The
	// snapshot and decision are plain values (inline feature arrays), so
	// this whole query path performs zero heap allocations. Features is
	// authoritative: the controller always records the exact snapshot it
	// handed the policy, so audits see the true decision inputs even if a
	// custom policy wrote something else there.
	d.Node, d.Time = node, at
	d.Features = v
	if d.Policy == "" {
		d.Policy = policy.Name()
	}
	if d.ModelVersion == "" {
		d.ModelVersion = policy.Version()
	}
	// Guard consult: a tripped mitigation budget degrades the decision to
	// ActionNone instead of serving it — graceful suppression, never an
	// error. The check is read-shaped (window expiry only), so Recommend
	// stays side-effect-free w.r.t. node state and allocation-free; budget
	// accounting is charged from the served-decision stream (see
	// Guard.ObserveDecision), not from polling.
	if g := c.guard.Load(); g != nil && d.Mitigate() {
		if ok, reason := g.allowMitigation(node, at); !ok {
			d.Action = ActionNone
			d.Vetoed = true
			d.VetoReason = reason
		}
	}
	return d
}

// attachGuard installs g as the controller's mitigation gate. One guard
// per controller: NewGuard calls this, and a second attachment panics.
func (c *Controller) attachGuard(g *Guard) {
	if !c.guard.CompareAndSwap(nil, g) {
		panic("uerl: controller already has a guard attached")
	}
}

// RecommendNow is Recommend at the controller clock's current time (see
// WithNowFunc).
func (c *Controller) RecommendNow(node int, potentialCostNodeHours float64) Decision {
	return c.Recommend(node, c.now(), potentialCostNodeHours)
}

// Features returns the node's raw Table 1 feature vector as it would be
// reported at time at with the given potential UE cost — the same
// side-effect-free read Recommend uses, exposed for observability. The
// result is a value (comparable with ==) and the call does not allocate.
func (c *Controller) Features(node int, at time.Time, potentialCostNodeHours float64) [FeatureDim]float64 {
	v := c.peek(node, at, potentialCostNodeHours)
	return v
}

// Forget drops a node's accumulated state (e.g. after DIMM replacement).
func (c *Controller) Forget(node int) {
	sh := c.shards[c.shardIndex(node)]
	sh.mu.Lock()
	delete(sh.trackers, node)
	sh.mu.Unlock()
}

// NodeCount reports the number of nodes with tracked state.
func (c *Controller) NodeCount() int {
	total := 0
	for _, sh := range c.shards {
		sh.mu.RLock()
		total += len(sh.trackers)
		sh.mu.RUnlock()
	}
	return total
}
