package uerl

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/errlog"
	"repro/internal/evalx"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/rl"
)

// EventType classifies a telemetry event fed to a Controller.
type EventType int

const (
	// CorrectedError is an ECC-corrected memory error record (possibly
	// representing several errors via Count).
	CorrectedError EventType = iota
	// UEWarning is a firmware warning (correctable logging limit reached
	// or thermal throttling).
	UEWarning
	// NodeBoot marks a node (re)boot.
	NodeBoot
)

// Event is one node telemetry record, the online analogue of the log
// records of §2.1. Location fields may be left -1 when unknown.
type Event struct {
	Time                 time.Time
	Node                 int
	DIMM                 int
	Type                 EventType
	Count                int
	Rank, Bank, Row, Col int
}

// Agent is a trained mitigation agent plus the evaluation artifacts
// produced alongside it.
type Agent struct {
	policy rl.Policy
	net    *nn.Network
}

// TrainAgent trains an agent on the system's synthetic history using the
// paper's protocol (training on the first 75% of the log). The budget in
// the system's Config controls the episode and search budget.
func (s *System) TrainAgent() *Agent {
	split := evalx.TrainSingleSplit(s.world.Log, s.world.Trace, s.cvConfig(), 0.75)
	a := &Agent{policy: split.Policy}
	if split.Agent != nil {
		a.net = split.Agent.Online().Clone()
		pol := a.net
		scr := pol.NewScratch()
		a.policy = rl.PolicyFunc(func(state []float64) int {
			q := pol.ForwardInto(scr, state)
			if q[1] > q[0] {
				return 1
			}
			return 0
		})
	}
	return a
}

// MarshalJSON serializes the agent's network.
func (a *Agent) MarshalJSON() ([]byte, error) {
	if a.net == nil {
		return nil, fmt.Errorf("uerl: agent has no serializable network")
	}
	return json.Marshal(a.net)
}

// UnmarshalJSON restores an agent serialized with MarshalJSON.
func (a *Agent) UnmarshalJSON(data []byte) error {
	var net nn.Network
	if err := json.Unmarshal(data, &net); err != nil {
		return err
	}
	if net.Config().Inputs != features.Dim {
		return fmt.Errorf("uerl: model expects %d inputs, this build uses %d",
			net.Config().Inputs, features.Dim)
	}
	a.net = &net
	scr := net.NewScratch()
	a.policy = rl.PolicyFunc(func(state []float64) int {
		q := a.net.ForwardInto(scr, state)
		if q[1] > q[0] {
			return 1
		}
		return 0
	})
	return nil
}

// Controller consumes a live stream of node telemetry events and
// recommends mitigations — the role of the monitoring-and-preprocessing
// box of Fig. 1 combined with the trained agent. It is not safe for
// concurrent use; wrap with a mutex if needed.
type Controller struct {
	agent    *Agent
	trackers map[int]*features.Tracker
}

// NewController builds a controller around a trained agent.
func NewController(agent *Agent) *Controller {
	return &Controller{agent: agent, trackers: map[int]*features.Tracker{}}
}

// ObserveEvent ingests one telemetry event. Events must arrive in
// non-decreasing time order per node.
func (c *Controller) ObserveEvent(e Event) {
	tr, ok := c.trackers[e.Node]
	if !ok {
		tr = features.NewTracker()
		c.trackers[e.Node] = tr
	}
	var ev errlog.Event
	ev.Time = e.Time
	ev.Node = e.Node
	ev.DIMM = e.DIMM
	ev.Count = e.Count
	if ev.Count <= 0 {
		ev.Count = 1
	}
	ev.Rank, ev.Bank, ev.Row, ev.Col = e.Rank, e.Bank, e.Row, e.Col
	switch e.Type {
	case CorrectedError:
		ev.Type = errlog.CE
	case UEWarning:
		ev.Type = errlog.UEWarning
	case NodeBoot:
		ev.Type = errlog.Boot
	}
	tr.Observe(errlog.Tick{Time: e.Time, Node: e.Node, Events: []errlog.Event{ev}}, 0)
}

// Recommend reports whether the agent would trigger a mitigation on the
// node right now, given the potential UE cost of Eq. 3 (running job's node
// count × node–hours lost if a UE struck now). This is the only workload
// input the model needs.
func (c *Controller) Recommend(node int, now time.Time, potentialCostNodeHours float64) bool {
	tr, ok := c.trackers[node]
	if !ok {
		tr = features.NewTracker()
		c.trackers[node] = tr
	}
	v := tr.Observe(errlog.Tick{Time: now, Node: node}, potentialCostNodeHours)
	return c.agent.policy.Action(v.Normalized()) == 1
}

// Forget drops a node's accumulated state (e.g. after DIMM replacement).
func (c *Controller) Forget(node int) {
	delete(c.trackers, node)
}
