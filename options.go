package uerl

import (
	"runtime"
	"time"
)

// SystemOption configures NewSystem. Options apply on top of the paper's
// default configuration at BudgetCI (see DefaultConfig).
type SystemOption func(*Config)

// WithConfig replaces the whole configuration — the bridge from the old
// Config-struct construction path. Options after it still apply.
func WithConfig(cfg Config) SystemOption {
	return func(c *Config) { *c = cfg }
}

// WithSeed sets the world/training seed.
func WithSeed(seed int64) SystemOption {
	return func(c *Config) { c.Seed = seed }
}

// WithBudget selects the compute budget of training and evaluation.
func WithBudget(b Budget) SystemOption {
	return func(c *Config) { c.Budget = b }
}

// WithBudgetCI selects the seconds-scale CI budget.
func WithBudgetCI() SystemOption { return WithBudget(BudgetCI) }

// WithBudgetDefault selects the minutes-scale default budget.
func WithBudgetDefault() SystemOption { return WithBudget(BudgetDefault) }

// WithBudgetPaper selects the paper's full §4.1 protocol.
func WithBudgetPaper() SystemOption { return WithBudget(BudgetPaper) }

// WithScale multiplies the MareNostrum 3 population (1 = 3056 nodes).
func WithScale(scale float64) SystemOption {
	return func(c *Config) { c.Scale = scale }
}

// WithJobs sets the synthetic MN4 trace length.
func WithJobs(n int) SystemOption {
	return func(c *Config) { c.Jobs = n }
}

// WithJobSizeScale sets the §5.6 job-size scaling factor.
func WithJobSizeScale(f float64) SystemOption {
	return func(c *Config) { c.JobSizeScale = f }
}

// WithMitigationCost sets the per-action mitigation cost in node-minutes
// (the paper's main configuration uses 2).
func WithMitigationCost(nodeMinutes float64) SystemOption {
	return func(c *Config) { c.MitigationCostNodeMinutes = nodeMinutes }
}

// WithRestartable selects whether mitigation establishes a restart point.
func WithRestartable(restartable bool) SystemOption {
	return func(c *Config) { c.Restartable = restartable }
}

// controllerConfig collects NewController options.
type controllerConfig struct {
	shards int
	now    func() time.Time
}

// ControllerOption configures NewController.
type ControllerOption func(*controllerConfig)

// maxShards bounds the shard count; beyond this, shard maps outnumber any
// plausible core count without improving contention.
const maxShards = 1024

// WithShards sets the number of tracker shards (rounded up to a power of
// two, capped at 1024). More shards means less lock contention between
// nodes hashed together; the default scales with GOMAXPROCS.
func WithShards(n int) ControllerOption {
	return func(c *controllerConfig) { c.shards = n }
}

// WithNowFunc sets the controller's clock, used by RecommendNow. Tests and
// replay drivers inject a synthetic clock; the default is time.Now.
func WithNowFunc(now func() time.Time) ControllerOption {
	return func(c *controllerConfig) {
		if now != nil {
			c.now = now
		}
	}
}

// defaultControllerConfig seeds the option struct.
func defaultControllerConfig() controllerConfig {
	return controllerConfig{shards: 2 * runtime.GOMAXPROCS(0), now: time.Now}
}

// ceilPow2 rounds n up to the next power of two, clamped to [1, maxShards].
func ceilPow2(n int) int {
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
