package uerl

import (
	"runtime"
	"time"
)

// SystemOption configures NewSystem. Options apply on top of the paper's
// default configuration at BudgetCI (see DefaultConfig).
type SystemOption func(*Config)

// WithConfig replaces the whole configuration — the bridge from the old
// Config-struct construction path. Options after it still apply.
func WithConfig(cfg Config) SystemOption {
	return func(c *Config) { *c = cfg }
}

// WithSeed sets the world/training seed.
func WithSeed(seed int64) SystemOption {
	return func(c *Config) { c.Seed = seed }
}

// WithBudget selects the compute budget of training and evaluation.
func WithBudget(b Budget) SystemOption {
	return func(c *Config) { c.Budget = b }
}

// WithBudgetCI selects the seconds-scale CI budget.
func WithBudgetCI() SystemOption { return WithBudget(BudgetCI) }

// WithBudgetDefault selects the minutes-scale default budget.
func WithBudgetDefault() SystemOption { return WithBudget(BudgetDefault) }

// WithBudgetPaper selects the paper's full §4.1 protocol.
func WithBudgetPaper() SystemOption { return WithBudget(BudgetPaper) }

// WithScale multiplies the MareNostrum 3 population (1 = 3056 nodes).
func WithScale(scale float64) SystemOption {
	return func(c *Config) { c.Scale = scale }
}

// WithJobs sets the synthetic MN4 trace length.
func WithJobs(n int) SystemOption {
	return func(c *Config) { c.Jobs = n }
}

// WithJobSizeScale sets the §5.6 job-size scaling factor.
func WithJobSizeScale(f float64) SystemOption {
	return func(c *Config) { c.JobSizeScale = f }
}

// WithMitigationCost sets the per-action mitigation cost in node-minutes
// (the paper's main configuration uses 2).
func WithMitigationCost(nodeMinutes float64) SystemOption {
	return func(c *Config) { c.MitigationCostNodeMinutes = nodeMinutes }
}

// WithRestartable selects whether mitigation establishes a restart point.
func WithRestartable(restartable bool) SystemOption {
	return func(c *Config) { c.Restartable = restartable }
}

// controllerConfig collects NewController options.
type controllerConfig struct {
	shards int
	now    func() time.Time
}

// ControllerOption configures NewController.
type ControllerOption func(*controllerConfig)

// maxShards bounds the shard count; beyond this, shard maps outnumber any
// plausible core count without improving contention.
const maxShards = 1024

// WithShards sets the number of tracker shards (rounded up to a power of
// two, capped at 1024). More shards means less lock contention between
// nodes hashed together; the default scales with GOMAXPROCS.
func WithShards(n int) ControllerOption {
	return func(c *controllerConfig) { c.shards = n }
}

// WithNowFunc sets the controller's clock, used by RecommendNow. Tests and
// replay drivers inject a synthetic clock; the default is time.Now.
func WithNowFunc(now func() time.Time) ControllerOption {
	return func(c *controllerConfig) {
		if now != nil {
			c.now = now
		}
	}
}

// defaultControllerConfig seeds the option struct.
func defaultControllerConfig() controllerConfig {
	return controllerConfig{shards: 2 * runtime.GOMAXPROCS(0), now: time.Now}
}

// learnerConfig collects NewOnlineLearner options.
type learnerConfig struct {
	seed                      int64
	cost                      CostFunc
	mitigationCostNodeMinutes float64
	restartable               bool
	rewardScale               float64

	driftThreshold float64
	driftWindow    int

	minExperience  int
	epochSteps     int
	streamCapacity int
	hidden         []int
	kernel         int
	trainWorkers   int

	shadowMinDecisions int
	shadowMinUEs       int

	guard *Guard
	// candidateHook, when set, intercepts every candidate retrain stages
	// (fault-injection seam for guard tests: substitute a deliberately
	// regressive candidate without depending on training outcomes).
	candidateHook func(Policy) Policy

	decisionObserver func(Decision)
	ueObserver       func(node int, at time.Time, realizedNodeHours float64)
}

// LearnerOption configures NewOnlineLearner.
type LearnerOption func(*learnerConfig)

// WithLearnerSeed seeds the continual trainer (weight init and replay
// sampling); the whole lifecycle is bit-reproducible for a fixed seed and
// event stream.
func WithLearnerSeed(seed int64) LearnerOption {
	return func(c *learnerConfig) { c.seed = seed }
}

// WithCostSource sets the potential-UE-cost source (default: a constant
// 100 node–hours).
func WithCostSource(f CostFunc) LearnerOption {
	return func(c *learnerConfig) {
		if f != nil {
			c.cost = f
		}
	}
}

// WithLearnerMitigationCost sets the per-action mitigation cost in
// node-minutes (default 2, the paper's main configuration).
func WithLearnerMitigationCost(nodeMinutes float64) LearnerOption {
	return func(c *learnerConfig) { c.mitigationCostNodeMinutes = nodeMinutes }
}

// WithLearnerRestartable selects whether mitigation establishes a restart
// point (default true), which decides whether caught UEs are charged in
// shadow accounting.
func WithLearnerRestartable(restartable bool) LearnerOption {
	return func(c *learnerConfig) { c.restartable = restartable }
}

// WithDriftDetection sets the drift threshold (standardized mean-shift
// score, default 6) and the tumbling-window sample count (default 512).
func WithDriftDetection(threshold float64, windowSamples int) LearnerOption {
	return func(c *learnerConfig) {
		c.driftThreshold = threshold
		c.driftWindow = windowSamples
	}
}

// WithRetraining sets the minimum ingested transitions between retrains
// (default 512) and the gradient steps per retraining epoch (default 64).
func WithRetraining(minExperience, epochSteps int) LearnerOption {
	return func(c *learnerConfig) {
		c.minExperience = minExperience
		c.epochSteps = epochSteps
	}
}

// WithExperienceCapacity bounds the experience stream (default 16384);
// overflow drops the oldest transitions and is counted in LearnerStats.
func WithExperienceCapacity(n int) LearnerOption {
	return func(c *learnerConfig) { c.streamCapacity = n }
}

// WithShadowGate sets how much shadow traffic a candidate must score
// before promotion is judged: a minimum decision count (default 256) and
// a minimum realized-UE count (default 1). The UE minimum matters: on a
// UE-free window the cost comparison degenerates to mitigation spend
// alone, which systematically favors candidates that mitigate less —
// requiring a realized outcome keeps a do-nothing candidate from winning
// without evidence about the failures it exists to prevent. Setting
// minUEs to 0 trades that safety for faster adaptation (a candidate can
// otherwise sit in shadow until the next UE). Larger gates judge on more
// evidence but leave drifted models serving longer.
func WithShadowGate(minDecisions, minUEs int) LearnerOption {
	return func(c *learnerConfig) {
		c.shadowMinDecisions = minDecisions
		c.shadowMinUEs = minUEs
	}
}

// WithLearnerNetwork sets the continually trained Q-network's hidden
// layers (default 32-16; the serving input/output layout is fixed by the
// feature schema and the two-action decision).
func WithLearnerNetwork(hidden ...int) LearnerOption {
	return func(c *learnerConfig) {
		if len(hidden) > 0 {
			c.hidden = hidden
		}
	}
}

// WithLearnerKernel pins the nn kernel/stream version the continual
// trainer runs under (nn.KernelReference or nn.KernelFast). The default
// (zero) keeps the reference stream, reproducing the training
// trajectories of earlier builds bit-exactly; nn.KernelFast enables the
// FMA kernels and chunked data-parallel gradient reduction, which are
// deterministic for every worker count but round differently. Serving
// inference always uses the reference stream regardless of this setting.
func WithLearnerKernel(kernel int) LearnerOption {
	return func(c *learnerConfig) { c.kernel = kernel }
}

// WithLearnerTrainWorkers bounds the workers computing minibatch chunk
// gradients when the learner trains under nn.KernelFast (0 means
// GOMAXPROCS). The trained weights are bit-identical for every value.
func WithLearnerTrainWorkers(n int) LearnerOption {
	return func(c *learnerConfig) { c.trainWorkers = n }
}

// WithGuard attaches a Guard to the learner: the learner routes every
// served decision and realized UE through it for budget accounting and
// probation scoring, submits every shadow-winning candidate to its
// promotion gates (budget + approval hook), and merges its audit events
// into the lifecycle log. The guard must wrap the same controller the
// learner serves (NewOnlineLearner panics otherwise). WithGuard is a
// single-process option: under a distributed serving layer
// (NewServingLearner over a fleet coordinator) guards attach per worker
// and the coordinator routes decision accounting to them, so passing
// WithGuard there panics too.
func WithGuard(g *Guard) LearnerOption {
	return func(c *learnerConfig) { c.guard = g }
}

// WithDecisionObserver taps the served decision stream: f is called for
// every decision the learner processes, after budget accounting, with the
// decision exactly as the fleet saw it (vetoes included). Scenario
// harnesses and metrics layers use it to score survival without a second
// Recommend pass; f runs under the learner lock and must not call back
// into the learner or controller.
func WithDecisionObserver(f func(Decision)) LearnerOption {
	return func(c *learnerConfig) { c.decisionObserver = f }
}

// WithUEObserver taps the realized-outcome stream: f is called for every
// UncorrectedError event the learner processes, with the realized cost
// the configured CostSource charged. The same restrictions as
// WithDecisionObserver apply.
func WithUEObserver(f func(node int, at time.Time, realizedNodeHours float64)) LearnerOption {
	return func(c *learnerConfig) { c.ueObserver = f }
}

// withCandidateHook intercepts staged candidates (test seam; see
// learnerConfig.candidateHook).
func withCandidateHook(hook func(Policy) Policy) LearnerOption {
	return func(c *learnerConfig) { c.candidateHook = hook }
}

// defaultLearnerConfig seeds the learner option struct.
func defaultLearnerConfig() learnerConfig {
	return learnerConfig{
		seed:                      1,
		cost:                      ConstantCost(100),
		mitigationCostNodeMinutes: 2,
		restartable:               true,
		rewardScale:               0.05,
		driftThreshold:            6,
		driftWindow:               512,
		minExperience:             512,
		epochSteps:                64,
		streamCapacity:            1 << 14,
		hidden:                    []int{32, 16},
		shadowMinDecisions:        256,
		shadowMinUEs:              1,
	}
}

// guardConfig collects NewGuard options.
type guardConfig struct {
	mitigationCostNodeMinutes float64
	restartable               bool

	nodeBudgetNodeHours float64
	nodeWindow          time.Duration
	fleetMitigations    int
	fleetWindow         time.Duration
	promotionsPerWindow int
	promotionWindow     time.Duration

	hook                 ApprovalHook
	probationDecisions   int
	probationToleranceNH float64
}

// GuardOption configures NewGuard.
type GuardOption func(*guardConfig)

// WithNodeCheckpointBudget caps the checkpoint node-hours any single
// node may spend on mitigation within a sliding window (default window
// 24h). Beyond the cap, that node's mitigations are suppressed (served
// as ActionNone with Decision.Vetoed set) until spend slides back under.
// nodeHours <= 0 disables the budget (the default).
func WithNodeCheckpointBudget(nodeHours float64, window time.Duration) GuardOption {
	return func(c *guardConfig) {
		c.nodeBudgetNodeHours = nodeHours
		if window > 0 {
			c.nodeWindow = window
		}
	}
}

// WithFleetMitigationBudget caps the fleet-wide mitigation count within
// a sliding window (default window 1h) — the blast-radius limit against
// a policy gone mitigation-happy. max <= 0 disables (the default).
func WithFleetMitigationBudget(max int, window time.Duration) GuardOption {
	return func(c *guardConfig) {
		c.fleetMitigations = max
		if window > 0 {
			c.fleetWindow = window
		}
	}
}

// WithPromotionBudget caps promotions per sliding 24h window; further
// shadow-winning candidates are frozen (discarded with a budget-trip
// audit event) until the window slides. perDay <= 0 disables (the
// default).
func WithPromotionBudget(perDay int) GuardOption {
	return func(c *guardConfig) {
		c.promotionsPerWindow = perDay
		c.promotionWindow = 24 * time.Hour
	}
}

// WithApprovalHook sets the promotion approval hook (default
// AutoApprove). See ApprovalHook, DenyPromotions, ApprovalCallback.
func WithApprovalHook(h ApprovalHook) GuardOption {
	return func(c *guardConfig) {
		if h != nil {
			c.hook = h
		}
	}
}

// WithProbation sets the post-promotion probation window (default 256
// decisions, 5 node-hours tolerance): the replaced incumbent keeps
// scoring as a counterfactual, and a promoted model that regresses past
// the tolerance before surviving the window is rolled back via its
// lineage chain. decisions <= 0 disables probation.
func WithProbation(decisions int, toleranceNodeHours float64) GuardOption {
	return func(c *guardConfig) {
		c.probationDecisions = decisions
		c.probationToleranceNH = toleranceNodeHours
	}
}

// WithGuardMitigationCost sets the checkpoint cost per mitigation in
// node-minutes (default 2) that budget accounting and probation scoring
// charge — keep it equal to the learner's WithLearnerMitigationCost.
func WithGuardMitigationCost(nodeMinutes float64) GuardOption {
	return func(c *guardConfig) { c.mitigationCostNodeMinutes = nodeMinutes }
}

// WithGuardRestartable selects whether mitigation establishes a restart
// point for probation accounting (default true) — keep it equal to the
// learner's WithLearnerRestartable.
func WithGuardRestartable(restartable bool) GuardOption {
	return func(c *guardConfig) { c.restartable = restartable }
}

// defaultGuardConfig seeds the guard option struct: all budgets
// disabled, auto-approval, probation on at 256 decisions with 5
// node-hours tolerance.
func defaultGuardConfig() guardConfig {
	return guardConfig{
		mitigationCostNodeMinutes: 2,
		restartable:               true,
		nodeWindow:                24 * time.Hour,
		fleetWindow:               time.Hour,
		promotionWindow:           24 * time.Hour,
		hook:                      AutoApprove(),
		probationDecisions:        256,
		probationToleranceNH:      5,
	}
}

// ceilPow2 rounds n up to the next power of two, clamped to [1, maxShards].
func ceilPow2(n int) int {
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
