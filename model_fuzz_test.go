package uerl

import (
	"bytes"
	"testing"
)

// FuzzModelArtifact fuzzes the versioned model-artifact codec — the wire
// format the distributed fleet stages policies over, so a byzantine or
// corrupted artifact reaching a worker must be rejected, never served
// and never a panic. Two properties:
//
//   - arbitrary bytes never panic LoadModel; invalid artifacts (tampered
//     payloads, flipped versions, alien schemas) return an error;
//   - any artifact that loads is stable under load → save → load → save:
//     the second and third encodings are byte-identical (a drifting
//     codec would re-version a model on every hop through the fleet).
func FuzzModelArtifact(f *testing.F) {
	seed := func(p Policy) {
		var buf bytes.Buffer
		if err := SaveModel(&buf, p); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// One artifact per serializable kind: header-only statics, an RL
	// Q-network, and the two forest rules.
	seed(AlwaysPolicy())
	seed(NeverPolicy())
	seed(testRLPolicy(f))
	forest := testForest(f)
	if rfp, err := newRFPolicy(forest, 0.4, &TrainingInfo{Budget: "ci", Seed: 7}); err == nil {
		seed(rfp)
	}
	if myp, err := newMyopicPolicy(forest, 2.0/60, nil); err == nil {
		seed(myp)
	}
	// Structural edge cases for the mutator: tampered version, alien
	// schema/kind, truncation, garbage.
	f.Add([]byte(`{"header":{"schema":1,"kind":"always","feature_dim":10,"version":"always.v1.deadbeef"}}`))
	f.Add([]byte(`{"header":{"schema":99,"kind":"always","feature_dim":10,"version":"always.v1"}}`))
	f.Add([]byte(`{"header":{"schema":1,"kind":"oracle","feature_dim":10}}`))
	f.Add([]byte(`{"header":{"schema":1,"kind":"rl","feature_dim":10,"version":"rl.v1.0"},"network":{}`))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := LoadModel(bytes.NewReader(data))
		if err != nil {
			return // rejected: that is the contract for invalid artifacts
		}
		var first bytes.Buffer
		if err := SaveModel(&first, p); err != nil {
			t.Fatalf("re-saving a loaded policy failed: %v", err)
		}
		p2, err := LoadModel(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("own artifact does not reload: %v\n%s", err, first.Bytes())
		}
		if p2.Version() != p.Version() || p2.Kind() != p.Kind() {
			t.Fatalf("round trip changed identity: %s/%s -> %s/%s",
				p.Kind(), p.Version(), p2.Kind(), p2.Version())
		}
		var second bytes.Buffer
		if err := SaveModel(&second, p2); err != nil {
			t.Fatalf("second save failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("artifact codec is not a fixed point:\nfirst:\n%s\nsecond:\n%s",
				first.Bytes(), second.Bytes())
		}
	})
}
