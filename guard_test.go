package uerl

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/features"
	"repro/internal/guard"
	"repro/internal/nn"
)

// ceStream builds a deterministic CE-only telemetry stream in phases:
// each phase is {events, baseCount}, 30 seconds apart round-robin across
// nodes. No UEs — the adversarial burst is injected separately.
func ceStream(nodes int, phases ...[2]int) []Event {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var evs []Event
	i := 0
	for _, ph := range phases {
		for k := 0; k < ph[0]; k++ {
			evs = append(evs, Event{
				Time: base.Add(time.Duration(i) * 30 * time.Second),
				Node: i % nodes, DIMM: i % nodes, Type: CorrectedError,
				Count: ph[1] + i%3, Rank: 0, Bank: 1, Row: i % 7, Col: 3,
			})
			i++
		}
	}
	return evs
}

// ueBurst is the injected adversarial burst: n realized UEs striking
// round-robin across nodes, starting at start, 30 seconds apart.
func ueBurst(nodes int, start time.Time, n int) []Event {
	evs := make([]Event, 0, n)
	for k := 0; k < n; k++ {
		evs = append(evs, Event{
			Time: start.Add(time.Duration(k) * 30 * time.Second),
			Node: k % nodes, DIMM: k % nodes, Type: UncorrectedError,
			Count: 1, Rank: -1, Bank: -1, Row: -1, Col: -1,
		})
	}
	return evs
}

// neverMitigateRL hand-builds a deliberately regressive RL policy: a
// zero-weight network whose output bias fixes Q(none) = bias > 0 =
// Q(mitigate), so it never mitigates regardless of input. Distinct bias
// values produce distinct content-addressed versions.
func neverMitigateRL(t testing.TB, bias float64) Policy {
	t.Helper()
	net := nn.New(nn.Config{Inputs: features.Dim, Outputs: 2, Dueling: false, Seed: 1})
	var outBias *nn.Param
	for _, p := range net.Params() {
		for i := range p.W {
			p.W[i] = 0
		}
		if len(p.W) == 2 {
			outBias = p
		}
	}
	if outBias == nil {
		t.Fatal("no 2-wide output bias param found")
	}
	outBias.W[0] = bias
	p, err := newRLPolicy(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.Decide(sampleSnapshots()[15]); d.Mitigate() {
		t.Fatal("never-mitigate policy mitigated")
	}
	return p
}

// regressiveCandidateHook substitutes every staged candidate with a
// fresh never-mitigate policy (distinct version per retrain) — the
// fault-injection seam driving the guard scenarios.
func regressiveCandidateHook(t testing.TB) func(Policy) Policy {
	calls := 0
	return func(Policy) Policy {
		calls++
		return neverMitigateRL(t, float64(calls))
	}
}

// newGuardedLearner wires AlwaysPolicy serving + guard + learner with
// the regressive-candidate injection and a shadow gate weakened to
// minUEs=0 — exactly the configuration the guard exists to protect: on
// a UE-free window, a never-mitigate candidate wins shadow on spend
// alone.
func newGuardedLearner(t testing.TB, gopts []GuardOption, extra ...LearnerOption) (*OnlineLearner, *Guard) {
	ctl := NewController(AlwaysPolicy(), WithShards(4))
	g := NewGuard(ctl, gopts...)
	opts := []LearnerOption{
		WithGuard(g),
		WithLearnerSeed(5),
		WithCostSource(ConstantCost(100)),
		WithDriftDetection(8, 128),
		WithRetraining(128, 32),
		WithShadowGate(64, 0),
		WithExperienceCapacity(4096),
		withCandidateHook(regressiveCandidateHook(t)),
	}
	l := NewOnlineLearner(ctl, append(opts, extra...)...)
	return l, g
}

func kinds(evs []LifecycleEvent) map[LifecycleEventKind]int {
	m := map[LifecycleEventKind]int{}
	for _, ev := range evs {
		m[ev.Kind]++
	}
	return m
}

func findEvent(evs []LifecycleEvent, kind LifecycleEventKind) (LifecycleEvent, bool) {
	for _, ev := range evs {
		if ev.Kind == kind {
			return ev, true
		}
	}
	return LifecycleEvent{}, false
}

// A tripped node checkpoint budget must degrade Recommend to ActionNone
// (never block or error), audit the trip exactly once per crossing, and
// let mitigation resume when the window slides.
func TestGuardNodeBudgetVetoAndRecovery(t *testing.T) {
	ctl := NewController(AlwaysPolicy(), WithShards(2))
	g := NewGuard(ctl,
		// 0.1 node-hours per hour at 2 node-minutes per mitigation: the
		// budget admits exactly 3 mitigations per window.
		WithNodeCheckpointBudget(0.1, time.Hour),
		WithProbation(0, 0),
	)
	l := NewOnlineLearner(ctl, WithGuard(g), WithDriftDetection(1e9, 128))

	stream := ceStream(1, [2]int{10, 1})
	l.ProcessBatch(stream)

	st := g.Stats()
	if st.SuppressedMitigations != 7 {
		t.Fatalf("suppressed %d mitigations, want 7 (3 within budget): %+v", st.SuppressedMitigations, st)
	}
	if st.BudgetTrips != 1 {
		t.Fatalf("budget trips = %d, want exactly 1 per crossing: %+v", st.BudgetTrips, st)
	}
	// The veto is visible on the decision itself, and Recommend never
	// errors or blocks — it serves ActionNone with the policy's judgment
	// intact.
	at := stream[len(stream)-1].Time
	d := ctl.Recommend(0, at, 100)
	if !d.Vetoed || d.Action != ActionNone || d.VetoReason != guard.ReasonNodeBudget {
		t.Fatalf("tripped-budget decision = %+v", d)
	}

	// The trip landed in the learner's merged audit log, once.
	evs := l.Events()
	trip, ok := findEvent(evs, LifecycleBudgetTrip)
	if !ok || kinds(evs)[LifecycleBudgetTrip] != 1 {
		t.Fatalf("want exactly one budget-trip audit event, got %+v", evs)
	}
	if !strings.Contains(trip.Detail, "node 0 checkpoint budget") {
		t.Fatalf("trip detail = %q", trip.Detail)
	}

	// An hour later the window has slid: mitigation resumes.
	later := at.Add(2 * time.Hour)
	l.Process(Event{Time: later, Node: 0, DIMM: 0, Type: CorrectedError, Count: 1, Rank: 0, Bank: 1, Row: 0, Col: 3})
	if d := ctl.Recommend(0, later.Add(time.Second), 100); d.Vetoed {
		t.Fatalf("budget did not recover after the window slid: %+v", d)
	}
	// ...and the next crossing audits again.
	for i := 0; i < 6; i++ {
		l.Process(Event{Time: later.Add(time.Duration(i+1) * 30 * time.Second), Node: 0, DIMM: 0,
			Type: CorrectedError, Count: 1, Rank: 0, Bank: 1, Row: 0, Col: 3})
	}
	if got := kinds(l.Events())[LifecycleBudgetTrip]; got != 2 {
		t.Fatalf("second crossing recorded %d trip events, want 2 total", got)
	}
}

// The fleet-wide mitigation-rate budget vetoes across nodes.
func TestGuardFleetBudgetVeto(t *testing.T) {
	ctl := NewController(AlwaysPolicy(), WithShards(2))
	g := NewGuard(ctl, WithFleetMitigationBudget(2, time.Hour), WithProbation(0, 0))
	l := NewOnlineLearner(ctl, WithGuard(g), WithDriftDetection(1e9, 128))

	stream := ceStream(4, [2]int{8, 1})
	l.ProcessBatch(stream)
	st := g.Stats()
	if st.SuppressedMitigations != 6 || st.BudgetTrips != 1 {
		t.Fatalf("fleet budget: suppressed=%d trips=%d, want 6/1", st.SuppressedMitigations, st.BudgetTrips)
	}
	d := ctl.Recommend(3, stream[len(stream)-1].Time, 100)
	if !d.Vetoed || d.VetoReason != guard.ReasonFleetBudget {
		t.Fatalf("fleet veto decision = %+v", d)
	}
}

// The guard's Recommend-path budget consult must add zero heap
// allocations once a node's budget window exists — vetoing included, so
// the controller's zero-alloc hot-path contract survives guarding.
func TestGuardRecommendNoAllocs(t *testing.T) {
	at := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	base := NewController(AlwaysPolicy(), WithShards(2))
	guarded := NewController(AlwaysPolicy(), WithShards(2))
	g := NewGuard(guarded, WithNodeCheckpointBudget(1e-9, time.Hour), WithProbation(0, 0))
	base.Recommend(0, at, 50)
	guarded.Recommend(0, at, 50) // warm-up: creates the node's budget window
	if d := guarded.Recommend(0, at, 50); !d.Vetoed {
		t.Fatalf("zero budget did not veto: %+v", d)
	}
	// The consult itself is allocation-free...
	if allocs := testing.AllocsPerRun(200, func() {
		g.allowMitigation(0, at.Add(time.Minute))
	}); allocs != 0 {
		t.Fatalf("budget consult allocates %.1f per op, want 0", allocs)
	}
	// ...so a guarded Recommend allocates exactly what an unguarded one
	// does on the same policy.
	unguardedAllocs := testing.AllocsPerRun(200, func() {
		base.Recommend(0, at.Add(time.Minute), 50)
	})
	guardedAllocs := testing.AllocsPerRun(200, func() {
		guarded.Recommend(0, at.Add(time.Minute), 50)
	})
	if guardedAllocs > unguardedAllocs {
		t.Fatalf("guard added allocations to Recommend: %.1f -> %.1f per op", unguardedAllocs, guardedAllocs)
	}
}

// Scenario 1 of the fault-injection e2e: the second shadow-winning
// regressive candidate is frozen by the tripped promotion budget, with a
// budget-trip audit event and a learner reject.
func TestGuardPromotionBudgetFreezes(t *testing.T) {
	l, _ := newGuardedLearner(t, []GuardOption{WithPromotionBudget(1), WithProbation(128, 5)})
	ctl := l.Controller()
	// Two distribution steps: each triggers drift → retrain → an injected
	// never-mitigate candidate that wins the weakened shadow gate on the
	// UE-free window. The budget admits only the first promotion.
	l.ProcessBatch(ceStream(8, [2]int{600, 1}, [2]int{500, 40}, [2]int{500, 120}))

	st := l.Stats()
	if st.Generation != 1 {
		t.Fatalf("generation = %d, want exactly 1 (second promotion frozen): %+v\nevents: %+v",
			st.Generation, st, l.Events())
	}
	if st.Guard == nil || st.Guard.Promotions != 1 || st.Guard.DeniedPromotions < 1 {
		t.Fatalf("guard stats = %+v, want 1 promotion and >=1 denial", st.Guard)
	}

	evs := l.Events()
	k := kinds(evs)
	if k[LifecycleApprovalGrant] != 1 {
		t.Fatalf("approval-grant events = %d, want 1: %+v", k[LifecycleApprovalGrant], evs)
	}
	trip, ok := findEvent(evs, LifecycleBudgetTrip)
	if !ok || !strings.Contains(trip.Detail, "promotion budget tripped") {
		t.Fatalf("no promotion budget-trip audit event: %+v", evs)
	}
	// The learner's own log records the discard, attributed to the guard.
	var blocked bool
	for _, ev := range evs {
		if ev.Kind == LifecycleReject && strings.Contains(ev.Detail, "guard blocked promotion") {
			blocked = true
		}
	}
	if !blocked {
		t.Fatalf("no guard-blocked reject event: %+v", evs)
	}
	// The quiet post-promotion window passed probation (the regression
	// only shows under an adversarial burst — see the rollback test).
	if _, ok := findEvent(evs, LifecycleProbationPass); !ok {
		t.Fatalf("no probation-pass event: %+v", evs)
	}
	if got := ctl.Policy().Version(); got != trip.Parent && ModelParent(ctl.Policy()) == "" {
		t.Fatalf("serving model %q lost lineage", got)
	}
}

// Scenario 2: a denying approval hook blocks the promotion outright,
// with an approval-deny audit event carrying the hook's reason.
func TestGuardApprovalDenyBlocks(t *testing.T) {
	l, g := newGuardedLearner(t, []GuardOption{WithApprovalHook(DenyPromotions("change freeze CHG-42"))})
	ctl := l.Controller()
	before := ctl.Policy().Version()
	l.ProcessBatch(ceStream(8, [2]int{600, 1}, [2]int{800, 40}))

	if st := l.Stats(); st.Generation != 0 {
		t.Fatalf("denied promotion still executed: %+v", st)
	}
	if got := ctl.Policy().Version(); got != before {
		t.Fatalf("serving policy changed despite denial: %q -> %q", before, got)
	}
	deny, ok := findEvent(l.Events(), LifecycleApprovalDeny)
	if !ok || !strings.Contains(deny.Detail, "change freeze CHG-42") {
		t.Fatalf("no approval-deny audit event with the hook's reason: %+v", l.Events())
	}
	if st := g.Stats(); st.DeniedPromotions < 1 || st.Promotions != 0 || st.Rollbacks != 0 {
		t.Fatalf("guard stats after denial: %+v", st)
	}
}

// Scenario 3, the tentpole e2e: with both gates opened, the injected
// regressive candidate is promoted off a quiet shadow window — then an
// adversarial UE burst lands, probation detects the regression, and the
// guard rolls the serving policy back along the ModelHeader.Parent
// lineage chain to the retained incumbent. Serving traffic hammers the
// controller throughout (run under -race in CI) and must never block.
func TestGuardRollbackOnRegression(t *testing.T) {
	// A probation window far longer than the stream keeps it open until
	// the burst; the 5 nh tolerance is dwarfed by one 100 nh missed UE.
	// The 700-transition retrain floor admits exactly one retrain, so the
	// injected regressive candidate is the only promotion of the run.
	l, g := newGuardedLearner(t, []GuardOption{WithProbation(1<<20, 5)}, WithRetraining(700, 32))
	ctl := l.Controller()
	incumbentVersion := ctl.Policy().Version()

	stream := ceStream(8, [2]int{600, 1}, [2]int{800, 40})
	burst := ueBurst(8, stream[len(stream)-1].Time.Add(5*time.Minute), 8)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			at := stream[0].Time
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				d := ctl.Recommend((w+i)%8, at.Add(time.Duration(i)*time.Second), 50)
				if d.ModelVersion == "" || d.Policy == "" {
					t.Error("decision with empty identity during guarded lifecycle")
					return
				}
			}
		}(w)
	}

	l.ProcessBatch(stream)

	// The regressive candidate is serving and on probation.
	promoted := ctl.Policy()
	if l.Stats().Generation != 1 || promoted.Kind() != PolicyRL {
		t.Fatalf("injected candidate not promoted: %+v\nevents: %+v", l.Stats(), l.Events())
	}
	if ModelParent(promoted) != incumbentVersion {
		t.Fatalf("promoted lineage parent = %q, want %q", ModelParent(promoted), incumbentVersion)
	}
	if st := g.Stats(); !st.ProbationActive {
		t.Fatalf("probation not active after promotion: %+v", st)
	}

	// The adversarial burst: UEs the incumbent would have caught.
	l.ProcessBatch(burst)
	close(stop)
	wg.Wait()

	// Rolled back to the incumbent via the lineage chain.
	if got := ctl.Policy().Version(); got != incumbentVersion {
		t.Fatalf("serving %q after burst, want rollback to %q\nevents: %+v", got, incumbentVersion, l.Events())
	}
	st := g.Stats()
	if st.Rollbacks != 1 || st.ProbationActive {
		t.Fatalf("guard stats after rollback: %+v", st)
	}
	rb, ok := findEvent(l.Events(), LifecycleRollback)
	if !ok {
		t.Fatalf("no rollback audit event: %+v", l.Events())
	}
	if rb.ModelVersion != incumbentVersion || !strings.Contains(rb.Detail, promoted.Version()) {
		t.Fatalf("rollback event = %+v, want target %q naming %q", rb, incumbentVersion, promoted.Version())
	}
	// Full audit trail in causal order: promote before rollback.
	evs := l.Events()
	k := kinds(evs)
	for _, kind := range []LifecycleEventKind{LifecycleDrift, LifecycleRetrain, LifecycleApprovalGrant, LifecyclePromote, LifecycleRollback} {
		if k[kind] == 0 {
			t.Fatalf("audit log missing %q: %+v", kind, evs)
		}
	}
	var pi, ri int = -1, -1
	for i, ev := range evs {
		switch ev.Kind {
		case LifecyclePromote:
			if pi < 0 {
				pi = i
			}
		case LifecycleRollback:
			ri = i
		}
	}
	if !(pi >= 0 && ri > pi) {
		t.Fatalf("rollback (%d) not after promote (%d)", ri, pi)
	}
}

// The guarded lifecycle stays bit-reproducible: identical seed, stream
// and burst reproduce the same audit log and stats.
func TestGuardLifecycleDeterministic(t *testing.T) {
	run := func() ([]LifecycleEvent, LearnerStats) {
		l, _ := newGuardedLearner(t, []GuardOption{WithProbation(1<<20, 5)}, WithRetraining(700, 32))
		stream := ceStream(8, [2]int{600, 1}, [2]int{800, 40})
		l.ProcessBatch(stream)
		l.ProcessBatch(ueBurst(8, stream[len(stream)-1].Time.Add(5*time.Minute), 8))
		return l.Events(), l.Stats()
	}
	ev1, st1 := run()
	ev2, st2 := run()
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("guarded lifecycle events differ across identical runs:\n%+v\nvs\n%+v", ev1, ev2)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("guarded lifecycle stats differ across identical runs:\n%+v\nvs\n%+v", st1, st2)
	}
	if kinds(ev1)[LifecycleRollback] != 1 {
		t.Fatalf("deterministic run missing the rollback: %+v", ev1)
	}
}

// ApprovalCallback: timeout and error both default-deny; an answered
// approval goes through.
func TestApprovalCallbackDefaults(t *testing.T) {
	req := PromotionRequest{Candidate: "rl.v1.cafe", Time: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}

	hook := ApprovalCallback(10*time.Millisecond, func(PromotionRequest) (bool, error) {
		time.Sleep(200 * time.Millisecond)
		return true, nil
	})
	if v, reason := hook.Review(req); v != ApprovalDenied || !strings.Contains(reason, "timed out") {
		t.Fatalf("timeout verdict = %v %q, want default deny", v, reason)
	}

	hook = ApprovalCallback(time.Second, func(PromotionRequest) (bool, error) {
		return false, errors.New("pager unreachable")
	})
	if v, reason := hook.Review(req); v != ApprovalDenied || !strings.Contains(reason, "pager unreachable") {
		t.Fatalf("error verdict = %v %q, want deny with cause", v, reason)
	}

	hook = ApprovalCallback(time.Second, func(r PromotionRequest) (bool, error) {
		return r.Candidate == "rl.v1.cafe", nil
	})
	if v, _ := hook.Review(req); v != ApprovalApproved {
		t.Fatalf("answered approval denied")
	}
}

// Satellite: every audit-log accessor returns a defensive copy — mutating
// the returned slice must not corrupt the log.
func TestAuditLogAccessorsDefensiveCopies(t *testing.T) {
	l, g := newGuardedLearner(t, []GuardOption{WithApprovalHook(DenyPromotions("freeze"))})
	l.ProcessBatch(ceStream(8, [2]int{600, 1}, [2]int{800, 40}))

	evs := l.Events()
	if len(evs) == 0 {
		t.Fatal("no events to test against")
	}
	evs[0].Detail = "tampered"
	evs[0].Kind = "tampered"
	if got := l.Events()[0]; got.Detail == "tampered" || got.Kind == "tampered" {
		t.Fatal("Events() returned a live reference to the audit log")
	}

	since := l.EventsSince(1)
	if len(since) != len(evs)-1 {
		t.Fatalf("EventsSince(1) returned %d events, want %d", len(since), len(evs)-1)
	}
	since[0].Detail = "tampered"
	if got := l.EventsSince(1)[0]; got.Detail == "tampered" {
		t.Fatal("EventsSince() returned a live reference to the audit log")
	}
	if l.EventsSince(len(evs)+5) != nil || l.EventsSince(-1) != nil {
		t.Fatal("out-of-range EventsSince did not return nil")
	}

	gevs := g.Events()
	if len(gevs) == 0 {
		t.Fatal("guard recorded no events")
	}
	gevs[0].Detail = "tampered"
	if got := g.Events()[0]; got.Detail == "tampered" {
		t.Fatal("Guard.Events() returned a live reference to the audit log")
	}
}

// Concurrent readers of every accessor race against a live lifecycle
// (meaningful under -race).
func TestGuardAccessorsConcurrent(t *testing.T) {
	l, g := newGuardedLearner(t, []GuardOption{WithProbation(1<<20, 5)}, WithRetraining(700, 32))
	stream := ceStream(8, [2]int{600, 1}, [2]int{800, 40})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = l.Events()
				_ = l.EventsSince(2)
				_ = l.Stats()
				_ = g.Events()
				_ = g.Stats()
			}
		}()
	}
	l.ProcessBatch(stream)
	l.ProcessBatch(ueBurst(8, stream[len(stream)-1].Time.Add(5*time.Minute), 8))
	close(stop)
	wg.Wait()
}

// Guard wiring misuse fails fast.
func TestGuardWiringPanics(t *testing.T) {
	ctl := NewController(NeverPolicy())
	NewGuard(ctl)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second NewGuard on the same controller did not panic")
			}
		}()
		NewGuard(ctl)
	}()

	other := NewController(NeverPolicy())
	g2 := NewGuard(other)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("WithGuard with a foreign controller did not panic")
			}
		}()
		NewOnlineLearner(ctl, WithGuard(g2))
	}()
}

// A guard is inert on kinds it cannot roll back past: a probation
// regression with no retained ancestor keeps serving and audits the
// abort instead of panicking.
func TestGuardRollbackWithoutLineageAudits(t *testing.T) {
	ctl := NewController(AlwaysPolicy(), WithShards(2))
	g := NewGuard(ctl, WithProbation(1<<20, 5))
	l := NewOnlineLearner(ctl, WithGuard(g), WithDriftDetection(1e9, 128))
	base := time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)

	// Fake a promotion the guard saw, then hot-swap a policy with no
	// lineage behind the guard's back (an operator override), then
	// regress: the Parent chain dead-ends.
	g.notePromotion(ctl.Policy(), neverMitigateRL(t, 1), base)
	ctl.SwapPolicy(NeverPolicy())
	l.Process(Event{Time: base.Add(time.Minute), Node: 0, DIMM: 0, Type: CorrectedError, Count: 1, Rank: 0, Bank: 1, Row: 0, Col: 3})
	l.Process(Event{Time: base.Add(10 * time.Minute), Node: 0, DIMM: 0, Type: UncorrectedError, Count: 1, Rank: -1, Bank: -1, Row: -1, Col: -1})

	if got := ctl.Policy().Version(); got != NeverPolicy().Version() {
		t.Fatalf("lineage-less rollback swapped to %q", got)
	}
	rb, ok := findEvent(g.Events(), LifecycleRollback)
	if !ok || !strings.Contains(rb.Detail, "rollback aborted") {
		t.Fatalf("no aborted-rollback audit event: %+v", g.Events())
	}
	if g.Stats().Rollbacks != 0 {
		t.Fatalf("aborted rollback counted: %+v", g.Stats())
	}
}
