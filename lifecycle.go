package uerl

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/evalx"
	"repro/internal/features"
	"repro/internal/lifecycle"
	"repro/internal/nn"
	"repro/internal/rl"
)

// CostFunc supplies the Eq. 3 potential UE cost (running job's node count
// × node–hours lost if a UE struck now) for a node at a given time — the
// workload-model input of the serving layer. For realized UncorrectedError
// events it is also the realized cost charged to the outcome accounting.
type CostFunc func(node int, at time.Time) float64

// ConstantCost returns a CostFunc reporting a fixed potential cost.
func ConstantCost(nodeHours float64) CostFunc {
	return func(int, time.Time) float64 { return nodeHours }
}

// LifecycleEventKind classifies an online-learning lifecycle event.
type LifecycleEventKind string

const (
	// LifecycleDrift marks a drift-detector window crossing the threshold.
	LifecycleDrift LifecycleEventKind = "drift"
	// LifecycleRetrain marks a completed retraining epoch that produced a
	// shadow candidate.
	LifecycleRetrain LifecycleEventKind = "retrain"
	// LifecycleRetrainFailed marks a retraining epoch that staged no
	// candidate (replay still below one batch, weights unchanged, or
	// candidate construction failed); Detail carries the reason.
	LifecycleRetrainFailed LifecycleEventKind = "retrain-failed"
	// LifecyclePromote marks a candidate passing shadow evaluation and
	// being hot-swapped into the controller.
	LifecyclePromote LifecycleEventKind = "promote"
	// LifecycleReject marks a candidate losing its shadow evaluation and
	// being discarded.
	LifecycleReject LifecycleEventKind = "reject"
	// LifecycleBudgetTrip marks a Guard budget limit crossing: a node or
	// fleet mitigation budget suppressing mitigations, or the promotion
	// budget freezing a promotion. Recorded once per crossing.
	LifecycleBudgetTrip LifecycleEventKind = "budget-trip"
	// LifecycleBudgetRecover marks a tripped mitigation budget recovering:
	// the sliding window admitted a mitigation again after a trip.
	// Recorded once per recovery, the closing bracket of a budget-trip
	// event — audits can pair trips with recoveries to measure how long
	// each degradation lasted.
	LifecycleBudgetRecover LifecycleEventKind = "budget-recover"
	// LifecycleApprovalGrant marks an ApprovalHook approving a promotion.
	LifecycleApprovalGrant LifecycleEventKind = "approval-grant"
	// LifecycleApprovalDeny marks an ApprovalHook denying a promotion;
	// the candidate is discarded.
	LifecycleApprovalDeny LifecycleEventKind = "approval-deny"
	// LifecycleRollback marks a probation regression rolled back: the
	// serving policy was hot-swapped to a retained lineage ancestor.
	LifecycleRollback LifecycleEventKind = "rollback"
	// LifecycleProbationPass marks a promoted model surviving its
	// post-promotion probation window.
	LifecycleProbationPass LifecycleEventKind = "probation-pass"
)

// LifecycleEvent is one entry of the online learner's audit log.
type LifecycleEvent struct {
	// Kind classifies the event.
	Kind LifecycleEventKind `json:"kind"`
	// Time is the telemetry time at which the event occurred.
	Time time.Time `json:"time"`
	// Generation is the model generation after the event (0 = the
	// initial policy; it increments on every promotion).
	Generation int `json:"generation"`
	// ModelVersion identifies the model the event concerns: the
	// candidate for retrain/promote/reject, the incumbent for drift.
	ModelVersion string `json:"model_version,omitempty"`
	// Parent is the candidate's lineage parent version, when relevant.
	Parent string `json:"parent,omitempty"`
	// Score quantifies the event: the drift statistic for drift events,
	// the shadow cost advantage (incumbent − candidate, node–hours) for
	// promote/reject, the mean training loss for retrain.
	Score float64 `json:"score"`
	// Detail is a human-readable summary.
	Detail string `json:"detail,omitempty"`
}

// LearnerStats summarizes an OnlineLearner's activity.
type LearnerStats struct {
	// Decisions is the number of decision ticks processed.
	Decisions int `json:"decisions"`
	// UEs is the number of realized uncorrected errors processed.
	UEs int `json:"ues"`
	// Transitions is the number of completed experience transitions
	// ingested into the training stream.
	Transitions uint64 `json:"transitions"`
	// DroppedTransitions counts experience evicted unconsumed from the
	// bounded stream.
	DroppedTransitions uint64 `json:"dropped_transitions"`
	// Epochs is the number of completed retraining epochs.
	Epochs int `json:"epochs"`
	// Generation is the current model generation (number of promotions).
	Generation int `json:"generation"`
	// ShadowActive reports whether a candidate is currently in shadow.
	ShadowActive bool `json:"shadow_active"`
	// ServingVersion is the currently served model version.
	ServingVersion string `json:"serving_version"`
	// Guard summarizes the attached Guard's enforcement activity; nil
	// when the learner runs unguarded.
	Guard *GuardStats `json:"guard,omitempty"`
}

// pendingStep is a decision awaiting its outcome: the transition from it
// completes at the node's next decision tick, after any realized UE costs
// in between have been folded into the reward (the streaming analogue of
// the training environment's Step).
type pendingStep struct {
	state  []float64 // normalized features at the decision
	action int
	reward float64 // scaled, accumulates realized UE costs
}

// OnlineLearner closes the loop the offline pipeline leaves open: it taps
// a Controller's telemetry stream and realized UE outcomes into a bounded
// experience stream, detects drift in the rolling feature distribution,
// retrains the Q-network incrementally on live experience (reusing the
// batched internal/rl kernels), scores each candidate against the
// incumbent on identical shadow traffic, and — when the candidate wins —
// hot-swaps it into the controller with full model lineage.
//
//	learner := uerl.NewOnlineLearner(ctl, uerl.WithLearnerSeed(1))
//	for ev := range telemetry {
//	    learner.Process(ev) // serve + learn
//	}
//
// Process both ingests the event into the controller and advances the
// learning loop, so callers feed events through the learner instead of
// calling Controller.ObserveEvent directly. Serving queries (Recommend)
// keep going straight to the controller from any goroutine — a hot swap
// never drops or blocks them. Process is safe for concurrent use, but
// the lifecycle is only bit-reproducible when events arrive in a
// deterministic order (one feeding goroutine).
//
// The learner is deterministic: a fixed seed and event stream reproduce
// the same drift verdicts, the same retrained weights (same content-
// addressed versions), and the same promotion decisions.
type OnlineLearner struct {
	mu      sync.Mutex
	serving Serving
	// acct receives the served-decision stream for budget accounting and
	// probation scoring: the attached Guard in single-process mode, the
	// serving layer itself when it does its own routing (the fleet
	// Coordinator forwards to per-worker guards), nil otherwise.
	acct decisionAccountant
	cfg  learnerConfig

	trainer *lifecycle.OnlineTrainer
	drift   *lifecycle.DriftDetector
	pending map[int]*pendingStep

	shadowInc  *evalx.ShadowEval
	shadowCand *evalx.ShadowEval
	candidate  Policy

	sinceRetrain int
	decisions    int
	ues          int
	generation   int
	events       []LifecycleEvent
	// guardSeen is the merge cursor into the guard's own audit log.
	guardSeen int
}

// NewOnlineLearner attaches a continual-learning lifecycle to ctl.
func NewOnlineLearner(ctl *Controller, opts ...LearnerOption) *OnlineLearner {
	if ctl == nil {
		panic("uerl: NewOnlineLearner with nil controller")
	}
	return NewServingLearner(ctl, opts...)
}

// NewServingLearner attaches a continual-learning lifecycle to any
// Serving implementation — a single-process *Controller (equivalent to
// NewOnlineLearner) or a distributed fleet coordinator. WithGuard is only
// meaningful for a *Controller serving layer (the guard wraps a concrete
// controller); distributed layers carry their own per-worker guards and
// route decision accounting themselves.
func NewServingLearner(s Serving, opts ...LearnerOption) *OnlineLearner {
	if s == nil {
		panic("uerl: NewServingLearner with nil serving layer")
	}
	cfg := defaultLearnerConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.guard != nil {
		ctl, ok := s.(*Controller)
		if !ok {
			panic("uerl: WithGuard requires a *Controller serving layer; distributed layers attach guards per worker")
		}
		if cfg.guard.Controller() != ctl {
			panic("uerl: WithGuard guard wraps a different controller than the learner serves")
		}
	}
	l := &OnlineLearner{
		serving: s,
		cfg:     cfg,
		trainer: lifecycle.NewOnlineTrainer(lifecycle.TrainerConfig{
			Agent: rl.AgentConfig{
				StateLen:     FeatureDim,
				NumActions:   2,
				Hidden:       cfg.hidden,
				Dueling:      true,
				DoubleDQN:    true,
				Gamma:        0.99,
				LearningRate: 3e-3,
				BatchSize:    32,
				GradClip:     10,
				HuberDelta:   1,
				Seed:         cfg.seed,
				Kernel:       cfg.kernel,
				TrainWorkers: cfg.trainWorkers,
			},
			StreamCapacity: cfg.streamCapacity,
			StepsPerEpoch:  cfg.epochSteps,
		}),
		drift: lifecycle.NewDriftDetector(lifecycle.DriftConfig{
			Threshold:     cfg.driftThreshold,
			WindowSamples: cfg.driftWindow,
			// Monitor the stationary feature subset: the cumulative
			// counters grow monotonically on any healthy stream and
			// would trip a mean-shift test without any real drift.
			Dims: lifecycle.StationaryDriftDims,
		}),
		pending: map[int]*pendingStep{},
		shadowInc: evalx.NewShadowEval("incumbent", evalx.ShadowConfig{
			MitigationCostNodeHours: cfg.mitigationCostNodeMinutes / 60,
			Restartable:             cfg.restartable,
		}),
	}
	if cfg.guard != nil {
		l.acct = cfg.guard
	} else if acc, ok := s.(decisionAccountant); ok {
		l.acct = acc
	}
	return l
}

// Controller returns the served controller when the serving layer is a
// single-process *Controller; nil under a distributed serving layer (use
// Serving for the general handle).
func (l *OnlineLearner) Controller() *Controller {
	ctl, _ := l.serving.(*Controller)
	return ctl
}

// Serving returns the serving layer the learner drives.
func (l *OnlineLearner) Serving() Serving { return l.serving }

// Process ingests one telemetry event: it updates the controller's
// feature state, records the served decision as training experience,
// advances drift detection and shadow evaluation, and — when the
// lifecycle calls for it — retrains and hot-swaps the serving policy.
func (l *OnlineLearner) Process(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e.Type == UncorrectedError {
		l.processUE(e)
		return
	}
	l.processDecision(e)
}

// ProcessBatch ingests a time-ordered event batch.
func (l *OnlineLearner) ProcessBatch(events []Event) {
	for _, e := range events {
		l.Process(e)
	}
}

// processUE folds a realized UE into the pending reward, the feature
// history, and both shadow scoreboards. Caller holds l.mu.
func (l *OnlineLearner) processUE(e Event) {
	realized := l.cfg.cost(e.Node, e.Time)
	l.serving.ObserveEvent(e)
	l.ues++
	if p := l.pending[e.Node]; p != nil {
		// Eq. 4: the UE cost lands on the reward of the preceding
		// decision, exactly as in the offline training environment.
		p.reward -= realized * l.cfg.rewardScale
	}
	if l.cfg.ueObserver != nil {
		l.cfg.ueObserver(e.Node, e.Time, realized)
	}
	l.shadowInc.UE(e.Node, e.Time, realized)
	if l.candidate != nil {
		l.shadowCand.UE(e.Node, e.Time, realized)
		l.judgeShadow(e.Time)
	}
	if l.acct != nil {
		// Probation charges the realized cost; a regression past
		// tolerance rolls the serving policy back right here.
		l.acct.ObserveUE(e.Node, e.Time, realized)
	}
	if l.cfg.guard != nil {
		l.syncGuard()
	}
}

// processDecision handles a non-UE event: a decision tick. Caller holds
// l.mu.
func (l *OnlineLearner) processDecision(e Event) {
	l.serving.ObserveEvent(e)
	cost := l.cfg.cost(e.Node, e.Time)
	d := l.serving.Recommend(e.Node, e.Time, cost)
	l.decisions++
	if l.acct != nil {
		// Budget accounting and probation scoring run off the served
		// decision stream — the same decision the fleet just acted on.
		l.acct.ObserveDecision(d)
	}
	if l.cfg.decisionObserver != nil {
		l.cfg.decisionObserver(d)
	}
	if d.Degraded {
		// The answer came from the empty feature state, not the node's
		// real telemetry: it still serves (and is audited above), but it
		// is not evidence — feeding its zero snapshot to the trainer or
		// the drift detector would teach the lifecycle about the outage,
		// not the fleet. The node's pending transition stays open and
		// completes at its next healthy decision.
		l.shadowInc.Decision(e.Node, e.Time, d.Mitigate())
		if l.candidate != nil {
			cd := l.candidate.Decide(Snapshot{Node: e.Node, Time: e.Time, Features: d.Features})
			l.shadowCand.Decision(e.Node, e.Time, cd.Mitigate())
			l.judgeShadow(e.Time)
		}
		if l.cfg.guard != nil {
			l.syncGuard()
		}
		return
	}

	norm := features.Vector(d.Features).Normalized()
	action := 0
	initReward := 0.0
	if d.Mitigate() {
		action = 1
		initReward = -(l.cfg.mitigationCostNodeMinutes / 60) * l.cfg.rewardScale
	}
	if p := l.pending[e.Node]; p != nil {
		l.trainer.Ingest(rl.Transition{S: p.state, A: p.action, R: p.reward, NextS: norm})
		l.sinceRetrain++
	}
	l.pending[e.Node] = &pendingStep{state: norm, action: action, reward: initReward}

	l.shadowInc.Decision(e.Node, e.Time, d.Mitigate())
	if l.candidate != nil {
		cd := l.candidate.Decide(Snapshot{Node: e.Node, Time: e.Time, Features: d.Features})
		l.shadowCand.Decision(e.Node, e.Time, cd.Mitigate())
		l.judgeShadow(e.Time)
	}

	// Drift watches the distribution of observed telemetry, not the
	// poll-time snapshot: Recommend reads features through Peek, which
	// reports zero CEs-since-last-event (no current-tick events), so the
	// per-tick CE rate — the strongest drift signal — is patched back in
	// from the event itself.
	dv := features.Vector(d.Features)
	if e.Type == CorrectedError {
		count := e.Count
		if count <= 0 {
			count = 1
		}
		dv[features.CEsSinceLastEvent] = float64(count)
	}
	if res, ok := l.drift.Observe(dv); ok && res.Drifted {
		l.record(LifecycleEvent{
			Kind: LifecycleDrift, Time: e.Time, Generation: l.generation,
			ModelVersion: l.serving.Policy().Version(), Score: res.Score,
			Detail: fmt.Sprintf("feature %d shifted (z=%.1f, window %d)", res.Dim, res.Score, res.Windows),
		})
		if l.candidate == nil && l.sinceRetrain >= l.cfg.minExperience {
			l.retrain(e.Time)
		}
	}
	if l.cfg.guard != nil {
		l.syncGuard()
	}
}

// retrain runs one training epoch over the buffered live experience and
// stages the result as a shadow candidate. Caller holds l.mu.
func (l *OnlineLearner) retrain(at time.Time) {
	incumbent := l.serving.Policy()
	if rlp, ok := incumbent.(*rlPolicy); ok {
		// Continual learning: start from the weights currently serving.
		l.trainer.WarmStart(rlp.q.Net())
	}
	res := l.trainer.Epoch()
	l.sinceRetrain = 0
	fail := func(reason string) {
		l.record(LifecycleEvent{
			Kind: LifecycleRetrainFailed, Time: at, Generation: l.generation,
			ModelVersion: incumbent.Version(),
			Detail:       fmt.Sprintf("epoch %d staged no candidate: %s", res.Epoch, reason),
		})
	}
	if res.Steps == 0 {
		fail("replay below one batch; waiting for more experience")
		return
	}
	kernel := l.cfg.kernel
	if kernel == 0 {
		kernel = nn.KernelReference
	}
	cand, err := newRLPolicy(l.trainer.Network().Clone(), &TrainingInfo{Seed: l.cfg.seed, KernelVersion: kernel})
	if err != nil {
		fail(err.Error())
		return
	}
	if cand.Version() == incumbent.Version() {
		fail("retrained weights identical to the incumbent")
		return
	}
	var staged Policy = cand
	if l.cfg.candidateHook != nil {
		if hooked := l.cfg.candidateHook(staged); hooked != nil {
			staged = hooked
		}
	}
	_ = SetModelParent(staged, incumbent.Version())
	l.candidate = staged
	l.shadowInc.Reset()
	l.shadowCand = evalx.NewShadowEval("candidate", evalx.ShadowConfig{
		MitigationCostNodeHours: l.cfg.mitigationCostNodeMinutes / 60,
		Restartable:             l.cfg.restartable,
	})
	l.record(LifecycleEvent{
		Kind: LifecycleRetrain, Time: at, Generation: l.generation,
		ModelVersion: staged.Version(), Parent: incumbent.Version(), Score: res.MeanLoss,
		Detail: fmt.Sprintf("epoch %d: %d transitions, %d steps", res.Epoch, res.Drained, res.Steps),
	})
}

// judgeShadow promotes or rejects the candidate once the shadow gate is
// satisfied. Caller holds l.mu.
func (l *OnlineLearner) judgeShadow(at time.Time) {
	cand := l.shadowCand.Result()
	if cand.Decisions < l.cfg.shadowMinDecisions || cand.UEs < l.cfg.shadowMinUEs {
		return
	}
	inc := l.shadowInc.Result()
	advantage := inc.TotalCost() - cand.TotalCost()
	ev := LifecycleEvent{
		Time: at, ModelVersion: l.candidate.Version(),
		Parent: ModelParent(l.candidate), Score: advantage,
		Detail: fmt.Sprintf("shadow over %d decisions / %d UEs: candidate %.1f nh vs incumbent %.1f nh",
			cand.Decisions, cand.UEs, cand.TotalCost(), inc.TotalCost()),
	}
	switch {
	case advantage < 0:
		ev.Kind, ev.Generation = LifecycleReject, l.generation
	case !l.guardApproves(at, advantage, cand.Decisions, cand.UEs):
		// The guard already recorded the budget-trip or approval-deny
		// audit event; the learner records the discard.
		ev.Kind, ev.Generation = LifecycleReject, l.generation
		ev.Detail = "guard blocked promotion: " + ev.Detail
	default:
		incumbent := l.serving.Policy()
		if _, err := l.serving.DeployPolicy(l.candidate); err != nil {
			// The rollout was refused (e.g. a worker quorum rejected the
			// artifact): the incumbent is still serving, so the candidate
			// is discarded as rejected rather than promoted.
			ev.Kind, ev.Generation = LifecycleReject, l.generation
			ev.Detail = "deploy rejected: " + err.Error() + ": " + ev.Detail
			break
		}
		l.generation++
		l.drift.Rebase()
		if l.cfg.guard != nil {
			l.cfg.guard.notePromotion(incumbent, l.candidate, at)
		}
		ev.Kind, ev.Generation = LifecyclePromote, l.generation
	}
	if l.cfg.guard != nil {
		// Merge the verdict's guard events (approval, budget trip) ahead
		// of the learner's own record, keeping the audit log causal.
		l.syncGuard()
	}
	l.record(ev)
	l.candidate = nil
	l.shadowCand = nil
	l.shadowInc.Reset()
}

// guardApproves submits the shadow-winning candidate to the guard's
// promotion gates (budget, then approval hook). Caller holds l.mu; the
// approval hook may block, during which serving traffic — which never
// takes l.mu — proceeds untouched.
func (l *OnlineLearner) guardApproves(at time.Time, advantage float64, decisions, ues int) bool {
	if l.cfg.guard == nil {
		return true
	}
	ok, _ := l.cfg.guard.reviewPromotion(PromotionRequest{
		Candidate:       l.candidate.Version(),
		Incumbent:       l.serving.Policy().Version(),
		Generation:      l.generation,
		Time:            at,
		ShadowAdvantage: advantage,
		ShadowDecisions: decisions,
		ShadowUEs:       ues,
	})
	return ok
}

func (l *OnlineLearner) record(ev LifecycleEvent) {
	l.events = append(l.events, ev)
}

// syncGuard merges audit events the guard recorded since the last sync
// (budget trips, approval verdicts, rollbacks, probation passes) into
// the learner's lifecycle log, keeping one chronological audit trail.
// Caller holds l.mu.
func (l *OnlineLearner) syncGuard() {
	evs, seen := l.cfg.guard.eventsSince(l.guardSeen)
	l.events = append(l.events, evs...)
	l.guardSeen = seen
}

// Events returns a copy of the lifecycle audit log, including any
// guard audit events merged so far.
func (l *OnlineLearner) Events() []LifecycleEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LifecycleEvent, len(l.events))
	copy(out, l.events)
	return out
}

// EventsSince returns a copy of the audit log entries from index n on —
// the incremental form of Events for live tailing. Out-of-range n
// returns an empty slice.
func (l *OnlineLearner) EventsSince(n int) []LifecycleEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 || n > len(l.events) {
		return nil
	}
	out := make([]LifecycleEvent, len(l.events)-n)
	copy(out, l.events[n:])
	return out
}

// Generation reports the current model generation (promotions so far).
func (l *OnlineLearner) Generation() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.generation
}

// Stats summarizes the learner's activity.
func (l *OnlineLearner) Stats() LearnerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := LearnerStats{
		Decisions:          l.decisions,
		UEs:                l.ues,
		Transitions:        l.trainer.Stream().Pushed(),
		DroppedTransitions: l.trainer.Stream().Dropped(),
		Epochs:             l.trainer.Epochs(),
		Generation:         l.generation,
		ShadowActive:       l.candidate != nil,
		ServingVersion:     l.serving.Policy().Version(),
	}
	if l.cfg.guard != nil {
		gs := l.cfg.guard.Stats()
		st.Guard = &gs
	}
	return st
}
