package uerl

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/features"
	"repro/internal/nn"
)

// testRLPolicy builds an untrained but fully wired RL serving policy
// (training is irrelevant to the serving-path mechanics under test).
func testRLPolicy(t testing.TB) Policy {
	t.Helper()
	net := nn.New(nn.Config{Inputs: features.Dim, Hidden: []int{16, 8}, Outputs: 2, Dueling: true, Seed: 3})
	p, err := newRLPolicy(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// degradingEvents is a CE storm on one node, dense enough to give the
// variation features non-trivial history.
func degradingEvents(node int, base time.Time, n int) []Event {
	evs := make([]Event, 0, n+2)
	evs = append(evs, Event{Time: base, Node: node, Type: NodeBoot, DIMM: -1, Rank: -1, Bank: -1, Row: -1, Col: -1})
	for i := 0; i < n; i++ {
		evs = append(evs, Event{
			Time: base.Add(time.Duration(i) * time.Minute),
			Node: node, DIMM: 8, Type: CorrectedError, Count: 10 + i,
			Rank: 0, Bank: 1, Row: 900 + i%5, Col: 12,
		})
	}
	evs = append(evs, Event{Time: base.Add(time.Duration(n) * time.Minute), Node: node,
		Type: UEWarning, DIMM: 8, Rank: -1, Bank: -1, Row: -1, Col: -1})
	return evs
}

// TestRecommendSideEffectFree is the regression test for the old
// Controller, whose Recommend called Tracker.Observe and therefore changed
// a node's features every time it was polled. Two controllers fed the same
// event stream must end in the same state even when one is polled heavily
// between events.
func TestRecommendSideEffectFree(t *testing.T) {
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	polled := NewController(AlwaysPolicy())
	quiet := NewController(AlwaysPolicy())

	for i, ev := range degradingEvents(5, base, 120) {
		polled.ObserveEvent(ev)
		quiet.ObserveEvent(ev)
		// Poll between every pair of events, including at times that fall
		// inside the Eq. 2 variation windows.
		for j := 0; j < 3; j++ {
			at := ev.Time.Add(time.Duration(j*13) * time.Second)
			polled.Recommend(5, at, float64(i*j))
		}
	}

	at := base.Add(3 * time.Hour)
	got := polled.Features(5, at, 42)
	want := quiet.Features(5, at, 42)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("feature %d diverged after polling: got %v want %v\n got=%v\nwant=%v",
				i, got[i], want[i], got, want)
		}
	}

	// Polling an unknown node must not allocate tracker state either.
	polled.Recommend(999, at, 1)
	if n, m := polled.NodeCount(), quiet.NodeCount(); n != m {
		t.Fatalf("polling changed node count: %d vs %d", n, m)
	}
}

func TestRecommendUnknownNode(t *testing.T) {
	ctl := NewController(AlwaysPolicy())
	at := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	d := ctl.Recommend(31, at, 17)
	if !d.Mitigate() || d.Node != 31 || !d.Time.Equal(at) {
		t.Fatalf("bad decision for unknown node: %+v", d)
	}
	if d.Features[features.UECost] != 17 {
		t.Fatalf("cost feature = %v, want 17", d.Features[features.UECost])
	}
	for i := 0; i < features.UECost; i++ {
		if d.Features[i] != 0 {
			t.Fatalf("unknown node has non-empty feature %d = %v", i, d.Features[i])
		}
	}
}

func TestObserveBatch(t *testing.T) {
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	var batch []Event
	for node := 0; node < 32; node++ {
		batch = append(batch, degradingEvents(node, base, 10)...)
	}

	batched := NewController(AlwaysPolicy(), WithShards(4))
	n, err := batched.ObserveBatch(context.Background(), batch)
	if err != nil || n != len(batch) {
		t.Fatalf("ObserveBatch = %d, %v; want %d, nil", n, err, len(batch))
	}
	if batched.NodeCount() != 32 {
		t.Fatalf("tracked %d nodes, want 32", batched.NodeCount())
	}

	// Batch ingestion must land in the same state as one-by-one ingestion.
	single := NewController(AlwaysPolicy(), WithShards(4))
	for _, ev := range batch {
		single.ObserveEvent(ev)
	}
	at := base.Add(time.Hour)
	for node := 0; node < 32; node++ {
		got := batched.Features(node, at, 1)
		want := single.Features(node, at, 1)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("node %d feature %d: batch %v vs single %v", node, i, got[i], want[i])
			}
		}
	}

	if n, err := batched.ObserveBatch(context.Background(), nil); n != 0 || err != nil {
		t.Fatalf("empty batch = %d, %v", n, err)
	}
}

func TestObserveBatchCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctl := NewController(AlwaysPolicy())
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	n, err := ctl.ObserveBatch(ctx, degradingEvents(1, base, 10))
	if err == nil {
		t.Fatal("cancelled batch reported success")
	}
	if n != 0 {
		t.Fatalf("cancelled batch ingested %d events before the first shard", n)
	}
}

func TestWithShardsRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-1, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {8, 8}, {9, 16}, {1 << 20, maxShards},
	} {
		ctl := NewController(AlwaysPolicy(), WithShards(tc.in))
		if got := ctl.ShardCount(); got != tc.want {
			t.Fatalf("WithShards(%d) -> %d shards, want %d", tc.in, got, tc.want)
		}
	}
}

func TestWithNowFunc(t *testing.T) {
	at := time.Date(2030, 1, 2, 3, 4, 5, 0, time.UTC)
	ctl := NewController(AlwaysPolicy(), WithNowFunc(func() time.Time { return at }))
	if d := ctl.RecommendNow(1, 2); !d.Time.Equal(at) {
		t.Fatalf("RecommendNow used %v, want %v", d.Time, at)
	}
}

// TestControllerConcurrency hammers one controller from many goroutines —
// mixed single/batch ingestion, recommendations and forgets across
// overlapping nodes — and is meant to run under -race (as CI does).
func TestControllerConcurrency(t *testing.T) {
	ctl := NewController(testRLPolicy(t), WithShards(8))
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

	const workers = 8
	const nodes = 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 200; i++ {
				node := (w + i) % nodes
				at := base.Add(time.Duration(i) * time.Minute)
				switch i % 4 {
				case 0:
					ctl.ObserveEvent(Event{Time: at, Node: node, DIMM: 8,
						Type: CorrectedError, Count: 5, Rank: 0, Bank: 1, Row: i, Col: 2})
				case 1:
					if _, err := ctl.ObserveBatch(ctx, degradingEvents(node, at, 5)); err != nil {
						t.Error(err)
						return
					}
				case 2:
					d := ctl.Recommend(node, at, float64(i))
					if d.Node != node {
						t.Errorf("decision for node %d answered node %d", node, d.Node)
						return
					}
				case 3:
					if i%40 == 3 {
						ctl.Forget(node)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n := ctl.NodeCount(); n == 0 || n > nodes {
		t.Fatalf("tracked %d nodes, want 1..%d", n, nodes)
	}
}

// TestSwapPolicyPreservesTrackerState is the regression test for the old
// immutable-policy Controller: installing a retrained model used to mean
// rebuilding the whole controller, losing every node's accumulated
// feature history. SwapPolicy must change only the policy.
func TestSwapPolicyPreservesTrackerState(t *testing.T) {
	ctl := NewController(AlwaysPolicy(), WithShards(4))
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	for node := 0; node < 8; node++ {
		for _, ev := range degradingEvents(node, base, 50) {
			ctl.ObserveEvent(ev)
		}
	}
	at := base.Add(2 * time.Hour)
	var before [8][FeatureDim]float64
	for node := range before {
		before[node] = ctl.Features(node, at, 7)
	}

	old := ctl.SwapPolicy(NeverPolicy())
	if old.Kind() != PolicyAlways {
		t.Fatalf("SwapPolicy returned %s, want the replaced always policy", old.Kind())
	}
	if ctl.Policy().Kind() != PolicyNever {
		t.Fatalf("serving policy is %s after swap, want never", ctl.Policy().Kind())
	}

	if n := ctl.NodeCount(); n != 8 {
		t.Fatalf("swap dropped tracker state: %d nodes, want 8", n)
	}
	for node := range before {
		after := ctl.Features(node, at, 7)
		if after != before[node] {
			t.Fatalf("node %d features changed across swap:\n before=%v\n after=%v", node, before[node], after)
		}
	}

	// Decisions now come from the new policy, with its identity.
	d := ctl.Recommend(3, at, 7)
	if d.Mitigate() {
		t.Fatal("never policy mitigated after swap")
	}
	if d.Policy != NeverPolicy().Name() || d.ModelVersion != NeverPolicy().Version() {
		t.Fatalf("post-swap decision identity = %q/%q", d.Policy, d.ModelVersion)
	}
}

// TestSwapPolicyConcurrent hot-swaps between two policies while readers
// hammer Recommend: no call may drop, block, or observe a torn mix of one
// policy's action with the other's identity. Meant for -race.
func TestSwapPolicyConcurrent(t *testing.T) {
	always, never := AlwaysPolicy(), NeverPolicy()
	ctl := NewController(always, WithShards(4))
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	for _, ev := range degradingEvents(1, base, 20) {
		ctl.ObserveEvent(ev)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			at := base.Add(time.Hour)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				d := ctl.Recommend(1, at.Add(time.Duration(i)*time.Second), 5)
				switch d.ModelVersion {
				case always.Version():
					if !d.Mitigate() || d.Policy != always.Name() {
						t.Errorf("torn decision: %+v claims always", d)
						return
					}
				case never.Version():
					if d.Mitigate() || d.Policy != never.Name() {
						t.Errorf("torn decision: %+v claims never", d)
						return
					}
				default:
					t.Errorf("decision from unknown model %q", d.ModelVersion)
					return
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		if i%2 == 0 {
			ctl.SwapPolicy(never)
		} else {
			ctl.SwapPolicy(always)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSwapPolicyNilPanics(t *testing.T) {
	ctl := NewController(AlwaysPolicy())
	defer func() {
		if recover() == nil {
			t.Fatal("SwapPolicy(nil) did not panic")
		}
	}()
	ctl.SwapPolicy(nil)
}

// TestServingPathZeroAlloc: the two serving hot paths — single-event
// ingestion and side-effect-free recommendation (Q-network forward
// included) — must not allocate in steady state.
func TestServingPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool allocate")
	}
	ctl := NewController(testRLPolicy(t), WithShards(8))
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	for _, ev := range degradingEvents(1, base, 256) {
		ctl.ObserveEvent(ev)
	}

	ev := Event{Node: 1, DIMM: 8, Type: CorrectedError, Count: 3, Rank: 0, Bank: 1, Row: 100, Col: 2}
	at := base
	allocs := testing.AllocsPerRun(200, func() {
		at = at.Add(time.Second)
		ev.Time = at
		ctl.ObserveEvent(ev)
	})
	if allocs != 0 {
		t.Fatalf("ObserveEvent allocates %v times per run, want 0", allocs)
	}

	query := at.Add(time.Hour)
	allocs = testing.AllocsPerRun(200, func() {
		d := ctl.Recommend(1, query, 4200)
		if d.Node != 1 {
			t.Fatal("wrong node")
		}
	})
	if allocs != 0 {
		t.Fatalf("Recommend allocates %v times per run, want 0", allocs)
	}
}

// TestObserveBatchSteadyStateAllocFree: batched ingestion reuses the
// controller-owned per-shard buckets, so after the buckets and trackers
// have grown to the working shape a batch allocates nothing.
func TestObserveBatchSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool allocate")
	}
	ctl := NewController(AlwaysPolicy(), WithShards(8))
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	batch := benchEvents(1024, 256, base)
	span := batch[len(batch)-1].Time.Sub(batch[0].Time) + time.Second
	ctx := context.Background()
	advance := func() {
		for j := range batch {
			batch[j].Time = batch[j].Time.Add(span)
		}
	}
	// Warm up: grow the pooled buckets and the per-node tracker state
	// (the history rings keep filling until the 2h compaction window is
	// covered, which takes several batches of advancing timestamps).
	for i := 0; i < 16; i++ {
		if _, err := ctl.ObserveBatch(ctx, batch); err != nil {
			t.Fatal(err)
		}
		advance()
	}
	allocs := testing.AllocsPerRun(20, func() {
		advance()
		if _, err := ctl.ObserveBatch(ctx, batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("ObserveBatch allocates %v times per batch, want ~0", allocs)
	}
}
