package uerl

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	sysOnce sync.Once
	sys     *System
)

func testSystem(t *testing.T) *System {
	t.Helper()
	if testing.Short() {
		t.Skip("system integration tests in short mode")
	}
	// Exercise the back-compat Config path; options are tested separately.
	sysOnce.Do(func() { sys = NewSystemFromConfig(DefaultConfig(BudgetCI)) })
	return sys
}

func TestNewSystemOptions(t *testing.T) {
	base := DefaultConfig(BudgetCI)
	var got Config
	NewSystem(
		WithSeed(7),
		WithBudgetPaper(),
		WithBudgetCI(), // later options win
		WithScale(0.01),
		WithJobs(11),
		WithJobSizeScale(2),
		WithMitigationCost(5),
		WithRestartable(false),
		WithConfig(base), // wholesale replacement drops everything above
		WithSeed(9),
		func(c *Config) { got = *c },
	)
	want := base
	want.Seed = 9
	if got != want {
		t.Fatalf("options applied wrong: got %+v want %+v", got, want)
	}
}

func TestBudgetStringRoundTrip(t *testing.T) {
	for _, b := range []Budget{BudgetCI, BudgetDefault, BudgetPaper} {
		parsed, err := ParseBudget(b.String())
		if err != nil || parsed != b {
			t.Fatalf("budget %v round-trip: parsed %v err %v", b, parsed, err)
		}
	}
	if _, err := ParseBudget("nope"); err == nil {
		t.Fatal("bad budget accepted")
	}
}

func TestNewSystemAndStats(t *testing.T) {
	s := testSystem(t)
	st := s.LogStats()
	if st.FirstUEs == 0 || st.TotalCEs == 0 || st.Nodes == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestEvaluateReport(t *testing.T) {
	s := testSystem(t)
	rep := s.Evaluate()
	if len(rep.Costs) < 6 {
		t.Fatalf("report has %d policies", len(rep.Costs))
	}
	never, ok := rep.Find("Never-mitigate")
	if !ok {
		t.Fatal("missing Never-mitigate")
	}
	oracle, ok := rep.Find("Oracle")
	if !ok {
		t.Fatal("missing Oracle")
	}
	if oracle.TotalNodeHours > never.TotalNodeHours {
		t.Fatalf("Oracle %v worse than Never %v", oracle.TotalNodeHours, never.TotalNodeHours)
	}
	var sb strings.Builder
	rep.Render(&sb)
	if !strings.Contains(sb.String(), "Oracle") {
		t.Fatal("render missing rows")
	}
	if _, ok := rep.Find("nonexistent"); ok {
		t.Fatal("Find returned a bogus policy")
	}
}

func TestEvaluateManufacturer(t *testing.T) {
	s := testSystem(t)
	rep, err := s.EvaluateManufacturer("C")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Costs) == 0 {
		t.Fatal("empty manufacturer report")
	}
	if _, err := s.EvaluateManufacturer("Z"); err == nil {
		t.Fatal("bad manufacturer accepted")
	}
}

func TestEvaluateJobScale(t *testing.T) {
	s := testSystem(t)
	small, err := s.EvaluateJobScale(0.1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := s.EvaluateJobScale(10)
	if err != nil {
		t.Fatal(err)
	}
	ns, _ := small.Find("Never-mitigate")
	nb, _ := big.Find("Never-mitigate")
	if nb.TotalNodeHours <= ns.TotalNodeHours {
		t.Fatalf("job scaling had no effect: %v vs %v", ns.TotalNodeHours, nb.TotalNodeHours)
	}
	if _, err := s.EvaluateJobScale(0); err == nil {
		t.Fatal("zero factor accepted")
	}
}

func TestRunExperimentNames(t *testing.T) {
	s := testSystem(t)
	if err := s.RunExperiment("nope", &strings.Builder{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// Run the cheapest experiment end to end through the public API.
	var sb strings.Builder
	if err := s.RunExperiment("calibration", &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "calibration") {
		t.Fatalf("unexpected output: %q", sb.String())
	}
	if len(ExperimentNames()) != 8 {
		t.Fatalf("experiments = %v", ExperimentNames())
	}
}

func TestTrainAgentAndController(t *testing.T) {
	s := testSystem(t)
	agent := s.TrainAgent()
	policy, err := agent.Policy()
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(policy)

	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	// Feed a healthy node and a degrading node.
	ctl.ObserveEvent(Event{Time: base, Node: 1, Type: NodeBoot, DIMM: -1, Rank: -1, Bank: -1, Row: -1, Col: -1})
	for i := 0; i < 50; i++ {
		ctl.ObserveEvent(Event{
			Time: base.Add(time.Duration(i) * time.Minute),
			Node: 2, DIMM: 16, Type: CorrectedError, Count: 200,
			Rank: 0, Bank: 1, Row: 100 + i, Col: 7,
		})
	}
	ctl.ObserveEvent(Event{Time: base.Add(time.Hour), Node: 2, DIMM: 16, Type: UEWarning,
		Rank: -1, Bank: -1, Row: -1, Col: -1})

	// Recommendations must be callable for both nodes and for an unseen
	// node without panicking; decisions themselves depend on training.
	d := ctl.Recommend(1, base.Add(2*time.Hour), 10)
	if d.Node != 1 || d.Policy == "" || d.ModelVersion == "" || !d.HasQ {
		t.Fatalf("decision missing bookkeeping: %+v", d)
	}
	if d.Features == (Decision{}).Features {
		t.Fatalf("decision carries no feature snapshot: %+v", d)
	}
	_ = ctl.Recommend(2, base.Add(2*time.Hour), 5000)
	_ = ctl.Recommend(99, base, 1)
	if n := ctl.NodeCount(); n != 2 {
		t.Fatalf("tracked %d nodes, want 2 (queries must not create state)", n)
	}
	ctl.Forget(2)
	if n := ctl.NodeCount(); n != 1 {
		t.Fatalf("tracked %d nodes after Forget, want 1", n)
	}
	_ = ctl.Recommend(2, base.Add(3*time.Hour), 1)
}

func TestAgentSerializationRoundTrip(t *testing.T) {
	s := testSystem(t)
	agent := s.TrainAgent()
	data, err := json.Marshal(agent)
	if err != nil {
		t.Fatal(err)
	}
	var restored Agent
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	// Both must produce identical recommendations.
	pa, err := agent.Policy()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := restored.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if pa.Version() != pb.Version() {
		t.Fatalf("restored agent has version %q, want %q", pb.Version(), pa.Version())
	}
	ctlA := NewController(pa)
	ctlB := NewController(pb)
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		cost := float64(i) * 500
		at := base.Add(time.Duration(i) * time.Hour)
		if ctlA.Recommend(1, at, cost).Action != ctlB.Recommend(1, at, cost).Action {
			t.Fatalf("restored agent disagrees at cost %v", cost)
		}
	}
}

func TestUnmarshalRejectsWrongDims(t *testing.T) {
	var a Agent
	bad := `{"config":{"Inputs":3,"Outputs":2},"params":[[0,0,0,0,0,0],[0,0]]}`
	if err := json.Unmarshal([]byte(bad), &a); err == nil {
		t.Fatal("wrong-dimension model accepted")
	}
}

func TestBudgetMapping(t *testing.T) {
	cfgs := []Config{DefaultConfig(BudgetCI), DefaultConfig(BudgetDefault), DefaultConfig(BudgetPaper)}
	for _, c := range cfgs {
		if c.MitigationCostNodeMinutes != 2 || !c.Restartable {
			t.Fatal("default config wrong")
		}
	}
}
