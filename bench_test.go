// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5) at CI scale, the ablation benches DESIGN.md calls out, and
// micro-benchmarks of the substrates. Run with:
//
//	go test -bench=. -benchmem
//
// The per-figure benches report ns/op for a full regeneration of the
// figure's data at the benchmark world's scale; EXPERIMENTS.md records the
// actual series produced at the default preset.
package uerl

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/errlog"
	"repro/internal/evalx"
	"repro/internal/experiments"
	"repro/internal/features"
	"repro/internal/jobs"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/policies"
	"repro/internal/rf"
	"repro/internal/rl"
	"repro/internal/telemetry"
)

var (
	benchWorldOnce sync.Once
	benchWorld     *experiments.World
)

// world returns a shared CI-scale world for the figure benches.
func world(b *testing.B) *experiments.World {
	b.Helper()
	benchWorldOnce.Do(func() {
		benchWorld = experiments.BuildWorld(experiments.ScaleFor(evalx.PresetCI))
	})
	return benchWorld
}

// ---- One benchmark per paper table/figure (DESIGN.md §3) ----

// BenchmarkFig3CostBenefit regenerates Figure 3: the total-cost comparison
// of all eight approaches at 2, 5 and 10 node-minute mitigation costs.
func BenchmarkFig3CostBenefit(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		w.ResetCache()
		r := experiments.RunFig3(w)
		r.Render(io.Discard)
	}
}

// BenchmarkFig4TimeSeries regenerates Figure 4: per-split totals.
func BenchmarkFig4TimeSeries(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		w.ResetCache()
		r := experiments.RunFig4(w)
		r.Render(io.Discard)
	}
}

// BenchmarkFig5Manufacturers regenerates Figure 5: MN/All, MN/A, MN/B,
// MN/C and MN/ABC.
func BenchmarkFig5Manufacturers(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		w.ResetCache()
		r := experiments.RunFig5(w)
		r.Render(io.Discard)
	}
}

// BenchmarkFig6Behavior regenerates Figure 6: the agent-behaviour heat map
// over potential UE cost × RF-predicted probability.
func BenchmarkFig6Behavior(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		w.ResetCache()
		r := experiments.RunFig6(w)
		r.Render(io.Discard)
	}
}

// BenchmarkTable2Metrics regenerates Table 2: classification metrics for
// all approaches plus the RL uniform-cost-range rows.
func BenchmarkTable2Metrics(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		w.ResetCache()
		r := experiments.RunTable2(w)
		r.Render(io.Discard)
	}
}

// BenchmarkFig7JobScaling regenerates Figure 7 (both 7a total cost and 7b
// mitigation cost) over a reduced factor sweep.
func BenchmarkFig7JobScaling(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		w.ResetCache()
		r := experiments.RunFig7(w, []float64{0.1, 1, 10})
		r.Render(io.Discard)
	}
}

// BenchmarkLogGeneration regenerates the §2.1 synthetic log and its
// calibration summary.
func BenchmarkLogGeneration(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		r := experiments.RunCalibration(w)
		r.Render(io.Discard)
	}
}

// ---- Ablation benches (DESIGN.md §5) ----

// BenchmarkAblationPER compares PER against uniform replay (and the other
// DESIGN.md ablations) on one split; the rendered table carries the costs.
func BenchmarkAblationPER(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		w.ResetCache()
		r := experiments.RunAblation(w)
		r.Render(io.Discard)
	}
}

// ---- Substrate micro-benchmarks ----

// BenchmarkNNForward measures one forward pass of the paper's
// 256-256-128-64 dueling architecture.
func BenchmarkNNForward(b *testing.B) {
	net := nn.New(nn.Config{Inputs: features.Dim, Hidden: []int{256, 256, 128, 64},
		Outputs: 2, Dueling: true, Seed: 1})
	s := net.NewScratch()
	x := make([]float64, features.Dim)
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardInto(s, x)
	}
}

// BenchmarkNNForwardBatch measures a DQN-minibatch (32-sample) batched
// forward pass; ns/sample is the figure comparable with BenchmarkNNForward.
func BenchmarkNNForwardBatch(b *testing.B) {
	const batch = 32
	net := nn.New(nn.Config{Inputs: features.Dim, Hidden: []int{256, 256, 128, 64},
		Outputs: 2, Dueling: true, Seed: 1})
	bs := net.NewBatchScratch(batch)
	xs := make([]float64, batch*features.Dim)
	for i := range xs {
		xs[i] = float64(i%features.Dim) * 0.1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatchInto(bs, xs, batch)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/sample")
}

// BenchmarkNNTrainStep measures one single-sample forward+backward+Adam on
// the paper's architecture — the pre-batching reference cost per sample.
func BenchmarkNNTrainStep(b *testing.B) {
	net := nn.New(nn.Config{Inputs: features.Dim, Hidden: []int{256, 256, 128, 64},
		Outputs: 2, Dueling: true, Seed: 1})
	s := net.NewScratch()
	opt := &nn.Adam{LR: 1e-3}
	x := make([]float64, features.Dim)
	dOut := []float64{0.1, -0.1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardInto(s, x)
		net.ZeroGrad()
		net.Backward(s, dOut)
		opt.Step(net.Params())
	}
}

// BenchmarkNNTrainStepBatched measures one batched DQN train step (32
// samples through forward, backward and Adam as single batched passes);
// ns/sample is the figure comparable with BenchmarkNNTrainStep.
func BenchmarkNNTrainStepBatched(b *testing.B) {
	const batch = 32
	net := nn.New(nn.Config{Inputs: features.Dim, Hidden: []int{256, 256, 128, 64},
		Outputs: 2, Dueling: true, Seed: 1})
	bs := net.NewBatchScratch(batch)
	opt := &nn.Adam{LR: 1e-3}
	xs := make([]float64, batch*features.Dim)
	for i := range xs {
		xs[i] = float64(i%features.Dim) * 0.1
	}
	dOut := make([]float64, batch*2)
	for i := range dOut {
		if i%2 == 0 {
			dOut[i] = 0.1
		} else {
			dOut[i] = -0.1
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatchInto(bs, xs, batch)
		net.ZeroGrad()
		net.BackwardBatch(bs, dOut, batch)
		opt.Step(net.Params())
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/sample")
}

// BenchmarkDQNTrainEpochParallel measures a 32-step DQN training epoch
// (batched forward/backward/Adam over PER minibatches plus one target
// sync) under the nn.KernelFast chunked data-parallel trainer at several
// worker counts. Trained weights are bit-identical across the worker
// sub-benchmarks (see rl's TestChunkedTrainingBitIdenticalAcrossWorkers);
// only wall clock may differ, and only on multi-core hosts.
func BenchmarkDQNTrainEpochParallel(b *testing.B) {
	const stepsPerEpoch = 32
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := rl.NewPrioritizedReplay(rl.PERConfig{Capacity: 1 << 13})
			rng := mathx.NewRNG(7)
			for i := 0; i < 1<<13; i++ {
				tr := rl.Transition{
					S:     make([]float64, features.Dim),
					NextS: make([]float64, features.Dim),
					A:     i % 2, R: rng.NormFloat64(), Done: i%97 == 0,
				}
				for j := range tr.S {
					tr.S[j] = rng.NormFloat64()
					tr.NextS[j] = rng.NormFloat64()
				}
				p.Add(tr)
			}
			a := rl.NewAgent(rl.AgentConfig{
				StateLen: features.Dim, NumActions: 2,
				Hidden: []int{256, 256, 128, 64}, Dueling: true, DoubleDQN: true,
				Gamma: 0.99, LearningRate: 1e-3, BatchSize: 32, GradClip: 10,
				Seed: 1, Kernel: nn.KernelFast, TrainWorkers: workers,
			}, p)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for s := 0; s < stepsPerEpoch; s++ {
					if _, trained := a.TrainStep(); !trained {
						b.Fatal("train step skipped")
					}
				}
				a.SyncTarget()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*stepsPerEpoch), "ns/step")
		})
	}
}

// BenchmarkPERSample measures prioritized replay sampling at DQN batch
// size from a full buffer.
func BenchmarkPERSample(b *testing.B) {
	p := rl.NewPrioritizedReplay(rl.PERConfig{Capacity: 1 << 16})
	tr := rl.Transition{S: make([]float64, features.Dim), NextS: make([]float64, features.Dim)}
	for i := 0; i < 1<<16; i++ {
		p.Add(tr)
	}
	rng := mathx.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Sample(rng, 32)
	}
}

// BenchmarkForestPredict measures one SC20-RF score on a 100-tree forest.
func BenchmarkForestPredict(b *testing.B) {
	rng := mathx.NewRNG(1)
	var x [][]float64
	var y []bool
	for i := 0; i < 2000; i++ {
		v := make([]float64, features.PredictorDim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		x = append(x, v)
		y = append(y, rng.Bool(0.1))
	}
	forest := rf.TrainForest(x, y, rf.DefaultForestConfig())
	probe := x[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forest.PredictProb(probe)
	}
}

// BenchmarkFeatureTracker measures per-tick feature extraction.
func BenchmarkFeatureTracker(b *testing.B) {
	t0 := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	tick := errlog.Tick{Time: t0, Node: 1, Events: []errlog.Event{{
		Time: t0, Node: 1, DIMM: 8, Type: errlog.CE, Count: 17,
		Rank: 1, Bank: 3, Row: 900, Col: 12,
	}}}
	tr := features.NewTracker()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick.Time = t0.Add(time.Duration(i) * time.Minute)
		tick.Events[0].Time = tick.Time
		tr.Observe(tick, 100)
		if i%4096 == 0 {
			tr.CompactHistory(tick.Time)
		}
	}
}

// BenchmarkReplayNever measures the policy-replay engine throughput with a
// no-op policy over the full CI-scale log, fanning nodes out across
// GOMAXPROCS workers (the default). Output is bit-identical to the serial
// bench below; only wall clock changes with cores.
func BenchmarkReplayNever(b *testing.B) {
	benchReplay(b, 0)
}

// BenchmarkReplayNeverSerial is the single-worker baseline for the
// parallel bench above.
func BenchmarkReplayNeverSerial(b *testing.B) {
	benchReplay(b, 1)
}

func benchReplay(b *testing.B, parallelism int) {
	w := world(b)
	pre := errlog.Preprocess(w.Log)
	byNode := env.GroupTicks(errlog.Merge(pre, errlog.MergeWindow))
	sampler := jobs.NewSampler(w.Trace)
	cfg := evalx.ReplayConfig{Env: env.DefaultConfig(), JobSeed: 1, Parallelism: parallelism}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evalx.Replay(noopDecider{}, byNode, sampler, cfg)
	}
}

type noopDecider struct{}

func (noopDecider) Name() string                 { return "noop" }
func (noopDecider) Decide(policies.Context) bool { return false }
func (noopDecider) ConcurrentSafe() bool         { return true }

// ---- Serving-path benchmarks (the controller hot paths) ----

// servingPolicy builds an RL serving policy over the paper's 256-256-128-64
// architecture — untrained weights, identical inference cost to a trained
// model.
func servingPolicy(b *testing.B) Policy {
	b.Helper()
	net := nn.New(nn.Config{Inputs: features.Dim, Hidden: []int{256, 256, 128, 64},
		Outputs: 2, Dueling: true, Seed: 1})
	p, err := newRLPolicy(net, nil)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// benchEvents synthesizes an event stream round-robined across nodes with
// non-decreasing per-node timestamps.
func benchEvents(n, nodes int, base time.Time) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{
			Time: base.Add(time.Duration(i) * time.Second),
			Node: i % nodes, DIMM: 8, Type: CorrectedError, Count: 3,
			Rank: i % 2, Bank: i % 8, Row: 100 + i%50, Col: i % 16,
		}
	}
	return evs
}

// BenchmarkControllerObserveEvent measures single-event ingestion: shard
// lookup, lock, tracker update.
func BenchmarkControllerObserveEvent(b *testing.B) {
	ctl := NewController(AlwaysPolicy(), WithShards(8))
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	ev := Event{Node: 1, DIMM: 8, Type: CorrectedError, Count: 3, Rank: 0, Bank: 1, Row: 100, Col: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Time = base.Add(time.Duration(i) * time.Second)
		ev.Node = i & 1023
		ctl.ObserveEvent(ev)
	}
}

// BenchmarkControllerObserveBatch measures batched ingestion of 1024
// events across 256 nodes (one shard lock per shard per batch instead of
// one per event); ns/op is per event.
func BenchmarkControllerObserveBatch(b *testing.B) {
	ctl := NewController(AlwaysPolicy(), WithShards(8))
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	batch := benchEvents(1024, 256, base)
	span := batch[len(batch)-1].Time.Sub(batch[0].Time) + time.Second
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctl.ObserveBatch(ctx, batch); err != nil {
			b.Fatal(err)
		}
		// Keep per-node timestamps advancing across iterations so the
		// steady state, not an ever-growing unsorted history, is measured.
		for j := range batch {
			batch[j].Time = batch[j].Time.Add(span)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(batch)), "ns/event")
}

// BenchmarkControllerRecommendParallel measures side-effect-free query
// throughput with goroutines hammering one controller across shards, the
// fleet-polling hot path (Q-network forward included).
func BenchmarkControllerRecommendParallel(b *testing.B) {
	ctl := NewController(servingPolicy(b), WithShards(8))
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	if _, err := ctl.ObserveBatch(context.Background(), benchEvents(4096, 256, base)); err != nil {
		b.Fatal(err)
	}
	at := base.Add(2 * time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		node := 0
		for pb.Next() {
			node++
			d := ctl.Recommend(node&255, at, float64(node&8191))
			if d.Node != node&255 {
				// Fatal is not allowed off the benchmark goroutine.
				b.Error("wrong node answered")
				return
			}
		}
	})
}

// BenchmarkControllerRecommendSerial is the single-caller baseline for the
// parallel bench above.
func BenchmarkControllerRecommendSerial(b *testing.B) {
	ctl := NewController(servingPolicy(b), WithShards(8))
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	if _, err := ctl.ObserveBatch(context.Background(), benchEvents(4096, 256, base)); err != nil {
		b.Fatal(err)
	}
	at := base.Add(2 * time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl.Recommend(i&255, at, float64(i&8191))
	}
}

// BenchmarkTelemetryFullScale generates the full 3056-node two-year log,
// the paper's actual population.
func BenchmarkTelemetryFullScale(b *testing.B) {
	cfg := telemetry.Default()
	for i := 0; i < b.N; i++ {
		l := telemetry.Generate(cfg)
		if len(l.Events) == 0 {
			b.Fatal("empty log")
		}
	}
}
