//go:build !race

package uerl

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
