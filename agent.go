package uerl

import (
	"encoding/json"
	"fmt"

	"repro/internal/features"
	"repro/internal/nn"
)

// Agent is a trained mitigation agent — the pre-redesign serving handle,
// kept as a thin wrapper for existing callers. New code should use
// System.TrainPolicy(PolicyRL), which returns a Policy that plugs directly
// into NewController, SaveModel and EvaluatePolicy; Agent.Policy bridges
// an existing Agent into that world.
type Agent struct {
	net *nn.Network
}

// TrainAgent trains an agent on the system's synthetic history using the
// paper's protocol (training on the first 75% of the log). The budget in
// the system's configuration controls the episode and search budget. The
// fit is shared with TrainPolicy, so mixing the two APIs never trains
// twice.
func (s *System) TrainAgent() *Agent {
	split := s.trainedSplit()
	a := &Agent{}
	if split.Net != nil {
		a.net = split.Net.Clone()
	}
	return a
}

// Policy converts the agent to the serving Policy interface.
func (a *Agent) Policy() (Policy, error) {
	if a.net == nil {
		return nil, fmt.Errorf("uerl: agent has no network to serve")
	}
	return newRLPolicy(a.net, nil)
}

// MarshalJSON serializes the agent's network. Prefer SaveModel, which
// wraps the same payload in a versioned header.
func (a *Agent) MarshalJSON() ([]byte, error) {
	if a.net == nil {
		return nil, fmt.Errorf("uerl: agent has no serializable network")
	}
	return json.Marshal(a.net)
}

// UnmarshalJSON restores an agent serialized with MarshalJSON.
func (a *Agent) UnmarshalJSON(data []byte) error {
	var net nn.Network
	if err := json.Unmarshal(data, &net); err != nil {
		return err
	}
	if net.Config().Inputs != features.Dim {
		return fmt.Errorf("uerl: model expects %d inputs, this build uses %d",
			net.Config().Inputs, features.Dim)
	}
	a.net = &net
	return nil
}
