package uerl

import "time"

// Serving is the surface the online-learning lifecycle drives: ingest
// telemetry, answer mitigation queries, report and deploy the serving
// policy. A single-process *Controller implements it directly; the
// internal/fleet Coordinator implements it across N worker processes
// behind a transport boundary. The OnlineLearner is written against this
// interface, so the same drift → retrain → shadow → deploy loop runs
// unchanged over either deployment shape.
//
// Implementations must keep the Controller's contracts: Recommend is
// side-effect-free w.r.t. node state, never blocks indefinitely and never
// errors (distributed implementations degrade to a conservative
// ActionNone Decision flagged Degraded instead — see Decision.Degraded),
// and DeployPolicy never disturbs concurrent Recommend traffic.
type Serving interface {
	// ObserveEvent ingests one telemetry event. Events must arrive in
	// non-decreasing time order per node.
	ObserveEvent(e Event)
	// Recommend answers a mitigation query from the node's current
	// feature state (see Controller.Recommend).
	Recommend(node int, at time.Time, potentialCostNodeHours float64) Decision
	// Policy returns the currently served (committed) policy.
	Policy() Policy
	// DeployPolicy rolls out a new serving policy, returning the policy
	// it replaced. A non-nil error means the rollout was rejected (e.g.
	// a worker quorum refused the artifact) and the previous policy is
	// still serving.
	DeployPolicy(p Policy) (Policy, error)
}

// decisionAccountant is the served-decision accounting surface: budget
// charging and probation scoring run off the stream of decisions the
// fleet actually acted on, plus realized UE outcomes. *Guard implements
// it for single-process serving; the fleet Coordinator implements it by
// routing each call to the guard of the worker owning the node. The
// OnlineLearner feeds whichever one the deployment provides.
type decisionAccountant interface {
	ObserveDecision(d Decision)
	ObserveUE(node int, at time.Time, realizedCostNodeHours float64)
}
