// Package uerl is a from-scratch Go implementation of "Reinforcement
// Learning-based Adaptive Mitigation of Uncorrected DRAM Errors in the
// Field" (Boixaderas et al., HPDC 2024): a dueling double deep Q-network
// with prioritized experience replay that decides, event by event, whether
// to trigger an uncorrected-error mitigation action (checkpoint, live
// migration, node clone) based on the node's error history and the running
// job's potential loss.
//
// The package offers two entry points.
//
// # The research harness
//
// NewSystem builds a synthetic MareNostrum-style world (error log + job
// trace) from functional options, and Evaluate reproduces the paper's
// cost–benefit comparison of Never/Always/SC20-RF/Myopic-RF/RL/Oracle
// under time-series nested cross-validation:
//
//	sys := uerl.NewSystem(uerl.WithSeed(42), uerl.WithBudgetCI())
//	sys.Evaluate().Render(os.Stdout)
//
// (NewSystemFromConfig keeps the old Config-struct path working.)
//
// # The serving layer
//
// Every §4.2 approach implements the Policy interface. TrainPolicy fits
// one (the trained kinds share a cached fit), SaveModel/LoadModel persist
// it as a versioned artifact, and a Controller serves it against a live
// stream of node telemetry — the monitoring-and-decision daemon of the
// paper's Fig. 1:
//
//	policy, _ := sys.TrainPolicy(uerl.PolicyRL)
//	_ = uerl.SaveModelFile("model.json", policy)
//
//	ctl := uerl.NewController(policy, uerl.WithShards(8))
//	ctl.ObserveBatch(ctx, events)               // concurrent ingestion
//	d := ctl.Recommend(node, now, potentialNH)  // side-effect-free query
//	// d.Action, d.Score, d.QValues, d.Features, d.ModelVersion
//
// The controller is sharded and safe for concurrent use: ingestion locks
// only the queried node's shard, and Recommend is a read-only path, so
// polling never perturbs feature state. EvaluatePolicy scores any Policy —
// including custom ones — under the paper's cost model.
//
// Everything underneath (neural networks, RL, the telemetry and job
// simulators, the random-forest baseline, the evaluation pipeline) is
// implemented in this repository's internal packages using only the Go
// standard library.
package uerl

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/env"
	"repro/internal/errlog"
	"repro/internal/evalx"
	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// Budget selects the compute budget of training and evaluation protocols.
type Budget int

const (
	// BudgetCI runs in seconds (tiny population, fixed hyperparameters).
	BudgetCI Budget = iota
	// BudgetDefault runs in minutes (reduced population, small search).
	BudgetDefault
	// BudgetPaper reproduces the full §4.1 protocol (hours to days).
	BudgetPaper
)

func (b Budget) preset() evalx.Preset {
	switch b {
	case BudgetPaper:
		return evalx.PresetPaper
	case BudgetDefault:
		return evalx.PresetDefault
	default:
		return evalx.PresetCI
	}
}

// String returns the budget's CLI name ("ci", "default" or "paper").
func (b Budget) String() string {
	switch b {
	case BudgetPaper:
		return "paper"
	case BudgetDefault:
		return "default"
	default:
		return "ci"
	}
}

// ParseBudget converts a CLI string to a Budget.
func ParseBudget(s string) (Budget, error) {
	switch s {
	case "ci":
		return BudgetCI, nil
	case "default":
		return BudgetDefault, nil
	case "paper":
		return BudgetPaper, nil
	}
	return 0, fmt.Errorf("uerl: unknown budget %q (want ci, default or paper)", s)
}

// Config parameterizes a synthetic world and the evaluation protocol. The
// zero value is not usable; start from DefaultConfig.
type Config struct {
	// Seed makes the whole pipeline reproducible.
	Seed int64
	// Scale multiplies the MareNostrum 3 population (1 = 3056 nodes,
	// ~25k DIMMs). The Budget's default is used when 0.
	Scale float64
	// Jobs is the synthetic MN4 trace length (0 = Budget default).
	Jobs int
	// JobSizeScale is the §5.6 job-size scaling factor (default 1).
	JobSizeScale float64
	// MitigationCostNodeMinutes is the per-action mitigation cost
	// (default 2, the paper's main configuration).
	MitigationCostNodeMinutes float64
	// Restartable selects whether mitigation establishes a restart point
	// (checkpoint-like); the paper's second and last user parameter.
	Restartable bool
	// Budget selects protocol scale.
	Budget Budget
}

// DefaultConfig returns the paper's configuration at the given budget.
func DefaultConfig(b Budget) Config {
	return Config{
		Seed:                      1,
		JobSizeScale:              1,
		MitigationCostNodeMinutes: 2,
		Restartable:               true,
		Budget:                    b,
	}
}

// System is a generated world plus its evaluation configuration. Its
// training entry points (TrainPolicy, TrainAgent) share one cached fit,
// and the replay context backing EvaluatePolicy is computed once; both are
// concurrency-safe.
type System struct {
	cfg   Config
	world *experiments.World

	splitOnce sync.Once
	split     *evalx.SingleSplit

	replayOnce sync.Once
	replay     replayCtx
}

// NewSystem generates a synthetic world from functional options, applied
// on top of the paper's configuration at BudgetCI:
//
//	uerl.NewSystem(uerl.WithSeed(1), uerl.WithBudgetPaper())
func NewSystem(opts ...SystemOption) *System {
	cfg := DefaultConfig(BudgetCI)
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewSystemFromConfig(cfg)
}

// NewSystemFromConfig generates the synthetic world for cfg — the
// pre-options construction path, kept for existing callers.
func NewSystemFromConfig(cfg Config) *System {
	scale := experiments.ScaleFor(cfg.Budget.preset())
	scale.Seed = cfg.Seed
	if cfg.Scale > 0 {
		scale.TelemetryScale = cfg.Scale
	}
	if cfg.Jobs > 0 {
		scale.JobCount = cfg.Jobs
	}
	w := experiments.BuildWorld(scale)
	if cfg.JobSizeScale > 0 && cfg.JobSizeScale != 1 {
		w.JCfg = w.JCfg.WithScale(cfg.JobSizeScale)
		w.Trace = jobs.Generate(w.JCfg)
	}
	if cfg.MitigationCostNodeMinutes == 0 {
		cfg.MitigationCostNodeMinutes = 2
	}
	return &System{cfg: cfg, world: w}
}

// trainedSplit lazily trains the shared single-split fit (first 75% of the
// log, §4.1): the RF forest with its optimal threshold and the RL agent.
func (s *System) trainedSplit() *evalx.SingleSplit {
	s.splitOnce.Do(func() {
		split := evalx.TrainSingleSplit(s.world.Log, s.world.Trace, s.cvConfig(), trainFrac)
		s.split = &split
	})
	return s.split
}

// trainFrac is the single-split train/test boundary (§4.1).
const trainFrac = 0.75

// replayCtx is the preprocessed world used to replay policies without
// training anything: per-node merged ticks, the job sampler, and the
// single-split train/test boundary.
type replayCtx struct {
	byNode  [][]errlog.Tick
	sampler *jobs.Sampler
	trainTo time.Time
}

// replayContext lazily preprocesses the log for policy replay.
func (s *System) replayContext() replayCtx {
	s.replayOnce.Do(func() {
		pre := errlog.Preprocess(s.world.Log)
		s.replay.byNode = env.GroupTicks(errlog.Merge(pre, errlog.MergeWindow))
		s.replay.sampler = jobs.NewSampler(s.world.Trace)
		first, last := pre.Span()
		s.replay.trainTo = first.Add(time.Duration(float64(last.Sub(first)) * trainFrac))
	})
	return s.replay
}

// World exposes the underlying experiment world for advanced use.
func (s *System) World() *experiments.World { return s.world }

// LogStats summarizes the synthetic error log against the paper's §2.1
// aggregate counts.
func (s *System) LogStats() telemetry.Stats {
	return telemetry.Summarize(s.world.Log)
}

// PolicyCost is one approach's outcome in the cost–benefit analysis.
// The JSON tags are the stable machine-readable shape emitted by the
// CLIs' -json modes.
type PolicyCost struct {
	Policy         string  `json:"policy"`
	TotalNodeHours float64 `json:"total_node_hours"`
	UENodeHours    float64 `json:"ue_node_hours"`
	MitigationNH   float64 `json:"mitigation_node_hours"`
	Mitigations    int     `json:"mitigations"`
	Recall         float64 `json:"recall"`
	Precision      float64 `json:"precision"`
}

// Report is the §5.1 cost–benefit comparison.
type Report struct {
	Costs []PolicyCost
	cv    evalx.CVResult
}

// Find returns the row for the named policy.
func (r Report) Find(name string) (PolicyCost, bool) {
	for _, c := range r.Costs {
		if c.Policy == name {
			return c, true
		}
	}
	return PolicyCost{}, false
}

// Render writes the report as an aligned table.
func (r Report) Render(w io.Writer) {
	fmt.Fprintln(w, "Cost-benefit analysis (node-hours, summed over cross-validation splits)")
	for _, c := range r.Costs {
		fmt.Fprintf(w, "  %-16s total=%9.1f  ue=%9.1f  mitigation=%8.1f  mitigations=%6d  recall=%3.0f%%\n",
			c.Policy, c.TotalNodeHours, c.UENodeHours, c.MitigationNH, c.Mitigations, 100*c.Recall)
	}
}

func reportFrom(cv evalx.CVResult) Report {
	rep := Report{cv: cv}
	for _, t := range cv.Totals {
		rep.Costs = append(rep.Costs, PolicyCost{
			Policy:         t.Policy,
			TotalNodeHours: t.TotalCost(),
			UENodeHours:    t.UECost,
			MitigationNH:   t.MitigationCost + t.TrainingCost,
			Mitigations:    t.Metrics.Mitigations,
			Recall:         t.Metrics.Recall(),
			Precision:      t.Metrics.Precision(),
		})
	}
	return rep
}

func (s *System) cvConfig() evalx.CVConfig {
	cfg := evalx.DefaultCVConfig(s.cfg.Budget.preset())
	cfg.Parts = s.world.Scale.Parts
	cfg.Seed = s.cfg.Seed
	cfg.Env.MitigationCostNodeMinutes = s.cfg.MitigationCostNodeMinutes
	cfg.Env.Restartable = s.cfg.Restartable
	return cfg
}

// Evaluate runs the paper's full evaluation (§4.1 protocol, §4.2 policies)
// on this system and returns the cost–benefit report.
func (s *System) Evaluate() Report {
	return reportFrom(evalx.RunCV(s.world.Log, s.world.Trace, s.cvConfig()))
}

// EvaluateManufacturer evaluates only the nodes of one anonymized DRAM
// manufacturer ("A", "B" or "C"), the §4.5 per-manufacturer protocol.
func (s *System) EvaluateManufacturer(name string) (Report, error) {
	var m errlog.Manufacturer
	switch name {
	case "A":
		m = errlog.ManufacturerA
	case "B":
		m = errlog.ManufacturerB
	case "C":
		m = errlog.ManufacturerC
	default:
		return Report{}, fmt.Errorf("uerl: unknown manufacturer %q (want A, B or C)", name)
	}
	part := s.world.Log.PartitionManufacturer(m)
	if len(part.Events) == 0 {
		return Report{}, fmt.Errorf("uerl: manufacturer %s has no events", name)
	}
	return reportFrom(evalx.RunCV(part, s.world.Trace, s.cvConfig())), nil
}

// EvaluateJobScale re-evaluates with job sizes scaled by factor, training a
// fresh model for the scaled system (§5.6).
func (s *System) EvaluateJobScale(factor float64) (Report, error) {
	if factor <= 0 {
		return Report{}, fmt.Errorf("uerl: job scale factor must be positive, got %v", factor)
	}
	trace := jobs.Generate(s.world.JCfg.WithScale(factor))
	return reportFrom(evalx.RunCV(s.world.Log, trace, s.cvConfig())), nil
}

// ExperimentNames lists the runnable paper experiments.
func ExperimentNames() []string {
	return []string{"calibration", "fig3", "fig4", "fig5", "fig6", "table2", "fig7", "ablation"}
}

// RunExperiment regenerates one paper figure/table (see ExperimentNames)
// and renders it to w.
func (s *System) RunExperiment(name string, w io.Writer) error {
	switch name {
	case "calibration":
		experiments.RunCalibration(s.world).Render(w)
	case "fig3":
		experiments.RunFig3(s.world).Render(w)
	case "fig4":
		experiments.RunFig4(s.world).Render(w)
	case "fig5":
		experiments.RunFig5(s.world).Render(w)
	case "fig6":
		experiments.RunFig6(s.world).Render(w)
	case "table2":
		experiments.RunTable2(s.world).Render(w)
	case "fig7":
		experiments.RunFig7(s.world, nil).Render(w)
	case "ablation":
		experiments.RunAblation(s.world).Render(w)
	default:
		return fmt.Errorf("uerl: unknown experiment %q (want one of %v)", name, ExperimentNames())
	}
	return nil
}
