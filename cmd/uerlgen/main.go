// Command uerlgen generates a synthetic MareNostrum-3-style DRAM error log
// (and optionally a MareNostrum-4-style job trace) and prints calibration
// statistics against the paper's §2.1 aggregate counts.
//
// Usage:
//
//	uerlgen [-scale 0.1] [-seed 1] [-out log.csv] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/errlog"
	"repro/internal/jobs"
	"repro/internal/telemetry"
)

func main() {
	scale := flag.Float64("scale", 0.1, "population scale factor (1 = full MareNostrum 3)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "write the raw error log as CSV to this file")
	jobsOut := flag.String("jobs", "", "write a job trace summary to this file")
	jobCount := flag.Int("jobcount", 20000, "number of jobs in the trace")
	manufacturer := flag.String("manufacturer", "", "restrict the CSV export to one DRAM manufacturer (A, B or C)")
	flag.Parse()

	filter := errlog.Manufacturer(-1)
	if *manufacturer != "" {
		m, err := parseManufacturer(*manufacturer)
		if err != nil {
			fatal(err)
		}
		filter = m
	}

	cfg := telemetry.Default().Scale(*scale)
	cfg.Seed = *seed
	log := telemetry.Generate(cfg)
	stats := telemetry.Summarize(log)
	if filter >= 0 {
		log = log.PartitionManufacturer(filter)
	}

	fmt.Printf("generated %d events on %d nodes over %v\n",
		stats.Events, stats.Nodes, cfg.Duration)
	fmt.Printf("  CE records:        %d (%d corrected errors)\n", stats.CERecords, stats.TotalCEs)
	fmt.Printf("  UEs:               %d raw, %d first-in-burst\n", stats.UEs, stats.FirstUEs)
	fmt.Printf("  UE warnings:       %d\n", stats.UEWarnings)
	fmt.Printf("  boots:             %d\n", stats.Boots)
	fmt.Printf("  retirements:       %d\n", stats.Retirements)
	fmt.Printf("  post-merge ticks:  %d\n", stats.PostMergeTicks)
	fmt.Printf("  UEs by manufacturer: A=%d B=%d C=%d\n",
		stats.PerManufacturerUEs[0], stats.PerManufacturerUEs[1], stats.PerManufacturerUEs[2])

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := errlog.WriteCSV(f, log); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *jobsOut != "" {
		jcfg := jobs.Default()
		jcfg.Seed = *seed + 1
		jcfg.Count = *jobCount
		trace := jobs.Generate(jcfg)
		st := jobs.Stats(trace)
		f, err := os.Create(*jobsOut)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(f, "id,nodes,duration_hours")
		for _, j := range trace {
			fmt.Fprintf(f, "%d,%d,%.3f\n", j.ID, j.Nodes, j.Duration.Hours())
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d jobs, mean %.1f nodes, max %.0f node-hours\n",
			*jobsOut, st.Count, st.MeanNodes, st.MaxNodeHours)
	}
}

func parseManufacturer(s string) (errlog.Manufacturer, error) {
	switch s {
	case "A":
		return errlog.ManufacturerA, nil
	case "B":
		return errlog.ManufacturerB, nil
	case "C":
		return errlog.ManufacturerC, nil
	}
	return 0, fmt.Errorf("unknown manufacturer %q (want A, B or C)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uerlgen:", err)
	os.Exit(1)
}
