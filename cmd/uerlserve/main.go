// Command uerlserve demonstrates the online continual-learning serving
// loop on a days-long fleet scenario: it synthesizes a MareNostrum-style
// telemetry stream whose fault behaviour shifts mid-run (DIMM aging /
// fault-mode change), serves it through a Controller wrapped in an
// OnlineLearner, and reports the model lifecycle — drift detection,
// incremental retraining on live experience, shadow evaluation of each
// candidate against the incumbent, and the hot-swap promotions with
// their model lineage.
//
// Usage:
//
//	uerlserve [-seed 1] [-nodes 64] [-days 30] [-drift-day 15]
//	          [-drift-mult 6] [-policy always|never] [-model artifact.json]
//	          [-cost 100] [-mitcost 2] [-drift-window 256] [-drift-threshold 8]
//	          [-retrain-min 256] [-epoch-steps 64] [-shadow 128] [-shadow-ues 1]
//	          [-save final.json] [-json]
//
// With -guard the lifecycle runs behind the production guardrails:
// budgets (-node-budget, -fleet-budget, -promotions-per-day), promotion
// approval (-approve auto|deny), and post-promotion probation with
// rollback-on-regression (-probation, -probation-tolerance).
//
// With -scenario the run is driven by a declarative scenario spec (see
// scenarios/ and internal/scenario): telemetry overlay, drift schedule,
// fault-injection schedule, workload model, and lifecycle/guard
// configuration all come from the JSON file, and the output is the
// scenario survival summary. The legacy ad-hoc burst injector
// (-burst-day, -burst-ues, -burst-nodes) is deprecated: when used it is
// mapped onto a generated scenario spec and routed through the same
// pipeline.
//
// With -workers N the stream is served through the distributed fleet
// layer (internal/fleet): a coordinator rendezvous-hashes nodes across N
// in-process workers, and -kill-worker / -rejoin-worker (comma-separated
// id@day entries) schedule worker crashes and rejoins mid-stream to
// demonstrate failover replay and graceful degradation. With -guard the
// budget flags lower to per-worker guards; the promotion/approval/
// probation flags are lifecycle-level features a worker guard cannot
// arbitrate and are rejected. The -json report gains per-worker fleet
// health (including each worker's GuardStats).
//
// The whole run is deterministic for a fixed flag set.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	uerl "repro"
	"repro/internal/cliio"
	"repro/internal/errlog"
	"repro/internal/fleet"
	"repro/internal/nn"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

type legacyScenario struct {
	Seed      int64   `json:"seed"`
	Nodes     int     `json:"nodes"`
	Days      float64 `json:"days"`
	DriftDay  float64 `json:"drift_day"`
	DriftMult float64 `json:"drift_mult"`
	Events    int     `json:"events"`
	UEs       int     `json:"ues"`
	Initial   string  `json:"initial_version"`
	Guarded   bool    `json:"guarded,omitempty"`
	Workers   int     `json:"workers,omitempty"`
}

type jsonReport struct {
	Scenario legacyScenario        `json:"scenario"`
	Events   []uerl.LifecycleEvent `json:"lifecycle_events"`
	Stats    uerl.LearnerStats     `json:"stats"`
	// Lineage is the served model's version chain, newest first, ending
	// at the initial policy.
	Lineage []string `json:"lineage"`
	// Fleet is the distributed serving layer's health report — per-worker
	// state, owned nodes and GuardStats, failover/replay totals, journal
	// activity. Omitted without -workers.
	Fleet *fleet.Stats `json:"fleet,omitempty"`
}

func main() {
	seed := flag.Int64("seed", 1, "random seed (stream and trainer)")
	nodes := flag.Int("nodes", 64, "fleet size in nodes")
	days := flag.Float64("days", 30, "scenario length in days")
	driftDay := flag.Float64("drift-day", 15, "day the fault behaviour shifts (0 disables drift)")
	driftMult := flag.Float64("drift-mult", 6, "CE rate/burst multiplier after the shift")
	policy := flag.String("policy", "always", "initial policy: always or never")
	model := flag.String("model", "", "initial model artifact (overrides -policy)")
	cost := flag.Float64("cost", 100, "potential UE cost in node-hours (workload model)")
	mitcost := flag.Float64("mitcost", 2, "mitigation cost in node-minutes")
	driftWindow := flag.Int("drift-window", 256, "drift-detection window samples")
	driftThreshold := flag.Float64("drift-threshold", 8, "drift z-score threshold")
	retrainMin := flag.Int("retrain-min", 256, "minimum new transitions between retrains")
	epochSteps := flag.Int("epoch-steps", 64, "gradient steps per retraining epoch")
	shadow := flag.Int("shadow", 128, "shadow decisions required before promotion is judged")
	shadowUEs := flag.Int("shadow-ues", 1, "realized UEs required in the shadow window before promotion is judged (0 judges on mitigation spend alone)")
	kernel := flag.String("kernel", "reference", "training kernel/stream version: reference (bit-exact legacy stream) or fast (FMA kernels + data-parallel chunked gradients; serving inference always uses reference)")
	trainWorkers := flag.Int("train-workers", 0, "workers computing minibatch chunk gradients under -kernel fast (0 = GOMAXPROCS; weights are bit-identical for every value)")
	save := flag.String("save", "", "save the final serving model artifact to this path")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of the text log")
	scenarioFile := flag.String("scenario", "", "run a declarative scenario spec (JSON file) through the deterministic scenario harness; stream/drift/fault/workload/lifecycle flags are taken from the spec")

	guarded := flag.Bool("guard", false, "run the lifecycle behind production guardrails")
	nodeBudget := flag.Float64("node-budget", 0, "per-node checkpoint budget in node-hours per window (0 disables)")
	nodeBudgetWindow := flag.Duration("node-budget-window", 24*time.Hour, "sliding window of the per-node budget")
	fleetBudget := flag.Int("fleet-budget", 0, "fleet-wide mitigation budget per window (0 disables)")
	fleetBudgetWindow := flag.Duration("fleet-budget-window", time.Hour, "sliding window of the fleet budget")
	promotionsPerDay := flag.Int("promotions-per-day", 0, "promotion budget per sliding 24h (0 disables)")
	approve := flag.String("approve", "auto", "promotion approval hook: auto or deny")
	probation := flag.Int("probation", 4096, "post-promotion probation window in decisions (0 disables rollback)")
	probationTol := flag.Float64("probation-tolerance", 5, "probation regression tolerance in node-hours")
	burstDay := flag.Float64("burst-day", 0, "day an adversarial UE burst strikes (0 disables)")
	burstUEs := flag.Int("burst-ues", 32, "UEs in the injected burst")
	burstNodes := flag.Int("burst-nodes", 8, "nodes the burst strikes round-robin")

	workers := flag.Int("workers", 0, "serve through the distributed fleet layer with this many in-process workers (0 = single-process Controller)")
	killWorker := flag.String("kill-worker", "", "comma-separated id@day entries: crash the worker at that stream day (state lost, journal replays on rejoin)")
	rejoinWorker := flag.String("rejoin-worker", "", "comma-separated id@day entries: bring a killed worker back")
	flag.Parse()

	if *scenarioFile != "" || (*burstDay > 0 && *burstDay < *days) {
		if *model != "" || *save != "" {
			fatal(fmt.Errorf("-model and -save are not supported in scenario mode"))
		}
		if *workers > 0 {
			fatal(fmt.Errorf("-workers is not supported in scenario mode; give the spec a serving section instead"))
		}
		if *kernel != "reference" {
			fatal(fmt.Errorf("scenario runs use the reference kernel; drop -kernel %s", *kernel))
		}
		var spec scenario.Spec
		if *scenarioFile != "" {
			data, err := os.ReadFile(*scenarioFile)
			if err != nil {
				fatal(err)
			}
			if spec, err = scenario.Decode(data); err != nil {
				fatal(err)
			}
		} else {
			fmt.Fprintln(os.Stderr, "uerlserve: the -burst-* injector is deprecated; mapping the flags onto a generated scenario spec (write one and pass -scenario instead)")
			spec = burstShimSpec(shimFlags{
				Seed: *seed, Nodes: *nodes, Days: *days,
				DriftDay: *driftDay, DriftMult: *driftMult,
				Policy: *policy, Cost: *cost, MitCost: *mitcost,
				DriftThreshold: *driftThreshold, DriftWindow: *driftWindow,
				RetrainMin: *retrainMin, EpochSteps: *epochSteps,
				Shadow: *shadow, ShadowUEs: *shadowUEs,
				BurstDay: *burstDay, BurstUEs: *burstUEs, BurstNodes: *burstNodes,
				Guarded: *guarded, NodeBudget: *nodeBudget, NodeBudgetWindow: *nodeBudgetWindow,
				FleetBudget: *fleetBudget, FleetBudgetWindow: *fleetBudgetWindow,
				PromotionsPerDay: *promotionsPerDay, Approve: *approve,
				Probation: *probation, ProbationTol: *probationTol,
			})
		}
		sum, err := scenario.Run(spec)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			out, err := scenario.EncodeSummary(sum)
			if err != nil {
				fatal(err)
			}
			os.Stdout.Write(out)
			return
		}
		printSummary(sum)
		return
	}

	initial, err := initialPolicy(*policy, *model)
	if err != nil {
		fatal(err)
	}

	stream, ues := generateStream(*seed, *nodes, *days, *driftDay, *driftMult)
	sc := legacyScenario{
		Seed: *seed, Nodes: *nodes, Days: *days, DriftDay: *driftDay, DriftMult: *driftMult,
		Events: len(stream), UEs: ues, Initial: initial.Version(),
		Guarded: *guarded, Workers: *workers,
	}
	if !*jsonOut {
		fmt.Printf("scenario: %d nodes, %.0f days, %d events (%d UEs), fault shift ×%.0f at day %.0f\n",
			sc.Nodes, sc.Days, sc.Events, sc.UEs, sc.DriftMult, sc.DriftDay)
		fmt.Printf("serving %s (%s)\n", initial.Name(), initial.Version())
	}

	kernelVersion := nn.KernelReference
	switch *kernel {
	case "reference":
	case "fast":
		kernelVersion = nn.KernelFast
	default:
		fatal(fmt.Errorf("unknown -kernel %q (want reference or fast)", *kernel))
	}

	// Single-process serving by default; -workers N swaps in the
	// distributed fleet layer behind the same Serving interface.
	var (
		serving uerl.Serving
		coord   *fleet.Coordinator
		tr      *fleet.ChanTransport
		ctl     *uerl.Controller
	)
	var start time.Time
	if len(stream) > 0 {
		start = stream[0].Time
	}
	var workerFaults []workerFault
	if *workers > 0 {
		if *guarded && (*promotionsPerDay != 0 || *approve != "auto" || *probation != 4096) {
			fatal(fmt.Errorf("-workers lowers -guard to per-worker budget enforcement; the promotion/approval/probation flags are not available with a fleet"))
		}
		cfg := fleet.Config{Workers: *workers, Seed: *seed, Initial: initial}
		if *guarded {
			guardOpts := []uerl.GuardOption{
				uerl.WithNodeCheckpointBudget(*nodeBudget, *nodeBudgetWindow),
				uerl.WithFleetMitigationBudget(*fleetBudget, *fleetBudgetWindow),
				uerl.WithGuardMitigationCost(*mitcost),
			}
			cfg.NewWorker = func(id int) *fleet.Worker {
				return fleet.NewWorker(id, initial, fleet.WithWorkerGuard(guardOpts...))
			}
		}
		var err error
		coord, tr, err = fleet.NewInProcess(cfg)
		if err != nil {
			fatal(err)
		}
		serving = coord
		if workerFaults, err = parseWorkerFaults(*killWorker, *rejoinWorker, *workers, *days, start); err != nil {
			fatal(err)
		}
	} else {
		if *killWorker != "" || *rejoinWorker != "" {
			fatal(fmt.Errorf("-kill-worker/-rejoin-worker need -workers"))
		}
		ctl = uerl.NewController(initial)
		serving = ctl
	}

	opts := []uerl.LearnerOption{
		uerl.WithLearnerSeed(*seed),
		uerl.WithCostSource(uerl.ConstantCost(*cost)),
		uerl.WithLearnerMitigationCost(*mitcost),
		uerl.WithDriftDetection(*driftThreshold, *driftWindow),
		uerl.WithRetraining(*retrainMin, *epochSteps),
		uerl.WithShadowGate(*shadow, *shadowUEs),
		uerl.WithLearnerKernel(kernelVersion),
		uerl.WithLearnerTrainWorkers(*trainWorkers),
	}
	var g *uerl.Guard
	if *guarded && ctl != nil {
		hook := uerl.AutoApprove()
		switch *approve {
		case "auto":
		case "deny":
			hook = uerl.DenyPromotions("operator freeze (-approve deny)")
		default:
			fatal(fmt.Errorf("unknown -approve %q (want auto or deny)", *approve))
		}
		g = uerl.NewGuard(ctl,
			uerl.WithNodeCheckpointBudget(*nodeBudget, *nodeBudgetWindow),
			uerl.WithFleetMitigationBudget(*fleetBudget, *fleetBudgetWindow),
			uerl.WithPromotionBudget(*promotionsPerDay),
			uerl.WithApprovalHook(hook),
			uerl.WithProbation(*probation, *probationTol),
			uerl.WithGuardMitigationCost(*mitcost),
		)
		opts = append(opts, uerl.WithGuard(g))
	}
	learner := uerl.NewServingLearner(serving, opts...)

	printed := 0
	faults := workerFaults
	for _, e := range stream {
		for len(faults) > 0 && !faults[0].at.After(e.Time) {
			applyWorkerFault(tr, faults[0], start)
			faults = faults[1:]
		}
		learner.Process(e)
		if *jsonOut {
			continue
		}
		for _, ev := range learner.EventsSince(printed) {
			fmt.Printf("[day %5.1f] %-7s %s", ev.Time.Sub(start).Hours()/24, ev.Kind, ev.Detail)
			if ev.Kind != uerl.LifecycleDrift && ev.ModelVersion != "" {
				fmt.Printf(" (model %s)", ev.ModelVersion)
			}
			fmt.Println()
			printed++
		}
	}
	for _, f := range faults {
		applyWorkerFault(tr, f, start)
	}
	if coord != nil {
		coord.Reconcile()
	}

	stats := learner.Stats()
	lineage := lineageChain(initial.Version(), stats.ServingVersion, learner.Events())
	if *save != "" {
		if err := uerl.SaveModelFile(*save, serving.Policy()); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		report := jsonReport{
			Scenario: sc, Events: learner.Events(), Stats: stats, Lineage: lineage,
		}
		if coord != nil {
			fs := coord.Stats()
			report.Fleet = &fs
		}
		if err := cliio.WriteJSON(os.Stdout, report); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("\nfinal: generation %d, serving %s\n", stats.Generation, stats.ServingVersion)
	fmt.Printf("decisions=%d ues=%d transitions=%d (dropped %d) epochs=%d\n",
		stats.Decisions, stats.UEs, stats.Transitions, stats.DroppedTransitions, stats.Epochs)
	if gs := stats.Guard; gs != nil {
		fmt.Printf("guard: suppressed=%d trips=%d promotions=%d denied=%d rollbacks=%d probation=%v\n",
			gs.SuppressedMitigations, gs.BudgetTrips, gs.Promotions, gs.DeniedPromotions,
			gs.Rollbacks, gs.ProbationActive)
	}
	if coord != nil {
		printFleet(coord.Stats())
	}
	fmt.Print("lineage:")
	for i, v := range lineage {
		if i > 0 {
			fmt.Print(" <-")
		}
		fmt.Printf(" %s", v)
	}
	fmt.Println()
	if *save != "" {
		fmt.Printf("saved serving model to %s\n", *save)
	}
}

// workerFault is one parsed -kill-worker/-rejoin-worker entry.
type workerFault struct {
	worker int
	kind   string // fleet fault: "kill" or "rejoin"
	at     time.Time
}

// parseWorkerFaults parses the id@day schedules and merges them into one
// time-sorted fault list (stable, so a kill and rejoin on the same day
// keep kill-first order).
func parseWorkerFaults(kill, rejoin string, workers int, days float64, start time.Time) ([]workerFault, error) {
	var out []workerFault
	parse := func(list, kind string) error {
		if list == "" {
			return nil
		}
		for _, entry := range strings.Split(list, ",") {
			id, day, ok := strings.Cut(strings.TrimSpace(entry), "@")
			if !ok {
				return fmt.Errorf("-%s-worker entry %q is not id@day", kind, entry)
			}
			w, err := strconv.Atoi(id)
			if err != nil || w < 0 || w >= workers {
				return fmt.Errorf("-%s-worker entry %q: worker outside the %d-worker fleet", kind, entry, workers)
			}
			d, err := strconv.ParseFloat(day, 64)
			if err != nil || d <= 0 || d >= days {
				return fmt.Errorf("-%s-worker entry %q: day outside (0, %v)", kind, entry, days)
			}
			out = append(out, workerFault{worker: w, kind: kind, at: start.Add(time.Duration(d * 24 * float64(time.Hour)))})
		}
		return nil
	}
	if err := parse(kill, "kill"); err != nil {
		return nil, err
	}
	if err := parse(rejoin, "rejoin"); err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].at.Before(out[j].at) })
	return out, nil
}

// applyWorkerFault drives one scheduled fault into the transport,
// narrating it on the text log's day scale.
func applyWorkerFault(tr *fleet.ChanTransport, f workerFault, start time.Time) {
	switch f.kind {
	case "kill":
		tr.Kill(f.worker)
	case "rejoin":
		tr.Rejoin(f.worker)
	}
	fmt.Fprintf(os.Stderr, "uerlserve: [day %5.1f] %s worker %d\n",
		f.at.Sub(start).Hours()/24, f.kind, f.worker)
}

// printFleet renders the fleet health report on the text log.
func printFleet(st fleet.Stats) {
	fmt.Printf("fleet: committed %s, failovers=%d rejoins=%d replayed=%d events over %d nodes, acked=%d, orphans=%d\n",
		st.Committed, st.Failovers, st.Rejoins, st.ReplayedEvents, st.ReplayedNodes,
		st.AckedEvents, st.OrphanNodes)
	fmt.Printf("journal: %d nodes, appended=%d deduped=%d trimmed=%d\n",
		st.Journal.Nodes, st.Journal.Appended, st.Journal.Deduped, st.Journal.Trimmed)
	for _, w := range st.Workers {
		fmt.Printf("  worker %d: %-7s nodes=%d", w.ID, w.State, w.OwnedNodes)
		if w.Stats != nil {
			fmt.Printf(" serving=%s", w.Stats.ServingVersion)
			if w.Stats.Guard != nil {
				fmt.Printf(" vetoes=%d", w.Stats.Guard.SuppressedMitigations)
			}
		}
		fmt.Println()
	}
}

// initialPolicy resolves the starting policy.
func initialPolicy(kind, model string) (uerl.Policy, error) {
	if model != "" {
		return uerl.LoadModelFile(model)
	}
	switch kind {
	case "always":
		return uerl.AlwaysPolicy(), nil
	case "never":
		return uerl.NeverPolicy(), nil
	}
	return nil, fmt.Errorf("unknown -policy %q (want always or never, or use -model)", kind)
}

// generateStream synthesizes the two-phase drifting telemetry stream and
// converts it to serving events (retirements, an administrative record,
// are not node telemetry and are skipped).
func generateStream(seed int64, nodes int, days, driftDay, driftMult float64) ([]uerl.Event, int) {
	base := telemetry.Default().Scale(float64(nodes) / 3056)
	base.Nodes = nodes
	base.Seed = seed
	// Liven the per-DIMM rates up: the full-scale defaults are calibrated
	// for a two-year log, while this scenario runs days.
	base.CEEntriesPerDay *= 4
	base.FaultyDIMMFraction *= 2

	phase1 := base
	phase1.Duration = time.Duration(days * 24 * float64(time.Hour))
	logs := []*errlog.Log{}
	if driftDay > 0 && driftDay < days {
		phase1.Duration = time.Duration(driftDay * 24 * float64(time.Hour))
		phase2 := base
		phase2.Seed = seed + 1
		phase2.Start = phase1.Start.Add(phase1.Duration)
		phase2.Duration = time.Duration((days - driftDay) * 24 * float64(time.Hour))
		// The fault-mode change: CE records arrive more often and carry
		// larger bursts, and more DIMMs fail.
		phase2.CEEntriesPerDay *= driftMult
		phase2.MeanCEBurst *= driftMult
		phase2.FaultyDIMMFraction *= 2
		logs = append(logs, telemetry.Generate(phase1), telemetry.Generate(phase2))
	} else {
		logs = append(logs, telemetry.Generate(phase1))
	}

	var out []uerl.Event
	ues := 0
	for _, log := range logs {
		for _, e := range log.Events {
			var typ uerl.EventType
			switch e.Type {
			case errlog.CE:
				typ = uerl.CorrectedError
			case errlog.UEWarning:
				typ = uerl.UEWarning
			case errlog.Boot:
				typ = uerl.NodeBoot
			case errlog.UE:
				typ = uerl.UncorrectedError
				ues++
			default:
				continue
			}
			out = append(out, uerl.Event{
				Time: e.Time, Node: e.Node, DIMM: e.DIMM, Type: typ, Count: e.Count,
				Rank: e.Rank, Bank: e.Bank, Row: e.Row, Col: e.Col,
			})
		}
	}
	return out, ues
}

// shimFlags carries the deprecated flag set into burstShimSpec.
type shimFlags struct {
	Seed                      int64
	Nodes                     int
	Days, DriftDay, DriftMult float64
	Policy                    string
	Cost, MitCost             float64
	DriftThreshold            float64
	DriftWindow               int
	RetrainMin, EpochSteps    int
	Shadow, ShadowUEs         int
	BurstDay                  float64
	BurstUEs, BurstNodes      int
	Guarded                   bool
	NodeBudget                float64
	NodeBudgetWindow          time.Duration
	FleetBudget               int
	FleetBudgetWindow         time.Duration
	PromotionsPerDay          int
	Approve                   string
	Probation                 int
	ProbationTol              float64
}

// burstShimSpec maps the deprecated -burst-* flag set onto an
// equivalent declarative scenario spec: the two-phase drifting stream
// becomes a drift phase with the same CE-rate/burst/faulty-fraction
// overlay, and the ad-hoc UE burst becomes a single 15s-spaced burst
// train round-robin over the first -burst-nodes nodes.
func burstShimSpec(f shimFlags) scenario.Spec {
	shadowUEs := f.ShadowUEs
	spec := scenario.Spec{
		Name:         "uerlserve-burst-shim",
		Description:  "generated from the deprecated uerlserve -burst-* flags",
		Seed:         f.Seed,
		DurationDays: f.Days,
		Fleet:        scenario.FleetSpec{Nodes: f.Nodes},
		Workload: scenario.WorkloadSpec{
			CostNodeHours:             f.Cost,
			MitigationCostNodeMinutes: f.MitCost,
		},
		Lifecycle: scenario.LifecycleSpec{
			InitialPolicy:   f.Policy,
			DriftThreshold:  f.DriftThreshold,
			DriftWindow:     f.DriftWindow,
			RetrainMin:      f.RetrainMin,
			EpochSteps:      f.EpochSteps,
			ShadowDecisions: f.Shadow,
			ShadowUEs:       &shadowUEs,
		},
	}
	if f.DriftDay > 0 && f.DriftDay < f.Days {
		spec.Drift = []scenario.DriftPhase{{
			AtDay: f.DriftDay,
			Overlay: scenario.OverlaySpec{
				CERateMult:         f.DriftMult,
				CEBurstMult:        f.DriftMult,
				FaultyFractionMult: 2,
			},
		}}
	}
	burstNodes := f.BurstNodes
	if burstNodes <= 0 || burstNodes > f.Nodes {
		burstNodes = 0 // whole fleet, matching the old injector's clamp
	}
	spec.Faults = []scenario.FaultSpec{{
		Kind:     scenario.FaultBurst,
		StartDay: f.BurstDay,
		Nodes:    burstNodes,
		UEs:      f.BurstUEs,
		Trains:   1,
	}}
	if f.Guarded {
		tol := f.ProbationTol
		spec.Lifecycle.Guard = &scenario.GuardSpec{
			NodeBudgetNodeHours:  f.NodeBudget,
			NodeWindowHours:      f.NodeBudgetWindow.Hours(),
			FleetMitigations:     f.FleetBudget,
			FleetWindowHours:     f.FleetBudgetWindow.Hours(),
			PromotionsPerDay:     f.PromotionsPerDay,
			Approve:              f.Approve,
			ProbationDecisions:   f.Probation,
			ProbationToleranceNH: &tol,
		}
	}
	return spec
}

// printSummary renders the scenario survival summary as the text log.
func printSummary(sum scenario.Summary) {
	fmt.Printf("scenario %s: %d nodes, %.0f days, seed %d, guarded=%v\n",
		sum.Scenario, sum.Nodes, sum.DurationDays, sum.Seed, sum.Guarded)
	st := sum.Stream
	fmt.Printf("stream: %d events, %d generated + %d injected UEs, %d dropped, %d delayed, %d duplicated, %d attack windows\n",
		st.Events, st.GeneratedUEs, st.InjectedUEs, st.Dropped, st.Delayed, st.Duplicated, st.AttackWindows)
	sv := sum.Survival
	fmt.Printf("survival: lost %.1f node-hours (UE %.1f + mitigation %.1f over %d mitigations)\n",
		sv.LostNodeHours, sv.UENodeHours, sv.MitigationNodeHours, sv.Mitigations)
	fmt.Printf("recall %.4f overall, %.4f under attack (%d/%d attack UEs mitigated); vetoed %d decisions (%d during attack)\n",
		sv.Recall, sv.RecallUnderAttack, sv.AttackMitigated, sv.AttackUEs,
		sv.VetoedDecisions, sv.VetoedDuringAttack)
	lc := sum.Lifecycle
	fmt.Printf("lifecycle: generation %d, serving %s, swap churn %d\n",
		lc.FinalGeneration, lc.ServingVersion, lc.SwapChurn)
	for _, kind := range []uerl.LifecycleEventKind{
		uerl.LifecycleDrift, uerl.LifecycleRetrain, uerl.LifecycleRetrainFailed,
		uerl.LifecyclePromote, uerl.LifecycleReject, uerl.LifecycleProbationPass,
		uerl.LifecycleRollback, uerl.LifecycleApprovalDeny,
		uerl.LifecycleBudgetTrip, uerl.LifecycleBudgetRecover,
	} {
		if n := lc.EventCounts[string(kind)]; n > 0 {
			fmt.Printf("  %-14s %d\n", kind, n)
		}
	}
	fmt.Print("lineage:")
	for i, v := range lc.Lineage {
		if i > 0 {
			fmt.Print(" <-")
		}
		fmt.Printf(" %s", v)
	}
	fmt.Println()
}

// lineageChain reconstructs the served model's version chain, newest
// first, ending at the initial policy. It walks Parent links recorded on
// the lifecycle events starting from the final serving version, so a
// post-rollback chain correctly ends where serving actually landed
// rather than at the last promotion.
func lineageChain(initial, serving string, events []uerl.LifecycleEvent) []string {
	parent := map[string]string{}
	for _, ev := range events {
		if ev.ModelVersion != "" && ev.Parent != "" {
			parent[ev.ModelVersion] = ev.Parent
		}
	}
	chain := []string{}
	seen := map[string]bool{}
	for v := serving; v != "" && !seen[v]; v = parent[v] {
		chain = append(chain, v)
		seen[v] = true
	}
	if len(chain) == 0 || chain[len(chain)-1] != initial {
		chain = append(chain, initial)
	}
	return chain
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uerlserve:", err)
	os.Exit(1)
}
