// Command uerlserve demonstrates the online continual-learning serving
// loop on a days-long fleet scenario: it synthesizes a MareNostrum-style
// telemetry stream whose fault behaviour shifts mid-run (DIMM aging /
// fault-mode change), serves it through a Controller wrapped in an
// OnlineLearner, and reports the model lifecycle — drift detection,
// incremental retraining on live experience, shadow evaluation of each
// candidate against the incumbent, and the hot-swap promotions with
// their model lineage.
//
// Usage:
//
//	uerlserve [-seed 1] [-nodes 64] [-days 30] [-drift-day 15]
//	          [-drift-mult 6] [-policy always|never] [-model artifact.json]
//	          [-cost 100] [-mitcost 2] [-drift-window 256] [-drift-threshold 8]
//	          [-retrain-min 256] [-epoch-steps 64] [-shadow 128] [-shadow-ues 1]
//	          [-save final.json] [-json]
//
// The whole run is deterministic for a fixed flag set.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	uerl "repro"
	"repro/internal/cliio"
	"repro/internal/errlog"
	"repro/internal/telemetry"
)

type scenario struct {
	Seed      int64   `json:"seed"`
	Nodes     int     `json:"nodes"`
	Days      float64 `json:"days"`
	DriftDay  float64 `json:"drift_day"`
	DriftMult float64 `json:"drift_mult"`
	Events    int     `json:"events"`
	UEs       int     `json:"ues"`
	Initial   string  `json:"initial_version"`
}

type jsonReport struct {
	Scenario scenario              `json:"scenario"`
	Events   []uerl.LifecycleEvent `json:"lifecycle_events"`
	Stats    uerl.LearnerStats     `json:"stats"`
	// Lineage is the served model's version chain, newest first, ending
	// at the initial policy.
	Lineage []string `json:"lineage"`
}

func main() {
	seed := flag.Int64("seed", 1, "random seed (stream and trainer)")
	nodes := flag.Int("nodes", 64, "fleet size in nodes")
	days := flag.Float64("days", 30, "scenario length in days")
	driftDay := flag.Float64("drift-day", 15, "day the fault behaviour shifts (0 disables drift)")
	driftMult := flag.Float64("drift-mult", 6, "CE rate/burst multiplier after the shift")
	policy := flag.String("policy", "always", "initial policy: always or never")
	model := flag.String("model", "", "initial model artifact (overrides -policy)")
	cost := flag.Float64("cost", 100, "potential UE cost in node-hours (workload model)")
	mitcost := flag.Float64("mitcost", 2, "mitigation cost in node-minutes")
	driftWindow := flag.Int("drift-window", 256, "drift-detection window samples")
	driftThreshold := flag.Float64("drift-threshold", 8, "drift z-score threshold")
	retrainMin := flag.Int("retrain-min", 256, "minimum new transitions between retrains")
	epochSteps := flag.Int("epoch-steps", 64, "gradient steps per retraining epoch")
	shadow := flag.Int("shadow", 128, "shadow decisions required before promotion is judged")
	shadowUEs := flag.Int("shadow-ues", 1, "realized UEs required in the shadow window before promotion is judged (0 judges on mitigation spend alone)")
	save := flag.String("save", "", "save the final serving model artifact to this path")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of the text log")
	flag.Parse()

	initial, err := initialPolicy(*policy, *model)
	if err != nil {
		fatal(err)
	}

	stream, ues := generateStream(*seed, *nodes, *days, *driftDay, *driftMult)
	sc := scenario{
		Seed: *seed, Nodes: *nodes, Days: *days, DriftDay: *driftDay, DriftMult: *driftMult,
		Events: len(stream), UEs: ues, Initial: initial.Version(),
	}
	if !*jsonOut {
		fmt.Printf("scenario: %d nodes, %.0f days, %d events (%d UEs), fault shift ×%.0f at day %.0f\n",
			sc.Nodes, sc.Days, sc.Events, sc.UEs, sc.DriftMult, sc.DriftDay)
		fmt.Printf("serving %s (%s)\n", initial.Name(), initial.Version())
	}

	ctl := uerl.NewController(initial)
	learner := uerl.NewOnlineLearner(ctl,
		uerl.WithLearnerSeed(*seed),
		uerl.WithCostSource(uerl.ConstantCost(*cost)),
		uerl.WithLearnerMitigationCost(*mitcost),
		uerl.WithDriftDetection(*driftThreshold, *driftWindow),
		uerl.WithRetraining(*retrainMin, *epochSteps),
		uerl.WithShadowGate(*shadow, *shadowUEs),
	)

	var start time.Time
	if len(stream) > 0 {
		start = stream[0].Time
	}
	printed := 0
	for _, e := range stream {
		learner.Process(e)
		if *jsonOut {
			continue
		}
		for _, ev := range learner.Events()[printed:] {
			fmt.Printf("[day %5.1f] %-7s %s", ev.Time.Sub(start).Hours()/24, ev.Kind, ev.Detail)
			if ev.Kind != uerl.LifecycleDrift {
				fmt.Printf(" (model %s)", ev.ModelVersion)
			}
			fmt.Println()
			printed++
		}
	}

	stats := learner.Stats()
	lineage := lineageChain(initial.Version(), learner.Events())
	if *save != "" {
		if err := uerl.SaveModelFile(*save, ctl.Policy()); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		if err := cliio.WriteJSON(os.Stdout, jsonReport{
			Scenario: sc, Events: learner.Events(), Stats: stats, Lineage: lineage,
		}); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("\nfinal: generation %d, serving %s\n", stats.Generation, stats.ServingVersion)
	fmt.Printf("decisions=%d ues=%d transitions=%d (dropped %d) epochs=%d\n",
		stats.Decisions, stats.UEs, stats.Transitions, stats.DroppedTransitions, stats.Epochs)
	fmt.Print("lineage:")
	for i, v := range lineage {
		if i > 0 {
			fmt.Print(" <-")
		}
		fmt.Printf(" %s", v)
	}
	fmt.Println()
	if *save != "" {
		fmt.Printf("saved serving model to %s\n", *save)
	}
}

// initialPolicy resolves the starting policy.
func initialPolicy(kind, model string) (uerl.Policy, error) {
	if model != "" {
		return uerl.LoadModelFile(model)
	}
	switch kind {
	case "always":
		return uerl.AlwaysPolicy(), nil
	case "never":
		return uerl.NeverPolicy(), nil
	}
	return nil, fmt.Errorf("unknown -policy %q (want always or never, or use -model)", kind)
}

// generateStream synthesizes the two-phase drifting telemetry stream and
// converts it to serving events (retirements, an administrative record,
// are not node telemetry and are skipped).
func generateStream(seed int64, nodes int, days, driftDay, driftMult float64) ([]uerl.Event, int) {
	base := telemetry.Default().Scale(float64(nodes) / 3056)
	base.Nodes = nodes
	base.Seed = seed
	// Liven the per-DIMM rates up: the full-scale defaults are calibrated
	// for a two-year log, while this scenario runs days.
	base.CEEntriesPerDay *= 4
	base.FaultyDIMMFraction *= 2

	phase1 := base
	phase1.Duration = time.Duration(days * 24 * float64(time.Hour))
	logs := []*errlog.Log{}
	if driftDay > 0 && driftDay < days {
		phase1.Duration = time.Duration(driftDay * 24 * float64(time.Hour))
		phase2 := base
		phase2.Seed = seed + 1
		phase2.Start = phase1.Start.Add(phase1.Duration)
		phase2.Duration = time.Duration((days - driftDay) * 24 * float64(time.Hour))
		// The fault-mode change: CE records arrive more often and carry
		// larger bursts, and more DIMMs fail.
		phase2.CEEntriesPerDay *= driftMult
		phase2.MeanCEBurst *= driftMult
		phase2.FaultyDIMMFraction *= 2
		logs = append(logs, telemetry.Generate(phase1), telemetry.Generate(phase2))
	} else {
		logs = append(logs, telemetry.Generate(phase1))
	}

	var out []uerl.Event
	ues := 0
	for _, log := range logs {
		for _, e := range log.Events {
			var typ uerl.EventType
			switch e.Type {
			case errlog.CE:
				typ = uerl.CorrectedError
			case errlog.UEWarning:
				typ = uerl.UEWarning
			case errlog.Boot:
				typ = uerl.NodeBoot
			case errlog.UE:
				typ = uerl.UncorrectedError
				ues++
			default:
				continue
			}
			out = append(out, uerl.Event{
				Time: e.Time, Node: e.Node, DIMM: e.DIMM, Type: typ, Count: e.Count,
				Rank: e.Rank, Bank: e.Bank, Row: e.Row, Col: e.Col,
			})
		}
	}
	return out, ues
}

// lineageChain walks the promotion events into the served model's version
// chain, newest first.
func lineageChain(initial string, events []uerl.LifecycleEvent) []string {
	chain := []string{initial}
	for _, ev := range events {
		if ev.Kind == uerl.LifecyclePromote {
			chain = append(chain, ev.ModelVersion)
		}
	}
	// Reverse: newest first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uerlserve:", err)
	os.Exit(1)
}
