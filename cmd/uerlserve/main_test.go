package main

import (
	"testing"
	"time"

	"repro/internal/scenario"
)

func defaultShimFlags() shimFlags {
	return shimFlags{
		Seed: 1, Nodes: 16, Days: 10, DriftDay: 5, DriftMult: 6,
		Policy: "always", Cost: 100, MitCost: 2,
		DriftThreshold: 8, DriftWindow: 256, RetrainMin: 256, EpochSteps: 64,
		Shadow: 128, ShadowUEs: 1,
		BurstDay: 8, BurstUEs: 32, BurstNodes: 8,
	}
}

// TestBurstShimSpecCompiles pins the deprecated-flag shim: the
// generated spec must validate, compile, and inject exactly the burst
// the old ad-hoc injector produced (count, node fan-out, drift phase).
func TestBurstShimSpecCompiles(t *testing.T) {
	f := defaultShimFlags()
	f.Guarded = true
	f.NodeBudget = 0.5
	f.NodeBudgetWindow = 24 * time.Hour
	f.FleetBudget = 64
	f.FleetBudgetWindow = time.Hour
	f.Approve = "auto"
	f.Probation = 4096
	f.ProbationTol = 5

	spec := burstShimSpec(f)
	if err := spec.Validate(); err != nil {
		t.Fatalf("shim spec invalid: %v", err)
	}
	c, err := scenario.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.InjectedUEs != f.BurstUEs {
		t.Errorf("shim injected %d UEs, want %d", c.InjectedUEs, f.BurstUEs)
	}
	if len(c.AttackWindows) != 1 {
		t.Errorf("shim compiled %d attack windows, want 1", len(c.AttackWindows))
	}
	if len(spec.Drift) != 1 || spec.Drift[0].AtDay != f.DriftDay {
		t.Errorf("drift flags did not map to a drift phase: %+v", spec.Drift)
	}
	if ov := spec.Drift[0].Overlay; ov.CERateMult != f.DriftMult || ov.CEBurstMult != f.DriftMult || ov.FaultyFractionMult != 2 {
		t.Errorf("drift overlay %+v does not match the legacy phase-2 shift", ov)
	}
	g := spec.Lifecycle.Guard
	if g == nil || g.FleetMitigations != 64 || g.NodeBudgetNodeHours != 0.5 ||
		g.NodeWindowHours != 24 || g.FleetWindowHours != 1 ||
		g.ProbationDecisions != 4096 || g.ProbationToleranceNH == nil || *g.ProbationToleranceNH != 5 {
		t.Errorf("guard flags mapped badly: %+v", g)
	}
}

// TestBurstShimNodeClamp pins the old injector's clamp: a burst node
// count of zero or beyond the fleet strikes the whole fleet.
func TestBurstShimNodeClamp(t *testing.T) {
	for _, n := range []int{0, -3, 17, 1 << 20} {
		f := defaultShimFlags()
		f.BurstNodes = n
		spec := burstShimSpec(f)
		if got := spec.Faults[0].Nodes; got != 0 {
			t.Errorf("BurstNodes=%d mapped to fault nodes %d, want 0 (whole fleet)", n, got)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("BurstNodes=%d: shim spec invalid: %v", n, err)
		}
	}
	f := defaultShimFlags()
	f.BurstNodes = 8
	if got := burstShimSpec(f).Faults[0].Nodes; got != 8 {
		t.Errorf("in-range BurstNodes mapped to %d, want 8", got)
	}
}

// TestBurstShimUnguarded pins that without -guard the shim leaves the
// guard unset, so the lifecycle runs unguarded like the legacy path.
func TestBurstShimUnguarded(t *testing.T) {
	spec := burstShimSpec(defaultShimFlags())
	if spec.Lifecycle.Guard != nil {
		t.Errorf("unguarded shim set a guard: %+v", spec.Lifecycle.Guard)
	}
	if _, err := scenario.Run(spec); err != nil {
		t.Fatalf("unguarded shim scenario failed to run: %v", err)
	}
}
