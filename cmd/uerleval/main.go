// Command uerleval runs the paper's cost–benefit evaluation (time-series
// nested cross-validation over all §4.2 policies) on a synthetic world and
// prints the node–hour totals. With -model it instead scores one saved
// model artifact (see uerltrain) on the held-out tail of the log. With
// -json the result is emitted as machine-readable JSON for scripting.
//
// Usage:
//
//	uerleval [-budget ci|default|paper] [-seed 1] [-mitcost 2]
//	         [-manufacturer A|B|C] [-jobscale 1] [-model model.json] [-json]
package main

import (
	"flag"
	"fmt"
	"os"

	uerl "repro"
	"repro/internal/cliio"
)

// jsonReport is the -json output shape shared by all uerleval modes.
type jsonReport struct {
	Budget  string  `json:"budget"`
	Seed    int64   `json:"seed"`
	MitCost float64 `json:"mitigation_cost_node_minutes"`
	// Mode is "cv", "manufacturer", "jobscale" or "model".
	Mode         string  `json:"mode"`
	Manufacturer string  `json:"manufacturer,omitempty"`
	JobScale     float64 `json:"job_scale,omitempty"`
	// Model identifies a scored artifact (mode "model").
	Model        string `json:"model,omitempty"`
	ModelKind    string `json:"model_kind,omitempty"`
	ModelVersion string `json:"model_version,omitempty"`
	ModelParent  string `json:"model_parent,omitempty"`
	// Costs are the per-policy outcomes.
	Costs []uerl.PolicyCost `json:"costs"`
	// SavingVsNever is 1 − best/never total cost, when both rows exist
	// (the RL row for mode "cv", the scored model for mode "model").
	SavingVsNever *float64 `json:"saving_vs_never,omitempty"`
}

func main() {
	budget := flag.String("budget", "ci", "compute budget: ci, default or paper")
	seed := flag.Int64("seed", 1, "random seed")
	mitcost := flag.Float64("mitcost", 2, "mitigation cost in node-minutes")
	manufacturer := flag.String("manufacturer", "", "evaluate one DRAM manufacturer partition (A, B or C)")
	jobscale := flag.Float64("jobscale", 1, "job size scaling factor (§5.6)")
	model := flag.String("model", "", "score a saved model artifact instead of running the full CV")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of the text report")
	flag.Parse()

	b, err := uerl.ParseBudget(*budget)
	if err != nil {
		fatal(err)
	}
	if *model != "" && (*manufacturer != "" || *jobscale != 1) {
		fatal(fmt.Errorf("-model cannot be combined with -manufacturer or -jobscale"))
	}

	if !*jsonOut {
		fmt.Println("generating synthetic world...")
	}
	sys := uerl.NewSystem(
		uerl.WithBudget(b),
		uerl.WithSeed(*seed),
		uerl.WithMitigationCost(*mitcost),
	)
	out := jsonReport{Budget: b.String(), Seed: *seed, MitCost: *mitcost, Mode: "cv"}

	if *model != "" {
		evalModel(sys, *model, *jsonOut, out)
		return
	}

	var rep uerl.Report
	switch {
	case *manufacturer != "":
		out.Mode, out.Manufacturer = "manufacturer", *manufacturer
		rep, err = sys.EvaluateManufacturer(*manufacturer)
	case *jobscale != 1:
		out.Mode, out.JobScale = "jobscale", *jobscale
		rep, err = sys.EvaluateJobScale(*jobscale)
	default:
		rep = sys.Evaluate()
	}
	if err != nil {
		fatal(err)
	}

	out.Costs = rep.Costs
	if never, ok := rep.Find("Never-mitigate"); ok {
		if rl, ok := rep.Find("RL"); ok && never.TotalNodeHours > 0 {
			saving := 1 - rl.TotalNodeHours/never.TotalNodeHours
			out.SavingVsNever = &saving
		}
	}

	if *jsonOut {
		if err := cliio.WriteJSON(os.Stdout, out); err != nil {
			fatal(err)
		}
		return
	}
	rep.Render(os.Stdout)
	if out.SavingVsNever != nil {
		fmt.Printf("\nRL reduces lost compute time by %.0f%% vs no mitigation\n", 100**out.SavingVsNever)
	}
}

// evalModel scores one saved artifact against the Never baseline on the
// held-out tail of the world's log.
func evalModel(sys *uerl.System, path string, jsonOut bool, out jsonReport) {
	policy, err := uerl.LoadModelFile(path)
	if err != nil {
		fatal(err)
	}
	if !jsonOut {
		fmt.Printf("loaded %s: kind=%s version=%s\n", path, policy.Kind(), policy.Version())
	}

	cost, err := sys.EvaluatePolicy(policy)
	if err != nil {
		fatal(err)
	}
	baseline, err := sys.EvaluatePolicy(uerl.NeverPolicy())
	if err != nil {
		fatal(err)
	}
	var saving *float64
	if baseline.TotalNodeHours > 0 {
		s := 1 - cost.TotalNodeHours/baseline.TotalNodeHours
		saving = &s
	}

	if jsonOut {
		out.Mode = "model"
		out.Model = path
		out.ModelKind = string(policy.Kind())
		out.ModelVersion = policy.Version()
		out.ModelParent = uerl.ModelParent(policy)
		out.Costs = []uerl.PolicyCost{baseline, cost}
		out.SavingVsNever = saving
		if err := cliio.WriteJSON(os.Stdout, out); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("held-out tail (last 25%% of the log span):\n")
	for _, c := range []uerl.PolicyCost{baseline, cost} {
		fmt.Printf("  %-16s total=%9.1f  ue=%9.1f  mitigation=%8.1f  mitigations=%6d  recall=%3.0f%%\n",
			c.Policy, c.TotalNodeHours, c.UENodeHours, c.MitigationNH, c.Mitigations, 100*c.Recall)
	}
	if saving != nil {
		fmt.Printf("\n%s reduces lost compute time by %.0f%% vs no mitigation\n", cost.Policy, 100**saving)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uerleval:", err)
	os.Exit(1)
}
