// Command uerleval runs the paper's cost–benefit evaluation (time-series
// nested cross-validation over all §4.2 policies) on a synthetic world and
// prints the node–hour totals. With -model it instead scores one saved
// model artifact (see uerltrain) on the held-out tail of the log.
//
// Usage:
//
//	uerleval [-budget ci|default|paper] [-seed 1] [-mitcost 2]
//	         [-manufacturer A|B|C] [-jobscale 1] [-model model.json]
package main

import (
	"flag"
	"fmt"
	"os"

	uerl "repro"
)

func main() {
	budget := flag.String("budget", "ci", "compute budget: ci, default or paper")
	seed := flag.Int64("seed", 1, "random seed")
	mitcost := flag.Float64("mitcost", 2, "mitigation cost in node-minutes")
	manufacturer := flag.String("manufacturer", "", "evaluate one DRAM manufacturer partition (A, B or C)")
	jobscale := flag.Float64("jobscale", 1, "job size scaling factor (§5.6)")
	model := flag.String("model", "", "score a saved model artifact instead of running the full CV")
	flag.Parse()

	b, err := uerl.ParseBudget(*budget)
	if err != nil {
		fatal(err)
	}
	if *model != "" && (*manufacturer != "" || *jobscale != 1) {
		fatal(fmt.Errorf("-model cannot be combined with -manufacturer or -jobscale"))
	}

	fmt.Println("generating synthetic world...")
	sys := uerl.NewSystem(
		uerl.WithBudget(b),
		uerl.WithSeed(*seed),
		uerl.WithMitigationCost(*mitcost),
	)

	if *model != "" {
		evalModel(sys, *model)
		return
	}

	var rep uerl.Report
	switch {
	case *manufacturer != "":
		rep, err = sys.EvaluateManufacturer(*manufacturer)
	case *jobscale != 1:
		rep, err = sys.EvaluateJobScale(*jobscale)
	default:
		rep = sys.Evaluate()
	}
	if err != nil {
		fatal(err)
	}
	rep.Render(os.Stdout)

	if never, ok := rep.Find("Never-mitigate"); ok {
		if rl, ok := rep.Find("RL"); ok && never.TotalNodeHours > 0 {
			saving := 1 - rl.TotalNodeHours/never.TotalNodeHours
			fmt.Printf("\nRL reduces lost compute time by %.0f%% vs no mitigation\n", 100*saving)
		}
	}
}

// evalModel scores one saved artifact against the Never baseline on the
// held-out tail of the world's log.
func evalModel(sys *uerl.System, path string) {
	policy, err := uerl.LoadModelFile(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %s: kind=%s version=%s\n", path, policy.Kind(), policy.Version())

	cost, err := sys.EvaluatePolicy(policy)
	if err != nil {
		fatal(err)
	}
	baseline, err := sys.EvaluatePolicy(uerl.NeverPolicy())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("held-out tail (last 25%% of the log span):\n")
	for _, c := range []uerl.PolicyCost{baseline, cost} {
		fmt.Printf("  %-16s total=%9.1f  ue=%9.1f  mitigation=%8.1f  mitigations=%6d  recall=%3.0f%%\n",
			c.Policy, c.TotalNodeHours, c.UENodeHours, c.MitigationNH, c.Mitigations, 100*c.Recall)
	}
	if baseline.TotalNodeHours > 0 {
		fmt.Printf("\n%s reduces lost compute time by %.0f%% vs no mitigation\n",
			cost.Policy, 100*(1-cost.TotalNodeHours/baseline.TotalNodeHours))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uerleval:", err)
	os.Exit(1)
}
