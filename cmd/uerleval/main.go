// Command uerleval runs the paper's cost–benefit evaluation (time-series
// nested cross-validation over all §4.2 policies) on a synthetic world and
// prints the node–hour totals.
//
// Usage:
//
//	uerleval [-budget ci|default|paper] [-seed 1] [-mitcost 2]
//	         [-manufacturer A|B|C] [-jobscale 1]
package main

import (
	"flag"
	"fmt"
	"os"

	uerl "repro"
)

func main() {
	budget := flag.String("budget", "ci", "compute budget: ci, default or paper")
	seed := flag.Int64("seed", 1, "random seed")
	mitcost := flag.Float64("mitcost", 2, "mitigation cost in node-minutes")
	manufacturer := flag.String("manufacturer", "", "evaluate one DRAM manufacturer partition (A, B or C)")
	jobscale := flag.Float64("jobscale", 1, "job size scaling factor (§5.6)")
	flag.Parse()

	b, err := parseBudget(*budget)
	if err != nil {
		fatal(err)
	}
	cfg := uerl.DefaultConfig(b)
	cfg.Seed = *seed
	cfg.MitigationCostNodeMinutes = *mitcost

	fmt.Println("generating synthetic world...")
	sys := uerl.NewSystem(cfg)

	var rep uerl.Report
	switch {
	case *manufacturer != "":
		rep, err = sys.EvaluateManufacturer(*manufacturer)
	case *jobscale != 1:
		rep, err = sys.EvaluateJobScale(*jobscale)
	default:
		rep = sys.Evaluate()
	}
	if err != nil {
		fatal(err)
	}
	rep.Render(os.Stdout)

	if never, ok := rep.Find("Never-mitigate"); ok {
		if rl, ok := rep.Find("RL"); ok && never.TotalNodeHours > 0 {
			saving := 1 - rl.TotalNodeHours/never.TotalNodeHours
			fmt.Printf("\nRL reduces lost compute time by %.0f%% vs no mitigation\n", 100*saving)
		}
	}
}

func parseBudget(s string) (uerl.Budget, error) {
	switch s {
	case "ci":
		return uerl.BudgetCI, nil
	case "default":
		return uerl.BudgetDefault, nil
	case "paper":
		return uerl.BudgetPaper, nil
	}
	return 0, fmt.Errorf("unknown budget %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uerleval:", err)
	os.Exit(1)
}
