// Command uerlexp regenerates the paper's tables and figures from the
// synthetic world: fig3, fig4, fig5, fig6, table2, fig7, the §2.1
// calibration check, and the DESIGN.md ablations.
//
// Usage:
//
//	uerlexp [-budget ci|default|paper] [-seed 1] [experiment ...]
//
// With no arguments it runs every experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	uerl "repro"
)

func main() {
	budget := flag.String("budget", "ci", "compute budget: ci, default or paper")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	b, err := uerl.ParseBudget(*budget)
	if err != nil {
		fatal(err)
	}

	names := flag.Args()
	if len(names) == 0 {
		names = uerl.ExperimentNames()
	}

	fmt.Println("generating synthetic world...")
	sys := uerl.NewSystem(uerl.WithBudget(b), uerl.WithSeed(*seed))

	for _, name := range names {
		fmt.Printf("\n=== %s ===\n", name)
		start := time.Now()
		if err := sys.RunExperiment(name, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Printf("(%s in %v)\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uerlexp:", err)
	os.Exit(1)
}
