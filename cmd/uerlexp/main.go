// Command uerlexp regenerates the paper's tables and figures from the
// synthetic world: fig3, fig4, fig5, fig6, table2, fig7, the §2.1
// calibration check, and the DESIGN.md ablations. With -json the rendered
// experiments are emitted as one machine-readable JSON document.
//
// Usage:
//
//	uerlexp [-budget ci|default|paper] [-seed 1] [-json] [experiment ...]
//
// With no arguments it runs every experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	uerl "repro"
	"repro/internal/cliio"
)

// jsonExperiment is one experiment's entry in the -json output.
type jsonExperiment struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	// Output is the experiment's rendered table, line by line.
	Output []string `json:"output"`
}

// jsonReport is the -json document: the run configuration plus every
// experiment in execution order (same encoder as uerleval -json).
type jsonReport struct {
	Budget      string           `json:"budget"`
	Seed        int64            `json:"seed"`
	Experiments []jsonExperiment `json:"experiments"`
}

func main() {
	budget := flag.String("budget", "ci", "compute budget: ci, default or paper")
	seed := flag.Int64("seed", 1, "random seed")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of the text tables")
	flag.Parse()

	b, err := uerl.ParseBudget(*budget)
	if err != nil {
		fatal(err)
	}

	names := flag.Args()
	if len(names) == 0 {
		names = uerl.ExperimentNames()
	}

	if !*jsonOut {
		fmt.Println("generating synthetic world...")
	}
	sys := uerl.NewSystem(uerl.WithBudget(b), uerl.WithSeed(*seed))

	report := jsonReport{Budget: b.String(), Seed: *seed}
	for _, name := range names {
		if *jsonOut {
			var buf strings.Builder
			start := time.Now()
			if err := sys.RunExperiment(name, &buf); err != nil {
				fatal(err)
			}
			report.Experiments = append(report.Experiments, jsonExperiment{
				Name:    name,
				Seconds: time.Since(start).Seconds(),
				Output:  strings.Split(strings.TrimRight(buf.String(), "\n"), "\n"),
			})
			continue
		}
		fmt.Printf("\n=== %s ===\n", name)
		start := time.Now()
		if err := sys.RunExperiment(name, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Printf("(%s in %v)\n", name, time.Since(start).Round(time.Millisecond))
	}
	if *jsonOut {
		if err := cliio.WriteJSON(os.Stdout, report); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uerlexp:", err)
	os.Exit(1)
}
