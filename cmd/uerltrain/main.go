// Command uerltrain trains a mitigation policy on a synthetic world and
// saves it as a versioned model artifact for later use by uerleval or a
// serving Controller.
//
// Any serializable §4.2 policy kind can be fitted and persisted, not just
// the RL agent:
//
//	uerltrain [-budget ci|default|paper] [-seed 1] [-policy rl] -out model.json
package main

import (
	"flag"
	"fmt"
	"os"

	uerl "repro"
)

func main() {
	budget := flag.String("budget", "ci", "compute budget: ci, default or paper")
	seed := flag.Int64("seed", 1, "random seed")
	kind := flag.String("policy", "rl", "policy kind: never, always, sc20-rf, myopic-rf or rl")
	out := flag.String("out", "model.json", "model artifact output path")
	flag.Parse()

	b, err := uerl.ParseBudget(*budget)
	if err != nil {
		fatal(err)
	}
	k, err := uerl.ParsePolicyKind(*kind)
	if err != nil {
		fatal(err)
	}
	if k == uerl.PolicyOracle {
		fatal(fmt.Errorf("the oracle needs future knowledge and cannot be saved as a model artifact"))
	}

	fmt.Println("generating synthetic world...")
	sys := uerl.NewSystem(uerl.WithBudget(b), uerl.WithSeed(*seed))
	st := sys.LogStats()
	fmt.Printf("log: %d events, %d first UEs, %d nodes\n", st.Events, st.FirstUEs, st.Nodes)

	fmt.Printf("training %s policy (paper protocol: first 75%% of the log)...\n", k)
	policy, err := sys.TrainPolicy(k)
	if err != nil {
		fatal(err)
	}

	if err := uerl.SaveModelFile(*out, policy); err != nil {
		fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes, version %s)\n", *out, info.Size(), policy.Version())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uerltrain:", err)
	os.Exit(1)
}
