// Command uerltrain trains the RL mitigation agent on a synthetic world
// and saves the model as JSON for later use by uerleval or a Controller.
//
// Usage:
//
//	uerltrain [-budget ci|default|paper] [-seed 1] -out model.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	uerl "repro"
)

func main() {
	budget := flag.String("budget", "ci", "compute budget: ci, default or paper")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "model.json", "model output path")
	flag.Parse()

	b, err := parseBudget(*budget)
	if err != nil {
		fatal(err)
	}
	cfg := uerl.DefaultConfig(b)
	cfg.Seed = *seed

	fmt.Println("generating synthetic world...")
	sys := uerl.NewSystem(cfg)
	st := sys.LogStats()
	fmt.Printf("log: %d events, %d first UEs, %d nodes\n", st.Events, st.FirstUEs, st.Nodes)

	fmt.Println("training agent (paper protocol: first 75% of the log)...")
	agent := sys.TrainAgent()

	data, err := json.MarshalIndent(agent, "", " ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(data))
}

func parseBudget(s string) (uerl.Budget, error) {
	switch s {
	case "ci":
		return uerl.BudgetCI, nil
	case "default":
		return uerl.BudgetDefault, nil
	case "paper":
		return uerl.BudgetPaper, nil
	}
	return 0, fmt.Errorf("unknown budget %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uerltrain:", err)
	os.Exit(1)
}
