// Command uerlvet is the repository's static-analysis suite: a
// multichecker (in the mold of golang.org/x/tools/go/analysis
// multichecker, built dependency-free on the standard library) that
// machine-checks the contracts the compiler cannot see:
//
//	determinism   bit-exact packages (//uerl:deterministic) must not read
//	              wall clocks, the global math/rand generator, core
//	              counts, or map iteration order
//	fpreduce      floating-point reductions in bit-exact packages must
//	              have explicit order (no += into shared state from
//	              goroutines or map iteration)
//	hotpath       //uerl:hotpath functions must not contain allocating
//	              constructs (the BENCH_*.json alloc guard's static twin)
//	concurrency   Decider implementations declare their concurrency
//	              story; restricted/guarded Controller fields are touched
//	              only via their accessors / under their locks
//	directive     the //uerl: contract comments themselves are well-formed
//	shadow, unusedwrite, nilness
//	              the standard vet passes not in `go vet`'s default set
//
// Usage:
//
//	go run ./cmd/uerlvet ./...                 # what CI runs
//	go run ./cmd/uerlvet -only hotpath ./...   # one analyzer
//	go run ./cmd/uerlvet -list                 # describe analyzers
//
// Exit status: 0 clean, 1 findings, 2 load/usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/concurrency"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/fpreduce"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/vetextra"
)

func allAnalyzers() []*analysis.Analyzer {
	as := []*analysis.Analyzer{
		analysis.DirectiveAnalyzer,
		determinism.Analyzer,
		fpreduce.Analyzer,
		hotpath.Analyzer,
		concurrency.Analyzer,
	}
	return append(as, vetextra.Analyzers...)
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: uerlvet [-list] [-only a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := allAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "uerlvet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, fset, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uerlvet: %v\n", err)
		os.Exit(2)
	}
	loadFailed := false
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			fmt.Fprintf(os.Stderr, "uerlvet: %s: %s\n", pkg.PkgPath, e)
			loadFailed = true
		}
	}
	if loadFailed {
		os.Exit(2)
	}

	diags, err := analysis.Run(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uerlvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: [%s] %s\n", fset.Position(d.Pos), d.Category, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "uerlvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
