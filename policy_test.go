package uerl

import (
	"testing"
	"time"
)

func TestParsePolicyKind(t *testing.T) {
	for _, k := range PolicyKinds() {
		got, err := ParsePolicyKind(string(k))
		if err != nil || got != k {
			t.Fatalf("kind %q round-trip: got %q err %v", k, got, err)
		}
	}
	if _, err := ParsePolicyKind("quantum"); err == nil {
		t.Fatal("bad kind accepted")
	}
}

// TestTrainServeEvaluateAllKinds is the acceptance path of the serving
// redesign: every §4.2 approach trains into a Policy, serves through one
// controller, and scores under EvaluatePolicy's cost model.
func TestTrainServeEvaluateAllKinds(t *testing.T) {
	s := testSystem(t)
	base := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	costs := map[PolicyKind]PolicyCost{}
	for _, kind := range PolicyKinds() {
		p, err := s.TrainPolicy(kind)
		if err != nil {
			t.Fatalf("TrainPolicy(%s): %v", kind, err)
		}
		if p.Kind() != kind {
			t.Fatalf("TrainPolicy(%s) returned kind %s", kind, p.Kind())
		}
		if p.Name() == "" || p.Version() == "" {
			t.Fatalf("policy %s missing identity: name=%q version=%q", kind, p.Name(), p.Version())
		}

		// Serve it: ingest a degradation storm and query.
		ctl := NewController(p, WithShards(2))
		for _, ev := range degradingEvents(3, base, 30) {
			ctl.ObserveEvent(ev)
		}
		d := ctl.Recommend(3, base.Add(time.Hour), 5000)
		if d.Policy != p.Name() || d.ModelVersion != p.Version() {
			t.Fatalf("served decision for %s mislabelled: %+v", kind, d)
		}
		switch kind {
		case PolicyNever:
			if d.Mitigate() {
				t.Fatal("Never mitigated")
			}
		case PolicyAlways:
			if !d.Mitigate() {
				t.Fatal("Always declined")
			}
		}

		cost, err := s.EvaluatePolicy(p)
		if err != nil {
			t.Fatalf("EvaluatePolicy(%s): %v", kind, err)
		}
		costs[kind] = cost
	}

	never, always := costs[PolicyNever], costs[PolicyAlways]
	if never.Mitigations != 0 || never.MitigationNH != 0 {
		t.Fatalf("Never accounted mitigations: %+v", never)
	}
	if always.Mitigations == 0 || always.MitigationNH <= 0 {
		t.Fatalf("Always accounted no mitigations: %+v", always)
	}
	if always.Recall < never.Recall {
		t.Fatalf("Always recall %v below Never recall %v", always.Recall, never.Recall)
	}
	oracle := costs[PolicyOracle]
	if oracle.TotalNodeHours > never.TotalNodeHours || oracle.TotalNodeHours > always.TotalNodeHours {
		t.Fatalf("Oracle (%v nh) worse than a static baseline (Never %v, Always %v)",
			oracle.TotalNodeHours, never.TotalNodeHours, always.TotalNodeHours)
	}
}

func TestEvaluatePolicyNil(t *testing.T) {
	s := testSystem(t)
	if _, err := s.EvaluatePolicy(nil); err == nil {
		t.Fatal("nil policy accepted")
	}
}

// fixedCostPolicy is a custom Policy: mitigate whenever the potential UE
// cost exceeds a bound. Exercises the pluggability contract end to end.
type fixedCostPolicy struct{ bound float64 }

func (p *fixedCostPolicy) Kind() PolicyKind { return PolicyKind("custom-cost") }
func (p *fixedCostPolicy) Name() string     { return "CustomCost" }
func (p *fixedCostPolicy) Version() string  { return "custom-cost.v0" }

func (p *fixedCostPolicy) Decide(s Snapshot) Decision {
	act := ActionNone
	if s.Features[FeatureDim-1] > p.bound {
		act = ActionMitigate
	}
	return Decision{Action: act, Score: s.Features[FeatureDim-1] - p.bound}
}

func TestCustomPolicyServesAndEvaluates(t *testing.T) {
	s := testSystem(t)
	p := &fixedCostPolicy{bound: 100}
	ctl := NewController(p)
	at := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	if d := ctl.Recommend(1, at, 500); !d.Mitigate() || d.Policy != "CustomCost" || d.ModelVersion != "custom-cost.v0" {
		t.Fatalf("custom policy decision: %+v", d)
	}
	if d := ctl.Recommend(1, at, 5); d.Mitigate() {
		t.Fatalf("custom policy mitigated under bound: %+v", d)
	}
	cost, err := s.EvaluatePolicy(p)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Policy != "CustomCost" {
		t.Fatalf("evaluated as %q", cost.Policy)
	}
}

func TestTrainPolicyUnknownKind(t *testing.T) {
	s := testSystem(t)
	if _, err := s.TrainPolicy(PolicyKind("quantum")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
