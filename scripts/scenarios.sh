#!/usr/bin/env bash
# Scenario regression harness, the local mirror of CI's
# scenario-regression job:
#
#   scripts/scenarios.sh          replay every named scenario under
#                                 scenarios/ against its committed golden
#                                 summary, uncached and under -race, then
#                                 re-run the golden/determinism tests at
#                                 GOMAXPROCS=2 to vary the scheduler shape
#   scripts/scenarios.sh update   regenerate the goldens (and canonicalize
#                                 the spec files) after an intentional
#                                 behaviour change, then verify the
#                                 regenerated goldens replay clean
#
# The goldens are byte-exact: a diff means either nondeterminism in the
# compile→serve→score pipeline (a bug — fix it) or an intentional change
# to scenario semantics (regenerate with `update` and review the golden
# diff like code).
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "update" ]]; then
  echo "== regenerating scenario goldens =="
  go test -count=1 -run 'TestScenarioGoldens' ./internal/scenario -update
  git --no-pager diff --stat -- scenarios/ || true
fi

echo "== scenario goldens + determinism + adversarial e2e (race, uncached) =="
go test -race -count=1 -run 'TestScenario|TestAdversarial|TestRowhammer' ./internal/scenario

echo "== scenario goldens at GOMAXPROCS=2 =="
GOMAXPROCS=2 go test -race -count=1 -run 'TestScenarioGoldens|TestScenarioDeterminism' ./internal/scenario

echo "scenarios: OK"
