#!/usr/bin/env bash
# Static-analysis gate, the local mirror of CI's static-analysis job:
#
#   1. uerlvet (cmd/uerlvet) over the whole module — the repo's own
#      go/analysis-style suite checking the //uerl: contract surface:
#      determinism, hotpath allocations, concurrency (Decider coverage,
#      guarded-by/restrict-to fields), floating-point reduction order,
#      plus shadow/unusedwrite/nilness. Must be clean.
#   2. A self-check that uerlvet still *fails* on every analyzer's
#      testdata fixtures — if an analyzer silently stops firing, the
#      clean ./... run above would pass vacuously.
#   3. govulncheck, when installed (CI installs it; locally optional).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== uerlvet ./... =="
go run ./cmd/uerlvet ./...

echo "== uerlvet guardrail layer (explicit pass) =="
# The budget ledger must stay a declared-deterministic package: telemetry
# time only, no wall clock. A dedicated pass keeps the guard layer
# covered even if the module-wide invocation above is ever narrowed, and
# the marker grep fails loudly if someone drops the declaration (which
# would silently exempt internal/guard from the determinism analyzers).
go run ./cmd/uerlvet ./internal/guard ./internal/evalx .
if ! grep -q '^//uerl:deterministic' internal/guard/guard.go; then
  echo "lint: internal/guard lost its //uerl:deterministic package marker" >&2
  exit 1
fi

echo "== uerlvet scenario harness (explicit pass) =="
# The scenario harness promises byte-identical summaries across runs and
# GOMAXPROCS values, so the whole package must stay declared
# deterministic — telemetry time and forked spec-seeded RNGs only. The
# grep fails loudly if the declaration is dropped, which would silently
# exempt the compiler/runner from the determinism analyzers.
go run ./cmd/uerlvet ./internal/scenario
if ! grep -q '^//uerl:deterministic' internal/scenario/spec.go; then
  echo "lint: internal/scenario lost its //uerl:deterministic package marker" >&2
  exit 1
fi

echo "== uerlvet fleet serving layer (explicit pass) =="
# The distributed serving layer promises a byte-identical decision
# stream for a given seed + fault schedule at any GOMAXPROCS, so the
# coordinator/transport/journal package must stay declared deterministic
# — telemetry time and seed-forked RNGs only, no wall clock in failover
# or backoff decisions. The grep fails loudly if the declaration is
# dropped, which would silently exempt internal/fleet from the
# determinism analyzers.
go run ./cmd/uerlvet ./internal/fleet
if ! grep -q '^//uerl:deterministic' internal/fleet/coordinator.go; then
  echo "lint: internal/fleet lost its //uerl:deterministic package marker" >&2
  exit 1
fi

echo "== uerlvet fixture self-check (each must produce findings) =="
fixtures=(
  internal/analysis/determinism/testdata/src/det
  internal/analysis/hotpath/testdata/src/hot
  internal/analysis/concurrency/testdata/src/conc
  internal/analysis/fpreduce/testdata/src/fpr
  internal/analysis/vetextra/testdata/src/shadowfix
  internal/analysis/vetextra/testdata/src/unusedfix
  internal/analysis/vetextra/testdata/src/nilfix
)
for d in "${fixtures[@]}"; do
  if go run ./cmd/uerlvet "./$d" >/dev/null 2>&1; then
    echo "lint: expected uerlvet findings in $d, got none — analyzer gone dark?" >&2
    exit 1
  fi
done

echo "== govulncheck =="
if command -v govulncheck >/dev/null 2>&1; then
  govulncheck ./...
else
  echo "govulncheck not installed; skipping (CI installs and runs it)"
fi

echo "lint: OK"
