#!/usr/bin/env bash
# bench_guard.sh — regression guard over the BENCH_<n>.json trajectory.
#
# Compares two scripts/bench.sh snapshots within a tolerance band and
# fails (exit 1) when any benchmark regressed beyond it:
#
#   - ns/op:      new > old * (1 + TOLERANCE) is a time regression
#   - allocs/op:  new > old * (1 + TOLERANCE) AND new - old > 2 is an
#                 allocation regression (the +2 slack ignores pool warmup
#                 jitter on benchmarks with single-digit allocation counts)
#
# Benchmarks present in only one snapshot are reported but never fail the
# guard (new benchmarks appear, retired ones disappear).
#
# Usage:
#   scripts/bench_guard.sh                       # two newest BENCH_*.json
#   scripts/bench_guard.sh OLD.json NEW.json
#   TOLERANCE=0.5 scripts/bench_guard.sh         # widen the band
set -euo pipefail

cd "$(dirname "$0")/.."

TOLERANCE="${TOLERANCE:-0.30}"

old="${1:-}"
new="${2:-}"
if [ -z "$old" ] || [ -z "$new" ]; then
  # Pick the two newest numbered snapshots (portable to bash 3.2: no
  # mapfile, no negative array subscripts — macOS ships bash 3.2).
  snaps="$(for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    n="${f#BENCH_}"; n="${n%.json}"
    case "$n" in *[!0-9]*) continue ;; esac
    printf '%d %s\n' "$n" "$f"
  done | sort -n | awk '{print $2}')"
  count=0
  [ -n "$snaps" ] && count="$(printf '%s\n' "$snaps" | wc -l | tr -d ' ')"
  if [ "$count" -lt 2 ]; then
    echo "bench_guard: need two BENCH_<n>.json snapshots (have $count); run scripts/bench.sh first" >&2
    exit 2
  fi
  old="$(printf '%s\n' "$snaps" | tail -n 2 | head -n 1)"
  new="$(printf '%s\n' "$snaps" | tail -n 1)"
fi

echo "bench_guard: $old -> $new (tolerance ${TOLERANCE})"

awk -v tol="$TOLERANCE" -v oldfile="$old" -v newfile="$new" '
function parse(file, ns, al,   line, name, rest) {
    while ((getline line < file) > 0) {
        if (line !~ /"Benchmark/) continue
        name = line
        sub(/^[^"]*"/, "", name); sub(/".*/, "", name)
        rest = line
        if (match(rest, /"ns_per_op": *[0-9.eE+-]+/))
            ns[name] = substr(rest, RSTART + 13, RLENGTH - 13) + 0
        if (match(rest, /"allocs_per_op": *[0-9.eE+-]+/))
            al[name] = substr(rest, RSTART + 17, RLENGTH - 17) + 0
    }
    close(file)
}
BEGIN {
    parse(oldfile, ons, oal)
    parse(newfile, nns, nal)
    fails = 0
    printf "%-40s %12s %12s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta"
    for (name in nns) {
        if (!(name in ons)) { added[name] = 1; continue }
        dns = (ons[name] > 0) ? (nns[name] / ons[name] - 1) : 0
        flag = ""
        if (nns[name] > ons[name] * (1 + tol)) { flag = "  TIME REGRESSION"; fails++ }
        if ((name in nal) && (name in oal) && \
            nal[name] > oal[name] * (1 + tol) && nal[name] - oal[name] > 2) {
            flag = flag "  ALLOC REGRESSION (" oal[name] " -> " nal[name] ")"; fails++
        }
        printf "%-40s %12.0f %12.0f %+7.1f%%%s\n", name, ons[name], nns[name], 100 * dns, flag
    }
    for (name in ons) if (!(name in nns)) printf "%-40s removed in %s\n", name, newfile
    for (name in added) printf "%-40s new in %s\n", name, newfile
    if (fails > 0) {
        printf "bench_guard: %d regression(s) beyond the %.0f%% band\n", fails, 100 * tol
        exit 1
    }
    print "bench_guard: ok"
}
'
