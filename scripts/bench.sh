#!/usr/bin/env bash
# bench.sh — run the repository's hot-path benchmarks and record the
# perf trajectory.
#
# Emits standard `go test -bench` output (benchstat-compatible: pipe two
# runs' saved outputs into `benchstat old.txt new.txt`) and writes a
# BENCH_<n>.json summary next to the repo root so successive PRs can
# track ns/op and allocs/op over time.
#
# Usage:
#   scripts/bench.sh                       # default: 1s benchtime, 1 count
#   scripts/bench.sh -cpuprofile out.prof  # also record a CPU profile
#   BENCHTIME=3s COUNT=5 scripts/bench.sh
#   BENCH_OUT=BENCH_3.json scripts/bench.sh
set -euo pipefail

cd "$(dirname "$0")/.."

CPUPROFILE=""
while [ $# -gt 0 ]; do
  case "$1" in
    -cpuprofile)
      [ $# -ge 2 ] || { echo "bench.sh: -cpuprofile needs a path" >&2; exit 2; }
      CPUPROFILE="$2"
      shift 2
      ;;
    *)
      echo "bench.sh: unknown argument $1 (supported: -cpuprofile <path>)" >&2
      exit 2
      ;;
  esac
done

BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-1}"
# Default to BENCH_<max+1>.json so a rerun never clobbers a previous PR's
# committed snapshot and the trajectory stays ordered.
if [ -z "${BENCH_OUT:-}" ]; then
  max=0
  for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    n="${f#BENCH_}"
    n="${n%.json}"
    case "$n" in *[!0-9]*) continue ;; esac
    [ "$n" -gt "$max" ] && max="$n"
  done
  BENCH_OUT="BENCH_$((max + 1)).json"
fi
FILTER="${FILTER:-BenchmarkNNForward$|BenchmarkNNForwardBatch$|BenchmarkNNTrainStep$|BenchmarkNNTrainStepBatched$|BenchmarkPERSample$|BenchmarkFeatureTracker$|BenchmarkReplayNever$|BenchmarkReplayNeverSerial$|BenchmarkControllerObserveEvent$|BenchmarkControllerObserveBatch$|BenchmarkControllerRecommendSerial$|BenchmarkControllerRecommendParallel$|BenchmarkDQNTrainEpochParallel$|BenchmarkFig3CostBenefit$}"

txt="$(mktemp)"
trap 'rm -f "$txt"' EXIT

go test -run '^$' -bench "$FILTER" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" \
  ${CPUPROFILE:+-cpuprofile "$CPUPROFILE"} . | tee "$txt"

# Convert "BenchmarkX-8  N  T ns/op  B B/op  A allocs/op [extra metrics]"
# lines into a JSON summary. With COUNT>1 the fastest run of each
# benchmark wins: the snapshot records the code's speed, not whichever
# host-contention phase a single run happened to land in (allocs and
# B/op ride along from the winning run — they barely vary).
awk -v out="$BENCH_OUT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    t = ""
    for (i = 2; i < NF; i++)
        if ($(i+1) == "ns/op") t = $i
    if (t == "" || ((name in ns) && t + 0 >= ns[name] + 0)) next
    ns[name] = t
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "B/op")      bytes[name] = $i
        if ($(i+1) == "allocs/op") allocs[name] = $i
        if ($(i+1) == "ns/sample") persample[name] = $i
        if ($(i+1) == "ns/event")  persample[name] = $i
    }
    if (!(name in order)) { order[name] = ++n; names[n] = name }
}
END {
    printf "{\n" > out
    for (i = 1; i <= n; i++) {
        name = names[i]
        printf "  \"%s\": {\"ns_per_op\": %s", name, ns[name] >> out
        if (name in persample) printf ", \"ns_per_sample\": %s", persample[name] >> out
        if (name in bytes)     printf ", \"bytes_per_op\": %s", bytes[name] >> out
        if (name in allocs)    printf ", \"allocs_per_op\": %s", allocs[name] >> out
        printf "}%s\n", (i < n ? "," : "") >> out
    }
    printf "}\n" >> out
}
' "$txt"

echo "wrote $BENCH_OUT"
