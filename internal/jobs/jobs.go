// Package jobs synthesizes MareNostrum-4-style HPC job traces (§2.2): the
// proprietary Slurm/sacct log is replaced by a heavy-tailed generator whose
// node-count and duration distributions span the orders of magnitude the
// paper reports (potential UE costs up to ≈32,000 node–hours), plus the
// node-weighted job sampler used to assemble per-node episode job sequences
// (§3.3.3) and the job-size scaling factor of the §5.6 sensitivity
// analysis.
package jobs

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/mathx"
)

// Job is one scheduler record, in the spirit of `sacct` output.
type Job struct {
	// ID is a unique job identifier.
	ID int
	// Nodes is the number of allocated nodes.
	Nodes int
	// Duration is the wallclock run time.
	Duration time.Duration
}

// NodeHours returns the job's total compute volume in node–hours.
func (j Job) NodeHours() float64 {
	return float64(j.Nodes) * j.Duration.Hours()
}

// Config parameterizes the trace generator.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Count is the number of jobs in the trace.
	Count int
	// MaxNodes caps allocations at the system size (MN4: 3456).
	MaxNodes int
	// NodesAlpha is the bounded-Pareto shape for node counts; smaller is
	// heavier-tailed.
	NodesAlpha float64
	// DurationMedianHours and DurationSigma parameterize the log-normal
	// wallclock distribution.
	DurationMedianHours float64
	DurationSigma       float64
	// MaxDurationHours caps wallclock at the scheduler limit (MN: 72 h).
	MaxDurationHours float64
	// SizeScale multiplies node counts — the §5.6 job-size scaling factor.
	// 1 reproduces the MN4 distribution.
	SizeScale float64
}

// Default returns the MN4-calibrated configuration: mostly small jobs with
// a heavy tail, maximum potential cost ≈ 32k node–hours (e.g. a 448-node
// job at the 72 h limit).
func Default() Config {
	return Config{
		Seed:                1,
		Count:               20000,
		MaxNodes:            3456,
		NodesAlpha:          0.75,
		DurationMedianHours: 3,
		DurationSigma:       1.4,
		MaxDurationHours:    72,
		SizeScale:           1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Count <= 0 {
		return fmt.Errorf("jobs: Count must be positive, got %d", c.Count)
	}
	if c.MaxNodes <= 0 {
		return fmt.Errorf("jobs: MaxNodes must be positive, got %d", c.MaxNodes)
	}
	if c.SizeScale <= 0 {
		return fmt.Errorf("jobs: SizeScale must be positive, got %v", c.SizeScale)
	}
	if c.MaxDurationHours <= 0 {
		return fmt.Errorf("jobs: MaxDurationHours must be positive, got %v", c.MaxDurationHours)
	}
	return nil
}

// WithScale returns a copy with the job-size scaling factor set.
func (c Config) WithScale(f float64) Config {
	c.SizeScale = f
	return c
}

// Generate synthesizes a job trace.
func Generate(cfg Config) []Job {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := mathx.NewRNG(cfg.Seed)
	out := make([]Job, cfg.Count)
	mu := math.Log(cfg.DurationMedianHours)
	for i := range out {
		nodes := cfg.SizeScale * rng.BoundedPareto(cfg.NodesAlpha, 1, float64(cfg.MaxNodes))
		n := int(nodes + 0.5)
		if n < 1 {
			n = 1
		}
		hours := rng.LogNormal(mu, cfg.DurationSigma)
		if hours > cfg.MaxDurationHours {
			hours = cfg.MaxDurationHours
		}
		if hours < 0.05 {
			hours = 0.05
		}
		out[i] = Job{
			ID:       i + 1,
			Nodes:    n,
			Duration: time.Duration(hours * float64(time.Hour)),
		}
	}
	return out
}

// Sampler draws jobs weighted by their node count. The paper (§3.3.3)
// weights the episode job sequence by the number of nodes each job runs on,
// so that the job mix seen *per node* matches the production distribution:
// a 100-node job occupies 100 node-slots and is therefore 100× more likely
// to be the job running on a randomly chosen node than a 1-node job of the
// same duration.
type Sampler struct {
	jobs   []Job
	cum    []float64 // cumulative node-count weights
	total  float64
	maxJob float64 // largest node-hours in the trace
	// lut is an equi-probability bucket index over cum: lut[k] is the
	// first index whose cumulative weight reaches bucket k's lower bound,
	// so a draw binary-searches only within one bucket (O(1) expected)
	// instead of the whole trace. The draw and the selected index are
	// identical to a plain SearchFloat64s over cum — the replay engine
	// samples jobs on every tick gap, making this lookup a hot path.
	lut []int32
}

// samplerBucketsPerJob sizes the lookup table relative to the trace so the
// expected bucket occupancy is below one job.
const samplerBucketsPerJob = 1

// NewSampler builds a node-weighted sampler over trace. It panics on an
// empty trace.
func NewSampler(trace []Job) *Sampler {
	if len(trace) == 0 {
		panic("jobs: empty trace")
	}
	s := &Sampler{jobs: trace, cum: make([]float64, len(trace))}
	run := 0.0
	for i, j := range trace {
		run += float64(j.Nodes)
		s.cum[i] = run
		if nh := j.NodeHours(); nh > s.maxJob {
			s.maxJob = nh
		}
	}
	s.total = run

	nb := len(trace) * samplerBucketsPerJob
	s.lut = make([]int32, nb+1)
	idx := 0
	for k := 0; k <= nb; k++ {
		bound := s.total * float64(k) / float64(nb)
		for idx < len(s.cum) && s.cum[idx] < bound {
			idx++
		}
		s.lut[k] = int32(idx)
	}
	return s
}

// Sample draws one job, weighted by node count.
func (s *Sampler) Sample(rng *mathx.RNG) Job {
	x := rng.Float64() * s.total
	// Narrow to the bucket containing x, then search only that range, and
	// finally nudge against the exact SearchFloat64s invariant (smallest i
	// with cum[i] >= x) in case float rounding at a bucket boundary placed
	// the bracket one slot off. cum is strictly increasing (every job has
	// at least one node), so the nudge loops run at most once in practice.
	nb := len(s.lut) - 1
	k := int(x / s.total * float64(nb))
	if k >= nb {
		k = nb - 1
	}
	lo, hi := int(s.lut[k]), int(s.lut[k+1])
	if hi < len(s.cum) {
		hi++
	}
	idx := lo + sort.SearchFloat64s(s.cum[lo:hi], x)
	for idx > 0 && s.cum[idx-1] >= x {
		idx--
	}
	for idx < len(s.cum) && s.cum[idx] < x {
		idx++
	}
	if idx >= len(s.jobs) {
		idx = len(s.jobs) - 1
	}
	return s.jobs[idx]
}

// MaxNodeHours reports the largest job volume in the trace, the cap on any
// single potential UE cost.
func (s *Sampler) MaxNodeHours() float64 { return s.maxJob }

// Jobs exposes the underlying trace.
func (s *Sampler) Jobs() []Job { return s.jobs }

// YoungDalyInterval returns the near-optimal periodic checkpoint interval
// for a job with the given mean time between failures and checkpoint
// write cost, using Young's first-order formula sqrt(2·C·MTBF) with Daly's
// higher-order correction for large C. It contextualizes the §5.6
// discussion: periodic checkpointing pays this cost continuously, whereas
// the paper's agent checkpoints only when failure risk or potential loss
// is high.
func YoungDalyInterval(mtbf, checkpointCost time.Duration) time.Duration {
	if mtbf <= 0 || checkpointCost <= 0 {
		return 0
	}
	c := checkpointCost.Seconds()
	m := mtbf.Seconds()
	if c >= 2*m {
		// Degenerate: checkpointing costs more than the expected loss.
		return mtbf
	}
	// Daly: t = sqrt(2*C*M) * (1 + sqrt(C/(2M))/3 + C/(9*2M)) - C.
	x := math.Sqrt(2 * c * m)
	t := x*(1+math.Sqrt(c/(2*m))/3+(c/(18*m))) - c
	if t <= 0 {
		t = x
	}
	return time.Duration(t * float64(time.Second))
}

// ExpectedPeriodicOverhead returns the expected fraction of compute lost by
// periodic checkpointing with interval t under failures with the given
// MTBF: the checkpoint write overhead plus the expected half-interval of
// recomputation per failure.
func ExpectedPeriodicOverhead(t, checkpointCost, mtbf time.Duration) float64 {
	if t <= 0 || mtbf <= 0 {
		return 0
	}
	writeFrac := checkpointCost.Seconds() / t.Seconds()
	reworkFrac := (t.Seconds() / 2) / mtbf.Seconds()
	return writeFrac + reworkFrac
}

// TraceStats summarizes a trace for calibration and tooling.
type TraceStats struct {
	Count          int
	MeanNodes      float64
	P99Nodes       float64
	MaxNodes       int
	MeanHours      float64
	MaxNodeHours   float64
	TotalNodeHours float64
}

// Stats computes TraceStats.
func Stats(trace []Job) TraceStats {
	st := TraceStats{Count: len(trace)}
	if len(trace) == 0 {
		return st
	}
	nodes := make([]float64, len(trace))
	for i, j := range trace {
		nodes[i] = float64(j.Nodes)
		st.MeanNodes += float64(j.Nodes)
		st.MeanHours += j.Duration.Hours()
		nh := j.NodeHours()
		st.TotalNodeHours += nh
		if nh > st.MaxNodeHours {
			st.MaxNodeHours = nh
		}
		if j.Nodes > st.MaxNodes {
			st.MaxNodes = j.Nodes
		}
	}
	st.MeanNodes /= float64(len(trace))
	st.MeanHours /= float64(len(trace))
	st.P99Nodes = mathx.Quantile(nodes, 0.99)
	return st
}
