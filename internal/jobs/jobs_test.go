package jobs

import (
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/mathx"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Default()
	cfg.Count = 500
	a := Generate(cfg)
	b := Generate(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}

func TestGenerateBounds(t *testing.T) {
	cfg := Default()
	cfg.Count = 5000
	for _, j := range Generate(cfg) {
		if j.Nodes < 1 || j.Nodes > cfg.MaxNodes+1 {
			t.Fatalf("nodes out of bounds: %d", j.Nodes)
		}
		if j.Duration <= 0 || j.Duration > time.Duration(cfg.MaxDurationHours*float64(time.Hour))+time.Second {
			t.Fatalf("duration out of bounds: %v", j.Duration)
		}
	}
}

func TestGenerateHeavyTail(t *testing.T) {
	cfg := Default()
	cfg.Count = 20000
	st := Stats(Generate(cfg))
	// Most jobs are small but the tail must reach hundreds of nodes.
	if st.P99Nodes < 50 {
		t.Fatalf("p99 nodes %.0f: tail too light", st.P99Nodes)
	}
	if st.MeanNodes > st.P99Nodes/3 {
		t.Fatalf("mean %.1f vs p99 %.0f: not heavy tailed", st.MeanNodes, st.P99Nodes)
	}
	// Paper: maximum potential UE cost ≈ 32,000 node–hours.
	if st.MaxNodeHours < 8000 || st.MaxNodeHours > 250000 {
		t.Fatalf("max node-hours %.0f outside calibration band", st.MaxNodeHours)
	}
}

func TestSizeScale(t *testing.T) {
	cfg := Default()
	cfg.Count = 10000
	base := Stats(Generate(cfg))
	scaled := Stats(Generate(cfg.WithScale(3)))
	ratio := scaled.MeanNodes / base.MeanNodes
	if ratio < 2 || ratio > 4 {
		t.Fatalf("scale 3 changed mean nodes by %.2f, want about 3", ratio)
	}
	down := Stats(Generate(cfg.WithScale(0.1)))
	if down.MeanNodes >= base.MeanNodes {
		t.Fatal("scale 0.1 did not shrink jobs")
	}
}

func TestNodeHours(t *testing.T) {
	j := Job{Nodes: 10, Duration: 90 * time.Minute}
	if got := j.NodeHours(); math.Abs(got-15) > 1e-9 {
		t.Fatalf("NodeHours = %v, want 15", got)
	}
}

func TestSamplerWeighting(t *testing.T) {
	trace := []Job{
		{ID: 1, Nodes: 1, Duration: time.Hour},
		{ID: 2, Nodes: 99, Duration: time.Hour},
	}
	s := NewSampler(trace)
	rng := mathx.NewRNG(1)
	big := 0
	for i := 0; i < 10000; i++ {
		if s.Sample(rng).ID == 2 {
			big++
		}
	}
	// Expect ≈99%.
	if big < 9700 || big > 10000 {
		t.Fatalf("node-weighted sampling drew the 99-node job %d/10000 times", big)
	}
}

func TestSamplerMaxNodeHours(t *testing.T) {
	trace := []Job{
		{ID: 1, Nodes: 2, Duration: time.Hour},
		{ID: 2, Nodes: 5, Duration: 10 * time.Hour},
	}
	s := NewSampler(trace)
	if got := s.MaxNodeHours(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("MaxNodeHours = %v", got)
	}
	if len(s.Jobs()) != 2 {
		t.Fatal("Jobs accessor wrong")
	}
}

func TestSamplerPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSampler(nil)
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Count: 0, MaxNodes: 10, SizeScale: 1, MaxDurationHours: 1},
		{Count: 10, MaxNodes: 0, SizeScale: 1, MaxDurationHours: 1},
		{Count: 10, MaxNodes: 10, SizeScale: 0, MaxDurationHours: 1},
		{Count: 10, MaxNodes: 10, SizeScale: 1, MaxDurationHours: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := Default().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
}

func TestYoungDalyInterval(t *testing.T) {
	// 24h MTBF, 2-minute checkpoints: Young's first-order term is
	// sqrt(2*120*86400) s ~= 1.27 h; Daly's correction keeps it close.
	got := YoungDalyInterval(24*time.Hour, 2*time.Minute)
	if got < time.Hour || got > 2*time.Hour {
		t.Fatalf("interval = %v, want ~1.3h", got)
	}
	// Longer MTBF means longer interval.
	longer := YoungDalyInterval(240*time.Hour, 2*time.Minute)
	if longer <= got {
		t.Fatal("interval should grow with MTBF")
	}
	// Degenerate inputs.
	if YoungDalyInterval(0, time.Minute) != 0 {
		t.Fatal("zero MTBF should return 0")
	}
	if YoungDalyInterval(time.Hour, 0) != 0 {
		t.Fatal("zero cost should return 0")
	}
	if YoungDalyInterval(time.Minute, 10*time.Hour) != time.Minute {
		t.Fatal("absurd checkpoint cost should clamp to MTBF")
	}
}

func TestExpectedPeriodicOverhead(t *testing.T) {
	// 1h interval, 2min writes, 100h MTBF: 2/60 write fraction + 0.5/100.
	got := ExpectedPeriodicOverhead(time.Hour, 2*time.Minute, 100*time.Hour)
	want := 2.0/60 + 0.5/100
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("overhead = %v, want %v", got, want)
	}
	if ExpectedPeriodicOverhead(0, time.Minute, time.Hour) != 0 {
		t.Fatal("degenerate interval")
	}
	// The Young/Daly interval should have lower overhead than intervals
	// 4x away in either direction.
	mtbf, c := 48*time.Hour, 5*time.Minute
	opt := YoungDalyInterval(mtbf, c)
	at := func(t0 time.Duration) float64 { return ExpectedPeriodicOverhead(t0, c, mtbf) }
	if at(opt) > at(opt*4) || at(opt) > at(opt/4) {
		t.Fatalf("Young/Daly interval not near-optimal: %v@%v vs %v@%v and %v@%v",
			at(opt), opt, at(opt*4), opt*4, at(opt/4), opt/4)
	}
}

func TestStatsEmpty(t *testing.T) {
	st := Stats(nil)
	if st.Count != 0 || st.MaxNodeHours != 0 {
		t.Fatal("empty stats should be zero")
	}
}

// TestSamplerBucketIndexMatchesFullSearch: the bucket-index fast path must
// select exactly the job a full binary search over the cumulative weights
// would, for draws spanning the whole range including bucket boundaries.
func TestSamplerBucketIndexMatchesFullSearch(t *testing.T) {
	trace := Generate(Config{Seed: 9, Count: 2000, MaxNodes: 3456, NodesAlpha: 0.75,
		DurationMedianHours: 3, DurationSigma: 1.4, MaxDurationHours: 72, SizeScale: 1})
	s := NewSampler(trace)
	ref := func(x float64) int {
		idx := sort.SearchFloat64s(s.cum, x)
		if idx >= len(s.jobs) {
			idx = len(s.jobs) - 1
		}
		return idx
	}
	// Random draws: the fast path and the reference must consume one
	// Float64 each and agree on the job.
	rngA, rngB := mathx.NewRNG(4), mathx.NewRNG(4)
	for i := 0; i < 20000; i++ {
		got := s.Sample(rngA)
		want := s.jobs[ref(rngB.Float64()*s.total)]
		if got != want {
			t.Fatalf("draw %d: fast %+v != reference %+v", i, got, want)
		}
	}
	// Exact boundary values: cumulative weights and bucket bounds.
	for i := 0; i < len(s.cum); i += 97 {
		for _, x := range []float64{s.cum[i], math.Nextafter(s.cum[i], 0), math.Nextafter(s.cum[i], s.total)} {
			lutIdx := func() int {
				nb := len(s.lut) - 1
				k := int(x / s.total * float64(nb))
				if k < 0 {
					k = 0
				}
				if k >= nb {
					k = nb - 1
				}
				lo, hi := int(s.lut[k]), int(s.lut[k+1])
				if hi < len(s.cum) {
					hi++
				}
				idx := lo + sort.SearchFloat64s(s.cum[lo:hi], x)
				for idx > 0 && s.cum[idx-1] >= x {
					idx--
				}
				for idx < len(s.cum) && s.cum[idx] < x {
					idx++
				}
				if idx >= len(s.jobs) {
					idx = len(s.jobs) - 1
				}
				return idx
			}()
			if lutIdx != ref(x) {
				t.Fatalf("x=%v: lut index %d != reference %d", x, lutIdx, ref(x))
			}
		}
	}
}
