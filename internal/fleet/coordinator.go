// Package fleet is the distributed serving layer: a coordinator that
// rendezvous-hashes node ids across N workers (each wrapping a Controller
// + optional Guard behind a Transport boundary), built robustness-first —
// per-worker health with deterministic-jitter retry/backoff, failover
// that replays each affected node's bounded event journal into the new
// owner, graceful degradation (Recommend for an unreachable node answers
// a conservative ActionNone flagged Degraded, never blocks or errors),
// and two-phase model-artifact distribution over the versioned SaveModel
// wire format with quorum commit.
//
// Everything the coordinator does is driven by telemetry time and
// seed-forked RNGs: same seed + same event stream + same fault schedule
// reproduce the same decision stream, health transitions and replay
// traffic at any GOMAXPROCS. All coordinator mutation happens on the
// event-ingestion path (one feeding goroutine, like the Controller's
// per-node ordering contract); Recommend is read-only on coordinator
// state, so concurrent probers never perturb a replayed scenario.
//
//uerl:deterministic
package fleet

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	uerl "repro"
	"repro/internal/features"
	"repro/internal/mathx"
)

// Degrade* name the faults behind a Degraded decision (Decision.DegradeReason).
const (
	// DegradeNoWorkers: no worker is live; the fleet serves conservative
	// answers for every node.
	DegradeNoWorkers = "fleet:no-live-workers"
	// DegradeOwnerDown: the node's owner is declared dead and no live
	// worker has taken the node over yet.
	DegradeOwnerDown = "fleet:owner-down"
	// DegradeUnreachable: the delivery to the node's owner failed (hung
	// or just died); health accounting will catch up on the ingestion
	// path.
	DegradeUnreachable = "fleet:owner-unreachable"
)

// A Coordinator is a drop-in serving layer for the online-learning
// lifecycle (uerl.NewServingLearner).
var _ uerl.Serving = (*Coordinator)(nil)

// Config parameterizes a Coordinator.
type Config struct {
	// Workers is the number of worker slots (required, >= 1).
	Workers int
	// Seed feeds the per-worker retry-jitter RNGs (forked per worker).
	Seed int64
	// Initial is the policy the fleet serves before any deploy; also the
	// default worker factory's initial policy. Required.
	Initial uerl.Policy
	// NewWorker builds worker id (start and rejoin-after-kill). Nil
	// defaults to NewWorker(id, Initial) — unguarded workers.
	NewWorker func(id int) *Worker
	// JournalCapacity bounds each node's replay window (default 512
	// events).
	JournalCapacity int
	// DedupWindow absorbs duplicated deliveries (see EventJournal);
	// default 0 (off).
	DedupWindow time.Duration
	// FailureThreshold is the number of consecutive failed attempts
	// before a worker is declared dead (default 3).
	FailureThreshold int
	// RetryBackoff is the base telemetry-time delay between retries
	// (default 30s), doubling per consecutive failure with ±50% jitter.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the backoff (default 10m) — also the rejoin
	// discovery latency bound for a long-dead worker.
	RetryBackoffMax time.Duration
}

func (cfg *Config) applyDefaults() error {
	if cfg.Workers <= 0 {
		return fmt.Errorf("fleet: Config.Workers must be >= 1, got %d", cfg.Workers)
	}
	if cfg.Initial == nil {
		return fmt.Errorf("fleet: Config.Initial policy is required")
	}
	if cfg.JournalCapacity <= 0 {
		cfg.JournalCapacity = 512
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 30 * time.Second
	}
	if cfg.RetryBackoffMax <= 0 {
		cfg.RetryBackoffMax = 10 * time.Minute
	}
	return nil
}

// nodeState is the coordinator's ledger for one journaled node.
type nodeState struct {
	// owner is the worker currently holding the node's tracker state;
	// -1 while the node is orphaned (no live worker).
	owner int
	// applied is how many of the node's journaled events have been
	// applied to the current owner's state; journal.Pushed(node) -
	// applied is the pending backlog.
	applied uint64
	// lost counts events permanently unreplayable into the current
	// state: trimmed from the bounded journal before the last full
	// rebuild needed them. Zero for a node that never rebuilt.
	lost uint64
}

// Coordinator implements uerl.Serving across a worker fleet. See the
// package comment for the robustness and determinism contracts.
type Coordinator struct {
	mu  sync.Mutex
	cfg Config
	tr  Transport

	journal *EventJournal
	workers []*workerHealth
	nodes   map[int]*nodeState
	// clock is the max event time observed — the only time source for
	// health decisions.
	clock time.Time

	committed uerl.Policy
	// committedBytes is the committed policy's SaveModel artifact, kept
	// for re-staging onto recovering/rejoining workers; nil until the
	// first deploy (workers then already serve Initial from the factory).
	committedBytes []byte

	failovers      int
	rejoins        int
	replayedNodes  int
	replayedEvents int
	acked          uint64
}

// NewCoordinator builds a coordinator over an existing transport (the
// workers behind it must serve cfg.Initial). Most callers want
// NewInProcess instead.
func NewCoordinator(cfg Config, tr Transport) (*Coordinator, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if tr == nil {
		return nil, fmt.Errorf("fleet: NewCoordinator with nil transport")
	}
	c := &Coordinator{
		cfg:       cfg,
		tr:        tr,
		journal:   NewEventJournal(cfg.JournalCapacity, cfg.DedupWindow),
		workers:   make([]*workerHealth, cfg.Workers),
		nodes:     map[int]*nodeState{},
		committed: cfg.Initial,
	}
	root := mathx.NewRNG(cfg.Seed ^ 0x0f1ee7c0)
	for i := range c.workers {
		c.workers[i] = &workerHealth{id: i, state: WorkerLive, rng: root.Fork()}
	}
	return c, nil
}

// NewInProcess builds the single-binary multi-worker deployment: a
// coordinator over a ChanTransport running cfg.Workers goroutine workers.
// The returned transport doubles as the fault injector (Kill/Hang/Rejoin)
// for tests and scenarios.
func NewInProcess(cfg Config) (*Coordinator, *ChanTransport, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, nil, err
	}
	factory := cfg.NewWorker
	if factory == nil {
		initial := cfg.Initial
		factory = func(id int) *Worker { return NewWorker(id, initial) }
	}
	tr := NewChanTransport(cfg.Workers, factory)
	c, err := NewCoordinator(cfg, tr)
	if err != nil {
		return nil, nil, err
	}
	return c, tr, nil
}

// hrwScore is the rendezvous (highest-random-weight) hash of (node,
// worker): each node independently ranks all workers, the live worker
// with the top score owns the node. Minimal disruption by construction —
// a worker's death moves only its own nodes, and its rejoin moves exactly
// those nodes back.
func hrwScore(node, worker int) uint64 {
	x := uint64(node)*0x9E3779B97F4A7C15 ^ (uint64(worker)+1)*0xBF58476D1CE4E5B9
	// splitmix64 finalizer: full avalanche so dense node/worker ids
	// spread uniformly.
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// hrwOwner returns the live worker owning node, or -1 when none is live.
// Callers hold c.mu.
func (c *Coordinator) hrwOwner(node int) int {
	best, bestScore := -1, uint64(0)
	for _, h := range c.workers {
		if h.state == WorkerDown {
			continue
		}
		if s := hrwScore(node, h.id); best == -1 || s > bestScore {
			best, bestScore = h.id, s
		}
	}
	return best
}

// ObserveEvent ingests one telemetry event: advance the clock, run due
// health probes, journal the event (dedup permitting), and deliver it to
// the node's owner — catching the owner up from the journal first if it
// has a backlog. Events must arrive in non-decreasing time order per
// node; all ingestion must come from one goroutine for byte-identical
// replay (the Controller's own determinism contract).
func (c *Coordinator) ObserveEvent(e uerl.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.Time.After(c.clock) {
		c.clock = e.Time
	}
	c.maintain(false)
	if c.journal.Append(e) {
		return // deduplicated redelivery; state already reflects it
	}
	ns, ok := c.nodes[e.Node]
	if !ok {
		ns = &nodeState{owner: c.hrwOwner(e.Node)}
		c.nodes[e.Node] = ns
	}
	if ns.owner < 0 {
		// Orphaned (every worker down when it appeared): adopt a live
		// owner as soon as one exists; the journal backlog rebuilds it.
		ns.owner = c.hrwOwner(e.Node)
		if ns.owner < 0 {
			return
		}
	}
	c.deliver(e.Node, ns)
}

// deliver applies node's journal backlog (usually just the newest event)
// to its owner, charging health on failure. Caller holds c.mu.
func (c *Coordinator) deliver(node int, ns *nodeState) {
	h := c.workers[ns.owner]
	if h.state == WorkerDown {
		return // backlog waits for failover/rejoin to resolve the owner
	}
	if h.state == WorkerSuspect && c.clock.Before(h.nextRetry) {
		return // backing off; backlog journals and waits
	}
	pushed := c.journal.Pushed(node)
	var err error
	var replayed int
	if pushed-ns.applied == 1 {
		evs, okRange := c.journal.ReplayFrom(node, ns.applied)
		if okRange && len(evs) == 1 {
			err = c.tr.Call(ns.owner, &Request{Kind: ReqObserve, Event: evs[0]}, &Response{})
		} else {
			replayed, err = c.rebuild(node, ns)
		}
	} else {
		replayed, err = c.catchUp(node, ns)
	}
	if err != nil {
		c.noteFailure(h)
		return
	}
	ns.applied = pushed
	c.acked += uint64(1 + replayed)
	if h.state == WorkerSuspect {
		c.noteRecovery(h)
	}
	h.failures = 0
}

// catchUp replays node's pending journal suffix onto its owner without
// dropping state (the owner already holds everything before ns.applied).
// Falls back to a full rebuild when the window no longer covers the
// backlog. Returns how many events beyond the newest were replayed.
// Caller holds c.mu.
func (c *Coordinator) catchUp(node int, ns *nodeState) (int, error) {
	evs, okRange := c.journal.ReplayFrom(node, ns.applied)
	if !okRange {
		return c.rebuild(node, ns)
	}
	err := c.tr.Call(ns.owner, &Request{Kind: ReqReplay, Node: node, Events: evs}, &Response{})
	if err != nil {
		return 0, err
	}
	c.replayedNodes++
	c.replayedEvents += len(evs)
	return len(evs) - 1, nil
}

// rebuild replays node's full retained window onto its owner after
// dropping whatever the owner held — the failover path onto a fresh
// owner, and the catch-up of last resort when the bounded journal trimmed
// part of a backlog. Events trimmed before this rebuild are gone from the
// rebuilt state and recorded in ns.lost (surfaced as
// Decision.StaleEvents). Caller holds c.mu.
func (c *Coordinator) rebuild(node int, ns *nodeState) (int, error) {
	evs := c.journal.Window(node)
	err := c.tr.Call(ns.owner, &Request{Kind: ReqReplay, Node: node, Events: evs, Forget: true}, &Response{})
	if err != nil {
		return 0, err
	}
	ns.lost = c.journal.Trimmed(node)
	c.replayedNodes++
	c.replayedEvents += len(evs)
	return len(evs) - 1, nil
}

// noteFailure charges one failed attempt against h: live → suspect with a
// retry deadline, suspect → closer to the death threshold, threshold →
// declared dead with failover. Caller holds c.mu.
func (c *Coordinator) noteFailure(h *workerHealth) {
	h.failures++
	if h.state != WorkerDown && h.failures >= c.cfg.FailureThreshold {
		c.declareDead(h)
		return
	}
	if h.state == WorkerLive {
		h.state = WorkerSuspect
	}
	h.nextRetry = c.clock.Add(h.backoff(c.cfg.RetryBackoff, c.cfg.RetryBackoffMax, h.failures))
}

// noteRecovery clears a suspect worker back to live, re-staging a missed
// model deploy and catching up the backlog of every node it owns.
// Caller holds c.mu.
func (c *Coordinator) noteRecovery(h *workerHealth) {
	h.state = WorkerLive
	h.failures = 0
	c.restage(h)
	c.reconcileWorker(h.id)
}

// declareDead fails h over: every node it owns moves to its
// rendezvous-next live worker and is rebuilt there from the journal;
// with no live workers left the nodes are orphaned (served Degraded)
// until a rejoin. Caller holds c.mu.
func (c *Coordinator) declareDead(h *workerHealth) {
	h.state = WorkerDown
	h.nextRetry = c.clock.Add(h.backoff(c.cfg.RetryBackoff, c.cfg.RetryBackoffMax, h.failures))
	c.failovers++
	for _, node := range c.journal.Nodes() {
		ns := c.nodes[node]
		if ns.owner != h.id {
			continue
		}
		ns.owner = c.hrwOwner(node)
		ns.applied = 0
		if ns.owner < 0 {
			continue
		}
		if _, err := c.rebuild(node, ns); err != nil {
			// The replacement owner is failing too: charge it (possibly
			// cascading the failover) and leave the backlog journaled —
			// deliver retries on the node's next event.
			c.noteFailure(c.workers[ns.owner])
			continue
		}
		ns.applied = c.journal.Pushed(node)
	}
}

// rejoinWorker brings a probed-back worker in: it re-stages the committed
// model if the worker missed a deploy, then moves every node whose
// rendezvous owner it is (exactly the nodes it owned before dying) back,
// rebuilding each from the journal window. Caller holds c.mu.
func (c *Coordinator) rejoinWorker(h *workerHealth) {
	h.state = WorkerLive
	h.failures = 0
	h.modelStale = c.committedBytes != nil
	c.rejoins++
	c.restage(h)
	for _, node := range c.journal.Nodes() {
		ns := c.nodes[node]
		want := c.hrwOwner(node)
		if want == ns.owner {
			continue
		}
		old := ns.owner
		ns.owner = want
		ns.applied = 0
		if want >= 0 {
			if _, err := c.rebuild(node, ns); err != nil {
				c.noteFailure(c.workers[want])
				continue
			}
			ns.applied = c.journal.Pushed(node)
		}
		if old >= 0 && c.workers[old].state != WorkerDown {
			// Best-effort: drop the node's stale state on the previous
			// owner so its footprint reflects only nodes it serves.
			_ = c.tr.Call(old, &Request{Kind: ReqForget, Node: node}, &Response{})
		}
	}
}

// restage pushes the committed artifact onto a worker that missed its
// deploy (stage + commit); failure keeps modelStale set for the next
// recovery. Caller holds c.mu.
func (c *Coordinator) restage(h *workerHealth) {
	if !h.modelStale || c.committedBytes == nil {
		return
	}
	var resp Response
	req := &Request{Kind: ReqStage, Artifact: c.committedBytes}
	if err := c.tr.Call(h.id, req, &resp); err != nil || resp.Err != "" {
		return
	}
	commit := &Request{Kind: ReqCommit, Version: c.committed.Version()}
	if err := c.tr.Call(h.id, commit, &resp); err != nil || resp.Err != "" {
		return
	}
	h.modelStale = false
}

// reconcileWorker catches up the journal backlog of every node owned by
// worker id. Caller holds c.mu.
func (c *Coordinator) reconcileWorker(id int) {
	for _, node := range c.journal.Nodes() {
		ns := c.nodes[node]
		if ns.owner != id || ns.applied == c.journal.Pushed(node) {
			continue
		}
		if _, err := c.catchUp(node, ns); err != nil {
			c.noteFailure(c.workers[id])
			return
		}
		ns.applied = c.journal.Pushed(node)
	}
}

// maintain runs due health probes against suspect and down workers on
// the telemetry clock: a successful probe recovers or rejoins the
// worker, a failed one backs off further (suspects crossing the failure
// threshold are declared dead). force ignores the backoff schedule and
// probes every non-live worker now — Reconcile's settling semantics.
// Caller holds c.mu.
func (c *Coordinator) maintain(force bool) {
	for _, h := range c.workers {
		if h.state == WorkerLive || (!force && c.clock.Before(h.nextRetry)) {
			continue
		}
		err := c.tr.Call(h.id, &Request{Kind: ReqPing}, &Response{})
		switch {
		case err == nil && h.state == WorkerSuspect:
			c.noteRecovery(h)
		case err == nil:
			c.rejoinWorker(h)
		default:
			c.noteFailure(h)
		}
	}
}

// Reconcile settles the fleet now: it probes every non-live worker
// (ignoring the backoff schedule — recovered workers rejoin
// immediately), force-flushes every node's journal backlog to its owner,
// and re-homes orphaned nodes if workers are live again. The
// end-of-stream settling step scenario runners and tests call before
// comparing state; ongoing traffic does not need it, deliver catches
// owners up lazily.
func (c *Coordinator) Reconcile() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maintain(true)
	for _, node := range c.journal.Nodes() {
		ns := c.nodes[node]
		if ns.owner < 0 {
			if ns.owner = c.hrwOwner(node); ns.owner < 0 {
				continue
			}
			ns.applied = 0
		}
		if ns.applied != c.journal.Pushed(node) {
			c.deliver(node, ns)
		}
	}
}

// staleness bounds how stale node's served state is: journaled events not
// yet applied to the owner plus events lost to a rebuild. Caller holds
// c.mu.
func (c *Coordinator) staleness(node int) int {
	ns, ok := c.nodes[node]
	if !ok {
		return 0
	}
	return int(c.journal.Pushed(node)-ns.applied) + int(ns.lost)
}

// degraded builds the conservative answer for a node whose owner cannot
// serve: ActionNone, flagged Degraded with the fault named, the committed
// policy identity for audit, and the staleness bound. Caller holds c.mu.
func (c *Coordinator) degraded(node int, at time.Time, cost float64, reason string) uerl.Decision {
	d := uerl.Decision{
		Node:          node,
		Time:          at,
		Action:        uerl.ActionNone,
		Policy:        c.committed.Name(),
		ModelVersion:  c.committed.Version(),
		Degraded:      true,
		DegradeReason: reason,
		StaleEvents:   c.staleness(node),
	}
	// Match the empty-state feature shape Recommend would report (the
	// potential cost is an input, not tracker state).
	d.Features[features.UECost] = cost
	return d
}

// Recommend answers a mitigation query from the node's owner. It never
// blocks on a faulted worker and never errors: when the owner cannot
// answer (dead, hung, orphaned, or no live workers), it returns a
// conservative ActionNone flagged Degraded — mirroring the Vetoed
// contract — with DegradeReason naming the fault and StaleEvents
// bounding how much journaled state the answer is missing. Recommend
// reads but never mutates coordinator state (health, journal, clock), so
// concurrent pollers cannot perturb a deterministic replay; health is
// charged on the ingestion path only.
func (c *Coordinator) Recommend(node int, at time.Time, potentialCostNodeHours float64) uerl.Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	owner := -1
	if ns, ok := c.nodes[node]; ok {
		owner = ns.owner
	} else {
		owner = c.hrwOwner(node)
	}
	if owner < 0 {
		return c.degraded(node, at, potentialCostNodeHours, DegradeNoWorkers)
	}
	if c.workers[owner].state == WorkerDown {
		return c.degraded(node, at, potentialCostNodeHours, DegradeOwnerDown)
	}
	var resp Response
	req := &Request{Kind: ReqRecommend, Node: node, At: at, Cost: potentialCostNodeHours}
	if err := c.tr.Call(owner, req, &resp); err != nil {
		return c.degraded(node, at, potentialCostNodeHours, DegradeUnreachable)
	}
	d := resp.Decision
	d.StaleEvents = c.staleness(node)
	return d
}

// Features reads node's feature vector from its owner — the
// observability twin of Recommend. ok=false when no live worker can
// answer.
func (c *Coordinator) Features(node int, at time.Time, potentialCostNodeHours float64) ([uerl.FeatureDim]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	owner := -1
	if ns, okN := c.nodes[node]; okN {
		owner = ns.owner
	} else {
		owner = c.hrwOwner(node)
	}
	if owner < 0 || c.workers[owner].state == WorkerDown {
		return [uerl.FeatureDim]float64{}, false
	}
	var resp Response
	req := &Request{Kind: ReqFeatures, Node: node, At: at, Cost: potentialCostNodeHours}
	if err := c.tr.Call(owner, req, &resp); err != nil {
		return [uerl.FeatureDim]float64{}, false
	}
	return resp.Features, true
}

// Policy returns the committed fleet-wide policy.
func (c *Coordinator) Policy() uerl.Policy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.committed
}

// DeployPolicy rolls p out in two phases over the SaveModel wire format:
// stage to every live worker (each validates the artifact), then — if a
// majority of the live fleet acked — commit; otherwise abort everywhere
// and keep the incumbent, returning an error so the caller records a
// rejected rollout. Workers that missed the deploy (down, or failed
// mid-protocol) are marked model-stale and re-staged when they recover.
func (c *Coordinator) DeployPolicy(p uerl.Policy) (uerl.Policy, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p == nil {
		return c.committed, fmt.Errorf("fleet: DeployPolicy with nil policy")
	}
	var buf bytes.Buffer
	if err := uerl.SaveModel(&buf, p); err != nil {
		return c.committed, fmt.Errorf("fleet: policy not distributable: %w", err)
	}
	artifact := buf.Bytes()

	var staged, reachable []int
	var rejections []string
	for _, h := range c.workers {
		if h.state == WorkerDown {
			continue
		}
		var resp Response
		err := c.tr.Call(h.id, &Request{Kind: ReqStage, Artifact: artifact}, &resp)
		if err != nil {
			c.noteFailure(h)
			continue
		}
		reachable = append(reachable, h.id)
		if resp.Err != "" {
			rejections = append(rejections, fmt.Sprintf("worker %d: %s", h.id, resp.Err))
			continue
		}
		staged = append(staged, h.id)
	}
	quorum := len(reachable)/2 + 1
	if len(reachable) == 0 || len(staged) < quorum {
		for _, id := range staged {
			_ = c.tr.Call(id, &Request{Kind: ReqAbort}, &Response{})
		}
		return c.committed, fmt.Errorf("fleet: deploy of %s rejected by quorum (%d/%d staged, need %d): %s",
			p.Version(), len(staged), len(reachable), quorum, firstOr(rejections, "no reachable workers"))
	}
	prev := c.committed
	c.committed = p
	c.committedBytes = artifact
	for _, h := range c.workers {
		h.modelStale = true
	}
	for _, id := range staged {
		var resp Response
		err := c.tr.Call(id, &Request{Kind: ReqCommit, Version: p.Version()}, &resp)
		if err != nil {
			c.noteFailure(c.workers[id])
			continue
		}
		if resp.Err == "" {
			c.workers[id].modelStale = false
		}
	}
	return prev, nil
}

func firstOr(list []string, fallback string) string {
	if len(list) == 0 {
		return fallback
	}
	return list[0]
}

// ObserveDecision routes a served decision to the guard of the node's
// owner for budget accounting. Degraded decisions are coordinator-made
// (no worker acted) and are not charged; unreachable owners drop the
// charge — the budget ledger tracks what workers actually enforced.
func (c *Coordinator) ObserveDecision(d uerl.Decision) {
	if d.Degraded {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ns, ok := c.nodes[d.Node]
	if !ok || ns.owner < 0 || c.workers[ns.owner].state == WorkerDown {
		return
	}
	_ = c.tr.Call(ns.owner, &Request{Kind: ReqObserveDecision, Decision: d}, &Response{})
}

// ObserveUE routes a realized UE outcome to the owner's guard.
func (c *Coordinator) ObserveUE(node int, at time.Time, realizedCostNodeHours float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ns, ok := c.nodes[node]
	if !ok || ns.owner < 0 || c.workers[ns.owner].state == WorkerDown {
		return
	}
	req := &Request{Kind: ReqObserveUE, Node: node, At: at, Cost: realizedCostNodeHours}
	_ = c.tr.Call(ns.owner, req, &Response{})
}

// WorkerHealth is one worker's health and serving state in Stats.
type WorkerHealth struct {
	ID int `json:"id"`
	// State is live, suspect or down.
	State WorkerState `json:"state"`
	// Failures is the consecutive-failure count toward the threshold.
	Failures int `json:"failures,omitempty"`
	// ModelStale marks a worker still missing the committed deploy.
	ModelStale bool `json:"model_stale,omitempty"`
	// OwnedNodes is how many journaled nodes currently route to the
	// worker.
	OwnedNodes int `json:"owned_nodes"`
	// Stats is the worker's own report; nil when unreachable.
	Stats *WorkerStats `json:"stats,omitempty"`
}

// Stats is a point-in-time fleet health report.
type Stats struct {
	// Committed is the fleet-wide committed model version.
	Committed string `json:"committed_version"`
	// Workers is per-worker health in id order.
	Workers []WorkerHealth `json:"workers"`
	// OrphanNodes counts nodes currently without a live owner.
	OrphanNodes int `json:"orphan_nodes"`
	// Failovers counts workers declared dead; Rejoins counts workers
	// brought back.
	Failovers int `json:"failovers"`
	Rejoins   int `json:"rejoins"`
	// ReplayedNodes / ReplayedEvents count journal replay traffic
	// (failover rebuilds and backlog catch-ups).
	ReplayedNodes  int `json:"replayed_nodes"`
	ReplayedEvents int `json:"replayed_events"`
	// AckedEvents counts events confirmed applied by an owner.
	AckedEvents uint64 `json:"acked_events"`
	// Journal summarizes the replay journal.
	Journal JournalStats `json:"journal"`
}

// Stats reports fleet health: per-worker state (querying reachable
// workers for their own serving stats), failover/replay totals and
// journal activity.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Committed:      c.committed.Version(),
		Failovers:      c.failovers,
		Rejoins:        c.rejoins,
		ReplayedNodes:  c.replayedNodes,
		ReplayedEvents: c.replayedEvents,
		AckedEvents:    c.acked,
		Journal:        c.journal.Stats(),
	}
	owned := make(map[int]int, len(c.workers))
	for _, node := range c.journal.Nodes() {
		ns := c.nodes[node]
		if ns.owner < 0 {
			st.OrphanNodes++
			continue
		}
		owned[ns.owner]++
	}
	for _, h := range c.workers {
		wh := WorkerHealth{
			ID: h.id, State: h.state, Failures: h.failures,
			ModelStale: h.modelStale, OwnedNodes: owned[h.id],
		}
		if h.state != WorkerDown {
			var resp Response
			if err := c.tr.Call(h.id, &Request{Kind: ReqStats}, &resp); err == nil {
				ws := resp.Stats
				wh.Stats = &ws
			}
		}
		st.Workers = append(st.Workers, wh)
	}
	return st
}
