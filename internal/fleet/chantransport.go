package fleet

import (
	"fmt"
	"sync"
)

// rpc is one in-flight request/response pair handed across the worker
// channel boundary.
type rpc struct {
	req  *Request
	resp *Response
	done chan struct{}
}

// chanEndpoint is the coordinator-side handle of one worker goroutine.
type chanEndpoint struct {
	reqCh chan rpc
	stop  chan struct{}
	// killed and hung are fault-injection flags (guarded by the
	// transport mutex). A killed worker's goroutine has exited and its
	// state is gone — Rejoin starts a fresh worker from the factory. A
	// hung worker keeps its goroutine and state but every Call fails
	// with ErrWorkerTimeout until Rejoin clears the flag.
	killed bool
	hung   bool
}

// ChanTransport runs N workers as goroutines behind channel request/reply
// boundaries — the single-binary multi-worker mode. Every request crosses
// a real goroutine handoff (so -race exercises the coordinator/worker
// interface exactly as a network transport would), yet calls are
// synchronous and faults are modeled deterministically: Kill, Hang and
// Rejoin flip per-worker flags, and calls against a faulted worker fail
// immediately with the matching error instead of waiting out wall-clock
// timeouts. Same call sequence + same fault schedule ⇒ same results,
// byte for byte, at any GOMAXPROCS.
type ChanTransport struct {
	mu      sync.Mutex
	factory func(id int) *Worker
	eps     []*chanEndpoint
}

// NewChanTransport starts n workers built by factory. The factory is
// retained: Rejoin after Kill uses it to start a replacement worker from
// scratch (fresh controller state — exactly what a restarted process
// would have).
func NewChanTransport(n int, factory func(id int) *Worker) *ChanTransport {
	if n <= 0 {
		panic(fmt.Sprintf("fleet: transport needs at least one worker, got %d", n))
	}
	if factory == nil {
		panic("fleet: NewChanTransport with nil worker factory")
	}
	t := &ChanTransport{factory: factory, eps: make([]*chanEndpoint, n)}
	for i := range t.eps {
		t.eps[i] = startEndpoint(factory(i))
	}
	return t
}

// startEndpoint launches the serving goroutine for one worker.
func startEndpoint(w *Worker) *chanEndpoint {
	ep := &chanEndpoint{reqCh: make(chan rpc), stop: make(chan struct{})}
	go func() {
		for {
			select {
			case <-ep.stop:
				return
			case c := <-ep.reqCh:
				w.handle(c.req, c.resp)
				close(c.done)
			}
		}
	}()
	return ep
}

// Workers reports the number of worker slots.
func (t *ChanTransport) Workers() int { return len(t.eps) }

// Call delivers req to worker w and waits for its reply. Faulted workers
// fail immediately: ErrWorkerDown when killed, ErrWorkerTimeout when
// hung. The call is serialized under the transport mutex, which keeps the
// fault flags and the request handoff atomic with respect to concurrent
// Kill/Hang/Rejoin.
func (t *ChanTransport) Call(w int, req *Request, resp *Response) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if w < 0 || w >= len(t.eps) {
		return fmt.Errorf("fleet: no worker %d (have %d)", w, len(t.eps))
	}
	ep := t.eps[w]
	switch {
	case ep.killed:
		return ErrWorkerDown
	case ep.hung:
		return ErrWorkerTimeout
	}
	c := rpc{req: req, resp: resp, done: make(chan struct{})}
	ep.reqCh <- c
	<-c.done
	return nil
}

// Kill stops worker w: its goroutine exits and its state is gone. Calls
// fail with ErrWorkerDown until Rejoin starts a replacement.
func (t *ChanTransport) Kill(w int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ep := t.eps[w]
	if ep.killed {
		return
	}
	ep.killed = true
	ep.hung = false
	close(ep.stop)
}

// Hang makes worker w unresponsive without losing its state: calls fail
// with ErrWorkerTimeout until Rejoin clears the fault.
func (t *ChanTransport) Hang(w int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.eps[w].killed {
		t.eps[w].hung = true
	}
}

// Rejoin heals worker w: a hung worker resumes with its state intact; a
// killed worker is replaced by a factory-fresh one (empty controller
// state, initial policy), as a restarted process would be. The
// coordinator discovers the recovery on its next probe and rebuilds
// state through journal replay.
func (t *ChanTransport) Rejoin(w int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ep := t.eps[w]
	if ep.killed {
		t.eps[w] = startEndpoint(t.factory(w))
		return
	}
	ep.hung = false
}
