package fleet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	uerl "repro"
	"repro/internal/mathx"
)

// TestFleetFailoverParity is the tentpole e2e (run under -race in the CI
// fleet-failover job): a worker is killed mid-burst and later rejoins
// while concurrent probers hammer Recommend. The contract proved here:
//
//   - zero acked events are lost — after the stream settles, every
//     node's tracker state is bit-identical to an uninterrupted
//     single-process Controller fed the same stream;
//   - serving stays live throughout — probers always get an answer, and
//     any degraded answer is a conservative ActionNone with a reason;
//   - the outage is visible — the fleet reports the failover, the
//     rejoin, and replay traffic.
func TestFleetFailoverParity(t *testing.T) {
	const nodes = 40
	events := genStream(7, nodes, 4000, 20*time.Second)

	// Uninterrupted single-process reference.
	ref := uerl.NewController(uerl.AlwaysPolicy())
	for _, e := range events {
		ref.ObserveEvent(e)
	}

	coord, tr, err := NewInProcess(Config{
		Workers: 4, Seed: 11, Initial: uerl.AlwaysPolicy(),
		JournalCapacity: len(events), // no trimming: full replayability
	})
	if err != nil {
		t.Fatal(err)
	}

	// Probers: concurrent Recommend traffic across the whole fault arc.
	// They must never block, error or see a malformed degraded answer.
	var (
		stop       = make(chan struct{})
		wg         sync.WaitGroup
		degraded   atomic.Uint64
		contractOK atomic.Bool
	)
	contractOK.Store(true)
	t0 := events[0].Time
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := mathx.NewRNG(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				d := coord.Recommend(rng.Intn(nodes), t0.Add(time.Duration(rng.Intn(90_000))*time.Second), 100)
				if d.Degraded {
					degraded.Add(1)
					if d.Action != uerl.ActionNone || d.DegradeReason == "" {
						contractOK.Store(false)
					}
				}
			}
		}(int64(100 + p))
	}

	kill, rejoin := len(events)/3, 2*len(events)/3
	for i, e := range events {
		if i == kill {
			tr.Kill(1)
		}
		if i == rejoin {
			tr.Rejoin(1)
		}
		coord.ObserveEvent(e)
	}
	close(stop)
	wg.Wait()
	coord.Reconcile()

	// Bit-identical parity: the fleet's post-failover tracker state per
	// node equals the uninterrupted run's, element for element.
	at := events[len(events)-1].Time.Add(time.Hour)
	for n := 0; n < nodes; n++ {
		want := ref.Features(n, at, 100)
		got, ok := coord.Features(n, at, 100)
		if !ok {
			t.Fatalf("node %d unanswerable after the stream settled", n)
		}
		if got != want {
			t.Fatalf("node %d state diverged after failover+rejoin:\n got %v\nwant %v", n, got, want)
		}
	}
	if !contractOK.Load() {
		t.Fatal("a degraded answer broke the conservative-ActionNone contract")
	}

	st := coord.Stats()
	if st.Failovers < 1 || st.Rejoins < 1 {
		t.Fatalf("fault arc not exercised: failovers=%d rejoins=%d", st.Failovers, st.Rejoins)
	}
	if st.ReplayedEvents == 0 || st.ReplayedNodes == 0 {
		t.Fatalf("failover did not replay journal state: %+v", st)
	}
	if st.OrphanNodes != 0 {
		t.Fatalf("%d nodes left orphaned after rejoin", st.OrphanNodes)
	}
	if st.Journal.Appended != uint64(len(events)) {
		t.Fatalf("journal appended %d of %d events", st.Journal.Appended, len(events))
	}
	for _, w := range st.Workers {
		if w.State != WorkerLive {
			t.Fatalf("worker %d ended %s, want live", w.ID, w.State)
		}
	}
}

// TestFleetOrphanRecommendLive drives the degraded path concurrently:
// with the whole fleet down, Recommend from many goroutines stays
// non-blocking and conservative.
func TestFleetOrphanRecommendLive(t *testing.T) {
	coord, tr, err := NewInProcess(Config{
		Workers: 2, Seed: 3, Initial: uerl.AlwaysPolicy(),
		FailureThreshold: 2, RetryBackoff: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := genStream(5, 10, 200, time.Minute)
	for i, e := range events {
		if i == 50 {
			tr.Kill(0)
			tr.Kill(1)
		}
		coord.ObserveEvent(e)
	}
	var wg sync.WaitGroup
	bad := atomic.Bool{}
	at := events[len(events)-1].Time
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d := coord.Recommend(node, at, 50)
				if !d.Degraded || d.Action != uerl.ActionNone {
					bad.Store(true)
				}
			}
		}(p)
	}
	wg.Wait()
	if bad.Load() {
		t.Fatal("orphaned-fleet Recommend returned a non-degraded or non-conservative answer")
	}
}
