package fleet

import (
	"fmt"
	"testing"
	"time"

	uerl "repro"
	"repro/internal/mathx"
)

// genStream builds a deterministic telemetry stream: n events spread over
// nodes, strictly increasing time (per node and globally), a realistic
// mix of CE records with varying counts/locations plus occasional
// warnings, boots and UEs.
func genStream(seed int64, nodes, n int, step time.Duration) []uerl.Event {
	rng := mathx.NewRNG(seed)
	t0 := time.Unix(1_700_000_000, 0).UTC()
	out := make([]uerl.Event, 0, n)
	for i := 0; i < n; i++ {
		at := t0.Add(time.Duration(i) * step)
		e := uerl.Event{
			Time: at,
			Node: rng.Intn(nodes),
			DIMM: rng.Intn(4),
			Rank: rng.Intn(2), Bank: rng.Intn(8),
			Row: rng.Intn(1 << 12), Col: rng.Intn(1 << 10),
		}
		switch r := rng.Float64(); {
		case r < 0.90:
			e.Type = uerl.CorrectedError
			e.Count = 1 + rng.Intn(20)
		case r < 0.95:
			e.Type = uerl.UEWarning
		case r < 0.98:
			e.Type = uerl.NodeBoot
		default:
			e.Type = uerl.UncorrectedError
		}
		out = append(out, e)
	}
	return out
}

// TestFleetRoutingDeterminism replays the same stream through two
// identically configured fleets with the same fault schedule and demands
// a byte-identical decision stream (Decision is ==-comparable).
func TestFleetRoutingDeterminism(t *testing.T) {
	events := genStream(3, 24, 1200, 45*time.Second)
	run := func() []uerl.Decision {
		coord, tr, err := NewInProcess(Config{Workers: 3, Seed: 9, Initial: uerl.AlwaysPolicy()})
		if err != nil {
			t.Fatal(err)
		}
		var ds []uerl.Decision
		for i, e := range events {
			if i == 300 {
				tr.Kill(1)
			}
			if i == 700 {
				tr.Rejoin(1)
			}
			coord.ObserveEvent(e)
			ds = append(ds, coord.Recommend(e.Node, e.Time, 100))
		}
		return ds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestFleetDegradedContract kills the whole fleet and checks Recommend
// stays live: conservative ActionNone, Degraded flagged with a reason,
// never a block, error or panic; staleness grows with the journaled
// backlog and is repaid after rejoin.
func TestFleetDegradedContract(t *testing.T) {
	coord, tr, err := NewInProcess(Config{
		Workers: 1, Seed: 4, Initial: uerl.AlwaysPolicy(),
		JournalCapacity: 4, FailureThreshold: 2, RetryBackoff: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1_700_000_000, 0).UTC()
	tr.Kill(0)
	var last uerl.Decision
	for i := 0; i < 10; i++ {
		at := t0.Add(time.Duration(i) * 2 * time.Minute)
		coord.ObserveEvent(ev(7, at, i+1))
		last = coord.Recommend(7, at, 50)
		if !last.Degraded || last.Action != uerl.ActionNone || last.DegradeReason == "" {
			t.Fatalf("event %d: want live degraded ActionNone answer, got %+v", i, last)
		}
	}
	if last.StaleEvents != 10 {
		t.Fatalf("staleness with full backlog = %d, want 10", last.StaleEvents)
	}
	if st := coord.Stats(); st.OrphanNodes != 1 || st.Failovers != 1 {
		t.Fatalf("orphaned fleet stats: %+v", st)
	}
	// Unknown nodes degrade too (no live worker to answer from empty state).
	if d := coord.Recommend(404, t0.Add(time.Hour), 50); !d.Degraded || d.DegradeReason != DegradeNoWorkers {
		t.Fatalf("unknown-node degraded answer: %+v", d)
	}

	// Rejoin: the bounded journal (capacity 4) rebuilds what it kept; the
	// 6 trimmed events are permanently lost and stay visible as the
	// staleness floor of otherwise healthy decisions.
	tr.Rejoin(0)
	coord.Reconcile()
	d := coord.Recommend(7, t0.Add(time.Hour), 50)
	if d.Degraded {
		t.Fatalf("post-rejoin decision still degraded: %+v", d)
	}
	if d.StaleEvents != 6 {
		t.Fatalf("post-rebuild staleness = %d, want 6 (trimmed events)", d.StaleEvents)
	}
	st := coord.Stats()
	if st.Rejoins != 1 || st.Journal.Trimmed != 6 {
		t.Fatalf("post-rejoin stats: %+v", st)
	}
}

// TestFleetFailoverMovesOnlyDeadWorkersNodes pins the rendezvous-hashing
// minimal-disruption property: a death moves exactly the dead worker's
// nodes, a rejoin moves exactly those nodes back.
func TestFleetFailoverMovesOnlyDeadWorkersNodes(t *testing.T) {
	coord, tr, err := NewInProcess(Config{
		Workers: 4, Seed: 2, Initial: uerl.NeverPolicy(),
		FailureThreshold: 2, RetryBackoff: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1_700_000_000, 0).UTC()
	nodes := 32
	for i := 0; i < nodes; i++ {
		coord.ObserveEvent(ev(i, t0.Add(time.Duration(i)*time.Second), 1))
	}
	before := map[int]int{}
	for n := 0; n < nodes; n++ {
		before[n] = coord.hrwOwner(n)
	}
	victim := 2
	tr.Kill(victim)
	// Drive enough spaced traffic for the failure threshold to trip.
	for i := 0; i < nodes*3; i++ {
		coord.ObserveEvent(ev(i%nodes, t0.Add(time.Hour+time.Duration(i)*time.Minute), 1))
	}
	coord.Reconcile()
	if st := coord.Stats(); st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}
	moved := 0
	for n := 0; n < nodes; n++ {
		after := coord.nodes[n].owner
		if before[n] == victim {
			if after == victim {
				t.Fatalf("node %d still routed to dead worker", n)
			}
			moved++
		} else if after != before[n] {
			t.Fatalf("node %d moved (%d→%d) though its owner %d stayed live", n, before[n], after, before[n])
		}
	}
	if moved == 0 {
		t.Fatal("victim owned no nodes; test stream too small")
	}
	// Rejoin: exactly the moved nodes return.
	tr.Rejoin(victim)
	for i := 0; i < nodes; i++ {
		coord.ObserveEvent(ev(i, t0.Add(24*time.Hour+time.Duration(i)*time.Minute), 1))
	}
	coord.Reconcile()
	for n := 0; n < nodes; n++ {
		if got := coord.nodes[n].owner; got != before[n] {
			t.Fatalf("node %d not restored after rejoin: owner %d, want %d", n, got, before[n])
		}
	}
	if st := coord.Stats(); st.Rejoins != 1 {
		t.Fatalf("rejoins = %d, want 1", st.Rejoins)
	}
}

// TestFleetDeployQuorum exercises two-phase model distribution: a clean
// rollout commits everywhere; a rollout a worker majority rejects is
// aborted with the incumbent retained.
func TestFleetDeployQuorum(t *testing.T) {
	coord, _, err := NewInProcess(Config{Workers: 3, Seed: 5, Initial: uerl.NeverPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	next := uerl.AlwaysPolicy()
	prev, err := coord.DeployPolicy(next)
	if err != nil {
		t.Fatalf("clean deploy failed: %v", err)
	}
	if prev.Version() != uerl.NeverPolicy().Version() || coord.Policy().Version() != next.Version() {
		t.Fatalf("deploy versions: prev=%s committed=%s", prev.Version(), coord.Policy().Version())
	}
	for _, w := range coord.Stats().Workers {
		if w.Stats == nil || w.Stats.ServingVersion != next.Version() {
			t.Fatalf("worker %d not serving the committed version: %+v", w.ID, w.Stats)
		}
	}

	// Majority rejection: 2 of 3 workers gate the artifact out.
	reject, rejErr := 0, fmt.Errorf("artifact pinned out")
	factory := func(id int) *Worker {
		opts := []WorkerOption{}
		if id < 2 {
			opts = append(opts, WithStageGate(func(string) error { reject++; return rejErr }))
		}
		return NewWorker(id, uerl.NeverPolicy(), opts...)
	}
	coord2, _, err := NewInProcess(Config{Workers: 3, Seed: 5, Initial: uerl.NeverPolicy(), NewWorker: factory})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord2.DeployPolicy(next); err == nil {
		t.Fatal("quorum-rejected deploy reported success")
	}
	if reject != 2 {
		t.Fatalf("stage gate fired %d times, want 2", reject)
	}
	if got := coord2.Policy().Version(); got != uerl.NeverPolicy().Version() {
		t.Fatalf("incumbent lost after rejected deploy: %s", got)
	}
	for _, w := range coord2.Stats().Workers {
		if w.Stats == nil || w.Stats.ServingVersion != uerl.NeverPolicy().Version() {
			t.Fatalf("worker %d drifted after rejected deploy: %+v", w.ID, w.Stats)
		}
		if w.Stats.StagedVersion != "" {
			t.Fatalf("worker %d kept a staged artifact after abort: %+v", w.ID, w.Stats)
		}
	}
}

// TestFleetDeployReachesRejoinedWorker pins the model-stale path: a
// worker that was down through a deploy serves the committed version
// after it rejoins.
func TestFleetDeployReachesRejoinedWorker(t *testing.T) {
	coord, tr, err := NewInProcess(Config{
		Workers: 2, Seed: 8, Initial: uerl.NeverPolicy(),
		FailureThreshold: 2, RetryBackoff: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1_700_000_000, 0).UTC()
	tr.Kill(1)
	for i := 0; i < 8; i++ {
		coord.ObserveEvent(ev(i, t0.Add(time.Duration(i)*2*time.Minute), 1))
	}
	next := uerl.AlwaysPolicy()
	if _, err := coord.DeployPolicy(next); err != nil {
		t.Fatalf("deploy with a down worker failed: %v", err)
	}
	tr.Rejoin(1)
	for i := 0; i < 8; i++ {
		coord.ObserveEvent(ev(i, t0.Add(time.Hour+time.Duration(i)*2*time.Minute), 1))
	}
	coord.Reconcile()
	for _, w := range coord.Stats().Workers {
		if w.State != WorkerLive {
			t.Fatalf("worker %d not live: %+v", w.ID, w)
		}
		if w.Stats == nil || w.Stats.ServingVersion != next.Version() {
			t.Fatalf("worker %d not converged to the deployed model: %+v", w.ID, w.Stats)
		}
	}
}

// TestFleetWorkerGuardVeto checks budget enforcement lives with the
// workers: an Always policy behind a worker guard gets vetoed once the
// routed decision stream exhausts the node budget, and the veto surfaces
// through the coordinator unchanged.
func TestFleetWorkerGuardVeto(t *testing.T) {
	factory := func(id int) *Worker {
		return NewWorker(id, uerl.AlwaysPolicy(), WithWorkerGuard(
			uerl.WithNodeCheckpointBudget(0.1, 24*time.Hour), // ~3 mitigations at 2 node-minutes each
		))
	}
	coord, _, err := NewInProcess(Config{Workers: 2, Seed: 6, Initial: uerl.AlwaysPolicy(), NewWorker: factory})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1_700_000_000, 0).UTC()
	sawVeto := false
	for i := 0; i < 12; i++ {
		at := t0.Add(time.Duration(i) * time.Minute)
		coord.ObserveEvent(ev(5, at, 1))
		d := coord.Recommend(5, at, 100)
		coord.ObserveDecision(d)
		if d.Vetoed {
			if d.Action != uerl.ActionNone || d.VetoReason == "" {
				t.Fatalf("malformed veto: %+v", d)
			}
			sawVeto = true
		}
	}
	if !sawVeto {
		t.Fatal("worker guard never vetoed an Always policy against a tiny budget")
	}
	st := coord.Stats()
	guarded := false
	for _, w := range st.Workers {
		if w.Stats != nil && w.Stats.Guard != nil && w.Stats.Guard.SuppressedMitigations > 0 {
			guarded = true
		}
	}
	if !guarded {
		t.Fatalf("no worker guard recorded charges: %+v", st.Workers)
	}
}
