package fleet

import (
	"errors"
	"time"

	uerl "repro"
)

// ReqKind selects the worker operation a Request carries.
type ReqKind int

const (
	// ReqPing checks liveness; it carries no payload.
	ReqPing ReqKind = iota
	// ReqObserve ingests Request.Event into the worker's controller.
	ReqObserve
	// ReqReplay re-applies Request.Events (a journal window, oldest
	// first) to Request.Node. With Forget set the worker drops the
	// node's state first — a full rebuild; without it the events extend
	// the node's existing state — a catch-up of deliveries the worker
	// missed.
	ReqReplay
	// ReqForget drops Request.Node's state (the node moved to another
	// worker).
	ReqForget
	// ReqRecommend answers a mitigation query for Request.Node at
	// Request.At with potential cost Request.Cost.
	ReqRecommend
	// ReqFeatures reads Request.Node's raw feature vector.
	ReqFeatures
	// ReqStage validates Request.Artifact (a SaveModel document) and
	// holds the decoded policy for a later ReqCommit. A validation
	// failure is reported in Response.Err — an application-level
	// rejection, not a transport failure.
	ReqStage
	// ReqCommit swaps the staged policy matching Request.Version into
	// the worker's controller.
	ReqCommit
	// ReqAbort discards any staged policy.
	ReqAbort
	// ReqStats reports the worker's serving state.
	ReqStats
	// ReqObserveDecision feeds Request.Decision to the worker's guard
	// for budget accounting (no-op on unguarded workers).
	ReqObserveDecision
	// ReqObserveUE feeds a realized UE (Request.Node, Request.At,
	// realized cost Request.Cost) to the worker's guard.
	ReqObserveUE
)

// Request is one coordinator→worker message. Exactly the fields the Kind
// documents are meaningful; the rest stay zero.
type Request struct {
	Kind     ReqKind
	Event    uerl.Event
	Events   []uerl.Event
	Node     int
	At       time.Time
	Cost     float64
	Decision uerl.Decision
	Artifact []byte
	Version  string
	Forget   bool
}

// Response is the worker's answer. Err carries application-level
// rejections (e.g. a staged artifact failing validation) from a healthy
// worker; transport-level failures are the error return of
// Transport.Call and count against the worker's health instead.
type Response struct {
	Decision uerl.Decision
	Features [uerl.FeatureDim]float64
	Stats    WorkerStats
	Version  string
	Err      string
}

// Transport delivers requests to workers. Call is synchronous: it returns
// after the worker processed the request (resp filled in), or with an
// error when the worker cannot be reached. Implementations must be safe
// for concurrent use and must fail fast — a dead or hung worker surfaces
// as an immediate error, never an indefinite block, so the coordinator's
// graceful-degradation contract (Recommend never blocks) holds end to
// end.
//
// Determinism contract: given the same sequence of calls and the same
// fault schedule, Call must return the same results and errors — the
// in-process implementation models a hung worker as a deterministic
// timeout error rather than waiting out wall-clock time. Network
// implementations satisfy the serving contract but naturally cannot
// replay byte-identically; the golden tests pin the in-process transport.
type Transport interface {
	Call(worker int, req *Request, resp *Response) error
}

// ErrWorkerDown reports a worker that is not running (killed, crashed, or
// never started).
var ErrWorkerDown = errors.New("fleet: worker down")

// ErrWorkerTimeout reports a worker that did not answer in time (hung).
// The in-process transport returns it immediately for a worker with a
// hang fault injected — the deterministic stand-in for a wall-clock
// timeout.
var ErrWorkerTimeout = errors.New("fleet: worker timed out")
