package fleet

import (
	"sort"
	"time"

	uerl "repro"
	"repro/internal/lifecycle"
)

// EventJournal keeps a bounded per-node window of recent telemetry — the
// coordinator's replay source for rebuilding tracker state on a new owner
// after a failover, and for catching a recovered worker up on deliveries
// it missed. Every event is journaled before delivery is attempted, so an
// event the coordinator accepted is never lost to a worker fault while it
// is still inside the window; events that age out of the window before a
// rebuild needs them are counted and surface as Decision.StaleEvents.
//
// An optional dedup window absorbs duplicated delivery from flapping
// collectors: an event identical to a journaled one (same node, type,
// location and count) within the window is dropped before it can
// double-count into feature state. Zero disables dedup — per-node CE
// records are cumulative and legitimately repeat outside flapping
// scenarios, so dedup is an opt-in for deployments whose collectors
// actually redeliver.
type EventJournal struct {
	capacity int
	window   time.Duration
	nodes    map[int]*lifecycle.Ring[uerl.Event]
	deduped  uint64
}

// NewEventJournal creates a journal retaining up to capacity events per
// node, deduplicating redeliveries within dedupWindow (0 = off).
func NewEventJournal(capacity int, dedupWindow time.Duration) *EventJournal {
	if capacity <= 0 {
		panic("fleet: journal capacity must be positive")
	}
	return &EventJournal{
		capacity: capacity,
		window:   dedupWindow,
		nodes:    map[int]*lifecycle.Ring[uerl.Event]{},
	}
}

// sameDelivery reports whether b looks like a redelivery of a: identical
// in everything but the (collector-stamped, possibly re-stamped) time.
func sameDelivery(a, b uerl.Event) bool {
	return a.Node == b.Node && a.Type == b.Type && a.DIMM == b.DIMM &&
		a.Count == b.Count && a.Rank == b.Rank && a.Bank == b.Bank &&
		a.Row == b.Row && a.Col == b.Col
}

// Append journals e. It returns dup=true (and journals nothing) when e is
// a redelivery of an event already in the dedup window.
func (j *EventJournal) Append(e uerl.Event) (dup bool) {
	r, ok := j.nodes[e.Node]
	if !ok {
		r = lifecycle.NewRing[uerl.Event](j.capacity)
		j.nodes[e.Node] = r
	}
	if j.window > 0 {
		floor := e.Time.Add(-j.window)
		for i := r.Len() - 1; i >= 0; i-- {
			prev := r.At(i)
			if prev.Time.Before(floor) {
				break
			}
			if sameDelivery(prev, e) {
				j.deduped++
				return true
			}
		}
	}
	r.Push(e)
	return false
}

// Pushed reports how many events were ever journaled for node (dedup
// drops excluded). The next event journaled for the node gets sequence
// number Pushed.
func (j *EventJournal) Pushed(node int) uint64 {
	if r, ok := j.nodes[node]; ok {
		return r.Pushed()
	}
	return 0
}

// Trimmed reports how many of node's journaled events have aged out of
// the bounded window and can no longer be replayed.
func (j *EventJournal) Trimmed(node int) uint64 {
	if r, ok := j.nodes[node]; ok {
		return r.Dropped()
	}
	return 0
}

// ReplayFrom returns node's retained events with sequence numbers >= seq
// in order, and whether the window still covers that range (ok=false
// means events in [seq, oldest-retained) were trimmed, so a catch-up
// from seq is impossible and the caller must do a full rebuild from
// Window instead).
func (j *EventJournal) ReplayFrom(node int, seq uint64) ([]uerl.Event, bool) {
	r, ok := j.nodes[node]
	if !ok {
		return nil, seq == 0
	}
	oldest := r.Dropped()
	if seq < oldest {
		return nil, false
	}
	out := make([]uerl.Event, 0, r.Len()-int(seq-oldest))
	for i := int(seq - oldest); i < r.Len(); i++ {
		out = append(out, r.At(i))
	}
	return out, true
}

// Window returns node's full retained event window, oldest first.
func (j *EventJournal) Window(node int) []uerl.Event {
	r, ok := j.nodes[node]
	if !ok {
		return nil
	}
	out := make([]uerl.Event, 0, r.Len())
	r.Do(func(e uerl.Event) { out = append(out, e) })
	return out
}

// Nodes returns the journaled node ids in ascending order — the
// deterministic iteration order for failover reassignment.
func (j *EventJournal) Nodes() []int {
	out := make([]int, 0, len(j.nodes))
	for n := range j.nodes {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// JournalStats summarizes journal activity.
type JournalStats struct {
	// Nodes is the number of nodes with a journal window.
	Nodes int `json:"nodes"`
	// Appended is the total number of events journaled.
	Appended uint64 `json:"appended"`
	// Deduped counts redeliveries dropped by the dedup window.
	Deduped uint64 `json:"deduped"`
	// Trimmed counts events aged out of the bounded windows.
	Trimmed uint64 `json:"trimmed"`
}

// Stats reports journal activity totals.
func (j *EventJournal) Stats() JournalStats {
	st := JournalStats{Nodes: len(j.nodes), Deduped: j.deduped}
	for _, r := range j.nodes {
		st.Appended += r.Pushed()
		st.Trimmed += r.Dropped()
	}
	return st
}
