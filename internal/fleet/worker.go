package fleet

import (
	"bytes"

	uerl "repro"
)

// WorkerStats is one worker's serving state as reported over the
// transport.
type WorkerStats struct {
	// Nodes is the number of nodes with tracked feature state.
	Nodes int `json:"nodes"`
	// ServingVersion is the model version the worker currently serves.
	ServingVersion string `json:"serving_version"`
	// StagedVersion is a staged-but-uncommitted artifact, if any.
	StagedVersion string `json:"staged_version,omitempty"`
	// Guard summarizes the worker guard's budget enforcement; nil on
	// unguarded workers.
	Guard *uerl.GuardStats `json:"guard,omitempty"`
}

// WorkerOption configures a Worker.
type WorkerOption func(*workerConfig)

type workerConfig struct {
	controllerOpts []uerl.ControllerOption
	guardOpts      []uerl.GuardOption
	guarded        bool
	stageGate      func(version string) error
}

// WithWorkerGuard attaches a per-worker Guard (budget enforcement local
// to the worker's slice of the fleet) built with the given options.
// Promotion gates are fleet-level concerns and stay with the coordinator
// and learner; worker guards only meter mitigations.
func WithWorkerGuard(opts ...uerl.GuardOption) WorkerOption {
	return func(c *workerConfig) {
		c.guarded = true
		c.guardOpts = opts
	}
}

// WithWorkerController passes options through to the worker's Controller.
func WithWorkerController(opts ...uerl.ControllerOption) WorkerOption {
	return func(c *workerConfig) { c.controllerOpts = opts }
}

// WithStageGate installs a hook consulted before an artifact is staged;
// a non-nil error rejects the artifact (reported as Response.Err). Tests
// use it to exercise the quorum-rollback path; a production worker could
// pin policy kinds or versions with it.
func WithStageGate(gate func(version string) error) WorkerOption {
	return func(c *workerConfig) { c.stageGate = gate }
}

// Worker wraps one Controller (+ optional Guard) behind the transport
// boundary: the unit a coordinator hashes nodes onto. A worker has no
// knowledge of the fleet — it applies whatever the coordinator sends, so
// the same implementation backs live serving, journal replay after a
// failover, and staged model swaps. All methods are invoked by the
// transport's serving goroutine, one request at a time.
type Worker struct {
	id        int
	ctl       *uerl.Controller
	guard     *uerl.Guard
	staged    uerl.Policy
	stageGate func(version string) error
}

// NewWorker builds a worker serving initial.
func NewWorker(id int, initial uerl.Policy, opts ...WorkerOption) *Worker {
	var cfg workerConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	ctl := uerl.NewController(initial, cfg.controllerOpts...)
	w := &Worker{id: id, ctl: ctl, stageGate: cfg.stageGate}
	if cfg.guarded {
		w.guard = uerl.NewGuard(ctl, cfg.guardOpts...)
	}
	return w
}

// ID reports the worker's slot.
func (w *Worker) ID() int { return w.id }

// handle processes one request. Transport-level failures never originate
// here — a reachable worker always answers, reporting application-level
// rejections via resp.Err.
func (w *Worker) handle(req *Request, resp *Response) {
	switch req.Kind {
	case ReqPing:
	case ReqObserve:
		w.ctl.ObserveEvent(req.Event)
	case ReqReplay:
		if req.Forget {
			w.ctl.Forget(req.Node)
		}
		for _, e := range req.Events {
			w.ctl.ObserveEvent(e)
		}
	case ReqForget:
		w.ctl.Forget(req.Node)
	case ReqRecommend:
		resp.Decision = w.ctl.Recommend(req.Node, req.At, req.Cost)
	case ReqFeatures:
		resp.Features = w.ctl.Features(req.Node, req.At, req.Cost)
	case ReqStage:
		p, err := uerl.LoadModel(bytes.NewReader(req.Artifact))
		if err != nil {
			resp.Err = "stage: " + err.Error()
			return
		}
		if w.stageGate != nil {
			if err := w.stageGate(p.Version()); err != nil {
				resp.Err = "stage: " + err.Error()
				return
			}
		}
		w.staged = p
		resp.Version = p.Version()
	case ReqCommit:
		if w.staged == nil || w.staged.Version() != req.Version {
			resp.Err = "commit: no staged artifact for version " + req.Version
			return
		}
		w.ctl.SwapPolicy(w.staged)
		w.staged = nil
	case ReqAbort:
		w.staged = nil
	case ReqStats:
		resp.Stats = WorkerStats{
			Nodes:          w.ctl.NodeCount(),
			ServingVersion: w.ctl.Policy().Version(),
		}
		if w.staged != nil {
			resp.Stats.StagedVersion = w.staged.Version()
		}
		if w.guard != nil {
			gs := w.guard.Stats()
			resp.Stats.Guard = &gs
		}
	case ReqObserveDecision:
		if w.guard != nil {
			w.guard.ObserveDecision(req.Decision)
		}
	case ReqObserveUE:
		if w.guard != nil {
			w.guard.ObserveUE(req.Node, req.At, req.Cost)
		}
	default:
		resp.Err = "unknown request kind"
	}
}
