package fleet

import (
	"testing"
	"time"

	uerl "repro"
)

func ev(node int, at time.Time, count int) uerl.Event {
	return uerl.Event{
		Time: at, Node: node, DIMM: 0, Type: uerl.CorrectedError,
		Count: count, Rank: 1, Bank: 2, Row: 3, Col: 4,
	}
}

func TestJournalDedupWindow(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0).UTC()
	j := NewEventJournal(16, 2*time.Second)
	if dup := j.Append(ev(1, t0, 5)); dup {
		t.Fatal("first event reported as duplicate")
	}
	// Identical payload redelivered 1s later: inside the window → dropped.
	if dup := j.Append(ev(1, t0.Add(time.Second), 5)); !dup {
		t.Fatal("redelivery inside dedup window not deduplicated")
	}
	// Same payload 3s later: outside the window → a legitimate repeat.
	if dup := j.Append(ev(1, t0.Add(3*time.Second), 5)); dup {
		t.Fatal("repeat outside dedup window wrongly deduplicated")
	}
	// Different payload inside the window: kept.
	if dup := j.Append(ev(1, t0.Add(3*time.Second), 7)); dup {
		t.Fatal("distinct event wrongly deduplicated")
	}
	st := j.Stats()
	if st.Appended != 3 || st.Deduped != 1 {
		t.Fatalf("stats: appended=%d deduped=%d, want 3 1", st.Appended, st.Deduped)
	}
	// Dedup off: the same redelivery is journaled.
	j2 := NewEventJournal(16, 0)
	j2.Append(ev(1, t0, 5))
	if dup := j2.Append(ev(1, t0.Add(time.Second), 5)); dup {
		t.Fatal("dedup fired with a zero window")
	}
}

func TestJournalReplayFromAndTrim(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0).UTC()
	j := NewEventJournal(4, 0)
	for i := 0; i < 6; i++ {
		j.Append(ev(9, t0.Add(time.Duration(i)*time.Minute), i+1))
	}
	if got := j.Pushed(9); got != 6 {
		t.Fatalf("Pushed = %d, want 6", got)
	}
	if got := j.Trimmed(9); got != 2 {
		t.Fatalf("Trimmed = %d, want 2", got)
	}
	// Catch-up from seq 3 is still covered (oldest retained is seq 2).
	evs, ok := j.ReplayFrom(9, 3)
	if !ok || len(evs) != 3 || evs[0].Count != 4 {
		t.Fatalf("ReplayFrom(3) = %d events ok=%v first count=%d, want 3 true 4", len(evs), ok, evs[0].Count)
	}
	// Catch-up from seq 1 fell off the window.
	if _, ok := j.ReplayFrom(9, 1); ok {
		t.Fatal("ReplayFrom(1) claimed coverage past the trimmed range")
	}
	w := j.Window(9)
	if len(w) != 4 || w[0].Count != 3 || w[3].Count != 6 {
		t.Fatalf("Window = %d events [%d..%d], want 4 [3..6]", len(w), w[0].Count, w[len(w)-1].Count)
	}
	// Unknown nodes: empty window, catch-up from zero trivially covered.
	if w := j.Window(404); w != nil {
		t.Fatalf("Window(unknown) = %v, want nil", w)
	}
	if _, ok := j.ReplayFrom(404, 0); !ok {
		t.Fatal("ReplayFrom(unknown, 0) not covered")
	}
}
