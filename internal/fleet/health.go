package fleet

import (
	"time"

	"repro/internal/mathx"
)

// WorkerState is a worker's health as the coordinator sees it.
type WorkerState string

const (
	// WorkerLive is a healthy worker: deliveries go straight through.
	WorkerLive WorkerState = "live"
	// WorkerSuspect is a worker with recent consecutive failures, being
	// retried on a backoff schedule; its nodes' events journal and wait.
	WorkerSuspect WorkerState = "suspect"
	// WorkerDown is a declared-dead worker: its nodes failed over, and
	// the coordinator probes it on a capped backoff for a rejoin.
	WorkerDown WorkerState = "down"
)

// workerHealth is the coordinator's per-worker health ledger. All times
// are telemetry time — the coordinator clock advances with the event
// stream, never with the wall clock — and the retry jitter comes from a
// per-worker RNG forked from the coordinator seed, so a fault scenario
// replays byte-identically.
type workerHealth struct {
	id    int
	state WorkerState
	// failures counts consecutive failed delivery/probe attempts;
	// reaching the failure threshold declares the worker dead.
	failures int
	// nextRetry is the earliest telemetry time of the next attempt
	// while suspect or down.
	nextRetry time.Time
	// modelStale marks a worker that missed a committed deploy (down,
	// or its commit failed); re-staged when it comes back.
	modelStale bool
	rng        *mathx.RNG
}

// backoff computes the delay before the next retry after the attempt-th
// consecutive failure (1-based): exponential doubling from base, a
// ±50% deterministic jitter to de-synchronize probe schedules, capped at
// max.
func (h *workerHealth) backoff(base, max time.Duration, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	jitter := 0.5 + h.rng.Float64()
	j := time.Duration(float64(d) * jitter)
	if j > max {
		j = max
	}
	return j
}
