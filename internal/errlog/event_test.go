package errlog

import (
	"testing"
	"time"
)

var t0 = time.Date(2014, 10, 1, 0, 0, 0, 0, time.UTC)

func ce(node int, at time.Duration, count int) Event {
	return Event{Time: t0.Add(at), Node: node, DIMM: node*8 + 1, Type: CE,
		Count: count, Rank: 0, Bank: 1, Row: 2, Col: 3}
}

func ue(node int, at time.Duration) Event {
	return Event{Time: t0.Add(at), Node: node, DIMM: node * 8, Type: UE, Count: 1}
}

func boot(node int, at time.Duration) Event {
	return Event{Time: t0.Add(at), Node: node, DIMM: -1, Type: Boot, Count: 1,
		Rank: -1, Bank: -1, Row: -1, Col: -1}
}

func TestEventTypeString(t *testing.T) {
	cases := map[EventType]string{
		CE: "CE", UE: "UE", UEWarning: "UEW", Boot: "BOOT", Retirement: "RETIRE",
	}
	for et, want := range cases {
		if et.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(et), et.String(), want)
		}
	}
	if ManufacturerA.String() != "A" || ManufacturerC.String() != "C" {
		t.Error("manufacturer strings wrong")
	}
}

func TestLogSortDeterministic(t *testing.T) {
	l := &Log{Events: []Event{
		ue(2, time.Hour), ce(1, time.Hour, 1), boot(1, 0), ce(3, 2*time.Hour, 5),
	}}
	l.Sort()
	if l.Events[0].Type != Boot {
		t.Fatal("boot should sort first")
	}
	// Same timestamp: node 1 before node 2.
	if l.Events[1].Node != 1 || l.Events[2].Node != 2 {
		t.Fatalf("tie-break by node failed: %v", l.Events)
	}
}

func TestSpanAndCounts(t *testing.T) {
	l := &Log{Events: []Event{
		ce(1, 0, 10), ce(1, time.Hour, 20), ue(1, 2*time.Hour),
	}}
	first, last := l.Span()
	if !first.Equal(t0) || !last.Equal(t0.Add(2*time.Hour)) {
		t.Fatalf("span = %v..%v", first, last)
	}
	if l.CountType(CE) != 2 || l.CountType(UE) != 1 {
		t.Fatal("CountType wrong")
	}
	if l.TotalCEs() != 30 {
		t.Fatalf("TotalCEs = %d, want 30", l.TotalCEs())
	}
	var empty Log
	f, s := empty.Span()
	if !f.IsZero() || !s.IsZero() {
		t.Fatal("empty span should be zero")
	}
}

func TestNodesAndByNode(t *testing.T) {
	l := &Log{Events: []Event{ce(3, 0, 1), ce(1, 0, 1), ce(3, time.Hour, 1)}}
	nodes := l.Nodes()
	if len(nodes) != 2 || nodes[0] != 1 || nodes[1] != 3 {
		t.Fatalf("Nodes = %v", nodes)
	}
	by := l.ByNode()
	if len(by[3]) != 2 || len(by[1]) != 1 {
		t.Fatalf("ByNode sizes wrong: %v", by)
	}
}

func TestPartitionManufacturer(t *testing.T) {
	a := ce(1, 0, 1)
	a.Manufacturer = ManufacturerA
	b := ce(2, 0, 1)
	b.Manufacturer = ManufacturerB
	l := &Log{Events: []Event{a, b}}
	pa := l.PartitionManufacturer(ManufacturerA)
	if len(pa.Events) != 1 || pa.Events[0].Node != 1 {
		t.Fatalf("partition A = %v", pa.Events)
	}
}

func TestSlice(t *testing.T) {
	l := &Log{Events: []Event{ce(1, 0, 1), ce(1, time.Hour, 1), ce(1, 2*time.Hour, 1)}}
	s := l.Slice(t0.Add(30*time.Minute), t0.Add(90*time.Minute))
	if len(s.Events) != 1 || !s.Events[0].Time.Equal(t0.Add(time.Hour)) {
		t.Fatalf("slice = %v", s.Events)
	}
}
