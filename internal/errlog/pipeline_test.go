package errlog

import (
	"testing"
	"time"
)

func TestMergeSameMinute(t *testing.T) {
	l := &Log{Events: []Event{
		ce(1, 0, 1),
		ce(1, 30*time.Second, 2), // same minute, same node -> same tick
		ce(2, 40*time.Second, 3), // different node -> own tick
		ce(1, 61*time.Second, 4), // next minute -> new tick
		boot(1, 90*time.Second),  // same minute as previous -> same tick
	}}
	l.Sort()
	ticks := Merge(l, time.Minute)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3", len(ticks))
	}
	if ticks[0].Node != 1 || len(ticks[0].Events) != 2 || ticks[0].CECount() != 3 {
		t.Fatalf("tick 0 = %+v", ticks[0])
	}
	if ticks[1].Node != 2 {
		t.Fatalf("tick 1 node = %d", ticks[1].Node)
	}
	if ticks[2].Node != 1 || len(ticks[2].Events) != 2 {
		t.Fatalf("tick 2 = %+v", ticks[2])
	}
}

func TestMergeDefaultWindow(t *testing.T) {
	l := &Log{Events: []Event{ce(1, 0, 1), ce(1, 59*time.Second, 1)}}
	l.Sort()
	if got := len(Merge(l, 0)); got != 1 {
		t.Fatalf("default window produced %d ticks, want 1", got)
	}
}

func TestTickHasUE(t *testing.T) {
	tick := Tick{Events: []Event{ce(1, 0, 1), ue(1, 0)}}
	if !tick.HasUE() {
		t.Fatal("HasUE false")
	}
	tick2 := Tick{Events: []Event{ce(1, 0, 1)}}
	if tick2.HasUE() {
		t.Fatal("HasUE true without UE")
	}
}

func TestReduceUEBursts(t *testing.T) {
	l := &Log{Events: []Event{
		ue(1, 0),
		ue(1, 24*time.Hour),    // inside 1-week burst -> dropped
		ue(1, 6*24*time.Hour),  // still inside -> dropped
		ue(1, 8*24*time.Hour),  // outside -> kept, starts new burst
		ue(2, 24*time.Hour),    // different node -> kept
		ce(1, 24*time.Hour, 5), // non-UE untouched
	}}
	l.Sort()
	out := ReduceUEBursts(l, UEBurstWindow)
	if got := out.CountType(UE); got != 3 {
		t.Fatalf("kept %d UEs, want 3", got)
	}
	if got := out.CountType(CE); got != 1 {
		t.Fatal("CE records must be preserved")
	}
}

func TestReduceUEBurstsChainDoesNotExtend(t *testing.T) {
	// The window is measured from the last *kept* UE: a dropped UE must not
	// extend the burst. UE at day 8 is outside the day-0 burst even though
	// a dropped UE happened at day 3.
	l := &Log{Events: []Event{ue(1, 0), ue(1, 3*24*time.Hour), ue(1, 8*24*time.Hour)}}
	l.Sort()
	out := ReduceUEBursts(l, UEBurstWindow)
	if got := out.CountType(UE); got != 2 {
		t.Fatalf("kept %d UEs, want 2 (burst must not chain)", got)
	}
}

func TestFilterRetirementBias(t *testing.T) {
	retire := Event{Time: t0.Add(10 * 24 * time.Hour), Node: 1, DIMM: 8,
		Type: Retirement, Count: 1}
	l := &Log{Events: []Event{
		ce(1, 2*24*time.Hour, 1),  // 8 days before retirement -> dropped
		ce(1, 9*24*time.Hour, 1),  // 1 day before -> dropped
		retire,                    // retirement record itself -> dropped
		ce(1, 11*24*time.Hour, 1), // after retirement -> kept
		ce(2, 9*24*time.Hour, 1),  // other node -> kept
	}}
	l.Sort()
	out := FilterRetirementBias(l, RetirementBiasWindow)
	if len(out.Events) != 3 {
		t.Fatalf("kept %d events, want 3: %v", len(out.Events), out.Events)
	}
	if out.CountType(Retirement) != 0 {
		t.Fatal("retirement record must be removed")
	}
	// The 8-days-before event is outside the 7-day window -> kept.
	found := false
	for _, e := range out.Events {
		if e.Node == 1 && e.Time.Equal(t0.Add(2*24*time.Hour)) {
			found = true
		}
	}
	if !found {
		t.Fatal("event outside bias window was dropped")
	}
}

func TestPreprocessOrder(t *testing.T) {
	// Preprocess must sort, filter retirement bias, then reduce bursts.
	l := &Log{Events: []Event{
		ue(1, 2*time.Hour),
		ue(1, time.Hour), // out of order on purpose
	}}
	out := Preprocess(l)
	if got := out.CountType(UE); got != 1 {
		t.Fatalf("kept %d UEs, want 1", got)
	}
	if !out.Events[0].Time.Equal(t0.Add(time.Hour)) {
		t.Fatal("kept the wrong UE; log was not sorted first")
	}
}

func TestSplitParts(t *testing.T) {
	l := &Log{Events: []Event{ce(1, 0, 1), ce(1, 6*time.Hour, 1)}}
	l.Sort()
	bounds := SplitParts(l, 6)
	if len(bounds) != 7 {
		t.Fatalf("bounds len %d", len(bounds))
	}
	if !bounds[0].Equal(t0) {
		t.Fatal("first bound should be span start")
	}
	if !bounds[6].After(t0.Add(6 * time.Hour)) {
		t.Fatal("last bound must be past the final event")
	}
	// Slicing by consecutive bounds must cover every event exactly once.
	total := 0
	for i := 0; i < 6; i++ {
		total += len(l.Slice(bounds[i], bounds[i+1]).Events)
	}
	if total != len(l.Events) {
		t.Fatalf("parts cover %d events, want %d", total, len(l.Events))
	}
}
