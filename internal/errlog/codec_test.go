package errlog

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	l := &Log{Events: []Event{
		{Time: t0, Node: 5, DIMM: 41, Manufacturer: ManufacturerB, Type: CE,
			Count: 17, Rank: 1, Bank: 3, Row: 4096, Col: 17, Scrub: true},
		{Time: t0.Add(time.Hour), Node: 5, DIMM: 40, Manufacturer: ManufacturerB,
			Type: UE, Count: 1, Rank: -1, Bank: -1, Row: -1, Col: -1, OverTemp: true},
		{Time: t0.Add(2 * time.Hour), Node: 6, DIMM: -1, Manufacturer: ManufacturerC,
			Type: Boot, Count: 1, Rank: -1, Bank: -1, Row: -1, Col: -1},
		{Time: t0.Add(3 * time.Hour), Node: 7, DIMM: 56, Manufacturer: ManufacturerA,
			Type: UEWarning, Count: 1, Rank: -1, Bank: -1, Row: -1, Col: -1},
		{Time: t0.Add(4 * time.Hour), Node: 8, DIMM: 64, Manufacturer: ManufacturerA,
			Type: Retirement, Count: 1, Rank: -1, Bank: -1, Row: -1, Col: -1},
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(l.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(got.Events), len(l.Events))
	}
	for i, e := range got.Events {
		want := l.Events[i]
		if !e.Time.Equal(want.Time) || e != want {
			// time.Time contains a monotonic clock only for time.Now; our
			// constructed times compare exactly.
			t.Fatalf("event %d mismatch:\n got %+v\nwant %+v", i, e, want)
		}
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"not,a,valid,header\n",
		"time,node,dimm,manufacturer,type,count,rank,bank,row,col,scrub,overtemp\nbadtime,1,1,A,CE,1,0,0,0,0,false,false\n",
		"time,node,dimm,manufacturer,type,count,rank,bank,row,col,scrub,overtemp\n2014-10-01T00:00:00Z,1,1,X,CE,1,0,0,0,0,false,false\n",
		"time,node,dimm,manufacturer,type,count,rank,bank,row,col,scrub,overtemp\n2014-10-01T00:00:00Z,1,1,A,WHAT,1,0,0,0,0,false,false\n",
		"time,node,dimm,manufacturer,type,count,rank,bank,row,col,scrub,overtemp\n2014-10-01T00:00:00Z,x,1,A,CE,1,0,0,0,0,false,false\n",
		"time,node,dimm,manufacturer,type,count,rank,bank,row,col,scrub,overtemp\n2014-10-01T00:00:00Z,1,1,A,CE,1,0,0,0,0,maybe,false\n",
	}
	for i, s := range cases {
		if _, err := ReadCSV(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadCSVEmptyLog(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, &Log{}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 0 {
		t.Fatal("expected empty log")
	}
}
