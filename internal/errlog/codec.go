package errlog

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvHeader is the stable column layout of the CSV encoding.
var csvHeader = []string{
	"time", "node", "dimm", "manufacturer", "type", "count",
	"rank", "bank", "row", "col", "scrub", "overtemp",
}

// WriteCSV encodes the log in a stable CSV format with a header row.
// Timestamps are RFC 3339 with nanoseconds.
func WriteCSV(w io.Writer, l *Log) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	rec := make([]string, len(csvHeader))
	for _, e := range l.Events {
		rec[0] = e.Time.Format(time.RFC3339Nano)
		rec[1] = strconv.Itoa(e.Node)
		rec[2] = strconv.Itoa(e.DIMM)
		rec[3] = e.Manufacturer.String()
		rec[4] = e.Type.String()
		rec[5] = strconv.Itoa(e.Count)
		rec[6] = strconv.Itoa(e.Rank)
		rec[7] = strconv.Itoa(e.Bank)
		rec[8] = strconv.Itoa(e.Row)
		rec[9] = strconv.Itoa(e.Col)
		rec[10] = strconv.FormatBool(e.Scrub)
		rec[11] = strconv.FormatBool(e.OverTemp)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a log written by WriteCSV.
func ReadCSV(r io.Reader) (*Log, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("errlog: reading header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("errlog: header has %d columns, want %d", len(header), len(csvHeader))
	}
	l := &Log{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("errlog: line %d: %w", line, err)
		}
		e, err := parseRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("errlog: line %d: %w", line, err)
		}
		l.Events = append(l.Events, e)
	}
	return l, nil
}

func parseRecord(rec []string) (Event, error) {
	var e Event
	t, err := time.Parse(time.RFC3339Nano, rec[0])
	if err != nil {
		return e, fmt.Errorf("bad time %q: %w", rec[0], err)
	}
	e.Time = t
	ints := []struct {
		dst *int
		col int
	}{
		{&e.Node, 1}, {&e.DIMM, 2}, {&e.Count, 5},
		{&e.Rank, 6}, {&e.Bank, 7}, {&e.Row, 8}, {&e.Col, 9},
	}
	for _, f := range ints {
		v, err := strconv.Atoi(rec[f.col])
		if err != nil {
			return e, fmt.Errorf("bad %s %q: %w", csvHeader[f.col], rec[f.col], err)
		}
		*f.dst = v
	}
	switch rec[3] {
	case "A":
		e.Manufacturer = ManufacturerA
	case "B":
		e.Manufacturer = ManufacturerB
	case "C":
		e.Manufacturer = ManufacturerC
	default:
		return e, fmt.Errorf("bad manufacturer %q", rec[3])
	}
	switch rec[4] {
	case "CE":
		e.Type = CE
	case "UE":
		e.Type = UE
	case "UEW":
		e.Type = UEWarning
	case "BOOT":
		e.Type = Boot
	case "RETIRE":
		e.Type = Retirement
	default:
		return e, fmt.Errorf("bad event type %q", rec[4])
	}
	if e.Scrub, err = strconv.ParseBool(rec[10]); err != nil {
		return e, fmt.Errorf("bad scrub %q: %w", rec[10], err)
	}
	if e.OverTemp, err = strconv.ParseBool(rec[11]); err != nil {
		return e, fmt.Errorf("bad overtemp %q: %w", rec[11], err)
	}
	return e, nil
}
