package errlog

import (
	"time"
)

// Tick is one agent invocation point: all of a node's events that fall in
// the same merge window (one minute in the paper, §3.2.3) collapsed into a
// single observation. The RL agent and all baseline policies are invoked
// once per tick.
type Tick struct {
	// Time is the window start.
	Time time.Time
	// Node is the node id.
	Node int
	// Events are the node's records inside the window, in log order.
	Events []Event
}

// HasUE reports whether any event in the tick is an uncorrected error.
func (t Tick) HasUE() bool {
	for _, e := range t.Events {
		if e.Type == UE {
			return true
		}
	}
	return false
}

// CECount returns the number of corrected errors represented in the tick.
func (t Tick) CECount() int {
	n := 0
	for _, e := range t.Events {
		if e.Type == CE {
			n += e.Count
		}
	}
	return n
}

// MergeWindow is the paper's minimum wallclock time between state
// transitions: events within the same minute are combined (§3.2.3).
const MergeWindow = time.Minute

// Merge collapses a sorted log into per-node ticks using the given window.
// Events on the same node whose timestamps fall in the same window (aligned
// to the epoch) form one tick. The returned ticks are globally sorted by
// time then node.
func Merge(l *Log, window time.Duration) []Tick {
	if window <= 0 {
		window = MergeWindow
	}
	var ticks []Tick
	// The log is sorted by time; maintain an open tick per node.
	open := map[int]int{} // node -> index into ticks
	for _, e := range l.Events {
		w := e.Time.Truncate(window)
		if idx, ok := open[e.Node]; ok && ticks[idx].Time.Equal(w) {
			ticks[idx].Events = append(ticks[idx].Events, e)
			continue
		}
		ticks = append(ticks, Tick{Time: w, Node: e.Node, Events: []Event{e}})
		open[e.Node] = len(ticks) - 1
	}
	return ticks
}

// UEBurstWindow is the paper's burst window: after a node's UE it was
// removed from production and tested for one week, so only the first UE per
// node within a week affects production (§2.1.3).
const UEBurstWindow = 7 * 24 * time.Hour

// ReduceUEBursts removes every UE on a node that follows another UE on the
// same node within the window (the paper's reduction from 333 to 67 UEs).
// Non-UE events are untouched. The input must be sorted.
func ReduceUEBursts(l *Log, window time.Duration) *Log {
	if window <= 0 {
		window = UEBurstWindow
	}
	lastUE := map[int]time.Time{}
	out := &Log{Events: make([]Event, 0, len(l.Events))}
	for _, e := range l.Events {
		if e.Type == UE {
			if t, ok := lastUE[e.Node]; ok && e.Time.Sub(t) < window {
				continue
			}
			lastUE[e.Node] = e.Time
		}
		out.Events = append(out.Events, e)
	}
	return out
}

// RetirementBiasWindow is how far before a DIMM retirement we drop samples:
// since we cannot know whether the retired DIMM would have produced a UE,
// the paper removes all such samples from training and evaluation (§2.1.4).
const RetirementBiasWindow = 7 * 24 * time.Hour

// FilterRetirementBias removes all events on a node within the window
// before any of its DIMMs is retired, along with the retirement record
// itself. The input must be sorted.
func FilterRetirementBias(l *Log, window time.Duration) *Log {
	if window <= 0 {
		window = RetirementBiasWindow
	}
	// Collect retirement times per node.
	retirements := map[int][]time.Time{}
	for _, e := range l.Events {
		if e.Type == Retirement {
			retirements[e.Node] = append(retirements[e.Node], e.Time)
		}
	}
	out := &Log{Events: make([]Event, 0, len(l.Events))}
	for _, e := range l.Events {
		if e.Type == Retirement {
			continue
		}
		drop := false
		for _, rt := range retirements[e.Node] {
			if !e.Time.After(rt) && rt.Sub(e.Time) <= window {
				drop = true
				break
			}
		}
		if !drop {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// Preprocess applies the paper's full pipeline in order: sort, retirement
// bias filtering, and UE burst reduction. Merge is applied separately by
// consumers that need ticks.
func Preprocess(l *Log) *Log {
	l.Sort()
	filtered := FilterRetirementBias(l, RetirementBiasWindow)
	return ReduceUEBursts(filtered, UEBurstWindow)
}

// SplitParts divides the log's time span into n equal parts and returns the
// boundary times (n+1 entries, first = span start, last = just past span
// end). Used by the §4.1 time-series nested cross-validation.
func SplitParts(l *Log, n int) []time.Time {
	first, last := l.Span()
	bounds := make([]time.Time, n+1)
	total := last.Sub(first) + time.Second
	for i := 0; i <= n; i++ {
		bounds[i] = first.Add(time.Duration(float64(total) * float64(i) / float64(n)))
	}
	return bounds
}
