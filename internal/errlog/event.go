// Package errlog defines the memory-error event records and the log
// pipeline of §2 of the paper: mcelog-flavoured corrected-error records,
// firmware-flavoured uncorrected-error and warning records, node boots and
// DIMM retirements; chronological stores; same-minute event merging
// (§3.2.3); UE burst reduction with a one-week window (§2.1.3); DIMM
// retirement bias filtering (§2.1.4); per-manufacturer partitioning (§4.5);
// and a stable CSV encoding.
package errlog

import (
	"fmt"
	"sort"
	"time"
)

// EventType classifies a log record.
type EventType int

const (
	// CE is a corrected error record extracted from the MCA registers by
	// the mcelog-based daemon. One record may represent several corrected
	// errors (Count), with detailed location information for one of them.
	CE EventType = iota
	// UE is an uncorrected error logged by the firmware. Critical
	// over-temperature shutdowns are recorded as UEs too (OverTemp flag),
	// matching §2.1.2.
	UE
	// UEWarning is a firmware warning: the correctable-ECC logging limit
	// was reached or the modules were throttled against over-temperature.
	UEWarning
	// Boot marks a node boot.
	Boot
	// Retirement marks an administrative DIMM retirement (§2.1.4).
	Retirement
)

// String implements fmt.Stringer.
func (t EventType) String() string {
	switch t {
	case CE:
		return "CE"
	case UE:
		return "UE"
	case UEWarning:
		return "UEW"
	case Boot:
		return "BOOT"
	case Retirement:
		return "RETIRE"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Manufacturer identifies an anonymized DRAM manufacturer (§2.1).
type Manufacturer int

// Anonymized manufacturers as in the paper.
const (
	ManufacturerA Manufacturer = iota
	ManufacturerB
	ManufacturerC
	NumManufacturers = 3
)

// String implements fmt.Stringer.
func (m Manufacturer) String() string {
	switch m {
	case ManufacturerA:
		return "A"
	case ManufacturerB:
		return "B"
	case ManufacturerC:
		return "C"
	default:
		return fmt.Sprintf("Manufacturer(%d)", int(m))
	}
}

// Event is one log record. The zero value is not meaningful; construct
// explicitly. Location fields are -1 when unknown (e.g. boot events).
type Event struct {
	// Time is the record timestamp.
	Time time.Time
	// Node is the compute-node id.
	Node int
	// DIMM is the system-wide DIMM id, or -1 for node-level events.
	DIMM int
	// Manufacturer of the affected DIMM (or of the node's DIMMs for
	// node-level events; MareNostrum nodes are manufacturer-homogeneous).
	Manufacturer Manufacturer
	// Type classifies the record.
	Type EventType
	// Count is the number of corrected errors this CE record represents
	// (the MCA registers report counts; detailed location covers one).
	// It is 1 for non-CE records.
	Count int
	// Rank, Bank, Row, Col locate the detailed error inside the DIMM;
	// -1 when not applicable.
	Rank, Bank, Row, Col int
	// Scrub reports whether the error was found by the patrol scrubber
	// rather than an application memory request.
	Scrub bool
	// OverTemp marks a UE record that is actually a critical
	// over-temperature shutdown.
	OverTemp bool
}

// NodeEvent reports whether the record is tied to a node's availability
// (rather than a bookkeeping record like retirement).
func (e Event) NodeEvent() bool { return e.Type != Retirement }

// Log is a chronologically sorted sequence of events.
type Log struct {
	Events []Event
}

// Sort orders events by time, breaking ties by node then type, so the log
// order is deterministic for identical inputs.
func (l *Log) Sort() {
	sort.SliceStable(l.Events, func(i, j int) bool {
		a, b := l.Events[i], l.Events[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Type < b.Type
	})
}

// Span returns the first and last event time. Empty logs return zero times.
func (l *Log) Span() (first, last time.Time) {
	if len(l.Events) == 0 {
		return
	}
	return l.Events[0].Time, l.Events[len(l.Events)-1].Time
}

// CountType returns the number of records of type t.
func (l *Log) CountType(t EventType) int {
	n := 0
	for _, e := range l.Events {
		if e.Type == t {
			n++
		}
	}
	return n
}

// TotalCEs returns the total number of corrected errors represented by the
// log (the sum of CE record counts), matching the paper's "4.5 million
// corrected errors" metric rather than the number of log records.
func (l *Log) TotalCEs() int {
	n := 0
	for _, e := range l.Events {
		if e.Type == CE {
			n += e.Count
		}
	}
	return n
}

// Nodes returns the sorted distinct node ids appearing in the log.
func (l *Log) Nodes() []int {
	seen := map[int]bool{}
	for _, e := range l.Events {
		seen[e.Node] = true
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// ByNode groups events by node id, preserving chronological order within
// each node.
func (l *Log) ByNode() map[int][]Event {
	out := map[int][]Event{}
	for _, e := range l.Events {
		out[e.Node] = append(out[e.Node], e)
	}
	return out
}

// PartitionManufacturer returns the sub-log containing only events from
// nodes of the given manufacturer, used for the MN/A, MN/B, MN/C
// evaluations of §4.5.
func (l *Log) PartitionManufacturer(m Manufacturer) *Log {
	out := &Log{}
	for _, e := range l.Events {
		if e.Manufacturer == m {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// Slice returns the sub-log with events in [from, to).
func (l *Log) Slice(from, to time.Time) *Log {
	out := &Log{}
	for _, e := range l.Events {
		if !e.Time.Before(from) && e.Time.Before(to) {
			out.Events = append(out.Events, e)
		}
	}
	return out
}
