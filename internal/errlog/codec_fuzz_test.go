package errlog

import (
	"bytes"
	"testing"
	"time"
)

// FuzzDecode fuzzes the CSV codec: arbitrary input must never panic, and
// any input that decodes successfully must be stable under an
// encode → decode → encode round trip (the first encoding canonicalizes
// timestamp and boolean spellings; after that the codec must be a fixed
// point, or archived logs would silently mutate on every rewrite).
func FuzzDecode(f *testing.F) {
	// Seed with a representative valid log...
	seedLog := &Log{Events: []Event{
		{Time: time.Date(2014, 10, 1, 0, 0, 0, 0, time.UTC), Node: 0, DIMM: -1,
			Manufacturer: ManufacturerA, Type: Boot, Count: 1, Rank: -1, Bank: -1, Row: -1, Col: -1},
		{Time: time.Date(2014, 10, 2, 3, 4, 5, 678900000, time.UTC), Node: 17, DIMM: 138,
			Manufacturer: ManufacturerC, Type: CE, Count: 42, Rank: 1, Bank: 7, Row: 54321, Col: 999, Scrub: true},
		{Time: time.Date(2014, 10, 3, 0, 0, 0, 1, time.UTC), Node: 17, DIMM: 138,
			Manufacturer: ManufacturerC, Type: UEWarning, Count: 1, Rank: -1, Bank: -1, Row: -1, Col: -1},
		{Time: time.Date(2014, 10, 4, 12, 0, 0, 0, time.UTC), Node: 17, DIMM: 138,
			Manufacturer: ManufacturerC, Type: UE, Count: 1, Rank: -1, Bank: -1, Row: -1, Col: -1, OverTemp: true},
		{Time: time.Date(2014, 10, 5, 0, 0, 0, 0, time.UTC), Node: 3, DIMM: 24,
			Manufacturer: ManufacturerB, Type: Retirement, Count: 1, Rank: -1, Bank: -1, Row: -1, Col: -1},
	}}
	var seed bytes.Buffer
	if err := WriteCSV(&seed, seedLog); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	// ...plus structural edge cases for the mutator to start from.
	f.Add([]byte("time,node,dimm,manufacturer,type,count,rank,bank,row,col,scrub,overtemp\n"))
	f.Add([]byte("time,node,dimm,manufacturer,type,count,rank,bank,row,col,scrub,overtemp\n" +
		"2020-01-01T00:00:00Z,1,2,A,CE,3,0,1,2,3,1,FALSE\n"))
	f.Add([]byte("a,b,c,d,e,f,g,h,i,j,k,l\nnot,a,valid,row,at,all,g,h,i,j,k,l\n"))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return // invalid input rejected: that is the contract
		}
		var first bytes.Buffer
		if err := WriteCSV(&first, l); err != nil {
			t.Fatalf("encoding a decoded log failed: %v", err)
		}
		l2, err := ReadCSV(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("own encoding does not decode: %v\n%s", err, first.Bytes())
		}
		if len(l2.Events) != len(l.Events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(l.Events), len(l2.Events))
		}
		var second bytes.Buffer
		if err := WriteCSV(&second, l2); err != nil {
			t.Fatalf("re-encoding failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("codec is not a fixed point:\nfirst:\n%s\nsecond:\n%s", first.Bytes(), second.Bytes())
		}
	})
}
