package guard

import (
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

func TestWindowSlidingExpiry(t *testing.T) {
	w := NewWindow(time.Hour)
	w.Add(t0, 2)
	w.Add(t0.Add(10*time.Minute), 3)
	if got := w.Total(t0.Add(10 * time.Minute)); got != 5 {
		t.Fatalf("Total = %v, want 5", got)
	}
	// Just past the span (+ one bucket of quantization slack) the first
	// entry must be gone; well past it, everything is.
	if got := w.Total(t0.Add(time.Hour + 5*time.Minute)); got != 3 {
		t.Fatalf("Total after first expiry = %v, want 3", got)
	}
	if got := w.Total(t0.Add(3 * time.Hour)); got != 0 {
		t.Fatalf("Total after full expiry = %v, want 0", got)
	}
	// A fresh add after full expiry starts a clean window.
	w.Add(t0.Add(4*time.Hour), 7)
	if got := w.Total(t0.Add(4 * time.Hour)); got != 7 {
		t.Fatalf("Total after restart = %v, want 7", got)
	}
}

func TestWindowOutOfOrderAdds(t *testing.T) {
	w := NewWindow(time.Hour)
	w.Add(t0.Add(30*time.Minute), 1)
	// An older — but still in-window — add lands in its own bucket.
	w.Add(t0.Add(20*time.Minute), 1)
	if got := w.Total(t0.Add(30 * time.Minute)); got != 2 {
		t.Fatalf("Total with out-of-order add = %v, want 2", got)
	}
	// An add older than the window is already expired and is dropped.
	w.Add(t0.Add(-2*time.Hour), 100)
	if got := w.Total(t0.Add(30 * time.Minute)); got != 2 {
		t.Fatalf("Total after expired add = %v, want 2", got)
	}
}

func TestBudgetsNodeCheckpoint(t *testing.T) {
	b := NewBudgets(Config{NodeCheckpointNodeHours: 0.1, NodeWindow: time.Hour})
	cost := 2.0 / 60 // 2 node-minutes
	at := t0
	charges := 0
	for i := 0; i < 10; i++ {
		ok, reason := b.AllowMitigation(7, at, cost)
		if !ok {
			if reason != ReasonNodeBudget {
				t.Fatalf("deny reason = %q, want %q", reason, ReasonNodeBudget)
			}
			break
		}
		b.ChargeMitigation(7, at, cost)
		charges++
		at = at.Add(time.Minute)
	}
	// 0.1 nh at 1/30 nh per mitigation allows exactly 3 charges.
	if charges != 3 {
		t.Fatalf("allowed %d mitigations under a 0.1 nh budget, want 3", charges)
	}
	// Another node is unaffected.
	if ok, _ := b.AllowMitigation(8, at, cost); !ok {
		t.Fatal("node budget leaked across nodes")
	}
	// After the window slides past, the node recovers.
	later := t0.Add(2 * time.Hour)
	if ok, _ := b.AllowMitigation(7, later, cost); !ok {
		t.Fatal("node budget never recovered after the window slid past")
	}
	if got := b.NodeSpend(7, later); got != 0 {
		t.Fatalf("NodeSpend after expiry = %v, want 0", got)
	}
}

func TestBudgetsFleetRate(t *testing.T) {
	b := NewBudgets(Config{FleetMaxMitigations: 2, FleetWindow: time.Hour})
	if ok, _ := b.AllowMitigation(1, t0, 1); !ok {
		t.Fatal("fresh fleet budget denied")
	}
	b.ChargeMitigation(1, t0, 1)
	b.ChargeMitigation(2, t0.Add(time.Minute), 1)
	ok, reason := b.AllowMitigation(3, t0.Add(2*time.Minute), 1)
	if ok || reason != ReasonFleetBudget {
		t.Fatalf("fleet budget at limit: ok=%v reason=%q, want deny/%q", ok, reason, ReasonFleetBudget)
	}
	if got := b.FleetMitigations(t0.Add(2 * time.Minute)); got != 2 {
		t.Fatalf("FleetMitigations = %d, want 2", got)
	}
	if ok, _ := b.AllowMitigation(3, t0.Add(3*time.Hour), 1); !ok {
		t.Fatal("fleet budget never recovered")
	}
}

func TestBudgetsPromotions(t *testing.T) {
	b := NewBudgets(Config{MaxPromotions: 1, PromotionWindow: 24 * time.Hour})
	if ok, _ := b.AllowPromotion(t0); !ok {
		t.Fatal("fresh promotion budget denied")
	}
	b.ChargePromotion(t0)
	ok, reason := b.AllowPromotion(t0.Add(time.Hour))
	if ok || reason != ReasonPromotionBudget {
		t.Fatalf("promotion budget at limit: ok=%v reason=%q", ok, reason)
	}
	if got := b.Promotions(t0.Add(time.Hour)); got != 1 {
		t.Fatalf("Promotions = %d, want 1", got)
	}
	if ok, _ := b.AllowPromotion(t0.Add(26 * time.Hour)); !ok {
		t.Fatal("promotion budget never recovered")
	}
}

func TestBudgetsDisabledAllowEverything(t *testing.T) {
	b := NewBudgets(Config{})
	for i := 0; i < 100; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		if ok, _ := b.AllowMitigation(i, at, 1e9); !ok {
			t.Fatal("disabled mitigation budget denied")
		}
		b.ChargeMitigation(i, at, 1e9)
		if ok, _ := b.AllowPromotion(at); !ok {
			t.Fatal("disabled promotion budget denied")
		}
		b.ChargePromotion(at)
	}
}

// TestBudgetsConcurrent exercises the tracker from many goroutines under
// -race; the final fleet count must equal the charges made.
func TestBudgetsConcurrent(t *testing.T) {
	b := NewBudgets(Config{
		NodeCheckpointNodeHours: 1e9, NodeWindow: time.Hour,
		FleetMaxMitigations: 1 << 30, FleetWindow: time.Hour,
	})
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				at := t0.Add(time.Duration(i) * time.Second)
				b.AllowMitigation(w, at, 0.5)
				b.ChargeMitigation(w, at, 0.5)
			}
		}(w)
	}
	wg.Wait()
	at := t0.Add(perWorker * time.Second)
	if got := b.FleetMitigations(at); got != workers*perWorker {
		t.Fatalf("FleetMitigations = %d, want %d", got, workers*perWorker)
	}
}
