package guard

import "time"

// windowBuckets is the fixed bucket count of every sliding window. More
// buckets mean finer expiry granularity at a fixed O(1) cost per
// operation; 32 keeps the quantization error of a window's span under
// ~3% while the whole ring stays in one cache line pair.
const windowBuckets = 32

// Window is a sliding-window sum over event time: values added at time t
// contribute to Total until roughly span has elapsed, after which their
// bucket rotates out. Time is the caller's event-stream (telemetry)
// time, never the wall clock, so a replayed stream reproduces the same
// window sums bit for bit.
//
// The window is quantized into windowBuckets buckets, so an entry
// expires between span and span+span/windowBuckets after it was added —
// budget enforcement is sliding, not tumbling, with bucket-granularity
// expiry. Window is not safe for concurrent use; Budgets provides the
// locking.
type Window struct {
	bucket time.Duration
	sums   [windowBuckets]float64
	// epoch is the bucket index of the newest slot; -1 until first use.
	epoch int64
	total float64
}

// NewWindow builds a sliding window covering roughly span.
func NewWindow(span time.Duration) *Window {
	b := span / windowBuckets
	if b <= 0 {
		b = 1
	}
	return &Window{bucket: b, epoch: -1}
}

// index maps a time to its bucket index.
func (w *Window) index(at time.Time) int64 {
	return at.UnixNano() / int64(w.bucket)
}

// slot maps a bucket index to its ring position.
func (w *Window) slot(idx int64) int {
	return int(((idx % windowBuckets) + windowBuckets) % windowBuckets)
}

// advance rotates the ring forward to idx, expiring buckets that leave
// the window.
func (w *Window) advance(idx int64) {
	if w.epoch < 0 {
		w.epoch = idx
		return
	}
	if idx <= w.epoch {
		return
	}
	if idx-w.epoch >= windowBuckets {
		// The whole window has expired.
		w.sums = [windowBuckets]float64{}
		w.total = 0
		w.epoch = idx
		return
	}
	for i := w.epoch + 1; i <= idx; i++ {
		s := w.slot(i)
		w.total -= w.sums[s]
		w.sums[s] = 0
	}
	w.epoch = idx
}

// Add folds v into the window at time at. Out-of-order additions land in
// their own (still live) bucket; additions older than the window are
// already expired and are dropped.
func (w *Window) Add(at time.Time, v float64) {
	idx := w.index(at)
	w.advance(idx)
	if idx <= w.epoch-windowBuckets {
		return
	}
	w.sums[w.slot(idx)] += v
	w.total += v
}

// Total reports the window sum as of time at, first expiring anything
// older than the span.
func (w *Window) Total(at time.Time) float64 {
	w.advance(w.index(at))
	return w.total
}

// Span reports the window's effective span (bucket-quantized).
func (w *Window) Span() time.Duration {
	return w.bucket * windowBuckets
}
