// Package guard implements the budget-accounting core of the serving
// layer's production guardrails: sliding-window spend tracking for
// per-node checkpoint node-hours, fleet-wide mitigation rate, and model
// promotions. The root package's Guard consults these budgets from
// Recommend (to suppress mitigation when a budget is tripped) and from
// the promotion path (to freeze promotions), and turns limit crossings
// into audit LifecycleEvents; this package owns only the deterministic
// arithmetic. All times are event-stream (telemetry) time supplied by
// the caller — never the wall clock — so replaying a stream reproduces
// every budget verdict bit for bit.
//
//uerl:deterministic
package guard

import (
	"sync"
	"time"
)

// Budget-trip reasons, reported by the Allow checks and carried into
// Decision.VetoReason and audit event details.
const (
	// ReasonNodeBudget names the per-node checkpoint node-hours budget.
	ReasonNodeBudget = "node-checkpoint-budget"
	// ReasonFleetBudget names the fleet-wide mitigation-rate budget.
	ReasonFleetBudget = "fleet-mitigation-budget"
	// ReasonPromotionBudget names the promotions-per-window budget.
	ReasonPromotionBudget = "promotion-budget"
)

// Config sets the enforceable budgets. A zero (or negative) limit
// disables that budget; a disabled budget allows everything.
type Config struct {
	// NodeCheckpointNodeHours caps the checkpoint node-hours one node may
	// spend on mitigation within NodeWindow.
	NodeCheckpointNodeHours float64
	// NodeWindow is the sliding span of the per-node budget.
	NodeWindow time.Duration
	// FleetMaxMitigations caps the number of mitigations across the whole
	// fleet within FleetWindow (the fleet-wide mitigation rate).
	FleetMaxMitigations int
	// FleetWindow is the sliding span of the fleet budget.
	FleetWindow time.Duration
	// MaxPromotions caps model promotions within PromotionWindow.
	MaxPromotions int
	// PromotionWindow is the sliding span of the promotion budget
	// (typically 24h: promotions per day).
	PromotionWindow time.Duration
}

// Budgets tracks spend against the configured budgets and answers the
// allow/deny checks. Charges come from the authoritative served-decision
// stream (the root Guard's ObserveDecision / promotion path); Allow
// checks are read-shaped (they only advance window expiry) and are what
// Recommend consults on its hot path. Budgets is safe for concurrent
// use.
type Budgets struct {
	cfg Config
	mu  sync.Mutex
	//uerl:guarded-by mu
	nodes map[int]*Window
	//uerl:guarded-by mu
	fleet *Window
	//uerl:guarded-by mu
	promos *Window
}

// NewBudgets builds the budget tracker. Windows default to 24h (node),
// 1h (fleet) and 24h (promotions) when a limit is set without a span.
func NewBudgets(cfg Config) *Budgets {
	if cfg.NodeWindow <= 0 {
		cfg.NodeWindow = 24 * time.Hour
	}
	if cfg.FleetWindow <= 0 {
		cfg.FleetWindow = time.Hour
	}
	if cfg.PromotionWindow <= 0 {
		cfg.PromotionWindow = 24 * time.Hour
	}
	var fleet, promos *Window
	if cfg.FleetMaxMitigations > 0 {
		fleet = NewWindow(cfg.FleetWindow)
	}
	if cfg.MaxPromotions > 0 {
		promos = NewWindow(cfg.PromotionWindow)
	}
	return &Budgets{cfg: cfg, nodes: map[int]*Window{}, fleet: fleet, promos: promos}
}

// Config returns the configured limits.
func (b *Budgets) Config() Config { return b.cfg }

// node returns the node's spend window, creating it on first use.
//
//uerl:locked mu
func (b *Budgets) node(n int) *Window {
	w, ok := b.nodes[n]
	if !ok {
		w = NewWindow(b.cfg.NodeWindow)
		b.nodes[n] = w
	}
	return w
}

// AllowMitigation reports whether one more mitigation costing
// costNodeHours on node at time at fits every mitigation budget; when it
// does not, the returned reason names the tripped budget. A node budget
// smaller than a single mitigation's cost suppresses mitigation on that
// node entirely.
func (b *Budgets) AllowMitigation(node int, at time.Time, costNodeHours float64) (bool, string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cfg.NodeCheckpointNodeHours > 0 {
		if b.node(node).Total(at)+costNodeHours > b.cfg.NodeCheckpointNodeHours {
			return false, ReasonNodeBudget
		}
	}
	if b.fleet != nil {
		if int(b.fleet.Total(at))+1 > b.cfg.FleetMaxMitigations {
			return false, ReasonFleetBudget
		}
	}
	return true, ""
}

// ChargeMitigation records one served (non-suppressed) mitigation
// costing costNodeHours on node at time at against the node and fleet
// windows.
func (b *Budgets) ChargeMitigation(node int, at time.Time, costNodeHours float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cfg.NodeCheckpointNodeHours > 0 {
		b.node(node).Add(at, costNodeHours)
	}
	if b.fleet != nil {
		b.fleet.Add(at, 1)
	}
}

// AllowPromotion reports whether one more promotion at time at fits the
// promotion budget.
func (b *Budgets) AllowPromotion(at time.Time) (bool, string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.promos != nil {
		if int(b.promos.Total(at))+1 > b.cfg.MaxPromotions {
			return false, ReasonPromotionBudget
		}
	}
	return true, ""
}

// ChargePromotion records one executed promotion at time at.
func (b *Budgets) ChargePromotion(at time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.promos != nil {
		b.promos.Add(at, 1)
	}
}

// NodeSpend reports a node's checkpoint node-hours spent within its
// current window (0 for untracked nodes).
func (b *Budgets) NodeSpend(node int, at time.Time) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	w, ok := b.nodes[node]
	if !ok {
		return 0
	}
	return w.Total(at)
}

// FleetMitigations reports the fleet-wide mitigation count within the
// current fleet window.
func (b *Budgets) FleetMitigations(at time.Time) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fleet == nil {
		return 0
	}
	return int(b.fleet.Total(at))
}

// Promotions reports the promotions executed within the current
// promotion window.
func (b *Budgets) Promotions(at time.Time) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.promos == nil {
		return 0
	}
	return int(b.promos.Total(at))
}
