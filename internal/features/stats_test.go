package features

import (
	"math"
	"testing"
)

func statsVec(vals ...float64) Vector {
	var v Vector
	for i, x := range vals {
		v[i] = x
	}
	return v
}

func TestSummaryStatsMeanVariance(t *testing.T) {
	var s SummaryStats
	samples := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range samples {
		s.Observe(statsVec(x))
	}
	if got := s.Count(); got != len(samples) {
		t.Fatalf("Count = %d, want %d", got, len(samples))
	}
	if got := s.Mean(0); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Population variance of the classic example is exactly 4.
	if got := s.Variance(0); math.Abs(got-4) > 1e-12 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	// Untouched dimensions stay at zero mean/variance.
	if s.Mean(1) != 0 || s.Variance(1) != 0 {
		t.Fatalf("untouched dim moved: mean=%v var=%v", s.Mean(1), s.Variance(1))
	}
}

func TestSummaryStatsVarianceNeedsTwoSamples(t *testing.T) {
	var s SummaryStats
	if s.Variance(0) != 0 {
		t.Fatalf("empty variance = %v, want 0", s.Variance(0))
	}
	s.Observe(statsVec(42))
	if s.Variance(0) != 0 {
		t.Fatalf("one-sample variance = %v, want 0", s.Variance(0))
	}
}

func TestSummaryStatsMergeMatchesSerial(t *testing.T) {
	serial := SummaryStats{}
	var a, b SummaryStats
	for i := 0; i < 100; i++ {
		v := statsVec(float64(i), float64(i%7), math.Sqrt(float64(i)))
		serial.Observe(v)
		if i < 37 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.Count() != serial.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), serial.Count())
	}
	for i := 0; i < 3; i++ {
		if math.Abs(a.Mean(i)-serial.Mean(i)) > 1e-9 {
			t.Fatalf("dim %d merged mean = %v, serial %v", i, a.Mean(i), serial.Mean(i))
		}
		if math.Abs(a.Variance(i)-serial.Variance(i)) > 1e-9 {
			t.Fatalf("dim %d merged variance = %v, serial %v", i, a.Variance(i), serial.Variance(i))
		}
	}
}

func TestSummaryStatsMergeEdgeCases(t *testing.T) {
	var empty, full SummaryStats
	full.Observe(statsVec(3))
	full.Observe(statsVec(5))

	// Merging an empty accumulator is a no-op.
	before := full
	full.Merge(&empty)
	if full != before {
		t.Fatal("merging empty changed the accumulator")
	}

	// Merging into an empty accumulator copies.
	empty.Merge(&full)
	if empty.Count() != 2 || empty.Mean(0) != 4 {
		t.Fatalf("merge into empty: count=%d mean=%v", empty.Count(), empty.Mean(0))
	}

	empty.Reset()
	if empty.Count() != 0 || empty.Mean(0) != 0 {
		t.Fatal("Reset did not clear the accumulator")
	}
}
