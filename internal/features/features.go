// Package features computes the per-node state features of Table 1 of the
// paper: corrected-error counts and their spatial spread (distinct ranks,
// banks, rows, columns and DIMMs with CEs), UE warnings, node boot state,
// the feature-variation-over-time ratios of Eq. 2 (at Δt of one minute and
// one hour), and the potential UE cost of Eq. 3 supplied by the workload
// model. It also provides the normalization applied before features enter
// the neural network.
package features

import (
	"math"
	"time"

	"repro/internal/errlog"
)

// Feature vector indices. The layout is fixed and shared by the RL agent
// and the random-forest baseline (which uses the prefix without the cost
// feature, as SC20-RF has no notion of job state).
const (
	// CEsSinceLastEvent is the number of corrected errors observed in the
	// current tick (i.e. since the previous event).
	CEsSinceLastEvent = iota
	// CEsTotal is the cumulative corrected errors since start of operation.
	CEsTotal
	// RanksWithCEs counts distinct ranks that have seen CEs.
	RanksWithCEs
	// BanksWithCEs counts distinct banks that have seen CEs.
	BanksWithCEs
	// RowsWithCEs counts distinct rows that have seen CEs.
	RowsWithCEs
	// ColsWithCEs counts distinct columns that have seen CEs.
	ColsWithCEs
	// DIMMsWithCEs counts distinct DIMMs that have seen CEs.
	DIMMsWithCEs
	// UEWarnings is the cumulative UE warning count.
	UEWarnings
	// HoursSinceBoot is the time since the last node boot, in hours.
	HoursSinceBoot
	// Boots is the cumulative node boot count.
	Boots
	// CEVar1Min is the Eq. 2 variation of CEsTotal over one minute.
	CEVar1Min
	// CEVar1Hour is the Eq. 2 variation of CEsTotal over one hour.
	CEVar1Hour
	// BootVar1Min is the Eq. 2 variation of Boots over one minute.
	BootVar1Min
	// BootVar1Hour is the Eq. 2 variation of Boots over one hour.
	BootVar1Hour
	// UECost is the potential UE cost (Eq. 3) in node–hours.
	UECost
	// Dim is the full feature dimension.
	Dim
)

// PredictorDim is the dimension used by the random-forest predictor: every
// feature except the workload-dependent potential UE cost.
const PredictorDim = UECost

// Vector is one feature observation.
type Vector [Dim]float64

// Predictor returns the prefix used by the RF predictor (no UE cost).
func (v Vector) Predictor() []float64 { return v[:PredictorDim] }

// maxCostFeature caps the normalized potential-UE-cost input at
// log1p(64,000) node–hours, twice the largest job in the MN4-style trace.
// Costs beyond the training distribution saturate instead of pushing the
// network into an extrapolation region it has never seen, which keeps the
// learned mitigate-at-high-cost behaviour monotone (the §5.4 observation
// that the agent generalizes to costs orders of magnitude above training
// relies on this saturation at laptop-scale training budgets).
var maxCostFeature = math.Log1p(64000)

// Normalized returns the network input representation: counts and cost are
// log1p-compressed (they span orders of magnitude), hours-since-boot is
// log1p-compressed, the variation ratios are clamped to [0, 8], and the
// cost feature saturates at maxCostFeature. The result has the same
// dimension and index layout as Vector.
func (v Vector) Normalized() []float64 {
	out := make([]float64, Dim)
	for i := 0; i < Dim; i++ {
		switch i {
		case CEVar1Min, CEVar1Hour, BootVar1Min, BootVar1Hour:
			x := v[i]
			if x < 0 {
				x = 0
			}
			if x > 8 {
				x = 8
			}
			out[i] = x
		case UECost:
			c := math.Log1p(v[i])
			if c > maxCostFeature {
				c = maxCostFeature
			}
			out[i] = c
		default:
			out[i] = math.Log1p(v[i])
		}
	}
	return out
}

// snapshot is a historical (time, CEsTotal, Boots) record used to compute
// the Eq. 2 variation ratios.
type snapshot struct {
	t     time.Time
	ces   float64
	boots float64
}

// Tracker maintains one node's feature state as ticks stream in. The zero
// value is not usable; construct with NewTracker.
type Tracker struct {
	started bool
	start   time.Time

	cesTotal   float64
	warnings   float64
	boots      float64
	lastBoot   time.Time
	hasBoot    bool
	ranks      map[int]struct{}
	banks      map[int]struct{}
	rows       map[int]struct{}
	cols       map[int]struct{}
	dimms      map[int]struct{}
	history    []snapshot
	lastVector Vector
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		ranks: map[int]struct{}{},
		banks: map[int]struct{}{},
		rows:  map[int]struct{}{},
		cols:  map[int]struct{}{},
		dimms: map[int]struct{}{},
	}
}

// Reset returns the tracker to its initial state for reuse.
func (tr *Tracker) Reset() {
	*tr = *NewTracker()
}

// Observe ingests a tick's events and returns the feature vector at the
// tick time with the supplied potential UE cost. Ticks must be fed in
// chronological order.
func (tr *Tracker) Observe(tick errlog.Tick, ueCost float64) Vector {
	if !tr.started {
		tr.started = true
		tr.start = tick.Time
	}
	ceNow := 0.0
	for _, e := range tick.Events {
		switch e.Type {
		case errlog.CE:
			ceNow += float64(e.Count)
			tr.cesTotal += float64(e.Count)
			if e.Rank >= 0 {
				tr.ranks[e.Rank] = struct{}{}
			}
			if e.Bank >= 0 {
				tr.banks[e.Bank] = struct{}{}
			}
			if e.Row >= 0 {
				tr.rows[e.Row] = struct{}{}
			}
			if e.Col >= 0 {
				tr.cols[e.Col] = struct{}{}
			}
			if e.DIMM >= 0 {
				tr.dimms[e.DIMM] = struct{}{}
			}
		case errlog.UEWarning:
			tr.warnings++
		case errlog.Boot:
			tr.boots++
			tr.lastBoot = e.Time
			tr.hasBoot = true
		}
	}
	// Record the post-update snapshot, then compute variations against the
	// closest snapshots at or before t-Δt.
	tr.history = append(tr.history, snapshot{t: tick.Time, ces: tr.cesTotal, boots: tr.boots})
	if len(tr.history)&(compactEvery-1) == 0 {
		tr.CompactHistory(tick.Time)
	}

	v := tr.vectorAt(tick.Time, ceNow, ueCost)
	tr.lastVector = v
	return v
}

// compactEvery bounds tracker history growth: every compactEvery appended
// snapshots, Observe drops those older than the longest variation window.
// Must be a power of two.
const compactEvery = 1024

// Peek returns the feature vector the node would report at time now with
// the supplied potential UE cost, WITHOUT mutating the tracker: no
// snapshot is recorded and no counters move. It is the read-only query
// path used by Controller.Recommend, so polling a node never changes its
// features. now must not precede the last observed tick.
func (tr *Tracker) Peek(now time.Time, ueCost float64) Vector {
	v := tr.vectorAt(now, 0, ueCost)
	if v[HoursSinceBoot] < 0 {
		// A Peek earlier than the last boot (lagging poller clock) must
		// not feed log1p a negative value downstream. Observe keeps the
		// raw value so replayed training inputs stay bit-identical.
		v[HoursSinceBoot] = 0
	}
	return v
}

// vectorAt assembles the feature vector for time t from current counters.
func (tr *Tracker) vectorAt(t time.Time, ceNow, ueCost float64) Vector {
	var v Vector
	v[CEsSinceLastEvent] = ceNow
	v[CEsTotal] = tr.cesTotal
	v[RanksWithCEs] = float64(len(tr.ranks))
	v[BanksWithCEs] = float64(len(tr.banks))
	v[RowsWithCEs] = float64(len(tr.rows))
	v[ColsWithCEs] = float64(len(tr.cols))
	v[DIMMsWithCEs] = float64(len(tr.dimms))
	v[UEWarnings] = tr.warnings
	switch {
	case tr.hasBoot:
		v[HoursSinceBoot] = t.Sub(tr.lastBoot).Hours()
	case tr.started:
		v[HoursSinceBoot] = t.Sub(tr.start).Hours()
	}
	v[Boots] = tr.boots
	v[CEVar1Min] = tr.variation(t, time.Minute, func(s snapshot) float64 { return s.ces }, tr.cesTotal)
	v[CEVar1Hour] = tr.variation(t, time.Hour, func(s snapshot) float64 { return s.ces }, tr.cesTotal)
	v[BootVar1Min] = tr.variation(t, time.Minute, func(s snapshot) float64 { return s.boots }, tr.boots)
	v[BootVar1Hour] = tr.variation(t, time.Hour, func(s snapshot) float64 { return s.boots }, tr.boots)
	v[UECost] = ueCost
	return v
}

// variation implements Eq. 2: value(now) / value(now-Δt), zero when the
// denominator is zero. value(now-Δt) is the feature's value at the latest
// snapshot at or before now-Δt (features only change at events).
func (tr *Tracker) variation(now time.Time, dt time.Duration, get func(snapshot) float64, nowVal float64) float64 {
	cutoff := now.Add(-dt)
	// Binary search over history for the last snapshot with t <= cutoff.
	lo, hi := 0, len(tr.history)-1
	idx := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		if !tr.history[mid].t.After(cutoff) {
			idx = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if idx < 0 {
		return 0 // no history that far back: denominator is zero
	}
	denom := get(tr.history[idx])
	if denom == 0 {
		return 0
	}
	return nowVal / denom
}

// Last returns the most recently computed vector.
func (tr *Tracker) Last() Vector { return tr.lastVector }

// CompactHistory drops snapshots older than the longest variation window,
// bounding memory for long logs. Call occasionally (e.g. per day of log
// time).
func (tr *Tracker) CompactHistory(now time.Time) {
	cutoff := now.Add(-2 * time.Hour)
	keep := 0
	for keep < len(tr.history)-1 && tr.history[keep+1].t.Before(cutoff) {
		keep++
	}
	if keep > 0 {
		tr.history = append(tr.history[:0], tr.history[keep:]...)
	}
}
