// Package features computes the per-node state features of Table 1 of the
// paper: corrected-error counts and their spatial spread (distinct ranks,
// banks, rows, columns and DIMMs with CEs), UE warnings, node boot state,
// the feature-variation-over-time ratios of Eq. 2 (at Δt of one minute and
// one hour), and the potential UE cost of Eq. 3 supplied by the workload
// model. It also provides the normalization applied before features enter
// the neural network.
package features

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/errlog"
)

// Feature vector indices. The layout is fixed and shared by the RL agent
// and the random-forest baseline (which uses the prefix without the cost
// feature, as SC20-RF has no notion of job state).
const (
	// CEsSinceLastEvent is the number of corrected errors observed in the
	// current tick (i.e. since the previous event).
	CEsSinceLastEvent = iota
	// CEsTotal is the cumulative corrected errors since start of operation.
	CEsTotal
	// RanksWithCEs counts distinct ranks that have seen CEs.
	RanksWithCEs
	// BanksWithCEs counts distinct banks that have seen CEs.
	BanksWithCEs
	// RowsWithCEs counts distinct rows that have seen CEs.
	RowsWithCEs
	// ColsWithCEs counts distinct columns that have seen CEs.
	ColsWithCEs
	// DIMMsWithCEs counts distinct DIMMs that have seen CEs.
	DIMMsWithCEs
	// UEWarnings is the cumulative UE warning count.
	UEWarnings
	// HoursSinceBoot is the time since the last node boot, in hours.
	HoursSinceBoot
	// Boots is the cumulative node boot count.
	Boots
	// CEVar1Min is the Eq. 2 variation of CEsTotal over one minute.
	CEVar1Min
	// CEVar1Hour is the Eq. 2 variation of CEsTotal over one hour.
	CEVar1Hour
	// BootVar1Min is the Eq. 2 variation of Boots over one minute.
	BootVar1Min
	// BootVar1Hour is the Eq. 2 variation of Boots over one hour.
	BootVar1Hour
	// UECost is the potential UE cost (Eq. 3) in node–hours.
	UECost
	// Dim is the full feature dimension.
	Dim
)

// PredictorDim is the dimension used by the random-forest predictor: every
// feature except the workload-dependent potential UE cost.
const PredictorDim = UECost

// Vector is one feature observation.
type Vector [Dim]float64

// Predictor returns the prefix used by the RF predictor (no UE cost).
func (v Vector) Predictor() []float64 { return v[:PredictorDim] }

// maxCostFeature caps the normalized potential-UE-cost input at
// log1p(64,000) node–hours, twice the largest job in the MN4-style trace.
// Costs beyond the training distribution saturate instead of pushing the
// network into an extrapolation region it has never seen, which keeps the
// learned mitigate-at-high-cost behaviour monotone (the §5.4 observation
// that the agent generalizes to costs orders of magnitude above training
// relies on this saturation at laptop-scale training budgets).
var maxCostFeature = math.Log1p(64000)

// Normalized returns the network input representation: counts and cost are
// log1p-compressed (they span orders of magnitude), hours-since-boot is
// log1p-compressed, the variation ratios are clamped to [0, 8], and the
// cost feature saturates at maxCostFeature. The result has the same
// dimension and index layout as Vector.
func (v Vector) Normalized() []float64 {
	return v.NormalizedInto(make([]float64, Dim))
}

// normPool recycles normalization scratch for WithNormalized.
var normPool = sync.Pool{New: func() any { return new([Dim]float64) }}

// WithNormalized invokes f with the normalized representation of v in
// pooled scratch, then recycles the buffer. It is the shared zero-alloc
// idiom for concurrent decision paths (the serving RL policy and the
// replay RL decider); f must not retain the slice past the call.
//
//uerl:hotpath
func (v Vector) WithNormalized(f func(norm []float64)) {
	buf := normPool.Get().(*[Dim]float64)
	f(v.NormalizedInto(buf[:]))
	normPool.Put(buf)
}

// NormalizedInto is the allocation-free form of Normalized: it writes the
// network input representation into out (len >= Dim) and returns out[:Dim].
// It is the hot serving path: Observe → NormalizedInto → ForwardInto
// allocates nothing.
//
//uerl:hotpath
func (v Vector) NormalizedInto(out []float64) []float64 {
	out = out[:Dim]
	for i := 0; i < Dim; i++ {
		switch i {
		case CEVar1Min, CEVar1Hour, BootVar1Min, BootVar1Hour:
			x := v[i]
			if x < 0 {
				x = 0
			}
			if x > 8 {
				x = 8
			}
			out[i] = x
		case UECost:
			c := math.Log1p(v[i])
			if c > maxCostFeature {
				c = maxCostFeature
			}
			out[i] = c
		default:
			out[i] = math.Log1p(v[i])
		}
	}
	return out
}

// snapshot is a historical (time, CEsTotal, Boots) record used to compute
// the Eq. 2 variation ratios.
type snapshot struct {
	t     time.Time
	ces   float64
	boots float64
}

// maxSpreadBits bounds the direct bitset range of a spreadSet at realistic
// DRAM geometry (row/column/rank/bank/DIMM ids all fit well under 2^16):
// the worst-case bitset is 8 KB per set even if a stream is adversarial,
// and ids at or beyond the bound fall back to an overflow map.
const maxSpreadBits = 1 << 16

// spreadSet counts distinct non-negative ids (ranks, banks, rows, columns,
// DIMMs with CEs). Small ids — the universal case for DRAM geometry — live
// in a lazily grown bitset, so the per-tick hot path neither hashes nor
// allocates; out-of-range ids overflow into a map. Reset reuses all storage.
type spreadSet struct {
	bits []uint64
	n    int
	over map[int]struct{}
}

// add inserts v (v >= 0) into the set.
func (s *spreadSet) add(v int) {
	if v < maxSpreadBits {
		w, bit := v>>6, uint64(1)<<(uint(v)&63)
		if w >= len(s.bits) {
			grown := make([]uint64, w+1)
			copy(grown, s.bits)
			s.bits = grown
		}
		if s.bits[w]&bit == 0 {
			s.bits[w] |= bit
			s.n++
		}
		return
	}
	if s.over == nil {
		s.over = map[int]struct{}{}
	}
	if _, ok := s.over[v]; !ok {
		s.over[v] = struct{}{}
		s.n++
	}
}

// len reports the number of distinct ids.
func (s *spreadSet) len() int { return s.n }

// reset empties the set, keeping the bitset and map storage for reuse.
func (s *spreadSet) reset() {
	for i := range s.bits {
		s.bits[i] = 0
	}
	for k := range s.over {
		delete(s.over, k)
	}
	s.n = 0
}

// ringHist is a ring buffer of history snapshots ordered by time. It
// replaces the old slice-with-copying history: appends are O(1) amortized
// with no steady-state allocation, and compaction just advances the head.
type ringHist struct {
	buf  []snapshot // len is a power of two once non-empty
	head int
	size int
}

// at returns the i-th oldest snapshot (0 <= i < size).
func (r *ringHist) at(i int) snapshot {
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

// push appends a snapshot, growing the ring when full.
func (r *ringHist) push(s snapshot) {
	if r.size == len(r.buf) {
		grown := make([]snapshot, max(16, 2*len(r.buf)))
		for i := 0; i < r.size; i++ {
			grown[i] = r.at(i)
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.size)&(len(r.buf)-1)] = s
	r.size++
}

// popFront drops the oldest snapshot.
func (r *ringHist) popFront() {
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.size--
}

// reset empties the ring, keeping the buffer for reuse.
func (r *ringHist) reset() { r.head, r.size = 0, 0 }

// Tracker maintains one node's feature state as ticks stream in. The zero
// value is not usable; construct with NewTracker.
type Tracker struct {
	started bool
	start   time.Time

	cesTotal   float64
	warnings   float64
	boots      float64
	lastBoot   time.Time
	hasBoot    bool
	ranks      spreadSet
	banks      spreadSet
	rows       spreadSet
	cols       spreadSet
	dimms      spreadSet
	history    ringHist
	lastVector Vector
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{}
}

// Reset returns the tracker to its initial state for reuse, keeping every
// buffer (spread bitsets, history ring) it has already grown. It runs once
// per node per training episode, so it must not reallocate.
func (tr *Tracker) Reset() {
	tr.started = false
	tr.start = time.Time{}
	tr.cesTotal = 0
	tr.warnings = 0
	tr.boots = 0
	tr.lastBoot = time.Time{}
	tr.hasBoot = false
	tr.ranks.reset()
	tr.banks.reset()
	tr.rows.reset()
	tr.cols.reset()
	tr.dimms.reset()
	tr.history.reset()
	tr.lastVector = Vector{}
}

// Observe ingests a tick's events and returns the feature vector at the
// tick time with the supplied potential UE cost. Ticks must be fed in
// chronological order.
//
//uerl:hotpath
func (tr *Tracker) Observe(tick errlog.Tick, ueCost float64) Vector {
	if !tr.started {
		tr.started = true
		tr.start = tick.Time
	}
	ceNow := 0.0
	for _, e := range tick.Events {
		switch e.Type {
		case errlog.CE:
			ceNow += float64(e.Count)
			tr.cesTotal += float64(e.Count)
			if e.Rank >= 0 {
				tr.ranks.add(e.Rank)
			}
			if e.Bank >= 0 {
				tr.banks.add(e.Bank)
			}
			if e.Row >= 0 {
				tr.rows.add(e.Row)
			}
			if e.Col >= 0 {
				tr.cols.add(e.Col)
			}
			if e.DIMM >= 0 {
				tr.dimms.add(e.DIMM)
			}
		case errlog.UEWarning:
			tr.warnings++
		case errlog.Boot:
			tr.boots++
			tr.lastBoot = e.Time
			tr.hasBoot = true
		}
	}
	// Record the post-update snapshot, then compute variations against the
	// closest snapshots at or before t-Δt. Compaction is an O(1)-amortized
	// head advance on the ring, so it runs on every tick and the history
	// never exceeds the longest variation window.
	tr.history.push(snapshot{t: tick.Time, ces: tr.cesTotal, boots: tr.boots})
	tr.CompactHistory(tick.Time)

	v := tr.vectorAt(tick.Time, ceNow, ueCost)
	tr.lastVector = v
	return v
}

// Peek returns the feature vector the node would report at time now with
// the supplied potential UE cost, WITHOUT mutating the tracker: no
// snapshot is recorded and no counters move. It is the read-only query
// path used by Controller.Recommend, so polling a node never changes its
// features. now must not precede the last observed tick.
//
//uerl:hotpath
func (tr *Tracker) Peek(now time.Time, ueCost float64) Vector {
	v := tr.vectorAt(now, 0, ueCost)
	if v[HoursSinceBoot] < 0 {
		// A Peek earlier than the last boot (lagging poller clock) must
		// not feed log1p a negative value downstream. Observe keeps the
		// raw value so replayed training inputs stay bit-identical.
		v[HoursSinceBoot] = 0
	}
	return v
}

// vectorAt assembles the feature vector for time t from current counters.
//
//uerl:hotpath
func (tr *Tracker) vectorAt(t time.Time, ceNow, ueCost float64) Vector {
	var v Vector
	v[CEsSinceLastEvent] = ceNow
	v[CEsTotal] = tr.cesTotal
	v[RanksWithCEs] = float64(tr.ranks.len())
	v[BanksWithCEs] = float64(tr.banks.len())
	v[RowsWithCEs] = float64(tr.rows.len())
	v[ColsWithCEs] = float64(tr.cols.len())
	v[DIMMsWithCEs] = float64(tr.dimms.len())
	v[UEWarnings] = tr.warnings
	switch {
	case tr.hasBoot:
		v[HoursSinceBoot] = t.Sub(tr.lastBoot).Hours()
	case tr.started:
		v[HoursSinceBoot] = t.Sub(tr.start).Hours()
	}
	v[Boots] = tr.boots
	v[CEVar1Min] = tr.variation(t, time.Minute, func(s snapshot) float64 { return s.ces }, tr.cesTotal)
	v[CEVar1Hour] = tr.variation(t, time.Hour, func(s snapshot) float64 { return s.ces }, tr.cesTotal)
	v[BootVar1Min] = tr.variation(t, time.Minute, func(s snapshot) float64 { return s.boots }, tr.boots)
	v[BootVar1Hour] = tr.variation(t, time.Hour, func(s snapshot) float64 { return s.boots }, tr.boots)
	v[UECost] = ueCost
	return v
}

// variation implements Eq. 2: value(now) / value(now-Δt), zero when the
// denominator is zero. value(now-Δt) is the feature's value at the latest
// snapshot at or before now-Δt (features only change at events).
//
//uerl:hotpath
func (tr *Tracker) variation(now time.Time, dt time.Duration, get func(snapshot) float64, nowVal float64) float64 {
	cutoff := now.Add(-dt)
	// sort.Search for the first snapshot with t > cutoff; its predecessor
	// is the last snapshot at or before the cutoff.
	//uerl:alloc-ok the predicate closure does not escape sort.Search, so it stays on the stack; Observe/Peek are alloc-asserted at 0 allocs/op
	idx := sort.Search(tr.history.size, func(i int) bool {
		return tr.history.at(i).t.After(cutoff)
	}) - 1
	if idx < 0 {
		return 0 // no history that far back: denominator is zero
	}
	denom := get(tr.history.at(idx))
	if denom == 0 {
		return 0
	}
	return nowVal / denom
}

// Last returns the most recently computed vector.
func (tr *Tracker) Last() Vector { return tr.lastVector }

// CompactHistory drops snapshots older than the longest variation window,
// bounding memory for long logs. It always keeps the latest snapshot at or
// before the cutoff, so variation lookups are unaffected. On the ring
// buffer this is just a head advance; Observe calls it on every tick.
func (tr *Tracker) CompactHistory(now time.Time) {
	cutoff := now.Add(-2 * time.Hour)
	for tr.history.size > 1 && tr.history.at(1).t.Before(cutoff) {
		tr.history.popFront()
	}
}

// HistoryLen reports the number of retained history snapshots (for tests
// and observability).
func (tr *Tracker) HistoryLen() int { return tr.history.size }
