package features

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/errlog"
)

// TestNormalizedAlwaysFinite: whatever raw feature values appear, the
// network inputs are finite and within sane bounds.
func TestNormalizedAlwaysFinite(t *testing.T) {
	f := func(raw [Dim]float64) bool {
		var v Vector
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			v[i] = math.Abs(x)
		}
		n := v.Normalized()
		for _, x := range n {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return false
			}
		}
		// Variations clamp to <= 8; cost saturates.
		return n[CEVar1Hour] <= 8 && n[UECost] <= maxCostFeature+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTrackerMonotoneCumulative: cumulative features never decrease as
// ticks stream in.
func TestTrackerMonotoneCumulative(t *testing.T) {
	f := func(counts []uint8) bool {
		tr := NewTracker()
		base := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
		prevTotal, prevBoots := -1.0, -1.0
		for i, c := range counts {
			at := base.Add(time.Duration(i) * time.Minute)
			ev := errlog.Event{Time: at, Node: 1, DIMM: 1, Type: errlog.CE,
				Count: int(c%50) + 1, Rank: int(c) % 4, Bank: 0, Row: int(c), Col: 0}
			if c%7 == 0 {
				ev = errlog.Event{Time: at, Node: 1, Type: errlog.Boot, Count: 1}
			}
			v := tr.Observe(errlog.Tick{Time: at, Node: 1, Events: []errlog.Event{ev}}, 0)
			if v[CEsTotal] < prevTotal || v[Boots] < prevBoots {
				return false
			}
			prevTotal, prevBoots = v[CEsTotal], v[Boots]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestVariationNonNegative: the Eq. 2 ratio is never negative for count
// features (counts only grow).
func TestVariationNonNegative(t *testing.T) {
	tr := NewTracker()
	base := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 300; i++ {
		at := base.Add(time.Duration(i*13) * time.Minute)
		v := tr.Observe(errlog.Tick{Time: at, Node: 1, Events: []errlog.Event{{
			Time: at, Node: 1, DIMM: 1, Type: errlog.CE, Count: 1 + i%5,
			Rank: 0, Bank: 0, Row: i, Col: 0,
		}}}, 0)
		for _, idx := range []int{CEVar1Min, CEVar1Hour, BootVar1Min, BootVar1Hour} {
			if v[idx] < 0 {
				t.Fatalf("negative variation at tick %d", i)
			}
		}
		// Cumulative counts grow, so variation over any window is >= 1
		// whenever the denominator was nonzero.
		if v[CEVar1Hour] != 0 && v[CEVar1Hour] < 1 {
			t.Fatalf("variation < 1 at tick %d: %v", i, v[CEVar1Hour])
		}
	}
}
