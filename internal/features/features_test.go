package features

import (
	"math"
	"testing"
	"time"

	"repro/internal/errlog"
)

var t0 = time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)

func tick(at time.Duration, events ...errlog.Event) errlog.Tick {
	for i := range events {
		events[i].Time = t0.Add(at)
	}
	return errlog.Tick{Time: t0.Add(at), Node: 1, Events: events}
}

func ceEvent(count, rank, bank, row, col, dimm int) errlog.Event {
	return errlog.Event{Type: errlog.CE, Count: count, Rank: rank, Bank: bank,
		Row: row, Col: col, DIMM: dimm}
}

func TestObserveCECounts(t *testing.T) {
	tr := NewTracker()
	v := tr.Observe(tick(0, ceEvent(5, 0, 1, 10, 20, 3)), 0)
	if v[CEsSinceLastEvent] != 5 || v[CEsTotal] != 5 {
		t.Fatalf("first tick: %v", v)
	}
	v = tr.Observe(tick(time.Hour, ceEvent(3, 0, 2, 11, 20, 3)), 0)
	if v[CEsSinceLastEvent] != 3 {
		t.Fatalf("CEs since last event = %v, want 3", v[CEsSinceLastEvent])
	}
	if v[CEsTotal] != 8 {
		t.Fatalf("CEs total = %v, want 8", v[CEsTotal])
	}
}

func TestObserveSpatialSpread(t *testing.T) {
	tr := NewTracker()
	tr.Observe(tick(0, ceEvent(1, 0, 1, 10, 20, 3)), 0)
	v := tr.Observe(tick(time.Minute,
		ceEvent(1, 0, 2, 11, 20, 3), // new bank, new row, same rank/col/DIMM
		ceEvent(1, 1, 1, 10, 21, 4), // new rank, new col, new DIMM
	), 0)
	if v[RanksWithCEs] != 2 || v[BanksWithCEs] != 2 || v[RowsWithCEs] != 2 ||
		v[ColsWithCEs] != 2 || v[DIMMsWithCEs] != 2 {
		t.Fatalf("spread wrong: %v", v)
	}
}

func TestObserveWarningsAndBoots(t *testing.T) {
	tr := NewTracker()
	boot := errlog.Event{Type: errlog.Boot}
	warn := errlog.Event{Type: errlog.UEWarning}
	tr.Observe(tick(0, boot), 0)
	v := tr.Observe(tick(2*time.Hour, warn), 0)
	if v[UEWarnings] != 1 || v[Boots] != 1 {
		t.Fatalf("warn/boot counts: %v", v)
	}
	if math.Abs(v[HoursSinceBoot]-2) > 1e-9 {
		t.Fatalf("hours since boot = %v, want 2", v[HoursSinceBoot])
	}
}

func TestVariationEq2(t *testing.T) {
	tr := NewTracker()
	// 10 CEs at t=0, 30 more at t=1h. At the second tick, CEsTotal=40 and
	// the value one hour earlier was 10 -> variation over 1h = 4.
	tr.Observe(tick(0, ceEvent(10, 0, 0, 0, 0, 0)), 0)
	v := tr.Observe(tick(time.Hour, ceEvent(30, 0, 0, 0, 0, 0)), 0)
	if math.Abs(v[CEVar1Hour]-4) > 1e-9 {
		t.Fatalf("CE 1h variation = %v, want 4", v[CEVar1Hour])
	}
	// No snapshot one minute back at exactly t=1h except t=0? t-1min =
	// 59min; latest snapshot at or before is t=0 with 10 CEs -> 4.
	if math.Abs(v[CEVar1Min]-4) > 1e-9 {
		t.Fatalf("CE 1min variation = %v, want 4", v[CEVar1Min])
	}
}

func TestVariationZeroDenominator(t *testing.T) {
	tr := NewTracker()
	// First tick: no history before it -> variation 0 (paper: set to zero
	// when the denominator is zero).
	v := tr.Observe(tick(0, ceEvent(10, 0, 0, 0, 0, 0)), 0)
	if v[CEVar1Min] != 0 || v[CEVar1Hour] != 0 {
		t.Fatalf("first-tick variation should be 0: %v", v)
	}
	// Snapshot exists but its value is zero (only a boot, no CEs).
	tr2 := NewTracker()
	tr2.Observe(tick(0, errlog.Event{Type: errlog.Boot}), 0)
	v = tr2.Observe(tick(2*time.Hour, ceEvent(5, 0, 0, 0, 0, 0)), 0)
	if v[CEVar1Hour] != 0 {
		t.Fatalf("zero-denominator variation should be 0, got %v", v[CEVar1Hour])
	}
}

func TestUECostPassthrough(t *testing.T) {
	tr := NewTracker()
	v := tr.Observe(tick(0), 1234.5)
	if v[UECost] != 1234.5 {
		t.Fatalf("UE cost = %v", v[UECost])
	}
}

func TestNormalized(t *testing.T) {
	var v Vector
	v[CEsTotal] = math.E - 1 // log1p -> 1
	v[CEVar1Hour] = 100      // clamps to 8
	v[UECost] = 0
	n := v.Normalized()
	if math.Abs(n[CEsTotal]-1) > 1e-9 {
		t.Fatalf("log1p normalization wrong: %v", n[CEsTotal])
	}
	if n[CEVar1Hour] != 8 {
		t.Fatalf("variation clamp wrong: %v", n[CEVar1Hour])
	}
	if n[UECost] != 0 {
		t.Fatalf("zero cost should normalize to 0: %v", n[UECost])
	}
	if len(n) != Dim {
		t.Fatalf("normalized dim %d", len(n))
	}
}

func TestPredictorExcludesCost(t *testing.T) {
	var v Vector
	v[UECost] = 99
	p := v.Predictor()
	if len(p) != PredictorDim {
		t.Fatalf("predictor dim %d", len(p))
	}
	for _, x := range p {
		if x == 99 {
			t.Fatal("predictor features leak UE cost")
		}
	}
}

func TestResetAndLast(t *testing.T) {
	tr := NewTracker()
	tr.Observe(tick(0, ceEvent(5, 0, 0, 0, 0, 0)), 7)
	if tr.Last()[CEsTotal] != 5 {
		t.Fatal("Last() wrong")
	}
	tr.Reset()
	v := tr.Observe(tick(time.Hour), 0)
	if v[CEsTotal] != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestCompactHistoryPreservesVariation(t *testing.T) {
	tr := NewTracker()
	tr.Observe(tick(0, ceEvent(10, 0, 0, 0, 0, 0)), 0)
	for i := 1; i <= 48; i++ {
		tr.Observe(tick(time.Duration(i)*time.Hour, ceEvent(1, 0, 0, 0, 0, 0)), 0)
	}
	tr.CompactHistory(t0.Add(48 * time.Hour))
	// Variation over 1 hour needs only the last 2 hours of history.
	v := tr.Observe(tick(49*time.Hour, ceEvent(58, 0, 0, 0, 0, 0)), 0)
	// CEsTotal = 10+48+58 = 116; value 1h before = 10+48 = 58 -> ratio 2.
	if math.Abs(v[CEVar1Hour]-2) > 1e-9 {
		t.Fatalf("variation after compaction = %v, want 2", v[CEVar1Hour])
	}
	if tr.HistoryLen() > 10 {
		t.Fatalf("history not compacted: %d entries", tr.HistoryLen())
	}
}

func TestResetReusesStorage(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 200; i++ {
		tr.Observe(tick(time.Duration(i)*time.Minute,
			ceEvent(1, i%4, i%16, i*7%4096, i%1024, i%8)), 0)
	}
	// Warm up one reset so lazily grown buffers exist, then resets must not
	// allocate: Reset runs once per node per training episode.
	tr.Reset()
	allocs := testing.AllocsPerRun(20, tr.Reset)
	if allocs != 0 {
		t.Fatalf("Reset allocates %v times per run, want 0", allocs)
	}
	v := tr.Observe(tick(time.Hour), 0)
	for i := 0; i < UECost; i++ {
		if v[i] != 0 {
			t.Fatalf("state leaked through Reset: feature %d = %v", i, v[i])
		}
	}
}

func TestObserveZeroAllocSteadyState(t *testing.T) {
	tr := NewTracker()
	tk := tick(0, ceEvent(3, 1, 3, 900, 12, 8))
	at := time.Duration(0)
	advance := func() {
		at += time.Minute
		tk.Time = t0.Add(at)
		tk.Events[0].Time = tk.Time
	}
	// Warm up the ring and bitsets.
	for i := 0; i < 300; i++ {
		advance()
		tr.Observe(tk, 100)
	}
	allocs := testing.AllocsPerRun(200, func() {
		advance()
		tr.Observe(tk, 100)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Observe allocates %v times per run, want 0", allocs)
	}
}

func TestSpreadSetOverflow(t *testing.T) {
	tr := NewTracker()
	// Rows far beyond the bitset range must still count distinctly.
	v := tr.Observe(tick(0,
		ceEvent(1, 0, 0, maxSpreadBits+5, 0, 0),
		ceEvent(1, 0, 0, maxSpreadBits+9, 0, 0),
		ceEvent(1, 0, 0, maxSpreadBits+5, 0, 0),
		ceEvent(1, 0, 0, 3, 0, 0),
	), 0)
	if v[RowsWithCEs] != 3 {
		t.Fatalf("overflow rows counted %v, want 3", v[RowsWithCEs])
	}
	tr.Reset()
	v = tr.Observe(tick(time.Minute, ceEvent(1, 0, 0, maxSpreadBits+5, 0, 0)), 0)
	if v[RowsWithCEs] != 1 {
		t.Fatalf("overflow rows after reset counted %v, want 1", v[RowsWithCEs])
	}
}

func TestNormalizedIntoMatchesNormalized(t *testing.T) {
	var v Vector
	for i := range v {
		v[i] = float64(i*i) * 1.7
	}
	var buf [Dim]float64
	got := v.NormalizedInto(buf[:])
	want := v.Normalized()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NormalizedInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestHoursSinceBootBeforeFirstBoot(t *testing.T) {
	tr := NewTracker()
	tr.Observe(tick(0, ceEvent(1, 0, 0, 0, 0, 0)), 0)
	v := tr.Observe(tick(3*time.Hour, ceEvent(1, 0, 0, 0, 0, 0)), 0)
	// With no boot seen, fall back to time since start of observation.
	if math.Abs(v[HoursSinceBoot]-3) > 1e-9 {
		t.Fatalf("fallback hours since boot = %v, want 3", v[HoursSinceBoot])
	}
}
