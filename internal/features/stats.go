package features

// SummaryStats accumulates streaming per-dimension summary statistics
// (count, mean, variance) over feature vectors using Welford's online
// algorithm, so the rolling feature distribution of a live node fleet can
// be summarized in O(Dim) memory without retaining samples. It backs the
// serving layer's drift detection: a frozen reference window is compared
// against the current window with a standardized mean-shift statistic.
//
// The zero value is an empty accumulator, ready to use. SummaryStats is
// not safe for concurrent use; callers that share one across goroutines
// must synchronize (the lifecycle learner feeds it from a single loop).
type SummaryStats struct {
	n    float64
	mean Vector
	m2   Vector
}

// Observe folds one feature vector into the statistics.
func (s *SummaryStats) Observe(v Vector) {
	s.n++
	for i := 0; i < Dim; i++ {
		delta := v[i] - s.mean[i]
		s.mean[i] += delta / s.n
		s.m2[i] += delta * (v[i] - s.mean[i])
	}
}

// Count reports the number of observed vectors.
func (s *SummaryStats) Count() int { return int(s.n) }

// Mean returns the running mean of dimension i (0 when empty).
func (s *SummaryStats) Mean(i int) float64 { return s.mean[i] }

// Variance returns the running population variance of dimension i
// (0 with fewer than two samples).
func (s *SummaryStats) Variance(i int) float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2[i] / s.n
}

// Means returns the mean vector.
func (s *SummaryStats) Means() Vector { return s.mean }

// Merge folds another accumulator into s (Chan et al. parallel
// combination), so per-shard statistics can reduce to a fleet summary.
func (s *SummaryStats) Merge(o *SummaryStats) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	for i := 0; i < Dim; i++ {
		delta := o.mean[i] - s.mean[i]
		s.m2[i] += o.m2[i] + delta*delta*s.n*o.n/n
		s.mean[i] += delta * o.n / n
	}
	s.n = n
}

// Reset empties the accumulator.
func (s *SummaryStats) Reset() { *s = SummaryStats{} }
