//go:build amd64

package nn

// haveAVX2FMA reports whether the CPU and OS support the AVX2+FMA kernels:
// CPUID.1:ECX OSXSAVE(27)+AVX(28)+FMA(12), XCR0 XMM|YMM state enabled, and
// CPUID.7.0:EBX AVX2(5).
var haveAVX2FMA = func() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const osxsave, avx, fma = 1 << 27, 1 << 28, 1 << 12
	if ecx1&osxsave == 0 || ecx1&avx == 0 || ecx1&fma == 0 {
		return false
	}
	xlo, _ := xgetbvAsm()
	if xlo&6 != 6 { // XMM and YMM state saved by the OS
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}()

// The assembly kernels below process exactly n elements, where n must be a
// positive multiple of 4; callers peel scalar tails in Go. The element-wise
// kernels (axpy*, adam*) are bit-identical to their scalar loops because
// VMULPD/VADDPD/VSUBPD/VDIVPD/VSQRTPD and VFMADD are IEEE-754 correctly
// rounded per lane and lanes are independent.

//go:noescape
func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbvAsm() (eax, edx uint32)

// axpyAVX: y[i] += alpha * x[i] (separate round for mul and add).
//
//go:noescape
func axpyAVX(alpha float64, x, y *float64, n int)

// axpyFMAAVX: y[i] = fma(alpha, x[i], y[i]).
//
//go:noescape
func axpyFMAAVX(alpha float64, x, y *float64, n int)

// axpy2AVX: y[i] += a*xa[i]; y[i] += b*xb[i] (unfused, two rounds each).
//
//go:noescape
func axpy2AVX(a float64, xa *float64, b float64, xb, y *float64, n int)

// axpy2FMAAVX: y[i] = fma(b, xb[i], fma(a, xa[i], y[i])).
//
//go:noescape
func axpy2FMAAVX(a float64, xa *float64, b float64, xb, y *float64, n int)

// adamAVX performs the classic Adam update with per-element divides:
//
//	m[i] = b1*m[i] + ob1*g[i]
//	v[i] = b2*v[i] + (ob2*g[i])*g[i]
//	w[i] -= lr * (m[i]/c1) / (sqrt(v[i]/c2) + eps)
//
// where ob1 = 1-b1 and ob2 = 1-b2 are precomputed by the caller exactly as
// the scalar loop's compiler-hoisted subexpressions.
//
//go:noescape
func adamAVX(w, grad, m, v *float64, n int, lr, b1, ob1, b2, ob2, eps, c1, c2 float64)

// adamRecipAVX is the KernelFast Adam update with precomputed reciprocal
// bias corrections rc1 = 1/c1, rc2 = 1/c2:
//
//	w[i] -= lr * (m[i]*rc1) / (sqrt(v[i]*rc2) + eps)
//
//go:noescape
func adamRecipAVX(w, grad, m, v *float64, n int, lr, b1, ob1, b2, ob2, eps, rc1, rc2 float64)

// bgradFMAAVX fuses backLayerFast's weight-gradient loop into one call:
// grad[o*in+k] = fma(dy[s*out+o], x[s*inP+k], grad[o*in+k]) with samples
// ascending and every sample accumulated unconditionally (branch-free), the
// gradient row held in registers across the sample loop (k blocked
// 16/8/4/2/1 wide, so any positive in works). Bias gradients stay with the
// Go caller.
//
//go:noescape
func bgradFMAAVX(grad, x, dy *float64, nb, in, inP, out int)

// dxFMAAVX fuses backLayerFast's input-gradient loop into one call:
// dx[s*in+k] = Σ_o dy[s*out+o]*w[o*inP+k], FMA-accumulated output-ascending
// from +0, every output unconditionally (branch-free), for any positive in.
//
//go:noescape
func dxFMAAVX(dx, w, dy *float64, nb, in, inP, out int)

// reluMaskAVX zeroes dy[i] (to +0) where act[i] <= 0 and keeps it
// otherwise (NaN activations keep dy), branch-free via compare-and-mask.
// n must be a positive multiple of 4.
//
//go:noescape
func reluMaskAVX(dy, act *float64, n int)

// gemmFMAAVX computes, for each of nb samples and out output rows,
// y[s*outP+o] = relu?(bias[o] + Σ_k w[o*inP+k]*x[s*inP+k]) with four
// independent FMA accumulator lanes reduced as (l0+l1)+(l2+l3). inP must be
// a positive multiple of 4 (rows zero-padded); relu is 0 or 1 and applies
// max(sum, +0) via VMAXSD.
//
//go:noescape
func gemmFMAAVX(w, x, y, bias *float64, nb, inP, out, outP, relu int)
