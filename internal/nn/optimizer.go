package nn

import "math"

// Optimizer applies accumulated gradients to parameters. Implementations
// keep per-parameter state keyed by position, so an optimizer must always be
// used with the same parameter list.
type Optimizer interface {
	// Step applies one update using the gradients currently accumulated in
	// params and leaves the gradients untouched (callers ZeroGrad between
	// batches).
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      [][]float64
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	if o.Momentum == 0 {
		for _, p := range params {
			for i := range p.W {
				p.W[i] -= o.LR * p.G[i]
			}
		}
		return
	}
	if o.vel == nil {
		o.vel = makeState(params)
	}
	for pi, p := range params {
		v := o.vel[pi]
		for i := range p.W {
			v[i] = o.Momentum*v[i] + p.G[i]
			p.W[i] -= o.LR * v[i]
		}
	}
}

// RMSProp implements the RMSProp update used by early DQN work.
type RMSProp struct {
	LR    float64
	Decay float64 // typically 0.99
	Eps   float64 // typically 1e-8
	sq    [][]float64
}

// Step implements Optimizer.
func (o *RMSProp) Step(params []*Param) {
	if o.sq == nil {
		o.sq = makeState(params)
	}
	decay := o.Decay
	if decay == 0 {
		decay = 0.99
	}
	eps := o.Eps
	if eps == 0 {
		eps = 1e-8
	}
	for pi, p := range params {
		s := o.sq[pi]
		for i := range p.W {
			g := p.G[i]
			s[i] = decay*s[i] + (1-decay)*g*g
			p.W[i] -= o.LR * g / (math.Sqrt(s[i]) + eps)
		}
	}
}

// Adam implements Adam (Kingma & Ba) with bias correction.
type Adam struct {
	LR    float64
	Beta1 float64 // default 0.9
	Beta2 float64 // default 0.999
	Eps   float64 // default 1e-8
	// Recip selects the KernelFast update, which replaces the two
	// per-element bias-correction divides with precomputed reciprocals:
	// w -= LR*(m*rc1)/(sqrt(v*rc2)+eps), rc1 = 1/c1, rc2 = 1/c2. A
	// different rounding stream than the classic update, so it only runs
	// under a kernel-version pin.
	Recip bool
	t     int
	m, v  [][]float64
}

// Step implements Optimizer.
//
//uerl:hotpath
func (o *Adam) Step(params []*Param) {
	if o.m == nil {
		o.m = makeState(params)
		o.v = makeState(params)
	}
	b1 := o.Beta1
	if b1 == 0 {
		b1 = 0.9
	}
	b2 := o.Beta2
	if b2 == 0 {
		b2 = 0.999
	}
	eps := o.Eps
	if eps == 0 {
		eps = 1e-8
	}
	o.t++
	c1 := 1 - math.Pow(b1, float64(o.t))
	c2 := 1 - math.Pow(b2, float64(o.t))
	if o.Recip {
		rc1, rc2 := 1/c1, 1/c2
		for pi, p := range params {
			w := p.W
			gs := p.G[:len(w)]
			m := o.m[pi][:len(w)]
			v := o.v[pi][:len(w)]
			i := 0
			if useAsm && len(w) >= 8 {
				n4 := len(w) &^ 3
				adamRecipAVX(&w[0], &gs[0], &m[0], &v[0], n4,
					o.LR, b1, 1-b1, b2, 1-b2, eps, rc1, rc2)
				i = n4
			}
			for ; i < len(w); i++ {
				g := gs[i]
				m[i] = b1*m[i] + (1-b1)*g
				v[i] = b2*v[i] + (1-b2)*g*g
				w[i] -= o.LR * (m[i] * rc1) / (math.Sqrt(v[i]*rc2) + eps)
			}
		}
		return
	}
	for pi, p := range params {
		w := p.W
		gs := p.G[:len(w)]
		m := o.m[pi][:len(w)]
		v := o.v[pi][:len(w)]
		i := 0
		if useAsm && len(w) >= 8 {
			// Bit-identical to the scalar loop: all operations are
			// element-wise and applied in the same order per element.
			n4 := len(w) &^ 3
			adamAVX(&w[0], &gs[0], &m[0], &v[0], n4,
				o.LR, b1, 1-b1, b2, 1-b2, eps, c1, c2)
			i = n4
		}
		for ; i < len(w); i++ {
			g := gs[i]
			m[i] = b1*m[i] + (1-b1)*g
			v[i] = b2*v[i] + (1-b2)*g*g
			w[i] -= o.LR * (m[i] / c1) / (math.Sqrt(v[i]/c2) + eps)
		}
	}
}

func makeState(params []*Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = make([]float64, len(p.W))
	}
	return out
}

// ClipGradNorm rescales the accumulated gradients so their global L2 norm is
// at most maxNorm, returning the pre-clip norm. maxNorm <= 0 disables
// clipping.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.G {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / (norm + 1e-12)
		for _, p := range params {
			for i := range p.G {
				p.G[i] *= scale
			}
		}
	}
	return norm
}
