package nn

import (
	"fmt"

	"repro/internal/mathx"
)

// BatchScratch holds the flat, row-major intermediate activations for a
// whole minibatch so batched forward and backward passes allocate nothing
// in steady state. Layout: sample s of a width-w tensor lives at
// [s*w : (s+1)*w]. A BatchScratch is sized for a maximum batch at
// construction and can serve any smaller batch.
type BatchScratch struct {
	batch int
	// acts[0] is the input [B*Inputs]; acts[i+1] is the post-ReLU output
	// of hidden layer i [B*hidden[i]].
	acts         [][]float64
	vOut         []float64 // dueling value head [B]
	aOut         []float64 // dueling advantage head [B*Outputs]
	q            []float64 // network output [B*Outputs]
	dA           []float64 // advantage-head gradient [B*Outputs]
	dV           []float64 // value-head gradient [B]
	dBufA, dBufB []float64 // ping-pong gradient buffers [B*maxWidth]
	// kernel selects the arithmetic stream (KernelReference or KernelFast);
	// pacts holds KernelFast's zero-padded activations, stride pad4(width).
	kernel int
	pacts  [][]float64
}

// Batch reports the maximum batch size the scratch was sized for.
func (s *BatchScratch) Batch() int { return s.batch }

// NewBatchScratch allocates batched scratch space for up to batch samples.
func (n *Network) NewBatchScratch(batch int) *BatchScratch {
	if batch <= 0 {
		panic(fmt.Sprintf("nn: batch size must be positive, got %d", batch))
	}
	s := &BatchScratch{batch: batch, kernel: KernelReference}
	s.acts = append(s.acts, make([]float64, batch*n.cfg.Inputs))
	maxw := n.cfg.Inputs
	for _, d := range n.hidden {
		s.acts = append(s.acts, make([]float64, batch*d.out))
		if d.out > maxw {
			maxw = d.out
		}
	}
	if n.cfg.Outputs > maxw {
		maxw = n.cfg.Outputs
	}
	s.vOut = make([]float64, batch)
	s.aOut = make([]float64, batch*n.cfg.Outputs)
	s.q = make([]float64, batch*n.cfg.Outputs)
	s.dA = make([]float64, batch*n.cfg.Outputs)
	s.dV = make([]float64, batch)
	s.dBufA = make([]float64, batch*maxw)
	s.dBufB = make([]float64, batch*maxw)
	return s
}

// forwardBatch computes y[s] = W x[s] + b for nb samples, optionally fusing
// the ReLU activation. Weight rows are processed in register-blocked pairs
// (dot2): each pair streams the batch's inputs once and computes two
// outputs per pass, roughly halving kernel-call overhead and input loads —
// the GEMM-style blocking that makes batched DQN training cheap.
// Per-sample, per-output arithmetic matches dense.forward exactly (each
// row keeps dot's lane structure), so batched outputs stay bit-identical
// to the serial path.
//
//uerl:hotpath
func (d *dense) forwardBatch(x, y []float64, nb int, relu bool) {
	in, out := d.in, d.out
	var o int
	for o = 0; o+2 <= out; o += 2 {
		rowA := d.w.W[o*in : o*in+in]
		rowB := d.w.W[o*in+in : o*in+2*in]
		biasA, biasB := d.b.W[o], d.b.W[o+1]
		xi, yi := 0, o
		for s := 0; s < nb; s++ {
			sa, sb := dot2(rowA, rowB, x[xi:xi+in])
			sa = biasA + sa
			sb = biasB + sb
			if relu {
				if sa < 0 {
					sa = 0
				}
				if sb < 0 {
					sb = 0
				}
			}
			y[yi] = sa
			y[yi+1] = sb
			xi += in
			yi += out
		}
	}
	if o < out {
		row := d.w.W[o*in : o*in+in]
		bias := d.b.W[o]
		xi, yi := 0, o
		for s := 0; s < nb; s++ {
			sum := bias + dot(row, x[xi:xi+in])
			if relu && sum < 0 {
				sum = 0
			}
			y[yi] = sum
			xi += in
			yi += out
		}
	}
}

// backwardBatch accumulates parameter gradients over nb samples and, when
// dx is non-nil, writes per-sample input gradients. Accumulation order per
// weight is sample-ascending and the g == 0 skips are preserved exactly,
// identical to nb sequential dense.backward calls, so batched training
// reproduces serial gradients bit for bit. The input-gradient loop blocks
// weight-row pairs (axpy2) to stream each sample's gradient row once per
// two outputs.
//
//uerl:hotpath
func (d *dense) backwardBatch(x, dy, dx []float64, nb int) {
	in, out := d.in, d.out
	for o := 0; o < out; o++ {
		grow := d.w.G[o*in : (o+1)*in]
		gb := d.b.G[o]
		di, xi := o, 0
		for s := 0; s < nb; s++ {
			if g := dy[di]; g != 0 {
				gb += g
				axpy(g, x[xi:xi+in], grow)
			}
			di += out
			xi += in
		}
		d.b.G[o] = gb
	}
	if dx != nil {
		xi := 0
		for s := 0; s < nb; s++ {
			dxs := dx[xi : xi+in]
			for i := range dxs {
				dxs[i] = 0
			}
			base := s * out
			var o int
			for o = 0; o+2 <= out; o += 2 {
				g0, g1 := dy[base+o], dy[base+o+1]
				switch {
				case g0 != 0 && g1 != 0:
					axpy2(g0, d.w.W[o*in:o*in+in], g1, d.w.W[o*in+in:o*in+2*in], dxs)
				case g0 != 0:
					axpy(g0, d.w.W[o*in:o*in+in], dxs)
				case g1 != 0:
					axpy(g1, d.w.W[o*in+in:o*in+2*in], dxs)
				}
			}
			if o < out {
				if g := dy[base+o]; g != 0 {
					axpy(g, d.w.W[o*in:o*in+in], dxs)
				}
			}
			xi += in
		}
	}
}

// ForwardBatchInto runs a batched forward pass over nb samples packed
// row-major in xs (len nb*Inputs) and returns the flat output [nb*Outputs]
// owned by s (valid until the next ForwardBatchInto on s). ReLU is fused
// into each hidden layer's forward pass. Outputs are bit-identical to nb
// independent ForwardInto calls.
//
//uerl:hotpath
func (n *Network) ForwardBatchInto(s *BatchScratch, xs []float64, nb int) []float64 {
	if nb <= 0 || nb > s.batch {
		panic(fmt.Sprintf("nn: batch %d out of range (scratch holds %d)", nb, s.batch))
	}
	if len(xs) != nb*n.cfg.Inputs {
		panic(fmt.Sprintf("nn: batched input size %d, want %d", len(xs), nb*n.cfg.Inputs))
	}
	if s.kernel == KernelFast {
		return n.forwardBatchFast(s, xs, nb)
	}
	copy(s.acts[0][:nb*n.cfg.Inputs], xs)
	cur := s.acts[0]
	for i, d := range n.hidden {
		d.forwardBatch(cur, s.acts[i+1], nb, true)
		cur = s.acts[i+1]
	}
	out := n.cfg.Outputs
	if n.cfg.Dueling {
		n.value.forwardBatch(cur, s.vOut, nb, false)
		n.adv.forwardBatch(cur, s.aOut, nb, false)
		for b := 0; b < nb; b++ {
			aRow := s.aOut[b*out : (b+1)*out]
			meanA := mathx.Mean(aRow)
			v := s.vOut[b]
			qRow := s.q[b*out : (b+1)*out]
			for i := range qRow {
				qRow[i] = v + aRow[i] - meanA
			}
		}
	} else {
		n.out.forwardBatch(cur, s.q, nb, false)
	}
	return s.q[:nb*out]
}

// BackwardBatch accumulates parameter gradients for the most recent
// ForwardBatchInto on s, given dLoss/dOutput for every sample packed
// row-major in dOut (len nb*Outputs). Gradient accumulation order matches
// nb sequential Backward calls exactly, so a batched train step leaves the
// same gradients as the serial loop.
//
//uerl:hotpath
func (n *Network) BackwardBatch(s *BatchScratch, dOut []float64, nb int) {
	if nb <= 0 || nb > s.batch {
		panic(fmt.Sprintf("nn: batch %d out of range (scratch holds %d)", nb, s.batch))
	}
	out := n.cfg.Outputs
	if len(dOut) != nb*out {
		panic(fmt.Sprintf("nn: batched dOut size %d, want %d", len(dOut), nb*out))
	}
	if s.kernel == KernelFast {
		n.backwardBatchFast(s, dOut, nb)
		return
	}
	nh := len(n.hidden)
	width := n.cfg.Inputs
	if nh > 0 {
		width = n.hidden[nh-1].out
	}
	lastAct := s.acts[nh]
	dHidden := s.dBufA[:nb*width]
	if n.cfg.Dueling {
		// Q_i = V + A_i - mean(A): dV = sum_i dQ_i; dA_j = dQ_j - mean(dQ).
		for b := 0; b < nb; b++ {
			row := dOut[b*out : (b+1)*out]
			sum := 0.0
			for _, g := range row {
				sum += g
			}
			meanG := sum / float64(out)
			for i, g := range row {
				s.dA[b*out+i] = g - meanG
			}
			s.dV[b] = sum
		}
		n.value.backwardBatch(lastAct, s.dV[:nb], dHidden, nb)
		tmp := s.dBufB[:nb*width]
		n.adv.backwardBatch(lastAct, s.dA[:nb*out], tmp, nb)
		for i := range dHidden {
			dHidden[i] += tmp[i]
		}
	} else {
		n.out.backwardBatch(lastAct, dOut, dHidden, nb)
	}
	// Walk hidden layers in reverse, ping-ponging the gradient buffers.
	dy := dHidden    // backed by s.dBufA
	spare := s.dBufB // full-capacity spare (head tmp already consumed)
	for i := nh - 1; i >= 0; i-- {
		h := n.hidden[i]
		// ReLU derivative: the post-activation is zero exactly where the
		// pre-activation was <= 0, so the stored activation is the mask.
		act := s.acts[i+1][:nb*h.out]
		for j := range dy {
			if act[j] <= 0 {
				dy[j] = 0
			}
		}
		var dx []float64
		if i > 0 {
			dx = spare[:nb*h.in]
		}
		h.backwardBatch(s.acts[i][:nb*h.in], dy, dx, nb)
		if dx != nil {
			spare = dy[:cap(dy)]
			dy = dx
		}
	}
}
