package nn

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Inputs: 0, Outputs: 2},
		{Inputs: 3, Outputs: 0},
		{Inputs: 3, Outputs: 2, Hidden: []int{4, -1}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	good := Config{Inputs: 3, Outputs: 2, Hidden: []int{8}}
	if err := good.Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestForwardShapes(t *testing.T) {
	n := New(Config{Inputs: 4, Hidden: []int{8, 6}, Outputs: 2, Seed: 1})
	q := n.Forward([]float64{1, 2, 3, 4})
	if len(q) != 2 {
		t.Fatalf("output len %d", len(q))
	}
	d := New(Config{Inputs: 4, Hidden: []int{8}, Outputs: 3, Dueling: true, Seed: 1})
	q = d.Forward([]float64{1, 0, -1, 2})
	if len(q) != 3 {
		t.Fatalf("dueling output len %d", len(q))
	}
}

func TestForwardDeterministic(t *testing.T) {
	a := New(Config{Inputs: 3, Hidden: []int{5}, Outputs: 2, Seed: 9})
	b := New(Config{Inputs: 3, Hidden: []int{5}, Outputs: 2, Seed: 9})
	x := []float64{0.5, -1, 2}
	qa, qb := a.Forward(x), b.Forward(x)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatal("same seed networks differ")
		}
	}
	c := New(Config{Inputs: 3, Hidden: []int{5}, Outputs: 2, Seed: 10})
	qc := c.Forward(x)
	same := true
	for i := range qa {
		if qa[i] != qc[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical outputs")
	}
}

func TestDuelingMeanInvariant(t *testing.T) {
	// In a dueling head, Q(s,a) - V(s) must have zero mean over actions;
	// equivalently mean_a Q(s,a) == V(s). We can't read V directly, but a
	// network with zero advantage weights must output identical Q values.
	n := New(Config{Inputs: 2, Hidden: []int{4}, Outputs: 3, Dueling: true, Seed: 3})
	for i := range n.adv.w.W {
		n.adv.w.W[i] = 0
	}
	for i := range n.adv.b.W {
		n.adv.b.W[i] = 0
	}
	q := n.Forward([]float64{1, -1})
	for i := 1; i < len(q); i++ {
		if math.Abs(q[i]-q[0]) > 1e-12 {
			t.Fatalf("zero-advantage dueling outputs differ: %v", q)
		}
	}
}

// numericalGrad estimates dLoss/dw for every parameter scalar by central
// differences, where loss = 0.5 * sum((q - target)^2).
func numericalGrad(n *Network, x, target []float64) [][]float64 {
	const h = 1e-6
	loss := func() float64 {
		q := n.Forward(x)
		l := 0.0
		for i := range q {
			d := q[i] - target[i]
			l += 0.5 * d * d
		}
		return l
	}
	var grads [][]float64
	for _, p := range n.Params() {
		g := make([]float64, len(p.W))
		for i := range p.W {
			orig := p.W[i]
			p.W[i] = orig + h
			up := loss()
			p.W[i] = orig - h
			down := loss()
			p.W[i] = orig
			g[i] = (up - down) / (2 * h)
		}
		grads = append(grads, g)
	}
	return grads
}

func checkGradients(t *testing.T, cfg Config) {
	t.Helper()
	n := New(cfg)
	rng := mathx.NewRNG(99)
	x := make([]float64, cfg.Inputs)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	target := make([]float64, cfg.Outputs)
	for i := range target {
		target[i] = rng.NormFloat64()
	}
	s := n.NewScratch()
	q := n.ForwardInto(s, x)
	dOut := make([]float64, len(q))
	for i := range q {
		dOut[i] = q[i] - target[i]
	}
	n.ZeroGrad()
	n.Backward(s, dOut)
	want := numericalGrad(n, x, target)
	for pi, p := range n.Params() {
		for i := range p.G {
			diff := math.Abs(p.G[i] - want[pi][i])
			scale := math.Max(1, math.Abs(want[pi][i]))
			if diff/scale > 1e-4 {
				t.Fatalf("param %d index %d: analytic %v numeric %v",
					pi, i, p.G[i], want[pi][i])
			}
		}
	}
}

func TestGradientsPlain(t *testing.T) {
	checkGradients(t, Config{Inputs: 5, Hidden: []int{7, 6}, Outputs: 3, Seed: 2})
}

func TestGradientsDueling(t *testing.T) {
	checkGradients(t, Config{Inputs: 5, Hidden: []int{7, 6}, Outputs: 3, Dueling: true, Seed: 2})
}

func TestGradientsNoHidden(t *testing.T) {
	checkGradients(t, Config{Inputs: 4, Outputs: 2, Seed: 5})
}

func TestGradientsDeepPaperArch(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	checkGradients(t, Config{Inputs: 14, Hidden: []int{16, 16, 8, 4}, Outputs: 2, Dueling: true, Seed: 7})
}

func TestTrainingReducesLoss(t *testing.T) {
	// Fit a tiny regression problem: Q(x) = [sum(x), -sum(x)].
	n := New(Config{Inputs: 3, Hidden: []int{16, 16}, Outputs: 2, Dueling: true, Seed: 4})
	opt := &Adam{LR: 0.01}
	rng := mathx.NewRNG(8)
	s := n.NewScratch()
	lossAt := func() float64 {
		total := 0.0
		probe := mathx.NewRNG(123)
		for k := 0; k < 50; k++ {
			x := []float64{probe.NormFloat64(), probe.NormFloat64(), probe.NormFloat64()}
			sum := x[0] + x[1] + x[2]
			q := n.ForwardInto(s, x)
			total += (q[0]-sum)*(q[0]-sum) + (q[1]+sum)*(q[1]+sum)
		}
		return total / 50
	}
	before := lossAt()
	dOut := make([]float64, 2)
	for step := 0; step < 2000; step++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		sum := x[0] + x[1] + x[2]
		q := n.ForwardInto(s, x)
		dOut[0] = q[0] - sum
		dOut[1] = q[1] + sum
		n.ZeroGrad()
		n.Backward(s, dOut)
		opt.Step(n.Params())
	}
	after := lossAt()
	if after > before/10 {
		t.Fatalf("training did not reduce loss: before %v after %v", before, after)
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	a := New(Config{Inputs: 3, Hidden: []int{4}, Outputs: 2, Seed: 1})
	b := a.Clone()
	x := []float64{1, 2, 3}
	qa, qb := a.Forward(x), b.Forward(x)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatal("clone differs")
		}
	}
	// Mutating the clone must not touch the original.
	b.Params()[0].W[0] += 1
	qa2 := a.Forward(x)
	for i := range qa {
		if qa[i] != qa2[i] {
			t.Fatal("clone shares storage with original")
		}
	}
	// CopyFrom restores equality.
	b.CopyFrom(a)
	qb = b.Forward(x)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatal("CopyFrom did not sync")
		}
	}
}

func TestSoftUpdate(t *testing.T) {
	a := New(Config{Inputs: 2, Outputs: 1, Seed: 1})
	b := New(Config{Inputs: 2, Outputs: 1, Seed: 2})
	w0 := b.Params()[0].W[0]
	target := a.Params()[0].W[0]
	b.SoftUpdate(a, 0.5)
	got := b.Params()[0].W[0]
	want := 0.5*w0 + 0.5*target
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("soft update got %v want %v", got, want)
	}
	b.SoftUpdate(a, 1)
	if b.Params()[0].W[0] != target {
		t.Fatal("tau=1 should hard sync")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	a := New(Config{Inputs: 6, Hidden: []int{8, 4}, Outputs: 2, Dueling: true, Seed: 42})
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var b Network
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	x := []float64{1, -2, 3, 0, 0.5, -0.5}
	qa, qb := a.Forward(x), b.Forward(x)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("round trip output mismatch: %v vs %v", qa, qb)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var n Network
	if err := json.Unmarshal([]byte(`{"config":{"Inputs":0}}`), &n); err == nil {
		t.Fatal("expected error for invalid config")
	}
	if err := json.Unmarshal([]byte(`not json`), &n); err == nil {
		t.Fatal("expected error for bad json")
	}
}

func TestNumParams(t *testing.T) {
	n := New(Config{Inputs: 3, Hidden: []int{4}, Outputs: 2, Seed: 1})
	// dense 3->4: 12+4; out 4->2: 8+2 = 26.
	if got := n.NumParams(); got != 26 {
		t.Fatalf("NumParams = %d, want 26", got)
	}
	d := New(Config{Inputs: 3, Hidden: []int{4}, Outputs: 2, Dueling: true, Seed: 1})
	// dense 3->4: 16; value 4->1: 5; adv 4->2: 10 = 31.
	if got := d.NumParams(); got != 31 {
		t.Fatalf("dueling NumParams = %d, want 31", got)
	}
}

func TestForwardPanicsOnBadInput(t *testing.T) {
	n := New(Config{Inputs: 3, Outputs: 1, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input size")
		}
	}()
	n.Forward([]float64{1})
}
