// Package nn implements the small dense neural networks used by the deep
// Q-learning agent: fully connected layers with ReLU activations, an
// optional dueling head (Wang et al., ICML 2016), manual backpropagation,
// Huber and squared losses with per-sample importance weights, and the
// SGD/RMSProp/Adam optimizers. Everything is float64 and stdlib-only.
//
// The package is deliberately scoped to what the paper's agent needs
// (§3.3.2: an MLP with hidden layers 256-256-128-64 feeding a dueling
// value/advantage head), but the layers and optimizers are generic.
//
//uerl:deterministic
package nn

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/mathx"
)

// Config describes a feed-forward network.
type Config struct {
	// Inputs is the input dimension.
	Inputs int
	// Hidden lists the hidden layer widths, e.g. {256, 256, 128, 64}.
	Hidden []int
	// Outputs is the number of outputs (Q-values, one per action).
	Outputs int
	// Dueling selects the dueling architecture: the last hidden layer feeds
	// separate value and advantage streams recombined as
	// Q(s,a) = V(s) + A(s,a) - mean_a' A(s,a').
	Dueling bool
	// Seed seeds weight initialization.
	Seed int64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Inputs <= 0 {
		return fmt.Errorf("nn: Inputs must be positive, got %d", c.Inputs)
	}
	if c.Outputs <= 0 {
		return fmt.Errorf("nn: Outputs must be positive, got %d", c.Outputs)
	}
	for i, h := range c.Hidden {
		if h <= 0 {
			return fmt.Errorf("nn: Hidden[%d] must be positive, got %d", i, h)
		}
	}
	return nil
}

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	W []float64 // values
	G []float64 // accumulated gradient
}

// dense is one fully connected layer: y = W x + b, with W stored row-major
// (out x in).
type dense struct {
	in, out int
	w, b    *Param
}

func newDense(in, out int, rng *mathx.RNG) *dense {
	d := &dense{
		in:  in,
		out: out,
		w:   &Param{W: make([]float64, in*out), G: make([]float64, in*out)},
		b:   &Param{W: make([]float64, out), G: make([]float64, out)},
	}
	// He initialization, appropriate for ReLU units.
	std := math.Sqrt(2.0 / float64(in))
	for i := range d.w.W {
		d.w.W[i] = rng.NormFloat64() * std
	}
	return d
}

// dot computes the inner product of a and b (len(b) >= len(a)) with a
// 4-lane unrolled accumulation. Every forward pass — single-sample and
// batched — funnels through this kernel (or through dot2, which computes
// each row with the identical lane structure), so all paths produce
// bit-identical outputs.
//
//uerl:hotpath
func dot(a, b []float64) float64 {
	b = b[:len(a)] // one bounds check up front
	var s0, s1, s2, s3 float64
	n4 := len(a) &^ 3
	for i := 0; i < n4; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for i := n4; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// dot2 computes the inner products of two weight rows against one input,
// streaming x once. Each row accumulates in exactly dot's lane structure
// (its own four accumulators, combined (s0+s1)+(s2+s3)), so
// dot2(a, b, x) ≡ (dot(a, x), dot(b, x)) bit for bit — this is the
// register-blocked kernel behind the batched forward pass.
//
//uerl:hotpath
func dot2(a, b, x []float64) (float64, float64) {
	x = x[:len(a)]
	b = b[:len(a)]
	var a0, a1, a2, a3 float64
	var b0, b1, b2, b3 float64
	n4 := len(x) &^ 3
	for i := 0; i < n4; i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		a0 += a[i] * x0
		a1 += a[i+1] * x1
		a2 += a[i+2] * x2
		a3 += a[i+3] * x3
		b0 += b[i] * x0
		b1 += b[i+1] * x1
		b2 += b[i+2] * x2
		b3 += b[i+3] * x3
	}
	for i := n4; i < len(x); i++ {
		a0 += a[i] * x[i]
		b0 += b[i] * x[i]
	}
	return (a0 + a1) + (a2 + a3), (b0 + b1) + (b2 + b3)
}

// axpy2 accumulates y += a*xa followed by y += b*xb, as two separate
// per-element statements so each element sees exactly the rounding
// sequence of axpy(a, xa, y); axpy(b, xb, y) — the blocked form used by
// the batched input-gradient pass to stream y once per two weight rows.
//
//uerl:hotpath
func axpy2(a float64, xa []float64, b float64, xb, y []float64) {
	y = y[:len(xa)]
	xb = xb[:len(xa)]
	n4 := len(xa) &^ 3
	if useAsm && n4 >= 8 {
		// Bit-identical to the scalar loop below (element-wise, unfused
		// multiply and add, same per-element order).
		axpy2AVX(a, &xa[0], b, &xb[0], &y[0], n4)
		for i := n4; i < len(xa); i++ {
			y[i] += a * xa[i]
			y[i] += b * xb[i]
		}
		return
	}
	for i := 0; i < n4; i += 4 {
		y[i] += a * xa[i]
		y[i] += b * xb[i]
		y[i+1] += a * xa[i+1]
		y[i+1] += b * xb[i+1]
		y[i+2] += a * xa[i+2]
		y[i+2] += b * xb[i+2]
		y[i+3] += a * xa[i+3]
		y[i+3] += b * xb[i+3]
	}
	for i := n4; i < len(xa); i++ {
		y[i] += a * xa[i]
		y[i] += b * xb[i]
	}
}

// axpy accumulates y += alpha*x. Shared by the serial and batched backward
// passes so gradient accumulation is bit-identical between them.
//
//uerl:hotpath
func axpy(alpha float64, x, y []float64) {
	y = y[:len(x)] // one bounds check up front
	n4 := len(x) &^ 3
	if useAsm && n4 >= 8 {
		// Bit-identical to the scalar loop below (element-wise, unfused
		// multiply and add).
		axpyAVX(alpha, &x[0], &y[0], n4)
		for i := n4; i < len(x); i++ {
			y[i] += alpha * x[i]
		}
		return
	}
	for i := 0; i < n4; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for i := n4; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

//uerl:hotpath
func (d *dense) forward(x, y []float64) {
	for o := 0; o < d.out; o++ {
		row := d.w.W[o*d.in : (o+1)*d.in]
		y[o] = d.b.W[o] + dot(row, x)
	}
}

// backward accumulates gradients given the layer input x and upstream
// gradient dy, and writes the input gradient into dx (which may be nil for
// the first layer).
//
//uerl:hotpath
func (d *dense) backward(x, dy, dx []float64) {
	for o := 0; o < d.out; o++ {
		g := dy[o]
		if g == 0 {
			continue
		}
		axpy(g, x, d.w.G[o*d.in:(o+1)*d.in])
		d.b.G[o] += g
	}
	if dx != nil {
		for i := range dx {
			dx[i] = 0
		}
		for o := 0; o < d.out; o++ {
			g := dy[o]
			if g == 0 {
				continue
			}
			axpy(g, d.w.W[o*d.in:(o+1)*d.in], dx)
		}
	}
}

// Network is a dense feed-forward network with ReLU hidden activations and
// an optional dueling output head. Networks are not safe for concurrent
// mutation; training code must own the network. Forward is safe to call
// concurrently only on distinct Scratch values via ForwardInto.
type Network struct {
	cfg    Config
	hidden []*dense
	// Non-dueling output layer.
	out *dense
	// Dueling heads from the last hidden layer.
	value, adv *dense
	// params caches the stable parameter order so the per-train-step
	// Params calls (ZeroGrad, gradient clip, optimizer) allocate nothing.
	params []*Param
	// gen counts weight mutations; fast holds the KernelFast zero-padded
	// weight image, rebuilt lazily whenever gen moves past the generation
	// it was built at (see fast.go).
	gen  uint64
	fast *fastWeights
	// shadowOf is non-nil on gradient shadows (GradShadow): shadows share
	// the owner's weight slices and padded image but carry private
	// gradient accumulators.
	shadowOf *Network
}

// New builds a network from cfg, panicking on invalid configuration (the
// configuration is developer-supplied, never user data).
func New(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := mathx.NewRNG(cfg.Seed)
	n := &Network{cfg: cfg, gen: 1}
	prev := cfg.Inputs
	for _, h := range cfg.Hidden {
		n.hidden = append(n.hidden, newDense(prev, h, rng))
		prev = h
	}
	if cfg.Dueling {
		n.value = newDense(prev, 1, rng)
		n.adv = newDense(prev, cfg.Outputs, rng)
	} else {
		n.out = newDense(prev, cfg.Outputs, rng)
	}
	for _, d := range n.hidden {
		n.params = append(n.params, d.w, d.b)
	}
	if cfg.Dueling {
		n.params = append(n.params, n.value.w, n.value.b, n.adv.w, n.adv.b)
	} else {
		n.params = append(n.params, n.out.w, n.out.b)
	}
	return n
}

// Config returns the configuration the network was built with.
func (n *Network) Config() Config { return n.cfg }

// Params returns all trainable parameters in a stable order. The slice is
// cached and owned by the network; callers must not append to or reorder
// it.
func (n *Network) Params() []*Param { return n.params }

// ZeroGrad clears all accumulated gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		for i := range p.G {
			p.G[i] = 0
		}
	}
}

// Scratch holds per-forward intermediate activations so that forward and
// backward passes allocate nothing in steady state.
type Scratch struct {
	// acts[0] is the input; acts[i+1] is the post-activation output of
	// hidden layer i; the final entries hold head outputs.
	acts [][]float64
	// pre[i] is the pre-activation output of hidden layer i.
	pre   [][]float64
	vOut  []float64
	aOut  []float64
	q     []float64
	dA    []float64
	dPrev []float64
	dCur  []float64
}

// NewScratch allocates scratch space sized for n.
func (n *Network) NewScratch() *Scratch {
	s := &Scratch{}
	s.acts = append(s.acts, make([]float64, n.cfg.Inputs))
	maxw := n.cfg.Inputs
	for _, d := range n.hidden {
		s.pre = append(s.pre, make([]float64, d.out))
		s.acts = append(s.acts, make([]float64, d.out))
		if d.out > maxw {
			maxw = d.out
		}
	}
	if n.cfg.Outputs > maxw {
		maxw = n.cfg.Outputs
	}
	s.vOut = make([]float64, 1)
	s.aOut = make([]float64, n.cfg.Outputs)
	s.q = make([]float64, n.cfg.Outputs)
	s.dA = make([]float64, n.cfg.Outputs)
	s.dPrev = make([]float64, maxw)
	s.dCur = make([]float64, maxw)
	return s
}

// Forward computes Q-values for input x, allocating a fresh output slice.
// For hot paths use ForwardInto with a reused Scratch.
func (n *Network) Forward(x []float64) []float64 {
	s := n.NewScratch()
	q := n.ForwardInto(s, x)
	out := make([]float64, len(q))
	copy(out, q)
	return out
}

// ForwardInto runs a forward pass using s for intermediates and returns the
// output slice owned by s (valid until the next ForwardInto on s).
//
//uerl:hotpath
func (n *Network) ForwardInto(s *Scratch, x []float64) []float64 {
	if len(x) != n.cfg.Inputs {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), n.cfg.Inputs))
	}
	copy(s.acts[0], x)
	cur := s.acts[0]
	for i, d := range n.hidden {
		d.forward(cur, s.pre[i])
		relu(s.pre[i], s.acts[i+1])
		cur = s.acts[i+1]
	}
	if n.cfg.Dueling {
		n.value.forward(cur, s.vOut)
		n.adv.forward(cur, s.aOut)
		meanA := mathx.Mean(s.aOut)
		for i := range s.q {
			s.q[i] = s.vOut[0] + s.aOut[i] - meanA
		}
	} else {
		n.out.forward(cur, s.q)
	}
	return s.q
}

// Backward accumulates parameter gradients for the most recent ForwardInto
// on s, given dLoss/dOutput in dOut. It must be called with the same Scratch
// used for the forward pass, before any further forward passes on it.
//
//uerl:hotpath
func (n *Network) Backward(s *Scratch, dOut []float64) {
	last := len(n.hidden) // index of last activation in s.acts
	lastAct := s.acts[last]
	nh := len(n.hidden)
	width := n.cfg.Inputs
	if nh > 0 {
		width = n.hidden[nh-1].out
	}
	dHidden := s.dCur[:width]
	if n.cfg.Dueling {
		// Q_i = V + A_i - mean(A). dV = sum_i dQ_i; dA_j = dQ_j - mean(dQ).
		sum := 0.0
		for _, g := range dOut {
			sum += g
		}
		meanG := sum / float64(len(dOut))
		for i := range s.dA {
			s.dA[i] = dOut[i] - meanG
		}
		// dv is a stack array: a []float64{sum} literal here was the one
		// allocation left on the serial dueling backward path (uerlvet).
		var dv [1]float64
		dv[0] = sum
		// Both heads contribute to the last hidden gradient.
		n.value.backward(lastAct, dv[:], dHidden)
		tmp := s.dPrev[:width]
		n.adv.backward(lastAct, s.dA, tmp)
		for i := range dHidden {
			dHidden[i] += tmp[i]
		}
	} else {
		n.out.backward(lastAct, dOut, dHidden)
	}
	// Walk hidden layers in reverse.
	dy := dHidden
	for i := nh - 1; i >= 0; i-- {
		// Apply ReLU derivative at layer i's pre-activation.
		for j := range dy {
			if s.pre[i][j] <= 0 {
				dy[j] = 0
			}
		}
		var dx []float64
		if i > 0 {
			dx = s.dPrev[:n.hidden[i-1].out]
		} else {
			dx = nil
		}
		n.hidden[i].backward(s.acts[i], dy, dx)
		if dx != nil {
			// Swap buffers for next iteration.
			copy(s.dCur[:len(dx)], dx)
			dy = s.dCur[:len(dx)]
		}
	}
}

//uerl:hotpath
func relu(pre, post []float64) {
	for i, v := range pre {
		if v > 0 {
			post[i] = v
		} else {
			post[i] = 0
		}
	}
}

// Clone returns a deep copy with identical weights and zeroed gradients.
func (n *Network) Clone() *Network {
	c := New(n.cfg)
	c.CopyFrom(n)
	return c
}

// CopyFrom copies src's weights into n (a hard target-network sync). The
// architectures must match.
func (n *Network) CopyFrom(src *Network) {
	dst := n.Params()
	from := src.Params()
	if len(dst) != len(from) {
		panic("nn: CopyFrom architecture mismatch")
	}
	for i, p := range dst {
		if len(p.W) != len(from[i].W) {
			panic("nn: CopyFrom parameter shape mismatch")
		}
		copy(p.W, from[i].W)
	}
	n.InvalidateFast()
}

// SoftUpdate blends src into n: w <- (1-tau) w + tau src.w. tau=1 is a hard
// sync.
func (n *Network) SoftUpdate(src *Network, tau float64) {
	dst := n.Params()
	from := src.Params()
	if len(dst) != len(from) {
		panic("nn: SoftUpdate architecture mismatch")
	}
	for i, p := range dst {
		for j := range p.W {
			p.W[j] = (1-tau)*p.W[j] + tau*from[i].W[j]
		}
	}
	n.InvalidateFast()
}

// snapshot is the JSON serialization form.
type snapshot struct {
	Config Config      `json:"config"`
	Params [][]float64 `json:"params"`
}

// MarshalJSON serializes the architecture and weights.
func (n *Network) MarshalJSON() ([]byte, error) {
	snap := snapshot{Config: n.cfg}
	for _, p := range n.Params() {
		w := make([]float64, len(p.W))
		copy(w, p.W)
		snap.Params = append(snap.Params, w)
	}
	return json.Marshal(snap)
}

// UnmarshalJSON restores a network serialized by MarshalJSON.
func (n *Network) UnmarshalJSON(data []byte) error {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return err
	}
	if err := snap.Config.Validate(); err != nil {
		return err
	}
	restored := New(snap.Config)
	ps := restored.Params()
	if len(ps) != len(snap.Params) {
		return errors.New("nn: serialized parameter count mismatch")
	}
	for i, p := range ps {
		if len(p.W) != len(snap.Params[i]) {
			return fmt.Errorf("nn: serialized parameter %d has %d values, want %d",
				i, len(snap.Params[i]), len(p.W))
		}
		copy(p.W, snap.Params[i])
	}
	*n = *restored
	return nil
}

// NumParams returns the total number of trainable scalars.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W)
	}
	return total
}
