package nn

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

// batchInputs builds nb deterministic pseudo-random input vectors.
func batchInputs(rng *mathx.RNG, nb, dim int) []float64 {
	xs := make([]float64, nb*dim)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

// TestForwardBatchMatchesSingle: ForwardBatchInto must agree with N
// independent ForwardInto calls to within 1e-12 (the shared kernels make
// them bit-identical, so the tolerance is exact-zero in practice).
func TestForwardBatchMatchesSingle(t *testing.T) {
	for _, cfg := range []Config{
		{Inputs: 15, Hidden: []int{32, 16}, Outputs: 2, Dueling: true, Seed: 3},
		{Inputs: 15, Hidden: []int{64, 32}, Outputs: 2, Dueling: false, Seed: 4},
		{Inputs: 7, Hidden: nil, Outputs: 3, Dueling: true, Seed: 5},
		{Inputs: 9, Hidden: []int{8}, Outputs: 4, Dueling: false, Seed: 6},
	} {
		net := New(cfg)
		const nb = 13
		rng := mathx.NewRNG(99)
		xs := batchInputs(rng, nb, cfg.Inputs)

		bs := net.NewBatchScratch(nb)
		got := net.ForwardBatchInto(bs, xs, nb)

		scr := net.NewScratch()
		for s := 0; s < nb; s++ {
			want := net.ForwardInto(scr, xs[s*cfg.Inputs:(s+1)*cfg.Inputs])
			for o, w := range want {
				if d := math.Abs(got[s*cfg.Outputs+o] - w); d > 1e-12 {
					t.Fatalf("cfg %+v sample %d output %d: batch %v vs single %v (|Δ|=%g)",
						cfg, s, o, got[s*cfg.Outputs+o], w, d)
				}
			}
		}
	}
}

// TestBackwardBatchMatchesSerial: one BackwardBatch over a minibatch must
// leave gradients identical (bit for bit) to the serial per-sample
// forward+backward accumulation loop.
func TestBackwardBatchMatchesSerial(t *testing.T) {
	for _, cfg := range []Config{
		{Inputs: 15, Hidden: []int{32, 16}, Outputs: 2, Dueling: true, Seed: 7},
		{Inputs: 15, Hidden: []int{24, 12}, Outputs: 2, Dueling: false, Seed: 8},
		{Inputs: 6, Hidden: nil, Outputs: 3, Dueling: true, Seed: 9},
	} {
		const nb = 11
		rng := mathx.NewRNG(123)
		xs := batchInputs(rng, nb, cfg.Inputs)
		dOut := batchInputs(rng, nb, cfg.Outputs)

		serial := New(cfg)
		batched := New(cfg)

		// Serial reference: per-sample forward + backward accumulation.
		scr := serial.NewScratch()
		serial.ZeroGrad()
		for s := 0; s < nb; s++ {
			serial.ForwardInto(scr, xs[s*cfg.Inputs:(s+1)*cfg.Inputs])
			serial.Backward(scr, dOut[s*cfg.Outputs:(s+1)*cfg.Outputs])
		}

		bs := batched.NewBatchScratch(nb)
		batched.ZeroGrad()
		batched.ForwardBatchInto(bs, xs, nb)
		batched.BackwardBatch(bs, dOut, nb)

		sp, bp := serial.Params(), batched.Params()
		for pi := range sp {
			for gi := range sp[pi].G {
				if sp[pi].G[gi] != bp[pi].G[gi] {
					t.Fatalf("cfg %+v param %d grad %d: batched %v != serial %v",
						cfg, pi, gi, bp[pi].G[gi], sp[pi].G[gi])
				}
			}
		}
	}
}

// TestForwardBatchPartial: a scratch sized for B serves any smaller batch.
func TestForwardBatchPartial(t *testing.T) {
	cfg := Config{Inputs: 5, Hidden: []int{8}, Outputs: 2, Dueling: true, Seed: 2}
	net := New(cfg)
	bs := net.NewBatchScratch(32)
	rng := mathx.NewRNG(5)
	xs := batchInputs(rng, 3, cfg.Inputs)
	got := net.ForwardBatchInto(bs, xs, 3)
	if len(got) != 3*cfg.Outputs {
		t.Fatalf("partial batch output len %d, want %d", len(got), 3*cfg.Outputs)
	}
	scr := net.NewScratch()
	want := net.ForwardInto(scr, xs[:cfg.Inputs])
	for o := range want {
		if got[o] != want[o] {
			t.Fatalf("partial batch output %d: %v != %v", o, got[o], want[o])
		}
	}
}

// TestForwardBatchZeroAlloc: steady-state batched forward+backward must not
// allocate.
func TestForwardBatchZeroAlloc(t *testing.T) {
	cfg := Config{Inputs: 15, Hidden: []int{32, 16}, Outputs: 2, Dueling: true, Seed: 1}
	net := New(cfg)
	const nb = 8
	bs := net.NewBatchScratch(nb)
	rng := mathx.NewRNG(7)
	xs := batchInputs(rng, nb, cfg.Inputs)
	dOut := batchInputs(rng, nb, cfg.Outputs)
	allocs := testing.AllocsPerRun(50, func() {
		net.ForwardBatchInto(bs, xs, nb)
		net.BackwardBatch(bs, dOut, nb)
	})
	if allocs != 0 {
		t.Fatalf("batched forward+backward allocates %v times per run, want 0", allocs)
	}
}
