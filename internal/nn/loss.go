package nn

import "math"

// HuberLoss returns the Huber loss and its derivative d(loss)/d(pred) for a
// single prediction/target pair with transition point delta. The Huber loss
// is the standard choice for DQN TD errors because it bounds the gradient of
// outliers, which matters under the heavy-tailed UE-cost rewards of the
// mitigation MDP.
func HuberLoss(pred, target, delta float64) (loss, dPred float64) {
	diff := pred - target
	ad := math.Abs(diff)
	if ad <= delta {
		return 0.5 * diff * diff, diff
	}
	return delta * (ad - 0.5*delta), delta * sign(diff)
}

// SquaredLoss returns 0.5*(pred-target)^2 and its derivative.
func SquaredLoss(pred, target float64) (loss, dPred float64) {
	diff := pred - target
	return 0.5 * diff * diff, diff
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	if x > 0 {
		return 1
	}
	return 0
}
