package nn

import "math"

// Kernel/stream versions. A kernel version names a complete, pinned
// arithmetic stream: the exact sequence of floating-point operations (and
// therefore roundings) a training run performs. Changing any rounding —
// fusing a multiply-add, reassociating a reduction, precomputing a
// reciprocal — changes trained weights bit-for-bit, so every such change
// lands behind a new major version while the previous stream stays
// available as the pinned reference.
//
// Results are deterministic at every version; the versions differ only in
// which (equally valid) rounding sequence they pin.
const (
	// KernelReference is the original serial stream: unfused multiply-adds,
	// dot's 4-lane reduction, Adam with per-element divides, math/rand
	// sources. It is the bit-exact reference all earlier artifacts were
	// trained under, and stays byte-identical on every platform (the AVX2
	// element-wise kernels used opportunistically under it are bit-equal to
	// the scalar loops — see the parity tests).
	KernelReference = 1
	// KernelFast is the throughput stream: FMA row-blocked forward GEMM
	// over zero-padded weights, FMA gradient accumulation, Adam with
	// precomputed reciprocal bias corrections, the O(copy)-forkable PCG RNG
	// source, fixed-size minibatch chunking with in-order gradient
	// reduction, and vectorized environment stepping. It is deterministic
	// for every worker count and GOMAXPROCS, and bit-identical between the
	// AVX2 kernels and their pure-Go math.FMA fallbacks, but it is a
	// different rounding stream than KernelReference.
	KernelFast = 2
)

// ValidKernel reports whether k names a known kernel version.
func ValidKernel(k int) bool { return k == KernelReference || k == KernelFast }

// useAsm selects the AVX2/FMA assembly kernels. It is set once at init on
// amd64 CPUs with AVX2+FMA (and OS AVX state support) and is a variable
// only so parity tests can force the pure-Go fallbacks.
var useAsm = haveAVX2FMA

// pad4 rounds a row width up to the 4-lane vector width the padded kernels
// process. Padded lanes hold zeros, which are exact no-ops under FMA
// accumulation from a +0 start (fma(0, 0, acc) == acc bit-for-bit, and acc
// can never become -0 because every partial sum starts at +0).
func pad4(n int) int { return (n + 3) &^ 3 }

// fmaAxpy accumulates y[i] = fma(alpha, x[i], y[i]) — the KernelFast
// gradient-accumulation kernel. Element-wise, so the vector form is
// bit-identical to this scalar definition.
//
//uerl:hotpath
func fmaAxpy(alpha float64, x, y []float64) {
	y = y[:len(x)]
	if useAsm && len(x) >= 4 {
		n4 := len(x) &^ 3
		axpyFMAAVX(alpha, &x[0], &y[0], n4)
		for i := n4; i < len(x); i++ {
			y[i] = math.FMA(alpha, x[i], y[i])
		}
		return
	}
	for i := range x {
		y[i] = math.FMA(alpha, x[i], y[i])
	}
}

// fmaAxpy2 accumulates y = fma(b, xb, fma(a, xa, y)) element-wise: the
// KernelFast blocked form of two sequential fmaAxpy calls.
//
//uerl:hotpath
func fmaAxpy2(a float64, xa []float64, b float64, xb, y []float64) {
	y = y[:len(xa)]
	xb = xb[:len(xa)]
	if useAsm && len(xa) >= 4 {
		n4 := len(xa) &^ 3
		axpy2FMAAVX(a, &xa[0], b, &xb[0], &y[0], n4)
		for i := n4; i < len(xa); i++ {
			y[i] = math.FMA(b, xb[i], math.FMA(a, xa[i], y[i]))
		}
		return
	}
	for i := range xa {
		y[i] = math.FMA(b, xb[i], math.FMA(a, xa[i], y[i]))
	}
}

// fwdLayerFast computes the KernelFast forward GEMM for one layer over nb
// samples: y[s*outP+o] = relu?(bias[o] + Σ_k w[o*inP+k]*x[s*inP+k]) with
// the sum accumulated in four independent FMA lanes combined as
// (l0+l1)+(l2+l3). w rows and x rows are zero-padded to inP (a multiple of
// 4), so the kernel has no scalar tail. The ReLU is max(sum, +0): non-
// positive sums (and NaN) become +0, matching the VMAXSD semantics of the
// assembly exactly.
//
// The assembly path and this Go fallback share the identical lane
// structure, so outputs are bit-identical with or without AVX2.
//
//uerl:hotpath
func fwdLayerFast(w, bias, x, y []float64, nb, inP, out, outP int, relu bool) {
	if useAsm {
		r := 0
		if relu {
			r = 1
		}
		gemmFMAAVX(&w[0], &x[0], &y[0], &bias[0], nb, inP, out, outP, r)
		return
	}
	for s := 0; s < nb; s++ {
		xrow := x[s*inP : s*inP+inP]
		yrow := y[s*outP:]
		for o := 0; o < out; o++ {
			row := w[o*inP : o*inP+inP]
			var l0, l1, l2, l3 float64
			for k := 0; k < inP; k += 4 {
				l0 = math.FMA(row[k], xrow[k], l0)
				l1 = math.FMA(row[k+1], xrow[k+1], l1)
				l2 = math.FMA(row[k+2], xrow[k+2], l2)
				l3 = math.FMA(row[k+3], xrow[k+3], l3)
			}
			sum := ((l0 + l1) + (l2 + l3)) + bias[o]
			if relu && !(sum > 0) {
				sum = 0
			}
			yrow[o] = sum
		}
	}
}

// AccumulateGrads adds src's accumulated gradients into dst's, element-wise
// (dst.G[i] += 1*src.G[i], which is exact). It is the in-order reduction
// step of chunked data-parallel training: the caller adds chunk gradients
// in ascending chunk index, so the reduced gradient is independent of which
// worker computed which chunk.
func AccumulateGrads(dst, src []*Param) {
	if len(dst) != len(src) {
		panic("nn: AccumulateGrads parameter count mismatch")
	}
	for i, p := range dst {
		axpy(1, src[i].G, p.G)
	}
}
