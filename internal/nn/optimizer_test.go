package nn

import (
	"math"
	"testing"
)

// quadratic sets up a single-parameter problem minimizing 0.5*(w-3)^2.
func quadratic() *Param {
	return &Param{W: []float64{0}, G: []float64{0}}
}

func optimize(t *testing.T, opt Optimizer, steps int) float64 {
	t.Helper()
	p := quadratic()
	ps := []*Param{p}
	for i := 0; i < steps; i++ {
		p.G[0] = p.W[0] - 3
		opt.Step(ps)
		p.G[0] = 0
	}
	return p.W[0]
}

func TestSGDConverges(t *testing.T) {
	w := optimize(t, &SGD{LR: 0.1}, 200)
	if math.Abs(w-3) > 1e-6 {
		t.Fatalf("SGD converged to %v", w)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	w := optimize(t, &SGD{LR: 0.05, Momentum: 0.9}, 400)
	if math.Abs(w-3) > 1e-4 {
		t.Fatalf("SGD+momentum converged to %v", w)
	}
}

func TestRMSPropConverges(t *testing.T) {
	w := optimize(t, &RMSProp{LR: 0.05}, 2000)
	if math.Abs(w-3) > 1e-2 {
		t.Fatalf("RMSProp converged to %v", w)
	}
}

func TestAdamConverges(t *testing.T) {
	w := optimize(t, &Adam{LR: 0.05}, 2000)
	if math.Abs(w-3) > 1e-3 {
		t.Fatalf("Adam converged to %v", w)
	}
}

func TestAdamDefaults(t *testing.T) {
	// Zero-value hyperparameters must fall back to standard defaults rather
	// than producing NaNs.
	w := optimize(t, &Adam{LR: 0.1}, 500)
	if math.IsNaN(w) {
		t.Fatal("Adam produced NaN with default betas")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := &Param{W: []float64{0, 0}, G: []float64{3, 4}}
	norm := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v, want 5", norm)
	}
	got := math.Sqrt(p.G[0]*p.G[0] + p.G[1]*p.G[1])
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("post-clip norm %v, want 1", got)
	}
	// Below the threshold, gradients are untouched.
	p2 := &Param{W: []float64{0}, G: []float64{0.5}}
	ClipGradNorm([]*Param{p2}, 1)
	if p2.G[0] != 0.5 {
		t.Fatal("clip modified small gradient")
	}
	// maxNorm <= 0 disables clipping.
	p3 := &Param{W: []float64{0}, G: []float64{100}}
	ClipGradNorm([]*Param{p3}, 0)
	if p3.G[0] != 100 {
		t.Fatal("maxNorm=0 should disable clipping")
	}
}

func TestHuberLoss(t *testing.T) {
	// Inside the quadratic region.
	l, d := HuberLoss(1, 0.5, 1)
	if math.Abs(l-0.125) > 1e-12 || math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("huber quad: l=%v d=%v", l, d)
	}
	// Outside: linear with bounded derivative.
	l, d = HuberLoss(5, 0, 1)
	if math.Abs(l-4.5) > 1e-12 || d != 1 {
		t.Fatalf("huber lin: l=%v d=%v", l, d)
	}
	l, d = HuberLoss(-5, 0, 1)
	if math.Abs(l-4.5) > 1e-12 || d != -1 {
		t.Fatalf("huber lin neg: l=%v d=%v", l, d)
	}
	// Zero error.
	l, d = HuberLoss(2, 2, 1)
	if l != 0 || d != 0 {
		t.Fatalf("huber zero: l=%v d=%v", l, d)
	}
}

func TestHuberDerivativeMatchesNumeric(t *testing.T) {
	const h = 1e-7
	for _, pred := range []float64{-3, -0.4, 0, 0.4, 3} {
		lUp, _ := HuberLoss(pred+h, 0, 1)
		lDown, _ := HuberLoss(pred-h, 0, 1)
		num := (lUp - lDown) / (2 * h)
		_, d := HuberLoss(pred, 0, 1)
		if math.Abs(num-d) > 1e-5 {
			t.Fatalf("pred=%v numeric %v analytic %v", pred, num, d)
		}
	}
}

func TestSquaredLoss(t *testing.T) {
	l, d := SquaredLoss(3, 1)
	if l != 2 || d != 2 {
		t.Fatalf("squared: l=%v d=%v", l, d)
	}
}
