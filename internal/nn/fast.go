package nn

import (
	"fmt"

	"repro/internal/mathx"
)

// fastLayer is one layer's KernelFast weight image: rows zero-padded from
// in to inP (a multiple of 4) so the FMA GEMM has no scalar tail. outP is
// the row stride of the layer's output in the padded activation buffers.
type fastLayer struct {
	w                  []float64 // out rows of inP values, pads zero
	in, inP, out, outP int
}

// fastWeights is a network's padded weight image, rebuilt lazily whenever
// the weights mutate (Network.gen moves past built). Bias vectors are read
// directly from the dense layers — they need no padding.
type fastWeights struct {
	built      uint64
	hidden     []fastLayer
	out        fastLayer // non-dueling head
	value, adv fastLayer // dueling heads
}

func packLayer(fl *fastLayer, d *dense, outP int) {
	fl.in, fl.inP, fl.out, fl.outP = d.in, pad4(d.in), d.out, outP
	if fl.w == nil {
		// Pads are written exactly once (zero at allocation) and never
		// touched again: packing copies only the real lanes.
		fl.w = make([]float64, fl.out*fl.inP)
	}
	if fl.inP == fl.in {
		copy(fl.w, d.w.W)
		return
	}
	for o := 0; o < fl.out; o++ {
		copy(fl.w[o*fl.inP:o*fl.inP+fl.in], d.w.W[o*fl.in:(o+1)*fl.in])
	}
}

// ensureFast returns the up-to-date padded weight image, rebuilding it if
// the weights changed since the last build. Shadows resolve to their
// owner's image. Not safe against concurrent mutation: parallel readers
// must prewarm via EnsureFast before fanning out (the chunked trainer
// does), after which concurrent calls are read-only.
func (n *Network) ensureFast() *fastWeights {
	if n.shadowOf != nil {
		return n.shadowOf.ensureFast()
	}
	if n.fast == nil {
		n.fast = &fastWeights{hidden: make([]fastLayer, len(n.hidden))}
	}
	fw := n.fast
	if fw.built == n.gen {
		return fw
	}
	for i, d := range n.hidden {
		packLayer(&fw.hidden[i], d, pad4(d.out))
	}
	if n.cfg.Dueling {
		packLayer(&fw.value, n.value, 1)
		packLayer(&fw.adv, n.adv, n.cfg.Outputs)
	} else {
		packLayer(&fw.out, n.out, n.cfg.Outputs)
	}
	fw.built = n.gen
	return fw
}

// EnsureFast prewarms the KernelFast weight image so subsequent concurrent
// forward passes (the chunked trainer's workers) never rebuild it.
func (n *Network) EnsureFast() { n.ensureFast() }

// InvalidateFast marks the weights as mutated so the next KernelFast use
// rebuilds the padded image. Callers that mutate Param.W directly (the
// optimizer step) must call it; CopyFrom/SoftUpdate/UnmarshalJSON handle it
// themselves.
func (n *Network) InvalidateFast() {
	if n.shadowOf != nil {
		n.shadowOf.InvalidateFast()
		return
	}
	n.gen++
}

// GradShadow returns a network that shares n's weights (and padded weight
// image) but owns private gradient accumulators. The chunked data-parallel
// trainer gives each minibatch chunk a shadow so workers accumulate
// gradients without contention, then reduces the shadows' gradients into
// the master in chunk-index order. Shadows must not outlive weight shape
// changes on the owner, and BackwardBatch on a shadow accumulates into the
// shadow's own Params().
func (n *Network) GradShadow() *Network {
	base := n
	if n.shadowOf != nil {
		base = n.shadowOf
	}
	c := &Network{cfg: base.cfg, gen: 1, shadowOf: base}
	shadow := func(d *dense) *dense {
		return &dense{
			in: d.in, out: d.out,
			w: &Param{W: d.w.W, G: make([]float64, len(d.w.G))},
			b: &Param{W: d.b.W, G: make([]float64, len(d.b.G))},
		}
	}
	for _, d := range base.hidden {
		c.hidden = append(c.hidden, shadow(d))
	}
	if base.cfg.Dueling {
		c.value = shadow(base.value)
		c.adv = shadow(base.adv)
	} else {
		c.out = shadow(base.out)
	}
	for _, d := range c.hidden {
		c.params = append(c.params, d.w, d.b)
	}
	if base.cfg.Dueling {
		c.params = append(c.params, c.value.w, c.value.b, c.adv.w, c.adv.b)
	} else {
		c.params = append(c.params, c.out.w, c.out.b)
	}
	return c
}

// forwardBatchFast is the KernelFast batched forward pass: per layer one
// padded FMA GEMM with fused ReLU, dueling combine identical to the
// reference path. Callers hold the contract of ForwardBatchInto.
//
//uerl:hotpath
func (n *Network) forwardBatchFast(s *BatchScratch, xs []float64, nb int) []float64 {
	fw := n.ensureFast()
	in, inP := n.cfg.Inputs, pad4(n.cfg.Inputs)
	if inP == in {
		copy(s.pacts[0][:nb*in], xs)
	} else {
		for b := 0; b < nb; b++ {
			copy(s.pacts[0][b*inP:b*inP+in], xs[b*in:(b+1)*in])
		}
	}
	cur := s.pacts[0]
	for i := range fw.hidden {
		fl := &fw.hidden[i]
		fwdLayerFast(fl.w, n.hidden[i].b.W, cur, s.pacts[i+1], nb, fl.inP, fl.out, fl.outP, true)
		cur = s.pacts[i+1]
	}
	out := n.cfg.Outputs
	if n.cfg.Dueling {
		fwdLayerFast(fw.value.w, n.value.b.W, cur, s.vOut, nb, fw.value.inP, 1, 1, false)
		fwdLayerFast(fw.adv.w, n.adv.b.W, cur, s.aOut, nb, fw.adv.inP, out, out, false)
		for b := 0; b < nb; b++ {
			aRow := s.aOut[b*out : (b+1)*out]
			meanA := mathx.Mean(aRow)
			v := s.vOut[b]
			qRow := s.q[b*out : (b+1)*out]
			for i := range qRow {
				qRow[i] = v + aRow[i] - meanA
			}
		}
	} else {
		fwdLayerFast(fw.out.w, n.out.b.W, cur, s.q, nb, fw.out.inP, out, out, false)
	}
	return s.q[:nb*out]
}

// backLayerFast is the KernelFast analogue of backwardBatch for one layer:
// x rows live at padded stride inP (only the real in lanes are read),
// dy/dx at real strides, and accumulation uses single-rounded FMA kernels.
// Per-weight accumulation order is sample-ascending with every sample
// accumulated unconditionally — a zero upstream gradient contributes an
// exact ±0 FMA term, which leaves the accumulators (they start at +0 and a
// rounded sum is never -0) unchanged bit for bit while keeping both the
// assembly and fallback loops branch-free. Gradients are therefore
// chunk-layout-deterministic.
//
//uerl:hotpath
func backLayerFast(d *dense, x []float64, inP int, dy, dx []float64, nb int) {
	in, out := d.in, d.out
	if useAsm && in > 0 && out > 0 && nb > 0 {
		// Fused assembly path: bias gradients keep the scalar loop (same
		// sample order), weight and input gradients go to the register-
		// blocked kernels, which pin the identical per-element FMA sequence —
		// see the parity tests.
		for o := 0; o < out; o++ {
			gb := d.b.G[o]
			for s, di := 0, o; s < nb; s, di = s+1, di+out {
				gb += dy[di]
			}
			d.b.G[o] = gb
		}
		bgradFMAAVX(&d.w.G[0], &x[0], &dy[0], nb, in, inP, out)
		if dx != nil {
			// d.w.W rows are unpadded (stride in); only x rows carry the
			// inP padding, so the w-row stride here is in.
			dxFMAAVX(&dx[0], &d.w.W[0], &dy[0], nb, in, in, out)
		}
		return
	}
	for o := 0; o < out; o++ {
		grow := d.w.G[o*in : (o+1)*in]
		gb := d.b.G[o]
		di, xi := o, 0
		for s := 0; s < nb; s++ {
			g := dy[di]
			gb += g
			fmaAxpy(g, x[xi:xi+in], grow)
			di += out
			xi += inP
		}
		d.b.G[o] = gb
	}
	if dx != nil {
		xi := 0
		for s := 0; s < nb; s++ {
			dxs := dx[xi : xi+in]
			for i := range dxs {
				dxs[i] = 0
			}
			base := s * out
			var o int
			for o = 0; o+2 <= out; o += 2 {
				fmaAxpy2(dy[base+o], d.w.W[o*in:o*in+in], dy[base+o+1], d.w.W[o*in+in:o*in+2*in], dxs)
			}
			if o < out {
				fmaAxpy(dy[base+o], d.w.W[o*in:o*in+in], dxs)
			}
			xi += in
		}
	}
}

// backwardBatchFast mirrors BackwardBatch for the KernelFast stream: the
// activations (and therefore ReLU masks) come from the padded buffers of
// the preceding forwardBatchFast, while gradient buffers stay at real
// strides. The ReLU mask condition act <= 0 matches forward's max(sum, +0)
// exactly (+0 masks, positives pass).
//
//uerl:hotpath
func (n *Network) backwardBatchFast(s *BatchScratch, dOut []float64, nb int) {
	out := n.cfg.Outputs
	nh := len(n.hidden)
	width := n.cfg.Inputs
	if nh > 0 {
		width = n.hidden[nh-1].out
	}
	lastAct := s.pacts[nh]
	lastP := pad4(width)
	dHidden := s.dBufA[:nb*width]
	if n.cfg.Dueling {
		for b := 0; b < nb; b++ {
			row := dOut[b*out : (b+1)*out]
			sum := 0.0
			for _, g := range row {
				sum += g
			}
			meanG := sum / float64(out)
			for i, g := range row {
				s.dA[b*out+i] = g - meanG
			}
			s.dV[b] = sum
		}
		backLayerFast(n.value, lastAct, lastP, s.dV[:nb], dHidden, nb)
		tmp := s.dBufB[:nb*width]
		backLayerFast(n.adv, lastAct, lastP, s.dA[:nb*out], tmp, nb)
		if n := len(dHidden); useAsm && n > 0 && n%4 == 0 {
			// y += 1*x multiplies by exactly 1.0 before the add, so the
			// vector kernel is bit-identical to the scalar merge loop.
			axpyAVX(1, &tmp[0], &dHidden[0], n)
		} else {
			for i := range dHidden {
				dHidden[i] += tmp[i]
			}
		}
	} else {
		backLayerFast(n.out, lastAct, lastP, dOut, dHidden, nb)
	}
	dy := dHidden
	spare := s.dBufB
	for i := nh - 1; i >= 0; i-- {
		h := n.hidden[i]
		hP := pad4(h.out)
		pact := s.pacts[i+1]
		if useAsm && hP == h.out && nb > 0 {
			// Unpadded layer width: act and dy are stride-equal flat
			// arrays, so one branch-free compare-and-mask call covers the
			// whole batch (n = nb*h.out is a multiple of 4 since h.out is).
			reluMaskAVX(&dy[0], &pact[0], nb*h.out)
		} else {
			for b := 0; b < nb; b++ {
				actRow := pact[b*hP : b*hP+h.out]
				dyRow := dy[b*h.out : (b+1)*h.out]
				for j, a := range actRow {
					if a <= 0 {
						dyRow[j] = 0
					}
				}
			}
		}
		var dx []float64
		if i > 0 {
			dx = spare[:nb*h.in]
		}
		backLayerFast(h, s.pacts[i], pad4(h.in), dy, dx, nb)
		if dx != nil {
			spare = dy[:cap(dy)]
			dy = dx
		}
	}
}

// Kernel reports the kernel version the scratch was built for.
func (s *BatchScratch) Kernel() int { return s.kernel }

// NewBatchScratchKernel allocates batched scratch space for up to batch
// samples under the given kernel version. KernelReference scratches drive
// the original dot2-blocked path; KernelFast scratches add the zero-padded
// activation buffers the FMA GEMM consumes.
func (n *Network) NewBatchScratchKernel(batch, kernel int) *BatchScratch {
	if !ValidKernel(kernel) {
		panic(fmt.Sprintf("nn: unknown kernel version %d", kernel))
	}
	s := n.NewBatchScratch(batch)
	s.kernel = kernel
	if kernel == KernelFast {
		s.pacts = append(s.pacts, make([]float64, batch*pad4(n.cfg.Inputs)))
		for _, d := range n.hidden {
			s.pacts = append(s.pacts, make([]float64, batch*pad4(d.out)))
		}
	}
	return s
}
