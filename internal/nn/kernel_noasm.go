//go:build !amd64

package nn

// Non-amd64 builds always take the pure-Go kernels; results are
// bit-identical to the assembly because the fallbacks pin the same
// per-element operation order and math.FMA lane structure.
const haveAVX2FMA = false

func axpyAVX(alpha float64, x, y *float64, n int)    { panic("nn: no asm") }
func axpyFMAAVX(alpha float64, x, y *float64, n int) { panic("nn: no asm") }
func axpy2AVX(a float64, xa *float64, b float64, xb, y *float64, n int) {
	panic("nn: no asm")
}
func axpy2FMAAVX(a float64, xa *float64, b float64, xb, y *float64, n int) {
	panic("nn: no asm")
}
func adamAVX(w, grad, m, v *float64, n int, lr, b1, ob1, b2, ob2, eps, c1, c2 float64) {
	panic("nn: no asm")
}
func adamRecipAVX(w, grad, m, v *float64, n int, lr, b1, ob1, b2, ob2, eps, rc1, rc2 float64) {
	panic("nn: no asm")
}
func gemmFMAAVX(w, x, y, bias *float64, nb, inP, out, outP, relu int) { panic("nn: no asm") }
func reluMaskAVX(dy, act *float64, n int)                             { panic("nn: no asm") }
func bgradFMAAVX(grad, x, dy *float64, nb, in, inP, out int)          { panic("nn: no asm") }
func dxFMAAVX(dx, w, dy *float64, nb, in, inP, out int)               { panic("nn: no asm") }
