//go:build amd64

#include "textflag.h"

// AVX2/FMA kernels. Contracts shared by every routine here:
//   - n (or inP) is a positive multiple of 4; Go callers peel scalar tails.
//   - Element-wise routines are bit-identical to their scalar Go loops:
//     VMULPD/VADDPD/VSUBPD/VDIVPD/VSQRTPD and VFMADD231PD are IEEE-754
//     correctly rounded per lane, lanes are independent, and the per-element
//     operation order matches the Go source exactly.
//   - The GEMM reduces its four accumulator lanes as (l0+l1)+(l2+l3),
//     matching fwdLayerFast's fallback (and dot's historical lane shape).
// Plan9 operand order is reversed from Intel: the Intel destination is the
// LAST operand, and src2 (the one that may be memory) comes FIRST.

// func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpyAVX(alpha float64, x, y *float64, n int)
// y[i] = y[i] + alpha*x[i], multiply and add rounded separately (the
// KernelReference semantics of axpy's scalar loop).
TEXT ·axpyAVX(SB), NOSPLIT, $0-32
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX

axpy_loop:
	VMOVUPD (SI), Y1
	VMULPD  Y0, Y1, Y1       // alpha*x
	VADDPD  (DI), Y1, Y1     // y + alpha*x
	VMOVUPD Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $4, CX
	JNE     axpy_loop
	VZEROUPPER
	RET

// func axpyFMAAVX(alpha float64, x, y *float64, n int)
// y[i] = fma(alpha, x[i], y[i]) — the KernelFast accumulate.
TEXT ·axpyFMAAVX(SB), NOSPLIT, $0-32
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX

axpyfma_loop:
	VMOVUPD     (DI), Y1
	VFMADD231PD (SI), Y0, Y1 // y += alpha*x, single rounding
	VMOVUPD     Y1, (DI)
	ADDQ        $32, SI
	ADDQ        $32, DI
	SUBQ        $4, CX
	JNE         axpyfma_loop
	VZEROUPPER
	RET

// func axpy2AVX(a float64, xa *float64, b float64, xb, y *float64, n int)
// y[i] += a*xa[i]; y[i] += b*xb[i] — two unfused accumulates per element in
// that order (KernelReference axpy2 semantics).
TEXT ·axpy2AVX(SB), NOSPLIT, $0-48
	VBROADCASTSD a+0(FP), Y0
	VBROADCASTSD b+16(FP), Y1
	MOVQ xa+8(FP), R8
	MOVQ xb+24(FP), R9
	MOVQ y+32(FP), DI
	MOVQ n+40(FP), CX

axpy2_loop:
	VMOVUPD (R8), Y2
	VMULPD  Y0, Y2, Y2       // a*xa
	VADDPD  (DI), Y2, Y2     // t = y + a*xa
	VMOVUPD (R9), Y3
	VMULPD  Y1, Y3, Y3       // b*xb
	VADDPD  Y2, Y3, Y3       // t + b*xb
	VMOVUPD Y3, (DI)
	ADDQ    $32, R8
	ADDQ    $32, R9
	ADDQ    $32, DI
	SUBQ    $4, CX
	JNE     axpy2_loop
	VZEROUPPER
	RET

// func axpy2FMAAVX(a float64, xa *float64, b float64, xb, y *float64, n int)
// y[i] = fma(b, xb[i], fma(a, xa[i], y[i])).
TEXT ·axpy2FMAAVX(SB), NOSPLIT, $0-48
	VBROADCASTSD a+0(FP), Y0
	VBROADCASTSD b+16(FP), Y1
	MOVQ xa+8(FP), R8
	MOVQ xb+24(FP), R9
	MOVQ y+32(FP), DI
	MOVQ n+40(FP), CX

axpy2fma_loop:
	VMOVUPD     (DI), Y2
	VFMADD231PD (R8), Y0, Y2 // y += a*xa
	VFMADD231PD (R9), Y1, Y2 // ... += b*xb
	VMOVUPD     Y2, (DI)
	ADDQ        $32, R8
	ADDQ        $32, R9
	ADDQ        $32, DI
	SUBQ        $4, CX
	JNE         axpy2fma_loop
	VZEROUPPER
	RET

// Shared Adam register assignment for adamAVX / adamRecipAVX:
//   R8=w R9=g R10=m R11=v CX=n
//   Y6=b1 Y7=ob1 Y8=b2 Y9=ob2 Y10=lr Y11=eps Y12=c1|rc1 Y13=c2|rc2

// func adamAVX(w, grad, m, v *float64, n int, lr, b1, ob1, b2, ob2, eps, c1, c2 float64)
// Classic Adam with per-element divides (KernelReference):
//   m = b1*m + ob1*g ; v = b2*v + (ob2*g)*g
//   w -= lr*(m/c1) / (sqrt(v/c2) + eps)
TEXT ·adamAVX(SB), NOSPLIT, $0-104
	MOVQ w+0(FP), R8
	MOVQ grad+8(FP), R9
	MOVQ m+16(FP), R10
	MOVQ v+24(FP), R11
	MOVQ n+32(FP), CX
	VBROADCASTSD lr+40(FP), Y10
	VBROADCASTSD b1+48(FP), Y6
	VBROADCASTSD ob1+56(FP), Y7
	VBROADCASTSD b2+64(FP), Y8
	VBROADCASTSD ob2+72(FP), Y9
	VBROADCASTSD eps+80(FP), Y11
	VBROADCASTSD c1+88(FP), Y12
	VBROADCASTSD c2+96(FP), Y13

adam_loop:
	VMOVUPD (R9), Y0         // g
	VMOVUPD (R10), Y1        // m
	VMULPD  Y6, Y1, Y1       // b1*m
	VMULPD  Y7, Y0, Y2       // ob1*g
	VADDPD  Y2, Y1, Y1       // m'
	VMOVUPD Y1, (R10)
	VMOVUPD (R11), Y2        // v
	VMULPD  Y8, Y2, Y2       // b2*v
	VMULPD  Y9, Y0, Y3       // ob2*g
	VMULPD  Y0, Y3, Y3       // (ob2*g)*g
	VADDPD  Y3, Y2, Y2       // v'
	VMOVUPD Y2, (R11)
	VDIVPD  Y12, Y1, Y1      // m'/c1
	VDIVPD  Y13, Y2, Y2      // v'/c2
	VSQRTPD Y2, Y2
	VADDPD  Y11, Y2, Y2      // sqrt(v'/c2) + eps
	VMULPD  Y10, Y1, Y1      // lr*(m'/c1)
	VDIVPD  Y2, Y1, Y1       // update
	VMOVUPD (R8), Y0
	VSUBPD  Y1, Y0, Y0       // w - update
	VMOVUPD Y0, (R8)
	ADDQ    $32, R8
	ADDQ    $32, R9
	ADDQ    $32, R10
	ADDQ    $32, R11
	SUBQ    $4, CX
	JNE     adam_loop
	VZEROUPPER
	RET

// func adamRecipAVX(w, g, m, v *float64, n int, lr, b1, ob1, b2, ob2, eps, rc1, rc2 float64)
// KernelFast Adam with precomputed reciprocal bias corrections:
//   w -= lr*(m*rc1) / (sqrt(v*rc2) + eps)
TEXT ·adamRecipAVX(SB), NOSPLIT, $0-104
	MOVQ w+0(FP), R8
	MOVQ grad+8(FP), R9
	MOVQ m+16(FP), R10
	MOVQ v+24(FP), R11
	MOVQ n+32(FP), CX
	VBROADCASTSD lr+40(FP), Y10
	VBROADCASTSD b1+48(FP), Y6
	VBROADCASTSD ob1+56(FP), Y7
	VBROADCASTSD b2+64(FP), Y8
	VBROADCASTSD ob2+72(FP), Y9
	VBROADCASTSD eps+80(FP), Y11
	VBROADCASTSD rc1+88(FP), Y12
	VBROADCASTSD rc2+96(FP), Y13

adamr_loop:
	VMOVUPD (R9), Y0         // g
	VMOVUPD (R10), Y1        // m
	VMULPD  Y6, Y1, Y1       // b1*m
	VMULPD  Y7, Y0, Y2       // ob1*g
	VADDPD  Y2, Y1, Y1       // m'
	VMOVUPD Y1, (R10)
	VMOVUPD (R11), Y2        // v
	VMULPD  Y8, Y2, Y2       // b2*v
	VMULPD  Y9, Y0, Y3       // ob2*g
	VMULPD  Y0, Y3, Y3       // (ob2*g)*g
	VADDPD  Y3, Y2, Y2       // v'
	VMOVUPD Y2, (R11)
	VMULPD  Y12, Y1, Y1      // m'*rc1
	VMULPD  Y13, Y2, Y2      // v'*rc2
	VSQRTPD Y2, Y2
	VADDPD  Y11, Y2, Y2      // sqrt(v'*rc2) + eps
	VMULPD  Y10, Y1, Y1      // lr*(m'*rc1)
	VDIVPD  Y2, Y1, Y1       // update
	VMOVUPD (R8), Y0
	VSUBPD  Y1, Y0, Y0       // w - update
	VMOVUPD Y0, (R8)
	ADDQ    $32, R8
	ADDQ    $32, R9
	ADDQ    $32, R10
	ADDQ    $32, R11
	SUBQ    $4, CX
	JNE     adamr_loop
	VZEROUPPER
	RET

// REDUCE4 folds the four lanes of YACC (low half XACC) into the low lane of
// DST as (l0+l1)+(l2+l3) — the exact association of fwdLayerFast's fallback.
// Clobbers X5 and X7.
#define REDUCE4(YACC, XACC, DST) \
	VEXTRACTF128 $1, YACC, X5; \
	VPERMILPD    $1, XACC, X7; \
	VADDSD       X7, XACC, DST; \
	VPERMILPD    $1, X5, X7;   \
	VADDSD       X7, X5, X5;   \
	VADDSD       X5, DST, DST

// COL4 reduces one accumulator and adds its bias: X6 = lanes(YACC) + bias[o+DISP/8].
#define COL4(YACC, XACC, DISP) \
	REDUCE4(YACC, XACC, X6);   \
	VADDSD DISP(R11)(BX*8), X6, X6

// func gemmFMAAVX(w, x, y, bias *float64, nb, inP, out, outP, relu int)
// For each sample s < nb and output o < out:
//   y[s*outP+o] = relu?(bias[o] + sum_k w[o*inP+k]*x[s*inP+k])
// FMA-accumulated in 4 independent lanes, rows processed 4 at a time.
// Registers: R8=w R11=bias R12=samples-left R13=inP*8 R14=out R15=outP*8
//            SI=x row DI=y row BX=o CX=row0 DX=row3 AX=k bytes R9=scratch
//            Y15=+0 (relu floor)
TEXT ·gemmFMAAVX(SB), NOSPLIT, $0-72
	MOVQ w+0(FP), R8
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ bias+24(FP), R11
	MOVQ nb+32(FP), R12
	MOVQ inP+40(FP), R13
	SHLQ $3, R13
	MOVQ out+48(FP), R14
	MOVQ outP+56(FP), R15
	SHLQ $3, R15
	VXORPD Y15, Y15, Y15

gemm_sample:
	MOVQ R8, CX              // row0 = w
	LEAQ (R8)(R13*2), DX
	ADDQ R13, DX             // row3 = w + 3*inP

	XORQ BX, BX              // o = 0

gemm_quad:
	LEAQ 4(BX), R9
	CMPQ R9, R14
	JGT  gemm_rowtail        // fewer than 4 rows left

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ   R13, AX

	// The k loop is unrolled two 4-lane steps per iteration (same k-ascending
	// FMA order per accumulator, so bit-identical to the single-step loop);
	// an odd leading step peels rows whose inP is 4 mod 8.
	TESTQ $32, AX
	JZ    gemm_k8
	VMOVUPD     (SI), Y4
	VFMADD231PD (CX), Y4, Y0
	VFMADD231PD (CX)(R13*1), Y4, Y1
	VFMADD231PD (CX)(R13*2), Y4, Y2
	VFMADD231PD (DX), Y4, Y3
	ADDQ        $32, SI
	ADDQ        $32, CX
	ADDQ        $32, DX
	SUBQ        $32, AX
	JZ          gemm_kdone

gemm_k8:
	VMOVUPD     (SI), Y4
	VFMADD231PD (CX), Y4, Y0
	VFMADD231PD (CX)(R13*1), Y4, Y1
	VFMADD231PD (CX)(R13*2), Y4, Y2
	VFMADD231PD (DX), Y4, Y3
	VMOVUPD     32(SI), Y5
	VFMADD231PD 32(CX), Y5, Y0
	VFMADD231PD 32(CX)(R13*1), Y5, Y1
	VFMADD231PD 32(CX)(R13*2), Y5, Y2
	VFMADD231PD 32(DX), Y5, Y3
	ADDQ        $64, SI
	ADDQ        $64, CX
	ADDQ        $64, DX
	SUBQ        $64, AX
	JNE         gemm_k8

gemm_kdone:
	SUBQ R13, SI             // rewind x to the row start

	// Next quad's row0 is the row after row3; DX already points there.
	MOVQ DX, CX
	LEAQ (CX)(R13*2), DX
	ADDQ R13, DX

	// Reduce the quad via a 4x4 transpose: after transposing, column j of
	// the transposed block holds lane j of each row, so (c0+c1)+(c2+c3)
	// computes exactly (l0+l1)+(l2+l3) per output — the same association as
	// REDUCE4 — and the bias add and ReLU floor proceed 4 outputs at a time
	// with identical per-lane rounding (VMAXPD returns its +0 second source
	// for NaN sums, matching VMAXSD).
	VUNPCKLPD  Y1, Y0, Y4
	VUNPCKHPD  Y1, Y0, Y5
	VUNPCKLPD  Y3, Y2, Y6
	VUNPCKHPD  Y3, Y2, Y7
	VPERM2F128 $0x20, Y6, Y4, Y0
	VPERM2F128 $0x20, Y7, Y5, Y1
	VPERM2F128 $0x31, Y6, Y4, Y2
	VPERM2F128 $0x31, Y7, Y5, Y3
	VADDPD     Y1, Y0, Y0
	VADDPD     Y3, Y2, Y2
	VADDPD     Y2, Y0, Y0
	VADDPD     0(R11)(BX*8), Y0, Y0
	CMPQ       relu+64(FP), $0
	JE         gemm_store4
	VMAXPD     Y15, Y0, Y0

gemm_store4:
	VMOVUPD Y0, 0(DI)(BX*8)
	ADDQ $4, BX
	JMP  gemm_quad

gemm_rowtail:
	CMPQ BX, R14
	JGE  gemm_samplenext

	VXORPD Y0, Y0, Y0
	MOVQ   R13, AX

gemm_k1:
	VMOVUPD     (SI), Y4
	VFMADD231PD (CX), Y4, Y0
	ADDQ        $32, SI
	ADDQ        $32, CX
	SUBQ        $32, AX
	JNE         gemm_k1

	SUBQ R13, SI

	COL4(Y0, X0, 0)
	CMPQ relu+64(FP), $0
	JE   gemm_tailstore
	VMAXSD X15, X6, X6

gemm_tailstore:
	VMOVSD X6, 0(DI)(BX*8)
	INCQ   BX
	JMP    gemm_rowtail

gemm_samplenext:
	ADDQ R13, SI             // next x row
	ADDQ R15, DI             // next y row
	DECQ R12
	JNE  gemm_sample
	VZEROUPPER
	RET

// func bgradFMAAVX(grad, x, dy *float64, nb, in, inP, out int)
// Weight-gradient accumulation for one layer:
//   grad[o*in+k] = fma(dy[s*out+o], x[s*inP+k], grad[o*in+k])  for s ascending
// with every sample accumulated unconditionally (branch-free; zero gradients
// contribute exact ±0 FMA terms that leave the accumulators unchanged). The
// k dimension is blocked 16/8/4/2/1 wide with the gradient block held in
// registers across the whole sample loop, which changes no per-element
// operation order: each grad element still sees the same sample-ascending
// FMA sequence as backLayerFast's fallback loop. in is any positive width;
// x rows are strided inP, grad rows in.
// Registers: R8=grad cursor SI/R9=x column base DI=dy column R13=inP*8
//            R14=out*8 R15=in*8 CX=rows-left BX=row bytes left
//            R10=x walker R11=dy walker R12=samples-left
TEXT ·bgradFMAAVX(SB), NOSPLIT, $0-56
	MOVQ grad+0(FP), R8
	MOVQ dy+16(FP), DI
	MOVQ inP+40(FP), R13
	SHLQ $3, R13
	MOVQ out+48(FP), R14
	SHLQ $3, R14
	MOVQ in+32(FP), R15
	SHLQ $3, R15
	MOVQ out+48(FP), CX

bgrad_o:
	MOVQ x+8(FP), R9         // kb = 0
	MOVQ R15, BX

bgrad_block:
	CMPQ BX, $128
	JGE  bgrad_b16
	CMPQ BX, $64
	JGE  bgrad_b8
	CMPQ BX, $32
	JGE  bgrad_b4
	CMPQ BX, $16
	JGE  bgrad_b2
	CMPQ BX, $0
	JNE  bgrad_b1
	ADDQ $8, DI              // next dy column
	DECQ CX
	JNE  bgrad_o
	VZEROUPPER
	RET

bgrad_b16:
	VMOVUPD (R8), Y0
	VMOVUPD 32(R8), Y1
	VMOVUPD 64(R8), Y2
	VMOVUPD 96(R8), Y3
	MOVQ    DI, R11
	MOVQ    R9, R10
	MOVQ    nb+24(FP), R12

bgrad_b16s:
	VMOVSD (R11), X5
	VBROADCASTSD X5, Y4
	VFMADD231PD  (R10), Y4, Y0
	VFMADD231PD  32(R10), Y4, Y1
	VFMADD231PD  64(R10), Y4, Y2
	VFMADD231PD  96(R10), Y4, Y3

	ADDQ R14, R11
	ADDQ R13, R10
	DECQ R12
	JNE  bgrad_b16s
	VMOVUPD Y0, (R8)
	VMOVUPD Y1, 32(R8)
	VMOVUPD Y2, 64(R8)
	VMOVUPD Y3, 96(R8)
	ADDQ    $128, R8
	ADDQ    $128, R9
	SUBQ    $128, BX
	JMP     bgrad_block

bgrad_b8:
	VMOVUPD (R8), Y0
	VMOVUPD 32(R8), Y1
	MOVQ    DI, R11
	MOVQ    R9, R10
	MOVQ    nb+24(FP), R12

bgrad_b8s:
	VMOVSD (R11), X5
	VBROADCASTSD X5, Y4
	VFMADD231PD  (R10), Y4, Y0
	VFMADD231PD  32(R10), Y4, Y1

	ADDQ R14, R11
	ADDQ R13, R10
	DECQ R12
	JNE  bgrad_b8s
	VMOVUPD Y0, (R8)
	VMOVUPD Y1, 32(R8)
	ADDQ    $64, R8
	ADDQ    $64, R9
	SUBQ    $64, BX
	JMP     bgrad_block

bgrad_b4:
	VMOVUPD (R8), Y0
	MOVQ    DI, R11
	MOVQ    R9, R10
	MOVQ    nb+24(FP), R12

bgrad_b4s:
	VMOVSD (R11), X5
	VBROADCASTSD X5, Y4
	VFMADD231PD  (R10), Y4, Y0

	ADDQ R14, R11
	ADDQ R13, R10
	DECQ R12
	JNE  bgrad_b4s
	VMOVUPD Y0, (R8)
	ADDQ    $32, R8
	ADDQ    $32, R9
	SUBQ    $32, BX
	JMP     bgrad_block

bgrad_b2:
	VMOVUPD (R8), X0
	MOVQ    DI, R11
	MOVQ    R9, R10
	MOVQ    nb+24(FP), R12

bgrad_b2s:
	VMOVSD (R11), X5
	VMOVDDUP    X5, X4
	VFMADD231PD (R10), X4, X0

	ADDQ R14, R11
	ADDQ R13, R10
	DECQ R12
	JNE  bgrad_b2s
	VMOVUPD X0, (R8)
	ADDQ    $16, R8
	ADDQ    $16, R9
	SUBQ    $16, BX
	JMP     bgrad_block

bgrad_b1:
	VMOVSD (R8), X0
	MOVQ   DI, R11
	MOVQ   R9, R10
	MOVQ   nb+24(FP), R12

bgrad_b1s:
	VMOVSD (R11), X5
	VFMADD231SD (R10), X5, X0

	ADDQ R14, R11
	ADDQ R13, R10
	DECQ R12
	JNE  bgrad_b1s
	VMOVSD X0, (R8)
	ADDQ   $8, R8
	ADDQ   $8, R9
	SUBQ   $8, BX
	JMP    bgrad_block

// func dxFMAAVX(dx, w, dy *float64, nb, in, inP, out int)
// Input-gradient accumulation for one layer:
//   dx[s*in+k] = sum_o dy[s*out+o] * w[o*inP+k]
// accumulated output-ascending with single-rounded FMAs from a +0 start,
// every output unconditionally (no zero test) — element for element the
// operation sequence of the fallback's fmaAxpy2/fmaAxpy pairing (a fused
// pair is exactly two sequential FMAs). k blocked 16/8/4/2/1 wide in
// registers per sample.
// Registers: R8=dx cursor SI=w base DI=dy row R9=w column base CX=samples
//            R13=inP*8 R14=out*8 R15=in*8 BX=row bytes left
//            R10=w walker R11=dy walker R12=outputs-left
TEXT ·dxFMAAVX(SB), NOSPLIT, $0-56
	MOVQ dx+0(FP), R8
	MOVQ w+8(FP), SI
	MOVQ dy+16(FP), DI
	MOVQ nb+24(FP), CX
	MOVQ in+32(FP), R15
	SHLQ $3, R15
	MOVQ inP+40(FP), R13
	SHLQ $3, R13
	MOVQ out+48(FP), R14
	SHLQ $3, R14

dx_s:
	MOVQ SI, R9              // kb = 0
	MOVQ R15, BX

dx_block:
	CMPQ BX, $128
	JGE  dx_b16
	CMPQ BX, $64
	JGE  dx_b8
	CMPQ BX, $32
	JGE  dx_b4
	CMPQ BX, $16
	JGE  dx_b2
	CMPQ BX, $0
	JNE  dx_b1
	ADDQ R14, DI             // next dy row
	DECQ CX
	JNE  dx_s
	VZEROUPPER
	RET

dx_b16:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ   DI, R11
	MOVQ   R9, R10
	MOVQ   out+48(FP), R12

dx_b16o:
	VMOVSD (R11), X5
	VBROADCASTSD X5, Y4
	VFMADD231PD  (R10), Y4, Y0
	VFMADD231PD  32(R10), Y4, Y1
	VFMADD231PD  64(R10), Y4, Y2
	VFMADD231PD  96(R10), Y4, Y3

	ADDQ $8, R11
	ADDQ R13, R10
	DECQ R12
	JNE  dx_b16o
	VMOVUPD Y0, (R8)
	VMOVUPD Y1, 32(R8)
	VMOVUPD Y2, 64(R8)
	VMOVUPD Y3, 96(R8)
	ADDQ    $128, R8
	ADDQ    $128, R9
	SUBQ    $128, BX
	JMP     dx_block

dx_b8:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	MOVQ   DI, R11
	MOVQ   R9, R10
	MOVQ   out+48(FP), R12

dx_b8o:
	VMOVSD (R11), X5
	VBROADCASTSD X5, Y4
	VFMADD231PD  (R10), Y4, Y0
	VFMADD231PD  32(R10), Y4, Y1

	ADDQ $8, R11
	ADDQ R13, R10
	DECQ R12
	JNE  dx_b8o
	VMOVUPD Y0, (R8)
	VMOVUPD Y1, 32(R8)
	ADDQ    $64, R8
	ADDQ    $64, R9
	SUBQ    $64, BX
	JMP     dx_block

dx_b4:
	VXORPD Y0, Y0, Y0
	MOVQ   DI, R11
	MOVQ   R9, R10
	MOVQ   out+48(FP), R12

dx_b4o:
	VMOVSD (R11), X5
	VBROADCASTSD X5, Y4
	VFMADD231PD  (R10), Y4, Y0

	ADDQ $8, R11
	ADDQ R13, R10
	DECQ R12
	JNE  dx_b4o
	VMOVUPD Y0, (R8)
	ADDQ    $32, R8
	ADDQ    $32, R9
	SUBQ    $32, BX
	JMP     dx_block

dx_b2:
	VXORPD X0, X0, X0
	MOVQ   DI, R11
	MOVQ   R9, R10
	MOVQ   out+48(FP), R12

dx_b2o:
	VMOVSD (R11), X5
	VMOVDDUP    X5, X4
	VFMADD231PD (R10), X4, X0

	ADDQ $8, R11
	ADDQ R13, R10
	DECQ R12
	JNE  dx_b2o
	VMOVUPD X0, (R8)
	ADDQ    $16, R8
	ADDQ    $16, R9
	SUBQ    $16, BX
	JMP     dx_block

dx_b1:
	VXORPD X0, X0, X0
	MOVQ   DI, R11
	MOVQ   R9, R10
	MOVQ   out+48(FP), R12

dx_b1o:
	VMOVSD (R11), X5
	VFMADD231SD (R10), X5, X0

	ADDQ $8, R11
	ADDQ R13, R10
	DECQ R12
	JNE  dx_b1o
	VMOVSD X0, (R8)
	ADDQ   $8, R8
	ADDQ   $8, R9
	SUBQ   $8, BX
	JMP    dx_block

// func reluMaskAVX(dy, act *float64, n int)
// Branch-free ReLU backward mask: dy[i] is zeroed (+0) where act[i] <= 0
// and kept otherwise. VCMPPD with the NLE_US predicate builds an all-ones
// mask exactly where !(act <= 0) — positives and NaNs keep dy, zeros
// (either sign) and negatives clear it — matching the scalar fallback's
// `if a <= 0 { dy = 0 }` bit for bit. n must be a positive multiple of 4.
TEXT ·reluMaskAVX(SB), NOSPLIT, $0-24
	MOVQ   dy+0(FP), DI
	MOVQ   act+8(FP), SI
	MOVQ   n+16(FP), CX
	VXORPD Y1, Y1, Y1

relumask_loop:
	VMOVUPD (SI), Y0
	VCMPPD  $6, Y1, Y0, Y2
	VANDPD  (DI), Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $4, CX
	JNE     relumask_loop
	VZEROUPPER
	RET
