package nn

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/mathx"
)

// withAsm runs f with the assembly kernels forced on or off. Tests in this
// package run serially, so toggling the package variable is safe.
func withAsm(t *testing.T, on bool, f func()) {
	t.Helper()
	if on && !haveAVX2FMA {
		t.Skip("no AVX2+FMA on this machine")
	}
	saved := useAsm
	useAsm = on
	defer func() { useAsm = saved }()
	f()
}

func randSlice(rng *mathx.RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestElementwiseAsmParity pins that the AVX element-wise kernels produce
// bit-identical results to their scalar Go loops across awkward lengths —
// the property that lets KernelReference keep using them.
func TestElementwiseAsmParity(t *testing.T) {
	if !haveAVX2FMA {
		t.Skip("no AVX2+FMA on this machine")
	}
	rng := mathx.NewRNG(1)
	for _, n := range []int{1, 3, 4, 7, 8, 12, 15, 31, 64, 129} {
		x := randSlice(rng, n)
		xb := randSlice(rng, n)
		y0 := randSlice(rng, n)
		y1 := append([]float64(nil), y0...)
		withAsm(t, false, func() { axpy(1.7, x, y0) })
		withAsm(t, true, func() { axpy(1.7, x, y1) })
		if !bitsEqual(y0, y1) {
			t.Fatalf("axpy parity failed at n=%d", n)
		}
		y0 = randSlice(rng, n)
		y1 = append([]float64(nil), y0...)
		withAsm(t, false, func() { axpy2(0.3, x, -1.2, xb, y0) })
		withAsm(t, true, func() { axpy2(0.3, x, -1.2, xb, y1) })
		if !bitsEqual(y0, y1) {
			t.Fatalf("axpy2 parity failed at n=%d", n)
		}
		y0 = randSlice(rng, n)
		y1 = append([]float64(nil), y0...)
		withAsm(t, false, func() { fmaAxpy(-0.9, x, y0) })
		withAsm(t, true, func() { fmaAxpy(-0.9, x, y1) })
		if !bitsEqual(y0, y1) {
			t.Fatalf("fmaAxpy parity failed at n=%d", n)
		}
		y0 = randSlice(rng, n)
		y1 = append([]float64(nil), y0...)
		withAsm(t, false, func() { fmaAxpy2(0.4, x, 2.5, xb, y0) })
		withAsm(t, true, func() { fmaAxpy2(0.4, x, 2.5, xb, y1) })
		if !bitsEqual(y0, y1) {
			t.Fatalf("fmaAxpy2 parity failed at n=%d", n)
		}
	}
}

// TestAdamAsmParity pins bit-identical Adam steps between the scalar loops
// and the AVX kernels, in both classic and reciprocal modes.
func TestAdamAsmParity(t *testing.T) {
	if !haveAVX2FMA {
		t.Skip("no AVX2+FMA on this machine")
	}
	for _, recip := range []bool{false, true} {
		for _, n := range []int{5, 8, 13, 64, 257} {
			rng := mathx.NewRNG(int64(n))
			w := randSlice(rng, n)
			g1 := randSlice(rng, n)
			g2 := randSlice(rng, n)
			run := func(on bool) []float64 {
				p := &Param{W: append([]float64(nil), w...), G: append([]float64(nil), g1...)}
				opt := &Adam{LR: 3e-3, Recip: recip}
				withAsm(t, on, func() {
					opt.Step([]*Param{p})
					copy(p.G, g2)
					opt.Step([]*Param{p})
				})
				return p.W
			}
			got, want := run(true), run(false)
			if !bitsEqual(got, want) {
				t.Fatalf("Adam(recip=%v) parity failed at n=%d", recip, n)
			}
		}
	}
}

// TestGemmAsmParity pins that the FMA GEMM assembly matches the pure-Go
// math.FMA fallback bit for bit across shapes, strides, and both relu
// modes — the KernelFast portability guarantee.
func TestGemmAsmParity(t *testing.T) {
	if !haveAVX2FMA {
		t.Skip("no AVX2+FMA on this machine")
	}
	rng := mathx.NewRNG(9)
	shapes := []struct{ nb, in, out int }{
		{1, 4, 1}, {2, 8, 3}, {3, 5, 4}, {5, 17, 7}, {8, 32, 16}, {7, 13, 9},
	}
	for _, sh := range shapes {
		inP := pad4(sh.in)
		outP := pad4(sh.out)
		w := make([]float64, sh.out*inP)
		for o := 0; o < sh.out; o++ {
			copy(w[o*inP:o*inP+sh.in], randSlice(rng, sh.in))
		}
		bias := randSlice(rng, sh.out)
		x := make([]float64, sh.nb*inP)
		for s := 0; s < sh.nb; s++ {
			copy(x[s*inP:s*inP+sh.in], randSlice(rng, sh.in))
		}
		for _, relu := range []bool{false, true} {
			y0 := make([]float64, sh.nb*outP)
			y1 := make([]float64, sh.nb*outP)
			withAsm(t, false, func() { fwdLayerFast(w, bias, x, y0, sh.nb, inP, sh.out, outP, relu) })
			withAsm(t, true, func() { fwdLayerFast(w, bias, x, y1, sh.nb, inP, sh.out, outP, relu) })
			if !bitsEqual(y0, y1) {
				t.Fatalf("gemm parity failed at %+v relu=%v", sh, relu)
			}
		}
	}
}

// trainSteps runs a fixed sequence of batched forward/backward/clip/step
// iterations at the given kernel and returns the serialized weights.
func trainSteps(t *testing.T, kernel int, recip bool) []byte {
	t.Helper()
	cfg := Config{Inputs: 7, Hidden: []int{32, 16}, Outputs: 3, Dueling: true, Seed: 11}
	n := New(cfg)
	opt := &Adam{LR: 3e-3, Recip: recip}
	const nb = 8
	s := n.NewBatchScratchKernel(nb, kernel)
	rng := mathx.NewRNG(5)
	xs := make([]float64, nb*cfg.Inputs)
	dOut := make([]float64, nb*cfg.Outputs)
	for step := 0; step < 25; step++ {
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		q := n.ForwardBatchInto(s, xs, nb)
		for i := range dOut {
			dOut[i] = 0
		}
		for b := 0; b < nb; b++ {
			a := b % cfg.Outputs
			dOut[b*cfg.Outputs+a] = q[b*cfg.Outputs+a] - rng.NormFloat64()
		}
		n.ZeroGrad()
		n.BackwardBatch(s, dOut, nb)
		ClipGradNorm(n.Params(), 10)
		opt.Step(n.Params())
		n.InvalidateFast()
	}
	blob, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestKernelReferenceUnchangedByAsm proves the KernelReference pin: a full
// training sequence produces byte-identical weights with the assembly
// kernels enabled and disabled, so enabling AVX2 does not move the
// reference stream.
func TestKernelReferenceUnchangedByAsm(t *testing.T) {
	if !haveAVX2FMA {
		t.Skip("no AVX2+FMA on this machine")
	}
	var withA, withoutA []byte
	withAsm(t, true, func() { withA = trainSteps(t, KernelReference, false) })
	withAsm(t, false, func() { withoutA = trainSteps(t, KernelReference, false) })
	if !bytes.Equal(withA, withoutA) {
		t.Fatal("KernelReference weights changed when asm kernels were enabled")
	}
}

// TestKernelFastAsmFallbackParity proves the KernelFast portability pin:
// the same training sequence under KernelFast is byte-identical between the
// assembly kernels and the pure-Go math.FMA fallbacks.
func TestKernelFastAsmFallbackParity(t *testing.T) {
	if !haveAVX2FMA {
		t.Skip("no AVX2+FMA on this machine")
	}
	var withA, withoutA []byte
	withAsm(t, true, func() { withA = trainSteps(t, KernelFast, true) })
	withAsm(t, false, func() { withoutA = trainSteps(t, KernelFast, true) })
	if !bytes.Equal(withA, withoutA) {
		t.Fatal("KernelFast weights differ between asm and Go fallback")
	}
}

// TestKernelFastForwardMatchesReference checks the KernelFast forward pass
// numerically against the reference path (different roundings, so compare
// with tolerance).
func TestKernelFastForwardMatchesReference(t *testing.T) {
	cfg := Config{Inputs: 7, Hidden: []int{32, 16}, Outputs: 3, Dueling: true, Seed: 2}
	n := New(cfg)
	const nb = 6
	sRef := n.NewBatchScratch(nb)
	sFast := n.NewBatchScratchKernel(nb, KernelFast)
	rng := mathx.NewRNG(3)
	xs := randSlice(rng, nb*cfg.Inputs)
	qRef := append([]float64(nil), n.ForwardBatchInto(sRef, xs, nb)...)
	qFast := n.ForwardBatchInto(sFast, xs, nb)
	for i := range qRef {
		if d := math.Abs(qRef[i] - qFast[i]); d > 1e-9*(1+math.Abs(qRef[i])) {
			t.Fatalf("fast forward diverged at %d: %v vs %v", i, qRef[i], qFast[i])
		}
	}
}

// TestGradShadowAccumulates pins GradShadow semantics: shadows share
// weights with the owner, accumulate gradients privately, and the
// chunk-index-ordered reduction is independent of which shadow computed
// which chunk in which order — the worker-schedule invariance the chunked
// trainer relies on.
func TestGradShadowAccumulates(t *testing.T) {
	cfg := Config{Inputs: 5, Hidden: []int{8}, Outputs: 3, Dueling: true, Seed: 4}
	n := New(cfg)
	n.EnsureFast()
	const nb = 4
	rng := mathx.NewRNG(6)
	xs := randSlice(rng, 2*nb*cfg.Inputs)
	dOut := randSlice(rng, 2*nb*cfg.Outputs)

	chunk := func(sh *Network, s *BatchScratch, c int) {
		sh.ForwardBatchInto(s, xs[c*nb*cfg.Inputs:(c+1)*nb*cfg.Inputs], nb)
		sh.BackwardBatch(s, dOut[c*nb*cfg.Outputs:(c+1)*nb*cfg.Outputs], nb)
	}

	// Schedule 1: shadow a computes chunk 0 first, shadow b chunk 1.
	a, b := n.GradShadow(), n.GradShadow()
	sA := a.NewBatchScratchKernel(nb, KernelFast)
	sB := b.NewBatchScratchKernel(nb, KernelFast)
	chunk(a, sA, 0)
	chunk(b, sB, 1)
	n.ZeroGrad()
	AccumulateGrads(n.Params(), a.Params())
	AccumulateGrads(n.Params(), b.Params())
	want := make([][]float64, len(n.Params()))
	for i, p := range n.Params() {
		want[i] = append([]float64(nil), p.G...)
	}

	// Schedule 2: opposite assignment and compute order; the reduction
	// still walks chunk 0 then chunk 1.
	c, d := n.GradShadow(), n.GradShadow()
	sC := c.NewBatchScratchKernel(nb, KernelFast)
	sD := d.NewBatchScratchKernel(nb, KernelFast)
	chunk(d, sD, 1)
	chunk(c, sC, 0)
	n.ZeroGrad()
	AccumulateGrads(n.Params(), c.Params())
	AccumulateGrads(n.Params(), d.Params())
	for i, p := range n.Params() {
		if !bitsEqual(p.G, want[i]) {
			t.Fatalf("chunk-ordered reduction depends on worker schedule at param %d", i)
		}
	}

	// Weight sharing: mutating the owner must be visible to shadows
	// (after the owner's padded image is refreshed).
	n.Params()[0].W[0] += 0.5
	n.InvalidateFast()
	n.EnsureFast()
	q1 := append([]float64(nil), a.ForwardBatchInto(sA, xs[:nb*cfg.Inputs], nb)...)
	q2 := n.ForwardBatchInto(n.NewBatchScratchKernel(nb, KernelFast), xs[:nb*cfg.Inputs], nb)
	if !bitsEqual(q1, q2) {
		t.Fatal("shadow forward does not track owner weights")
	}
}

// TestBackLayerAsmParity pins that the fused backward kernels (bgradFMAAVX,
// dxFMAAVX) match the pure-Go fmaAxpy loops bit for bit across shapes, with
// dy containing exact zeros (which must be skipped) and NaN (which must not
// be — NaN != 0).
func TestBackLayerAsmParity(t *testing.T) {
	if !haveAVX2FMA {
		t.Skip("no AVX2+FMA on this machine")
	}
	rng := mathx.NewRNG(17)
	shapes := []struct{ nb, in, out int }{
		{1, 4, 1}, {8, 16, 3}, {8, 16, 1}, {8, 28, 32}, {16, 32, 16},
		{5, 12, 7}, {8, 20, 9}, {3, 36, 5}, {8, 64, 8},
		{8, 15, 32}, {8, 15, 3}, {4, 7, 5}, {6, 2, 3}, {3, 1, 4}, {8, 23, 16},
		{5, 30, 11},
	}
	for si, sh := range shapes {
		inP := pad4(sh.in)
		mk := func() (*dense, []float64, []float64, []float64) {
			d := &dense{
				in: sh.in, out: sh.out,
				w: &Param{W: randSlice(rng, sh.out*sh.in), G: randSlice(rng, sh.out*sh.in)},
				b: &Param{W: randSlice(rng, sh.out), G: randSlice(rng, sh.out)},
			}
			x := make([]float64, sh.nb*inP)
			for s := 0; s < sh.nb; s++ {
				copy(x[s*inP:s*inP+sh.in], randSlice(rng, sh.in))
			}
			dy := randSlice(rng, sh.nb*sh.out)
			for i := range dy {
				switch i % 5 {
				case 1:
					dy[i] = 0
				case 3:
					if i%10 == 3 {
						dy[i] = math.NaN()
					}
				}
			}
			return d, x, dy, make([]float64, sh.nb*sh.in)
		}
		// Identical inputs for both runs: rebuild from one saved state.
		d0, x, dy, _ := mk()
		clone := func() (*dense, []float64) {
			d := &dense{
				in: d0.in, out: d0.out,
				w: &Param{W: append([]float64(nil), d0.w.W...), G: append([]float64(nil), d0.w.G...)},
				b: &Param{W: append([]float64(nil), d0.b.W...), G: append([]float64(nil), d0.b.G...)},
			}
			return d, make([]float64, sh.nb*sh.in)
		}
		dGo, dxGo := clone()
		dAsm, dxAsm := clone()
		withAsm(t, false, func() { backLayerFast(dGo, x, inP, dy, dxGo, sh.nb) })
		withAsm(t, true, func() { backLayerFast(dAsm, x, inP, dy, dxAsm, sh.nb) })
		for _, pair := range []struct {
			name      string
			got, want []float64
		}{
			{"w.G", dAsm.w.G, dGo.w.G},
			{"b.G", dAsm.b.G, dGo.b.G},
			{"dx", dxAsm, dxGo},
		} {
			if len(pair.got) != len(pair.want) {
				t.Fatalf("shape %d %+v: %s length mismatch", si, sh, pair.name)
			}
			for i := range pair.got {
				gb, wb := math.Float64bits(pair.got[i]), math.Float64bits(pair.want[i])
				if gb != wb && !(math.IsNaN(pair.got[i]) && math.IsNaN(pair.want[i])) {
					t.Fatalf("shape %d %+v: %s[%d] = %v (asm) vs %v (go)",
						si, sh, pair.name, i, pair.got[i], pair.want[i])
				}
			}
		}
	}
}

// TestReluMaskAsmParity pins that the branch-free compare-and-mask kernel
// matches the scalar `if act <= 0 { dy = 0 }` loop bit for bit, including
// ±0 and NaN activations (NaN keeps dy; zeros of either sign clear it).
func TestReluMaskAsmParity(t *testing.T) {
	if !haveAVX2FMA {
		t.Skip("no AVX2+FMA on this machine")
	}
	rng := mathx.NewRNG(23)
	for _, n := range []int{4, 8, 32, 128, 252} {
		act := randSlice(rng, n)
		dy := randSlice(rng, n)
		for i := range act {
			switch i % 7 {
			case 1:
				act[i] = 0
			case 2:
				act[i] = math.Copysign(0, -1)
			case 3:
				act[i] = math.NaN()
			case 4:
				act[i] = -act[i] * act[i]
			}
			if i%5 == 0 {
				dy[i] = -dy[i]
			}
			if i%11 == 3 {
				dy[i] = math.NaN()
			}
		}
		want := append([]float64(nil), dy...)
		for i, a := range act {
			if a <= 0 {
				want[i] = 0
			}
		}
		got := append([]float64(nil), dy...)
		reluMaskAVX(&got[0], &act[0], n)
		for i := range want {
			gb, wb := math.Float64bits(got[i]), math.Float64bits(want[i])
			if gb != wb && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
				t.Fatalf("n=%d i=%d act=%v: got %x want %x", n, i, act[i], gb, wb)
			}
		}
	}
}
