package nn

import "testing"

// benchSmallNet is the CI-preset agent shape (hyperCandidates PresetCI):
// 15 inputs, 32-16 hidden, dueling 2-action head — the hot configuration
// of the figure-suite benchmarks.
func benchSmallNet() *Network {
	return New(Config{Inputs: 15, Hidden: []int{32, 16}, Outputs: 2, Dueling: true, Seed: 1})
}

// BenchmarkNNTrainStepBatchedSmall measures one batched train step at the
// CI agent shape (the dominant cost of BenchmarkFig3CostBenefit's RL
// training loop).
func BenchmarkNNTrainStepBatchedSmall(b *testing.B) {
	const batch = 32
	net := benchSmallNet()
	bs := net.NewBatchScratch(batch)
	opt := &Adam{LR: 1e-3}
	xs := make([]float64, batch*15)
	for i := range xs {
		xs[i] = float64(i%15) * 0.1
	}
	dOut := make([]float64, batch*2)
	for i := range dOut {
		if i%2 == 0 {
			dOut[i] = 0.1
		} else {
			dOut[i] = -0.1
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatchInto(bs, xs, batch)
		net.ZeroGrad()
		net.BackwardBatch(bs, dOut, batch)
		opt.Step(net.Params())
	}
}

// BenchmarkNNForwardBatchSmall is the forward-only slice of the above.
func BenchmarkNNForwardBatchSmall(b *testing.B) {
	const batch = 32
	net := benchSmallNet()
	bs := net.NewBatchScratch(batch)
	xs := make([]float64, batch*15)
	for i := range xs {
		xs[i] = float64(i%15) * 0.1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatchInto(bs, xs, batch)
	}
}
