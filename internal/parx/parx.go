// Package parx provides the tiny bounded-parallelism primitive shared by
// the evaluation hot paths (per-node policy replay, hyperparameter search).
// The contract that matters here is determinism: For runs fn(i) for every i
// exactly once, with results racked up by index by the caller, so the
// outcome is identical for any worker count — parallelism changes wall
// clock, never results.
package parx

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: n <= 0 selects GOMAXPROCS,
// anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For invokes fn(i) for every i in [0, n) using at most workers concurrent
// goroutines and returns when all calls are done. workers <= 0 selects
// GOMAXPROCS; a single worker (or n <= 1) runs inline with no goroutines.
// fn must confine its writes to per-index state (e.g. out[i]) — For adds no
// synchronization around shared state beyond the final join.
//
// A panic in fn aborts remaining work and is re-raised on the caller's
// goroutine (the original stack trace is lost but the value is preserved),
// so panic semantics match the serial path for every worker count.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		aborted  atomic.Bool
		panicMu  sync.Mutex
		panicVal any
		wg       sync.WaitGroup
	)
	call := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicVal == nil {
					panicVal = r
				}
				panicMu.Unlock()
				aborted.Store(true)
			}
		}()
		fn(i)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !aborted.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				call(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
