package parx

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		For(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	For(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(4)
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			For(50, workers, func(i int) {
				if i == 17 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: For returned instead of panicking", workers)
		}()
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count not honored")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("default worker count is not GOMAXPROCS")
	}
}
