// Package mcelogfmt reads and writes a textual, mcelog-flavoured
// representation of the error log. The corrected-error daemon of §2.1.1 is
// based on Linux mcelog, which reports machine-check records as key/value
// blocks; operators are used to grepping that shape. This package renders
// our records in that style and parses them back, so logs can round-trip
// through operator tooling as well as the CSV codec.
//
// A record looks like:
//
//	MCE 0
//	TIME 2014-10-01T00:04:17Z
//	NODE 17
//	DIMM 139 MANUFACTURER B
//	TYPE CE COUNT 12
//	ADDR RANK 1 BANK 3 ROW 4096 COL 17
//	FOUND scrub
//
// Blocks are separated by blank lines. Fields missing from a record keep
// their zero/unknown values (-1 for locations).
package mcelogfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/errlog"
)

// Write renders the log in mcelog-flavoured text.
func Write(w io.Writer, l *errlog.Log) error {
	bw := bufio.NewWriter(w)
	for i, e := range l.Events {
		if i > 0 {
			if _, err := fmt.Fprintln(bw); err != nil {
				return err
			}
		}
		fmt.Fprintf(bw, "MCE %d\n", i)
		fmt.Fprintf(bw, "TIME %s\n", e.Time.Format(time.RFC3339Nano))
		fmt.Fprintf(bw, "NODE %d\n", e.Node)
		fmt.Fprintf(bw, "DIMM %d MANUFACTURER %s\n", e.DIMM, e.Manufacturer)
		fmt.Fprintf(bw, "TYPE %s COUNT %d\n", e.Type, e.Count)
		if e.Rank >= 0 || e.Bank >= 0 || e.Row >= 0 || e.Col >= 0 {
			fmt.Fprintf(bw, "ADDR RANK %d BANK %d ROW %d COL %d\n", e.Rank, e.Bank, e.Row, e.Col)
		}
		found := "read"
		if e.Scrub {
			found = "scrub"
		}
		fmt.Fprintf(bw, "FOUND %s\n", found)
		if e.OverTemp {
			fmt.Fprintln(bw, "FLAG overtemp")
		}
	}
	return bw.Flush()
}

// Read parses text produced by Write (tolerating reordered fields within a
// block). It returns the events in file order.
func Read(r io.Reader) (*errlog.Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	l := &errlog.Log{}
	cur := newEvent()
	inBlock := false
	line := 0
	flush := func() {
		if inBlock {
			l.Events = append(l.Events, cur)
			cur = newEvent()
			inBlock = false
		}
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			flush()
			continue
		}
		fields := strings.Fields(text)
		if err := applyField(&cur, fields); err != nil {
			return nil, fmt.Errorf("mcelogfmt: line %d: %w", line, err)
		}
		inBlock = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return l, nil
}

func newEvent() errlog.Event {
	return errlog.Event{DIMM: -1, Count: 1, Rank: -1, Bank: -1, Row: -1, Col: -1}
}

func applyField(e *errlog.Event, fields []string) error {
	switch fields[0] {
	case "MCE":
		return nil // record index, informational
	case "TIME":
		if len(fields) < 2 {
			return fmt.Errorf("TIME needs a value")
		}
		t, err := time.Parse(time.RFC3339Nano, fields[1])
		if err != nil {
			return fmt.Errorf("bad TIME %q: %w", fields[1], err)
		}
		e.Time = t
	case "NODE":
		return parseInt(fields, 1, &e.Node)
	case "DIMM":
		if err := parseInt(fields, 1, &e.DIMM); err != nil {
			return err
		}
		if idx := indexOf(fields, "MANUFACTURER"); idx >= 0 && idx+1 < len(fields) {
			switch fields[idx+1] {
			case "A":
				e.Manufacturer = errlog.ManufacturerA
			case "B":
				e.Manufacturer = errlog.ManufacturerB
			case "C":
				e.Manufacturer = errlog.ManufacturerC
			default:
				return fmt.Errorf("bad MANUFACTURER %q", fields[idx+1])
			}
		}
	case "TYPE":
		if len(fields) < 2 {
			return fmt.Errorf("TYPE needs a value")
		}
		switch fields[1] {
		case "CE":
			e.Type = errlog.CE
		case "UE":
			e.Type = errlog.UE
		case "UEW":
			e.Type = errlog.UEWarning
		case "BOOT":
			e.Type = errlog.Boot
		case "RETIRE":
			e.Type = errlog.Retirement
		default:
			return fmt.Errorf("bad TYPE %q", fields[1])
		}
		if idx := indexOf(fields, "COUNT"); idx >= 0 {
			if err := parseInt(fields, idx+1, &e.Count); err != nil {
				return err
			}
		}
	case "ADDR":
		for _, pair := range []struct {
			key string
			dst *int
		}{{"RANK", &e.Rank}, {"BANK", &e.Bank}, {"ROW", &e.Row}, {"COL", &e.Col}} {
			if idx := indexOf(fields, pair.key); idx >= 0 {
				if err := parseInt(fields, idx+1, pair.dst); err != nil {
					return err
				}
			}
		}
	case "FOUND":
		if len(fields) < 2 {
			return fmt.Errorf("FOUND needs a value")
		}
		switch fields[1] {
		case "scrub":
			e.Scrub = true
		case "read":
			e.Scrub = false
		default:
			return fmt.Errorf("bad FOUND %q", fields[1])
		}
	case "FLAG":
		if len(fields) > 1 && fields[1] == "overtemp" {
			e.OverTemp = true
		}
	default:
		return fmt.Errorf("unknown field %q", fields[0])
	}
	return nil
}

func indexOf(fields []string, key string) int {
	for i, f := range fields {
		if f == key {
			return i
		}
	}
	return -1
}

func parseInt(fields []string, idx int, dst *int) error {
	if idx >= len(fields) {
		return fmt.Errorf("missing integer value")
	}
	v, err := strconv.Atoi(fields[idx])
	if err != nil {
		return fmt.Errorf("bad integer %q: %w", fields[idx], err)
	}
	*dst = v
	return nil
}
