package mcelogfmt

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/errlog"
	"repro/internal/telemetry"
)

var t0 = time.Date(2014, 10, 1, 0, 4, 17, 0, time.UTC)

func sampleLog() *errlog.Log {
	return &errlog.Log{Events: []errlog.Event{
		{Time: t0, Node: 17, DIMM: 139, Manufacturer: errlog.ManufacturerB,
			Type: errlog.CE, Count: 12, Rank: 1, Bank: 3, Row: 4096, Col: 17, Scrub: true},
		{Time: t0.Add(time.Hour), Node: 17, DIMM: 139, Manufacturer: errlog.ManufacturerB,
			Type: errlog.UE, Count: 1, Rank: -1, Bank: -1, Row: -1, Col: -1, OverTemp: true},
		{Time: t0.Add(2 * time.Hour), Node: 20, DIMM: -1, Manufacturer: errlog.ManufacturerC,
			Type: errlog.Boot, Count: 1, Rank: -1, Bank: -1, Row: -1, Col: -1},
	}}
}

func TestRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(l.Events) {
		t.Fatalf("events = %d, want %d", len(got.Events), len(l.Events))
	}
	for i := range got.Events {
		if got.Events[i] != l.Events[i] {
			t.Fatalf("event %d:\n got %+v\nwant %+v", i, got.Events[i], l.Events[i])
		}
	}
}

func TestWriteShape(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleLog()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"MCE 0", "TIME 2014-10-01T00:04:17Z", "NODE 17",
		"DIMM 139 MANUFACTURER B", "TYPE CE COUNT 12",
		"ADDR RANK 1 BANK 3 ROW 4096 COL 17", "FOUND scrub", "FLAG overtemp"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Boot record has no ADDR line.
	blocks := strings.Split(out, "\n\n")
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	if strings.Contains(blocks[2], "ADDR") {
		t.Error("boot block should omit ADDR")
	}
}

func TestReadToleratesReorderedFields(t *testing.T) {
	in := "NODE 5\nTIME 2015-01-01T00:00:00Z\nTYPE CE COUNT 3\nDIMM 40 MANUFACTURER A\n"
	l, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Events) != 1 {
		t.Fatalf("events = %d", len(l.Events))
	}
	e := l.Events[0]
	if e.Node != 5 || e.Count != 3 || e.DIMM != 40 || e.Manufacturer != errlog.ManufacturerA {
		t.Fatalf("parsed = %+v", e)
	}
	// Unset locations default to -1.
	if e.Rank != -1 || e.Row != -1 {
		t.Fatalf("locations should default to -1: %+v", e)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"TIME notatime\n",
		"TYPE WHAT\n",
		"NODE x\n",
		"BOGUS 1\n",
		"FOUND maybe\n",
		"DIMM 1 MANUFACTURER Q\n",
		"TIME\n",
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error for %q", i, in)
		}
	}
}

func TestReadEmpty(t *testing.T) {
	l, err := Read(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Events) != 0 {
		t.Fatal("expected empty log")
	}
}

func TestRoundTripGeneratedLog(t *testing.T) {
	// Property-style check on a real synthetic log slice.
	cfg := telemetry.Default().Scale(0.01)
	full := telemetry.Generate(cfg)
	l := &errlog.Log{Events: full.Events[:min(500, len(full.Events))]}
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(l.Events) {
		t.Fatalf("events = %d, want %d", len(got.Events), len(l.Events))
	}
	for i := range got.Events {
		if got.Events[i] != l.Events[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
}
