package rf

import (
	"encoding/json"
	"fmt"
)

// nodeJSON is the serialized form of one flat tree node, with short keys to
// keep large forests compact. Leaves have F == -1.
type nodeJSON struct {
	F int     `json:"f"`
	T float64 `json:"t,omitempty"`
	L int     `json:"l,omitempty"`
	R int     `json:"r,omitempty"`
	P float64 `json:"p,omitempty"`
}

// MarshalJSON serializes the tree's flat node array.
func (t *Tree) MarshalJSON() ([]byte, error) {
	out := make([]nodeJSON, len(t.nodes))
	for i, n := range t.nodes {
		out[i] = nodeJSON{F: n.feature, T: n.threshold, L: n.left, R: n.right, P: n.prob}
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a tree serialized by MarshalJSON, validating that
// child indices stay in range so a corrupt artifact cannot crash Predict.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var in []nodeJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if len(in) == 0 {
		return fmt.Errorf("rf: serialized tree has no nodes")
	}
	nodes := make([]node, len(in))
	for i, n := range in {
		// TrainTree appends children after their parent, so child indices
		// must be strictly increasing; enforcing that on load makes
		// PredictProb terminate on any accepted artifact.
		if n.F >= 0 && (n.L <= i || n.L >= len(in) || n.R <= i || n.R >= len(in)) {
			return fmt.Errorf("rf: serialized tree node %d has out-of-range children", i)
		}
		nodes[i] = node{feature: n.F, threshold: n.T, left: n.L, right: n.R, prob: n.P}
	}
	t.nodes = nodes
	return nil
}

// ValidateDim checks that no split reads a feature at or beyond dim, so a
// restored forest cannot index past the feature vectors it will be served.
func (f *Forest) ValidateDim(dim int) error {
	for ti, t := range f.trees {
		for ni, n := range t.nodes {
			if n.feature >= dim {
				return fmt.Errorf("rf: tree %d node %d splits on feature %d, want < %d",
					ti, ni, n.feature, dim)
			}
		}
	}
	return nil
}

// MarshalJSON serializes the forest as an array of trees.
func (f *Forest) MarshalJSON() ([]byte, error) {
	return json.Marshal(f.trees)
}

// UnmarshalJSON restores a forest serialized by MarshalJSON, rebuilding
// the packed prediction layout.
func (f *Forest) UnmarshalJSON(data []byte) error {
	var trees []*Tree
	if err := json.Unmarshal(data, &trees); err != nil {
		return err
	}
	if len(trees) == 0 {
		return fmt.Errorf("rf: serialized forest has no trees")
	}
	f.trees = trees
	f.pack()
	return nil
}
