package rf

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// ForestConfig parameterizes random-forest training.
type ForestConfig struct {
	// Trees is the ensemble size (default 100).
	Trees int
	// MaxDepth bounds each tree (0 = unlimited).
	MaxDepth int
	// MinLeaf is the per-leaf minimum sample count (default 1).
	MinLeaf int
	// MTry is the per-split feature subsample; 0 selects sqrt(d).
	MTry int
	// UnderSampleRatio is the negatives-per-positive ratio after random
	// under-sampling of the majority class (SC'20's treatment of class
	// imbalance). 0 selects 1 (balanced).
	UnderSampleRatio float64
	// Seed drives bootstrap and feature sampling.
	Seed int64
}

// DefaultForestConfig returns the configuration used by the SC20-RF
// baseline in this repository.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{
		Trees:            100,
		MaxDepth:         12,
		MinLeaf:          1,
		UnderSampleRatio: 1,
		Seed:             1,
	}
}

// Forest is a bagged ensemble of CART trees.
//
// After training (or deserialization) the ensemble is additionally packed
// into one contiguous node array (see pack): PredictProb walks that flat
// array instead of chasing per-tree slices, which keeps the whole forest's
// nodes cache-resident on the replay hot path where one score is computed
// per decision tick.
type Forest struct {
	trees []*Tree

	// packed holds every tree's nodes back to back with child indices
	// rebased to the packed array; roots[i] is tree i's root index.
	packed []packedNode
	roots  []int32
}

// packedNode is the cache-friendly flat representation of one tree node:
// 32 bytes instead of the 40-byte training node, with absolute child
// indices so prediction never dereferences a tree.
type packedNode struct {
	threshold float64
	prob      float64
	// feature < 0 marks a leaf.
	feature     int32
	left, right int32
}

// pack flattens the ensemble into the contiguous prediction layout.
// Predictions over the packed array visit the same nodes in the same tree
// order as the per-tree walk, so scores are bit-identical.
func (f *Forest) pack() {
	total := 0
	for _, t := range f.trees {
		total += len(t.nodes)
	}
	if total > math.MaxInt32 {
		// Absurdly large ensemble: keep the per-tree walk.
		f.packed, f.roots = nil, nil
		return
	}
	f.packed = make([]packedNode, 0, total)
	f.roots = make([]int32, len(f.trees))
	for ti, t := range f.trees {
		base := int32(len(f.packed))
		f.roots[ti] = base
		for _, n := range t.nodes {
			f.packed = append(f.packed, packedNode{
				threshold: n.threshold,
				prob:      n.prob,
				feature:   int32(n.feature),
				left:      base + int32(n.left),
				right:     base + int32(n.right),
			})
		}
	}
}

// TrainForest fits a random forest on X with binary labels y. Each tree is
// trained on a bootstrap of the positive class plus an under-sampled
// bootstrap of the negative class.
func TrainForest(x [][]float64, y []bool, cfg ForestConfig) *Forest {
	if len(x) == 0 || len(x) != len(y) {
		panic(fmt.Sprintf("rf: bad training set (%d samples, %d labels)", len(x), len(y)))
	}
	if cfg.Trees <= 0 {
		cfg.Trees = 100
	}
	if cfg.UnderSampleRatio <= 0 {
		cfg.UnderSampleRatio = 1
	}
	d := len(x[0])
	mtry := cfg.MTry
	if mtry <= 0 {
		mtry = int(math.Sqrt(float64(d)))
		if mtry < 1 {
			mtry = 1
		}
	}
	var pos, neg []int
	for i, lbl := range y {
		if lbl {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng := mathx.NewRNG(cfg.Seed)
	f := &Forest{trees: make([]*Tree, cfg.Trees)}
	for t := 0; t < cfg.Trees; t++ {
		trng := rng.Fork()
		var xi [][]float64
		var yi []bool
		switch {
		case len(pos) == 0 || len(neg) == 0:
			// Degenerate single-class data: bootstrap everything.
			for k := 0; k < len(x); k++ {
				i := trng.Intn(len(x))
				xi = append(xi, x[i])
				yi = append(yi, y[i])
			}
		default:
			nPos := len(pos)
			nNeg := int(float64(nPos)*cfg.UnderSampleRatio + 0.5)
			if nNeg < 1 {
				nNeg = 1
			}
			if nNeg > len(neg) {
				nNeg = len(neg)
			}
			for k := 0; k < nPos; k++ {
				xi = append(xi, x[pos[trng.Intn(len(pos))]])
				yi = append(yi, true)
			}
			for k := 0; k < nNeg; k++ {
				xi = append(xi, x[neg[trng.Intn(len(neg))]])
				yi = append(yi, false)
			}
		}
		f.trees[t] = TrainTree(xi, yi, TreeConfig{
			MaxDepth: cfg.MaxDepth, MinLeaf: cfg.MinLeaf, MTry: mtry,
		}, trng)
	}
	f.pack()
	return f
}

// PredictProb returns the mean positive-class probability across trees —
// "a value from 0 to 1 that represents the probability of an uncorrected
// error" (§4.2). As the paper observes for Myopic-RF, it is a score, not a
// calibrated probability.
func (f *Forest) PredictProb(x []float64) float64 {
	if len(f.roots) > 0 {
		sum := 0.0
		packed := f.packed
		for _, root := range f.roots {
			i := root
			for {
				nd := &packed[i]
				if nd.feature < 0 {
					sum += nd.prob
					break
				}
				if x[nd.feature] <= nd.threshold {
					i = nd.left
				} else {
					i = nd.right
				}
			}
		}
		return sum / float64(len(f.roots))
	}
	if len(f.trees) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range f.trees {
		sum += t.PredictProb(x)
	}
	return sum / float64(len(f.trees))
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }
