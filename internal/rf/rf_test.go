package rf

import (
	"testing"

	"repro/internal/mathx"
)

// axisData builds a linearly separable problem: positive iff x[0] > 0.5.
func axisData(n int, seed int64) ([][]float64, []bool) {
	rng := mathx.NewRNG(seed)
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = x[i][0] > 0.5
	}
	return x, y
}

func TestTreeLearnsAxisSplit(t *testing.T) {
	x, y := axisData(400, 1)
	tree := TrainTree(x, y, TreeConfig{MaxDepth: 4}, mathx.NewRNG(2))
	correct := 0
	probe, labels := axisData(200, 3)
	for i := range probe {
		pred := tree.PredictProb(probe[i]) > 0.5
		if pred == labels[i] {
			correct++
		}
	}
	if correct < 190 {
		t.Fatalf("tree accuracy %d/200", correct)
	}
}

func TestTreePureLeaf(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []bool{true, true, true}
	tree := TrainTree(x, y, TreeConfig{}, mathx.NewRNG(1))
	if got := tree.PredictProb([]float64{9}); got != 1 {
		t.Fatalf("pure-positive prob = %v", got)
	}
	if tree.Depth() != 0 {
		t.Fatalf("pure leaf depth %d", tree.Depth())
	}
}

func TestTreeMaxDepthRespected(t *testing.T) {
	x, y := axisData(500, 5)
	tree := TrainTree(x, y, TreeConfig{MaxDepth: 2}, mathx.NewRNG(1))
	if tree.Depth() > 2 {
		t.Fatalf("depth %d exceeds MaxDepth 2", tree.Depth())
	}
}

func TestTreeXORNeedsDepth(t *testing.T) {
	// XOR of two binary features: a depth-1 stump cannot separate it, a
	// depth-2 tree can.
	var x [][]float64
	var y []bool
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for k := 0; k < 25; k++ {
				x = append(x, []float64{float64(a), float64(b)})
				y = append(y, a != b)
			}
		}
	}
	deep := TrainTree(x, y, TreeConfig{MaxDepth: 3}, mathx.NewRNG(1))
	for i := range x {
		if (deep.PredictProb(x[i]) > 0.5) != y[i] {
			t.Fatalf("deep tree failed XOR at %v", x[i])
		}
	}
}

func TestTreeConstantFeaturesBecomeLeaf(t *testing.T) {
	x := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []bool{true, false, true, false}
	tree := TrainTree(x, y, TreeConfig{}, mathx.NewRNG(1))
	if got := tree.PredictProb([]float64{1, 1}); got != 0.5 {
		t.Fatalf("unsplittable data prob = %v, want 0.5", got)
	}
}

func TestTrainTreePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TrainTree(nil, nil, TreeConfig{}, mathx.NewRNG(1))
}

func TestForestLearnsAxisSplit(t *testing.T) {
	x, y := axisData(400, 7)
	f := TrainForest(x, y, ForestConfig{Trees: 30, MaxDepth: 6, Seed: 1})
	probe, labels := axisData(200, 8)
	correct := 0
	for i := range probe {
		if (f.PredictProb(probe[i]) > 0.5) == labels[i] {
			correct++
		}
	}
	if correct < 185 {
		t.Fatalf("forest accuracy %d/200", correct)
	}
	if f.NumTrees() != 30 {
		t.Fatalf("NumTrees = %d", f.NumTrees())
	}
}

func TestForestDeterministic(t *testing.T) {
	x, y := axisData(200, 9)
	cfg := ForestConfig{Trees: 10, MaxDepth: 4, Seed: 3}
	a := TrainForest(x, y, cfg)
	b := TrainForest(x, y, cfg)
	probe, _ := axisData(50, 10)
	for i := range probe {
		if a.PredictProb(probe[i]) != b.PredictProb(probe[i]) {
			t.Fatal("forest training not deterministic")
		}
	}
}

func TestForestImbalancedRecall(t *testing.T) {
	// 2% positive class, clearly separated: under-sampling must keep the
	// positives visible, giving high scores on positive-like points.
	rng := mathx.NewRNG(11)
	var x [][]float64
	var y []bool
	for i := 0; i < 2000; i++ {
		pos := rng.Bool(0.02)
		base := 0.0
		if pos {
			base = 5
		}
		x = append(x, []float64{base + rng.NormFloat64(), rng.NormFloat64()})
		y = append(y, pos)
	}
	f := TrainForest(x, y, ForestConfig{Trees: 40, MaxDepth: 6, UnderSampleRatio: 1, Seed: 2})
	if p := f.PredictProb([]float64{5, 0}); p < 0.7 {
		t.Fatalf("positive-region score %v too low despite under-sampling", p)
	}
	if p := f.PredictProb([]float64{0, 0}); p > 0.3 {
		t.Fatalf("negative-region score %v too high", p)
	}
}

func TestForestSingleClassDegenerate(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []bool{false, false, false}
	f := TrainForest(x, y, ForestConfig{Trees: 5, Seed: 1})
	if p := f.PredictProb([]float64{2}); p != 0 {
		t.Fatalf("all-negative forest prob = %v", p)
	}
}

func TestForestProbabilityRange(t *testing.T) {
	x, y := axisData(300, 13)
	f := TrainForest(x, y, ForestConfig{Trees: 20, MaxDepth: 3, Seed: 4})
	probe, _ := axisData(100, 14)
	for i := range probe {
		p := f.PredictProb(probe[i])
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
	}
}

// TestPackedPredictionMatchesTreeWalk: the contiguous packed layout must
// reproduce the per-tree walk bit for bit, including after a
// serialization round trip (which rebuilds the packing).
func TestPackedPredictionMatchesTreeWalk(t *testing.T) {
	x, y := axisData(400, 21)
	f := TrainForest(x, y, ForestConfig{Trees: 30, MaxDepth: 8, Seed: 3})
	if len(f.packed) == 0 || len(f.roots) != len(f.trees) {
		t.Fatal("forest not packed after training")
	}
	perTree := func(x []float64) float64 {
		sum := 0.0
		for _, tr := range f.trees {
			sum += tr.PredictProb(x)
		}
		return sum / float64(len(f.trees))
	}
	probe, _ := axisData(200, 22)
	for i := range probe {
		if got, want := f.PredictProb(probe[i]), perTree(probe[i]); got != want {
			t.Fatalf("probe %d: packed %v != per-tree %v", i, got, want)
		}
	}

	data, err := f.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var g Forest
	if err := g.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if len(g.packed) != len(f.packed) {
		t.Fatal("deserialized forest not repacked")
	}
	for i := range probe {
		if g.PredictProb(probe[i]) != f.PredictProb(probe[i]) {
			t.Fatalf("probe %d: round-tripped prediction differs", i)
		}
	}
}
