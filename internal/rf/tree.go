// Package rf implements the SC20-RF baseline of Boixaderas et al. (SC'20):
// CART decision trees with Gini impurity, bagged into a random forest with
// random under-sampling of the majority class — the configuration the SC'20
// study found best for UE prediction — plus the threshold machinery used by
// the SC20-RF and Myopic-RF policies of §4.2.
package rf

import (
	"fmt"
	"sort"

	"repro/internal/mathx"
)

// TreeConfig parameterizes CART training.
type TreeConfig struct {
	// MaxDepth bounds tree depth; 0 means unlimited.
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf (default 1).
	MinLeaf int
	// MTry is the number of random features considered per split; 0 means
	// all features (sqrt(d) is set by the forest).
	MTry int
}

// node is one tree node in a flat array representation.
type node struct {
	// feature < 0 marks a leaf.
	feature   int
	threshold float64
	left      int // index of left child (x[feature] <= threshold)
	right     int
	// prob is the positive-class fraction at a leaf.
	prob float64
}

// Tree is a trained CART classifier returning positive-class probabilities.
type Tree struct {
	nodes []node
}

// TrainTree fits a CART tree on X (n×d) with binary labels y. rng drives
// the per-split feature subsampling.
func TrainTree(x [][]float64, y []bool, cfg TreeConfig, rng *mathx.RNG) *Tree {
	if len(x) == 0 || len(x) != len(y) {
		panic(fmt.Sprintf("rf: bad training set (%d samples, %d labels)", len(x), len(y)))
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	t := &Tree{}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.build(x, y, idx, cfg, rng, 0)
	return t
}

// build grows the subtree over the sample indices idx and returns its node
// index.
func (t *Tree) build(x [][]float64, y []bool, idx []int, cfg TreeConfig, rng *mathx.RNG, depth int) int {
	pos := 0
	for _, i := range idx {
		if y[i] {
			pos++
		}
	}
	leaf := func() int {
		t.nodes = append(t.nodes, node{feature: -1, prob: float64(pos) / float64(len(idx))})
		return len(t.nodes) - 1
	}
	if pos == 0 || pos == len(idx) ||
		(cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) ||
		len(idx) < 2*cfg.MinLeaf {
		return leaf()
	}
	feat, thr, ok := bestSplit(x, y, idx, cfg, rng)
	if !ok {
		return leaf()
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.MinLeaf || len(right) < cfg.MinLeaf {
		return leaf()
	}
	// Reserve this node, then build children.
	self := len(t.nodes)
	t.nodes = append(t.nodes, node{feature: feat, threshold: thr})
	l := t.build(x, y, left, cfg, rng, depth+1)
	r := t.build(x, y, right, cfg, rng, depth+1)
	t.nodes[self].left = l
	t.nodes[self].right = r
	return self
}

// bestSplit scans a random subset of features for the split minimizing
// weighted Gini impurity.
func bestSplit(x [][]float64, y []bool, idx []int, cfg TreeConfig, rng *mathx.RNG) (feat int, thr float64, ok bool) {
	d := len(x[0])
	mtry := cfg.MTry
	if mtry <= 0 || mtry > d {
		mtry = d
	}
	feats := rng.Perm(d)[:mtry]

	type pair struct {
		v   float64
		pos bool
	}
	best := 2.0 // gini is <= 0.5 per side; weighted sum <= 0.5
	pairs := make([]pair, len(idx))
	for _, f := range feats {
		for k, i := range idx {
			pairs[k] = pair{v: x[i][f], pos: y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		totalPos := 0
		for _, p := range pairs {
			if p.pos {
				totalPos++
			}
		}
		n := len(pairs)
		leftPos := 0
		for k := 0; k < n-1; k++ {
			if pairs[k].pos {
				leftPos++
			}
			if pairs[k].v == pairs[k+1].v {
				continue // can't split between equal values
			}
			nl := k + 1
			nr := n - nl
			gl := gini(leftPos, nl)
			gr := gini(totalPos-leftPos, nr)
			g := (float64(nl)*gl + float64(nr)*gr) / float64(n)
			if g < best {
				best = g
				feat = f
				thr = (pairs[k].v + pairs[k+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

// gini returns the Gini impurity of a node with pos positives out of n.
func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// PredictProb returns the positive-class probability for one sample.
func (t *Tree) PredictProb(x []float64) float64 {
	i := 0
	for {
		nd := t.nodes[i]
		if nd.feature < 0 {
			return nd.prob
		}
		if x[nd.feature] <= nd.threshold {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// Depth returns the maximum depth of the tree (a single leaf has depth 0).
func (t *Tree) Depth() int {
	var walk func(i int) int
	walk = func(i int) int {
		nd := t.nodes[i]
		if nd.feature < 0 {
			return 0
		}
		l, r := walk(nd.left), walk(nd.right)
		if r > l {
			l = r
		}
		return l + 1
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return walk(0)
}
