package mathx

import "testing"

// TestFastRNGDeterministic pins that two fast RNGs from the same seed
// produce identical streams across every distribution helper.
func TestFastRNGDeterministic(t *testing.T) {
	a, b := NewFastRNG(42), NewFastRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("Float64 diverged at %d: %v vs %v", i, av, bv)
		}
		if av, bv := a.NormFloat64(), b.NormFloat64(); av != bv {
			t.Fatalf("NormFloat64 diverged at %d: %v vs %v", i, av, bv)
		}
		if av, bv := a.Intn(97), b.Intn(97); av != bv {
			t.Fatalf("Intn diverged at %d: %v vs %v", i, av, bv)
		}
	}
}

// TestFastRNGForkDeterministic pins that forked children are deterministic
// and independent of sibling consumption, matching the Fork contract of the
// default source.
func TestFastRNGForkDeterministic(t *testing.T) {
	a, b := NewFastRNG(7), NewFastRNG(7)
	ca1, ca2 := a.Fork(), a.Fork()
	_, cb2 := b.Fork(), b.Fork()
	if ca1.fast == nil || ca2.fast == nil {
		t.Fatal("fast RNG forked a non-fast child")
	}
	// Drain ca1 heavily; ca2 must still match cb2 exactly.
	for i := 0; i < 500; i++ {
		ca1.Float64()
	}
	for i := 0; i < 200; i++ {
		if av, bv := ca2.Int63(), cb2.Int63(); av != bv {
			t.Fatalf("sibling fork diverged at %d: %v vs %v", i, av, bv)
		}
	}
}

// TestFastRNGDistinctSeeds is a smoke test that different seeds give
// different streams (catches degenerate state initialization).
func TestFastRNGDistinctSeeds(t *testing.T) {
	a, b := NewFastRNG(1), NewFastRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collide on %d/64 outputs", same)
	}
}

// TestFastRNGUniformity sanity-checks the mean of Float64 draws.
func TestFastRNGUniformity(t *testing.T) {
	g := NewFastRNG(123)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += g.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

// BenchmarkRNGFork measures the default source's Fork cost (the ~4.9 KB
// lagged-Fibonacci reseed) against the PCG fast path.
func BenchmarkRNGFork(b *testing.B) {
	b.Run("default", func(b *testing.B) {
		g := NewRNG(1)
		for i := 0; i < b.N; i++ {
			_ = g.Fork()
		}
	})
	b.Run("fast", func(b *testing.B) {
		g := NewFastRNG(1)
		for i := 0; i < b.N; i++ {
			_ = g.Fork()
		}
	})
}
