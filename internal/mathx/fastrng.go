package mathx

import (
	"math"
	"math/bits"
	"math/rand"
)

// fastSource is a PCG XSL-RR 128/64 generator (O'Neill 2014): a 128-bit
// LCG state advanced with a fixed odd increment, whose output is the
// xor-folded state rotated by the top bits. It exists because the math/rand
// lagged-Fibonacci source behind NewRNG carries ~4.9 KB of state and pays a
// ~600-operation reseed on every Fork — measurable when training
// environments fork a fresh job-timeline stream per episode. fastSource is
// 32 bytes and forks by drawing two words, so Fork is O(copy).
//
// The stream is unrelated to NewRNG's for the same seed; callers opt in
// explicitly (NewFastRNG, env.Config.FastRNG) and the choice is part of the
// nn.KernelFast stream definition, never a silent swap.
type fastSource struct {
	hi, lo uint64
}

// pcgMulHi/pcgMulLo are the PCG default 128-bit multiplier
// 0x2360ed051fc65da44385df649fccf645; pcgIncHi/pcgIncLo the default odd
// increment 0x5851f42d4c957f2d14057b7ef767814f.
const (
	pcgMulHi = 0x2360ed051fc65da4
	pcgMulLo = 0x4385df649fccf645
	pcgIncHi = 0x5851f42d4c957f2d
	pcgIncLo = 0x14057b7ef767814f
)

// splitmix64 is the seed expander (Vigna): it turns correlated seeds into
// well-mixed state words.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func newFastSource(hi, lo uint64) *fastSource {
	s := &fastSource{hi: splitmix64(hi), lo: splitmix64(lo)}
	// One step decorrelates the freshly mixed state from its seed words.
	s.Uint64()
	return s
}

// Uint64 implements rand.Source64.
func (s *fastSource) Uint64() uint64 {
	hi, lo := s.hi, s.lo
	// state = state*mul + inc over 128 bits.
	carryHi, mulLo := bits.Mul64(lo, pcgMulLo)
	mulHi := carryHi + hi*pcgMulLo + lo*pcgMulHi
	var carry uint64
	s.lo, carry = bits.Add64(mulLo, pcgIncLo, 0)
	s.hi, _ = bits.Add64(mulHi, pcgIncHi, carry)
	// XSL-RR output of the pre-advance state.
	return bits.RotateLeft64(hi^lo, -int(hi>>58))
}

// Int63 implements rand.Source.
func (s *fastSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source.
func (s *fastSource) Seed(seed int64) {
	*s = *newFastSource(uint64(seed), uint64(seed)+1)
}

// NewFastRNG returns an RNG backed by the PCG fastSource instead of
// math/rand's default source. It draws a different (but equally
// deterministic) stream than NewRNG for the same seed; its advantage is
// Fork, which derives a child in O(copy) instead of the default source's
// ~4.9 KB reseed. Forked children are fast as well.
func NewFastRNG(seed int64) *RNG {
	src := newFastSource(uint64(seed), uint64(seed)^0x9e3779b97f4a7c15)
	return &RNG{r: rand.New(src), fast: src}
}

// forkFast derives an O(copy) child generator, consuming two words of the
// parent stream.
func (g *RNG) forkFast() *RNG {
	src := newFastSource(g.fast.Uint64(), g.fast.Uint64())
	return &RNG{r: rand.New(src), fast: src}
}

// FastPow computes x^p as exp(p*log(x)) — one transcendental pair instead
// of math.Pow's careful decomposition. For x > 0 it agrees with math.Pow to
// within a couple of ULPs (and handles x == 0 with the same ±Inf limits),
// which is ample for replay-priority shaping; it is not a bit-compatible
// replacement, so callers opt in per stream (nn.KernelFast).
func FastPow(x, p float64) float64 { return math.Exp(p * math.Log(x)) }
