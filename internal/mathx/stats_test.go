package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Error("zero value should report zeros")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v", w.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-9 {
		t.Errorf("var = %v", w.Var())
	}
	if math.Abs(w.Std()-math.Sqrt(32.0/7.0)) > 1e-9 {
		t.Errorf("std = %v", w.Std())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.3); math.Abs(got-3) > 1e-12 {
		t.Errorf("interpolated quantile = %v, want 3", got)
	}
}

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Sum([]float64{1.5, 2.5}); got != 4 {
		t.Errorf("Sum = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp wrong")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 3, 3, 2}) != 1 {
		t.Error("ArgMax should break ties low")
	}
	if ArgMax([]float64{-5}) != 0 {
		t.Error("single element")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 0.5, 1.5, 2.5, 99, -5}, 0, 3, 3)
	if h[0] != 3 || h[1] != 1 || h[2] != 2 {
		t.Errorf("histogram = %v", h)
	}
	if got := Histogram(nil, 0, 0, 0); len(got) != 0 {
		t.Error("degenerate histogram")
	}
}

func TestLogBinIndex(t *testing.T) {
	if LogBinIndex(0.5, 1, 2) != -1 {
		t.Error("below lo should be -1")
	}
	if LogBinIndex(1, 1, 2) != 0 {
		t.Error("x=lo should be bin 0")
	}
	if got := LogBinIndex(10, 1, 2); got != 2 {
		t.Errorf("one decade with 2 bins/decade = %d, want 2", got)
	}
	if got := LogBinIndex(1000, 1, 1); got != 3 {
		t.Errorf("three decades = %d, want 3", got)
	}
}

func TestClampProperty(t *testing.T) {
	f := func(x float64) bool {
		v := Clamp(x, -1, 1)
		return v >= -1 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	g := NewRNG(5)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = g.NormFloat64()
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := Quantile(xs, q)
		if v < prev-1e-12 {
			t.Fatalf("quantile not monotone at q=%v", q)
		}
		prev = v
	}
}
