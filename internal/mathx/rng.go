// Package mathx provides deterministic random-number utilities and the
// statistical distributions used by the telemetry and job simulators, plus
// small online-statistics helpers shared across the repository.
//
// Everything in this package is built on math/rand with explicit sources so
// that every simulation in the repository is reproducible from a single
// seed. The RNG type deliberately mirrors the subset of *rand.Rand that the
// simulators need, adding the distributions (Poisson, log-normal, bounded
// Pareto) that the standard library does not provide.
//
//uerl:deterministic
package mathx

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random number generator. It wraps *rand.Rand and
// adds the distributions needed by the simulators. The zero value is not
// usable; construct with NewRNG.
type RNG struct {
	r *rand.Rand
	// fast is non-nil when the RNG is backed by the O(copy)-forkable PCG
	// source (NewFastRNG) instead of math/rand's default source.
	fast *fastSource
}

// NewRNG returns an RNG seeded with seed. Two RNGs built from the same seed
// produce identical streams.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives a new independent RNG from this one. Forked generators are
// used to give each simulated component (node, DIMM, job stream) its own
// stream so that changing the amount of randomness consumed by one component
// does not perturb the others. Children inherit the parent's source family:
// a NewFastRNG parent forks fast children in O(copy).
func (g *RNG) Fork() *RNG {
	if g.fast != nil {
		return g.forkFast()
	}
	return NewRNG(g.r.Int63())
}

// ForkN derives n independent RNGs.
func (g *RNG) ForkN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = g.Fork()
	}
	return out
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Exponential returns an exponential variate with the given mean.
// A non-positive mean returns 0.
func (g *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// Poisson returns a Poisson variate with the given mean. For small means it
// uses Knuth's multiplication method; for large means a normal approximation
// keeps it O(1) (the simulators call this per DIMM per day).
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := mean + math.Sqrt(mean)*g.r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// LogNormal returns a log-normal variate with the given parameters of the
// underlying normal distribution (mu is the mean of log X, sigma its
// standard deviation).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// BoundedPareto returns a variate from a Pareto distribution with shape
// alpha truncated to [lo, hi]. It is used for HPC job node counts, which are
// heavy-tailed but bounded by the system size. lo and hi must be positive
// with lo < hi; alpha must be positive.
func (g *RNG) BoundedPareto(alpha, lo, hi float64) float64 {
	if lo >= hi {
		return lo
	}
	u := g.r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Geometric returns a geometric variate: the number of failures before the
// first success for success probability p in (0, 1]. Values are in [0, inf).
func (g *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return math.MaxInt32
	}
	// Inverse transform: floor(log(U)/log(1-p)).
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return int(math.Log(u) / math.Log(1-p))
}

// WeightedChoice returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Negative weights are treated as zero. If all
// weights are zero it returns a uniform index.
func (g *RNG) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return g.r.Intn(len(weights))
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
