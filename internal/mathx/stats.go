package mathx

import (
	"math"
	"sort"
)

// Welford implements Welford's online algorithm for running mean and
// variance. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x into the running statistics.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance, or 0 with fewer than two observations.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies and sorts the input.
// An empty slice returns 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 if empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ArgMax returns the index of the maximum element, breaking ties towards the
// lowest index. It panics on an empty slice.
func ArgMax(xs []float64) int {
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}

// Histogram counts xs into nbins equal-width bins over [lo, hi]. Values
// outside the range are clamped into the first/last bin.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	counts := make([]int, nbins)
	if nbins == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}

// LogBinIndex returns the logarithmic bin index of x for bins spanning
// [lo, hi) in decades split into binsPerDecade. Used by the Figure 6
// behaviour heat-map, whose x axis is log-scale UE cost. Returns -1 when x
// is below lo.
func LogBinIndex(x, lo float64, binsPerDecade int) int {
	if x < lo || lo <= 0 {
		return -1
	}
	return int(math.Log10(x/lo) * float64(binsPerDecade))
}
