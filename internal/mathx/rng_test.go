package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	g := NewRNG(7)
	f1 := g.Fork()
	f2 := g.Fork()
	// Consuming from f1 must not change f2's stream.
	want := make([]float64, 10)
	probe := NewRNG(7)
	probe.Fork() // advance past f1's seed draw
	f2clone := probe.Fork()
	for i := range want {
		want[i] = f2clone.Float64()
	}
	for i := 0; i < 100; i++ {
		f1.Float64()
	}
	for i := range want {
		if got := f2.Float64(); got != want[i] {
			t.Fatalf("fork streams not independent at %d: got %v want %v", i, got, want[i])
		}
	}
}

func TestForkN(t *testing.T) {
	g := NewRNG(1)
	rs := g.ForkN(5)
	if len(rs) != 5 {
		t.Fatalf("ForkN(5) returned %d generators", len(rs))
	}
	seen := map[float64]bool{}
	for _, r := range rs {
		v := r.Float64()
		if seen[v] {
			t.Fatalf("duplicate first draw %v across forks", v)
		}
		seen[v] = true
	}
}

func TestPoissonMean(t *testing.T) {
	g := NewRNG(3)
	for _, mean := range []float64{0.5, 4, 20, 200} {
		var w Welford
		for i := 0; i < 20000; i++ {
			w.Add(float64(g.Poisson(mean)))
		}
		if math.Abs(w.Mean()-mean) > 4*math.Sqrt(mean/20000)+0.5 {
			t.Errorf("Poisson(%v) sample mean %v too far", mean, w.Mean())
		}
	}
}

func TestPoissonEdge(t *testing.T) {
	g := NewRNG(3)
	if got := g.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := g.Poisson(-1); got != 0 {
		t.Errorf("Poisson(-1) = %d, want 0", got)
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(9)
	var w Welford
	for i := 0; i < 50000; i++ {
		w.Add(g.Exponential(3.0))
	}
	if math.Abs(w.Mean()-3.0) > 0.15 {
		t.Errorf("Exponential(3) sample mean %v", w.Mean())
	}
	if g.Exponential(0) != 0 || g.Exponential(-2) != 0 {
		t.Error("non-positive mean should return 0")
	}
}

func TestLogNormalMedian(t *testing.T) {
	g := NewRNG(11)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = g.LogNormal(2, 1)
	}
	med := Quantile(xs, 0.5)
	want := math.Exp(2.0)
	if math.Abs(med-want)/want > 0.1 {
		t.Errorf("LogNormal median %v, want about %v", med, want)
	}
}

func TestBoundedParetoRange(t *testing.T) {
	g := NewRNG(13)
	for i := 0; i < 10000; i++ {
		v := g.BoundedPareto(1.2, 1, 1000)
		if v < 1 || v > 1000 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
	}
	if got := g.BoundedPareto(1.2, 5, 5); got != 5 {
		t.Errorf("degenerate range should return lo, got %v", got)
	}
}

func TestBoundedParetoHeavyTail(t *testing.T) {
	g := NewRNG(17)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = g.BoundedPareto(1.0, 1, 10000)
	}
	med := Quantile(xs, 0.5)
	p99 := Quantile(xs, 0.99)
	if p99/med < 20 {
		t.Errorf("expected heavy tail: median %v p99 %v", med, p99)
	}
}

func TestGeometric(t *testing.T) {
	g := NewRNG(19)
	if g.Geometric(1) != 0 {
		t.Error("Geometric(1) must be 0")
	}
	var w Welford
	for i := 0; i < 30000; i++ {
		w.Add(float64(g.Geometric(0.25)))
	}
	// Mean of geometric(failures) is (1-p)/p = 3.
	if math.Abs(w.Mean()-3) > 0.2 {
		t.Errorf("Geometric(0.25) mean %v, want about 3", w.Mean())
	}
}

func TestWeightedChoice(t *testing.T) {
	g := NewRNG(23)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[g.WeightedChoice([]float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Errorf("weighted choice ordering wrong: %v", counts)
	}
	// All-zero weights fall back to uniform and must not panic.
	idx := g.WeightedChoice([]float64{0, 0})
	if idx != 0 && idx != 1 {
		t.Errorf("uniform fallback out of range: %d", idx)
	}
}

func TestWeightedChoiceNegativeIgnored(t *testing.T) {
	g := NewRNG(29)
	for i := 0; i < 1000; i++ {
		if got := g.WeightedChoice([]float64{-5, 0, 3}); got != 2 {
			t.Fatalf("negative weight selected: index %d", got)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	g := NewRNG(31)
	n := 0
	for i := 0; i < 10000; i++ {
		if g.Bool(0.3) {
			n++
		}
	}
	if n < 2700 || n > 3300 {
		t.Errorf("Bool(0.3) hit %d/10000", n)
	}
}

func TestPoissonNonNegativeProperty(t *testing.T) {
	g := NewRNG(37)
	f := func(mean float64) bool {
		m := math.Mod(math.Abs(mean), 500)
		return g.Poisson(m) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
