package experiments

import (
	"fmt"
	"io"

	"repro/internal/evalx"
	"repro/internal/jobs"
	"repro/internal/parx"
)

// Fig7Result reproduces Figure 7: the job-size sensitivity analysis. For
// each scaling factor a separate model is trained (the normal use case of
// training for the particular production system) and every approach's
// total cost (7a) and mitigation cost (7b) is reported at a 2 node–minute
// mitigation cost.
type Fig7Result struct {
	Factors []float64
	Runs    []evalx.CVResult
}

// DefaultFig7Factors are the paper's scaling factors.
var DefaultFig7Factors = []float64{0.1, 0.3, 1, 3, 10}

// RunFig7 regenerates Figure 7 over the given factors (nil selects the
// paper's sweep). The factor runs fan out over the shared world cache —
// the log (and therefore forests, which are trace-invariant) is the same
// for every factor, while samplers, thresholds and RL artifacts key on the
// per-factor trace — and merge by factor index, so the figure is
// deterministic for any worker count.
func RunFig7(w *World, factors []float64) Fig7Result {
	if factors == nil {
		factors = DefaultFig7Factors
	}
	res := Fig7Result{Factors: factors}
	traces := make([][]jobs.Job, len(factors))
	for i, f := range factors {
		traces[i] = jobs.Generate(w.JCfg.WithScale(f))
	}
	res.Runs = make([]evalx.CVResult, len(factors))
	parx.For(len(factors), 0, func(i int) {
		res.Runs[i] = evalx.RunCV(w.Log, traces[i], w.cvConfig(2))
	})
	return res
}

// Render writes 7a (total cost) and 7b (mitigation cost) tables.
func (r Fig7Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 7a: total cost (node-hours) vs job size scaling factor, 2 node-minute mitigation")
	r.renderOne(w, func(res evalx.Result) float64 { return res.TotalCost() })
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 7b: mitigation cost (node-hours) vs job size scaling factor")
	r.renderOne(w, func(res evalx.Result) float64 { return res.MitigationCost })
}

func (r Fig7Result) renderOne(w io.Writer, get func(evalx.Result) float64) {
	if len(r.Runs) == 0 || len(r.Runs[0].Totals) == 0 {
		return
	}
	header := []string{"approach"}
	for _, f := range r.Factors {
		header = append(header, fmt.Sprintf("x%g", f))
	}
	var rows [][]string
	for i, total := range r.Runs[0].Totals {
		row := []string{total.Policy}
		for _, cv := range r.Runs {
			row = append(row, nh(get(cv.Totals[i])))
		}
		rows = append(rows, row)
	}
	writeTable(w, header, rows)
}
