package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/env"
	"repro/internal/evalx"
	"repro/internal/features"
	"repro/internal/mathx"
	"repro/internal/policies"
)

// Fig6Result reproduces Figure 6: the fraction of decision points at which
// the trained RL agent triggers a mitigation, binned by potential UE cost
// (log-scale x axis, decades from 1 to 10^6 node–hours) and by the SC20-RF
// predicted probability (y axis, 0–100%). The RF score is not an agent
// input — as in the paper it serves as an external proxy for UE risk.
type Fig6Result struct {
	// CostDecades labels the x bins (lower bound of each decade).
	CostDecades []float64
	// ProbBins is the number of y bins over [0, 1].
	ProbBins int
	// Mitigate[y][x] counts mitigation decisions per bin; Total[y][x]
	// counts all decisions. Fraction = Mitigate/Total.
	Mitigate [][]int
	Total    [][]int
}

const (
	fig6Decades  = 7  // 10^0 .. 10^6
	fig6ProbBins = 10 // 0-10%, ..., 90-100%
)

// RunFig6 regenerates Figure 6 by training a single split and sweeping the
// agent over the held-out decision points. To populate the sparse
// high-cost bins, each decision point is additionally probed at synthetic
// cost levels spanning the full x axis (the paper likewise probes the
// agent's generalization to costs beyond the training maximum).
func RunFig6(w *World) Fig6Result {
	cfg := w.cvConfig(2)
	split := evalx.TrainSingleSplit(w.Log, w.Trace, cfg, 0.75)

	res := Fig6Result{ProbBins: fig6ProbBins}
	for d := 0; d < fig6Decades; d++ {
		res.CostDecades = append(res.CostDecades, math.Pow(10, float64(d)))
	}
	res.Mitigate = make([][]int, fig6ProbBins)
	res.Total = make([][]int, fig6ProbBins)
	for y := range res.Mitigate {
		res.Mitigate[y] = make([]int, fig6Decades)
		res.Total[y] = make([]int, fig6Decades)
	}

	rlDecider := &policies.RL{Policy: split.Policy}
	probe := func(v features.Vector, cost float64) {
		v[features.UECost] = cost
		prob := split.Forest.PredictProb(v.Predictor())
		x := mathLogBin(cost)
		y := int(prob * float64(fig6ProbBins))
		if y >= fig6ProbBins {
			y = fig6ProbBins - 1
		}
		if x < 0 || x >= fig6Decades {
			return
		}
		res.Total[y][x]++
		if rlDecider.Decide(policies.Context{Features: v}) {
			res.Mitigate[y][x]++
		}
	}

	// Replay the held-out ticks through a feature tracker, probing each
	// decision point at its real cost and at synthetic decade costs.
	rng := mathx.NewRNG(w.Scale.Seed + 77)
	for _, ticks := range split.ByNode {
		tracker := features.NewTracker()
		tl := env.NewTimeline(split.Sampler, rng.Fork(), split.Env.Restartable, ticks[0].Time)
		for _, tick := range ticks {
			tl.AdvanceTo(tick.Time)
			if tick.HasUE() {
				tracker.Observe(tick, 0)
				tl.OnUE(tick.Time)
				continue
			}
			cost := tl.CostAt(tick.Time)
			v := tracker.Observe(tick, cost)
			if tick.Time.Before(split.TrainTo) {
				continue
			}
			probe(v, math.Max(cost, 1))
			for _, c := range []float64{3, 30, 300, 3000, 30000, 300000} {
				probe(v, c)
			}
		}
	}
	return res
}

func mathLogBin(cost float64) int {
	if cost < 1 {
		return 0
	}
	b := int(math.Log10(cost))
	if b >= fig6Decades {
		b = fig6Decades - 1
	}
	return b
}

// Render draws the heat map as a text grid: rows are RF probability bins
// (top = high), columns are cost decades, cells are mitigation fractions.
func (r Fig6Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: fraction of events where the RL agent mitigates,")
	fmt.Fprintln(w, "by potential UE cost (columns, node-hours, log scale) and RF-predicted probability (rows)")
	header := []string{"RF prob \\ cost"}
	for _, c := range r.CostDecades {
		header = append(header, fmt.Sprintf(">=%.0e", c))
	}
	var rows [][]string
	for y := r.ProbBins - 1; y >= 0; y-- {
		row := []string{fmt.Sprintf("%3d-%3d%%", y*100/r.ProbBins, (y+1)*100/r.ProbBins)}
		for x := range r.CostDecades {
			if r.Total[y][x] == 0 {
				row = append(row, "   .  ")
			} else {
				row = append(row, fmt.Sprintf("%6.2f", float64(r.Mitigate[y][x])/float64(r.Total[y][x])))
			}
		}
		rows = append(rows, row)
	}
	writeTable(w, header, rows)
}

// MitigationFraction returns the overall mitigate fraction in a cost
// decade, across probability bins (used by shape tests: the fraction must
// grow with cost).
func (r Fig6Result) MitigationFraction(decade int) float64 {
	mit, tot := 0, 0
	for y := 0; y < r.ProbBins; y++ {
		mit += r.Mitigate[y][decade]
		tot += r.Total[y][decade]
	}
	if tot == 0 {
		return 0
	}
	return float64(mit) / float64(tot)
}
