package experiments

import (
	"fmt"
	"io"

	"repro/internal/telemetry"
)

// CalibrationResult checks the synthetic log against the paper's §2.1
// aggregate statistics (scaled by the telemetry scale factor).
type CalibrationResult struct {
	Scale float64
	Stats telemetry.Stats
}

// RunCalibration summarizes the world's error log.
func RunCalibration(w *World) CalibrationResult {
	return CalibrationResult{Scale: w.Scale.TelemetryScale, Stats: telemetry.Summarize(w.Log)}
}

// Render writes paper-target vs measured counts.
func (r CalibrationResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Log calibration (paper §2.1 targets scaled by population factor)")
	s := r.Stats
	f := r.Scale
	rows := [][]string{
		{"nodes", fmt.Sprintf("%.0f", 3056*f), fmt.Sprintf("%d", s.Nodes)},
		{"total corrected errors", fmt.Sprintf("%.0f", 4_500_000*f), fmt.Sprintf("%d", s.TotalCEs)},
		{"raw uncorrected errors", fmt.Sprintf("%.0f", 333*f), fmt.Sprintf("%d", s.UEs)},
		{"first-in-burst UEs", fmt.Sprintf("%.0f", 67*f), fmt.Sprintf("%d", s.FirstUEs)},
		{"DIMM retirements", fmt.Sprintf("%.0f", 51*f), fmt.Sprintf("%d", s.Retirements)},
		{"post-merge events", fmt.Sprintf("%.0f", 259_270*f), fmt.Sprintf("%d", s.PostMergeTicks)},
		{"UE warnings", "-", fmt.Sprintf("%d", s.UEWarnings)},
		{"boots", "-", fmt.Sprintf("%d", s.Boots)},
	}
	writeTable(w, []string{"quantity", "paper (scaled)", "measured"}, rows)
	fmt.Fprintf(w, "per-manufacturer first UEs: A=%d B=%d C=%d\n",
		s.PerManufacturerUEs[0], s.PerManufacturerUEs[1], s.PerManufacturerUEs[2])
}
