// Package experiments contains one runner per table and figure of the
// paper's evaluation (§5), each regenerating the corresponding rows/series
// from the synthetic MareNostrum logs: Fig. 3 (cost–benefit vs mitigation
// cost), Fig. 4 (per-split time series), Fig. 5 (per-manufacturer), Fig. 6
// (agent behaviour heat-map), Table 2 (classical ML metrics), Fig. 7
// (job-size sensitivity), plus the §2.1 calibration check and the ablation
// studies called out in DESIGN.md.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/errlog"
	"repro/internal/evalx"
	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// Scale bundles the world size and protocol budget for a run.
type Scale struct {
	// TelemetryScale multiplies the MN3 population (1 = paper scale).
	TelemetryScale float64
	// MinUEs floors the number of first-in-burst UEs. Scaling the
	// population down linearly would leave single-digit UE counts that no
	// method (RF or RL) can learn from; the small presets keep a floor at
	// the cost of a milder class imbalance, which DESIGN.md documents.
	// Zero keeps the population-proportional count.
	MinUEs int
	// JobCount is the size of the synthetic MN4 trace.
	JobCount int
	// Parts is the number of cross-validation parts.
	Parts int
	// Preset is the evaluation compute budget.
	Preset evalx.Preset
	// Seed drives everything.
	Seed int64
}

// ScaleFor returns the standard scale for a preset (DESIGN.md §4).
func ScaleFor(p evalx.Preset) Scale {
	switch p {
	case evalx.PresetPaper:
		return Scale{TelemetryScale: 1, JobCount: 20000, Parts: 6, Preset: p, Seed: 1}
	case evalx.PresetDefault:
		return Scale{TelemetryScale: 0.12, MinUEs: 30, JobCount: 8000, Parts: 6, Preset: p, Seed: 1}
	default:
		return Scale{TelemetryScale: 0.04, MinUEs: 20, JobCount: 3000, Parts: 3, Preset: p, Seed: 1}
	}
}

// World is the synthetic input shared by all experiments: the MN3-style
// error log and the MN4-style job trace, plus the cross-figure artifact
// cache. Every Run* entry point evaluates through the cache, so the
// config-invariant artifacts — the preprocessed/merged/grouped tick
// pipeline, per-split RF datasets and trained forests (invariant across
// mitigation costs), optimal thresholds and manufacturer partitions — are
// computed once per World and reused by the whole figure suite. Figure
// output is byte-identical with the cache disabled (see DisableCache and
// the equivalence test in render_test.go).
type World struct {
	Scale Scale
	Log   *errlog.Log
	Trace []jobs.Job
	TCfg  telemetry.Config
	JCfg  jobs.Config

	cache      *evalx.Cache
	partMu     sync.Mutex
	parts      map[errlog.Manufacturer]*errlog.Log
	partCaches map[errlog.Manufacturer]*evalx.Cache
}

// BuildWorld generates the synthetic world for a scale.
func BuildWorld(s Scale) *World {
	tcfg := telemetry.Default().Scale(s.TelemetryScale)
	tcfg.Seed = s.Seed
	if total := tcfg.SignaledUEs + tcfg.SuddenUEs; s.MinUEs > 0 && total < s.MinUEs {
		ratio := float64(s.MinUEs) / float64(total)
		tcfg.SignaledUEs = int(float64(tcfg.SignaledUEs)*ratio + 0.5)
		tcfg.SuddenUEs = s.MinUEs - tcfg.SignaledUEs
	}
	jcfg := jobs.Default()
	jcfg.Count = s.JobCount
	jcfg.Seed = s.Seed + 1
	return &World{
		Scale:      s,
		Log:        telemetry.Generate(tcfg),
		Trace:      jobs.Generate(jcfg),
		TCfg:       tcfg,
		JCfg:       jcfg,
		cache:      evalx.NewCache(),
		parts:      map[errlog.Manufacturer]*errlog.Log{},
		partCaches: map[errlog.Manufacturer]*evalx.Cache{},
	}
}

// Cache exposes the world's artifact cache (nil after DisableCache).
func (w *World) Cache() *evalx.Cache { return w.cache }

// DisableCache turns artifact memoization off for this world: every
// figure run recomputes its pipeline and models from scratch (the legacy
// behaviour). Used by the cold-vs-cached equivalence tests.
func (w *World) DisableCache() { w.cache = nil }

// ResetCache drops every memoized artifact (including the per-partition
// caches and partition logs), re-enabling memoization on fresh caches.
// The figure benchmarks call it between iterations so each reported run
// is a cold regeneration rather than a replay of the previous
// iteration's artifacts.
func (w *World) ResetCache() {
	w.partMu.Lock()
	defer w.partMu.Unlock()
	w.cache = evalx.NewCache()
	w.parts = map[errlog.Manufacturer]*errlog.Log{}
	w.partCaches = map[errlog.Manufacturer]*evalx.Cache{}
}

// Partition returns the per-manufacturer sub-log, memoized so repeated
// Figure 5 runs (and their downstream tick/forest artifacts, keyed by log
// identity) reuse one partition instead of rebuilding it.
func (w *World) Partition(m errlog.Manufacturer) *errlog.Log {
	if w.cache == nil {
		return w.Log.PartitionManufacturer(m)
	}
	w.partMu.Lock()
	defer w.partMu.Unlock()
	if part, ok := w.parts[m]; ok {
		return part
	}
	part := w.Log.PartitionManufacturer(m)
	w.parts[m] = part
	return part
}

// PartitionCache returns manufacturer m's artifact cache, created on first
// use. Each Figure 5 partition gets its own cache so the fan-out workers
// share nothing but the world; results are keyed by the partition log, so
// repeated Figure 5 runs over one world still reuse every artifact. Nil
// when caching is disabled.
func (w *World) PartitionCache(m errlog.Manufacturer) *evalx.Cache {
	if w.cache == nil {
		return nil
	}
	w.partMu.Lock()
	defer w.partMu.Unlock()
	c, ok := w.partCaches[m]
	if !ok {
		c = evalx.NewCache()
		w.partCaches[m] = c
	}
	return c
}

// cvConfig builds the evaluation config for this world.
func (w *World) cvConfig(mitigationNodeMinutes float64) evalx.CVConfig {
	cfg := evalx.DefaultCVConfig(w.Scale.Preset)
	cfg.Parts = w.Scale.Parts
	cfg.Seed = w.Scale.Seed
	cfg.Env.MitigationCostNodeMinutes = mitigationNodeMinutes
	cfg.Cache = w.cache
	return cfg
}

// writeTable renders rows of (label, cells...) with aligned columns.
func writeTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
}

func nh(v float64) string { return fmt.Sprintf("%.0f", v) }
