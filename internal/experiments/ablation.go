package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/env"
	"repro/internal/errlog"
	"repro/internal/evalx"
	"repro/internal/features"
	"repro/internal/policies"
	"repro/internal/rl"
)

// AblationResult compares the design choices DESIGN.md calls out: PER vs
// uniform replay (§3.3.4), dueling+double vs vanilla DQN (§3.1), and the
// potential-UE-cost feature vs a cost-blind agent (the paper's adaptivity
// claim). All variants are trained on the same single split with identical
// budgets and evaluated on the held-out tail.
type AblationResult struct {
	Variants []string
	Results  []evalx.Result
}

// RunAblation trains and evaluates the ablation variants.
func RunAblation(w *World) AblationResult {
	cfg := w.cvConfig(2)
	art := w.cache.Ticks(w.Log)
	byNode := art.ByNode
	sampler := w.cache.Sampler(w.Trace)
	first, last := art.Pre.Span()
	trainTo := first.Add(time.Duration(float64(last.Sub(first)) * 0.6))
	trainTicks := trimTicks(byNode, trainTo)

	episodes := ablationEpisodes(w.Scale.Preset)
	base := rl.AgentConfig{
		StateLen: features.Dim, NumActions: env.NumActions,
		Hidden: []int{32, 16}, Dueling: true, DoubleDQN: true,
		Gamma: 0.95, LearningRate: 3e-3, BatchSize: 32,
		SyncEvery: 200, HuberDelta: 1, GradClip: 10,
		Epsilon: rl.EpsilonSchedule{Start: 1, End: 0.02, DecaySteps: 4000},
		Seed:    w.Scale.Seed,
	}

	type variant struct {
		name     string
		cfg      rl.AgentConfig
		replay   rl.Replay
		maskCost bool
	}
	variants := []variant{
		{name: "DDDQN+PER (paper)", cfg: base,
			replay: rl.NewPrioritizedReplay(rl.PERConfig{Capacity: 1 << 15})},
		{name: "uniform replay", cfg: base,
			replay: rl.NewUniformReplay(1 << 15)},
		{name: "vanilla DQN", cfg: vanilla(base),
			replay: rl.NewPrioritizedReplay(rl.PERConfig{Capacity: 1 << 15})},
		{name: "no cost feature", cfg: base, maskCost: true,
			replay: rl.NewPrioritizedReplay(rl.PERConfig{Capacity: 1 << 15})},
	}

	res := AblationResult{}
	for i, v := range variants {
		envCfg := cfg.Env
		envCfg.Seed = cfg.Seed + int64(i)*17
		if w.Scale.Preset != evalx.PresetPaper {
			envCfg.UENodeBoost = 50
		}
		var trainEnv rl.Environment = env.NewMitigationEnv(envCfg, trainTicks, sampler)
		if v.maskCost {
			trainEnv = &maskedEnv{inner: trainEnv, index: features.UECost}
		}
		agent := rl.NewAgent(v.cfg, v.replay)
		rl.Train(agent, trainEnv, rl.TrainOptions{Episodes: episodes, MaxStepsPerEpisode: 4096})
		pol := agent.SnapshotPolicy()
		if v.maskCost {
			pol = maskPolicy(pol, features.UECost)
		}
		d := &policies.RL{Policy: pol, Label: v.name}
		r := evalx.Replay(d, byNode, sampler, evalx.ReplayConfig{
			Env: cfg.Env, JobSeed: cfg.Seed + 5, From: trainTo,
		})
		res.Variants = append(res.Variants, v.name)
		res.Results = append(res.Results, r)
	}
	return res
}

func vanilla(c rl.AgentConfig) rl.AgentConfig {
	c.Dueling = false
	c.DoubleDQN = false
	return c
}

func ablationEpisodes(p evalx.Preset) int {
	switch p {
	case evalx.PresetPaper:
		return 20000
	case evalx.PresetDefault:
		return 500
	default:
		return 120
	}
}

// trimTicks trims each node's sequence to ticks strictly before t (binary
// search; per-node sequences are time-sorted).
func trimTicks(byNode [][]errlog.Tick, t time.Time) [][]errlog.Tick {
	out := make([][]errlog.Tick, 0, len(byNode))
	for _, ticks := range byNode {
		end := sort.Search(len(ticks), func(i int) bool {
			return !ticks[i].Time.Before(t)
		})
		if end > 0 {
			out = append(out, ticks[:end])
		}
	}
	return out
}

// maskedEnv zeroes one state feature, hiding it from the agent.
type maskedEnv struct {
	inner rl.Environment
	index int
}

func (m *maskedEnv) Reset() []float64 {
	s := m.inner.Reset()
	s[m.index] = 0
	return s
}

func (m *maskedEnv) Step(a int) ([]float64, float64, bool) {
	s, r, done := m.inner.Step(a)
	s[m.index] = 0
	return s, r, done
}

func (m *maskedEnv) NumActions() int { return m.inner.NumActions() }
func (m *maskedEnv) StateLen() int   { return m.inner.StateLen() }

// maskPolicy zeroes a feature before delegating, so evaluation matches the
// masked training distribution.
func maskPolicy(p rl.Policy, index int) rl.Policy {
	buf := make([]float64, 0, features.Dim)
	return rl.PolicyFunc(func(s []float64) int {
		buf = append(buf[:0], s...)
		buf[index] = 0
		return p.Action(buf)
	})
}

// Render writes the comparison table.
func (r AblationResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation: agent design choices, single split, identical budgets")
	header := []string{"variant", "total nh", "ue nh", "mitig nh", "mitigations", "recall"}
	var rows [][]string
	for _, res := range r.Results {
		rows = append(rows, []string{
			res.Policy, nh(res.TotalCost()), nh(res.UECost), nh(res.MitigationCost),
			fmt.Sprintf("%d", res.Metrics.Mitigations),
			fmt.Sprintf("%.0f%%", 100*res.Metrics.Recall()),
		})
	}
	writeTable(w, header, rows)
}
