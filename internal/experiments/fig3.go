package experiments

import (
	"fmt"
	"io"

	"repro/internal/evalx"
)

// Fig3Result reproduces Figure 3: total cost (UE + mitigation) for every
// §4.2 approach at mitigation costs of 2, 5 and 10 node–minutes, summed
// over all cross-validation splits.
type Fig3Result struct {
	// MitigationCosts lists the evaluated costs in node–minutes.
	MitigationCosts []float64
	// Runs holds the cross-validation totals per mitigation cost.
	Runs []evalx.CVResult
}

// RunFig3 regenerates Figure 3.
func RunFig3(w *World) Fig3Result {
	res := Fig3Result{MitigationCosts: []float64{2, 5, 10}}
	for _, mc := range res.MitigationCosts {
		cv := evalx.RunCV(w.Log, w.Trace, w.cvConfig(mc))
		res.Runs = append(res.Runs, cv)
	}
	return res
}

// Render writes the figure's data as a table: one row per approach, one
// column group per mitigation cost.
func (r Fig3Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 3: total cost (node-hours) = UE cost + mitigation cost, per mitigation cost")
	if len(r.Runs) == 0 {
		return
	}
	header := []string{"approach"}
	for _, mc := range r.MitigationCosts {
		header = append(header,
			fmt.Sprintf("total@%gnm", mc),
			fmt.Sprintf("ue@%gnm", mc),
			fmt.Sprintf("mitig@%gnm", mc))
	}
	var rows [][]string
	for i, total := range r.Runs[0].Totals {
		row := []string{total.Policy}
		for _, cv := range r.Runs {
			res := cv.Totals[i]
			row = append(row, nh(res.TotalCost()), nh(res.UECost), nh(res.MitigationCost+res.TrainingCost))
		}
		rows = append(rows, row)
	}
	writeTable(w, header, rows)
}
