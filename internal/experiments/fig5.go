package experiments

import (
	"fmt"
	"io"

	"repro/internal/errlog"
	"repro/internal/evalx"
	"repro/internal/parx"
)

// Fig5Result reproduces Figure 5: total cost per DRAM manufacturer
// partition at a 2 node–minute mitigation cost. MN/All trains and evaluates
// one model on the whole system; MN/A, MN/B and MN/C train and evaluate
// separately per manufacturer; MN/ABC is the sum of the three.
type Fig5Result struct {
	Labels []string
	Runs   []evalx.CVResult // parallel to Labels; MN/ABC holds summed totals
}

// RunFig5 regenerates Figure 5. The per-manufacturer runs are independent
// — separate logs, separate artifact caches — so they fan out across
// workers and merge by manufacturer index, which keeps the figure
// deterministic for any worker count.
func RunFig5(w *World) Fig5Result {
	res := Fig5Result{}
	cfg := w.cvConfig(2)

	all := evalx.RunCV(w.Log, w.Trace, cfg)
	res.Labels = append(res.Labels, "MN/All")
	res.Runs = append(res.Runs, all)

	runs := make([]evalx.CVResult, errlog.NumManufacturers)
	parx.For(int(errlog.NumManufacturers), 0, func(i int) {
		m := errlog.Manufacturer(i)
		pcfg := cfg
		pcfg.Cache = w.PartitionCache(m)
		runs[i] = evalx.RunCV(w.Partition(m), w.Trace, pcfg)
	})

	var abc evalx.CVResult
	for m := errlog.Manufacturer(0); m < errlog.NumManufacturers; m++ {
		cv := runs[m]
		res.Labels = append(res.Labels, "MN/"+m.String())
		res.Runs = append(res.Runs, cv)
		if len(abc.Totals) == 0 {
			abc.Totals = make([]evalx.Result, len(cv.Totals))
			for i := range abc.Totals {
				abc.Totals[i].Policy = cv.Totals[i].Policy
			}
		}
		for i := range cv.Totals {
			if i < len(abc.Totals) {
				abc.Totals[i].Add(cv.Totals[i])
			}
		}
	}
	res.Labels = append(res.Labels, "MN/ABC")
	res.Runs = append(res.Runs, abc)
	return res
}

// Render writes one row per approach and one column per partition.
func (r Fig5Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: total cost (node-hours) per DRAM manufacturer partition, 2 node-minute mitigation")
	if len(r.Runs) == 0 || len(r.Runs[0].Totals) == 0 {
		return
	}
	header := append([]string{"approach"}, r.Labels...)
	var rows [][]string
	for i, total := range r.Runs[0].Totals {
		row := []string{total.Policy}
		for _, cv := range r.Runs {
			if i < len(cv.Totals) {
				row = append(row, nh(cv.Totals[i].TotalCost()))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	writeTable(w, header, rows)
}
