package experiments

import (
	"fmt"
	"io"

	"repro/internal/evalx"
	"repro/internal/mathx"
	"repro/internal/policies"
)

// Table2Result reproduces Table 2: TPs, FNs, FPs, TNs, mitigation counts,
// recall and precision for every approach under the MN4 job distribution,
// plus the RL policy evaluated under three uniform UE-cost ranges (<100,
// 100–1000 and ≥1000 node–hours) showing its adaptivity.
type Table2Result struct {
	// Base holds the cross-validation totals for all approaches.
	Base evalx.CVResult
	// CostRanges labels the synthetic RL rows.
	CostRanges []string
	// RangeResults holds the RL metrics per cost range.
	RangeResults []evalx.Result
}

// RunTable2 regenerates Table 2.
func RunTable2(w *World) Table2Result {
	cfg := w.cvConfig(2)
	res := Table2Result{Base: evalx.RunCV(w.Log, w.Trace, cfg)}

	// The cost-range rows evaluate one trained agent under uniform UE-cost
	// draws replacing the workload model (§5.5).
	split := evalx.TrainSingleSplit(w.Log, w.Trace, cfg, 0.6)
	ranges := []struct {
		label  string
		lo, hi float64
	}{
		{"RL, UE cost < 100 nh", 1, 100},
		{"RL, 100 <= UE cost < 1000 nh", 100, 1000},
		{"RL, UE cost >= 1000 nh", 1000, 32000},
	}
	for _, rg := range ranges {
		lo, hi := rg.lo, rg.hi
		cfgR := evalx.ReplayConfig{
			Env: cfg.Env, JobSeed: cfg.Seed + 31, From: split.TrainTo,
			CostOverride: func(rng *mathx.RNG) float64 {
				return lo + rng.Float64()*(hi-lo)
			},
		}
		d := &policies.RL{Policy: split.Policy, Label: rg.label}
		res.CostRanges = append(res.CostRanges, rg.label)
		res.RangeResults = append(res.RangeResults, evalx.Replay(d, split.ByNode, split.Sampler, cfgR))
	}
	return res
}

// Render writes the table in the paper's layout.
func (r Table2Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 2: prediction results and classical machine learning metrics")
	header := []string{"approach", "TPs", "FNs", "FPs", "TNs", "mitigations", "recall", "precision"}
	var rows [][]string
	row := func(res evalx.Result) []string {
		m := res.Metrics
		prec := "n/a"
		if m.TPs+m.FPs > 0 {
			prec = fmt.Sprintf("%.4f%%", 100*m.Precision())
		}
		frac := 0.0
		if m.Mitigations+m.NonMitigations > 0 {
			frac = float64(m.Mitigations) / float64(m.Mitigations+m.NonMitigations)
		}
		return []string{
			res.Policy,
			fmt.Sprintf("%d", m.TPs), fmt.Sprintf("%d", m.FNs),
			fmt.Sprintf("%d", m.FPs), fmt.Sprintf("%d", m.TNs),
			fmt.Sprintf("%d (%.0f%%)", m.Mitigations, 100*frac),
			fmt.Sprintf("%.0f%%", 100*m.Recall()),
			prec,
		}
	}
	for _, res := range r.Base.Totals {
		rows = append(rows, row(res))
	}
	for _, res := range r.RangeResults {
		rows = append(rows, row(res))
	}
	writeTable(w, header, rows)
}
