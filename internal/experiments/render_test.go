package experiments

import (
	"strings"
	"testing"

	"repro/internal/errlog"
	"repro/internal/evalx"
)

// fixedResult builds a deterministic evalx.Result for golden rendering.
func fixedResult(policy string, ue, mit, train float64, m evalx.MLMetrics) evalx.Result {
	return evalx.Result{
		Policy: policy, UECost: ue, MitigationCost: mit, TrainingCost: train,
		Decisions: m.Mitigations + m.NonMitigations,
		UEs:       m.TPs + m.FNs,
		Metrics:   m,
	}
}

// TestFig3RenderGolden pins the exact table layout Fig3Result.Render
// emits. The render paths were previously exercised only through the
// benchmarks, so a formatting regression could land silently.
func TestFig3RenderGolden(t *testing.T) {
	mk := func(scale float64) evalx.CVResult {
		return evalx.CVResult{Totals: []evalx.Result{
			fixedResult("Never-mitigate", 1000.4*scale, 0, 0, evalx.MLMetrics{FNs: 5, NonMitigations: 10, TNs: 5}),
			fixedResult("RL", 420.6*scale, 30.2*scale, 1.5, evalx.MLMetrics{TPs: 3, FNs: 2, FPs: 4, TNs: 1, Mitigations: 7, NonMitigations: 3}),
		}}
	}
	r := Fig3Result{
		MitigationCosts: []float64{2, 10},
		Runs:            []evalx.CVResult{mk(1), mk(2)},
	}
	var sb strings.Builder
	r.Render(&sb)
	want := `Figure 3: total cost (node-hours) = UE cost + mitigation cost, per mitigation cost
approach        total@2nm  ue@2nm  mitig@2nm  total@10nm  ue@10nm  mitig@10nm
Never-mitigate  1000       1000    0          2001        2001     0
RL              452        421     32         903         841      62
`
	if sb.String() != want {
		t.Fatalf("Fig3 render drifted:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestTable2RenderGolden pins Table2Result.Render, including the n/a
// precision case and the cost-range rows.
func TestTable2RenderGolden(t *testing.T) {
	r := Table2Result{
		Base: evalx.CVResult{Totals: []evalx.Result{
			fixedResult("Never-mitigate", 900, 0, 0, evalx.MLMetrics{FNs: 8, NonMitigations: 20, TNs: 12}),
			fixedResult("Oracle", 120, 1.4, 0, evalx.MLMetrics{TPs: 5, FNs: 3, Mitigations: 5, NonMitigations: 15, TNs: 15}),
		}},
		CostRanges: []string{"RL, UE cost < 100 nh"},
		RangeResults: []evalx.Result{
			fixedResult("RL, UE cost < 100 nh", 80, 12, 0, evalx.MLMetrics{TPs: 4, FNs: 4, FPs: 36, TNs: 60, Mitigations: 40, NonMitigations: 64}),
		},
	}
	var sb strings.Builder
	r.Render(&sb)
	want := `Table 2: prediction results and classical machine learning metrics
approach              TPs  FNs  FPs  TNs  mitigations  recall  precision
Never-mitigate        0    8    0    12   0 (0%)       0%      n/a
Oracle                5    3    0    15   5 (25%)      62%     100.0000%
RL, UE cost < 100 nh  4    4    36   60   40 (38%)     50%     10.0000%
`
	if sb.String() != want {
		t.Fatalf("Table 2 render drifted:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestPartitionMemoized: the cached partition must be the same content as
// an uncached one, and repeated calls must reuse the same log.
func TestPartitionMemoized(t *testing.T) {
	w := testWorld(t)
	a := w.Partition(errlog.Manufacturer(0))
	b := w.Partition(errlog.Manufacturer(0))
	if a != b {
		t.Fatal("partition not memoized")
	}
	fresh := w.Log.PartitionManufacturer(errlog.Manufacturer(0))
	if len(fresh.Events) != len(a.Events) {
		t.Fatalf("memoized partition has %d events, fresh has %d", len(a.Events), len(fresh.Events))
	}
	for i := range fresh.Events {
		if fresh.Events[i] != a.Events[i] {
			t.Fatalf("partition event %d differs", i)
		}
	}
}

// TestCachedWorldMatchesColdWorld is the cross-figure cache's hard
// correctness bar: a World whose artifact cache is warmed by the whole
// figure suite must render byte-identical tables to cold Worlds that
// recompute everything per figure. Covers the tick pipeline, RF dataset,
// forest, optimal-threshold and sampler caches (Fig. 3 exercises the
// across-mitigation-cost forest sharing; Table 2 exercises
// TrainSingleSplit).
func TestCachedWorldMatchesColdWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("cached-vs-cold equivalence in short mode")
	}
	scale := Scale{TelemetryScale: 0.02, MinUEs: 12, JobCount: 1200, Parts: 2, Preset: evalx.PresetCI, Seed: 1}

	render := func(w *World) (string, string) {
		var f3, t2 strings.Builder
		RunFig3(w).Render(&f3)
		RunTable2(w).Render(&t2)
		return f3.String(), t2.String()
	}

	warm := BuildWorld(scale)
	warmF3, warmT2 := render(warm)

	cold := BuildWorld(scale)
	cold.DisableCache()
	coldF3, coldT2 := render(cold)

	if warmF3 != coldF3 {
		t.Errorf("Figure 3 differs between cached and cold worlds:\n--- cached ---\n%s--- cold ---\n%s", warmF3, coldF3)
	}
	if warmT2 != coldT2 {
		t.Errorf("Table 2 differs between cached and cold worlds:\n--- cached ---\n%s--- cold ---\n%s", warmT2, coldT2)
	}

	// Re-rendering on the (now fully warm) cached world must also be
	// stable: memoized artifacts feed repeat regenerations.
	againF3, againT2 := render(warm)
	if againF3 != warmF3 || againT2 != warmT2 {
		t.Error("warm re-render differs from first cached render")
	}
}
