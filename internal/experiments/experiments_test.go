package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/evalx"
)

var (
	worldOnce sync.Once
	world     *World
)

// testWorld builds one CI-scale world shared across the experiment tests.
func testWorld(t *testing.T) *World {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment integration tests in short mode")
	}
	worldOnce.Do(func() { world = BuildWorld(ScaleFor(evalx.PresetCI)) })
	return world
}

func TestScaleFor(t *testing.T) {
	ci := ScaleFor(evalx.PresetCI)
	def := ScaleFor(evalx.PresetDefault)
	paper := ScaleFor(evalx.PresetPaper)
	if !(ci.TelemetryScale < def.TelemetryScale && def.TelemetryScale < paper.TelemetryScale) {
		t.Fatal("scales not ordered")
	}
	if paper.TelemetryScale != 1 || paper.Parts != 6 {
		t.Fatal("paper scale must match the paper protocol")
	}
}

func TestBuildWorld(t *testing.T) {
	w := testWorld(t)
	if len(w.Log.Events) == 0 || len(w.Trace) == 0 {
		t.Fatal("empty world")
	}
}

func TestRunCalibration(t *testing.T) {
	w := testWorld(t)
	r := RunCalibration(w)
	if r.Stats.FirstUEs == 0 || r.Stats.TotalCEs == 0 {
		t.Fatalf("calibration stats empty: %+v", r.Stats)
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "first-in-burst UEs") {
		t.Fatal("render missing rows")
	}
}

func TestRunFig3Shape(t *testing.T) {
	w := testWorld(t)
	r := RunFig3(w)
	if len(r.Runs) != 3 {
		t.Fatalf("runs = %d", len(r.Runs))
	}
	// Never-mitigate's cost is independent of the mitigation cost.
	n2, _ := r.Runs[0].Find("Never-mitigate")
	n10, _ := r.Runs[2].Find("Never-mitigate")
	if n2.TotalCost() != n10.TotalCost() {
		t.Fatalf("Never-mitigate cost varies with mitigation cost: %v vs %v",
			n2.TotalCost(), n10.TotalCost())
	}
	// Always-mitigate's mitigation cost scales linearly with the per-action
	// cost (2 -> 10 node-minutes is exactly 5x).
	a2, _ := r.Runs[0].Find("Always-mitigate")
	a10, _ := r.Runs[2].Find("Always-mitigate")
	if a2.Metrics.Mitigations != a10.Metrics.Mitigations {
		t.Fatal("Always mitigation count should not depend on the cost")
	}
	ratio := a10.MitigationCost / a2.MitigationCost
	if ratio < 4.99 || ratio > 5.01 {
		t.Fatalf("mitigation cost ratio = %v, want 5", ratio)
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "Oracle") {
		t.Fatal("render missing Oracle row")
	}
}

func TestRunFig4Shape(t *testing.T) {
	w := testWorld(t)
	r := RunFig4(w)
	if len(r.CV.Splits) != w.Scale.Parts {
		t.Fatalf("splits = %d", len(r.CV.Splits))
	}
	// Per-split totals must sum to the aggregate.
	for i, total := range r.CV.Totals {
		sum := 0.0
		for _, s := range r.CV.Splits {
			sum += s.Results[i].TotalCost()
		}
		if diff := sum - total.TotalCost(); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("%s: split sum %v != total %v", total.Policy, sum, total.TotalCost())
		}
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "sum") {
		t.Fatal("render missing sum column")
	}
}

func TestRunFig6Shape(t *testing.T) {
	w := testWorld(t)
	r := RunFig6(w)
	if len(r.CostDecades) != fig6Decades {
		t.Fatalf("decades = %d", len(r.CostDecades))
	}
	// The paper's core behavioural claim: the agent mitigates more often
	// as the potential UE cost grows. Compare the cheap decades with the
	// expensive ones.
	low := (r.MitigationFraction(0) + r.MitigationFraction(1)) / 2
	high := (r.MitigationFraction(4) + r.MitigationFraction(5)) / 2
	if high < low {
		t.Errorf("mitigation fraction does not grow with cost: low %.3f high %.3f", low, high)
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "RF prob") {
		t.Fatal("render missing axis labels")
	}
}

func TestRunTable2Shape(t *testing.T) {
	w := testWorld(t)
	r := RunTable2(w)
	if len(r.RangeResults) != 3 {
		t.Fatalf("range rows = %d", len(r.RangeResults))
	}
	never, ok := r.Base.Find("Never-mitigate")
	if !ok || never.Metrics.Mitigations != 0 {
		t.Fatal("Never row wrong")
	}
	always, _ := r.Base.Find("Always-mitigate")
	oracle, _ := r.Base.Find("Oracle")
	// Oracle recall equals Always recall (both catch every catchable UE)
	// and Oracle precision is 1.
	if oracle.Metrics.Recall() < always.Metrics.Recall()-1e-9 {
		t.Errorf("oracle recall %.2f below always %.2f",
			oracle.Metrics.Recall(), always.Metrics.Recall())
	}
	if oracle.Metrics.FPs != 0 {
		t.Errorf("oracle FPs = %d", oracle.Metrics.FPs)
	}
	// Adaptivity: in the paper the RL mitigation *rate* grows strongly
	// with the UE-cost range (Table 2's last three rows: 19% -> 93%).
	// The CI training budget is too small for a sharp decision boundary,
	// so this smoke test only asserts the rate does not collapse at high
	// cost; the monotone trend itself is asserted by TestRunFig6Shape and
	// reproduced at the default preset (see EXPERIMENTS.md).
	rate := func(res evalx.Result) float64 {
		m := res.Metrics
		if m.Mitigations+m.NonMitigations == 0 {
			return 0
		}
		return float64(m.Mitigations) / float64(m.Mitigations+m.NonMitigations)
	}
	lowRate := rate(r.RangeResults[0])
	highRate := rate(r.RangeResults[2])
	if highRate < lowRate*0.7 {
		t.Errorf("RL mitigation rate collapsed at high cost range: %.3f -> %.3f", lowRate, highRate)
	}
	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "recall") || !strings.Contains(out, "RL, UE cost < 100 nh") {
		t.Fatal("render missing rows")
	}
}

func TestRunFig7Shape(t *testing.T) {
	w := testWorld(t)
	r := RunFig7(w, []float64{0.1, 1, 10})
	if len(r.Runs) != 3 {
		t.Fatalf("runs = %d", len(r.Runs))
	}
	// Never-mitigate's total cost is pure UE cost, proportional to job
	// size: the 10x sweep must cost far more than the 0.1x sweep.
	n01, _ := r.Runs[0].Find("Never-mitigate")
	n10, _ := r.Runs[2].Find("Never-mitigate")
	if n10.TotalCost() < n01.TotalCost()*10 {
		t.Errorf("Never cost not scaling with job size: %v vs %v",
			n01.TotalCost(), n10.TotalCost())
	}
	// Always-mitigate's mitigation cost is independent of job size.
	a01, _ := r.Runs[0].Find("Always-mitigate")
	a10, _ := r.Runs[2].Find("Always-mitigate")
	if a01.MitigationCost != a10.MitigationCost {
		t.Errorf("Always mitigation cost varies with job size: %v vs %v",
			a01.MitigationCost, a10.MitigationCost)
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "Figure 7b") {
		t.Fatal("render missing 7b")
	}
}

func TestRunAblationShape(t *testing.T) {
	w := testWorld(t)
	r := RunAblation(w)
	if len(r.Results) != 4 {
		t.Fatalf("variants = %d", len(r.Results))
	}
	names := strings.Join(r.Variants, ",")
	for _, want := range []string{"PER", "uniform", "vanilla", "cost"} {
		if !strings.Contains(names, want) {
			t.Fatalf("missing variant %q in %q", want, names)
		}
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "variant") {
		t.Fatal("render missing header")
	}
}
