package experiments

import (
	"fmt"
	"io"

	"repro/internal/evalx"
)

// Fig4Result reproduces Figure 4: the per-split time series of total cost
// for each approach at a 2 node–minute mitigation cost.
type Fig4Result struct {
	CV evalx.CVResult
}

// RunFig4 regenerates Figure 4.
func RunFig4(w *World) Fig4Result {
	return Fig4Result{CV: evalx.RunCV(w.Log, w.Trace, w.cvConfig(2))}
}

// Render writes one row per approach with a column per test period.
func (r Fig4Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: total cost (node-hours) per cross-validation test period, 2 node-minute mitigation")
	if len(r.CV.Splits) == 0 {
		return
	}
	header := []string{"approach"}
	for _, s := range r.CV.Splits {
		header = append(header, fmt.Sprintf("%s..%s",
			s.From.Format("2006-01"), s.To.Format("2006-01")))
	}
	header = append(header, "sum")
	var rows [][]string
	for i, total := range r.CV.Totals {
		row := []string{total.Policy}
		for _, s := range r.CV.Splits {
			row = append(row, nh(s.Results[i].TotalCost()))
		}
		row = append(row, nh(total.TotalCost()))
		rows = append(rows, row)
	}
	writeTable(w, header, rows)
}
