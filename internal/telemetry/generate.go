package telemetry

import (
	"time"

	"repro/internal/errlog"
	"repro/internal/mathx"
)

// dimmState describes one simulated DIMM.
type dimmState struct {
	id           int
	node         int
	manufacturer errlog.Manufacturer
	faulty       bool
	onset        time.Time // fault onset, valid when faulty
	// Fault locality: a fault affects one rank/bank and a few rows.
	rank, bank int
	rows       []int
}

// Generate synthesizes a full error log from cfg. The result is sorted and
// unpreprocessed (raw): callers apply errlog.Preprocess to obtain the
// training/evaluation view, exactly as the paper filters its raw logs.
func Generate(cfg Config) *errlog.Log {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	root := mathx.NewRNG(cfg.Seed)
	nodeMfr := assignManufacturers(cfg, root.Fork())
	dimms := buildDIMMs(cfg, nodeMfr, root.Fork())

	log := &errlog.Log{}
	end := cfg.Start.Add(cfg.Duration)

	genBoots(cfg, dimms, nodeMfr, root.Fork(), log)
	genFaultyCEs(cfg, dimms, root.Fork(), log, end)
	genBackgroundCEs(cfg, dimms, root.Fork(), log, end)
	genUEs(cfg, dimms, root.Fork(), log, end)
	genRetirements(cfg, dimms, root.Fork(), log, end)

	log.Sort()
	return log
}

// assignManufacturers deterministically assigns one manufacturer per node
// in proportion to the configured shares.
func assignManufacturers(cfg Config, rng *mathx.RNG) []errlog.Manufacturer {
	out := make([]errlog.Manufacturer, cfg.Nodes)
	// Deterministic proportional blocks, then shuffle for spatial mixing.
	total := 0.0
	for _, s := range cfg.ManufacturerShares {
		total += s
	}
	idx := 0
	for m := 0; m < errlog.NumManufacturers; m++ {
		n := int(float64(cfg.Nodes)*cfg.ManufacturerShares[m]/total + 0.5)
		for i := 0; i < n && idx < cfg.Nodes; i++ {
			out[idx] = errlog.Manufacturer(m)
			idx++
		}
	}
	for ; idx < cfg.Nodes; idx++ {
		out[idx] = errlog.ManufacturerC
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// buildDIMMs creates the DIMM population and selects the faulty subset.
func buildDIMMs(cfg Config, nodeMfr []errlog.Manufacturer, rng *mathx.RNG) []*dimmState {
	dimms := make([]*dimmState, 0, cfg.Nodes*cfg.DIMMsPerNode)
	for node := 0; node < cfg.Nodes; node++ {
		mfr := nodeMfr[node]
		for slot := 0; slot < cfg.DIMMsPerNode; slot++ {
			d := &dimmState{
				id:           node*cfg.DIMMsPerNode + slot,
				node:         node,
				manufacturer: mfr,
			}
			p := cfg.FaultyDIMMFraction * cfg.FaultMultiplier[mfr]
			if rng.Bool(p) {
				d.faulty = true
				d.onset = cfg.Start.Add(time.Duration(rng.Float64() * float64(cfg.Duration)))
				d.rank = rng.Intn(4)
				d.bank = rng.Intn(16)
				nrows := 1 + rng.Intn(4)
				for r := 0; r < nrows; r++ {
					d.rows = append(d.rows, rng.Intn(1<<16))
				}
			}
			dimms = append(dimms, d)
		}
	}
	return dimms
}

// genBoots emits routine node boots as Poisson processes; nodes holding a
// faulty DIMM boot more frequently after fault onset.
func genBoots(cfg Config, dimms []*dimmState, nodeMfr []errlog.Manufacturer, rng *mathx.RNG, log *errlog.Log) {
	end := cfg.Start.Add(cfg.Duration)
	faultyNode := map[int]time.Time{}
	for _, d := range dimms {
		if d.faulty {
			if t, ok := faultyNode[d.node]; !ok || d.onset.Before(t) {
				faultyNode[d.node] = d.onset
			}
		}
	}
	for node := 0; node < cfg.Nodes; node++ {
		nrng := rng.Fork()
		t := cfg.Start
		// Every node boots at the start of the period.
		log.Events = append(log.Events, bootEvent(cfg.Start, node, nodeMfr[node]))
		for {
			interval := cfg.BootIntervalDays
			if onset, ok := faultyNode[node]; ok && t.After(onset) && cfg.FaultyNodeBootMultiplier > 0 {
				interval /= cfg.FaultyNodeBootMultiplier
			}
			t = t.Add(time.Duration(nrng.Exponential(interval) * 24 * float64(time.Hour)))
			if !t.Before(end) {
				break
			}
			log.Events = append(log.Events, bootEvent(t, node, nodeMfr[node]))
		}
	}
}

func bootEvent(t time.Time, node int, m errlog.Manufacturer) errlog.Event {
	return errlog.Event{Time: t, Node: node, DIMM: -1, Manufacturer: m,
		Type: errlog.Boot, Count: 1, Rank: -1, Bank: -1, Row: -1, Col: -1}
}

// genFaultyCEs emits the clustered corrected-error records of faulty
// DIMMs: a base rate after fault onset, plus non-fatal storm episodes at
// the escalated rate with UE warnings — the same signature that precedes a
// UE, occurring without one.
func genFaultyCEs(cfg Config, dimms []*dimmState, rng *mathx.RNG, log *errlog.Log, end time.Time) {
	for _, d := range dimms {
		if !d.faulty {
			continue
		}
		drng := rng.Fork()
		t := d.onset
		for {
			t = t.Add(time.Duration(drng.Exponential(1.0/cfg.CEEntriesPerDay) * 24 * float64(time.Hour)))
			if !t.Before(end) {
				break
			}
			log.Events = append(log.Events, d.ceEvent(cfg, drng, t))
		}
		nStorms := drng.Poisson(cfg.StormsPerFaultyDIMM)
		for s := 0; s < nStorms; s++ {
			span := end.Sub(d.onset)
			if span <= 0 {
				break
			}
			start := d.onset.Add(time.Duration(drng.Float64() * float64(span)))
			days := drng.Exponential(cfg.StormDurationDays)
			if days < 0.5 {
				days = 0.5
			}
			stop := start.Add(time.Duration(days * 24 * float64(time.Hour)))
			if stop.After(end) {
				stop = end
			}
			emitStorm(cfg, d, drng, log, start, stop)
		}
	}
}

// emitStorm writes a CE storm in [start, stop): escalated-rate CE records
// plus UE warnings, indistinguishable from the pre-UE escalation.
func emitStorm(cfg Config, d *dimmState, rng *mathx.RNG, log *errlog.Log, start, stop time.Time) {
	boost := cfg.StormBoost
	if boost <= 0 {
		boost = 8
	}
	rate := cfg.CEEntriesPerDay * boost
	t := start
	for {
		t = t.Add(time.Duration(rng.Exponential(1.0/rate) * 24 * float64(time.Hour)))
		if !t.Before(stop) {
			break
		}
		log.Events = append(log.Events, d.ceEvent(cfg, rng, t))
	}
	days := stop.Sub(start).Hours() / 24
	nWarn := rng.Poisson(cfg.WarningsPerStormDay * days)
	for i := 0; i < nWarn; i++ {
		wt := start.Add(time.Duration(rng.Float64() * float64(stop.Sub(start))))
		log.Events = append(log.Events, errlog.Event{
			Time: wt, Node: d.node, DIMM: d.id, Manufacturer: d.manufacturer,
			Type: errlog.UEWarning, Count: 1, Rank: -1, Bank: -1, Row: -1, Col: -1,
		})
	}
}

// ceEvent builds one CE record localized to the DIMM's fault region.
func (d *dimmState) ceEvent(cfg Config, rng *mathx.RNG, t time.Time) errlog.Event {
	count := 1
	if cfg.MeanCEBurst > 1 {
		count = 1 + rng.Geometric(1/cfg.MeanCEBurst)
	}
	row := d.rows[rng.Intn(len(d.rows))]
	return errlog.Event{
		Time: t, Node: d.node, DIMM: d.id, Manufacturer: d.manufacturer,
		Type: errlog.CE, Count: count,
		Rank: d.rank, Bank: d.bank, Row: row, Col: rng.Intn(1 << 10),
		Scrub: rng.Bool(cfg.ScrubFraction),
	}
}

// genBackgroundCEs emits rare transient CEs on healthy DIMMs.
func genBackgroundCEs(cfg Config, dimms []*dimmState, rng *mathx.RNG, log *errlog.Log, end time.Time) {
	years := cfg.Duration.Hours() / (24 * 365)
	for _, d := range dimms {
		if d.faulty {
			continue
		}
		n := rng.Poisson(cfg.BackgroundCEPerDIMMYear * years)
		for i := 0; i < n; i++ {
			t := cfg.Start.Add(time.Duration(rng.Float64() * float64(cfg.Duration)))
			log.Events = append(log.Events, errlog.Event{
				Time: t, Node: d.node, DIMM: d.id, Manufacturer: d.manufacturer,
				Type: errlog.CE, Count: 1,
				Rank: rng.Intn(4), Bank: rng.Intn(16), Row: rng.Intn(1 << 16), Col: rng.Intn(1 << 10),
				Scrub: rng.Bool(cfg.ScrubFraction),
			})
		}
	}
}

// genUEs emits signaled UEs (on faulty DIMMs, with escalating CE rate and
// UE warnings beforehand), sudden UEs (no preceding signal), and the
// post-UE test-week bursts that UE reduction later removes.
func genUEs(cfg Config, dimms []*dimmState, rng *mathx.RNG, log *errlog.Log, end time.Time) {
	var faulty, healthy []*dimmState
	for _, d := range dimms {
		if d.faulty {
			faulty = append(faulty, d)
		} else {
			healthy = append(healthy, d)
		}
	}
	// Weight faulty DIMM selection by manufacturer fault multiplier so UE
	// incidence also differs per manufacturer.
	pickWeighted := func(pool []*dimmState) *dimmState {
		if len(pool) == 0 {
			return nil
		}
		w := make([]float64, len(pool))
		for i, d := range pool {
			w[i] = cfg.FaultMultiplier[d.manufacturer]
		}
		return pool[rng.WeightedChoice(w)]
	}

	usedNode := map[int]bool{}
	faultyNode := map[int]bool{}
	for _, d := range faulty {
		faultyNode[d.node] = true
	}
	margin := time.Duration(cfg.EscalationDays * 24 * float64(time.Hour))

	for i := 0; i < cfg.SignaledUEs; i++ {
		var d *dimmState
		for tries := 0; tries < 200; tries++ {
			cand := pickWeighted(faulty)
			if cand == nil {
				break
			}
			// The UE must land after onset+margin and before the end.
			if usedNode[cand.node] {
				continue
			}
			if end.Sub(cand.onset) > 2*margin {
				d = cand
				break
			}
		}
		if d == nil {
			// Not enough eligible faulty DIMMs (tiny scale): fall back to
			// converting a healthy DIMM into a late-onset faulty one.
			if len(healthy) == 0 {
				continue
			}
			d = healthy[rng.Intn(len(healthy))]
			d.faulty = true
			d.onset = cfg.Start.Add(time.Duration(rng.Float64() * 0.5 * float64(cfg.Duration)))
			d.rank, d.bank = rng.Intn(4), rng.Intn(16)
			d.rows = []int{rng.Intn(1 << 16)}
		}
		usedNode[d.node] = true
		lo := d.onset.Add(margin)
		span := end.Sub(lo) - margin
		if span <= 0 {
			span = time.Hour
		}
		ueTime := lo.Add(time.Duration(rng.Float64() * float64(span)))
		emitEscalation(cfg, d, rng, log, ueTime)
		emitUEBurst(cfg, d, rng, log, ueTime, end)
	}

	for i := 0; i < cfg.SuddenUEs; i++ {
		if len(healthy) == 0 {
			break
		}
		var d *dimmState
		for tries := 0; tries < 200; tries++ {
			cand := healthy[rng.Intn(len(healthy))]
			// A sudden UE must carry no preceding signal: avoid nodes that
			// already host a faulty DIMM or another UE.
			if !usedNode[cand.node] && !cand.faulty && !faultyNode[cand.node] {
				d = cand
				break
			}
		}
		if d == nil {
			continue
		}
		usedNode[d.node] = true
		ueTime := cfg.Start.Add(time.Duration((0.02 + 0.96*rng.Float64()) * float64(cfg.Duration)))
		emitUEBurst(cfg, d, rng, log, ueTime, end)
	}
}

// emitEscalation writes the pre-UE signature: a storm over the escalation
// window ending at the UE. It is generated by the same process as the
// non-fatal storms, so rate and warning statistics cannot give the UE
// away — only the (stochastic) storm→UE correlation is learnable, which is
// what keeps precision at the paper's order of magnitude.
func emitEscalation(cfg Config, d *dimmState, rng *mathx.RNG, log *errlog.Log, ueTime time.Time) {
	window := time.Duration(cfg.EscalationDays * 24 * float64(time.Hour))
	emitStorm(cfg, d, rng, log, ueTime.Add(-window), ueTime)
}

// emitUEBurst writes the first UE and the test-week burst that follows it.
func emitUEBurst(cfg Config, d *dimmState, rng *mathx.RNG, log *errlog.Log, ueTime time.Time, end time.Time) {
	mk := func(t time.Time) errlog.Event {
		return errlog.Event{
			Time: t, Node: d.node, DIMM: d.id, Manufacturer: d.manufacturer,
			Type: errlog.UE, Count: 1, Rank: -1, Bank: -1, Row: -1, Col: -1,
			Scrub:    rng.Bool(cfg.ScrubFraction),
			OverTemp: rng.Bool(cfg.OverTempFraction),
		}
	}
	log.Events = append(log.Events, mk(ueTime))
	extra := rng.Poisson(cfg.UEBurstMean)
	for i := 0; i < extra; i++ {
		t := ueTime.Add(time.Duration(rng.Float64() * float64(6*24*time.Hour)))
		if t.Before(end) {
			log.Events = append(log.Events, mk(t))
		}
	}
}

// genRetirements writes administrative DIMM retirements on DIMMs with no
// preceding error signal, reproducing the §2.1.4 bias source.
func genRetirements(cfg Config, dimms []*dimmState, rng *mathx.RNG, log *errlog.Log, end time.Time) {
	var healthy []*dimmState
	for _, d := range dimms {
		if !d.faulty {
			healthy = append(healthy, d)
		}
	}
	n := cfg.RetiredDIMMs
	if n > len(healthy) {
		n = len(healthy)
	}
	perm := rng.Perm(len(healthy))
	for i := 0; i < n; i++ {
		d := healthy[perm[i]]
		t := cfg.Start.Add(time.Duration(rng.Float64() * float64(cfg.Duration)))
		log.Events = append(log.Events, errlog.Event{
			Time: t, Node: d.node, DIMM: d.id, Manufacturer: d.manufacturer,
			Type: errlog.Retirement, Count: 1, Rank: -1, Bank: -1, Row: -1, Col: -1,
		})
	}
}

// Stats summarizes a log for calibration checks and tooling.
type Stats struct {
	Events      int
	CERecords   int
	TotalCEs    int
	UEs         int
	UEWarnings  int
	Boots       int
	Retirements int
	Nodes       int
	// PostMergeTicks is the number of agent invocation points after
	// same-minute merging.
	PostMergeTicks int
	// FirstUEs is the UE count after burst reduction.
	FirstUEs int
	// PerManufacturerUEs counts reduced UEs per manufacturer.
	PerManufacturerUEs [errlog.NumManufacturers]int
}

// Summarize computes Stats for a raw (sorted, unpreprocessed) log.
func Summarize(l *errlog.Log) Stats {
	s := Stats{
		Events:      len(l.Events),
		CERecords:   l.CountType(errlog.CE),
		TotalCEs:    l.TotalCEs(),
		UEs:         l.CountType(errlog.UE),
		UEWarnings:  l.CountType(errlog.UEWarning),
		Boots:       l.CountType(errlog.Boot),
		Retirements: l.CountType(errlog.Retirement),
		Nodes:       len(l.Nodes()),
	}
	reduced := errlog.ReduceUEBursts(l, errlog.UEBurstWindow)
	s.FirstUEs = reduced.CountType(errlog.UE)
	for _, e := range reduced.Events {
		if e.Type == errlog.UE {
			s.PerManufacturerUEs[e.Manufacturer]++
		}
	}
	s.PostMergeTicks = len(errlog.Merge(reduced, errlog.MergeWindow))
	return s
}
