package telemetry

import (
	"testing"
	"time"

	"repro/internal/errlog"
)

// smallConfig returns a fast config for unit tests (~1/20 scale).
func smallConfig() Config {
	return Default().Scale(0.05)
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 2
	c := Generate(cfg2)
	if len(c.Events) == len(a.Events) {
		same := true
		for i := range c.Events {
			if c.Events[i] != a.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical logs")
		}
	}
}

func TestGenerateSorted(t *testing.T) {
	l := Generate(smallConfig())
	for i := 1; i < len(l.Events); i++ {
		if l.Events[i].Time.Before(l.Events[i-1].Time) {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestGenerateWithinPeriod(t *testing.T) {
	cfg := smallConfig()
	l := Generate(cfg)
	end := cfg.Start.Add(cfg.Duration)
	for _, e := range l.Events {
		if e.Time.Before(cfg.Start) || !e.Time.Before(end) {
			t.Fatalf("event outside period: %v", e.Time)
		}
	}
}

func TestGenerateUECalibration(t *testing.T) {
	cfg := smallConfig()
	s := Summarize(Generate(cfg))
	wantFirst := cfg.SignaledUEs + cfg.SuddenUEs
	// Generation can drop a couple of UEs at tiny scale (node reuse).
	if s.FirstUEs < wantFirst-2 || s.FirstUEs > wantFirst+2 {
		t.Fatalf("first UEs = %d, want about %d", s.FirstUEs, wantFirst)
	}
	// Bursts multiply raw UEs by roughly (1 + UEBurstMean).
	if s.UEs < s.FirstUEs {
		t.Fatalf("raw UEs %d < first UEs %d", s.UEs, s.FirstUEs)
	}
	if float64(s.UEs) < 2.0*float64(s.FirstUEs) {
		t.Fatalf("burstiness too low: %d raw vs %d first", s.UEs, s.FirstUEs)
	}
}

func TestGenerateClassImbalance(t *testing.T) {
	s := Summarize(Generate(smallConfig()))
	ratio := float64(s.PostMergeTicks) / float64(s.FirstUEs)
	// The paper's imbalance is 259,270/67 ≈ 3870 (≈3.5 orders of
	// magnitude). Accept a broad band around it.
	if ratio < 800 || ratio > 16000 {
		t.Fatalf("event/UE imbalance %.0f outside plausible band", ratio)
	}
}

func TestGenerateSignalBeforeSignaledUEs(t *testing.T) {
	// A majority of first UEs must have some event on the node within the
	// preceding 24 h (the paper's Always-mitigate recall is 63%), and a
	// meaningful minority must not (25 of 67 UEs are unreachable). Use a
	// larger scale here so the fraction is statistically meaningful.
	cfg := Default().Scale(0.3)
	l := Generate(cfg)
	reduced := errlog.ReduceUEBursts(l, errlog.UEBurstWindow)
	byNode := reduced.ByNode()
	withSignal, without := 0, 0
	for node, events := range byNode {
		_ = node
		var lastEvent time.Time
		seenAny := false
		for _, e := range events {
			if e.Type == errlog.UE {
				if seenAny && e.Time.Sub(lastEvent) <= 24*time.Hour {
					withSignal++
				} else {
					without++
				}
			}
			lastEvent = e.Time
			seenAny = true
		}
	}
	total := withSignal + without
	if total == 0 {
		t.Fatal("no UEs generated")
	}
	frac := float64(withSignal) / float64(total)
	if frac < 0.40 || frac > 0.85 {
		t.Fatalf("signaled fraction %.2f outside [0.40, 0.85] (%d/%d)", frac, withSignal, total)
	}
}

func TestGenerateManufacturerMix(t *testing.T) {
	cfg := smallConfig()
	l := Generate(cfg)
	var counts [errlog.NumManufacturers]int
	for _, e := range l.Events {
		counts[e.Manufacturer]++
	}
	for m, c := range counts {
		if c == 0 {
			t.Fatalf("manufacturer %d has no events", m)
		}
	}
	s := Summarize(l)
	totalUE := 0
	for _, c := range s.PerManufacturerUEs {
		totalUE += c
	}
	if totalUE != s.FirstUEs {
		t.Fatalf("per-manufacturer UEs %d != total %d", totalUE, s.FirstUEs)
	}
}

func TestGenerateRetirementsHaveNoPrecedingErrors(t *testing.T) {
	cfg := smallConfig()
	l := Generate(cfg)
	// Retired DIMMs are drawn from the healthy population: they must have
	// at most background-level CE records.
	retired := map[int]bool{}
	for _, e := range l.Events {
		if e.Type == errlog.Retirement {
			retired[e.DIMM] = true
		}
	}
	if len(retired) == 0 {
		t.Fatal("no retirements generated")
	}
	perDIMM := map[int]int{}
	for _, e := range l.Events {
		if e.Type == errlog.CE && retired[e.DIMM] {
			perDIMM[e.DIMM]++
		}
	}
	for d, n := range perDIMM {
		if n > 3 {
			t.Fatalf("retired DIMM %d has %d CE records; should be background only", d, n)
		}
	}
}

func TestScalePreservesImbalance(t *testing.T) {
	full := Default()
	half := full.Scale(0.5)
	if half.Nodes != 1528 {
		t.Fatalf("scaled nodes = %d", half.Nodes)
	}
	if half.SignaledUEs != 20 || half.SuddenUEs+half.SignaledUEs == 0 {
		t.Fatalf("scaled UEs = %d/%d", half.SignaledUEs, half.SuddenUEs)
	}
	// Intensive rates must not change.
	if half.CEEntriesPerDay != full.CEEntriesPerDay {
		t.Fatal("scale changed per-DIMM rate")
	}
}

func TestScalePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Default().Scale(0)
}

func TestConfigValidate(t *testing.T) {
	good := Default()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := Default()
	bad.Nodes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero nodes accepted")
	}
	bad = Default()
	bad.Duration = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero duration accepted")
	}
	bad = Default()
	bad.ManufacturerShares = [3]float64{0, 0, 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero shares accepted")
	}
	bad = Default()
	bad.SignaledUEs, bad.SuddenUEs = 0, 0
	if err := bad.Validate(); err == nil {
		t.Error("zero UEs accepted")
	}
}

func TestFullScaleCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in short mode")
	}
	s := Summarize(Generate(Default()))
	check := func(name string, got int, lo, hi int) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %d, want in [%d, %d]", name, got, lo, hi)
		}
	}
	// Paper targets: 4.5M CEs, 333 UEs, 67 first UEs, 51 retirements,
	// 259,270 post-merge events, 3056 nodes. Bands are deliberately wide:
	// we calibrate shape, not exact counts.
	check("total CEs", s.TotalCEs, 2_500_000, 8_000_000)
	check("raw UEs", s.UEs, 180, 600)
	check("first UEs", s.FirstUEs, 55, 80)
	check("retirements", s.Retirements, 45, 57)
	check("post-merge ticks", s.PostMergeTicks, 120_000, 500_000)
	check("nodes seen", s.Nodes, 3000, 3056)
}
