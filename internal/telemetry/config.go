// Package telemetry synthesizes MareNostrum-3-style DRAM error logs: the
// proprietary production logs of §2.1 are replaced by a generative fault
// model whose aggregate statistics are calibrated to the paper's reported
// counts (≈4.5M corrected errors, 333 uncorrected errors reducing to 67
// first-in-burst UEs, ≈51 administrative DIMM retirements, ≈259k post-merge
// events over two years on 3056 nodes / >25k DIMMs).
//
// The model preserves the properties the prediction problem depends on:
//
//   - CE burstiness: faulty DIMMs emit clustered corrected-error records
//     whose MCA counts cover many errors, localized to a few rows/banks.
//   - CE→UE correlation: a subset of UEs ("signaled") occur on DIMMs whose
//     CE rate escalates and which emit UE warnings shortly before failing.
//   - Unpredictability: the remaining UEs ("sudden") occur with no log
//     activity in the preceding day, bounding achievable recall exactly as
//     in the paper (Always-mitigate recall 63%).
//   - Class imbalance: ≈3.5 orders of magnitude between events and UEs.
//   - Manufacturer heterogeneity: per-manufacturer rate multipliers.
package telemetry

import (
	"fmt"
	"time"

	"repro/internal/errlog"
)

// Config parameterizes the synthetic MareNostrum 3 log generator. The zero
// value is not usable; start from Default().
type Config struct {
	// Seed drives all randomness; identical configs generate identical logs.
	Seed int64
	// Start is the beginning of the observation period.
	Start time.Time
	// Duration is the observation period length (the paper covers slightly
	// over two years, Oct 2014 – Nov 2016).
	Duration time.Duration
	// Nodes is the number of compute nodes (MN3: 3056).
	Nodes int
	// DIMMsPerNode is the DIMM count per node (8 ⇒ ≈25k DIMMs).
	DIMMsPerNode int
	// ManufacturerShares gives the fraction of nodes with DIMMs from each
	// anonymized manufacturer (nodes are manufacturer-homogeneous, §4.5).
	ManufacturerShares [errlog.NumManufacturers]float64
	// FaultMultiplier scales each manufacturer's fault incidence.
	FaultMultiplier [errlog.NumManufacturers]float64

	// FaultyDIMMFraction is the probability a DIMM develops a latent CE
	// fault during the period.
	FaultyDIMMFraction float64
	// CEEntriesPerDay is the mean number of CE log records per faulty DIMM
	// per day after fault onset.
	CEEntriesPerDay float64
	// MeanCEBurst is the mean corrected-error count carried by one CE
	// record (the MCA registers report counts for the 100 ms window).
	MeanCEBurst float64
	// BackgroundCEPerDIMMYear is the rate of transient CE records on
	// healthy DIMMs (cosmic-ray style single events).
	BackgroundCEPerDIMMYear float64
	// StormsPerFaultyDIMM is the mean number of non-fatal CE-storm
	// episodes a faulty DIMM experiences: multi-day periods at the
	// escalated CE rate that do NOT end in a UE. Storms are what makes UE
	// prediction genuinely hard (and precision of the order of 0.02–0.06%
	// as in Table 2): the pre-UE escalation signature also appears,
	// frequently, without a UE.
	StormsPerFaultyDIMM float64
	// StormDurationDays is the mean storm length.
	StormDurationDays float64
	// StormBoost multiplies the CE record rate during storms (and during
	// the pre-UE escalation, keeping the two indistinguishable by rate).
	StormBoost float64
	// WarningsPerStormDay is the rate of UE-warning records during storms
	// (the correctable-ECC logging limit trips under any heavy CE
	// activity, §2.1.2 — warnings are not a UE giveaway).
	WarningsPerStormDay float64

	// SignaledUEs is the number of first-in-burst UEs preceded by an
	// escalating CE/warning signature (the predictable subset).
	SignaledUEs int
	// SuddenUEs is the number of first-in-burst UEs with no preceding
	// activity (the paper's hard 25-of-67 subset).
	SuddenUEs int
	// UEBurstMean is the mean number of additional UEs in the week after a
	// first UE (the node is under test; these are removed by UE reduction).
	UEBurstMean float64
	// OverTempFraction is the fraction of UEs recorded as critical
	// over-temperature shutdowns.
	OverTempFraction float64
	// EscalationDays is how long before a signaled UE the CE rate ramps.
	EscalationDays float64
	// WarningWindowHours is the window before a signaled UE in which UE
	// warnings appear.
	WarningWindowHours float64

	// BootIntervalDays is the mean interval between routine node boots.
	BootIntervalDays float64
	// FaultyNodeBootMultiplier increases boot frequency on nodes holding a
	// faulty DIMM (failing hardware reboots more often), a secondary
	// signal available to the predictors.
	FaultyNodeBootMultiplier float64

	// RetiredDIMMs is the number of administrative pre-failure DIMM
	// retirements (§2.1.4), which carry no preceding log signal.
	RetiredDIMMs int
	// ScrubFraction is the probability an error is found by the patrol
	// scrubber rather than an application access.
	ScrubFraction float64
}

// Default returns the full-scale configuration calibrated to the paper's
// aggregate statistics.
func Default() Config {
	return Config{
		Seed:     1,
		Start:    time.Date(2014, 10, 1, 0, 0, 0, 0, time.UTC),
		Duration: 2*365*24*time.Hour + 30*24*time.Hour,
		Nodes:    3056, DIMMsPerNode: 8,
		// 6694 / 5207 / 13419 DIMMs ⇒ shares ≈ 0.264 / 0.206 / 0.530.
		ManufacturerShares: [3]float64{0.264, 0.206, 0.530},
		FaultMultiplier:    [3]float64{1.35, 0.65, 1.0},

		FaultyDIMMFraction:      0.025,
		CEEntriesPerDay:         1.0,
		MeanCEBurst:             18,
		BackgroundCEPerDIMMYear: 0.02,
		StormsPerFaultyDIMM:     1.2,
		StormDurationDays:       2,
		StormBoost:              8,
		WarningsPerStormDay:     0.6,

		SignaledUEs:        40,
		SuddenUEs:          27,
		UEBurstMean:        4,
		OverTempFraction:   0.06,
		EscalationDays:     3,
		WarningWindowHours: 48,

		BootIntervalDays:         45,
		FaultyNodeBootMultiplier: 3,

		RetiredDIMMs:  51,
		ScrubFraction: 0.4,
	}
}

// Scale returns a copy with the node population and all absolute counts
// multiplied by f (per-DIMM rates are intensive and stay fixed), preserving
// the event/UE class imbalance. f must be positive.
func (c Config) Scale(f float64) Config {
	if f <= 0 {
		panic(fmt.Sprintf("telemetry: scale factor must be positive, got %v", f))
	}
	c.Nodes = max(1, int(float64(c.Nodes)*f+0.5))
	c.SignaledUEs = max(1, int(float64(c.SignaledUEs)*f+0.5))
	c.SuddenUEs = max(1, int(float64(c.SuddenUEs)*f+0.5))
	c.RetiredDIMMs = int(float64(c.RetiredDIMMs)*f + 0.5)
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Nodes <= 0 || c.DIMMsPerNode <= 0 {
		return fmt.Errorf("telemetry: population must be positive (%d nodes × %d DIMMs)", c.Nodes, c.DIMMsPerNode)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("telemetry: duration must be positive, got %v", c.Duration)
	}
	var total float64
	for _, s := range c.ManufacturerShares {
		if s < 0 {
			return fmt.Errorf("telemetry: negative manufacturer share")
		}
		total += s
	}
	if total <= 0 {
		return fmt.Errorf("telemetry: manufacturer shares sum to zero")
	}
	if c.SignaledUEs+c.SuddenUEs <= 0 {
		return fmt.Errorf("telemetry: no UEs configured")
	}
	return nil
}
