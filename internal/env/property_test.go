package env

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/errlog"
	"repro/internal/jobs"
	"repro/internal/mathx"
)

// TestTimelineCostNeverNegative: whatever interleaving of advances,
// mitigations and UEs, the potential cost is never negative.
func TestTimelineCostNeverNegative(t *testing.T) {
	f := func(ops []uint8) bool {
		trace := []jobs.Job{
			{ID: 1, Nodes: 4, Duration: 5 * time.Hour},
			{ID: 2, Nodes: 32, Duration: 30 * time.Hour},
		}
		tl := NewTimeline(jobs.NewSampler(trace), mathx.NewRNG(1), true, time.Unix(0, 0))
		now := time.Unix(0, 0)
		for _, op := range ops {
			now = now.Add(time.Duration(op%48) * time.Hour / 2)
			tl.AdvanceTo(now)
			switch op % 3 {
			case 0:
				if tl.CostAt(now) < 0 {
					return false
				}
			case 1:
				tl.Mitigate(now)
				if tl.CostAt(now) != 0 {
					return false // restartable mitigation zeroes the cost
				}
			case 2:
				if tl.OnUE(now) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestEnvEpisodeRewardsNonPositive: every reward in the mitigation MDP is
// a cost, i.e. <= 0 (Eq. 4 sums two negative terms), whatever the action
// sequence.
func TestEnvEpisodeRewardsNonPositive(t *testing.T) {
	ticks := [][]errlog.Tick{{
		mkTick(1, 0, errlog.CE),
		mkTick(1, 2*time.Hour, errlog.CE),
		mkTick(1, 30*time.Hour, errlog.UE),
		mkTick(1, 40*time.Hour, errlog.CE),
		mkTick(1, 50*time.Hour, errlog.UE),
	}}
	f := func(actions []bool) bool {
		e := NewMitigationEnv(DefaultConfig(), ticks, fixedSampler(7, 20))
		e.Reset()
		for _, a := range actions {
			act := ActionNone
			if a {
				act = ActionMitigate
			}
			_, r, done := e.Step(act)
			if r > 0 {
				return false
			}
			if done {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
