// Package env implements the Markov decision process of §3.2: the per-node
// mitigation-control environment that replays error-log ticks, runs a
// node-weighted random job sequence (§3.3.3), computes the potential UE
// cost of Eq. 3, applies the reward of Eq. 4, and exposes the whole thing
// through the rl.Environment interface for training and through direct
// replay helpers for evaluation.
package env

import (
	"time"

	"repro/internal/jobs"
	"repro/internal/mathx"
)

// UEDowntime is how long a node is out of production after a UE (it was
// removed and tested for one week, §2.1.3).
const UEDowntime = 7 * 24 * time.Hour

// Timeline models the jobs running on one node over time and the potential
// UE cost baseline. Jobs run back-to-back; a UE kills the running job and
// takes the node out of production for UEDowntime.
type Timeline struct {
	sampler     *jobs.Sampler
	rng         *mathx.RNG
	restartable bool

	job      jobs.Job
	jobStart time.Time
	jobEnd   time.Time
	// baseline is the time from which lost wallclock accrues: the later of
	// job start and (for restartable mitigation) the last mitigation.
	baseline time.Time
}

// NewTimeline starts a job sequence at start. restartable selects whether a
// mitigation establishes a restart point (checkpointing) or not (Eq. 3's
// two cases).
func NewTimeline(sampler *jobs.Sampler, rng *mathx.RNG, restartable bool, start time.Time) *Timeline {
	tl := &Timeline{sampler: sampler, rng: rng, restartable: restartable}
	tl.startJob(start)
	return tl
}

func (tl *Timeline) startJob(at time.Time) {
	tl.job = tl.sampler.Sample(tl.rng)
	tl.jobStart = at
	tl.jobEnd = at.Add(tl.job.Duration)
	tl.baseline = at
}

// AdvanceTo rolls the job sequence forward so the current job covers t.
func (tl *Timeline) AdvanceTo(t time.Time) {
	for !t.Before(tl.jobEnd) {
		tl.startJob(tl.jobEnd)
	}
}

// CostAt returns the potential UE cost (Eq. 3) at time t: the running
// job's node count times the wallclock lost if a UE struck at t. The
// timeline must already be advanced to t.
func (tl *Timeline) CostAt(t time.Time) float64 {
	lost := t.Sub(tl.baseline)
	if lost < 0 {
		lost = 0
	}
	return float64(tl.job.Nodes) * lost.Hours()
}

// Mitigate records a mitigation at time t. For restartable mitigation the
// cost baseline resets to t (§3.2.3: "the potential UE cost is first set to
// zero"); otherwise the baseline stays at job start.
func (tl *Timeline) Mitigate(t time.Time) {
	if tl.restartable {
		tl.baseline = t
	}
}

// OnUE handles an uncorrected error at time t: it returns the realized UE
// cost (the full time since the last mitigation point, §3.2.5), kills the
// job, and schedules the next job after the node's test downtime.
func (tl *Timeline) OnUE(t time.Time) float64 {
	cost := tl.CostAt(t)
	tl.startJob(t.Add(UEDowntime))
	return cost
}

// Job returns the currently scheduled job.
func (tl *Timeline) Job() jobs.Job { return tl.job }

// JobStart returns when the current job started.
func (tl *Timeline) JobStart() time.Time { return tl.jobStart }
