package env

import (
	"fmt"
	"time"

	"repro/internal/errlog"
	"repro/internal/features"
	"repro/internal/jobs"
	"repro/internal/mathx"
	"repro/internal/rl"
)

// Action values of the MDP (§3.2.2): the agent either does nothing or
// requests a mitigation.
const (
	ActionNone     = 0
	ActionMitigate = 1
	NumActions     = 2
)

// Config parameterizes the mitigation MDP.
type Config struct {
	// MitigationCostNodeMinutes is the fixed cost of one mitigation action
	// in node–minutes (2 in the paper's main results; 5 and 10 in Fig. 3).
	MitigationCostNodeMinutes float64
	// Restartable selects whether mitigation establishes a restart point
	// (checkpoint-like). It is one of the paper's two user parameters.
	Restartable bool
	// RewardScale divides rewards before they reach the agent, keeping TD
	// targets in a numerically comfortable range. Costs are still
	// accounted in raw node–hours everywhere outside the agent.
	RewardScale float64
	// UENodeBoost multiplies the episode-sampling weight of nodes whose
	// history contains a UE. The paper samples nodes uniformly (§3.3.3)
	// over 20,000 episodes; at laptop-scale budgets uniform sampling
	// starves the agent of UE experience, so the scaled-down presets
	// boost failing nodes. 0 or 1 keeps the paper's uniform sampling.
	//
	// Boosting inflates the apparent UE probability by roughly the boost
	// factor, which would teach the agent to over-mitigate; as an
	// importance correction, the training reward's mitigation penalty is
	// inflated by the same factor, preserving the decision boundary
	// P(UE|state)·saving ≷ mitigation_cost. Evaluation always uses true
	// costs.
	UENodeBoost float64
	// FocusUEWindow, when positive, starts episodes on UE nodes at a
	// random decision tick within this many ticks before the node's first
	// UE instead of at the beginning of the history. The tracker and job
	// timeline are fast-forwarded silently, so the features at the first
	// decision are identical to a full replay — only the wasted decisions
	// far from any UE are skipped. This concentrates the scarce
	// pre-failure experience that the mitigation advantage is learned
	// from; the paper's full 20,000-episode budget does not need it.
	FocusUEWindow int
	// Seed drives node selection and job sequences.
	Seed int64
	// FastRNG backs the environment's RNG with the O(copy)-forkable PCG
	// source instead of math/rand's default source. The stream differs from
	// the default for the same seed, so it is part of the nn.KernelFast
	// training configuration rather than a silent swap; evaluation replay is
	// unaffected. The zero value keeps the legacy source.
	FastRNG bool
}

// DefaultConfig returns the paper's main configuration.
func DefaultConfig() Config {
	return Config{
		MitigationCostNodeMinutes: 2,
		Restartable:               true,
		RewardScale:               0.01,
		Seed:                      1,
	}
}

// MitigationCostNodeHours converts the configured cost to node–hours.
func (c Config) MitigationCostNodeHours() float64 {
	return c.MitigationCostNodeMinutes / 60
}

// MitigationEnv is the training environment: each episode replays one
// node's event history (chosen uniformly at random, §3.3.3) against a
// freshly sampled node-weighted job sequence. It implements
// rl.Environment.
type MitigationEnv struct {
	cfg     Config
	nodes   [][]errlog.Tick
	weights []float64
	sampler *jobs.Sampler
	rng     *mathx.RNG

	ticks   []errlog.Tick
	idx     int
	tracker *features.Tracker
	tl      *Timeline
	state   []float64
	// sbuf/sflip ping-pong the state vector between two buffers so a step
	// allocates nothing: the slice returned by the previous Reset/Step stays
	// valid exactly one more step — long enough for the caller to hand it to
	// the replay buffer (which copies, see rl.Transition interning) as S
	// while this step's output becomes NextS.
	sbuf  [2][]float64
	sflip int
}

// NewMitigationEnv builds an environment over the given per-node tick
// sequences. ticksByNode must contain at least one non-empty sequence.
func NewMitigationEnv(cfg Config, ticksByNode [][]errlog.Tick, sampler *jobs.Sampler) *MitigationEnv {
	var nodes [][]errlog.Tick
	for _, ts := range ticksByNode {
		if len(ts) > 0 {
			nodes = append(nodes, ts)
		}
	}
	if len(nodes) == 0 {
		panic("env: no ticks to replay")
	}
	if cfg.RewardScale <= 0 {
		cfg.RewardScale = 0.01
	}
	rng := mathx.NewRNG(cfg.Seed)
	if cfg.FastRNG {
		rng = mathx.NewFastRNG(cfg.Seed)
	}
	e := &MitigationEnv{
		cfg:     cfg,
		nodes:   nodes,
		sampler: sampler,
		rng:     rng,
		tracker: features.NewTracker(),
	}
	if cfg.UENodeBoost > 1 {
		e.weights = make([]float64, len(nodes))
		for i, ts := range nodes {
			e.weights[i] = 1
			for _, t := range ts {
				if t.HasUE() {
					e.weights[i] = cfg.UENodeBoost
					break
				}
			}
		}
	}
	return e
}

// GroupTicks splits a merged tick stream per node, preserving order.
func GroupTicks(ticks []errlog.Tick) [][]errlog.Tick {
	byNode := map[int][]errlog.Tick{}
	var order []int
	for _, t := range ticks {
		if _, ok := byNode[t.Node]; !ok {
			order = append(order, t.Node)
		}
		byNode[t.Node] = append(byNode[t.Node], t)
	}
	out := make([][]errlog.Tick, 0, len(order))
	for _, n := range order {
		out = append(out, byNode[n])
	}
	return out
}

// NumActions implements rl.Environment.
func (e *MitigationEnv) NumActions() int { return NumActions }

// StateLen implements rl.Environment.
func (e *MitigationEnv) StateLen() int { return features.Dim }

// Reset implements rl.Environment: it picks a random node and advances to
// the first decision point.
func (e *MitigationEnv) Reset() []float64 {
	if e.weights != nil {
		e.ticks = e.nodes[e.rng.WeightedChoice(e.weights)]
	} else {
		e.ticks = e.nodes[e.rng.Intn(len(e.nodes))]
	}
	e.idx = 0
	e.tracker.Reset()
	e.tl = NewTimeline(e.sampler, e.rng.Fork(), e.cfg.Restartable, e.ticks[0].Time)

	// With FocusUEWindow set, fast-forward episodes on UE nodes to shortly
	// before the first UE: ticks before the start index update the tracker
	// and timeline but produce no decisions.
	skipUntil := 0
	if e.cfg.FocusUEWindow > 0 {
		ueIdx := -1
		for i, t := range e.ticks {
			if t.HasUE() {
				ueIdx = i
				break
			}
		}
		if ueIdx > 1 {
			lo := ueIdx - e.cfg.FocusUEWindow
			if lo < 0 {
				lo = 0
			}
			span := ueIdx - 1 - lo
			if span > 0 {
				skipUntil = lo + e.rng.Intn(span)
			}
		}
	}

	// Walk to the first decision tick at or after skipUntil; UEs before
	// any action carry no reward (the agent was never invoked, §3.2.3).
	for e.idx < len(e.ticks) {
		tick := e.ticks[e.idx]
		e.tl.AdvanceTo(tick.Time)
		if tick.HasUE() {
			e.tracker.Observe(tick, 0)
			e.tl.OnUE(ueTime(tick))
			e.idx++
			continue
		}
		if e.idx < skipUntil {
			e.tracker.Observe(tick, 0)
			e.idx++
			continue
		}
		v := e.tracker.Observe(tick, e.tl.CostAt(tick.Time))
		e.state = v.NormalizedInto(e.nextStateBuf())
		return e.state
	}
	// Degenerate: the node's ticks are all UEs. Produce a terminal-ish
	// state; the first Step will end the episode.
	e.state = e.nextStateBuf()
	for i := range e.state {
		e.state[i] = 0
	}
	return e.state
}

// nextStateBuf flips to the other ping-pong state buffer, allocating it on
// first use.
func (e *MitigationEnv) nextStateBuf() []float64 {
	e.sflip ^= 1
	if e.sbuf[e.sflip] == nil {
		e.sbuf[e.sflip] = make([]float64, features.Dim)
	}
	return e.sbuf[e.sflip]
}

// ueTime returns the timestamp of the first UE event in the tick (more
// precise than the tick's window-start time for cost accounting, §3.2.5).
func ueTime(t errlog.Tick) time.Time {
	for _, ev := range t.Events {
		if ev.Type == errlog.UE {
			return ev.Time
		}
	}
	return t.Time
}

// Step implements rl.Environment with the reward of Eq. 4:
// R = -a·mitigation_cost - UE_occurred·UE_cost.
func (e *MitigationEnv) Step(action int) ([]float64, float64, bool) {
	if action != ActionNone && action != ActionMitigate {
		panic(fmt.Sprintf("env: invalid action %d", action))
	}
	reward := 0.0
	if e.idx < len(e.ticks) {
		now := e.ticks[e.idx].Time
		if action == ActionMitigate {
			penalty := e.cfg.MitigationCostNodeHours()
			if e.cfg.UENodeBoost > 1 {
				penalty *= e.cfg.UENodeBoost
			}
			reward -= penalty
			e.tl.Mitigate(now)
		}
	}
	e.idx++
	for e.idx < len(e.ticks) {
		tick := e.ticks[e.idx]
		e.tl.AdvanceTo(tick.Time)
		if tick.HasUE() {
			e.tracker.Observe(tick, 0)
			reward -= e.tl.OnUE(ueTime(tick))
			e.idx++
			continue
		}
		v := e.tracker.Observe(tick, e.tl.CostAt(tick.Time))
		e.state = v.NormalizedInto(e.nextStateBuf())
		return e.state, reward * e.cfg.RewardScale, false
	}
	// Episode over.
	return e.state, reward * e.cfg.RewardScale, true
}

var _ rl.Environment = (*MitigationEnv)(nil)

// EpisodeJobs exposes the sampler (used by evaluation replay and tools).
func (e *MitigationEnv) Sampler() *jobs.Sampler { return e.sampler }
