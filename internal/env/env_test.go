package env

import (
	"math"
	"testing"
	"time"

	"repro/internal/errlog"
	"repro/internal/features"
	"repro/internal/jobs"
	"repro/internal/mathx"
)

var t0 = time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)

func fixedSampler(nodes int, hours float64) *jobs.Sampler {
	return jobs.NewSampler([]jobs.Job{{
		ID: 1, Nodes: nodes, Duration: time.Duration(hours * float64(time.Hour)),
	}})
}

func TestTimelineCostGrowsWithElapsed(t *testing.T) {
	tl := NewTimeline(fixedSampler(10, 100), mathx.NewRNG(1), true, t0)
	tl.AdvanceTo(t0.Add(3 * time.Hour))
	if got := tl.CostAt(t0.Add(3 * time.Hour)); math.Abs(got-30) > 1e-9 {
		t.Fatalf("cost = %v, want 30 (10 nodes x 3h)", got)
	}
}

func TestTimelineMitigationResetsBaseline(t *testing.T) {
	tl := NewTimeline(fixedSampler(10, 100), mathx.NewRNG(1), true, t0)
	tl.AdvanceTo(t0.Add(5 * time.Hour))
	tl.Mitigate(t0.Add(5 * time.Hour))
	if got := tl.CostAt(t0.Add(7 * time.Hour)); math.Abs(got-20) > 1e-9 {
		t.Fatalf("cost after mitigation = %v, want 20", got)
	}
}

func TestTimelineNonRestartableIgnoresMitigation(t *testing.T) {
	tl := NewTimeline(fixedSampler(10, 100), mathx.NewRNG(1), false, t0)
	tl.AdvanceTo(t0.Add(5 * time.Hour))
	tl.Mitigate(t0.Add(5 * time.Hour))
	if got := tl.CostAt(t0.Add(7 * time.Hour)); math.Abs(got-70) > 1e-9 {
		t.Fatalf("non-restartable cost = %v, want 70 (since job start)", got)
	}
}

func TestTimelineJobRollover(t *testing.T) {
	tl := NewTimeline(fixedSampler(10, 2), mathx.NewRNG(1), true, t0)
	// Jobs last 2h back-to-back; at t=5h we are 1h into the third job.
	tl.AdvanceTo(t0.Add(5 * time.Hour))
	if got := tl.CostAt(t0.Add(5 * time.Hour)); math.Abs(got-10) > 1e-9 {
		t.Fatalf("cost after rollover = %v, want 10", got)
	}
	if !tl.JobStart().Equal(t0.Add(4 * time.Hour)) {
		t.Fatalf("job start = %v", tl.JobStart())
	}
}

func TestTimelineUEKillsJobAndCostsFullWindow(t *testing.T) {
	tl := NewTimeline(fixedSampler(10, 100), mathx.NewRNG(1), true, t0)
	tl.AdvanceTo(t0.Add(2 * time.Hour))
	tl.Mitigate(t0.Add(2 * time.Hour))
	cost := tl.OnUE(t0.Add(6 * time.Hour))
	// Full time between last mitigation and the UE: 4h x 10 nodes.
	if math.Abs(cost-40) > 1e-9 {
		t.Fatalf("UE cost = %v, want 40", cost)
	}
	// Next job starts after the one-week test downtime.
	if !tl.JobStart().Equal(t0.Add(6*time.Hour + UEDowntime)) {
		t.Fatalf("next job start = %v", tl.JobStart())
	}
	// During downtime, cost is zero.
	if got := tl.CostAt(t0.Add(7 * time.Hour)); got != 0 {
		t.Fatalf("cost during downtime = %v, want 0", got)
	}
}

func mkTick(node int, at time.Duration, types ...errlog.EventType) errlog.Tick {
	tk := errlog.Tick{Time: t0.Add(at), Node: node}
	for _, ty := range types {
		tk.Events = append(tk.Events, errlog.Event{
			Time: t0.Add(at), Node: node, Type: ty, Count: 1,
		})
	}
	return tk
}

func TestGroupTicks(t *testing.T) {
	ticks := []errlog.Tick{
		mkTick(1, 0, errlog.CE), mkTick(2, time.Minute, errlog.CE),
		mkTick(1, 2*time.Minute, errlog.CE),
	}
	groups := GroupTicks(ticks)
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if len(groups[0]) != 2 || groups[0][0].Node != 1 {
		t.Fatalf("node 1 group wrong: %+v", groups[0])
	}
}

func TestEnvEpisodeNoUE(t *testing.T) {
	ticks := [][]errlog.Tick{{
		mkTick(1, 0, errlog.CE),
		mkTick(1, time.Hour, errlog.CE),
		mkTick(1, 2*time.Hour, errlog.CE),
	}}
	cfg := DefaultConfig()
	e := NewMitigationEnv(cfg, ticks, fixedSampler(5, 1000))
	s := e.Reset()
	if len(s) != features.Dim {
		t.Fatalf("state dim %d", len(s))
	}
	// One step per decision tick; rewards must be 0 (no UE, no mitigation).
	_, r1, done := e.Step(ActionNone)
	if r1 != 0 || done {
		t.Fatalf("step 1: r=%v done=%v", r1, done)
	}
	_, r2, done := e.Step(ActionNone)
	if r2 != 0 || done {
		t.Fatalf("step 2: r=%v done=%v", r2, done)
	}
	_, r3, done := e.Step(ActionNone)
	if r3 != 0 || !done {
		t.Fatalf("step 3: r=%v done=%v, want done", r3, done)
	}
}

func TestEnvMitigationCost(t *testing.T) {
	ticks := [][]errlog.Tick{{
		mkTick(1, 0, errlog.CE),
		mkTick(1, time.Hour, errlog.CE),
	}}
	cfg := DefaultConfig()
	cfg.RewardScale = 1
	e := NewMitigationEnv(cfg, ticks, fixedSampler(5, 1000))
	e.Reset()
	_, r, _ := e.Step(ActionMitigate)
	want := -cfg.MitigationCostNodeHours()
	if math.Abs(r-want) > 1e-12 {
		t.Fatalf("mitigation reward = %v, want %v", r, want)
	}
}

func TestEnvUEReward(t *testing.T) {
	// CE at t=0 (decision point), UE at t=10h. Without mitigation the UE
	// costs 5 nodes x 10h = 50 node-hours.
	ticks := [][]errlog.Tick{{
		mkTick(1, 0, errlog.CE),
		mkTick(1, 10*time.Hour, errlog.UE),
	}}
	cfg := DefaultConfig()
	cfg.RewardScale = 1
	e := NewMitigationEnv(cfg, ticks, fixedSampler(5, 1000))
	e.Reset()
	_, r, done := e.Step(ActionNone)
	if !done {
		t.Fatal("episode should end after the final UE")
	}
	if math.Abs(r+50) > 1e-9 {
		t.Fatalf("UE reward = %v, want -50", r)
	}
}

func TestEnvMitigationReducesUEReward(t *testing.T) {
	ticks := [][]errlog.Tick{{
		mkTick(1, 0, errlog.CE),
		mkTick(1, 9*time.Hour, errlog.CE),
		mkTick(1, 10*time.Hour, errlog.UE),
	}}
	cfg := DefaultConfig()
	cfg.RewardScale = 1
	run := func(second int) float64 {
		e := NewMitigationEnv(cfg, ticks, fixedSampler(5, 1000))
		e.Reset()
		total := 0.0
		_, r, _ := e.Step(ActionNone)
		total += r
		_, r, _ = e.Step(second)
		total += r
		return total
	}
	noMit := run(ActionNone)
	mit := run(ActionMitigate)
	// Mitigating at t=9h cuts the UE cost from 50 to 5 nodes x 1h = 5,
	// plus the 2 node-minute mitigation cost.
	if math.Abs(noMit+50) > 1e-9 {
		t.Fatalf("no-mitigation total = %v, want -50", noMit)
	}
	want := -5.0 - cfg.MitigationCostNodeHours()
	if math.Abs(mit-want) > 1e-9 {
		t.Fatalf("mitigation total = %v, want %v", mit, want)
	}
}

func TestEnvUEBeforeFirstDecisionIgnored(t *testing.T) {
	// A UE with no preceding event never invokes the agent (§3.2.3) and
	// must not leak reward into the first step.
	ticks := [][]errlog.Tick{{
		mkTick(1, 0, errlog.UE),
		mkTick(1, 10*time.Hour, errlog.CE),
		mkTick(1, 11*time.Hour, errlog.CE),
	}}
	cfg := DefaultConfig()
	cfg.RewardScale = 1
	e := NewMitigationEnv(cfg, ticks, fixedSampler(5, 1000))
	e.Reset()
	_, r, _ := e.Step(ActionNone)
	if r != 0 {
		t.Fatalf("leaked reward %v from pre-decision UE", r)
	}
}

func TestEnvStatesCarryCostFeature(t *testing.T) {
	ticks := [][]errlog.Tick{{
		mkTick(1, 0, errlog.CE),
		mkTick(1, 10*time.Hour, errlog.CE),
	}}
	cfg := DefaultConfig()
	e := NewMitigationEnv(cfg, ticks, fixedSampler(5, 1000))
	e.Reset()
	s, _, _ := e.Step(ActionNone)
	// At t=10h the job (5 nodes, started at t=0) has cost 50 node-hours;
	// normalized = log1p(50).
	if math.Abs(s[features.UECost]-math.Log1p(50)) > 1e-9 {
		t.Fatalf("cost feature = %v, want log1p(50)", s[features.UECost])
	}
}

func TestEnvPanicsOnBadAction(t *testing.T) {
	ticks := [][]errlog.Tick{{mkTick(1, 0, errlog.CE), mkTick(1, 1, errlog.CE)}}
	e := NewMitigationEnv(DefaultConfig(), ticks, fixedSampler(1, 1))
	e.Reset()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Step(7)
}

func TestEnvPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMitigationEnv(DefaultConfig(), nil, fixedSampler(1, 1))
}

func TestEnvDeterministicEpisodes(t *testing.T) {
	ticks := [][]errlog.Tick{
		{mkTick(1, 0, errlog.CE), mkTick(1, time.Hour, errlog.CE)},
		{mkTick(2, 0, errlog.CE), mkTick(2, 2*time.Hour, errlog.CE)},
	}
	mk := func() *MitigationEnv {
		return NewMitigationEnv(DefaultConfig(), ticks, fixedSampler(3, 10))
	}
	a, b := mk(), mk()
	for ep := 0; ep < 10; ep++ {
		sa, sb := a.Reset(), b.Reset()
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("episode %d: states differ", ep)
			}
		}
	}
}

// TestEnvStatePingPong: consecutive Reset/Step states must come from two
// alternating buffers — the previous state stays valid for exactly one more
// step (the caller hands it to the replay buffer, which copies), and the
// step loop allocates no per-step state vectors.
func TestEnvStatePingPong(t *testing.T) {
	ticks := [][]errlog.Tick{{
		mkTick(1, 0, errlog.CE),
		mkTick(1, time.Hour, errlog.CE),
		mkTick(1, 2*time.Hour, errlog.CE),
		mkTick(1, 3*time.Hour, errlog.CE),
	}}
	e := NewMitigationEnv(DefaultConfig(), ticks, fixedSampler(5, 1000))
	s0 := e.Reset()
	s1, _, _ := e.Step(ActionNone)
	if &s0[0] == &s1[0] {
		t.Fatal("Step returned the same buffer as Reset; previous state was clobbered")
	}
	prev := append([]float64(nil), s1...)
	s2, _, _ := e.Step(ActionNone)
	if &s2[0] != &s0[0] {
		t.Fatal("Step did not ping-pong back to the first buffer")
	}
	for i := range prev {
		if s1[i] != prev[i] {
			t.Fatal("previous state mutated before the next step returned")
		}
	}
}

// TestEnvStepNoStateAllocs: after warmup, stepping must not allocate state
// vectors (the pre-interning implementation leaked ~130 B per step into the
// replay buffer's working set).
func TestEnvStepNoStateAllocs(t *testing.T) {
	var ts []errlog.Tick
	for i := 0; i < 4096; i++ {
		ts = append(ts, mkTick(1, time.Duration(i)*time.Minute, errlog.CE))
	}
	e := NewMitigationEnv(DefaultConfig(), [][]errlog.Tick{ts}, fixedSampler(5, 1e6))
	e.Reset()
	allocs := testing.AllocsPerRun(500, func() {
		if _, _, done := e.Step(ActionNone); done {
			e.Reset()
		}
	})
	// The timeline and tracker may allocate occasionally (job rollovers);
	// per-step state vectors alone were ~2 allocations every step.
	if allocs > 0.1 {
		t.Fatalf("Step allocates %v times per call, want ~0", allocs)
	}
}

// TestEnvFastRNGDeterministic: the FastRNG stream differs from the default
// but is reproducible for the same seed.
func TestEnvFastRNGDeterministic(t *testing.T) {
	ticks := [][]errlog.Tick{
		{mkTick(1, 0, errlog.CE), mkTick(1, time.Hour, errlog.CE)},
		{mkTick(2, 0, errlog.CE), mkTick(2, time.Hour, errlog.CE)},
	}
	cfg := DefaultConfig()
	cfg.FastRNG = true
	run := func() []float64 {
		e := NewMitigationEnv(cfg, ticks, fixedSampler(5, 1000))
		var out []float64
		for ep := 0; ep < 5; ep++ {
			e.Reset()
			for {
				s, r, done := e.Step(ActionMitigate)
				out = append(out, r)
				if done {
					break
				}
				out = append(out, s[0])
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("FastRNG env not reproducible at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
