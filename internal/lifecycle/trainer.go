package lifecycle

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/rl"
)

// TrainerConfig parameterizes an OnlineTrainer.
type TrainerConfig struct {
	// Agent is the DQN configuration of the continually trained agent.
	// StateLen/NumActions must match the serving feature layout.
	Agent rl.AgentConfig
	// StreamCapacity bounds the experience stream (default 1<<14).
	StreamCapacity int
	// StepsPerEpoch is the number of batched gradient steps one Epoch
	// runs after draining the stream (default 64).
	StepsPerEpoch int
	// SyncEvery hard-syncs the target network once per this many epoch
	// gradient steps (default 16; the final step of an epoch always
	// syncs, so a snapshot taken after Epoch serves the trained weights).
	SyncEvery int
	// ReplayCapacity bounds the agent-side prioritized replay the stream
	// drains into (default 1<<15).
	ReplayCapacity int
}

func (c TrainerConfig) withDefaults() TrainerConfig {
	if c.StreamCapacity <= 0 {
		c.StreamCapacity = 1 << 14
	}
	if c.StepsPerEpoch <= 0 {
		c.StepsPerEpoch = 64
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = 16
	}
	if c.ReplayCapacity <= 0 {
		c.ReplayCapacity = 1 << 15
	}
	return c
}

// EpochResult summarizes one training epoch.
type EpochResult struct {
	// Epoch is the 1-based epoch index.
	Epoch int
	// Drained is the number of stream transitions ingested this epoch.
	Drained int
	// Steps is the number of gradient steps taken (0 when the replay
	// buffer is still below one batch).
	Steps int
	// MeanLoss is the mean per-step loss over Steps (0 when Steps is 0).
	MeanLoss float64
}

// OnlineTrainer turns the live experience stream into incremental DQN
// updates. Ingest is called from the serving-side learning loop with
// completed transitions; Epoch drains everything buffered into the
// agent's prioritized replay and runs a fixed number of batched gradient
// steps (the same zero-alloc kernels offline training uses).
//
// Epochs are deterministic and seedable: given the same ingestion order,
// the same epoch schedule and the same TrainerConfig (including
// Agent.Seed), the resulting network weights are bit-identical across
// runs — the property the hot-swap lifecycle relies on for reproducible
// fleet scenarios. Ingest is safe to call concurrently with itself;
// Epoch and Network must be called from the single learning loop.
type OnlineTrainer struct {
	cfg    TrainerConfig
	agent  *rl.Agent
	stream *Stream
	epochs int
}

// NewOnlineTrainer builds a trainer. The agent starts from the seeded
// random initialization of cfg.Agent; use WarmStart to continue from a
// serving model's weights instead.
func NewOnlineTrainer(cfg TrainerConfig) *OnlineTrainer {
	cfg = cfg.withDefaults()
	agent := rl.NewAgent(cfg.Agent, rl.NewPrioritizedReplay(rl.PERConfig{
		Capacity: cfg.ReplayCapacity,
		Alpha:    0.6,
		Beta:     0.4,
		// Anneal importance correction over a horizon of explicit steps.
		BetaSteps: 64 * cfg.StepsPerEpoch,
	}))
	return &OnlineTrainer{cfg: cfg, agent: agent, stream: NewStream(cfg.StreamCapacity)}
}

// WarmStart replaces the online network with a clone of net (and re-syncs
// the target), continuing training from a deployed model's weights. The
// architecture must match cfg.Agent.
func (t *OnlineTrainer) WarmStart(net *nn.Network) {
	c := net.Config()
	if c.Inputs != t.cfg.Agent.StateLen || c.Outputs != t.cfg.Agent.NumActions {
		panic(fmt.Sprintf("lifecycle: warm-start network is %dx%d, trainer expects %dx%d",
			c.Inputs, c.Outputs, t.cfg.Agent.StateLen, t.cfg.Agent.NumActions))
	}
	t.agent.SetOnline(net.Clone())
}

// Ingest buffers one completed serving transition for the next epoch.
func (t *OnlineTrainer) Ingest(tr rl.Transition) { t.stream.Push(tr) }

// Stream exposes the experience stream (for observability).
func (t *OnlineTrainer) Stream() *Stream { return t.stream }

// Epochs reports the number of completed training epochs.
func (t *OnlineTrainer) Epochs() int { return t.epochs }

// Epoch drains the stream into the agent's replay buffer and runs the
// configured number of batched gradient steps, returning the epoch
// summary. The target network is synced on the SyncEvery schedule and
// once more after the final step, so the post-epoch online network is
// exactly what a snapshot candidate serves.
func (t *OnlineTrainer) Epoch() EpochResult {
	t.epochs++
	res := EpochResult{Epoch: t.epochs}
	res.Drained = t.stream.Drain(func(tr rl.Transition) {
		t.agent.AddExperience(tr)
	})
	lossSum := 0.0
	for i := 0; i < t.cfg.StepsPerEpoch; i++ {
		loss, ok := t.agent.TrainStep()
		if !ok {
			break
		}
		lossSum += loss
		res.Steps++
		if res.Steps%t.cfg.SyncEvery == 0 {
			t.agent.SyncTarget()
		}
	}
	if res.Steps > 0 {
		t.agent.SyncTarget()
		res.MeanLoss = lossSum / float64(res.Steps)
	}
	return res
}

// Network returns the current online network. Callers must Clone before
// serving it — further epochs keep training these weights.
func (t *OnlineTrainer) Network() *nn.Network { return t.agent.Online() }
