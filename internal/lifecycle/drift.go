package lifecycle

import (
	"math"

	"repro/internal/features"
)

// DriftConfig parameterizes the feature-distribution drift detector.
type DriftConfig struct {
	// Threshold is the standardized mean-shift score at which a window is
	// declared drifted (default 6; the score is a max over feature
	// dimensions of a Welch-style z statistic, so ordinary sampling noise
	// stays in the low single digits).
	Threshold float64
	// WindowSamples is the number of feature vectors per comparison
	// window (default 512). The first full window becomes the reference;
	// each subsequent full (tumbling) window is tested against it.
	WindowSamples int
	// Dims lists the feature dimensions to monitor; nil monitors all.
	// Cumulative features (total CEs, spread counts, boots) are monotone
	// by construction, so a mean-shift test over them fires on any
	// healthy stream; serving-layer callers monitor the stationary
	// subset (StationaryDriftDims).
	Dims []int
}

// StationaryDriftDims are the feature dimensions that are stationary
// under a stable fault process and workload: the per-tick CE rate, the
// Eq. 2 variation ratios, and the Eq. 3 potential-cost feature. These are
// the defaults the serving layer monitors for drift; the cumulative
// counters are excluded because they grow monotonically on any stream.
var StationaryDriftDims = []int{
	features.CEsSinceLastEvent,
	features.CEVar1Min,
	features.CEVar1Hour,
	features.BootVar1Min,
	features.BootVar1Hour,
	features.UECost,
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Threshold <= 0 {
		c.Threshold = 6
	}
	if c.WindowSamples <= 0 {
		c.WindowSamples = 512
	}
	return c
}

// Drift is the outcome of one window comparison.
type Drift struct {
	// Drifted reports whether Score reached the configured threshold.
	Drifted bool
	// Score is the maximum per-dimension standardized mean shift between
	// the reference window and the tested window.
	Score float64
	// Dim is the feature dimension attaining Score.
	Dim int
	// Windows is the number of completed window comparisons so far.
	Windows int
}

// DriftDetector watches the rolling distribution of served feature
// vectors for shifts that invalidate the trained policy (DIMM aging,
// manufacturer mix, workload changes). It compares tumbling windows of
// streaming summary statistics (features.SummaryStats) against a frozen
// reference window using a per-dimension Welch z statistic
//
//	z_i = |mean_cur,i − mean_ref,i| / sqrt(var_ref,i/n_ref + var_cur,i/n_cur)
//
// and reports drift when max_i z_i crosses the threshold. Deterministic:
// the same vector sequence produces the same drift verdicts. Not safe for
// concurrent use; the learning loop owns it.
type DriftDetector struct {
	cfg     DriftConfig
	ref     features.SummaryStats
	cur     features.SummaryStats
	hasRef  bool
	windows int
}

// NewDriftDetector builds a detector with cfg (zero fields take defaults).
func NewDriftDetector(cfg DriftConfig) *DriftDetector {
	return &DriftDetector{cfg: cfg.withDefaults()}
}

// Observe folds one served feature vector into the current window. When
// the window completes it is compared against the reference (the first
// completed window) and the comparison is returned with ok=true; mid-
// window observations return ok=false.
func (d *DriftDetector) Observe(v features.Vector) (res Drift, ok bool) {
	d.cur.Observe(v)
	if d.cur.Count() < d.cfg.WindowSamples {
		return Drift{}, false
	}
	if !d.hasRef {
		// First full window: becomes the reference distribution.
		d.ref = d.cur
		d.hasRef = true
		d.cur.Reset()
		return Drift{}, false
	}
	d.windows++
	res = d.compare()
	res.Windows = d.windows
	d.cur.Reset()
	return res, true
}

// compare scores the current window against the reference.
func (d *DriftDetector) compare() Drift {
	nRef, nCur := float64(d.ref.Count()), float64(d.cur.Count())
	dims := d.cfg.Dims
	if dims == nil {
		dims = allDims
	}
	out := Drift{}
	for _, i := range dims {
		shift := math.Abs(d.cur.Mean(i) - d.ref.Mean(i))
		if shift == 0 {
			continue
		}
		se := math.Sqrt(d.ref.Variance(i)/nRef + d.cur.Variance(i)/nCur)
		var z float64
		if se == 0 {
			// Two degenerate (zero-variance) windows with different
			// means: an unambiguous shift.
			z = math.Inf(1)
		} else {
			z = shift / se
		}
		if z > out.Score {
			out.Score, out.Dim = z, i
		}
	}
	out.Drifted = out.Score >= d.cfg.Threshold
	return out
}

// allDims enumerates every feature dimension (the nil-Dims default).
var allDims = func() []int {
	out := make([]int, features.Dim)
	for i := range out {
		out[i] = i
	}
	return out
}()

// Rebase discards the reference and any partial window, so the next full
// window becomes the new reference. The lifecycle calls it after a model
// swap: the post-swap distribution is the new normal.
func (d *DriftDetector) Rebase() {
	d.ref.Reset()
	d.cur.Reset()
	d.hasRef = false
}

// Reference exposes the frozen reference statistics (for observability);
// the second result reports whether a reference window has completed.
func (d *DriftDetector) Reference() (features.SummaryStats, bool) { return d.ref, d.hasRef }
