// Package lifecycle implements online continual learning for the serving
// layer: a bounded experience stream fed from live serving decisions and
// realized outcomes, an OnlineTrainer that turns that stream into
// deterministic incremental DQN updates (reusing the batched internal/rl
// kernels), and a drift detector over the rolling feature distribution
// that decides when retraining is warranted. The root package's
// OnlineLearner wires these into the Controller's drift → retrain →
// shadow-evaluate → hot-swap loop.
//
//uerl:deterministic
package lifecycle

import (
	"sync"

	"repro/internal/rl"
)

// Stream is a bounded FIFO of training transitions. When full, pushing
// drops the oldest buffered transition (live experience is perishable:
// the newest transitions reflect the distribution being learned), and the
// drop is counted so operators can size the buffer against their retrain
// cadence. Stream is safe for concurrent use: it is a mutex around the
// shared Ring core.
type Stream struct {
	mu   sync.Mutex
	ring *Ring[rl.Transition]
}

// NewStream creates a stream holding at most capacity transitions.
func NewStream(capacity int) *Stream {
	return &Stream{ring: NewRing[rl.Transition](capacity)}
}

// Push appends a transition, evicting the oldest when full.
func (s *Stream) Push(tr rl.Transition) {
	s.mu.Lock()
	s.ring.Push(tr)
	s.mu.Unlock()
}

// Drain removes all buffered transitions in FIFO order, invoking f for
// each. The callback must not call back into the stream.
func (s *Stream) Drain(f func(rl.Transition)) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.ring.Len()
	s.ring.Do(f)
	s.ring.Reset()
	return n
}

// Len reports the number of buffered transitions.
func (s *Stream) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ring.Len()
}

// Pushed reports the total number of transitions ever pushed.
func (s *Stream) Pushed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ring.Pushed()
}

// Dropped reports how many transitions were evicted unconsumed.
func (s *Stream) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ring.Dropped()
}

// Cap reports the stream capacity.
func (s *Stream) Cap() int { return s.ring.Cap() }
