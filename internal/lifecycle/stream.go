// Package lifecycle implements online continual learning for the serving
// layer: a bounded experience stream fed from live serving decisions and
// realized outcomes, an OnlineTrainer that turns that stream into
// deterministic incremental DQN updates (reusing the batched internal/rl
// kernels), and a drift detector over the rolling feature distribution
// that decides when retraining is warranted. The root package's
// OnlineLearner wires these into the Controller's drift → retrain →
// shadow-evaluate → hot-swap loop.
//
//uerl:deterministic
package lifecycle

import (
	"fmt"
	"sync"

	"repro/internal/rl"
)

// Stream is a bounded FIFO of training transitions. When full, pushing
// drops the oldest buffered transition (live experience is perishable:
// the newest transitions reflect the distribution being learned), and the
// drop is counted so operators can size the buffer against their retrain
// cadence. Stream is safe for concurrent use.
type Stream struct {
	mu      sync.Mutex
	buf     []rl.Transition
	head    int
	size    int
	pushed  uint64
	dropped uint64
}

// NewStream creates a stream holding at most capacity transitions.
func NewStream(capacity int) *Stream {
	if capacity <= 0 {
		panic(fmt.Sprintf("lifecycle: stream capacity must be positive, got %d", capacity))
	}
	return &Stream{buf: make([]rl.Transition, capacity)}
}

// Push appends a transition, evicting the oldest when full.
func (s *Stream) Push(tr rl.Transition) {
	s.mu.Lock()
	if s.size == len(s.buf) {
		s.head = (s.head + 1) % len(s.buf)
		s.size--
		s.dropped++
	}
	s.buf[(s.head+s.size)%len(s.buf)] = tr
	s.size++
	s.pushed++
	s.mu.Unlock()
}

// Drain removes all buffered transitions in FIFO order, invoking f for
// each. The callback must not call back into the stream.
func (s *Stream) Drain(f func(rl.Transition)) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.size
	for i := 0; i < n; i++ {
		f(s.buf[(s.head+i)%len(s.buf)])
	}
	s.head, s.size = 0, 0
	return n
}

// Len reports the number of buffered transitions.
func (s *Stream) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Pushed reports the total number of transitions ever pushed.
func (s *Stream) Pushed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushed
}

// Dropped reports how many transitions were evicted unconsumed.
func (s *Stream) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Cap reports the stream capacity.
func (s *Stream) Cap() int { return len(s.buf) }
