package lifecycle

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/features"
	"repro/internal/mathx"
	"repro/internal/rl"
)

func TestStreamFIFOAndBounds(t *testing.T) {
	s := NewStream(4)
	for i := 0; i < 6; i++ {
		s.Push(rl.Transition{A: i})
	}
	if s.Len() != 4 || s.Cap() != 4 {
		t.Fatalf("len=%d cap=%d, want 4/4", s.Len(), s.Cap())
	}
	if s.Pushed() != 6 || s.Dropped() != 2 {
		t.Fatalf("pushed=%d dropped=%d, want 6/2", s.Pushed(), s.Dropped())
	}
	var got []int
	n := s.Drain(func(tr rl.Transition) { got = append(got, tr.A) })
	if n != 4 {
		t.Fatalf("Drain returned %d, want 4", n)
	}
	for i, a := range got {
		if a != i+2 { // oldest two (0, 1) were evicted
			t.Fatalf("drained[%d] = %d, want %d", i, a, i+2)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("stream not empty after drain: %d", s.Len())
	}
	// Wrap-around after drain still preserves order.
	for i := 10; i < 13; i++ {
		s.Push(rl.Transition{A: i})
	}
	got = got[:0]
	s.Drain(func(tr rl.Transition) { got = append(got, tr.A) })
	if len(got) != 3 || got[0] != 10 || got[2] != 12 {
		t.Fatalf("post-drain order wrong: %v", got)
	}
}

// testTrainerConfig is a tiny deterministic trainer configuration.
func testTrainerConfig(seed int64) TrainerConfig {
	return TrainerConfig{
		Agent: rl.AgentConfig{
			StateLen:     4,
			NumActions:   2,
			Hidden:       []int{8},
			Dueling:      true,
			DoubleDQN:    true,
			Gamma:        0.95,
			LearningRate: 1e-3,
			BatchSize:    8,
			Seed:         seed,
		},
		StreamCapacity: 256,
		StepsPerEpoch:  12,
		SyncEvery:      4,
		ReplayCapacity: 512,
	}
}

// ingestSynthetic pushes n deterministic transitions.
func ingestSynthetic(t *OnlineTrainer, seed int64, n int) {
	rng := mathx.NewRNG(seed)
	for i := 0; i < n; i++ {
		s := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		ns := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		t.Ingest(rl.Transition{S: s, A: i % 2, R: rng.Float64() - 0.5, NextS: ns})
	}
}

func netJSON(t *testing.T, tr *OnlineTrainer) string {
	t.Helper()
	data, err := json.Marshal(tr.Network())
	if err != nil {
		t.Fatalf("marshal network: %v", err)
	}
	return string(data)
}

func TestOnlineTrainerDeterministicEpochs(t *testing.T) {
	run := func() (string, EpochResult, EpochResult) {
		tr := NewOnlineTrainer(testTrainerConfig(7))
		ingestSynthetic(tr, 11, 100)
		e1 := tr.Epoch()
		ingestSynthetic(tr, 12, 50)
		e2 := tr.Epoch()
		return netJSON(t, tr), e1, e2
	}
	w1, a1, a2 := run()
	w2, b1, b2 := run()
	if w1 != w2 {
		t.Fatal("identical ingestion + epochs produced different weights")
	}
	if a1 != b1 || a2 != b2 {
		t.Fatalf("epoch results differ across runs: %+v/%+v vs %+v/%+v", a1, a2, b1, b2)
	}
	if a1.Drained != 100 || a2.Drained != 50 {
		t.Fatalf("drained %d/%d, want 100/50", a1.Drained, a2.Drained)
	}
	if a1.Steps != 12 {
		t.Fatalf("epoch 1 took %d steps, want 12", a1.Steps)
	}
	if a2.Epoch != 2 {
		t.Fatalf("epoch index = %d, want 2", a2.Epoch)
	}
}

func TestOnlineTrainerSeedChangesWeights(t *testing.T) {
	mk := func(seed int64) string {
		tr := NewOnlineTrainer(testTrainerConfig(seed))
		ingestSynthetic(tr, 11, 64)
		tr.Epoch()
		return netJSON(t, tr)
	}
	if mk(1) == mk(2) {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestOnlineTrainerBelowBatchNoSteps(t *testing.T) {
	tr := NewOnlineTrainer(testTrainerConfig(3))
	ingestSynthetic(tr, 5, 4) // below BatchSize=8
	res := tr.Epoch()
	if res.Steps != 0 || res.MeanLoss != 0 {
		t.Fatalf("undertrained epoch ran %d steps (loss %v), want 0", res.Steps, res.MeanLoss)
	}
	if res.Drained != 4 {
		t.Fatalf("drained %d, want 4", res.Drained)
	}
}

func TestOnlineTrainerWarmStartArchMismatchPanics(t *testing.T) {
	tr := NewOnlineTrainer(testTrainerConfig(3))
	other := NewOnlineTrainer(TrainerConfig{Agent: rl.AgentConfig{
		StateLen: 7, NumActions: 2, Hidden: []int{4},
		Gamma: 0.9, LearningRate: 1e-3, BatchSize: 4, Seed: 1,
	}})
	defer func() {
		if recover() == nil {
			t.Fatal("warm start with mismatched architecture did not panic")
		}
	}()
	tr.WarmStart(other.Network())
}

// driftVec builds a feature vector with the given CE total.
func driftVec(ces float64) features.Vector {
	var v features.Vector
	v[features.CEsTotal] = ces
	v[features.UECost] = 10
	return v
}

func TestDriftDetectorStableThenShifted(t *testing.T) {
	d := NewDriftDetector(DriftConfig{Threshold: 6, WindowSamples: 64})
	rng := mathx.NewRNG(1)

	sample := func(mean float64) features.Vector {
		return driftVec(mean + 2*rng.Float64())
	}

	// Reference window + three stable windows: no drift.
	checks := 0
	for i := 0; i < 4*64; i++ {
		if res, ok := d.Observe(sample(100)); ok {
			checks++
			if res.Drifted {
				t.Fatalf("stable window %d flagged drift (score %v)", res.Windows, res.Score)
			}
		}
	}
	if checks != 3 {
		t.Fatalf("completed %d comparisons, want 3", checks)
	}

	// A strongly shifted window must trip.
	var last Drift
	seen := false
	for i := 0; i < 64; i++ {
		if res, ok := d.Observe(sample(200)); ok {
			last, seen = res, true
		}
	}
	if !seen || !last.Drifted {
		t.Fatalf("shifted window not flagged: %+v (seen=%v)", last, seen)
	}
	if last.Dim != features.CEsTotal {
		t.Fatalf("drift attributed to dim %d, want CEsTotal (%d)", last.Dim, features.CEsTotal)
	}

	// Rebase: the shifted distribution becomes the new reference.
	d.Rebase()
	for i := 0; i < 64; i++ {
		d.Observe(sample(200)) // new reference window
	}
	for i := 0; i < 64; i++ {
		if res, ok := d.Observe(sample(200)); ok && res.Drifted {
			t.Fatalf("post-rebase stable window flagged drift (score %v)", res.Score)
		}
	}
}

func TestDriftDetectorDegenerateZeroVariance(t *testing.T) {
	d := NewDriftDetector(DriftConfig{Threshold: 6, WindowSamples: 8})
	for i := 0; i < 8; i++ {
		d.Observe(driftVec(5)) // constant reference
	}
	var res Drift
	ok := false
	for i := 0; i < 8; i++ {
		res, ok = d.Observe(driftVec(9)) // constant, different mean
	}
	if !ok || !res.Drifted || !math.IsInf(res.Score, 1) {
		t.Fatalf("zero-variance shift not detected: ok=%v res=%+v", ok, res)
	}
}

func TestDriftDetectorDimMask(t *testing.T) {
	// Monitoring only UECost must ignore an enormous CEsTotal shift.
	d := NewDriftDetector(DriftConfig{Threshold: 6, WindowSamples: 8, Dims: []int{features.UECost}})
	for i := 0; i < 8; i++ {
		d.Observe(driftVec(5))
	}
	for i := 0; i < 8; i++ {
		if res, ok := d.Observe(driftVec(1e9)); ok && res.Drifted {
			t.Fatalf("masked dimension tripped drift: %+v", res)
		}
	}
}

func TestStationaryDriftDimsExcludeCumulative(t *testing.T) {
	for _, dim := range StationaryDriftDims {
		switch dim {
		case features.CEsTotal, features.RanksWithCEs, features.BanksWithCEs,
			features.RowsWithCEs, features.ColsWithCEs, features.DIMMsWithCEs,
			features.UEWarnings, features.Boots, features.HoursSinceBoot:
			t.Fatalf("stationary set contains cumulative dimension %d", dim)
		}
	}
}

func TestDriftDetectorDefaults(t *testing.T) {
	d := NewDriftDetector(DriftConfig{})
	if d.cfg.Threshold != 6 || d.cfg.WindowSamples != 512 {
		t.Fatalf("defaults = %+v", d.cfg)
	}
	if _, ok := d.Reference(); ok {
		t.Fatal("fresh detector claims a reference window")
	}
}
