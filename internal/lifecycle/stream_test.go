package lifecycle

import (
	"sync"
	"testing"

	"repro/internal/rl"
)

// Pushing far past capacity must keep the counters exact across every
// ring-buffer wraparound: pushed counts all pushes, dropped counts
// exactly the evictions, and their difference is what Drain yields.
func TestStreamOverflowCountersAcrossWraparound(t *testing.T) {
	const cap = 8
	s := NewStream(cap)
	// 10 full wraparounds plus a partial lap, interleaved with drains so
	// head lands on every slot of the ring at least once.
	total, drained := 0, 0
	for lap := 0; lap < 10; lap++ {
		n := cap*2 + lap // varies per lap to shift the wrap point
		for i := 0; i < n; i++ {
			s.Push(rl.Transition{A: total})
			total++
		}
		if s.Len() != cap {
			t.Fatalf("lap %d: len=%d, want full at %d", lap, s.Len(), cap)
		}
		wantDropped := uint64(total - drained - cap)
		if s.Pushed() != uint64(total) || s.Dropped() != wantDropped {
			t.Fatalf("lap %d: pushed=%d dropped=%d, want %d/%d",
				lap, s.Pushed(), s.Dropped(), total, wantDropped)
		}
		if lap%3 == 2 { // drain on some laps only, desynchronizing head
			drained += s.Drain(func(rl.Transition) {})
		}
	}
	// Conservation: everything pushed was either dropped, drained, or is
	// still buffered.
	if got := s.Dropped() + uint64(drained) + uint64(s.Len()); got != s.Pushed() {
		t.Fatalf("conservation broken: dropped+drained+len = %d, pushed = %d", got, s.Pushed())
	}
}

// After overflow, Drain must return exactly the newest capacity-sized
// window in FIFO order — never a stale slot from a previous lap.
func TestStreamDrainAfterOverflowReturnsNewestWindow(t *testing.T) {
	const cap = 8
	for _, pushes := range []int{cap + 1, cap * 3, cap*7 + 5} {
		s := NewStream(cap)
		for i := 0; i < pushes; i++ {
			s.Push(rl.Transition{A: i})
		}
		var got []int
		n := s.Drain(func(tr rl.Transition) { got = append(got, tr.A) })
		if n != cap || len(got) != cap {
			t.Fatalf("%d pushes: Drain returned %d items, want %d", pushes, len(got), cap)
		}
		for i, a := range got {
			if want := pushes - cap + i; a != want {
				t.Fatalf("%d pushes: drained[%d] = %d, want %d (stale slot survived overflow)",
					pushes, i, a, want)
			}
		}
		if s.Len() != 0 || s.Dropped() != uint64(pushes-cap) {
			t.Fatalf("%d pushes: len=%d dropped=%d after drain, want 0/%d",
				pushes, s.Len(), s.Dropped(), pushes-cap)
		}
	}
}

// Concurrent pushers overflowing the stream keep the counters coherent:
// no push is lost or double-counted even while evicting (run with -race).
func TestStreamConcurrentOverflowCounters(t *testing.T) {
	const cap, workers, perWorker = 16, 8, 500
	s := NewStream(cap)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Push(rl.Transition{A: w*perWorker + i})
			}
		}(w)
	}
	wg.Wait()
	if s.Pushed() != workers*perWorker {
		t.Fatalf("pushed=%d, want %d", s.Pushed(), workers*perWorker)
	}
	if s.Len() != cap {
		t.Fatalf("len=%d, want full at %d", s.Len(), cap)
	}
	if s.Dropped() != workers*perWorker-cap {
		t.Fatalf("dropped=%d, want %d", s.Dropped(), workers*perWorker-cap)
	}
	seen := map[int]bool{}
	s.Drain(func(tr rl.Transition) {
		if seen[tr.A] {
			t.Errorf("transition %d drained twice", tr.A)
		}
		seen[tr.A] = true
	})
	if len(seen) != cap {
		t.Fatalf("drained %d distinct transitions, want %d", len(seen), cap)
	}
}
