package lifecycle

import "fmt"

// Ring is a bounded drop-oldest FIFO: pushing into a full ring evicts the
// oldest element and counts the drop. It is the unsynchronized core shared
// by the experience Stream (which adds a mutex) and the fleet layer's
// per-node event journals (which replay the retained window to rebuild
// tracker state after a failover). The zero value is not usable; construct
// with NewRing.
//
// Ring does no locking: callers that share one across goroutines must
// synchronize around it.
type Ring[T any] struct {
	buf     []T
	head    int
	size    int
	pushed  uint64
	dropped uint64
}

// NewRing creates a ring holding at most capacity elements.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("lifecycle: ring capacity must be positive, got %d", capacity))
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Push appends v, evicting the oldest element when full. It returns the
// evicted element and whether an eviction happened.
func (r *Ring[T]) Push(v T) (evicted T, wasDropped bool) {
	if r.size == len(r.buf) {
		evicted = r.buf[r.head]
		wasDropped = true
		r.head = (r.head + 1) % len(r.buf)
		r.size--
		r.dropped++
	}
	r.buf[(r.head+r.size)%len(r.buf)] = v
	r.size++
	r.pushed++
	return evicted, wasDropped
}

// At returns the i-th oldest retained element (0 = oldest). It panics when
// i is out of [0, Len()).
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.size {
		panic(fmt.Sprintf("lifecycle: ring index %d out of range [0,%d)", i, r.size))
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// Do invokes f over the retained elements, oldest to newest. f must not
// mutate the ring.
func (r *Ring[T]) Do(f func(T)) {
	for i := 0; i < r.size; i++ {
		f(r.buf[(r.head+i)%len(r.buf)])
	}
}

// Reset drops all retained elements (the pushed/dropped counters keep
// their lifetime totals; reset elements do not count as dropped).
func (r *Ring[T]) Reset() {
	var zero T
	for i := 0; i < r.size; i++ {
		r.buf[(r.head+i)%len(r.buf)] = zero
	}
	r.head, r.size = 0, 0
}

// Len reports the number of retained elements.
func (r *Ring[T]) Len() int { return r.size }

// Cap reports the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Pushed reports the total number of elements ever pushed.
func (r *Ring[T]) Pushed() uint64 { return r.pushed }

// Dropped reports how many elements were evicted by Push.
func (r *Ring[T]) Dropped() uint64 { return r.dropped }
