package lifecycle

import "testing"

func TestRingFIFOAndEviction(t *testing.T) {
	r := NewRing[int](3)
	if r.Cap() != 3 || r.Len() != 0 {
		t.Fatalf("fresh ring: cap=%d len=%d", r.Cap(), r.Len())
	}
	for i := 1; i <= 3; i++ {
		if _, dropped := r.Push(i); dropped {
			t.Fatalf("push %d into non-full ring reported a drop", i)
		}
	}
	// Fourth push evicts the oldest (1).
	evicted, dropped := r.Push(4)
	if !dropped || evicted != 1 {
		t.Fatalf("push into full ring: evicted=%d dropped=%v, want 1 true", evicted, dropped)
	}
	want := []int{2, 3, 4}
	for i, w := range want {
		if got := r.At(i); got != w {
			t.Fatalf("At(%d) = %d, want %d", i, got, w)
		}
	}
	var walked []int
	r.Do(func(v int) { walked = append(walked, v) })
	if len(walked) != 3 || walked[0] != 2 || walked[2] != 4 {
		t.Fatalf("Do walked %v, want [2 3 4]", walked)
	}
	if r.Pushed() != 4 || r.Dropped() != 1 {
		t.Fatalf("counters: pushed=%d dropped=%d, want 4 1", r.Pushed(), r.Dropped())
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing[string](2)
	r.Push("a")
	r.Push("b")
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", r.Len())
	}
	// Lifetime counters survive a reset; reset elements are not drops.
	if r.Pushed() != 2 || r.Dropped() != 0 {
		t.Fatalf("counters after Reset: pushed=%d dropped=%d, want 2 0", r.Pushed(), r.Dropped())
	}
	r.Push("c")
	if r.At(0) != "c" || r.Len() != 1 {
		t.Fatalf("ring unusable after Reset: len=%d At(0)=%q", r.Len(), r.At(0))
	}
}

func TestRingPanicsOnBadUse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewRing(0)", func() { NewRing[int](0) })
	mustPanic("At out of range", func() { NewRing[int](1).At(0) })
}
