package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

const markersSrc = `// Package m is a directive fixture.
//
//uerl:deterministic
package m

type mutex struct{}

func (*mutex) Lock()   {}
func (*mutex) Unlock() {}

//uerl:hotpath
func Hot() {}

//uerl:locked mu
func held() {}

//uerl:serial-only shares one scratch buffer across calls
type Serial struct {
	mu mutex
	//uerl:guarded-by mu
	n int
	//uerl:restrict-to A, B
	total int
}

func Use() int {
	a := 1 //uerl:nondet-ok same-line waiver reason
	//uerl:alloc-ok line-above waiver reason
	b := 2
	return a + b
}

//uerl:nondet-ok

//uerl:hotpath

func unattached() {}

//uerl:bogus something

func alsoFine() {}
`

// parseFixture typechecks markersSrc (it has no imports, so no importer
// is needed) and returns everything ParseMarkers wants.
func parseFixture(t *testing.T) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "m.go", markersSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	if _, err := conf.Check("m", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, info
}

// lineOf returns a position on the first source line containing substr.
func lineOf(t *testing.T, fset *token.FileSet, f *ast.File, substr string) token.Pos {
	t.Helper()
	for i, line := range strings.Split(markersSrc, "\n") {
		if strings.Contains(line, substr) {
			return fset.File(f.Pos()).LineStart(i + 1)
		}
	}
	t.Fatalf("fixture line containing %q not found", substr)
	return token.NoPos
}

func TestParseMarkers(t *testing.T) {
	fset, f, info := parseFixture(t)
	m := ParseMarkers(fset, []*ast.File{f}, info)

	if !m.Deterministic {
		t.Error("package doc //uerl:deterministic not detected")
	}

	byName := map[string]*ast.FuncDecl{}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			byName[fn.Name.Name] = fn
		}
	}
	if !m.Hot[byName["Hot"]] {
		t.Error("//uerl:hotpath on Hot not detected")
	}
	if m.Hot[byName["unattached"]] {
		t.Error("detached //uerl:hotpath wrongly attributed to unattached")
	}
	if mu := m.Locked[byName["held"]]; mu != "mu" {
		t.Errorf("//uerl:locked on held = %q, want \"mu\"", mu)
	}

	wantSerial, wantGuarded, wantRestricted := false, false, false
	for obj, reason := range m.SerialOnly {
		if obj.Name() == "Serial" && strings.Contains(reason, "scratch buffer") {
			wantSerial = true
		}
	}
	for obj, mu := range m.Guarded {
		if obj.Name() == "n" && mu == "mu" {
			wantGuarded = true
		}
	}
	for obj, fns := range m.Restricted {
		if obj.Name() == "total" && len(fns) == 2 && fns[0] == "A" && fns[1] == "B" {
			wantRestricted = true
		}
	}
	if !wantSerial {
		t.Error("//uerl:serial-only on Serial not detected")
	}
	if !wantGuarded {
		t.Error("//uerl:guarded-by on field n not detected")
	}
	if !wantRestricted {
		t.Error("//uerl:restrict-to on field total not parsed to [A B]")
	}
}

func TestWaiverPlacement(t *testing.T) {
	fset, f, info := parseFixture(t)
	m := ParseMarkers(fset, []*ast.File{f}, info)

	if !m.Waived("nondet-ok", lineOf(t, fset, f, "a := 1")) {
		t.Error("same-line //uerl:nondet-ok waiver not matched")
	}
	if !m.Waived("alloc-ok", lineOf(t, fset, f, "b := 2")) {
		t.Error("line-above //uerl:alloc-ok waiver not matched")
	}
	if m.Waived("alloc-ok", lineOf(t, fset, f, "a := 1")) {
		t.Error("alloc-ok waiver matched a nondet-ok line")
	}
	if m.Waived("nondet-ok", lineOf(t, fset, f, "return a + b")) {
		t.Error("waiver leaked two lines down")
	}
}

func TestDirectiveProblems(t *testing.T) {
	fset, f, info := parseFixture(t)
	m := ParseMarkers(fset, []*ast.File{f}, info)

	find := func(substr string) bool {
		for _, p := range m.Problems {
			if strings.Contains(p.Message, substr) {
				return true
			}
		}
		return false
	}
	if !find("needs a reason") {
		t.Error("bare //uerl:nondet-ok not reported as missing its reason")
	}
	if !find("not attached to a declaration") {
		t.Error("detached //uerl:hotpath not reported as unattached")
	}
	if !find("unknown directive //uerl:bogus") {
		t.Error("//uerl:bogus not reported as unknown")
	}
	if len(m.Problems) != 3 {
		for _, p := range m.Problems {
			t.Logf("problem: %s: %s", fset.Position(p.Pos), p.Message)
		}
		t.Errorf("got %d directive problems, want 3", len(m.Problems))
	}

	// DirectiveAnalyzer surfaces exactly these problems as diagnostics.
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: DirectiveAnalyzer, Fset: fset, Files: []*ast.File{f},
		Markers: m, sink: &diags,
	}
	if err := DirectiveAnalyzer.Run(pass); err != nil {
		t.Fatalf("DirectiveAnalyzer: %v", err)
	}
	if len(diags) != len(m.Problems) {
		t.Errorf("DirectiveAnalyzer reported %d diagnostics, want %d", len(diags), len(m.Problems))
	}
}
