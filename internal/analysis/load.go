package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, parsed, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// Errors holds `go list` package errors and type-check errors. A
	// package with errors still carries best-effort syntax and types.
	Errors []string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves the package patterns with the go command and type-checks
// every matched (non-dependency) package from source, importing
// dependencies from compiler export data. This is a go/packages
// LoadAllSyntax-equivalent built on the standard library alone: `go list
// -export` supplies package metadata and compiled export data, go/parser
// and go/types do the rest. dir is the working directory for pattern
// resolution ("" means the current directory).
//
// Patterns behave exactly like build patterns (./..., specific dirs,
// import paths). Note that `./...` never matches testdata directories, so
// analyzer fixtures stay out of repo-wide runs, while an explicit
// pattern like ./internal/analysis/hotpath/testdata/src/hot loads them.
func Load(dir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export",
		"-json=Dir,ImportPath,Export,DepOnly,GoFiles,Error",
		"-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		pkg := &Package{PkgPath: t.ImportPath, Dir: t.Dir}
		if t.Error != nil {
			pkg.Errors = append(pkg.Errors, t.Error.Err)
		}
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				pkg.Errors = append(pkg.Errors, err.Error())
				continue
			}
			pkg.Files = append(pkg.Files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
			Error:    func(err error) { pkg.Errors = append(pkg.Errors, err.Error()) },
		}
		tpkg, _ := conf.Check(t.ImportPath, fset, pkg.Files, info) // errors already collected
		pkg.Types = tpkg
		pkg.TypesInfo = info
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		return nil, nil, fmt.Errorf("go list %s: no packages matched", strings.Join(patterns, " "))
	}
	return pkgs, fset, nil
}
