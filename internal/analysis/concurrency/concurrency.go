// Package concurrency machine-checks the repo's concurrency contracts:
//
//  1. Decider coverage. Every named type implementing policies.Decider
//     must either implement policies.ConcurrentDecider (so the parallel
//     replay engine may fan it out across workers) or carry an explicit
//     //uerl:serial-only <reason> marker acknowledging that replay falls
//     back to the serial path for it. A Decider with neither is a silent
//     performance cliff at best and — if someone "fixes" replay to stop
//     checking — a data race.
//
//  2. Field access restriction. A struct field annotated
//     //uerl:restrict-to f1,f2 (e.g. the Controller's atomic policy
//     pointer) may be selected only inside the named functions/methods;
//     everything else must go through those accessors.
//
//  3. Lock discipline. A struct field annotated //uerl:guarded-by mu may
//     be selected only inside functions that lock that mutex
//     (mu.Lock/RLock appears in the body) or are annotated
//     //uerl:locked mu declaring the caller holds it.
//
// Composite-literal keys are exempt from 2 and 3: initializing a struct
// before it is shared is the idiomatic construction pattern.
package concurrency

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the concurrency contract checker.
var Analyzer = &analysis.Analyzer{
	Name: "concurrency",
	Doc:  "check Decider concurrency coverage, //uerl:restrict-to field access, and //uerl:guarded-by lock discipline",
	Run:  run,
}

const policiesPath = "repro/internal/policies"

func run(pass *analysis.Pass) error {
	checkDeciders(pass)
	checkFields(pass)
	return nil
}

// findPolicies locates the policies package in the import graph (or the
// analyzed package itself).
func findPolicies(pkg *types.Package) *types.Package {
	seen := map[*types.Package]bool{}
	var walk func(p *types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == policiesPath {
			return p
		}
		for _, imp := range p.Imports() {
			if found := walk(imp); found != nil {
				return found
			}
		}
		return nil
	}
	return walk(pkg)
}

func lookupInterface(pkg *types.Package, name string) *types.Interface {
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

func checkDeciders(pass *analysis.Pass) {
	if pass.Pkg == nil {
		return
	}
	pol := findPolicies(pass.Pkg)
	if pol == nil {
		return // cannot implement Decider without importing policies
	}
	decider := lookupInterface(pol, "Decider")
	concurrent := lookupInterface(pol, "ConcurrentDecider")
	if decider == nil || concurrent == nil {
		return
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		obj, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || obj.IsAlias() {
			continue
		}
		t := obj.Type()
		if types.IsInterface(t) {
			continue
		}
		pt := types.NewPointer(t)
		if !types.Implements(t, decider) && !types.Implements(pt, decider) {
			continue
		}
		if types.Implements(t, concurrent) || types.Implements(pt, concurrent) {
			continue
		}
		if _, ok := pass.Markers.SerialOnly[obj]; ok {
			continue
		}
		pass.Reportf(obj.Pos(),
			"%s implements policies.Decider but not ConcurrentDecider: parallel replay silently falls back to serial; add ConcurrentSafe() or mark the type //uerl:serial-only <reason>", name)
	}
}

func checkFields(pass *analysis.Pass) {
	m := pass.Markers
	if len(m.Restricted) == 0 && len(m.Guarded) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncFields(pass, fn)
		}
	}
}

// checkFuncFields flags restricted/guarded field selections. Field
// accesses surface only as SelectorExprs; composite-literal keys
// (construction before publication) are bare idents and naturally exempt.
func checkFuncFields(pass *analysis.Pass, fn *ast.FuncDecl) {
	m := pass.Markers
	info := pass.TypesInfo
	fnName := fn.Name.Name

	// locksHeld: mutex field names this function observably locks, plus
	// any declared held via //uerl:locked.
	locksHeld := map[string]bool{}
	if mu, ok := m.Locked[fn]; ok {
		locksHeld[mu] = true
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
			if inner, ok := sel.X.(*ast.SelectorExpr); ok {
				locksHeld[inner.Sel.Name] = true
			} else if id, ok := sel.X.(*ast.Ident); ok {
				locksHeld[id.Name] = true
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := info.Uses[sel.Sel]
		if obj == nil {
			return true
		}
		if allowed, ok := m.Restricted[obj]; ok && !nameIn(fnName, allowed) {
			pass.Reportf(sel.Sel.Pos(),
				"field %s is restricted to %s (//uerl:restrict-to); access it through those accessors, not directly in %s",
				sel.Sel.Name, strings.Join(allowed, ", "), fnName)
		}
		if mu, ok := m.Guarded[obj]; ok && !locksHeld[mu] {
			pass.Reportf(sel.Sel.Pos(),
				"field %s is guarded by %s (//uerl:guarded-by) but %s neither locks %s nor is marked //uerl:locked %s",
				sel.Sel.Name, mu, fnName, mu, mu)
		}
		return true
	})
}

func nameIn(name string, list []string) bool {
	for _, n := range list {
		if n == name {
			return true
		}
	}
	return false
}
