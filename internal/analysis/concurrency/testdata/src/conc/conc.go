// Package conc is the concurrency analyzer's fixture: a Decider with no
// concurrency story (positive), ConcurrentDecider and //uerl:serial-only
// coverage (negatives), and the //uerl:guarded-by / //uerl:restrict-to
// field disciplines with their lock-held and accessor exemptions.
package conc

import (
	"sync"

	"repro/internal/policies"
)

// Bare implements Decider but neither ConcurrentDecider nor a
// serial-only acknowledgement.
type Bare struct{ threshold float64 } // want `Bare implements policies.Decider but not ConcurrentDecider`

func (b *Bare) Name() string                 { return "bare" }
func (b *Bare) Decide(policies.Context) bool { return b.threshold > 0 }

// Safe declares itself safe for concurrent Decide calls: clean.
type Safe struct{}

func (Safe) Name() string                 { return "safe" }
func (Safe) Decide(policies.Context) bool { return false }
func (Safe) ConcurrentSafe() bool         { return true }

// Acknowledged is deliberately serial and says so: clean.
//
//uerl:serial-only fixture: Decide mutates the shared seen map, so replay must take the serial path
type Acknowledged struct{ seen map[int]bool }

func (a *Acknowledged) Name() string { return "ack" }
func (a *Acknowledged) Decide(ctx policies.Context) bool {
	if a.seen[ctx.Node] {
		return false
	}
	a.seen[ctx.Node] = true
	return true
}

// counter carries one guarded and one accessor-restricted field.
type counter struct {
	mu sync.Mutex
	//uerl:guarded-by mu
	n int
	//uerl:restrict-to NewCounter,Value
	total int
}

// NewCounter is on the restrict-to list: clean.
func NewCounter() *counter { return &counter{total: 1} }

// fresh is NOT on the restrict-to list, but composite-literal keys are
// construction before publication, not field access: clean.
func fresh() *counter {
	return &counter{total: 1}
}

// Inc observably locks mu before touching n: clean.
func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Peek touches n without the lock.
func (c *counter) Peek() int {
	return c.n // want `field n is guarded by mu`
}

// bump declares the caller holds mu: clean.
//
//uerl:locked mu
func (c *counter) bump() {
	c.n++
}

// Value is on the restrict-to list: clean.
func (c *counter) Value() int { return c.total }

// Sneak bypasses the accessor list.
func (c *counter) Sneak() int {
	return c.total // want `field total is restricted to NewCounter, Value`
}

var _ = fresh
var _ = (&counter{}).bump
