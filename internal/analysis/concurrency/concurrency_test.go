package concurrency_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/concurrency"
)

func TestConcurrency(t *testing.T) {
	analysistest.Run(t, concurrency.Analyzer, "testdata/src/conc")
}
