package vetextra_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/vetextra"
)

func TestShadow(t *testing.T) {
	analysistest.Run(t, vetextra.Shadow, "testdata/src/shadowfix")
}

func TestUnusedWrite(t *testing.T) {
	analysistest.Run(t, vetextra.UnusedWrite, "testdata/src/unusedfix")
}

func TestNilness(t *testing.T) {
	analysistest.Run(t, vetextra.Nilness, "testdata/src/nilfix")
}
