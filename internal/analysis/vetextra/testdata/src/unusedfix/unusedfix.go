// Package unusedfix is the unusedwrite analyzer's fixture: field writes
// through a struct copy that are discarded (positives), and the reads,
// pointer receivers, and loop backedges that keep writes live
// (negatives).
package unusedfix

type point struct{ x, y int }

// Discard writes to a parameter copy and returns: the write is lost.
func Discard(p point) {
	p.x = 1 // want `unused write to p.x`
}

// SetX is the classic value-receiver setter whose mutation is discarded.
func (p point) SetX(v int) {
	p.x = v // want `unused write to p.x`
}

// Used reads the copy after the write: clean.
func Used(p point) int {
	p.x = 1
	return p.x
}

// Pointer writes through a pointer mutate shared state: clean.
func Pointer(p *point) {
	p.x = 1
}

// Backedge: the next loop iteration reads this iteration's write: clean.
func Backedge(n int) int {
	var acc point
	out := 0
	for i := 0; i < n; i++ {
		out = acc.x
		acc.x = out + i
	}
	return out
}
