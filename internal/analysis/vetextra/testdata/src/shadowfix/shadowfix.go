// Package shadowfix is the shadow analyzer's fixture: a same-typed inner
// redeclaration whose outer variable is read afterwards (positive), the
// idiomatic write-before-read err reuse, a different-typed shadow, and an
// outer variable that dies with the block (negatives).
package shadowfix

import "errors"

var errEmpty = errors.New("empty")

func check(xs []int) error {
	if len(xs) == 0 {
		return errEmpty
	}
	return nil
}

// ReadAfter: the outer n is read after the inner scope ends, so the two
// variables are almost certainly believed to be one.
func ReadAfter(xs []int) int {
	n := 0
	if len(xs) > 0 {
		n := xs[0] // want `declaration of "n" shadows a int declared at`
		_ = n
	}
	return n
}

// WriteFirst: the first post-scope use of the outer err is a write, so
// the shadowed value is never observed — idiomatic err reuse: clean.
func WriteFirst(xs []int) error {
	err := check(xs)
	if err != nil {
		return err
	}
	if len(xs) > 1 {
		if err := check(xs[1:]); err != nil {
			return err
		}
	}
	err = check(nil)
	return err
}

// DiffType: redeclaring the name with another type is deliberate: clean.
func DiffType() int {
	n := 0
	{
		n := "shadow"
		_ = n
	}
	return n
}

// DeadAfter: the outer n is never read after the inner scope: clean.
func DeadAfter(xs []int) int {
	n := len(xs)
	if n > 0 {
		n := xs[0]
		return n
	}
	return 0
}
