// Package nilfix is the nilness analyzer's fixture: dereferences inside
// the branch that just proved the value nil (positives), and the legal
// nil uses — map reads, method calls on nil receivers, reassignment
// before use (negatives).
package nilfix

type box struct{ v int }

func Deref(p *int) int {
	if p == nil {
		return *p // want `dereference of "p" inside the branch where it is nil`
	}
	return *p
}

func Field(b *box) int {
	if b == nil {
		return b.v // want `field access b.v inside the branch where "b" is nil`
	}
	return b.v
}

func Index(xs []int) int {
	if xs == nil {
		return xs[0] // want `index of "xs" inside the branch where it is nil`
	}
	return xs[0]
}

func MapWrite(m map[string]int) {
	if m == nil {
		m["k"] = 1 // want `write to nil map "m"`
	}
}

// MapRead: reading a nil map is legal and yields the zero value: clean.
func MapRead(m map[string]int) int {
	if m == nil {
		return m["k"]
	}
	return m["k"]
}

func Call(f func()) {
	if f == nil {
		f() // want `call of "f" inside the branch where it is nil`
	}
}

// Else: with != the nil branch is the else arm.
func Else(p *int) int {
	if p != nil {
		return *p
	} else {
		return *p // want `dereference of "p" inside the branch where it is nil`
	}
}

// Reassigned: the branch repairs the nil before using it: clean.
func Reassigned(p *int) int {
	if p == nil {
		p = new(int)
		return *p
	}
	return *p
}

type nilok struct{}

func (*nilok) m() {}

// Method: calling a method on a nil receiver is legal: clean.
func Method(n *nilok) {
	if n == nil {
		n.m()
	}
}
