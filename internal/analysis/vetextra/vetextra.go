// Package vetextra carries the standard vet passes that are not in `go
// vet`'s default set — shadow, unusedwrite, nilness — reimplemented on
// the standard library (this module has no third-party dependencies, so
// the golang.org/x/tools originals are unavailable). Each is a
// deliberately conservative subset of its x/tools namesake, tuned for a
// near-zero false-positive rate so the suite can gate CI:
//
//   - shadow flags an inner := redeclaration of an outer variable only
//     when the types are identical and the outer variable is still read
//     after the inner scope ends — the case where a reader almost
//     certainly believes the two are one variable.
//
//   - unusedwrite flags writes to fields of a by-value receiver (or a
//     local struct copy) when the written copy is never read afterwards:
//     the classic value-receiver setter whose mutation is discarded at
//     return.
//
//   - nilness flags dereferences of a variable inside the branch that
//     just established it is nil (`if x == nil { ... *x ... }`): pointer
//     and field derefs, slice indexing, calls, and map writes.
package vetextra

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzers is the full extra-vet set, in the order uerlvet runs them.
var Analyzers = []*analysis.Analyzer{Shadow, UnusedWrite, Nilness}

// Shadow reports inner declarations that shadow an outer variable of the
// same type while the outer variable is still live afterwards.
var Shadow = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "flag := declarations shadowing a same-typed outer variable that is read after the inner scope ends",
	Run:  runShadow,
}

func runShadow(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || as.Tok != token.DEFINE {
					return true
				}
				for _, lhs := range as.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					inner, ok := info.Defs[id].(*types.Var)
					if !ok {
						continue
					}
					checkShadow(pass, fn, id, inner)
				}
				return true
			})
		}
	}
	return nil
}

func checkShadow(pass *analysis.Pass, fn *ast.FuncDecl, id *ast.Ident, inner *types.Var) {
	info := pass.TypesInfo
	scope := inner.Parent()
	if scope == nil {
		return
	}
	// Find the nearest outer declaration of the same name visible here
	// (package-level shadowing is idiomatic and excluded).
	parent := scope.Parent()
	if parent == nil {
		return
	}
	_, obj := parent.LookupParent(id.Name, id.Pos())
	outer, ok := obj.(*types.Var)
	if !ok || outer == inner || outer.Pos() == token.NoPos ||
		outer.Pos() < fn.Pos() || outer.Pos() > fn.End() ||
		!types.Identical(outer.Type(), inner.Type()) {
		return
	}
	// Only a problem if the outer variable is READ after the inner scope
	// ends — otherwise the shadow is harmless. Bare assignment targets
	// (`x, err := f()` reusing err, `err = f()`) are writes, not reads:
	// they start a fresh value, so the shadowed one was never observed.
	writeTargets := map[*ast.Ident]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if u, ok := lhs.(*ast.Ident); ok {
					writeTargets[u] = true
				}
			}
		}
		return true
	})
	// The first post-scope use decides: a write means the code starts a
	// fresh value (idiomatic err reuse — harmless); a read means the
	// stale shadowed value is observed.
	end := scope.End()
	firstRead, firstWrite := token.NoPos, token.NoPos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		u, ok := n.(*ast.Ident)
		if !ok || u.Pos() <= end || info.Uses[u] != outer {
			return true
		}
		if writeTargets[u] {
			if firstWrite == token.NoPos || u.Pos() < firstWrite {
				firstWrite = u.Pos()
			}
		} else if firstRead == token.NoPos || u.Pos() < firstRead {
			firstRead = u.Pos()
		}
		return true
	})
	usedAfter := firstRead != token.NoPos &&
		(firstWrite == token.NoPos || firstRead < firstWrite)
	if usedAfter {
		pass.Reportf(id.Pos(),
			"declaration of %q shadows a %s declared at %s that is still used afterwards",
			id.Name, outer.Type(), pass.Fset.Position(outer.Pos()))
	}
}

// UnusedWrite reports field writes through a struct copy that is never
// read again — the mutation is discarded.
var UnusedWrite = &analysis.Analyzer{
	Name: "unusedwrite",
	Doc:  "flag field writes to a by-value receiver or local struct copy that is never read afterwards",
	Run:  runUnusedWrite,
}

func runUnusedWrite(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, lhs := range as.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					base, ok := sel.X.(*ast.Ident)
					if !ok {
						continue
					}
					v, ok := info.Uses[base].(*types.Var)
					if !ok || v.IsField() {
						continue
					}
					// Only struct values held directly (not pointers):
					// writes through a pointer mutate shared state.
					if _, isStruct := v.Type().Underlying().(*types.Struct); !isStruct {
						continue
					}
					if v.Pos() < fn.Pos() || v.Pos() > fn.End() {
						continue // package-level or captured-from-elsewhere
					}
					if !readAfter(pass, fn, v, as) {
						pass.Reportf(sel.Pos(),
							"unused write to %s.%s: %q is a struct copy that is never read after this assignment",
							base.Name, sel.Sel.Name, base.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}

// readAfter reports whether v is read after the write statement. A use
// is a read unless it is itself the base of a field-write LHS. Writes
// inside a loop count any use in the same loop as "after" (the
// backedge).
func readAfter(pass *analysis.Pass, fn *ast.FuncDecl, v *types.Var, write *ast.AssignStmt) bool {
	info := pass.TypesInfo

	// Collect LHS base idents of field writes so they don't count as reads.
	writeBases := map[*ast.Ident]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if sel, ok := lhs.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					writeBases[id] = true
				}
			}
		}
		return true
	})

	// The smallest enclosing loop of the write, if any.
	var loop ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if n.Pos() <= write.Pos() && write.End() <= n.End() {
				loop = n
			}
		}
		return true
	})

	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != v || writeBases[id] {
			return true
		}
		if id.Pos() > write.End() {
			found = true
		} else if loop != nil && id.Pos() >= loop.Pos() && id.Pos() <= loop.End() {
			found = true
		}
		return true
	})
	return found
}

// Nilness reports dereferences of a variable inside the branch that just
// proved it nil.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "flag dereferences of a variable inside an `if x == nil` branch",
	Run:  runNilness,
}

func runNilness(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			cond, ok := ifs.Cond.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch {
			case isNilExpr(info, cond.Y):
				id, _ = cond.X.(*ast.Ident)
			case isNilExpr(info, cond.X):
				id, _ = cond.Y.(*ast.Ident)
			}
			if id == nil {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			var nilBranch ast.Stmt
			switch cond.Op {
			case token.EQL:
				nilBranch = ifs.Body
			case token.NEQ:
				nilBranch = ifs.Else
			}
			if nilBranch == nil {
				return true
			}
			checkNilBranch(pass, nilBranch, v)
			return true
		})
	}
	return nil
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// checkNilBranch flags derefs of v inside the branch where v is nil,
// unless v is reassigned anywhere in the branch (conservative).
func checkNilBranch(pass *analysis.Pass, branch ast.Stmt, v *types.Var) {
	info := pass.TypesInfo
	reassigned := false
	ast.Inspect(branch, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && info.ObjectOf(id) == v {
				reassigned = true
			}
		}
		return true
	})
	if reassigned {
		return
	}
	usesV := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && info.Uses[id] == v
	}
	ast.Inspect(branch, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StarExpr:
			if usesV(n.X) {
				pass.Reportf(n.Pos(), "dereference of %q inside the branch where it is nil", v.Name())
			}
		case *ast.SelectorExpr:
			// Field access through a nil pointer panics; method calls on
			// nil receivers can be legal, so only flag field selections.
			if usesV(n.X) {
				if sel := info.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
					if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
						pass.Reportf(n.Pos(), "field access %s.%s inside the branch where %q is nil", v.Name(), n.Sel.Name, v.Name())
					}
				}
			}
		case *ast.IndexExpr:
			if !usesV(n.X) {
				return true
			}
			switch v.Type().Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "index of %q inside the branch where it is nil", v.Name())
			case *types.Map:
				// Reading a nil map is legal; writing panics.
				if isAssignTarget(branch, n) {
					pass.Reportf(n.Pos(), "write to nil map %q inside the branch where it is nil", v.Name())
				}
			}
		case *ast.CallExpr:
			if usesV(n.Fun) {
				pass.Reportf(n.Pos(), "call of %q inside the branch where it is nil", v.Name())
			}
		}
		return true
	})
}

// isAssignTarget reports whether expr appears as an assignment LHS
// within root.
func isAssignTarget(root ast.Node, expr ast.Expr) bool {
	target := false
	ast.Inspect(root, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if lhs == expr {
				target = true
			}
		}
		return true
	})
	return target
}
