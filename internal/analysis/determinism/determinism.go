// Package determinism checks the repo's bit-exactness contract: in
// packages whose package doc carries //uerl:deterministic (evalx, rl, nn,
// mathx, lifecycle), every run with the same seed must produce identical
// bits for any worker count. The analyzer flags the constructs that
// silently break that promise:
//
//   - wall-clock reads (time.Now/Since/Until) — inject a clock instead;
//   - the global math/rand generator (rand.Intn, rand.Float64, ... and
//     Seed/Read) — use a seeded mathx.RNG; explicit-source constructors
//     (rand.New, rand.NewSource, ...) stay legal;
//   - GOMAXPROCS/NumCPU reads — worker counts may change wall clock but
//     must never change results, so results must not branch on them;
//   - iteration over a map that feeds accumulation or output: appends to
//     outer slices (unless the slice is sorted immediately after),
//     assignments to outer variables, string building, returns that
//     depend on the iteration variables, channel sends, and printing.
//     Order-independent sinks (integer counters, constant flags, writes
//     into other maps) pass. Floating-point accumulation under a map
//     range is left to the fpreduce analyzer so each finding is reported
//     once.
//
// //uerl:nondet-ok <reason> on the offending line (or the line above)
// waives a finding; the reason is mandatory.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the determinism contract checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock, global RNG, GOMAXPROCS and map-order dependence in //uerl:deterministic packages",
	Run:  run,
}

const waiver = "nondet-ok"

// randConstructors take an explicit Source/seed, so they are
// deterministic; everything else exported by math/rand draws from the
// global generator.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !pass.Markers.Deterministic {
		return nil
	}
	for _, f := range pass.Files {
		var enclosing *ast.FuncDecl
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				enclosing = n
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				if analysis.IsMap(pass.TypesInfo, n.X) {
					checkMapRange(pass, n, enclosing)
				}
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, name, ok := analysis.PkgFunc(pass.TypesInfo, call)
	if !ok {
		return
	}
	switch {
	case pkg == "time" && (name == "Now" || name == "Since" || name == "Until"):
		pass.ReportWaivable(call.Pos(), waiver,
			"time.%s reads the wall clock in a deterministic package; inject a clock (cf. uerl.WithNowFunc) or waive with //uerl:nondet-ok <reason>", name)
	case (pkg == "math/rand" || pkg == "math/rand/v2") && !randConstructors[name]:
		pass.ReportWaivable(call.Pos(), waiver,
			"rand.%s draws from the global math/rand generator; use a seeded mathx.RNG so streams are reproducible and forkable", name)
	case pkg == "runtime" && (name == "GOMAXPROCS" || name == "NumCPU"):
		pass.ReportWaivable(call.Pos(), waiver,
			"runtime.%s makes behavior depend on the machine's core count; parallelism may change wall clock but never results", name)
	}
}

// checkMapRange flags order-sensitive sinks inside a `range` over a map.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, enclosing *ast.FuncDecl) {
	info := pass.TypesInfo

	// Objects bound by this range statement (key/value variables).
	rangeVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				rangeVars[obj] = true
			}
		}
	}

	declaredOutside := func(e ast.Expr) (types.Object, bool) {
		id := analysis.RootIdent(e)
		if id == nil {
			return nil, false
		}
		obj := info.ObjectOf(id)
		if obj == nil || obj.Pos() == token.NoPos {
			return nil, false
		}
		outside := obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
		return obj, outside
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rng, n, declaredOutside, enclosing)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if tv, ok := info.Types[res]; ok && tv.Value != nil {
					continue // constant result: order-independent
				}
				uses := false
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && rangeVars[info.ObjectOf(id)] {
						uses = true
					}
					return !uses
				})
				if uses {
					pass.ReportWaivable(n.Pos(), waiver,
						"return inside map iteration depends on which key is encountered first; iterate a sorted key slice instead")
					break
				}
			}
		case *ast.SendStmt:
			if _, outside := declaredOutside(n.Chan); outside {
				pass.ReportWaivable(n.Pos(), waiver,
					"channel send inside map iteration publishes values in nondeterministic order")
			}
		case *ast.CallExpr:
			if pkg, name, ok := analysis.PkgFunc(info, n); ok && pkg == "fmt" &&
				(name == "Print" || name == "Println" || name == "Printf" ||
					name == "Fprint" || name == "Fprintln" || name == "Fprintf") {
				pass.ReportWaivable(n.Pos(), waiver,
					"fmt.%s inside map iteration emits output in nondeterministic order; collect and sort first", name)
			}
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt,
	declaredOutside func(ast.Expr) (types.Object, bool), enclosing *ast.FuncDecl) {
	info := pass.TypesInfo
	for i, lhs := range as.Lhs {
		// Writes into another map are order-independent (distinct keys
		// land in the same final map whatever the visit order).
		if ix, ok := lhs.(*ast.IndexExpr); ok && analysis.IsMap(info, ix.X) {
			continue
		}
		obj, outside := declaredOutside(lhs)
		if !outside || obj == nil {
			continue
		}
		t := info.TypeOf(lhs)
		if t == nil {
			continue
		}
		switch as.Tok {
		case token.DEFINE:
			continue
		case token.ASSIGN:
			// x = append(x, ...) — order-sensitive unless sorted after.
			if i < len(as.Rhs) {
				if call, ok := as.Rhs[i].(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
					if sortedAfter(info, enclosing, rng, obj) {
						continue
					}
					pass.ReportWaivable(as.Pos(), waiver,
						"append to %q inside map iteration accumulates in nondeterministic order; sort the result or iterate sorted keys", obj.Name())
					continue
				}
				// Constant stores (done = true) are order-independent.
				if tv, ok := info.Types[as.Rhs[i]]; ok && tv.Value != nil {
					continue
				}
			}
			pass.ReportWaivable(as.Pos(), waiver,
				"assignment to %q inside map iteration keeps the last-visited entry, which is nondeterministic", obj.Name())
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			switch {
			case analysis.IsString(t):
				pass.ReportWaivable(as.Pos(), waiver,
					"string concatenation into %q inside map iteration builds a nondeterministic string; sort keys first", obj.Name())
			case analysis.IsFloat(t):
				// fpreduce reports floating-point reduction order.
			default:
				// Integer accumulation is associative and commutative:
				// order cannot change the result.
			}
		}
	}
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// sortedAfter reports whether obj is passed to a sort.* or slices.Sort*
// call after the range statement ends, inside the enclosing function —
// the idiomatic collect-keys-then-sort pattern.
func sortedAfter(info *types.Info, enclosing *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	if enclosing == nil || enclosing.Body == nil {
		return false
	}
	found := false
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		pkg, name, ok := analysis.PkgFunc(info, call)
		if !ok {
			return true
		}
		isSort := pkg == "sort" || (pkg == "slices" && (name == "Sort" || name == "SortFunc" || name == "SortStableFunc"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if id := analysis.RootIdent(arg); id != nil && info.ObjectOf(id) == obj {
				found = true
			}
		}
		return true
	})
	return found
}
