// Package det is the determinism analyzer's fixture: one positive for
// every finding class, the //uerl:nondet-ok suppression, and the clean
// patterns the analyzer must stay silent on.
//
//uerl:deterministic
package det

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"
)

// Clock exercises the wall-clock findings.
func Clock() time.Duration {
	t0 := time.Now()      // want `time.Now reads the wall clock`
	return time.Since(t0) // want `time.Since reads the wall clock`
}

// WaivedClock shows the line-above waiver form.
func WaivedClock() time.Time {
	//uerl:nondet-ok fixture: wallclock annotates metadata and never feeds decisions
	return time.Now()
}

// GlobalRand draws from the global generator.
func GlobalRand() int {
	return rand.Intn(10) // want `rand.Intn draws from the global math/rand generator`
}

// SeededRand uses explicit-source constructors, which are deterministic.
func SeededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Procs branches on the machine's core count.
func Procs() int {
	return runtime.GOMAXPROCS(0) // want `runtime.GOMAXPROCS makes behavior depend`
}

// Keys accumulates map keys without sorting.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside map iteration`
	}
	return keys
}

// SortedKeys is the idiomatic collect-then-sort pattern: clean.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Last keeps whichever entry the iterator visits last.
func Last(m map[string]int) int {
	last := 0
	for _, v := range m {
		last = v // want `assignment to "last" inside map iteration`
	}
	return last
}

// Count shows the order-independent sinks: integer accumulation is
// commutative and a constant store lands on the same value whatever the
// visit order.
func Count(m map[string]int) (int, bool) {
	n, saw := 0, false
	for _, v := range m {
		n += v
		saw = true
	}
	return n, saw
}

// Join builds a string in visit order.
func Join(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string concatenation into "s" inside map iteration`
	}
	return s
}

// First returns whichever key the iterator happens to visit first.
func First(m map[string]int) (string, bool) {
	for k := range m {
		return k, true // want `return inside map iteration depends on which key`
	}
	return "", false
}

// Publish sends entries to a channel in visit order.
func Publish(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want `channel send inside map iteration`
	}
}

// Dump prints entries in visit order.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt.Println inside map iteration emits output`
	}
}

// Invert writes into another map: distinct keys land in the same final
// map whatever the order, so this is clean.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Sum accumulates floats under a map range. Reduction order is fpreduce's
// finding, not determinism's, so this file expects no diagnostic here.
func Sum(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}
