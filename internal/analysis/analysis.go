// Package analysis is the dependency-free core of uerlvet, the repo's
// static-analysis suite. It mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — but is
// built entirely on the standard library (go/ast, go/types, and the go
// command for package metadata and export data), because this module
// deliberately has no third-party dependencies.
//
// The analyzers housed under internal/analysis machine-check the
// contracts the rest of the repository only states in comments: the
// bit-identical replay/training guarantee, the zero-allocation serving
// hot paths, and the Decider/Controller concurrency rules. The contracts
// are declared in source with //uerl: directives (see Markers) and
// enforced by `go run ./cmd/uerlvet ./...` in CI.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one static check. Run inspects a single type-checked
// package through the Pass and reports findings via the Pass's report
// methods; a non-nil error aborts the whole uerlvet run (reserved for
// internal failures, not findings).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only flags.
	Name string
	// Doc is a one-paragraph description shown by `uerlvet -list`.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name
	Message  string
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Markers holds the package's parsed //uerl: directives: which
	// functions are hot paths, which fields are access-restricted, and
	// which lines carry waivers.
	Markers *Markers

	sink *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      pos,
		Category: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportWaivable records a finding at pos unless the line (or the line
// immediately above it) carries a matching //uerl:<kind> waiver comment.
// kind is the waiver directive name, e.g. "nondet-ok" or "alloc-ok".
func (p *Pass) ReportWaivable(pos token.Pos, kind string, format string, args ...any) {
	if p.Markers.Waived(kind, pos) {
		return
	}
	p.Reportf(pos, format, args...)
}

// Run executes the analyzers over every package and returns the combined,
// position-sorted, deduplicated findings. Identical (position, analyzer,
// message) triples — possible when nested constructs are visited from two
// enclosing contexts — collapse to one.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		markers := ParseMarkers(fset, pkg.Files, pkg.TypesInfo)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Markers:   markers,
				sink:      &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Category < diags[j].Category
	})
	out := diags[:0]
	var last Diagnostic
	for i, d := range diags {
		if i > 0 && d == last {
			continue
		}
		out = append(out, d)
		last = d
	}
	return out, nil
}

// PkgFunc resolves a call of the form pkg.F where pkg is an imported
// package name, returning the package path and function name. ok is false
// for method calls, conversions, locally-defined functions and builtins.
func PkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	if _, isFunc := info.Uses[sel.Sel].(*types.Func); !isFunc {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// RootIdent returns the leftmost identifier of an lvalue-ish expression
// (x, x.f, x[i], *x, x.f[i].g ...), or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// IsMap reports whether e's static type is a map.
func IsMap(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// IsFloat reports whether t's underlying type is a floating-point or
// complex scalar — the types whose addition is not associative, so
// accumulation order changes bits.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// IsString reports whether t's underlying type is string.
func IsString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// PointerShaped reports whether a value of type t is stored directly in
// an interface's data word, so converting it to an interface type does
// not heap-allocate.
func PointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}
