// Package fpreduce checks floating-point reduction order in bit-exact
// (//uerl:deterministic) packages. Float addition and multiplication are
// not associative: accumulating into a shared variable from a goroutine
// body or under map iteration produces bits that depend on scheduling or
// map order. The contract — proven by evalx.Replay's worker-count
// invariance tests — is that parallel code accumulates into per-index
// state and reduces in explicit index order afterwards (the parx
// discipline).
//
// The analyzer flags `+=`, `-=`, `*=`, `/=` on float or complex values
// whose target is declared outside the enclosing concurrent region,
// where a concurrent region is:
//
//   - a goroutine body (`go func() { ... }()`),
//   - a function literal passed to parx.For (its iterations run on
//     multiple workers), or
//   - the body of a `range` over a map (iteration order is random even
//     single-threaded).
//
// //uerl:nondet-ok <reason> waives a finding (e.g. an accumulation that
// is provably confined to one worker).
package fpreduce

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis"
)

// Analyzer is the floating-point reduction-order checker.
var Analyzer = &analysis.Analyzer{
	Name: "fpreduce",
	Doc:  "flag out-of-order floating-point accumulation in goroutine bodies and map iteration inside //uerl:deterministic packages",
	Run:  run,
}

const waiver = "nondet-ok"

func run(pass *analysis.Pass) error {
	if !pass.Markers.Deterministic {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkRegion(pass, lit.Body, lit, "goroutine body")
				}
			case *ast.CallExpr:
				if pkg, name, ok := analysis.PkgFunc(pass.TypesInfo, n); ok &&
					pkg == "repro/internal/parx" && name == "For" {
					for _, arg := range n.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							checkRegion(pass, lit.Body, lit, "parx.For worker body")
						}
					}
				}
			case *ast.RangeStmt:
				if analysis.IsMap(pass.TypesInfo, n.X) {
					checkRegion(pass, n.Body, n, "map iteration")
				}
			}
			return true
		})
	}
	return nil
}

// checkRegion flags float augmented assignments inside body whose target
// is declared outside the region node.
func checkRegion(pass *analysis.Pass, body *ast.BlockStmt, region ast.Node, what string) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			t := info.TypeOf(lhs)
			if t == nil || !analysis.IsFloat(t) {
				continue
			}
			id := analysis.RootIdent(lhs)
			if id == nil {
				continue
			}
			obj := info.ObjectOf(id)
			if obj == nil || obj.Pos() == token.NoPos {
				continue
			}
			if obj.Pos() >= region.Pos() && obj.Pos() <= region.End() {
				continue // region-local accumulator: single-owner, ordered
			}
			pass.ReportWaivable(as.Pos(), waiver,
				"floating-point accumulation into %q inside a %s: reduction order is nondeterministic, so results are not bit-exact; accumulate per index and reduce in order (parx discipline)",
				obj.Name(), what)
		}
		return true
	})
}
