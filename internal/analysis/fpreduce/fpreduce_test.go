package fpreduce_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/fpreduce"
)

func TestFPReduce(t *testing.T) {
	analysistest.Run(t, fpreduce.Analyzer, "testdata/src/fpr")
}
