// Package fpr is the fpreduce analyzer's fixture: floating-point
// accumulation into shared state from each concurrent region (goroutine
// body, parx.For worker, map iteration), the parx per-index discipline
// and region-local accumulators as negatives, and the waiver.
//
//uerl:deterministic
package fpr

import "repro/internal/parx"

// GoAccumulate folds into a variable owned outside the goroutine.
func GoAccumulate(xs []float64) float64 {
	total := 0.0
	done := make(chan struct{})
	go func() {
		for _, x := range xs {
			total += x // want `floating-point accumulation into "total" inside a goroutine body`
		}
		close(done)
	}()
	<-done
	return total
}

// GoLocal accumulates into a region-local variable and publishes the
// finished value once: clean.
func GoLocal(xs []float64, out chan<- float64) {
	go func() {
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		out <- sum
	}()
}

// ParxAccumulate folds into shared state from worker iterations.
func ParxAccumulate(xs []float64) float64 {
	total := 0.0
	parx.For(len(xs), 0, func(i int) {
		total += xs[i] // want `floating-point accumulation into "total" inside a parx.For worker body`
	})
	return total
}

// ParxPerIndex is the parx discipline: per-index writes in the workers,
// one ordered reduction afterwards: clean.
func ParxPerIndex(xs []float64) float64 {
	sq := make([]float64, len(xs))
	parx.For(len(xs), 0, func(i int) {
		sq[i] = xs[i] * xs[i]
	})
	total := 0.0
	for _, v := range sq {
		total += v
	}
	return total
}

// MapSum folds floats in map-visit order.
func MapSum(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v // want `floating-point accumulation into "s" inside a map iteration`
	}
	return s
}

// MapCount: integer accumulation is commutative, so order is moot: clean.
func MapCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Waived documents why the contract holds anyway.
func Waived(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v //uerl:nondet-ok fixture: callers pass single-entry maps, so visit order cannot matter
	}
	return s
}
