// Package hotpath checks the repo's zero-allocation serving contract:
// functions annotated //uerl:hotpath (ObserveEvent/ObserveBatch/
// Recommend, features.Observe/NormalizedInto, Replay.SampleInto,
// rl.Agent.trainBatch, the nn kernels) are held to steady-state-zero
// heap allocation by alloc-asserting tests and the BENCH_*.json guard;
// this analyzer rejects the constructs that would silently put
// allocations back:
//
//   - any fmt call (formatting always allocates);
//   - non-constant string concatenation;
//   - append (may grow capacity — hot paths index into preallocated
//     buffers);
//   - map/slice composite literals, make, and new;
//   - closures that capture variables (closure + captures can escape to
//     the heap);
//   - interface boxing at call sites: passing a non-pointer-shaped
//     concrete value where a parameter is an interface, including
//     variadic ...any.
//
// Struct and array literals are values and stay allowed, and constructs
// inside panic(...) arguments are exempt (a crashing program may
// allocate its message). A finding on an
// intentionally-cold branch (first-touch initialization, pooled-buffer
// growth, open-coded defers) is waived with //uerl:alloc-ok <reason>.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the hot-path allocation checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "flag allocating constructs inside //uerl:hotpath functions",
	Run:  run,
}

const waiver = "alloc-ok"

func run(pass *analysis.Pass) error {
	for fn := range pass.Markers.Hot {
		if fn.Body == nil {
			continue
		}
		check(pass, fn)
	}
	return nil
}

func check(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Allocation inside a panic argument is irrelevant: the
			// program is crashing. Guard clauses keep their Sprintf.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					return false
				}
			}
			checkCall(pass, fn, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && analysis.IsString(typeOf(info, n)) {
				if tv, ok := info.Types[n]; ok && tv.Value != nil {
					break // constant-folded at compile time
				}
				pass.ReportWaivable(n.Pos(), waiver,
					"string concatenation allocates on a hot path; write into a reused []byte")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && analysis.IsString(typeOf(info, n.Lhs[0])) {
				pass.ReportWaivable(n.Pos(), waiver,
					"string concatenation allocates on a hot path; write into a reused []byte")
			}
		case *ast.CompositeLit:
			t := typeOf(info, n)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.ReportWaivable(n.Pos(), waiver,
					"map literal allocates on a hot path; hoist it to initialization")
			case *types.Slice:
				pass.ReportWaivable(n.Pos(), waiver,
					"slice literal allocates on a hot path; use a preallocated buffer or an array")
			}
		case *ast.FuncLit:
			if name, ok := captured(info, fn, n); ok {
				pass.ReportWaivable(n.Pos(), waiver,
					"closure captures %q: the closure and its captures can escape to the heap; pass state explicitly or hoist the func", name)
			}
		}
		return true
	})
}

func typeOf(info *types.Info, e ast.Expr) types.Type { return info.TypeOf(e) }

func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo

	if pkg, name, ok := analysis.PkgFunc(info, call); ok && pkg == "fmt" {
		pass.ReportWaivable(call.Pos(), waiver,
			"fmt.%s allocates (formatting state and boxed operands) on a hot path", name)
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				pass.ReportWaivable(call.Pos(), waiver,
					"append may grow capacity on a hot path; index into a preallocated buffer")
			case "make":
				pass.ReportWaivable(call.Pos(), waiver,
					"make allocates on a hot path; hoist the buffer to initialization or a scratch struct")
			case "new":
				pass.ReportWaivable(call.Pos(), waiver,
					"new allocates on a hot path; reuse a scratch value")
			}
			return
		}
	}

	// Interface boxing at the call site: a concrete, non-pointer-shaped
	// argument passed where the parameter type is an interface.
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		// Conversions: T(x) with T an interface boxes x.
		if ok && types.IsInterface(tv.Type) && len(call.Args) == 1 {
			at := info.TypeOf(call.Args[0])
			if at != nil && !types.IsInterface(at) && !analysis.PointerShaped(at) && !isNil(info, call.Args[0]) {
				pass.ReportWaivable(call.Pos(), waiver,
					"conversion to interface boxes a %s on a hot path", at)
			}
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || analysis.PointerShaped(at) || isNil(info, arg) {
			continue
		}
		pass.ReportWaivable(arg.Pos(), waiver,
			"passing %s as %s boxes the value on a hot path; take a concrete type or a pointer", at, pt)
	}
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// captured reports a variable that lit captures from the enclosing
// function fn: a non-package-level object declared inside fn but outside
// lit.
func captured(info *types.Info, fn *ast.FuncDecl, lit *ast.FuncLit) (string, bool) {
	name, found := "", false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Pos() >= fn.Pos() && obj.Pos() < lit.Pos() {
			name, found = obj.Name(), true
		}
		return true
	})
	return name, found
}
