// Package hot is the hotpath analyzer's fixture: each allocating
// construct inside a //uerl:hotpath function, the //uerl:alloc-ok
// suppression, and the patterns that must stay clean (struct/array
// literals, panic guards, unmarked functions).
package hot

import "fmt"

func takeAny(v any)          {}
func takeVariadic(vs ...any) {}

//uerl:hotpath
func Format(x int) {
	fmt.Println(x) // want `fmt.Println allocates`
}

//uerl:hotpath
func Concat(a, b string) string {
	return a + b // want `string concatenation allocates on a hot path`
}

// ConstConcat is folded at compile time: clean.
//
//uerl:hotpath
func ConstConcat() string {
	return "a" + "b"
}

//uerl:hotpath
func AppendStr(s, t string) string {
	s += t // want `string concatenation allocates on a hot path`
	return s
}

//uerl:hotpath
func Grow(s []int, v int) []int {
	return append(s, v) // want `append may grow capacity`
}

//uerl:hotpath
func Make(n int) []int {
	return make([]int, n) // want `make allocates on a hot path`
}

//uerl:hotpath
func New() *int {
	return new(int) // want `new allocates on a hot path`
}

//uerl:hotpath
func MapLit(k string) map[string]int {
	return map[string]int{k: 1} // want `map literal allocates`
}

//uerl:hotpath
func SliceLit(v int) []int {
	return []int{v} // want `slice literal allocates`
}

// ArrayLit builds a value, not a heap object: clean.
//
//uerl:hotpath
func ArrayLit(v int) [2]int {
	return [2]int{v, v}
}

//uerl:hotpath
func Capture(n int) func() int {
	return func() int { return n } // want `closure captures "n"`
}

// NoCapture closures are static code pointers: clean.
//
//uerl:hotpath
func NoCapture() func() int {
	return func() int { return 1 }
}

//uerl:hotpath
func Box(x int) {
	takeAny(x) // want `passing int as \S+ boxes the value`
}

// NoBoxPointer: pointer-shaped values fit the interface word directly.
//
//uerl:hotpath
func NoBoxPointer(p *int) {
	takeAny(p)
}

//uerl:hotpath
func BoxVariadic(x float64) {
	takeVariadic(x) // want `passing float64 as \S+ boxes the value`
}

//uerl:hotpath
func Convert(x int) any {
	return any(x) // want `conversion to interface boxes a int`
}

// Guard may allocate its panic message: a crashing program is exempt.
//
//uerl:hotpath
func Guard(n int) {
	if n < 0 {
		panic(fmt.Sprintf("hot: negative %d", n))
	}
}

// Pooled shows the waiver: the finding is real but intentionally cold.
//
//uerl:hotpath
func Pooled(buf []int, v int) []int {
	return append(buf, v) //uerl:alloc-ok fixture: pooled buffer grows to the working shape once, then recycles
}

// Cold is unmarked, so the analyzer ignores its allocations.
func Cold() []int {
	return make([]int, 8)
}
