// Package analysistest runs uerlvet analyzers over fixture packages and
// checks their findings against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// alone.
//
// Fixture packages live under testdata/src/<name> inside each analyzer's
// package directory. They are real compilable packages inside this
// module (testdata directories are invisible to ./... patterns but load
// fine when named explicitly, and may import repro/... packages — so
// fixtures exercise the real contract types, e.g. policies.Decider).
//
// Expectations are trailing comments in the fixture source:
//
//	x := time.Now() // want `wall clock`
//	y := f()        // want `first finding` `second finding`
//
// Each backquoted or double-quoted string is a regular expression that
// must match the message of exactly one diagnostic reported on that
// line. Unmatched diagnostics and unsatisfied expectations both fail the
// test.
package analysistest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one want-regexp awaiting a diagnostic on a line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

var wantRE = regexp.MustCompile("//\\s*want\\s+(.+)$")
var quotedRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads each testdata package (a path like "testdata/src/det",
// relative to the calling test's directory), applies the analyzer, and
// verifies the findings against the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, dirs ...string) {
	t.Helper()
	RunAnalyzers(t, []*analysis.Analyzer{a}, dirs...)
}

// RunAnalyzers is Run for a set of analyzers applied together — used
// where one fixture exercises interacting checks (e.g. the directive
// validator alongside a contract analyzer).
func RunAnalyzers(t *testing.T, as []*analysis.Analyzer, dirs ...string) {
	t.Helper()
	for _, dir := range dirs {
		pattern := "./" + strings.TrimPrefix(dir, "./")
		pkgs, fset, err := analysis.Load("", pattern)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, e := range pkg.Errors {
				t.Errorf("%s: fixture does not compile: %s", pkg.PkgPath, e)
			}
		}
		diags, err := analysis.Run(fset, pkgs, as)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", dir, err)
		}

		var wants []*expectation
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				wants = append(wants, fileWants(t, fset, f)...)
			}
		}

		for _, d := range diags {
			pos := fset.Position(d.Pos)
			matched := false
			for _, w := range wants {
				if w.met || w.file != pos.Filename || w.line != pos.Line {
					continue
				}
				if w.re.MatchString(d.Message) {
					w.met = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Category, d.Message)
			}
		}
		for _, w := range wants {
			if !w.met {
				t.Errorf("%s:%d: no diagnostic matching %s", w.file, w.line, w.raw)
			}
		}
	}
}

func fileWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			quoted := quotedRE.FindAllString(m[1], -1)
			if len(quoted) == 0 {
				t.Errorf("%s: malformed want comment: %s", pos, c.Text)
				continue
			}
			for _, q := range quoted {
				var pat string
				if q[0] == '`' {
					pat = q[1 : len(q)-1]
				} else {
					var err error
					pat, err = strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want string %s: %v", pos, q, err)
						continue
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Errorf("%s: bad want regexp %s: %v", pos, q, err)
					continue
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: q})
			}
		}
	}
	return out
}
