package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The //uerl: directive namespace. Directives are machine-readable
// contract declarations, written like //go: directives (no space after
// the slashes) so gofmt leaves them alone and CommentGroup.Text omits
// them from rendered docs.
//
//	//uerl:deterministic              package doc: bit-exact package; the
//	                                  determinism and fpreduce analyzers apply
//	//uerl:hotpath                    func doc: zero-allocation hot path; the
//	                                  hotpath analyzer applies
//	//uerl:locked <mu>                func doc: caller holds <mu>; satisfies
//	                                  guarded-by checks inside the function
//	//uerl:serial-only <reason>       type doc: Decider deliberately not
//	                                  concurrency-safe (parallel replay falls
//	                                  back to serial)
//	//uerl:guarded-by <mu>            struct field: only touch under <mu>
//	//uerl:restrict-to <f1,f2,...>    struct field: only the named functions
//	                                  and methods may touch this field
//	//uerl:nondet-ok <reason>         line waiver for determinism/fpreduce
//	//uerl:alloc-ok <reason>          line waiver for hotpath
const directivePrefix = "//uerl:"

// waiverKinds are the directives that suppress a diagnostic on their own
// line or the line immediately below.
var waiverKinds = map[string]bool{"nondet-ok": true, "alloc-ok": true}

// declDirectives are the directives that must be attached to a
// declaration (package clause, func, type, or struct field).
var declDirectives = map[string]bool{
	"deterministic": true,
	"hotpath":       true,
	"locked":        true,
	"serial-only":   true,
	"guarded-by":    true,
	"restrict-to":   true,
}

// A Waiver is one //uerl:nondet-ok / //uerl:alloc-ok comment.
type Waiver struct {
	Kind   string
	Reason string
	File   string
	Line   int
	Pos    token.Pos
}

// Markers is the parsed //uerl: contract surface of one package.
type Markers struct {
	fset *token.FileSet

	// Deterministic is set when any file's package doc carries
	// //uerl:deterministic.
	Deterministic bool

	// Hot maps function declarations marked //uerl:hotpath.
	Hot map[*ast.FuncDecl]bool
	// Locked maps function declarations marked //uerl:locked <mu> to the
	// mutex field name the caller must hold.
	Locked map[*ast.FuncDecl]string
	// SerialOnly maps type objects marked //uerl:serial-only to the
	// documented reason.
	SerialOnly map[types.Object]string
	// Guarded maps struct field objects marked //uerl:guarded-by to the
	// guarding mutex field name.
	Guarded map[types.Object]string
	// Restricted maps struct field objects marked //uerl:restrict-to to
	// the list of function/method names allowed to touch them.
	Restricted map[types.Object][]string

	// Problems are malformed or misplaced directives; the "directive"
	// analyzer reports them.
	Problems []Diagnostic

	waivers map[string][]*Waiver // file name -> waivers
}

// Waived reports whether a waiver of the given kind covers pos: the
// waiver comment sits on the same line as pos or on the line directly
// above it (a full-line comment over a multi-line construct).
func (m *Markers) Waived(kind string, pos token.Pos) bool {
	p := m.fset.Position(pos)
	for _, w := range m.waivers[p.Filename] {
		if w.Kind == kind && (w.Line == p.Line || w.Line == p.Line-1) {
			return true
		}
	}
	return false
}

// HotFunc reports whether fn is marked //uerl:hotpath.
func (m *Markers) HotFunc(fn *ast.FuncDecl) bool { return m.Hot[fn] }

type directive struct {
	name string
	args string
	pos  token.Pos
}

func parseDirective(c *ast.Comment) (directive, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	name, args, _ := strings.Cut(rest, " ")
	return directive{name: name, args: strings.TrimSpace(args), pos: c.Pos()}, true
}

func groupDirectives(cg *ast.CommentGroup) []directive {
	if cg == nil {
		return nil
	}
	var out []directive
	for _, c := range cg.List {
		if d, ok := parseDirective(c); ok {
			out = append(out, d)
		}
	}
	return out
}

// ParseMarkers extracts the package's //uerl: directives and validates
// their placement and arguments.
func ParseMarkers(fset *token.FileSet, files []*ast.File, info *types.Info) *Markers {
	m := &Markers{
		fset:       fset,
		Hot:        map[*ast.FuncDecl]bool{},
		Locked:     map[*ast.FuncDecl]string{},
		SerialOnly: map[types.Object]string{},
		Guarded:    map[types.Object]string{},
		Restricted: map[types.Object][]string{},
		waivers:    map[string][]*Waiver{},
	}
	// Positions of directives claimed by a declaration; every //uerl:
	// comment not claimed and not a waiver is misplaced.
	claimed := map[token.Pos]bool{}

	claim := func(d directive) { claimed[d.pos] = true }
	problem := func(pos token.Pos, format string, args ...any) {
		m.Problems = append(m.Problems, Diagnostic{
			Pos: pos, Category: "directive", Message: fmt.Sprintf(format, args...),
		})
	}

	for _, f := range files {
		// Package-level: //uerl:deterministic in the package doc group.
		for _, d := range groupDirectives(f.Doc) {
			claim(d)
			switch d.name {
			case "deterministic":
				m.Deterministic = true
			default:
				problem(d.pos, "//uerl:%s is not a package-level directive", d.name)
			}
		}
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				for _, d := range groupDirectives(decl.Doc) {
					claim(d)
					switch d.name {
					case "hotpath":
						m.Hot[decl] = true
					case "locked":
						if d.args == "" {
							problem(d.pos, "//uerl:locked needs the held mutex field name")
							continue
						}
						m.Locked[decl] = d.args
					default:
						problem(d.pos, "//uerl:%s is not a function-level directive", d.name)
					}
				}
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					docs := groupDirectives(ts.Doc)
					if ts.Doc == nil && len(decl.Specs) == 1 {
						docs = groupDirectives(decl.Doc)
					}
					for _, d := range docs {
						claim(d)
						switch d.name {
						case "serial-only":
							if d.args == "" {
								problem(d.pos, "//uerl:serial-only needs a reason")
								continue
							}
							if obj := info.Defs[ts.Name]; obj != nil {
								m.SerialOnly[obj] = d.args
							}
						default:
							problem(d.pos, "//uerl:%s is not a type-level directive", d.name)
						}
					}
				}
			}
		}
		// Struct fields anywhere in the file (including nested types).
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				var ds []directive
				ds = append(ds, groupDirectives(field.Doc)...)
				ds = append(ds, groupDirectives(field.Comment)...)
				for _, d := range ds {
					claim(d)
					switch d.name {
					case "guarded-by":
						if d.args == "" {
							problem(d.pos, "//uerl:guarded-by needs the guarding mutex field name")
							continue
						}
						for _, name := range field.Names {
							if obj := info.Defs[name]; obj != nil {
								m.Guarded[obj] = d.args
							}
						}
					case "restrict-to":
						if d.args == "" {
							problem(d.pos, "//uerl:restrict-to needs a comma-separated function list")
							continue
						}
						var fns []string
						for _, s := range strings.Split(d.args, ",") {
							if s = strings.TrimSpace(s); s != "" {
								fns = append(fns, s)
							}
						}
						for _, name := range field.Names {
							if obj := info.Defs[name]; obj != nil {
								m.Restricted[obj] = fns
							}
						}
					default:
						problem(d.pos, "//uerl:%s is not a struct-field directive", d.name)
					}
				}
			}
			return true
		})
		// Waivers and misplaced directives from the full comment stream.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				if waiverKinds[d.name] {
					if d.args == "" {
						problem(d.pos, "//uerl:%s needs a reason: waivers document why the contract holds anyway", d.name)
						continue
					}
					p := fset.Position(d.pos)
					m.waivers[p.Filename] = append(m.waivers[p.Filename], &Waiver{
						Kind: d.name, Reason: d.args, File: p.Filename, Line: p.Line, Pos: d.pos,
					})
					continue
				}
				if claimed[d.pos] {
					continue
				}
				if declDirectives[d.name] {
					problem(d.pos, "//uerl:%s is not attached to a declaration (no blank line between directive and decl)", d.name)
				} else {
					problem(d.pos, "unknown directive //uerl:%s", d.name)
				}
			}
		}
	}
	return m
}

// DirectiveAnalyzer surfaces malformed //uerl: directives: unknown names,
// misplaced markers, and waivers without reasons. It keeps the contract
// language itself honest.
var DirectiveAnalyzer = &Analyzer{
	Name: "directive",
	Doc:  "check that //uerl: contract directives are well-formed, attached to declarations, and that waivers carry reasons",
	Run: func(pass *Pass) error {
		for _, p := range pass.Markers.Problems {
			pass.Reportf(p.Pos, "%s", p.Message)
		}
		return nil
	},
}
