package rl

// TrainResult summarizes a training run.
type TrainResult struct {
	Episodes     int
	Steps        int
	TotalReward  float64
	MeanEpReward float64
	// EpisodeRewards holds the undiscounted reward of each episode in
	// order, for convergence inspection.
	EpisodeRewards []float64
}

// TrainOptions controls Train.
type TrainOptions struct {
	// Episodes is the number of episodes to run.
	Episodes int
	// MaxStepsPerEpisode caps runaway episodes; 0 means unlimited.
	MaxStepsPerEpisode int
	// OnEpisode, if non-nil, is invoked after each episode with its index
	// and undiscounted reward.
	OnEpisode func(episode int, reward float64)
}

// Train runs the agent in env for the requested number of episodes,
// performing ε-greedy exploration and learning via the agent's replay
// buffer. Training is the paper's §3.3.3 loop: each episode replays one
// node's event history against a randomly sampled job sequence.
func Train(agent *Agent, env Environment, opts TrainOptions) TrainResult {
	res := TrainResult{}
	for ep := 0; ep < opts.Episodes; ep++ {
		state := env.Reset()
		epReward := 0.0
		for step := 0; ; step++ {
			if opts.MaxStepsPerEpisode > 0 && step >= opts.MaxStepsPerEpisode {
				break
			}
			action := agent.Act(state)
			next, reward, done := env.Step(action)
			agent.Observe(Transition{S: state, A: action, R: reward, NextS: next, Done: done})
			epReward += reward
			res.Steps++
			if done {
				break
			}
			state = next
		}
		res.Episodes++
		res.TotalReward += epReward
		res.EpisodeRewards = append(res.EpisodeRewards, epReward)
		if opts.OnEpisode != nil {
			opts.OnEpisode(ep, epReward)
		}
	}
	if res.Episodes > 0 {
		res.MeanEpReward = res.TotalReward / float64(res.Episodes)
	}
	return res
}
