package rl

import (
	"repro/internal/mathx"
	"repro/internal/parx"
)

// TrainResult summarizes a training run.
type TrainResult struct {
	Episodes     int
	Steps        int
	TotalReward  float64
	MeanEpReward float64
	// EpisodeRewards holds the undiscounted reward of each episode in
	// order, for convergence inspection.
	EpisodeRewards []float64
}

// TrainOptions controls Train.
type TrainOptions struct {
	// Episodes is the number of episodes to run.
	Episodes int
	// MaxStepsPerEpisode caps runaway episodes; 0 means unlimited.
	MaxStepsPerEpisode int
	// OnEpisode, if non-nil, is invoked after each episode with its index
	// and undiscounted reward.
	OnEpisode func(episode int, reward float64)
}

// Train runs the agent in env for the requested number of episodes,
// performing ε-greedy exploration and learning via the agent's replay
// buffer. Training is the paper's §3.3.3 loop: each episode replays one
// node's event history against a randomly sampled job sequence.
func Train(agent *Agent, env Environment, opts TrainOptions) TrainResult {
	res := TrainResult{}
	for ep := 0; ep < opts.Episodes; ep++ {
		state := env.Reset()
		epReward := 0.0
		for step := 0; ; step++ {
			if opts.MaxStepsPerEpisode > 0 && step >= opts.MaxStepsPerEpisode {
				break
			}
			action := agent.Act(state)
			next, reward, done := env.Step(action)
			agent.Observe(Transition{S: state, A: action, R: reward, NextS: next, Done: done})
			epReward += reward
			res.Steps++
			if done {
				break
			}
			state = next
		}
		res.Episodes++
		res.TotalReward += epReward
		res.EpisodeRewards = append(res.EpisodeRewards, epReward)
		if opts.OnEpisode != nil {
			opts.OnEpisode(ep, epReward)
		}
	}
	if res.Episodes > 0 {
		res.MeanEpReward = res.TotalReward / float64(res.Episodes)
	}
	return res
}

// DefaultEnvFanout is the environment count TrainVec callers use unless they
// have a reason to pick another: wide enough to amortize the batched greedy
// forward, narrow enough that the off-policy lag (experience gathered under
// weights up to one round old) stays negligible.
const DefaultEnvFanout = 4

// TrainVec trains the agent against several environments at once, one slot
// per environment. Each round every active slot picks an ε-greedy action
// (exploration from per-slot RNG streams pre-forked in slot order, greedy
// actions from one batched forward pass), the environments step — in
// parallel, since each env is slot-private — and the transitions are
// observed serially in slot order. Every agent-visible sequence (replay
// contents, training schedule, epsilon decay, RNG draws) therefore depends
// only on slot order, never on how the environment steps were scheduled:
// results are bit-identical for any worker count. Slots whose episode ends
// start the next unstarted episode, so exactly opts.Episodes episodes run,
// and EpisodeRewards is indexed by episode as in Train.
//
// The schedule interleaves slots, so trajectories differ from running Train
// on one environment — callers choose TrainVec as a mode, not a drop-in
// speedup. Environments must not share mutable state.
func TrainVec(agent *Agent, envs []Environment, opts TrainOptions) TrainResult {
	res := TrainResult{}
	e := len(envs)
	if e == 0 || opts.Episodes <= 0 {
		return res
	}
	if e > opts.Episodes {
		envs = envs[:opts.Episodes]
		e = opts.Episodes
	}
	// Fork slot exploration streams up front, in slot order, so the draws a
	// slot consumes are independent of how episodes interleave elsewhere.
	slotRNG := make([]*mathx.RNG, e)
	for s := range slotRNG {
		slotRNG[s] = agent.rng.Fork()
	}
	numA := agent.cfg.NumActions
	stateL := agent.cfg.StateLen
	bs := agent.online.NewBatchScratchKernel(e, agent.cfg.Kernel)
	xs := make([]float64, e*stateL)

	state := make([][]float64, e)
	stepCount := make([]int, e)
	epReward := make([]float64, e)
	episodeIdx := make([]int, e)
	active := make([]bool, e)
	actions := make([]int, e)
	nextS := make([][]float64, e)
	rewards := make([]float64, e)
	dones := make([]bool, e)
	activeSlots := make([]int, 0, e)
	greedySlots := make([]int, 0, e)

	res.EpisodeRewards = make([]float64, opts.Episodes)
	started := 0
	for s := 0; s < e; s++ {
		state[s] = envs[s].Reset()
		episodeIdx[s] = started
		started++
		active[s] = true
	}
	// finish closes slot s's episode and either starts the next unstarted
	// episode on the same environment or retires the slot.
	finish := func(s int) {
		res.Episodes++
		res.TotalReward += epReward[s]
		res.EpisodeRewards[episodeIdx[s]] = epReward[s]
		if opts.OnEpisode != nil {
			opts.OnEpisode(episodeIdx[s], epReward[s])
		}
		if started < opts.Episodes {
			state[s] = envs[s].Reset()
			episodeIdx[s] = started
			started++
			stepCount[s] = 0
			epReward[s] = 0
		} else {
			active[s] = false
		}
	}
	for {
		// Episodes that hit the step cap end without a terminal Observe,
		// matching Train's break-before-act.
		if opts.MaxStepsPerEpisode > 0 {
			for s := 0; s < e; s++ {
				if active[s] && stepCount[s] >= opts.MaxStepsPerEpisode {
					finish(s)
				}
			}
		}
		activeSlots = activeSlots[:0]
		for s := 0; s < e; s++ {
			if active[s] {
				activeSlots = append(activeSlots, s)
			}
		}
		if len(activeSlots) == 0 {
			break
		}
		// Action selection in slot order. Epsilon advances by the slot's
		// rank this round, mirroring the step-by-step decay a serial
		// interleaving of the same transitions would see.
		greedySlots = greedySlots[:0]
		for r, s := range activeSlots {
			eps := agent.cfg.Epsilon.At(agent.steps + r)
			if slotRNG[s].Float64() < eps {
				actions[s] = slotRNG[s].Intn(numA)
			} else {
				greedySlots = append(greedySlots, s)
			}
		}
		if len(greedySlots) > 0 {
			for i, s := range greedySlots {
				copy(xs[i*stateL:(i+1)*stateL], state[s])
			}
			q := agent.online.ForwardBatchInto(bs, xs[:len(greedySlots)*stateL], len(greedySlots))
			for i, s := range greedySlots {
				actions[s] = mathx.ArgMax(q[i*numA : (i+1)*numA])
			}
		}
		// Environment stepping is the only parallel section; each env is
		// slot-private and the results land in slot-indexed arrays.
		parx.For(len(activeSlots), agent.cfg.TrainWorkers, func(i int) {
			s := activeSlots[i]
			nextS[s], rewards[s], dones[s] = envs[s].Step(actions[s])
		})
		// Observe serially in slot order: replay contents, train steps and
		// target syncs follow a schedule independent of worker count.
		for _, s := range activeSlots {
			agent.Observe(Transition{S: state[s], A: actions[s], R: rewards[s], NextS: nextS[s], Done: dones[s]})
			epReward[s] += rewards[s]
			res.Steps++
			stepCount[s]++
			if dones[s] {
				finish(s)
			} else {
				state[s] = nextS[s]
			}
		}
	}
	if res.Episodes > 0 {
		res.MeanEpReward = res.TotalReward / float64(res.Episodes)
	}
	return res
}
