package rl

import (
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/mathx"
	"repro/internal/nn"
)

// fastConfig is batchParityConfig under the nn.KernelFast stream.
func fastConfig() AgentConfig {
	cfg := batchParityConfig()
	cfg.Kernel = nn.KernelFast
	return cfg
}

// marshalWeights serializes the agent's online network for byte comparison.
func marshalWeights(t *testing.T, a *Agent) []byte {
	t.Helper()
	b, err := json.Marshal(a.Online())
	if err != nil {
		t.Fatalf("marshal online net: %v", err)
	}
	return b
}

// workerCounts is the TrainWorkers sweep the determinism contract covers.
func workerCounts() []int {
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

// TestChunkedTrainingBitIdenticalAcrossWorkers is the tentpole contract:
// under nn.KernelFast, the trained weights must be byte-identical for every
// TrainWorkers setting, because the minibatch chunk geometry is fixed and
// the chunk gradients reduce in chunk-index order. Run with -race this also
// proves the parallel chunk section is data-race-free.
func TestChunkedTrainingBitIdenticalAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range workerCounts() {
		cfg := fastConfig()
		cfg.TrainWorkers = workers
		agent := NewAgent(cfg, NewPrioritizedReplay(PERConfig{
			Capacity: 1 << 10, Alpha: 0.6, Beta: 0.4, BetaSteps: 1000, FastPow: true,
		}))
		env := &walkEnv{rng: mathx.NewRNG(9)}
		Train(agent, env, TrainOptions{Episodes: 40, MaxStepsPerEpisode: 64})
		got := marshalWeights(t, agent)
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("TrainWorkers=%d produced different weights than TrainWorkers=1", workers)
		}
	}
}

// TestTrainVecBitIdenticalAcrossWorkers: the vectorized trainer's parallel
// environment stepping must not leak scheduling into results — weights,
// episode rewards and step counts are identical for every worker count.
func TestTrainVecBitIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]byte, TrainResult, *Agent) {
		cfg := fastConfig()
		cfg.TrainWorkers = workers
		agent := NewAgent(cfg, NewPrioritizedReplay(PERConfig{
			Capacity: 1 << 10, Alpha: 0.6, Beta: 0.4, BetaSteps: 1000, FastPow: true,
		}))
		envs := make([]Environment, DefaultEnvFanout)
		for i := range envs {
			envs[i] = &walkEnv{rng: mathx.NewRNG(100 + int64(i))}
		}
		res := TrainVec(agent, envs, TrainOptions{Episodes: 40, MaxStepsPerEpisode: 64})
		return marshalWeights(t, agent), res, agent
	}
	wantW, wantRes, _ := run(1)
	if wantRes.Episodes != 40 {
		t.Fatalf("TrainVec ran %d episodes, want 40", wantRes.Episodes)
	}
	if len(wantRes.EpisodeRewards) != 40 {
		t.Fatalf("EpisodeRewards has %d entries, want 40", len(wantRes.EpisodeRewards))
	}
	for _, workers := range workerCounts()[1:] {
		gotW, gotRes, _ := run(workers)
		if string(gotW) != string(wantW) {
			t.Fatalf("TrainVec workers=%d produced different weights than workers=1", workers)
		}
		if gotRes.Steps != wantRes.Steps || gotRes.TotalReward != wantRes.TotalReward {
			t.Fatalf("TrainVec workers=%d result diverged: steps %d vs %d, reward %v vs %v",
				workers, gotRes.Steps, wantRes.Steps, gotRes.TotalReward, wantRes.TotalReward)
		}
		for i := range gotRes.EpisodeRewards {
			if gotRes.EpisodeRewards[i] != wantRes.EpisodeRewards[i] {
				t.Fatalf("TrainVec workers=%d episode %d reward diverged", workers, i)
			}
		}
	}
}

// TestChunkedTrainLearns: sanity that the v2 stream still solves the walk
// MDP (the determinism tests alone would pass for a broken learner).
func TestChunkedTrainLearns(t *testing.T) {
	cfg := fastConfig()
	agent := NewAgent(cfg, NewPrioritizedReplay(PERConfig{Capacity: 1 << 10, FastPow: true}))
	env := &walkEnv{rng: mathx.NewRNG(5)}
	Train(agent, env, TrainOptions{Episodes: 150, MaxStepsPerEpisode: 64})
	// A trained agent should walk right from the start state.
	state := []float64{0, 0, 1, 0, 0}
	if got := agent.Greedy(state); got != 1 {
		t.Fatalf("greedy action from start = %d, want 1 (right)", got)
	}
}

// TestChunkedTrainStepZeroAlloc: the chunked train step must stay
// allocation-free in steady state when it runs inline (TrainWorkers=1);
// with more workers only parx's goroutine machinery allocates.
func TestChunkedTrainStepZeroAlloc(t *testing.T) {
	cfg := fastConfig()
	cfg.TrainWorkers = 1
	agent := NewAgent(cfg, NewPrioritizedReplay(PERConfig{Capacity: 1 << 10, FastPow: true}))
	env := &walkEnv{rng: mathx.NewRNG(3)}
	Train(agent, env, TrainOptions{Episodes: 30, MaxStepsPerEpisode: 64})

	allocs := testing.AllocsPerRun(50, func() {
		agent.trainBatch()
	})
	if allocs != 0 {
		t.Fatalf("chunked train step allocates %v times per run, want 0", allocs)
	}
}
