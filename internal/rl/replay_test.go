package rl

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func tr(r float64) Transition {
	return Transition{S: []float64{r}, A: 0, R: r, NextS: []float64{r}, Done: true}
}

func TestUniformReplayRing(t *testing.T) {
	u := NewUniformReplay(3)
	if u.Len() != 0 {
		t.Fatal("new buffer should be empty")
	}
	for i := 0; i < 5; i++ {
		u.Add(tr(float64(i)))
	}
	if u.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (capacity)", u.Len())
	}
	// Oldest entries (0, 1) evicted; survivors are 2, 3, 4.
	rng := mathx.NewRNG(1)
	seen := map[float64]bool{}
	for i := 0; i < 200; i++ {
		trs, _, ws := u.Sample(rng, 1)
		seen[trs[0].R] = true
		if ws[0] != 1 {
			t.Fatal("uniform weights must be 1")
		}
	}
	for _, old := range []float64{0, 1} {
		if seen[old] {
			t.Fatalf("evicted transition %v sampled", old)
		}
	}
	for _, cur := range []float64{2, 3, 4} {
		if !seen[cur] {
			t.Fatalf("live transition %v never sampled", cur)
		}
	}
}

func TestUniformReplayEmptySample(t *testing.T) {
	u := NewUniformReplay(3)
	trs, _, _ := u.Sample(mathx.NewRNG(1), 4)
	if trs != nil {
		t.Fatal("empty buffer should return nil")
	}
}

func TestUniformReplayPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUniformReplay(0)
}

func TestPERNewTransitionsGetMaxPriority(t *testing.T) {
	p := NewPrioritizedReplay(PERConfig{Capacity: 8, Alpha: 1, Beta: 1})
	p.Add(tr(1))
	// Mark the first transition as very important.
	p.UpdatePriorities([]int{0}, []float64{99})
	p.Add(tr(2))
	// The new transition must carry the running max priority so it is not
	// starved relative to the updated one.
	if p.tree.get(1) < p.tree.get(0) {
		t.Fatalf("new transition priority %v below max %v", p.tree.get(1), p.tree.get(0))
	}
}

func TestPERPrioritySkewsSampling(t *testing.T) {
	p := NewPrioritizedReplay(PERConfig{Capacity: 4, Alpha: 1, Beta: 0.4, Eps: 1e-6})
	for i := 0; i < 4; i++ {
		p.Add(tr(float64(i)))
	}
	// Give transition 3 a much higher TD error.
	p.UpdatePriorities([]int{0, 1, 2, 3}, []float64{0.01, 0.01, 0.01, 10})
	rng := mathx.NewRNG(2)
	counts := map[float64]int{}
	for i := 0; i < 2000; i++ {
		trs, _, _ := p.Sample(rng, 2)
		for _, x := range trs {
			counts[x.R]++
		}
	}
	if counts[3] < counts[0]*5 {
		t.Fatalf("high-priority transition undersampled: %v", counts)
	}
}

func TestPERImportanceWeightsNormalized(t *testing.T) {
	p := NewPrioritizedReplay(PERConfig{Capacity: 8, Alpha: 0.6, Beta: 0.4})
	for i := 0; i < 8; i++ {
		p.Add(tr(float64(i)))
	}
	p.UpdatePriorities([]int{0, 1, 2, 3, 4, 5, 6, 7},
		[]float64{1, 2, 3, 4, 5, 6, 7, 8})
	rng := mathx.NewRNG(3)
	for i := 0; i < 50; i++ {
		_, _, ws := p.Sample(rng, 4)
		maxW := 0.0
		for _, w := range ws {
			if w <= 0 || w > 1+1e-9 {
				t.Fatalf("weight %v outside (0,1]", w)
			}
			if w > maxW {
				maxW = w
			}
		}
		if math.Abs(maxW-1) > 1e-9 {
			t.Fatalf("max weight %v, want 1", maxW)
		}
	}
}

func TestPERBetaAnneals(t *testing.T) {
	p := NewPrioritizedReplay(PERConfig{Capacity: 4, Alpha: 1, Beta: 0.4, BetaSteps: 10})
	for i := 0; i < 4; i++ {
		p.Add(tr(float64(i)))
	}
	if got := p.beta(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("initial beta %v", got)
	}
	rng := mathx.NewRNG(4)
	for i := 0; i < 20; i++ {
		p.Sample(rng, 2)
	}
	if got := p.beta(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("annealed beta %v, want 1", got)
	}
}

func TestPERHandlesOutOfRangeUpdate(t *testing.T) {
	p := NewPrioritizedReplay(PERConfig{Capacity: 4})
	p.Add(tr(1))
	// Must not panic.
	p.UpdatePriorities([]int{-1, 100}, []float64{1, 1})
}

func TestPERSampleEmpty(t *testing.T) {
	p := NewPrioritizedReplay(PERConfig{Capacity: 4})
	trs, _, _ := p.Sample(mathx.NewRNG(1), 2)
	if trs != nil {
		t.Fatal("empty PER should return nil")
	}
}

func TestPERWrapAroundOverwrites(t *testing.T) {
	p := NewPrioritizedReplay(PERConfig{Capacity: 2})
	p.Add(tr(1))
	p.Add(tr(2))
	p.Add(tr(3)) // overwrites slot 0
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	rng := mathx.NewRNG(5)
	for i := 0; i < 100; i++ {
		trs, _, _ := p.Sample(rng, 1)
		if trs[0].R == 1 {
			t.Fatal("overwritten transition sampled")
		}
	}
}

// TestAddCopiesStateVectors: stored transitions must own their state memory
// so environments can reuse ping-pong state buffers across steps.
func TestAddCopiesStateVectors(t *testing.T) {
	s := []float64{1, 2, 3}
	next := []float64{4, 5, 6}
	for name, r := range map[string]Replay{
		"uniform": NewUniformReplay(4),
		"per":     NewPrioritizedReplay(PERConfig{Capacity: 4}),
	} {
		r.Add(Transition{S: s, NextS: next, A: 1, R: 1})
		s[0], next[0] = 99, 99
		trs, _, _ := r.Sample(mathx.NewRNG(1), 1)
		if trs[0].S[0] != 1 || trs[0].NextS[0] != 4 {
			t.Fatalf("%s: stored transition aliases caller buffers: S[0]=%v NextS[0]=%v",
				name, trs[0].S[0], trs[0].NextS[0])
		}
		s[0], next[0] = 1, 4
	}
}

// TestAddZeroAllocSteadyState: after the first Add sizes the backing store,
// adding transitions must not allocate — the env step loop calls Add once
// per step (~130 B/step of garbage before state interning existed).
func TestAddZeroAllocSteadyState(t *testing.T) {
	s := []float64{1, 2, 3}
	next := []float64{4, 5, 6}
	for name, r := range map[string]Replay{
		"uniform": NewUniformReplay(64),
		"per":     NewPrioritizedReplay(PERConfig{Capacity: 64}),
	} {
		r.Add(Transition{S: s, NextS: next})
		allocs := testing.AllocsPerRun(100, func() {
			r.Add(Transition{S: s, NextS: next, A: 1, R: 0.5})
		})
		if allocs != 0 {
			t.Fatalf("%s: Add allocates %v times per call, want 0", name, allocs)
		}
	}
}
