package rl

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

// TestSumTreeTotalInvariant: after any sequence of sets, the root equals
// the sum of the leaves.
func TestSumTreeTotalInvariant(t *testing.T) {
	f := func(updates []float64) bool {
		st := newSumTree(16)
		want := make([]float64, 16)
		for i, p := range updates {
			leaf := i % 16
			v := math.Abs(p)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			// Keep magnitudes bounded so float error stays tiny.
			v = math.Mod(v, 1000)
			st.set(leaf, v)
			want[leaf] = v
		}
		sum := 0.0
		for _, v := range want {
			sum += v
		}
		return math.Abs(st.total()-sum) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSumTreeFindInRange: find always returns a leaf whose priority is
// positive (never an empty leaf) for any mass within the total.
func TestSumTreeFindInRange(t *testing.T) {
	st := newSumTree(8)
	st.set(1, 2)
	st.set(5, 3)
	rng := mathx.NewRNG(1)
	for i := 0; i < 2000; i++ {
		leaf := st.find(rng.Float64() * st.total())
		if leaf != 1 && leaf != 5 {
			t.Fatalf("find returned empty leaf %d", leaf)
		}
	}
}

// TestPERWeightsBounded: importance weights are always in (0, 1] whatever
// the priority pattern.
func TestPERWeightsBounded(t *testing.T) {
	f := func(prios []float64) bool {
		p := NewPrioritizedReplay(PERConfig{Capacity: 8, Alpha: 0.7, Beta: 0.5})
		for i := 0; i < 8; i++ {
			p.Add(Transition{S: []float64{0}, NextS: []float64{0}, Done: true})
		}
		handles := make([]int, 0, len(prios))
		vals := make([]float64, 0, len(prios))
		for i, pr := range prios {
			if math.IsNaN(pr) || math.IsInf(pr, 0) {
				pr = 0
			}
			handles = append(handles, i%8)
			vals = append(vals, pr)
		}
		p.UpdatePriorities(handles, vals)
		rng := mathx.NewRNG(7)
		_, _, ws := p.Sample(rng, 4)
		for _, w := range ws {
			if !(w > 0 && w <= 1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestEpsilonScheduleBounded: epsilon stays within [min(start,end),
// max(start,end)] at every step.
func TestEpsilonScheduleBounded(t *testing.T) {
	f := func(step int) bool {
		if step < 0 {
			step = -step
		}
		e := EpsilonSchedule{Start: 1, End: 0.05, DecaySteps: 1000}
		v := e.At(step % 100000)
		return v >= 0.05-1e-12 && v <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
