// Package rl implements the reinforcement-learning machinery of the paper:
// MDP interfaces, experience replay (uniform and prioritized, Schaul et al.
// 2015), ε-greedy exploration schedules, and a dueling double deep
// Q-network agent (Mnih et al. 2013; van Hasselt et al. 2016; Wang et al.
// 2016) built on the nn package.
//
//uerl:deterministic
package rl

import (
	"fmt"

	"repro/internal/mathx"
)

// Transition is one step of experience: acting in state S with action A
// yielded reward R and next state NextS; Done marks terminal transitions
// (no bootstrapping from NextS).
type Transition struct {
	S     []float64
	A     int
	R     float64
	NextS []float64
	Done  bool
}

// Replay abstracts an experience buffer so the agent can run with either
// uniform sampling or prioritized sampling (the paper's configuration, and
// the ablation in BenchmarkAblationPER).
type Replay interface {
	// Add stores a transition.
	Add(tr Transition)
	// Len reports how many transitions are stored.
	Len() int
	// Sample draws n transitions. It returns the transitions, their buffer
	// handles (for UpdatePriorities), and importance-sampling weights
	// normalized to max 1.
	Sample(rng *mathx.RNG, n int) ([]Transition, []int, []float64)
	// SampleInto is the allocation-free form of Sample: it fills the
	// caller-owned slices (all len(trs) long) and returns the number of
	// transitions written (0 when the buffer is empty). It consumes the
	// same RNG stream as Sample.
	SampleInto(rng *mathx.RNG, trs []Transition, handles []int, ws []float64) int
	// UpdatePriorities sets new priorities (typically |TD error|) for the
	// sampled handles. Uniform buffers ignore it.
	UpdatePriorities(handles []int, priorities []float64)
}

// stateStore interns transition state vectors into flat, slot-owned backing
// arrays so stored transitions never alias caller buffers. Environments are
// then free to reuse ping-pong state buffers across steps (the vectorized
// trainer's envs do), and Add allocates nothing in steady state. The state
// dimension is learned from the first Add; vectors of any other length are
// stored by reference as before.
type stateStore struct {
	s, next []float64
	dim     int
}

func (st *stateStore) intern(slot int, tr *Transition, capacity int) {
	if st.dim == 0 {
		if len(tr.S) == 0 {
			return
		}
		st.dim = len(tr.S)
		st.s = make([]float64, capacity*st.dim)
		st.next = make([]float64, capacity*st.dim)
	}
	d := st.dim
	if len(tr.S) == d {
		dst := st.s[slot*d : (slot+1)*d]
		copy(dst, tr.S)
		tr.S = dst
	}
	if len(tr.NextS) == d {
		dst := st.next[slot*d : (slot+1)*d]
		copy(dst, tr.NextS)
		tr.NextS = dst
	}
}

// UniformReplay is a fixed-capacity ring buffer with uniform sampling.
// Stored transitions own their state memory (see stateStore), so callers
// may reuse the slices they pass to Add.
type UniformReplay struct {
	buf   []Transition
	store stateStore
	next  int
	full  bool
}

// NewUniformReplay creates a buffer holding at most capacity transitions.
func NewUniformReplay(capacity int) *UniformReplay {
	if capacity <= 0 {
		panic(fmt.Sprintf("rl: replay capacity must be positive, got %d", capacity))
	}
	return &UniformReplay{buf: make([]Transition, capacity)}
}

// Add implements Replay. The transition's state vectors are copied into
// buffer-owned memory, so the caller keeps ownership of its slices.
//
//uerl:hotpath
func (u *UniformReplay) Add(tr Transition) {
	u.store.intern(u.next, &tr, len(u.buf))
	u.buf[u.next] = tr
	u.next++
	if u.next == len(u.buf) {
		u.next = 0
		u.full = true
	}
}

// Len implements Replay.
func (u *UniformReplay) Len() int {
	if u.full {
		return len(u.buf)
	}
	return u.next
}

// Sample implements Replay. All importance weights are 1.
func (u *UniformReplay) Sample(rng *mathx.RNG, n int) ([]Transition, []int, []float64) {
	trs := make([]Transition, n)
	handles := make([]int, n)
	ws := make([]float64, n)
	if u.SampleInto(rng, trs, handles, ws) == 0 {
		return nil, nil, nil
	}
	return trs, handles, ws
}

// SampleInto implements Replay without allocating.
//
//uerl:hotpath
func (u *UniformReplay) SampleInto(rng *mathx.RNG, trs []Transition, handles []int, ws []float64) int {
	size := u.Len()
	if size == 0 {
		return 0
	}
	for i := range trs {
		idx := rng.Intn(size)
		trs[i] = u.buf[idx]
		handles[i] = idx
		ws[i] = 1
	}
	return len(trs)
}

// UpdatePriorities implements Replay (no-op for uniform sampling).
func (u *UniformReplay) UpdatePriorities([]int, []float64) {}
