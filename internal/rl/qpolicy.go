package rl

import (
	"sync"

	"repro/internal/mathx"
	"repro/internal/nn"
)

// SharedQPolicy is a concurrency-safe greedy policy over a frozen network.
// Unlike Agent.GreedyPolicy / SnapshotPolicy, whose closures own a single
// scratch buffer and are therefore single-goroutine, SharedQPolicy pools
// scratch space per call, so one instance can serve many goroutines (the
// sharded controller's Recommend path).
//
// Concurrency contract:
//
//   - QValues / QValuesInto / Action may be called from any number of
//     goroutines simultaneously, without external locking; each call
//     draws its own scratch from an internal pool.
//   - The wrapped network is strictly read-only for the policy's
//     lifetime. The constructor's caller must hand over a network nobody
//     trains afterwards (Clone a training agent's online network first);
//     Net is exposed for serialization and must be treated as read-only.
//   - Continual-learning hot swaps therefore never mutate a served
//     SharedQPolicy: a retrained candidate is a new frozen network
//     wrapped in a new policy, and the swap replaces the whole policy
//     pointer atomically at the serving layer.
type SharedQPolicy struct {
	net  *nn.Network
	pool sync.Pool
}

// NewSharedQPolicy wraps a frozen network. The caller must not train the
// network afterwards; Clone it first if the source keeps learning.
func NewSharedQPolicy(net *nn.Network) *SharedQPolicy {
	p := &SharedQPolicy{net: net}
	p.pool.New = func() any { return net.NewScratch() }
	return p
}

// Net exposes the wrapped network (for serialization and inspection).
func (p *SharedQPolicy) Net() *nn.Network { return p.net }

// QValues appends the Q-values for state to out and returns the extended
// slice. Safe for concurrent use.
func (p *SharedQPolicy) QValues(out, state []float64) []float64 {
	scr := p.pool.Get().(*nn.Scratch)
	out = append(out, p.net.ForwardInto(scr, state)...)
	p.pool.Put(scr)
	return out
}

// QValuesInto writes the Q-values for state into dst (len >= the network's
// output count) without allocating. Safe for concurrent use.
//
//uerl:hotpath
func (p *SharedQPolicy) QValuesInto(dst, state []float64) {
	scr := p.pool.Get().(*nn.Scratch)
	copy(dst, p.net.ForwardInto(scr, state))
	p.pool.Put(scr)
}

// ConcurrentSafe marks the policy as safe for concurrent Decide/Action
// calls; the parallel replay engine keys off it.
func (p *SharedQPolicy) ConcurrentSafe() bool { return true }

// Action implements Policy: argmax_a Q(state, a). Safe for concurrent use.
func (p *SharedQPolicy) Action(state []float64) int {
	scr := p.pool.Get().(*nn.Scratch)
	a := mathx.ArgMax(p.net.ForwardInto(scr, state))
	p.pool.Put(scr)
	return a
}
