package rl

import (
	"testing"

	"repro/internal/mathx"
)

// walkEnv is a deterministic 5-state random-walk MDP used to exercise the
// batched training path: action 1 moves right (+reward at the end), action
// 0 moves left. Multi-step episodes produce plenty of non-terminal
// transitions, so the double-DQN bootstrap path is exercised too.
type walkEnv struct {
	pos int
	rng *mathx.RNG
}

func (w *walkEnv) Reset() []float64 {
	w.pos = 2
	return w.state()
}

func (w *walkEnv) state() []float64 {
	s := make([]float64, 5)
	s[w.pos] = 1
	return s
}

func (w *walkEnv) Step(action int) ([]float64, float64, bool) {
	if action == 1 {
		w.pos++
	} else {
		w.pos--
	}
	// Occasional random slip keeps the state distribution rich.
	if w.rng.Bool(0.1) && w.pos > 0 {
		w.pos--
	}
	switch {
	case w.pos <= 0:
		return w.state(), -0.1, true
	case w.pos >= 4:
		return w.state(), 1, true
	default:
		return w.state(), -0.01, false
	}
}

func (w *walkEnv) NumActions() int { return 2 }
func (w *walkEnv) StateLen() int   { return 5 }

// trainConfig builds a config that exercises dueling + double DQN + PER.
func batchParityConfig() AgentConfig {
	return AgentConfig{
		StateLen:     5,
		NumActions:   2,
		Hidden:       []int{16, 8},
		Dueling:      true,
		DoubleDQN:    true,
		Gamma:        0.95,
		LearningRate: 1e-2,
		BatchSize:    8,
		TrainEvery:   2,
		SyncEvery:    25,
		WarmupSteps:  8,
		GradClip:     5,
		Epsilon:      EpsilonSchedule{Start: 1, End: 0.1, DecaySteps: 100},
		Seed:         42,
	}
}

// TestBatchedTrainingMatchesSerial: with identical seeds and environments,
// the batched train step must leave the agent's weights bit-identical to
// the legacy one-transition-at-a-time loop after every training step.
func TestBatchedTrainingMatchesSerial(t *testing.T) {
	for _, double := range []bool{true, false} {
		cfg := batchParityConfig()
		cfg.DoubleDQN = double

		mkReplay := func() Replay {
			return NewPrioritizedReplay(PERConfig{Capacity: 1 << 10, Alpha: 0.6, Beta: 0.4, BetaSteps: 1000})
		}
		batched := NewAgent(cfg, mkReplay())
		serial := NewAgent(cfg, mkReplay())
		serial.serialTrain = true

		envB := &walkEnv{rng: mathx.NewRNG(9)}
		envS := &walkEnv{rng: mathx.NewRNG(9)}
		Train(batched, envB, TrainOptions{Episodes: 60, MaxStepsPerEpisode: 64})
		Train(serial, envS, TrainOptions{Episodes: 60, MaxStepsPerEpisode: 64})

		if batched.Steps() != serial.Steps() {
			t.Fatalf("double=%v: diverged step counts %d vs %d (action streams differ)",
				double, batched.Steps(), serial.Steps())
		}
		bp, sp := batched.Online().Params(), serial.Online().Params()
		for pi := range bp {
			for wi := range bp[pi].W {
				if bp[pi].W[wi] != sp[pi].W[wi] {
					t.Fatalf("double=%v: param %d weight %d diverged: batched %v vs serial %v",
						double, pi, wi, bp[pi].W[wi], sp[pi].W[wi])
				}
			}
		}
	}
}

// TestTrainStepZeroAlloc: a steady-state batched train step must not
// allocate (PER sampling, batched forwards, backward and Adam included).
func TestTrainStepZeroAlloc(t *testing.T) {
	cfg := batchParityConfig()
	agent := NewAgent(cfg, NewPrioritizedReplay(PERConfig{Capacity: 1 << 10}))
	env := &walkEnv{rng: mathx.NewRNG(3)}
	Train(agent, env, TrainOptions{Episodes: 30, MaxStepsPerEpisode: 64})

	allocs := testing.AllocsPerRun(50, func() {
		agent.trainBatch()
	})
	if allocs != 0 {
		t.Fatalf("batched train step allocates %v times per run, want 0", allocs)
	}
}
