package rl

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestSumTreeBasics(t *testing.T) {
	st := newSumTree(5) // rounds up to 8 leaves
	if st.capacity != 8 {
		t.Fatalf("capacity = %d, want 8", st.capacity)
	}
	st.set(0, 1)
	st.set(1, 2)
	st.set(4, 3)
	if got := st.total(); math.Abs(got-6) > 1e-12 {
		t.Fatalf("total = %v, want 6", got)
	}
	if st.get(1) != 2 {
		t.Fatalf("get(1) = %v", st.get(1))
	}
	// Update propagates.
	st.set(1, 5)
	if got := st.total(); math.Abs(got-9) > 1e-12 {
		t.Fatalf("total after update = %v, want 9", got)
	}
	// Negative priorities clamp to zero.
	st.set(0, -3)
	if st.get(0) != 0 {
		t.Fatalf("negative priority not clamped: %v", st.get(0))
	}
}

func TestSumTreeFind(t *testing.T) {
	st := newSumTree(4)
	st.set(0, 1)
	st.set(1, 0)
	st.set(2, 2)
	st.set(3, 1)
	cases := []struct {
		mass float64
		want int
	}{
		{0, 0}, {0.99, 0}, {1.0, 2}, {2.9, 2}, {3.0, 3}, {3.99, 3},
	}
	for _, c := range cases {
		if got := st.find(c.mass); got != c.want {
			t.Errorf("find(%v) = %d, want %d", c.mass, got, c.want)
		}
	}
}

func TestSumTreeProportionalSampling(t *testing.T) {
	st := newSumTree(3)
	st.set(0, 1)
	st.set(1, 3)
	st.set(2, 6)
	rng := mathx.NewRNG(1)
	counts := make([]int, 3)
	n := 60000
	for i := 0; i < n; i++ {
		counts[st.find(rng.Float64()*st.total())]++
	}
	for i, want := range []float64{0.1, 0.3, 0.6} {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("leaf %d sampled %v, want ~%v", i, got, want)
		}
	}
}
