package rl

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestEpsilonSchedule(t *testing.T) {
	e := EpsilonSchedule{Start: 1, End: 0.1, DecaySteps: 100}
	if e.At(0) != 1 {
		t.Fatalf("At(0) = %v", e.At(0))
	}
	if got := e.At(50); math.Abs(got-0.55) > 1e-12 {
		t.Fatalf("At(50) = %v", got)
	}
	if e.At(100) != 0.1 || e.At(9999) != 0.1 {
		t.Fatal("schedule should clamp at End")
	}
	fixed := EpsilonSchedule{Start: 0.5, End: 0.2, DecaySteps: 0}
	if fixed.At(0) != 0.2 {
		t.Fatal("DecaySteps=0 should pin at End")
	}
}

func TestAgentConfigValidate(t *testing.T) {
	base := AgentConfig{StateLen: 4, NumActions: 2, Gamma: 0.9,
		LearningRate: 0.001, BatchSize: 8}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []AgentConfig{
		{StateLen: 0, NumActions: 2, Gamma: 0.9, LearningRate: 0.1, BatchSize: 1},
		{StateLen: 4, NumActions: 1, Gamma: 0.9, LearningRate: 0.1, BatchSize: 1},
		{StateLen: 4, NumActions: 2, Gamma: 1.5, LearningRate: 0.1, BatchSize: 1},
		{StateLen: 4, NumActions: 2, Gamma: 0.9, LearningRate: 0, BatchSize: 1},
		{StateLen: 4, NumActions: 2, Gamma: 0.9, LearningRate: 0.1, BatchSize: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// banditEnv is a two-armed contextual bandit: the context is a single
// feature x in {-1, +1}; action 1 pays +1 when x > 0 and -1 otherwise;
// action 0 always pays 0. Episodes are one step.
type banditEnv struct {
	rng *mathx.RNG
	x   float64
}

func (b *banditEnv) Reset() []float64 {
	if b.rng.Bool(0.5) {
		b.x = 1
	} else {
		b.x = -1
	}
	return []float64{b.x}
}

func (b *banditEnv) Step(action int) ([]float64, float64, bool) {
	r := 0.0
	if action == 1 {
		r = b.x
	}
	return []float64{b.x}, r, true
}

func (b *banditEnv) NumActions() int { return 2 }
func (b *banditEnv) StateLen() int   { return 1 }

func TestAgentLearnsContextualBandit(t *testing.T) {
	env := &banditEnv{rng: mathx.NewRNG(1)}
	cfg := AgentConfig{
		StateLen: 1, NumActions: 2,
		Hidden: []int{16}, Dueling: true, DoubleDQN: true,
		Gamma: 0, LearningRate: 0.01, BatchSize: 16,
		TrainEvery: 1, SyncEvery: 50,
		Epsilon: EpsilonSchedule{Start: 1, End: 0.05, DecaySteps: 500},
		Seed:    7,
	}
	agent := NewAgent(cfg, NewPrioritizedReplay(PERConfig{Capacity: 1024}))
	res := Train(agent, env, TrainOptions{Episodes: 1500})
	if res.Episodes != 1500 {
		t.Fatalf("episodes = %d", res.Episodes)
	}
	pol := agent.GreedyPolicy()
	if pol.Action([]float64{1}) != 1 {
		t.Error("should pull arm 1 in +1 context")
	}
	if pol.Action([]float64{-1}) != 0 {
		t.Error("should pull arm 0 in -1 context")
	}
}

// chainEnv is a deterministic 4-state chain: the agent starts at state 0;
// action 1 moves right, action 0 terminates with reward 0.1 (a tempting
// immediate exit). Reaching state 3 terminates with reward +1. Optimal play
// walks the chain, requiring multi-step credit assignment through gamma.
type chainEnv struct {
	pos int
}

func (c *chainEnv) state() []float64 {
	s := make([]float64, 4)
	s[c.pos] = 1
	return s
}

func (c *chainEnv) Reset() []float64 {
	c.pos = 0
	return c.state()
}

func (c *chainEnv) Step(action int) ([]float64, float64, bool) {
	if action == 0 {
		return c.state(), 0.1, true
	}
	c.pos++
	if c.pos >= 3 {
		return c.state(), 1, true
	}
	return c.state(), 0, false
}

func (c *chainEnv) NumActions() int { return 2 }
func (c *chainEnv) StateLen() int   { return 4 }

func TestAgentLearnsChainMDP(t *testing.T) {
	env := &chainEnv{}
	cfg := AgentConfig{
		StateLen: 4, NumActions: 2,
		Hidden: []int{24}, Dueling: true, DoubleDQN: true,
		Gamma: 0.95, LearningRate: 0.01, BatchSize: 16,
		TrainEvery: 1, SyncEvery: 100,
		Epsilon: EpsilonSchedule{Start: 1, End: 0.02, DecaySteps: 2000},
		Seed:    11,
	}
	agent := NewAgent(cfg, NewPrioritizedReplay(PERConfig{Capacity: 2048}))
	Train(agent, env, TrainOptions{Episodes: 1200, MaxStepsPerEpisode: 10})
	pol := agent.SnapshotPolicy()
	// Optimal: keep walking right from every chain position.
	for pos := 0; pos < 3; pos++ {
		s := make([]float64, 4)
		s[pos] = 1
		if pol.Action(s) != 1 {
			t.Errorf("position %d: expected walk-right", pos)
		}
	}
}

func TestAgentDeterministicAcrossRuns(t *testing.T) {
	mk := func() *Agent {
		return NewAgent(AgentConfig{
			StateLen: 1, NumActions: 2, Hidden: []int{8},
			Gamma: 0.9, LearningRate: 0.01, BatchSize: 4,
			Epsilon: EpsilonSchedule{Start: 0.5, End: 0.5},
			Seed:    3,
		}, NewUniformReplay(64))
	}
	a, b := mk(), mk()
	envA := &banditEnv{rng: mathx.NewRNG(5)}
	envB := &banditEnv{rng: mathx.NewRNG(5)}
	Train(a, envA, TrainOptions{Episodes: 100})
	Train(b, envB, TrainOptions{Episodes: 100})
	qa := a.QValues([]float64{1})
	qb := b.QValues([]float64{1})
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("non-deterministic training: %v vs %v", qa, qb)
		}
	}
}

func TestAgentSetOnline(t *testing.T) {
	cfg := AgentConfig{StateLen: 2, NumActions: 2, Hidden: []int{4},
		Gamma: 0.9, LearningRate: 0.01, BatchSize: 4, Seed: 1}
	a := NewAgent(cfg, NewUniformReplay(16))
	b := NewAgent(cfg, NewUniformReplay(16))
	b.Online().Params()[0].W[0] = 42
	a.SetOnline(b.Online().Clone())
	if a.Online().Params()[0].W[0] != 42 {
		t.Fatal("SetOnline did not install weights")
	}
}

func TestGreedyVsSnapshotPolicy(t *testing.T) {
	cfg := AgentConfig{StateLen: 1, NumActions: 2, Hidden: []int{4},
		Gamma: 0, LearningRate: 0.05, BatchSize: 4,
		Epsilon: EpsilonSchedule{Start: 1, End: 1}, Seed: 2}
	agent := NewAgent(cfg, NewUniformReplay(64))
	frozen := agent.SnapshotPolicy()
	before := frozen.Action([]float64{1})
	// Heavy training may flip the live policy; the snapshot must not move.
	env := &banditEnv{rng: mathx.NewRNG(9)}
	Train(agent, env, TrainOptions{Episodes: 500})
	if frozen.Action([]float64{1}) != before {
		t.Fatal("snapshot policy changed after training")
	}
}

func TestObserveTrainsAfterWarmup(t *testing.T) {
	cfg := AgentConfig{StateLen: 1, NumActions: 2, Gamma: 0.9,
		LearningRate: 0.01, BatchSize: 4, WarmupSteps: 8, Seed: 1}
	agent := NewAgent(cfg, NewUniformReplay(32))
	trained := 0
	for i := 0; i < 20; i++ {
		_, didTrain := agent.Observe(Transition{
			S: []float64{1}, A: 0, R: 1, NextS: []float64{1}, Done: true})
		if didTrain {
			trained++
		}
		if i < 7 && didTrain {
			t.Fatalf("trained during warmup at step %d", i)
		}
	}
	if trained == 0 {
		t.Fatal("never trained after warmup")
	}
}

func TestUniformVsPERConvergenceOnImbalanced(t *testing.T) {
	// A crude ablation: with heavily imbalanced rewards (rare informative
	// transitions), PER should reach a good policy at least as reliably as
	// uniform replay. We assert PER solves the task.
	if testing.Short() {
		t.Skip("short mode")
	}
	mkEnv := func(seed int64) Environment {
		return &rareEventEnv{rng: mathx.NewRNG(seed)}
	}
	cfg := AgentConfig{
		StateLen: 2, NumActions: 2, Hidden: []int{16}, Dueling: true,
		DoubleDQN: true, Gamma: 0, LearningRate: 0.005, BatchSize: 16,
		Epsilon: EpsilonSchedule{Start: 1, End: 0.05, DecaySteps: 1500},
		Seed:    21,
	}
	per := NewAgent(cfg, NewPrioritizedReplay(PERConfig{Capacity: 4096, Alpha: 0.7}))
	Train(per, mkEnv(31), TrainOptions{Episodes: 3000})
	pol := per.SnapshotPolicy()
	if pol.Action([]float64{1, 1}) != 1 {
		t.Error("PER agent failed to mitigate in the danger state")
	}
	if pol.Action([]float64{0, 0}) != 0 {
		t.Error("PER agent mitigates in the safe state")
	}
}

// rareEventEnv mimics the paper's imbalance: the danger context (1,1)
// appears ~2% of the time. In danger, action 1 (mitigate) pays -0.1,
// action 0 pays -10; in safe contexts mitigation wastes -0.1 vs 0.
type rareEventEnv struct {
	rng    *mathx.RNG
	danger bool
}

func (e *rareEventEnv) Reset() []float64 {
	e.danger = e.rng.Bool(0.02)
	if e.danger {
		return []float64{1, 1}
	}
	return []float64{0, 0}
}

func (e *rareEventEnv) Step(action int) ([]float64, float64, bool) {
	var r float64
	switch {
	case e.danger && action == 1:
		r = -0.1
	case e.danger && action == 0:
		r = -10
	case action == 1:
		r = -0.1
	default:
		r = 0
	}
	s := []float64{0, 0}
	if e.danger {
		s = []float64{1, 1}
	}
	return s, r, true
}

func (e *rareEventEnv) NumActions() int { return 2 }
func (e *rareEventEnv) StateLen() int   { return 2 }
