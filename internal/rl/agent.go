package rl

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/parx"
)

// Environment is the MDP the agent interacts with (§3.2). An environment is
// episodic: Reset starts a new episode and returns the initial state; Step
// applies an action and returns the successor state, the reward, and
// whether the episode has terminated.
type Environment interface {
	Reset() []float64
	Step(action int) (next []float64, reward float64, done bool)
	// NumActions reports the size of the discrete action set.
	NumActions() int
	// StateLen reports the state vector dimension.
	StateLen() int
}

// Policy maps a state to an action. Both the trained agent and the paper's
// baseline approaches satisfy it.
type Policy interface {
	Action(state []float64) int
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(state []float64) int

// Action implements Policy.
func (f PolicyFunc) Action(state []float64) int { return f(state) }

// EpsilonSchedule is a linearly decaying exploration schedule: the
// exploration rate starts at Start and decays to End over DecaySteps agent
// steps.
type EpsilonSchedule struct {
	Start      float64
	End        float64
	DecaySteps int
}

// At returns epsilon after the given number of steps.
func (e EpsilonSchedule) At(step int) float64 {
	if e.DecaySteps <= 0 || step >= e.DecaySteps {
		return e.End
	}
	frac := float64(step) / float64(e.DecaySteps)
	return e.Start + (e.End-e.Start)*frac
}

// AgentConfig collects the hyperparameters tuned during the paper's random
// search (§4.1): learning rate, discount factor gamma, the two networks'
// update and synchronization frequencies, and the PER batch size.
type AgentConfig struct {
	// StateLen and NumActions describe the MDP interface.
	StateLen   int
	NumActions int
	// Hidden is the MLP body; the paper uses {256, 256, 128, 64}.
	Hidden []int
	// Dueling enables the dueling value/advantage head (on in the paper).
	Dueling bool
	// DoubleDQN selects actions with the online network and evaluates them
	// with the target network (on in the paper).
	DoubleDQN bool
	// Gamma is the MDP discount factor.
	Gamma float64
	// LearningRate for the Adam optimizer.
	LearningRate float64
	// BatchSize is the replay mini-batch size.
	BatchSize int
	// TrainEvery trains once per this many environment steps.
	TrainEvery int
	// SyncEvery hard-syncs the target network once per this many
	// environment steps.
	SyncEvery int
	// WarmupSteps delays training until the buffer has this many
	// transitions.
	WarmupSteps int
	// Epsilon is the exploration schedule.
	Epsilon EpsilonSchedule
	// HuberDelta is the TD-error Huber transition point; 0 means 1.
	HuberDelta float64
	// GradClip caps the global gradient norm; 0 disables.
	GradClip float64
	// Seed drives weight init and exploration.
	Seed int64
	// Kernel selects the arithmetic stream version (nn.KernelReference or
	// nn.KernelFast). Zero means nn.KernelReference, preserving the exact
	// training trajectories of existing seeds. nn.KernelFast enables the
	// FMA kernels, reciprocal Adam, the PCG exploration RNG, and chunked
	// data-parallel training with in-order gradient reduction — a different
	// (but equally deterministic) rounding stream, bit-identical for every
	// TrainWorkers setting and GOMAXPROCS.
	Kernel int
	// TrainWorkers bounds the workers that compute minibatch chunk
	// gradients under nn.KernelFast; 0 means GOMAXPROCS. It never affects
	// results, only wall time.
	TrainWorkers int
}

// Validate reports configuration errors.
func (c AgentConfig) Validate() error {
	if c.StateLen <= 0 {
		return fmt.Errorf("rl: StateLen must be positive, got %d", c.StateLen)
	}
	if c.NumActions < 2 {
		return fmt.Errorf("rl: NumActions must be at least 2, got %d", c.NumActions)
	}
	if c.Gamma < 0 || c.Gamma > 1 {
		return fmt.Errorf("rl: Gamma must be in [0,1], got %v", c.Gamma)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("rl: BatchSize must be positive, got %d", c.BatchSize)
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("rl: LearningRate must be positive, got %v", c.LearningRate)
	}
	if c.Kernel != 0 && !nn.ValidKernel(c.Kernel) {
		return fmt.Errorf("rl: unknown kernel version %d", c.Kernel)
	}
	return nil
}

// withDefaults fills optional fields.
func (c AgentConfig) withDefaults() AgentConfig {
	if c.TrainEvery <= 0 {
		c.TrainEvery = 1
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = 500
	}
	if c.HuberDelta <= 0 {
		c.HuberDelta = 1
	}
	if c.WarmupSteps < c.BatchSize {
		c.WarmupSteps = c.BatchSize
	}
	if c.Kernel == 0 {
		c.Kernel = nn.KernelReference
	}
	return c
}

// Agent is a dueling double deep Q-network agent with (optionally
// prioritized) experience replay — the paper's learner (§3.3).
type Agent struct {
	cfg     AgentConfig
	online  *nn.Network
	target  *nn.Network
	opt     *nn.Adam
	replay  Replay
	rng     *mathx.RNG
	steps   int
	scr     *nn.Scratch // online-net scratch
	scrTgt  *nn.Scratch // target-net scratch
	scrNext *nn.Scratch // second online scratch for double-DQN selection
	dOut    []float64

	// Batched-training state: a whole PER minibatch runs through the
	// networks as one GEMM-style pass, with all intermediate buffers
	// preallocated so a train step allocates nothing. The online scratch
	// holds two batches: current states and next states are concatenated
	// as [S; NextS] and run through the online network in one launch
	// (same weights), leaving the S activations in rows [0, B) for the
	// backward pass.
	bs          *nn.BatchScratch // online scratch, sized 2*B
	bsTgt       *nn.BatchScratch // target scratch, sized B
	xs          []float64        // gathered [S; NextS] states [2*B*StateLen]
	dOutB       []float64        // batched output gradient [B*NumActions]
	nextVal     []float64        // bootstrap values [B]
	tdErrs      []float64
	sampTrs     []Transition
	sampHandles []int
	sampWs      []float64

	// Chunked data-parallel training state (nn.KernelFast only): the
	// minibatch splits into fixed trainChunkSize chunks; each chunk computes
	// gradients into its own weight-sharing shadow network, and the shadows
	// reduce into the online network in chunk-index order. Chunk geometry
	// depends only on BatchSize — never on TrainWorkers or GOMAXPROCS — so
	// trained weights are bit-identical for every worker count.
	shadows     []*nn.Network
	chunkScr    []*nn.BatchScratch
	chunkTgtScr []*nn.BatchScratch
	chunkXS     [][]float64
	chunkDOut   [][]float64
	chunkNext   [][]float64
	chunkLoss   []float64
	chunkN      int       // samples in the minibatch being chunked
	chunkFn     func(int) // preallocated parx.For body (keeps train steps alloc-free)

	// serialTrain forces the legacy one-transition-at-a-time training loop;
	// it exists only so tests can verify the batched path reproduces the
	// serial gradients exactly.
	serialTrain bool
}

// trainChunkSize is the fixed minibatch chunk width of the nn.KernelFast
// data-parallel trainer. It is a constant of the stream definition: changing
// it changes the gradient-reduction association and therefore the trained
// weights, so it must only move together with a kernel version bump.
const trainChunkSize = 8

// NewAgent builds an agent with the given replay buffer (pass
// NewPrioritizedReplay for the paper's configuration, NewUniformReplay for
// the ablation).
func NewAgent(cfg AgentConfig, replay Replay) *Agent {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	net := nn.New(nn.Config{
		Inputs:  cfg.StateLen,
		Hidden:  cfg.Hidden,
		Outputs: cfg.NumActions,
		Dueling: cfg.Dueling,
		Seed:    cfg.Seed,
	})
	rng := mathx.NewRNG(cfg.Seed + 1)
	if cfg.Kernel == nn.KernelFast {
		// The PCG source forks in O(copy); its stream (like the rest of the
		// v2 arithmetic) differs from the reference but is just as
		// deterministic.
		rng = mathx.NewFastRNG(cfg.Seed + 1)
	}
	a := &Agent{
		cfg:    cfg,
		online: net,
		target: net.Clone(),
		opt:    &nn.Adam{LR: cfg.LearningRate, Recip: cfg.Kernel == nn.KernelFast},
		replay: replay,
		rng:    rng,
	}
	a.scr = a.online.NewScratch()
	a.scrNext = a.online.NewScratch()
	a.scrTgt = a.target.NewScratch()
	a.dOut = make([]float64, cfg.NumActions)
	a.initBatchState()
	return a
}

// initBatchState (re)allocates the batched-training buffers for the current
// networks.
func (a *Agent) initBatchState() {
	b := a.cfg.BatchSize
	a.bs = a.online.NewBatchScratch(2 * b)
	a.bsTgt = a.target.NewBatchScratch(b)
	a.xs = make([]float64, 2*b*a.cfg.StateLen)
	a.dOutB = make([]float64, b*a.cfg.NumActions)
	a.nextVal = make([]float64, b)
	a.tdErrs = make([]float64, b)
	a.sampTrs = make([]Transition, b)
	a.sampHandles = make([]int, b)
	a.sampWs = make([]float64, b)
	if a.cfg.Kernel == nn.KernelFast {
		nchunks := (b + trainChunkSize - 1) / trainChunkSize
		a.shadows = make([]*nn.Network, nchunks)
		a.chunkScr = make([]*nn.BatchScratch, nchunks)
		a.chunkTgtScr = make([]*nn.BatchScratch, nchunks)
		a.chunkXS = make([][]float64, nchunks)
		a.chunkDOut = make([][]float64, nchunks)
		a.chunkNext = make([][]float64, nchunks)
		a.chunkLoss = make([]float64, nchunks)
		for c := range a.shadows {
			sh := a.online.GradShadow()
			a.shadows[c] = sh
			a.chunkScr[c] = sh.NewBatchScratchKernel(2*trainChunkSize, nn.KernelFast)
			a.chunkTgtScr[c] = a.target.NewBatchScratchKernel(trainChunkSize, nn.KernelFast)
			a.chunkXS[c] = make([]float64, 2*trainChunkSize*a.cfg.StateLen)
			a.chunkDOut[c] = make([]float64, trainChunkSize*a.cfg.NumActions)
			a.chunkNext[c] = make([]float64, trainChunkSize)
		}
		a.chunkFn = func(c int) { a.trainChunk(c, a.chunkN) }
	}
}

// Config returns the agent's configuration (with defaults applied).
func (a *Agent) Config() AgentConfig { return a.cfg }

// Online exposes the online network (for serialization and inspection).
func (a *Agent) Online() *nn.Network { return a.online }

// SetOnline replaces the online network and re-syncs the target. The
// network's architecture must match the agent configuration. Used to warm-
// start an agent from a previously trained model (§4.1: each split trains a
// mix of previously trained and untrained models).
func (a *Agent) SetOnline(net *nn.Network) {
	c := net.Config()
	if c.Inputs != a.cfg.StateLen || c.Outputs != a.cfg.NumActions {
		panic("rl: SetOnline architecture mismatch")
	}
	a.online = net
	a.target = net.Clone()
	a.opt = &nn.Adam{LR: a.cfg.LearningRate, Recip: a.cfg.Kernel == nn.KernelFast}
	a.scr = a.online.NewScratch()
	a.scrNext = a.online.NewScratch()
	a.scrTgt = a.target.NewScratch()
	a.initBatchState()
}

// Steps reports the number of environment steps observed.
func (a *Agent) Steps() int { return a.steps }

// Epsilon returns the current exploration rate.
func (a *Agent) Epsilon() float64 { return a.cfg.Epsilon.At(a.steps) }

// Act selects an ε-greedy action for state.
func (a *Agent) Act(state []float64) int {
	if a.rng.Float64() < a.Epsilon() {
		return a.rng.Intn(a.cfg.NumActions)
	}
	return a.Greedy(state)
}

// Greedy returns argmax_a Q(state, a) under the online network.
func (a *Agent) Greedy(state []float64) int {
	q := a.online.ForwardInto(a.scr, state)
	return mathx.ArgMax(q)
}

// QValues returns a copy of the online network's Q-values for state.
func (a *Agent) QValues(state []float64) []float64 {
	q := a.online.ForwardInto(a.scr, state)
	out := make([]float64, len(q))
	copy(out, q)
	return out
}

// Observe records a transition and performs training/synchronization
// according to the configured frequencies. It returns the training loss if a
// training step ran, else NaN-free zero and false.
func (a *Agent) Observe(tr Transition) (loss float64, trained bool) {
	a.replay.Add(tr)
	a.steps++
	if a.steps%a.cfg.SyncEvery == 0 {
		a.target.CopyFrom(a.online)
	}
	if a.replay.Len() < a.cfg.WarmupSteps || a.steps%a.cfg.TrainEvery != 0 {
		return 0, false
	}
	return a.trainBatch(), true
}

// AddExperience stores a transition in the replay buffer without advancing
// the ε-greedy/TrainEvery schedule. It is the ingestion half of the
// externally driven training mode used by online continual learning: a
// lifecycle trainer drains logged serving experience into the buffer with
// AddExperience and then drives optimization explicitly with TrainStep,
// instead of interleaving both through Observe.
func (a *Agent) AddExperience(tr Transition) { a.replay.Add(tr) }

// TrainStep runs one batched optimization step against the current replay
// contents (the same batched kernels Observe uses) and returns the mean
// loss. It reports false without training when the buffer holds fewer
// transitions than a batch. Unlike Observe it never syncs the target
// network; callers sequencing explicit epochs use SyncTarget.
func (a *Agent) TrainStep() (loss float64, trained bool) {
	if a.replay.Len() < a.cfg.BatchSize {
		return 0, false
	}
	return a.trainBatch(), true
}

// SyncTarget hard-syncs the target network to the online network, the
// explicit-epoch counterpart of Observe's SyncEvery schedule.
func (a *Agent) SyncTarget() { a.target.CopyFrom(a.online) }

// trainBatch samples a mini-batch and takes one optimization step,
// returning the mean loss. TD targets follow double DQN when configured:
// y = r + gamma * Q_target(s', argmax_a Q_online(s', a)).
//
// The whole batch runs through the networks as three batched forward
// passes (online/target on next states, online on current states), a
// vectorized TD-target computation, and one batched backward + Adam step.
// The batched kernels accumulate in the same order as the serial loop, so
// gradients — and therefore training trajectories — are bit-identical to
// the one-transition-at-a-time implementation (see trainBatchSerial).
//
//uerl:hotpath
func (a *Agent) trainBatch() float64 {
	if a.serialTrain {
		return a.trainBatchSerial()
	}
	if a.cfg.Kernel == nn.KernelFast {
		return a.trainBatchChunked()
	}
	n := a.replay.SampleInto(a.rng, a.sampTrs, a.sampHandles, a.sampWs)
	if n == 0 {
		return 0
	}
	L := a.cfg.StateLen
	A := a.cfg.NumActions
	trs := a.sampTrs[:n]
	anyLive := false
	for i := range trs {
		copy(a.xs[i*L:(i+1)*L], trs[i].S)
		if !trs[i].Done {
			copy(a.xs[(n+i)*L:(n+i+1)*L], trs[i].NextS)
			anyLive = true
		}
	}
	a.online.ZeroGrad()
	// One online launch covers both halves of [S; NextS] — per-sample
	// outputs are independent, so each half is bit-identical to a separate
	// forward, and the S activations land in scratch rows [0, n) where the
	// backward pass reads them. Bootstrap values come from the target net
	// on the NextS half; terminal rows hold stale buffer contents and
	// their outputs are computed but never read.
	var q []float64
	switch {
	case anyLive && a.cfg.DoubleDQN:
		qTgt := a.target.ForwardBatchInto(a.bsTgt, a.xs[n*L:2*n*L], n)
		qBoth := a.online.ForwardBatchInto(a.bs, a.xs[:2*n*L], 2*n)
		q = qBoth[:n*A]
		qNext := qBoth[n*A : 2*n*A]
		for i := range trs {
			if trs[i].Done {
				continue
			}
			best := mathx.ArgMax(qNext[i*A : (i+1)*A])
			a.nextVal[i] = qTgt[i*A+best]
		}
	case anyLive:
		// Vanilla DQN bootstraps from the target net alone, so only the S
		// half goes through the online network.
		qTgt := a.target.ForwardBatchInto(a.bsTgt, a.xs[n*L:2*n*L], n)
		q = a.online.ForwardBatchInto(a.bs, a.xs[:n*L], n)
		for i := range trs {
			if trs[i].Done {
				continue
			}
			row := qTgt[i*A : (i+1)*A]
			a.nextVal[i] = row[mathx.ArgMax(row)]
		}
	default:
		q = a.online.ForwardBatchInto(a.bs, a.xs[:n*L], n)
	}
	dOut := a.dOutB[:n*A]
	for i := range dOut {
		dOut[i] = 0
	}
	totalLoss := 0.0
	for i := range trs {
		target := trs[i].R
		if !trs[i].Done {
			target += a.cfg.Gamma * a.nextVal[i]
		}
		pred := q[i*A+trs[i].A]
		loss, dPred := nn.HuberLoss(pred, target, a.cfg.HuberDelta)
		a.tdErrs[i] = pred - target
		w := a.sampWs[i] / float64(n)
		totalLoss += loss * a.sampWs[i]
		dOut[i*A+trs[i].A] = dPred * w
	}
	a.online.BackwardBatch(a.bs, dOut, n)
	nn.ClipGradNorm(a.online.Params(), a.cfg.GradClip)
	a.opt.Step(a.online.Params())
	a.replay.UpdatePriorities(a.sampHandles[:n], a.tdErrs[:n])
	return totalLoss / float64(n)
}

// trainBatchSerial is the reference one-transition-at-a-time training loop
// the batched path is verified against. It consumes the same RNG stream and
// produces the same gradients as trainBatch.
func (a *Agent) trainBatchSerial() float64 {
	n := a.replay.SampleInto(a.rng, a.sampTrs, a.sampHandles, a.sampWs)
	if n == 0 {
		return 0
	}
	trs, ws := a.sampTrs[:n], a.sampWs[:n]
	a.online.ZeroGrad()
	totalLoss := 0.0
	for i := range trs {
		tr := trs[i]
		target := tr.R
		if !tr.Done {
			var next float64
			if a.cfg.DoubleDQN {
				qNext := a.online.ForwardInto(a.scrNext, tr.NextS)
				best := mathx.ArgMax(qNext)
				qTgt := a.target.ForwardInto(a.scrTgt, tr.NextS)
				next = qTgt[best]
			} else {
				qTgt := a.target.ForwardInto(a.scrTgt, tr.NextS)
				next = qTgt[mathx.ArgMax(qTgt)]
			}
			target += a.cfg.Gamma * next
		}
		q := a.online.ForwardInto(a.scr, tr.S)
		pred := q[tr.A]
		loss, dPred := nn.HuberLoss(pred, target, a.cfg.HuberDelta)
		a.tdErrs[i] = pred - target
		w := ws[i] / float64(n)
		totalLoss += loss * ws[i]
		for j := range a.dOut {
			a.dOut[j] = 0
		}
		a.dOut[tr.A] = dPred * w
		a.online.Backward(a.scr, a.dOut)
	}
	nn.ClipGradNorm(a.online.Params(), a.cfg.GradClip)
	a.opt.Step(a.online.Params())
	a.replay.UpdatePriorities(a.sampHandles[:n], a.tdErrs[:n])
	return totalLoss / float64(n)
}

// trainBatchChunked is the nn.KernelFast training step: the sampled
// minibatch splits into fixed trainChunkSize chunks, each chunk's gradients
// are computed into its weight-sharing shadow network (by up to TrainWorkers
// workers), and the shadows reduce into the online network in chunk-index
// order. The in-order reduction fixes the floating-point association, so
// trained weights are bit-identical for every worker count and GOMAXPROCS.
// The chunked association differs from the sequential reference's, which is
// one of the rounding changes the nn.KernelFast version pin covers.
//
//uerl:hotpath
func (a *Agent) trainBatchChunked() float64 {
	n := a.replay.SampleInto(a.rng, a.sampTrs, a.sampHandles, a.sampWs)
	if n == 0 {
		return 0
	}
	// Prewarm both packed-weight images serially; the parallel section below
	// only reads them.
	a.online.EnsureFast()
	a.target.EnsureFast()
	nchunks := (n + trainChunkSize - 1) / trainChunkSize
	a.chunkN = n
	parx.For(nchunks, a.cfg.TrainWorkers, a.chunkFn)
	a.online.ZeroGrad()
	for c := 0; c < nchunks; c++ {
		nn.AccumulateGrads(a.online.Params(), a.shadows[c].Params())
	}
	nn.ClipGradNorm(a.online.Params(), a.cfg.GradClip)
	a.opt.Step(a.online.Params())
	a.online.InvalidateFast()
	a.replay.UpdatePriorities(a.sampHandles[:n], a.tdErrs[:n])
	totalLoss := 0.0
	for c := 0; c < nchunks; c++ {
		totalLoss += a.chunkLoss[c]
	}
	return totalLoss / float64(n)
}

// trainChunk computes the TD gradients of chunk c of an n-sample minibatch
// into the chunk's shadow network. Every write is chunk-private (shadow
// gradients, chunk scratches, tdErrs[lo:hi], chunkLoss[c]); the online and
// target packed weights are read-only here.
func (a *Agent) trainChunk(c, n int) {
	lo := c * trainChunkSize
	hi := lo + trainChunkSize
	if hi > n {
		hi = n
	}
	m := hi - lo
	L, A := a.cfg.StateLen, a.cfg.NumActions
	shadow := a.shadows[c]
	xs := a.chunkXS[c]
	trs := a.sampTrs[lo:hi]
	anyLive := false
	for i := range trs {
		copy(xs[i*L:(i+1)*L], trs[i].S)
		if !trs[i].Done {
			copy(xs[(m+i)*L:(m+i+1)*L], trs[i].NextS)
			anyLive = true
		}
	}
	shadow.ZeroGrad()
	nextVal := a.chunkNext[c]
	var q []float64
	switch {
	case anyLive && a.cfg.DoubleDQN:
		qTgt := a.target.ForwardBatchInto(a.chunkTgtScr[c], xs[m*L:2*m*L], m)
		qBoth := shadow.ForwardBatchInto(a.chunkScr[c], xs[:2*m*L], 2*m)
		q = qBoth[:m*A]
		qNext := qBoth[m*A : 2*m*A]
		for i := range trs {
			if trs[i].Done {
				continue
			}
			best := mathx.ArgMax(qNext[i*A : (i+1)*A])
			nextVal[i] = qTgt[i*A+best]
		}
	case anyLive:
		qTgt := a.target.ForwardBatchInto(a.chunkTgtScr[c], xs[m*L:2*m*L], m)
		q = shadow.ForwardBatchInto(a.chunkScr[c], xs[:m*L], m)
		for i := range trs {
			if trs[i].Done {
				continue
			}
			row := qTgt[i*A : (i+1)*A]
			nextVal[i] = row[mathx.ArgMax(row)]
		}
	default:
		q = shadow.ForwardBatchInto(a.chunkScr[c], xs[:m*L], m)
	}
	dOut := a.chunkDOut[c][:m*A]
	for i := range dOut {
		dOut[i] = 0
	}
	chunkLoss := 0.0
	for i := range trs {
		target := trs[i].R
		if !trs[i].Done {
			target += a.cfg.Gamma * nextVal[i]
		}
		pred := q[i*A+trs[i].A]
		loss, dPred := nn.HuberLoss(pred, target, a.cfg.HuberDelta)
		a.tdErrs[lo+i] = pred - target
		w := a.sampWs[lo+i] / float64(n)
		chunkLoss += loss * a.sampWs[lo+i]
		dOut[i*A+trs[i].A] = dPred * w
	}
	shadow.BackwardBatch(a.chunkScr[c], dOut, m)
	a.chunkLoss[c] = chunkLoss
}

// GreedyPolicy returns the deterministic policy induced by the current
// online network. The returned policy shares the network but uses its own
// scratch, so it is safe to use after further training only if the caller
// accepts updated weights; Snapshot the network first for a frozen policy.
func (a *Agent) GreedyPolicy() Policy {
	net := a.online
	scr := net.NewScratch()
	return PolicyFunc(func(state []float64) int {
		return mathx.ArgMax(net.ForwardInto(scr, state))
	})
}

// SnapshotPolicy returns a frozen greedy policy over a deep copy of the
// current online network. The returned policy is a *SharedQPolicy, so it is
// safe for concurrent use (the parallel replay engine calls Decide from
// many workers at once).
func (a *Agent) SnapshotPolicy() Policy {
	return NewSharedQPolicy(a.online.Clone())
}
