package rl

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/nn"
)

// Environment is the MDP the agent interacts with (§3.2). An environment is
// episodic: Reset starts a new episode and returns the initial state; Step
// applies an action and returns the successor state, the reward, and
// whether the episode has terminated.
type Environment interface {
	Reset() []float64
	Step(action int) (next []float64, reward float64, done bool)
	// NumActions reports the size of the discrete action set.
	NumActions() int
	// StateLen reports the state vector dimension.
	StateLen() int
}

// Policy maps a state to an action. Both the trained agent and the paper's
// baseline approaches satisfy it.
type Policy interface {
	Action(state []float64) int
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(state []float64) int

// Action implements Policy.
func (f PolicyFunc) Action(state []float64) int { return f(state) }

// EpsilonSchedule is a linearly decaying exploration schedule: the
// exploration rate starts at Start and decays to End over DecaySteps agent
// steps.
type EpsilonSchedule struct {
	Start      float64
	End        float64
	DecaySteps int
}

// At returns epsilon after the given number of steps.
func (e EpsilonSchedule) At(step int) float64 {
	if e.DecaySteps <= 0 || step >= e.DecaySteps {
		return e.End
	}
	frac := float64(step) / float64(e.DecaySteps)
	return e.Start + (e.End-e.Start)*frac
}

// AgentConfig collects the hyperparameters tuned during the paper's random
// search (§4.1): learning rate, discount factor gamma, the two networks'
// update and synchronization frequencies, and the PER batch size.
type AgentConfig struct {
	// StateLen and NumActions describe the MDP interface.
	StateLen   int
	NumActions int
	// Hidden is the MLP body; the paper uses {256, 256, 128, 64}.
	Hidden []int
	// Dueling enables the dueling value/advantage head (on in the paper).
	Dueling bool
	// DoubleDQN selects actions with the online network and evaluates them
	// with the target network (on in the paper).
	DoubleDQN bool
	// Gamma is the MDP discount factor.
	Gamma float64
	// LearningRate for the Adam optimizer.
	LearningRate float64
	// BatchSize is the replay mini-batch size.
	BatchSize int
	// TrainEvery trains once per this many environment steps.
	TrainEvery int
	// SyncEvery hard-syncs the target network once per this many
	// environment steps.
	SyncEvery int
	// WarmupSteps delays training until the buffer has this many
	// transitions.
	WarmupSteps int
	// Epsilon is the exploration schedule.
	Epsilon EpsilonSchedule
	// HuberDelta is the TD-error Huber transition point; 0 means 1.
	HuberDelta float64
	// GradClip caps the global gradient norm; 0 disables.
	GradClip float64
	// Seed drives weight init and exploration.
	Seed int64
}

// Validate reports configuration errors.
func (c AgentConfig) Validate() error {
	if c.StateLen <= 0 {
		return fmt.Errorf("rl: StateLen must be positive, got %d", c.StateLen)
	}
	if c.NumActions < 2 {
		return fmt.Errorf("rl: NumActions must be at least 2, got %d", c.NumActions)
	}
	if c.Gamma < 0 || c.Gamma > 1 {
		return fmt.Errorf("rl: Gamma must be in [0,1], got %v", c.Gamma)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("rl: BatchSize must be positive, got %d", c.BatchSize)
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("rl: LearningRate must be positive, got %v", c.LearningRate)
	}
	return nil
}

// withDefaults fills optional fields.
func (c AgentConfig) withDefaults() AgentConfig {
	if c.TrainEvery <= 0 {
		c.TrainEvery = 1
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = 500
	}
	if c.HuberDelta <= 0 {
		c.HuberDelta = 1
	}
	if c.WarmupSteps < c.BatchSize {
		c.WarmupSteps = c.BatchSize
	}
	return c
}

// Agent is a dueling double deep Q-network agent with (optionally
// prioritized) experience replay — the paper's learner (§3.3).
type Agent struct {
	cfg     AgentConfig
	online  *nn.Network
	target  *nn.Network
	opt     *nn.Adam
	replay  Replay
	rng     *mathx.RNG
	steps   int
	scr     *nn.Scratch // online-net scratch
	scrTgt  *nn.Scratch // target-net scratch
	scrNext *nn.Scratch // second online scratch for double-DQN selection
	dOut    []float64
}

// NewAgent builds an agent with the given replay buffer (pass
// NewPrioritizedReplay for the paper's configuration, NewUniformReplay for
// the ablation).
func NewAgent(cfg AgentConfig, replay Replay) *Agent {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	net := nn.New(nn.Config{
		Inputs:  cfg.StateLen,
		Hidden:  cfg.Hidden,
		Outputs: cfg.NumActions,
		Dueling: cfg.Dueling,
		Seed:    cfg.Seed,
	})
	a := &Agent{
		cfg:    cfg,
		online: net,
		target: net.Clone(),
		opt:    &nn.Adam{LR: cfg.LearningRate},
		replay: replay,
		rng:    mathx.NewRNG(cfg.Seed + 1),
	}
	a.scr = a.online.NewScratch()
	a.scrNext = a.online.NewScratch()
	a.scrTgt = a.target.NewScratch()
	a.dOut = make([]float64, cfg.NumActions)
	return a
}

// Config returns the agent's configuration (with defaults applied).
func (a *Agent) Config() AgentConfig { return a.cfg }

// Online exposes the online network (for serialization and inspection).
func (a *Agent) Online() *nn.Network { return a.online }

// SetOnline replaces the online network and re-syncs the target. The
// network's architecture must match the agent configuration. Used to warm-
// start an agent from a previously trained model (§4.1: each split trains a
// mix of previously trained and untrained models).
func (a *Agent) SetOnline(net *nn.Network) {
	c := net.Config()
	if c.Inputs != a.cfg.StateLen || c.Outputs != a.cfg.NumActions {
		panic("rl: SetOnline architecture mismatch")
	}
	a.online = net
	a.target = net.Clone()
	a.opt = &nn.Adam{LR: a.cfg.LearningRate}
	a.scr = a.online.NewScratch()
	a.scrNext = a.online.NewScratch()
	a.scrTgt = a.target.NewScratch()
}

// Steps reports the number of environment steps observed.
func (a *Agent) Steps() int { return a.steps }

// Epsilon returns the current exploration rate.
func (a *Agent) Epsilon() float64 { return a.cfg.Epsilon.At(a.steps) }

// Act selects an ε-greedy action for state.
func (a *Agent) Act(state []float64) int {
	if a.rng.Float64() < a.Epsilon() {
		return a.rng.Intn(a.cfg.NumActions)
	}
	return a.Greedy(state)
}

// Greedy returns argmax_a Q(state, a) under the online network.
func (a *Agent) Greedy(state []float64) int {
	q := a.online.ForwardInto(a.scr, state)
	return mathx.ArgMax(q)
}

// QValues returns a copy of the online network's Q-values for state.
func (a *Agent) QValues(state []float64) []float64 {
	q := a.online.ForwardInto(a.scr, state)
	out := make([]float64, len(q))
	copy(out, q)
	return out
}

// Observe records a transition and performs training/synchronization
// according to the configured frequencies. It returns the training loss if a
// training step ran, else NaN-free zero and false.
func (a *Agent) Observe(tr Transition) (loss float64, trained bool) {
	a.replay.Add(tr)
	a.steps++
	if a.steps%a.cfg.SyncEvery == 0 {
		a.target.CopyFrom(a.online)
	}
	if a.replay.Len() < a.cfg.WarmupSteps || a.steps%a.cfg.TrainEvery != 0 {
		return 0, false
	}
	return a.trainBatch(), true
}

// trainBatch samples a mini-batch and takes one optimization step,
// returning the mean loss. TD targets follow double DQN when configured:
// y = r + gamma * Q_target(s', argmax_a Q_online(s', a)).
func (a *Agent) trainBatch() float64 {
	trs, handles, ws := a.replay.Sample(a.rng, a.cfg.BatchSize)
	if len(trs) == 0 {
		return 0
	}
	a.online.ZeroGrad()
	totalLoss := 0.0
	tdErrs := make([]float64, len(trs))
	for i, tr := range trs {
		target := tr.R
		if !tr.Done {
			var next float64
			if a.cfg.DoubleDQN {
				qNext := a.online.ForwardInto(a.scrNext, tr.NextS)
				best := mathx.ArgMax(qNext)
				qTgt := a.target.ForwardInto(a.scrTgt, tr.NextS)
				next = qTgt[best]
			} else {
				qTgt := a.target.ForwardInto(a.scrTgt, tr.NextS)
				next = qTgt[mathx.ArgMax(qTgt)]
			}
			target += a.cfg.Gamma * next
		}
		q := a.online.ForwardInto(a.scr, tr.S)
		pred := q[tr.A]
		loss, dPred := nn.HuberLoss(pred, target, a.cfg.HuberDelta)
		tdErrs[i] = pred - target
		w := ws[i] / float64(len(trs))
		totalLoss += loss * ws[i]
		for j := range a.dOut {
			a.dOut[j] = 0
		}
		a.dOut[tr.A] = dPred * w
		a.online.Backward(a.scr, a.dOut)
	}
	nn.ClipGradNorm(a.online.Params(), a.cfg.GradClip)
	a.opt.Step(a.online.Params())
	a.replay.UpdatePriorities(handles, tdErrs)
	return totalLoss / float64(len(trs))
}

// GreedyPolicy returns the deterministic policy induced by the current
// online network. The returned policy shares the network but uses its own
// scratch, so it is safe to use after further training only if the caller
// accepts updated weights; Snapshot the network first for a frozen policy.
func (a *Agent) GreedyPolicy() Policy {
	net := a.online
	scr := net.NewScratch()
	return PolicyFunc(func(state []float64) int {
		return mathx.ArgMax(net.ForwardInto(scr, state))
	})
}

// SnapshotPolicy returns a frozen greedy policy over a deep copy of the
// current online network.
func (a *Agent) SnapshotPolicy() Policy {
	net := a.online.Clone()
	scr := net.NewScratch()
	return PolicyFunc(func(state []float64) int {
		return mathx.ArgMax(net.ForwardInto(scr, state))
	})
}
