package rl

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// PERConfig configures prioritized experience replay.
type PERConfig struct {
	// Capacity is the maximum number of stored transitions.
	Capacity int
	// Alpha is the prioritization exponent: 0 is uniform, 1 is fully
	// proportional to |TD error|. Schaul et al. use 0.6-0.7.
	Alpha float64
	// Beta is the importance-sampling exponent correcting the sampling
	// bias; annealed from Beta towards 1 over BetaSteps samples.
	Beta float64
	// BetaSteps is the number of Sample calls over which beta anneals to 1.
	// Zero keeps beta fixed.
	BetaSteps int
	// Eps is added to priorities so no transition starves. Default 1e-3.
	Eps float64
	// FastPow replaces the two math.Pow calls on the sampling hot path
	// (importance weights, priority shaping) with exp(p*log(x)). The
	// results differ from math.Pow by a couple of ULPs, so this is part of
	// the nn.KernelFast stream definition and off by default.
	FastPow bool
}

// PrioritizedReplay implements proportional prioritized experience replay
// (Schaul et al., 2015) using a sum tree. New transitions enter with maximal
// priority so each experience is replayed at least once; priorities are then
// updated to |TD error|^alpha after training visits them. The paper (§3.3.4)
// relies on PER to cope with the 3.5-orders-of-magnitude class imbalance
// between UEs and ordinary events.
type PrioritizedReplay struct {
	cfg     PERConfig
	tree    *sumTree
	buf     []Transition
	store   stateStore
	next    int
	size    int
	maxPrio float64
	samples int
}

// NewPrioritizedReplay creates an empty prioritized buffer.
func NewPrioritizedReplay(cfg PERConfig) *PrioritizedReplay {
	if cfg.Capacity <= 0 {
		panic(fmt.Sprintf("rl: PER capacity must be positive, got %d", cfg.Capacity))
	}
	if cfg.Eps == 0 {
		cfg.Eps = 1e-3
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.6
	}
	if cfg.Beta == 0 {
		cfg.Beta = 0.4
	}
	return &PrioritizedReplay{
		cfg:     cfg,
		tree:    newSumTree(cfg.Capacity),
		buf:     make([]Transition, cfg.Capacity),
		maxPrio: 1,
	}
}

// Add implements Replay. New transitions receive the current maximum
// priority. State vectors are copied into buffer-owned memory, so the
// caller keeps ownership of its slices.
//
//uerl:hotpath
func (p *PrioritizedReplay) Add(tr Transition) {
	p.store.intern(p.next, &tr, p.cfg.Capacity)
	p.buf[p.next] = tr
	p.tree.set(p.next, p.maxPrio)
	p.next = (p.next + 1) % p.cfg.Capacity
	if p.size < p.cfg.Capacity {
		p.size++
	}
}

// Len implements Replay.
func (p *PrioritizedReplay) Len() int { return p.size }

// beta returns the current annealed importance-sampling exponent.
func (p *PrioritizedReplay) beta() float64 {
	if p.cfg.BetaSteps <= 0 {
		return p.cfg.Beta
	}
	frac := float64(p.samples) / float64(p.cfg.BetaSteps)
	if frac > 1 {
		frac = 1
	}
	return p.cfg.Beta + (1-p.cfg.Beta)*frac
}

// Sample implements Replay using stratified proportional sampling: the total
// priority mass is divided into n equal segments and one sample is drawn
// uniformly within each, which lowers sample variance versus independent
// draws.
func (p *PrioritizedReplay) Sample(rng *mathx.RNG, n int) ([]Transition, []int, []float64) {
	trs := make([]Transition, n)
	handles := make([]int, n)
	ws := make([]float64, n)
	if p.SampleInto(rng, trs, handles, ws) == 0 {
		return nil, nil, nil
	}
	return trs, handles, ws
}

// SampleInto implements Replay without allocating, using the same
// stratified draws (and the same RNG stream) as Sample.
//
//uerl:hotpath
func (p *PrioritizedReplay) SampleInto(rng *mathx.RNG, trs []Transition, handles []int, ws []float64) int {
	if p.size == 0 {
		return 0
	}
	n := len(trs)
	total := p.tree.total()
	if total <= 0 {
		// Degenerate: all priorities zero; fall back to uniform.
		for i := range trs {
			h := rng.Intn(p.size)
			trs[i], handles[i], ws[i] = p.buf[h], h, 1
		}
		return n
	}
	beta := p.beta()
	p.samples++
	seg := total / float64(n)
	maxW := 0.0
	for i := 0; i < n; i++ {
		mass := (float64(i) + rng.Float64()) * seg
		if mass >= total {
			mass = total * (1 - 1e-12)
		}
		h := p.tree.find(mass)
		if h >= p.size {
			// Rounded-up tree capacity can return an empty leaf when the
			// buffer is not yet full; clamp to a valid entry.
			h = rng.Intn(p.size)
		}
		prob := p.tree.get(h) / total
		if prob <= 0 {
			prob = 1e-12
		}
		var w float64
		if p.cfg.FastPow {
			w = mathx.FastPow(float64(p.size)*prob, -beta)
		} else {
			w = math.Pow(float64(p.size)*prob, -beta)
		}
		trs[i], handles[i], ws[i] = p.buf[h], h, w
		if w > maxW {
			maxW = w
		}
	}
	if maxW > 0 {
		for i := range ws {
			ws[i] /= maxW
		}
	}
	return n
}

// UpdatePriorities implements Replay: priorities become
// (|TD error| + eps)^alpha.
func (p *PrioritizedReplay) UpdatePriorities(handles []int, priorities []float64) {
	for i, h := range handles {
		if h < 0 || h >= p.cfg.Capacity {
			continue
		}
		var prio float64
		if p.cfg.FastPow {
			prio = mathx.FastPow(math.Abs(priorities[i])+p.cfg.Eps, p.cfg.Alpha)
		} else {
			prio = math.Pow(math.Abs(priorities[i])+p.cfg.Eps, p.cfg.Alpha)
		}
		p.tree.set(h, prio)
		if prio > p.maxPrio {
			p.maxPrio = prio
		}
	}
}
