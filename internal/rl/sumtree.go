package rl

// sumTree is a complete binary tree over priorities supporting O(log n)
// updates and proportional sampling, the standard data structure behind
// prioritized experience replay. Leaves hold priorities; internal nodes hold
// subtree sums.
type sumTree struct {
	capacity int
	nodes    []float64 // 1-based heap layout; leaves at [capacity, 2*capacity)
}

func newSumTree(capacity int) *sumTree {
	// Round capacity up to a power of two so leaf indices are uniform.
	c := 1
	for c < capacity {
		c *= 2
	}
	return &sumTree{capacity: c, nodes: make([]float64, 2*c)}
}

// set assigns priority p to leaf i and propagates the change upward.
func (t *sumTree) set(i int, p float64) {
	if p < 0 {
		p = 0
	}
	idx := t.capacity + i
	delta := p - t.nodes[idx]
	for idx >= 1 {
		t.nodes[idx] += delta
		idx /= 2
	}
}

// get returns leaf i's priority.
func (t *sumTree) get(i int) float64 { return t.nodes[t.capacity+i] }

// total returns the sum of all priorities.
func (t *sumTree) total() float64 { return t.nodes[1] }

// find returns the leaf index whose cumulative prefix-sum interval contains
// mass, for mass in [0, total()).
func (t *sumTree) find(mass float64) int {
	idx := 1
	for idx < t.capacity {
		left := 2 * idx
		if mass < t.nodes[left] {
			idx = left
		} else {
			mass -= t.nodes[left]
			idx = left + 1
		}
	}
	return idx - t.capacity
}
