// Package cliio provides shared output helpers for the uerl* commands:
// one JSON encoder with a stable, machine-readable shape, so every CLI's
// -json mode (uerleval, uerlexp, uerlserve) emits results scripts can
// consume the same way.
package cliio

import (
	"encoding/json"
	"io"
)

// WriteJSON encodes v as two-space-indented JSON followed by a newline.
// Map keys are emitted in sorted order (encoding/json), so identical
// results produce byte-identical output — diffable across runs.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
