package evalx

import (
	"testing"

	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// cvFixture generates a small but non-trivial synthetic world.
func cvFixture() (log *telemetryLog, trace []jobs.Job) {
	tcfg := telemetry.Default().Scale(0.04)
	jcfg := jobs.Default()
	jcfg.Count = 3000
	return &telemetryLog{cfg: tcfg}, jobs.Generate(jcfg)
}

// telemetryLog defers generation so tests can share the fixture cheaply.
type telemetryLog struct{ cfg telemetry.Config }

func TestRunCVShapeProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation integration test in short mode")
	}
	fixture, trace := cvFixture()
	log := telemetry.Generate(fixture.cfg)
	cfg := DefaultCVConfig(PresetCI)
	cfg.Parts = 3
	cv := RunCV(log, trace, cfg)

	if len(cv.Splits) != 3 {
		t.Fatalf("splits = %d", len(cv.Splits))
	}
	never, ok1 := cv.Find("Never-mitigate")
	always, ok2 := cv.Find("Always-mitigate")
	sc20, ok3 := cv.Find("SC20-RF")
	myopic, ok4 := cv.Find("Myopic-RF")
	rlRes, ok5 := cv.Find("RL")
	oracle, ok6 := cv.Find("Oracle")
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 || !ok6 {
		t.Fatalf("missing policies in totals: %+v", cv.Totals)
	}

	// Structural invariants.
	if never.MitigationCost != 0 {
		t.Error("Never-mitigate charged mitigation cost")
	}
	if never.Metrics.Mitigations != 0 {
		t.Error("Never-mitigate mitigated")
	}
	if always.Metrics.Mitigations != always.Decisions {
		t.Errorf("Always mitigations %d != decisions %d",
			always.Metrics.Mitigations, always.Decisions)
	}
	if oracle.Metrics.FPs != 0 {
		t.Errorf("Oracle has %d false positives", oracle.Metrics.FPs)
	}

	// Shape properties from Fig. 3 at 2 node-minutes (wide tolerances: CI
	// preset, tiny log).
	if !(oracle.TotalCost() <= never.TotalCost()) {
		t.Errorf("Oracle %v worse than Never %v", oracle.TotalCost(), never.TotalCost())
	}
	if !(oracle.TotalCost() <= always.TotalCost()) {
		t.Errorf("Oracle %v worse than Always %v", oracle.TotalCost(), always.TotalCost())
	}
	if !(always.UECost <= never.UECost) {
		t.Errorf("Always UE cost %v above Never %v", always.UECost, never.UECost)
	}
	// Event-triggered policies can't beat the Oracle's UE cost.
	for _, r := range []Result{sc20, myopic, rlRes} {
		if r.UECost+1e-6 < oracle.UECost {
			t.Errorf("%s UE cost %v below Oracle %v", r.Policy, r.UECost, oracle.UECost)
		}
	}
	// The trained policies must not be meaningfully worse than doing
	// nothing (at CI scale there is too little training signal to demand
	// they win; the experiments assert the full Fig. 3 ordering at the
	// default preset). The epsilon absorbs wallclock training cost.
	if !(sc20.TotalCost() <= never.TotalCost()*1.02+1) {
		t.Errorf("SC20-RF %v much worse than Never %v", sc20.TotalCost(), never.TotalCost())
	}
	if !(rlRes.TotalCost() <= never.TotalCost()*1.05+1) {
		t.Errorf("RL %v much worse than Never %v", rlRes.TotalCost(), never.TotalCost())
	}

	// Metric identities (§4.4).
	for _, r := range cv.Totals {
		m := r.Metrics
		if m.TPs+m.FPs != m.Mitigations {
			t.Errorf("%s: TP+FP=%d != mitigations %d", r.Policy, m.TPs+m.FPs, m.Mitigations)
		}
		if m.TNs+m.FNs != m.NonMitigations {
			t.Errorf("%s: TN+FN=%d != non-mitigations %d", r.Policy, m.TNs+m.FNs, m.NonMitigations)
		}
		if m.TPs+m.FNs != never.Metrics.TPs+never.Metrics.FNs {
			t.Errorf("%s: UE count %d differs from Never's %d",
				r.Policy, m.TPs+m.FNs, never.Metrics.TPs+never.Metrics.FNs)
		}
	}
}

func TestRunCVDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test in short mode")
	}
	tcfg := telemetry.Default().Scale(0.02)
	jcfg := jobs.Default()
	jcfg.Count = 1000
	trace := jobs.Generate(jcfg)
	cfg := DefaultCVConfig(PresetCI)
	cfg.Parts = 2
	cfg.IncludeRL = false // keep it fast; baselines are deterministic
	a := RunCV(telemetry.Generate(tcfg), trace, cfg)
	b := RunCV(telemetry.Generate(tcfg), trace, cfg)
	for i := range a.Totals {
		// Training cost is wallclock-measured, so compare the rest.
		if a.Totals[i].UECost != b.Totals[i].UECost ||
			a.Totals[i].MitigationCost != b.Totals[i].MitigationCost ||
			a.Totals[i].Metrics != b.Totals[i].Metrics {
			t.Fatalf("policy %s not deterministic", a.Totals[i].Policy)
		}
	}
}

func TestCVConfigBudgets(t *testing.T) {
	ci := DefaultCVConfig(PresetCI)
	def := DefaultCVConfig(PresetDefault)
	paper := DefaultCVConfig(PresetPaper)
	if !(ci.episodeBudget() < def.episodeBudget() && def.episodeBudget() < paper.episodeBudget()) {
		t.Fatal("episode budgets not ordered")
	}
	if n := len(paper.hyperCandidates(15, 1)); n != 60 {
		t.Fatalf("paper search size = %d, want 60", n)
	}
	if n := len(ci.hyperCandidates(15, 1)); n != 1 {
		t.Fatalf("CI search size = %d, want 1", n)
	}
	override := ci
	override.RLEpisodes = 7
	if override.episodeBudget() != 7 {
		t.Fatal("RLEpisodes override ignored")
	}
}

func TestRunCVPanicsOnBadParts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultCVConfig(PresetCI)
	cfg.Parts = 1
	RunCV(telemetry.Generate(telemetry.Default().Scale(0.01)), jobs.Generate(jobs.Default()), cfg)
}
