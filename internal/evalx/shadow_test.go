package evalx

import (
	"testing"
	"time"
)

func shadowCfg() ShadowConfig {
	return ShadowConfig{MitigationCostNodeHours: 2.0 / 60, Restartable: true}
}

func TestShadowEvalCatchAndMiss(t *testing.T) {
	s := NewShadowEval("cand", shadowCfg())
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	// Node 1: mitigation 1 h before its UE → caught, UE cost forgiven.
	s.Decision(1, t0, true)
	s.UE(1, t0.Add(time.Hour), 500)

	// Node 2: no-mitigate decision, then a UE → missed, full cost.
	s.Decision(2, t0, false)
	s.UE(2, t0.Add(time.Hour), 300)

	res := s.Result()
	if res.Policy != "cand" {
		t.Fatalf("policy name = %q", res.Policy)
	}
	if res.Decisions != 2 || res.UEs != 2 {
		t.Fatalf("decisions=%d ues=%d, want 2/2", res.Decisions, res.UEs)
	}
	if res.Metrics.TPs != 1 || res.Metrics.FNs != 1 {
		t.Fatalf("TPs=%d FNs=%d, want 1/1", res.Metrics.TPs, res.Metrics.FNs)
	}
	if res.UECost != 300 {
		t.Fatalf("UECost = %v, want 300 (caught UE forgiven)", res.UECost)
	}
	wantMit := 2.0 / 60
	if diff := res.MitigationCost - wantMit; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("MitigationCost = %v, want %v", res.MitigationCost, wantMit)
	}
	if res.Metrics.FPs != 0 || res.Metrics.TNs != 0 {
		t.Fatalf("FPs=%d TNs=%d, want 0/0", res.Metrics.FPs, res.Metrics.TNs)
	}
}

func TestShadowEvalWindowAndOverheadBoundaries(t *testing.T) {
	s := NewShadowEval("cand", shadowCfg())
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	// Mitigation 1 minute before the UE: inside the window but the
	// 2-minute overhead means it cannot complete in time → miss.
	s.Decision(1, t0, true)
	s.UE(1, t0.Add(time.Minute), 100)

	// Mitigation 25 h before the UE: outside the 24 h window → miss.
	s.Decision(2, t0, true)
	s.UE(2, t0.Add(25*time.Hour), 100)

	res := s.Result()
	if res.Metrics.TPs != 0 || res.Metrics.FNs != 2 {
		t.Fatalf("TPs=%d FNs=%d, want 0/2", res.Metrics.TPs, res.Metrics.FNs)
	}
	if res.UECost != 200 {
		t.Fatalf("UECost = %v, want 200", res.UECost)
	}
	// Both mitigations missed their UEs → counted as false positives.
	if res.Metrics.FPs != 2 {
		t.Fatalf("FPs = %d, want 2", res.Metrics.FPs)
	}
}

func TestShadowEvalImplicitNonMitigationParity(t *testing.T) {
	// A UE with no event on its node in the preceding window is an
	// implicit no-mitigate decision, exactly as replayNode accounts it —
	// without it, an always-mitigating policy's TN count would go
	// negative.
	s := NewShadowEval("cand", shadowCfg())
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	// Unseen node: implicit non-mitigation.
	s.UE(1, t0, 200)
	// Node with a stale decision (25 h old): implicit again.
	s.Decision(2, t0, false)
	s.UE(2, t0.Add(25*time.Hour), 200)
	// Node with a recent no-mitigate decision: that decision already
	// counted, no implicit one.
	s.Decision(3, t0.Add(24*time.Hour), false)
	s.UE(3, t0.Add(25*time.Hour), 200)

	res := s.Result()
	if res.Metrics.FNs != 3 {
		t.Fatalf("FNs = %d, want 3", res.Metrics.FNs)
	}
	// 2 explicit non-mitigations + 2 implicit ones.
	if res.Metrics.NonMitigations != 4 {
		t.Fatalf("NonMitigations = %d, want 4", res.Metrics.NonMitigations)
	}
	if res.Metrics.TNs != 1 {
		t.Fatalf("TNs = %d, want 1", res.Metrics.TNs)
	}
}

func TestShadowEvalNonRestartableChargesCaughtUEs(t *testing.T) {
	cfg := shadowCfg()
	cfg.Restartable = false
	s := NewShadowEval("cand", cfg)
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s.Decision(1, t0, true)
	s.UE(1, t0.Add(time.Hour), 500)
	res := s.Result()
	if res.Metrics.TPs != 1 {
		t.Fatalf("TPs = %d, want 1", res.Metrics.TPs)
	}
	if res.UECost != 500 {
		t.Fatalf("UECost = %v, want 500 when not restartable", res.UECost)
	}
}

func TestShadowEvalIdenticalTrafficComparable(t *testing.T) {
	// Two scorers over identical traffic: a trigger-happy policy pays
	// mitigation cost, an idle one pays UE cost. The totals must order
	// the policies the way replay would.
	always := NewShadowEval("always", shadowCfg())
	never := NewShadowEval("never", shadowCfg())
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		at := t0.Add(time.Duration(i) * time.Minute)
		always.Decision(7, at, true)
		never.Decision(7, at, false)
	}
	ueAt := t0.Add(200 * time.Minute)
	always.UE(7, ueAt, 1000)
	never.UE(7, ueAt, 1000)

	a, n := always.Result(), never.Result()
	if a.TotalCost() >= n.TotalCost() {
		t.Fatalf("always (%v) should beat never (%v) with a catchable 1000 nh UE", a.TotalCost(), n.TotalCost())
	}
	if a.Metrics.Recall() != 1 || n.Metrics.Recall() != 0 {
		t.Fatalf("recall always=%v never=%v, want 1/0", a.Metrics.Recall(), n.Metrics.Recall())
	}
}

func TestShadowEvalReset(t *testing.T) {
	s := NewShadowEval("cand", shadowCfg())
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s.Decision(1, t0, true)
	s.UE(1, t0.Add(time.Hour), 10)
	s.Reset()
	res := s.Result()
	if res.Decisions != 0 || res.UEs != 0 || res.TotalCost() != 0 {
		t.Fatalf("Reset left state behind: %+v", res)
	}
	if res.Policy != "cand" {
		t.Fatalf("Reset dropped the policy name: %q", res.Policy)
	}
	// History must be gone too: a UE right after reset is a miss even
	// though a pre-reset mitigation was in window.
	s.UE(1, t0.Add(2*time.Hour), 10)
	if got := s.Result().Metrics.TPs; got != 0 {
		t.Fatalf("pre-reset mitigation leaked into new window (TPs=%d)", got)
	}
}
