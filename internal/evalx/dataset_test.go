package evalx

import (
	"testing"
	"time"

	"repro/internal/errlog"
	"repro/internal/features"
	"repro/internal/jobs"
	"repro/internal/policies"
	"repro/internal/rf"
)

func TestBuildRFDatasetLabels(t *testing.T) {
	ticks := [][]errlog.Tick{{
		mkTick(1, 0, errlog.CE),             // 10h before UE -> positive
		mkTick(1, 9*time.Hour, errlog.CE),   // 1h before UE -> positive
		mkTick(1, 10*time.Hour, errlog.UE),  // UE itself: not a sample
		mkTick(1, 100*time.Hour, errlog.CE), // long after -> negative
	}}
	ds := BuildRFDataset(ticks, time.Time{}, time.Time{})
	if len(ds.X) != 3 {
		t.Fatalf("samples = %d, want 3", len(ds.X))
	}
	if !ds.Y[0] || !ds.Y[1] || ds.Y[2] {
		t.Fatalf("labels = %v", ds.Y)
	}
	if ds.Positives() != 2 {
		t.Fatalf("positives = %d", ds.Positives())
	}
	if len(ds.X[0]) != features.PredictorDim {
		t.Fatalf("feature dim = %d", len(ds.X[0]))
	}
}

func TestBuildRFDatasetWindow(t *testing.T) {
	ticks := [][]errlog.Tick{{
		mkTick(1, 0, errlog.CE),
		mkTick(1, 9*time.Hour, errlog.CE),
	}}
	ds := BuildRFDataset(ticks, t0.Add(5*time.Hour), time.Time{})
	if len(ds.X) != 1 {
		t.Fatalf("windowed samples = %d, want 1", len(ds.X))
	}
	// The warm-up tick still influenced the tracker: CEsTotal is 2.
	if ds.X[0][features.CEsTotal] != 2 {
		t.Fatalf("warm-up lost: CEsTotal = %v", ds.X[0][features.CEsTotal])
	}
}

func TestBuildRFDatasetLabelOutsideWindowUE(t *testing.T) {
	// A UE 30h after the sample is outside the 24h prediction window.
	ticks := [][]errlog.Tick{{
		mkTick(1, 0, errlog.CE),
		mkTick(1, 30*time.Hour, errlog.UE),
	}}
	ds := BuildRFDataset(ticks, time.Time{}, time.Time{})
	if len(ds.X) != 1 || ds.Y[0] {
		t.Fatalf("label should be negative: %v", ds.Y)
	}
}

func TestOptimalThresholdPrefersCatchingUE(t *testing.T) {
	// Train a forest where high CEsTotal predicts the UE; the optimal
	// threshold must be low enough to fire before the UE, because firing
	// costs 2 node-minutes but missing costs 50 node-hours.
	ticks := ueScenario()
	ds := BuildRFDataset(ticks, time.Time{}, time.Time{})
	forest := rf.TrainForest(ds.X, ds.Y, rf.ForestConfig{Trees: 10, MaxDepth: 3, Seed: 1})
	sampler := fixedSampler(5, 1000)
	thr, cost := OptimalThreshold(forest, nil, ticks, sampler, replayCfg())
	// With every sample positive, the forest scores everything 1, so any
	// threshold < 1 fires. The search must not pick one with higher cost
	// than Always achieves.
	always := Replay(policies.Always{}, ticks, sampler, replayCfg())
	if cost > always.TotalCost()+1e-9 {
		t.Fatalf("optimal threshold %v cost %v worse than Always %v", thr, cost, always.TotalCost())
	}
}

func TestPerturbThreshold(t *testing.T) {
	if got := PerturbThreshold(0.5, 0.02); got != 0.48 {
		t.Fatalf("perturbed = %v", got)
	}
	if got := PerturbThreshold(0.005, 0.05); got != 0.005 {
		t.Fatalf("clamped = %v", got)
	}
	if got := PerturbThreshold(2, 0.0); got != 0.995 {
		t.Fatalf("upper clamp = %v", got)
	}
}

var _ = jobs.Job{} // keep import balanced if helpers move
