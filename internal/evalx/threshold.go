package evalx

import (
	"repro/internal/errlog"
	"repro/internal/jobs"
	"repro/internal/policies"
	"repro/internal/rf"
)

// DefaultThresholdGrid is the candidate set scanned by the optimal-
// threshold protocol. The paper gives SC20-RF "maximum advantage by using
// the optimal threshold parameter" (§4.2); the grid spans the useful range
// of forest scores.
var DefaultThresholdGrid = []float64{
	0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5,
	0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95,
}

// OptimalThreshold scores every candidate threshold and returns the one
// minimizing total cost on the given (training) window. The cost of this
// search is the "hidden cost" §5.1 notes is not charged to SC20-RF.
//
// The whole grid is scored from one pass over the tick stream: the
// single-pass engine evaluates the forest once per decision point and the
// N threshold policies merely compare that shared score (see
// policies.Shared.RFProb), collapsing the legacy O(grid × ticks) search to
// O(ticks). Per-threshold results are bit-identical to replaying each
// candidate separately, so the selected threshold is unchanged.
func OptimalThreshold(forest *rf.Forest, grid []float64, ticksByNode [][]errlog.Tick, sampler *jobs.Sampler, cfg ReplayConfig) (best float64, bestCost float64) {
	if len(grid) == 0 {
		grid = DefaultThresholdGrid
	}
	ds := make([]policies.Decider, len(grid))
	for i, thr := range grid {
		ds[i] = &policies.RFThreshold{Forest: forest, Threshold: thr}
	}
	results := ReplayAll(ds, ticksByNode, sampler, cfg)
	best = grid[0]
	first := true
	for i, res := range results {
		if first || res.TotalCost() < bestCost {
			best, bestCost, first = grid[i], res.TotalCost(), false
		}
	}
	return best, bestCost
}

// PerturbThreshold returns the §4.2 suboptimal variants: the optimal
// threshold shifted by the given absolute offset (2% and 5% in the paper),
// clamped to (0, 1). The shift is applied downward, increasing the number
// of mitigations, which is the direction that degrades SC20-RF through
// mitigation cost as in Fig. 3.
func PerturbThreshold(optimal, offset float64) float64 {
	t := optimal - offset
	if t < 0.005 {
		t = 0.005
	}
	if t > 0.995 {
		t = 0.995
	}
	return t
}
