package evalx

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/errlog"
	"repro/internal/features"
	"repro/internal/jobs"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/policies"
	"repro/internal/rl"
	"repro/internal/telemetry"
)

// synthWorld builds a deterministic many-node tick world with a mix of CE
// streams, boots, warnings and UEs so the parallel replay exercises every
// accounting path.
func synthWorld(seed int64, nodes int) [][]errlog.Tick {
	rng := mathx.NewRNG(seed)
	byNode := make([][]errlog.Tick, nodes)
	for n := 0; n < nodes; n++ {
		nrng := rng.Fork()
		var ticks []errlog.Tick
		at := time.Duration(nrng.Intn(120)) * time.Minute
		events := 20 + nrng.Intn(60)
		for i := 0; i < events; i++ {
			ty := errlog.CE
			switch {
			case nrng.Bool(0.03):
				ty = errlog.UE
			case nrng.Bool(0.05):
				ty = errlog.Boot
			case nrng.Bool(0.05):
				ty = errlog.UEWarning
			}
			tk := errlog.Tick{Time: t0.Add(at), Node: n}
			tk.Events = append(tk.Events, errlog.Event{
				Time: t0.Add(at), Node: n, Type: ty, Count: 1 + nrng.Intn(5),
				Rank: nrng.Intn(4), Bank: nrng.Intn(16), Row: nrng.Intn(4096), Col: nrng.Intn(1024),
				DIMM: nrng.Intn(8),
			})
			ticks = append(ticks, tk)
			at += time.Duration(10+nrng.Intn(600)) * time.Minute
		}
		byNode[n] = ticks
	}
	return byNode
}

func synthTrace(seed int64) *jobs.Sampler {
	cfg := jobs.Default()
	cfg.Seed = seed
	cfg.Count = 200
	return jobs.NewSampler(jobs.Generate(cfg))
}

// TestReplayParallelDeterministic: Replay with the worker pool must produce
// byte-identical Results to the serial path, for every policy family,
// across seeds, worker counts and GOMAXPROCS values. Result is a comparable
// struct, so == is a full bitwise comparison of every accumulated float.
func TestReplayParallelDeterministic(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))

	for _, seed := range []int64{1, 7, 1234} {
		byNode := synthWorld(seed, 24)
		sampler := synthTrace(seed)
		qnet := nn.New(nn.Config{Inputs: features.Dim, Hidden: []int{16, 8},
			Outputs: 2, Dueling: true, Seed: seed})
		deciders := []policies.Decider{
			policies.Never{},
			policies.Always{},
			&policies.FixedProb{Feature: 1, Bound: 20},
			&policies.RL{Policy: rl.NewSharedQPolicy(qnet)},
		}
		for _, d := range deciders {
			cfg := replayCfg()
			cfg.JobSeed = seed
			cfg.Parallelism = 1
			serial := Replay(d, byNode, sampler, cfg)

			for _, procs := range []int{1, 2, 4} {
				runtime.GOMAXPROCS(procs)
				for _, workers := range []int{0, 2, 3, 8} {
					cfg.Parallelism = workers
					got := Replay(d, byNode, sampler, cfg)
					if got != serial {
						t.Fatalf("seed %d policy %s procs %d workers %d: parallel result diverged\n got %+v\nwant %+v",
							seed, d.Name(), procs, workers, got, serial)
					}
				}
			}
		}
	}
}

// TestReplayParallelWindowed: determinism must also hold with accounting
// windows and cost overrides active (the Table 2 paths).
func TestReplayParallelWindowed(t *testing.T) {
	byNode := synthWorld(5, 16)
	sampler := synthTrace(5)
	cfg := replayCfg()
	cfg.From = t0.Add(24 * time.Hour)
	cfg.To = t0.Add(10 * 24 * time.Hour)
	cfg.CostOverride = func(rng *mathx.RNG) float64 { return rng.Float64() * 5000 }

	cfg.Parallelism = 1
	serial := Replay(policies.Always{}, byNode, sampler, cfg)
	cfg.Parallelism = 8
	parallel := Replay(policies.Always{}, byNode, sampler, cfg)
	if serial != parallel {
		t.Fatalf("windowed parallel replay diverged:\n got %+v\nwant %+v", parallel, serial)
	}
}

// TestTrainRLParallelCandidatesDeterministic: the parallel hyperparameter
// search (PresetDefault trains 3 candidates concurrently) must select the
// same model — and therefore produce identical evaluation results — for
// any GOMAXPROCS value.
func TestTrainRLParallelCandidatesDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test in short mode")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))

	tcfg := telemetry.Default().Scale(0.02)
	jcfg := jobs.Default()
	jcfg.Count = 1000
	trace := jobs.Generate(jcfg)
	cfg := DefaultCVConfig(PresetDefault)
	cfg.Parts = 2
	cfg.RLEpisodes = 20 // keep the 3-candidate search fast

	runtime.GOMAXPROCS(1)
	a := RunCV(telemetry.Generate(tcfg), trace, cfg)
	runtime.GOMAXPROCS(4)
	b := RunCV(telemetry.Generate(tcfg), trace, cfg)

	for i := range a.Totals {
		// Training cost is wallclock-measured, so compare the rest.
		if a.Totals[i].Policy != b.Totals[i].Policy ||
			a.Totals[i].UECost != b.Totals[i].UECost ||
			a.Totals[i].MitigationCost != b.Totals[i].MitigationCost ||
			a.Totals[i].Metrics != b.Totals[i].Metrics {
			t.Fatalf("policy %s not deterministic across GOMAXPROCS:\n got %+v\nwant %+v",
				a.Totals[i].Policy, b.Totals[i], a.Totals[i])
		}
	}
}

// TestReplayUnsafeDeciderFallsBackToSerial: a stateful decider that does
// not declare itself concurrency-safe must still replay correctly (the
// engine serializes it) — and produce the same result as an explicit
// serial run.
func TestReplayUnsafeDeciderFallsBackToSerial(t *testing.T) {
	byNode := synthWorld(11, 12)
	sampler := synthTrace(11)

	cfg := replayCfg()
	cfg.Parallelism = 8
	got := Replay(policies.NewCEThreshold(10), byNode, sampler, cfg)
	cfg.Parallelism = 1
	want := Replay(policies.NewCEThreshold(10), byNode, sampler, cfg)
	if got != want {
		t.Fatalf("stateful decider replay diverged:\n got %+v\nwant %+v", got, want)
	}
}
