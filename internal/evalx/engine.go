package evalx

import (
	"sync"
	"time"

	"repro/internal/env"
	"repro/internal/errlog"
	"repro/internal/features"
	"repro/internal/jobs"
	"repro/internal/mathx"
	"repro/internal/parx"
	"repro/internal/policies"
)

// This file implements the single-pass multi-policy replay engine. The
// legacy path (Replay, one policy per full walk) remains the reference
// implementation; ReplayAll produces bit-identical Results while walking
// each node's tick stream exactly once for all N policies.
//
// What makes a single shared walk possible:
//
//   - The feature tracker's state depends only on the tick stream, never on
//     the supplied potential UE cost (which only fills the returned
//     vector's UECost slot), so one tracker serves every policy.
//   - The job timeline's job sequence and RNG draws depend only on time and
//     UE events; a mitigation moves nothing but the cost baseline
//     (env.Timeline.Mitigate). The engine keeps one mitigation-free
//     timeline and reconstructs each policy's effective cost as
//     nodes × (t − max(jobStart, lastMitigation)) — exactly the value the
//     legacy per-policy timeline would report.
//   - All policies replayed under one ReplayConfig consume identical RNG
//     streams in the legacy path (each Replay reseeds from JobSeed), so
//     forking once per node reproduces every policy's draws.
//
// Per decision point the engine materializes the feature snapshot once and
// hands it to every decider: BatchDeciders (the §4.2 set) read it in place
// and share one memoized forest score (policies.Shared.RFProb); everything
// else falls back to Decide on a per-decider vector copy, so stateful or
// external deciders need no changes.

// policyState is the per-(node, policy) divergent replay state: the §4.4
// mitigation window and the cost baseline of the latest mitigation.
type policyState struct {
	mitigations []time.Time
	lastMit     time.Time
	hasMit      bool
}

// engineScratch holds the reusable per-worker state of the single-pass
// engine, recycled across nodes through a pool.
type engineScratch struct {
	tracker *features.Tracker
	ps      []policyState
	shared  policies.Shared
}

var engineScratchPool = sync.Pool{New: func() any {
	return &engineScratch{tracker: features.NewTracker()}
}}

// reset prepares the scratch for a node replayed against np policies.
func (sc *engineScratch) reset(np int) {
	sc.tracker.Reset()
	if cap(sc.ps) < np {
		sc.ps = make([]policyState, np)
	}
	sc.ps = sc.ps[:np]
	for i := range sc.ps {
		sc.ps[i].mitigations = sc.ps[i].mitigations[:0]
		sc.ps[i].lastMit = time.Time{}
		sc.ps[i].hasMit = false
	}
}

// ReplayAll evaluates several policies under identical workloads in a
// single pass: for each node the tick stream is walked once, the feature
// snapshot, job context and (lazily) the RF score are materialized once
// per decision point, and every decider is scored against that shared
// state. Results are bit-identical to calling Replay once per decider —
// the equivalence tests in engine_test.go enforce exactly that.
//
// Nodes fan out across the bounded worker pool like Replay; if any decider
// is not concurrency-safe the whole set replays serially (decisions for
// all policies are interleaved on one worker, which preserves each
// decider's own call order).
func ReplayAll(ds []policies.Decider, ticksByNode [][]errlog.Tick, sampler *jobs.Sampler, cfg ReplayConfig) []Result {
	out := make([]Result, len(ds))
	for i, d := range ds {
		out[i] = Result{Policy: d.Name()}
	}
	if len(ds) == 0 {
		return out
	}

	batch := make([]policies.BatchDecider, len(ds))
	for i, d := range ds {
		if bd, ok := d.(policies.BatchDecider); ok {
			batch[i] = bd
		}
	}

	rng := mathx.NewRNG(cfg.JobSeed)
	type nodeWork struct {
		ticks []errlog.Tick
		rng   *mathx.RNG
	}
	work := make([]nodeWork, 0, len(ticksByNode))
	for _, ticks := range ticksByNode {
		if len(ticks) == 0 {
			continue
		}
		work = append(work, nodeWork{ticks: ticks, rng: rng.Fork()})
	}

	workers := parx.Workers(cfg.Parallelism)
	for _, d := range ds {
		if !policies.IsConcurrentSafe(d) {
			workers = 1
			break
		}
	}

	partials := make([][]Result, len(work))
	flat := make([]Result, len(work)*len(ds))
	for i := range partials {
		partials[i] = flat[i*len(ds) : (i+1)*len(ds)]
	}
	parx.For(len(work), workers, func(i int) {
		sc := engineScratchPool.Get().(*engineScratch)
		sc.reset(len(ds))
		replayNodeAll(ds, batch, work[i].ticks, sampler, cfg, work[i].rng, sc, partials[i])
		engineScratchPool.Put(sc)
	})

	// Reduce in node order per policy: the same accumulation order as the
	// legacy per-policy Replay, so sums match bit for bit.
	for _, part := range partials {
		for pi := range part {
			out[pi].Add(part[pi])
		}
	}
	for pi := range out {
		out[pi].Metrics.FPs = out[pi].Metrics.Mitigations - out[pi].Metrics.TPs
		out[pi].Metrics.TNs = out[pi].Metrics.NonMitigations - out[pi].Metrics.FNs
	}
	return out
}

// replayNodeAll replays one node's tick sequence for every decider at
// once, accumulating each decider's partial Result into out.
func replayNodeAll(ds []policies.Decider, batch []policies.BatchDecider, ticks []errlog.Tick, sampler *jobs.Sampler, cfg ReplayConfig, rng *mathx.RNG, sc *engineScratch, out []Result) {
	tracker := sc.tracker
	tl := env.NewTimeline(sampler, rng.Fork(), cfg.Env.Restartable, ticks[0].Time)
	costRNG := rng.Fork()
	mitCost := cfg.Env.MitigationCostNodeHours()
	overhead := time.Duration(cfg.Env.MitigationCostNodeMinutes * float64(time.Minute))
	restartable := cfg.Env.Restartable
	override := cfg.CostOverride != nil

	ps := sc.ps
	var lastEvent time.Time
	var haveEvent bool
	lastOverride := 0.0

	for _, tick := range ticks {
		tl.AdvanceTo(tick.Time)
		if tick.HasUE() {
			ut := ueEventTime(tick)
			// Capture the job context before OnUE replaces the job, then
			// let the shared (mitigation-free) timeline account the UE: its
			// cost is the no-mitigation baseline every policy shares unless
			// its own mitigation moved the baseline forward.
			jobNodes := float64(tl.Job().Nodes)
			jobStart := tl.JobStart()
			sharedCost := tl.OnUE(ut)
			tracker.Observe(tick, 0)
			if cfg.inWindow(ut) {
				unreachable := !haveEvent || ut.Sub(lastEvent) > PredictionWindow
				for pi := range ps {
					st := &ps[pi]
					cost := sharedCost
					if override {
						cost = lastOverride
					} else if restartable && st.hasMit && st.lastMit.After(jobStart) {
						lost := ut.Sub(st.lastMit)
						if lost < 0 {
							lost = 0
						}
						cost = jobNodes * lost.Hours()
					}
					res := &out[pi]
					res.UEs++
					res.UECost += cost
					// §4.4: TP if a mitigation completed within the
					// preceding 24 h; otherwise FN (see replayNode).
					mitigated := false
					for i := len(st.mitigations) - 1; i >= 0; i-- {
						dt := ut.Sub(st.mitigations[i])
						if dt > PredictionWindow {
							break
						}
						if dt >= overhead {
							mitigated = true
							break
						}
					}
					if mitigated {
						res.Metrics.TPs++
					} else {
						res.Metrics.FNs++
						if unreachable {
							res.Metrics.NonMitigations++
						}
					}
				}
			}
			lastEvent, haveEvent = ut, true
			continue
		}

		sharedCost := tl.CostAt(tick.Time)
		if override {
			sharedCost = cfg.CostOverride(costRNG)
			lastOverride = sharedCost
		}
		v := tracker.Observe(tick, sharedCost)
		sc.shared.Reset(tick.Node, tick.Time, v)
		jobNodes := float64(tl.Job().Nodes)
		jobStart := tl.JobStart()
		inWin := cfg.inWindow(tick.Time)
		for pi := range ps {
			st := &ps[pi]
			cost := sharedCost
			if !override && restartable && st.hasMit && st.lastMit.After(jobStart) {
				lost := tick.Time.Sub(st.lastMit)
				if lost < 0 {
					lost = 0
				}
				cost = jobNodes * lost.Hours()
			}
			var mitigate bool
			if bd := batch[pi]; bd != nil {
				mitigate = bd.DecideShared(&sc.shared, cost)
			} else {
				ctx := policies.Context{Node: tick.Node, Time: tick.Time, Features: v}
				ctx.Features[features.UECost] = cost
				mitigate = ds[pi].Decide(ctx)
			}
			if mitigate {
				st.lastMit, st.hasMit = tick.Time, true
				st.mitigations = append(st.mitigations, tick.Time)
				// Trim the window to bound memory (as in replayNode).
				if len(st.mitigations) > 64 {
					st.mitigations = st.mitigations[len(st.mitigations)-64:]
				}
			}
			if inWin {
				res := &out[pi]
				res.Decisions++
				if mitigate {
					res.MitigationCost += mitCost
					res.Metrics.Mitigations++
				} else {
					res.Metrics.NonMitigations++
				}
			}
		}
		lastEvent, haveEvent = tick.Time, true
	}
}
