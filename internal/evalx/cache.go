package evalx

import (
	"sync"
	"time"

	"repro/internal/env"
	"repro/internal/errlog"
	"repro/internal/jobs"
	"repro/internal/rf"
)

// Cache memoizes the evaluation artifacts that are invariant across figure
// runs, so regenerating the full §5 suite reuses work instead of
// recomputing it:
//
//   - the preprocessed / merged / per-node-grouped tick pipeline and the
//     flat sorted UE-time index, keyed by log identity;
//   - the node-weighted job sampler, keyed by trace identity;
//   - per-split RF training sets and trained forests, keyed by
//     (log, train boundary, forest-config hash) — invariant across
//     mitigation costs, which is why Figure 3's three cost points share one
//     forest per split;
//   - SC20-RF optimal thresholds, keyed additionally by the replay
//     environment and window (they do depend on the mitigation cost).
//
// Logs and traces handed to a cached run must not be mutated afterwards;
// keys are pointer identities. Every artifact is a deterministic function
// of its key, so concurrent duplicate computation is harmless (last write
// wins with an identical value). A nil *Cache is valid and disables
// memoization, so all entry points take an optional cache.
//
// Wallclock training costs are part of the §4.3 accounting: each forest
// and threshold artifact records the cost measured when it was first
// computed, and cache hits charge that recorded cost, keeping rendered
// figures consistent between cold and warm runs.
type Cache struct {
	mu         sync.Mutex
	ticks      map[*errlog.Log]*TickArtifacts
	samplers   map[*jobs.Job]*jobs.Sampler
	datasets   map[datasetKey]RFDataset
	forests    map[forestKey]*forestArtifact
	thresholds map[thresholdKey]*thresholdArtifact
}

// NewCache returns an empty artifact cache.
func NewCache() *Cache {
	return &Cache{
		ticks:      map[*errlog.Log]*TickArtifacts{},
		samplers:   map[*jobs.Job]*jobs.Sampler{},
		datasets:   map[datasetKey]RFDataset{},
		forests:    map[forestKey]*forestArtifact{},
		thresholds: map[thresholdKey]*thresholdArtifact{},
	}
}

// TickArtifacts is the memoized tick pipeline of one log.
type TickArtifacts struct {
	// Pre is the preprocessed log (sorted, retirement-bias filtered, UE
	// bursts reduced).
	Pre *errlog.Log
	// ByNode holds the merged per-node tick sequences.
	ByNode [][]errlog.Tick
	// UETimes is the flat, sorted index of every UE event time in ByNode,
	// backing the O(log n) window queries the split loops perform.
	UETimes []time.Time
}

type datasetKey struct {
	log     *errlog.Log
	trainTo int64 // UnixNano
}

type forestKey struct {
	log     *errlog.Log
	trainTo int64
	cfg     rf.ForestConfig
}

type forestArtifact struct {
	forest *rf.Forest
	// trained reports whether the training set had positive samples; a
	// degenerate (never-firing) early-split forest skips the threshold
	// search.
	trained bool
	// costHours is the wallclock spent building the dataset and training
	// the forest when this artifact was computed (§4.3 training cost).
	costHours float64
}

type thresholdKey struct {
	forest   *rf.Forest
	sampler  *jobs.Sampler
	env      env.Config
	jobSeed  int64
	from, to int64
}

type thresholdArtifact struct {
	threshold float64
	costHours float64
}

// buildTickArtifacts runs the uncached pipeline.
func buildTickArtifacts(log *errlog.Log) *TickArtifacts {
	pre := errlog.Preprocess(log)
	byNode := env.GroupTicks(errlog.Merge(pre, errlog.MergeWindow))
	return &TickArtifacts{Pre: pre, ByNode: byNode, UETimes: ueTimeIndex(byNode)}
}

// Ticks returns the memoized tick pipeline for log, computing it on first
// use. A nil cache computes it fresh.
func (c *Cache) Ticks(log *errlog.Log) *TickArtifacts {
	if c == nil {
		return buildTickArtifacts(log)
	}
	c.mu.Lock()
	art := c.ticks[log]
	c.mu.Unlock()
	if art != nil {
		return art
	}
	art = buildTickArtifacts(log)
	c.mu.Lock()
	c.ticks[log] = art
	c.mu.Unlock()
	return art
}

// Sampler returns the memoized node-weighted sampler for trace. Keying by
// the trace's backing array identity keeps one sampler per generated
// trace, which in turn lets threshold artifacts key on sampler identity.
func (c *Cache) Sampler(trace []jobs.Job) *jobs.Sampler {
	if c == nil || len(trace) == 0 {
		return jobs.NewSampler(trace)
	}
	key := &trace[0]
	c.mu.Lock()
	s := c.samplers[key]
	c.mu.Unlock()
	if s != nil {
		return s
	}
	s = jobs.NewSampler(trace)
	c.mu.Lock()
	c.samplers[key] = s
	c.mu.Unlock()
	return s
}

// dataset returns the memoized RF training set for ticks before trainTo.
func (c *Cache) dataset(log *errlog.Log, byNode [][]errlog.Tick, trainTo time.Time) RFDataset {
	build := func() RFDataset {
		return BuildRFDataset(ticksUpTo(byNode, trainTo), time.Time{}, trainTo)
	}
	if c == nil {
		return build()
	}
	key := datasetKey{log: log, trainTo: trainTo.UnixNano()}
	c.mu.Lock()
	ds, ok := c.datasets[key]
	c.mu.Unlock()
	if ok {
		return ds
	}
	ds = build()
	c.mu.Lock()
	c.datasets[key] = ds
	c.mu.Unlock()
	return ds
}

// forest returns the memoized trained forest for (log, trainTo, cfg),
// whether its training set had positives, and the §4.3 training cost to
// charge. On first use it builds (or reuses) the dataset and trains via
// train; the recorded cost is the wallclock of dataset construction plus
// training, matching what the uncached path used to measure.
func (c *Cache) forest(log *errlog.Log, byNode [][]errlog.Tick, trainTo time.Time, cfg rf.ForestConfig, train func(RFDataset) (*rf.Forest, bool)) (*rf.Forest, bool, float64) {
	if c == nil {
		start := time.Now() //uerl:nondet-ok §4.3 training cost is charged as measured wallclock; it annotates results and never feeds replay decisions
		f, trained := train(BuildRFDataset(ticksUpTo(byNode, trainTo), time.Time{}, trainTo))
		return f, trained, time.Since(start).Hours() //uerl:nondet-ok wallclock training-cost metadata, see above
	}
	key := forestKey{log: log, trainTo: trainTo.UnixNano(), cfg: cfg}
	c.mu.Lock()
	art := c.forests[key]
	c.mu.Unlock()
	if art != nil {
		return art.forest, art.trained, art.costHours
	}
	start := time.Now() //uerl:nondet-ok §4.3 training cost is charged as measured wallclock; cached artifacts replay the first measurement so cached and cold runs render identically
	f, trained := train(c.dataset(log, byNode, trainTo))
	cost := time.Since(start).Hours() //uerl:nondet-ok wallclock training-cost metadata, see above
	c.mu.Lock()
	c.forests[key] = &forestArtifact{forest: f, trained: trained, costHours: cost}
	c.mu.Unlock()
	return f, trained, cost
}

// threshold returns the memoized optimal threshold for the forest under
// the given replay configuration, searching on first use.
func (c *Cache) threshold(forest *rf.Forest, byNode [][]errlog.Tick, sampler *jobs.Sampler, cfg ReplayConfig) (float64, float64) {
	search := func() (float64, float64) {
		start := time.Now() //uerl:nondet-ok §4.3 threshold-search cost is charged as measured wallclock; the threshold itself is deterministic
		thr, _ := OptimalThreshold(forest, nil, byNode, sampler, cfg)
		return thr, time.Since(start).Hours() //uerl:nondet-ok wallclock search-cost metadata, see above
	}
	if c == nil {
		return search()
	}
	key := thresholdKey{
		forest: forest, sampler: sampler, env: cfg.Env,
		jobSeed: cfg.JobSeed, from: cfg.From.UnixNano(), to: cfg.To.UnixNano(),
	}
	c.mu.Lock()
	art := c.thresholds[key]
	c.mu.Unlock()
	if art != nil {
		return art.threshold, art.costHours
	}
	thr, cost := search()
	c.mu.Lock()
	c.thresholds[key] = &thresholdArtifact{threshold: thr, costHours: cost}
	c.mu.Unlock()
	return thr, cost
}

// ueTimeIndex collects every UE event time in the per-node sequences into
// one sorted slice — the precomputed index behind hasUEIn.
func ueTimeIndex(byNode [][]errlog.Tick) []time.Time {
	var out []time.Time
	for _, ticks := range byNode {
		for _, tick := range ticks {
			if tick.HasUE() {
				out = append(out, ueEventTime(tick))
			}
		}
	}
	sortTimes(out)
	return out
}

// sortTimes sorts in place (UE times arrive near-sorted, so insertion sort
// on the rare out-of-order element is plenty — the slice has tens of
// entries at paper scale).
func sortTimes(ts []time.Time) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Before(ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
