package evalx

import (
	"sort"
	"sync"
	"time"

	"repro/internal/env"
	"repro/internal/errlog"
	"repro/internal/jobs"
	"repro/internal/nn"
	"repro/internal/policies"
	"repro/internal/rf"
	"repro/internal/rl"
)

// Cache memoizes the evaluation artifacts that are invariant across figure
// runs, so regenerating the full §5 suite reuses work instead of
// recomputing it:
//
//   - the preprocessed / merged / per-node-grouped tick pipeline and the
//     flat sorted UE-time index, keyed by log identity;
//   - the node-weighted job sampler, keyed by trace identity;
//   - per-split RF training sets and trained forests, keyed by
//     (log, train boundary, forest-config hash) — invariant across
//     mitigation costs, which is why Figure 3's three cost points share one
//     forest per split;
//   - SC20-RF optimal thresholds, keyed additionally by the replay
//     environment and window (they do depend on the mitigation cost);
//   - trained RL policy artifacts, keyed by everything the training
//     trajectory depends on (log, trace, env config, seed, preset, split
//     geometry, kernel version) — Figure 3's cost sweep, Figure 4 and
//     Table 2 previously retrained byte-identical agents per figure.
//
// Logs and traces handed to a cached run must not be mutated afterwards;
// keys are pointer identities. Every artifact is a deterministic function
// of its key, so concurrent duplicate computation is harmless (last write
// wins with an identical value). A nil *Cache is valid and disables
// memoization, so all entry points take an optional cache.
//
// Wallclock training costs are part of the §4.3 accounting: each forest
// and threshold artifact records the cost measured when it was first
// computed, and cache hits charge that recorded cost, keeping rendered
// figures consistent between cold and warm runs.
type Cache struct {
	mu         sync.Mutex
	ticks      map[*errlog.Log]*TickArtifacts
	samplers   map[*jobs.Job]*jobs.Sampler
	datasets   map[datasetKey]RFDataset
	forests    map[forestKey]*forestArtifact
	thresholds map[thresholdKey]*thresholdArtifact
	rls        map[rlKey]*rlArtifact
}

// NewCache returns an empty artifact cache.
func NewCache() *Cache {
	return &Cache{
		ticks:      map[*errlog.Log]*TickArtifacts{},
		samplers:   map[*jobs.Job]*jobs.Sampler{},
		datasets:   map[datasetKey]RFDataset{},
		forests:    map[forestKey]*forestArtifact{},
		thresholds: map[thresholdKey]*thresholdArtifact{},
		rls:        map[rlKey]*rlArtifact{},
	}
}

// TickArtifacts is the memoized tick pipeline of one log.
type TickArtifacts struct {
	// Pre is the preprocessed log (sorted, retirement-bias filtered, UE
	// bursts reduced).
	Pre *errlog.Log
	// ByNode holds the merged per-node tick sequences.
	ByNode [][]errlog.Tick
	// UETimes is the flat, sorted index of every UE event time in ByNode,
	// backing the O(log n) window queries the split loops perform.
	UETimes []time.Time
	// oraclePts holds, sorted by UE time, the Oracle mitigation point of
	// every reachable UE (see OraclePoints); window queries binary-search it
	// instead of rescanning every tick of every node.
	oraclePts []oraclePoint
}

// oraclePoint pairs a reachable UE's event time with the Oracle mitigation
// decision that prevents it.
type oraclePoint struct {
	ueTime time.Time
	key    policies.OracleKey
}

// OraclePoints returns the §4.2 Oracle mitigation set for UEs inside
// [from, to) (zero times disable a bound), served from the precomputed
// index. It returns exactly what the standalone OraclePoints computes over
// the artifact's ByNode ticks.
func (a *TickArtifacts) OraclePoints(from, to time.Time) map[policies.OracleKey]bool {
	lo := 0
	if !from.IsZero() {
		lo = sort.Search(len(a.oraclePts), func(i int) bool {
			return !a.oraclePts[i].ueTime.Before(from)
		})
	}
	points := map[policies.OracleKey]bool{}
	for _, p := range a.oraclePts[lo:] {
		if !to.IsZero() && !p.ueTime.Before(to) {
			break
		}
		points[p.key] = true
	}
	return points
}

// oracleIndex precomputes the window-independent part of OraclePoints: the
// reachability conditions (mitigation overhead, prediction window) do not
// depend on the query window, so each reachable UE's point is found once.
func oracleIndex(byNode [][]errlog.Tick) []oraclePoint {
	var out []oraclePoint
	for _, ticks := range byNode {
		lastDecision := time.Time{}
		haveDecision := false
		for _, tick := range ticks {
			if tick.HasUE() {
				ut := ueEventTime(tick)
				gap := ut.Sub(lastDecision)
				if haveDecision && gap >= OracleOverhead && gap <= PredictionWindow {
					out = append(out, oraclePoint{
						ueTime: ut,
						key:    policies.OracleKey{Node: tick.Node, Time: lastDecision},
					})
				}
				continue
			}
			lastDecision = tick.Time
			haveDecision = true
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ueTime.Before(out[j].ueTime) })
	return out
}

type datasetKey struct {
	log     *errlog.Log
	trainTo int64 // UnixNano
}

type forestKey struct {
	log     *errlog.Log
	trainTo int64
	cfg     rf.ForestConfig
}

type forestArtifact struct {
	forest *rf.Forest
	// trained reports whether the training set had positive samples; a
	// degenerate (never-firing) early-split forest skips the threshold
	// search.
	trained bool
	// costHours is the wallclock spent building the dataset and training
	// the forest when this artifact was computed (§4.3 training cost).
	costHours float64
}

type thresholdKey struct {
	forest   *rf.Forest
	sampler  *jobs.Sampler
	env      env.Config
	jobSeed  int64
	from, to int64
}

type thresholdArtifact struct {
	threshold float64
	costHours float64
}

// rlKey identifies one split's trained RL policy: every input the training
// trajectory depends on. Worker counts and parallelism knobs are absent by
// design — training is bit-deterministic across them — and so are the test
// window bounds, which training never sees. The warm-start chain is covered
// by (parts, split): split k's warm input is split k-1's artifact, itself a
// deterministic function of the same key family.
type rlKey struct {
	log      *errlog.Log
	sampler  *jobs.Sampler
	env      env.Config
	seed     int64
	preset   Preset
	episodes int
	parts    int
	split    int
	trainTo  int64 // UnixNano
	valFrom  int64
	kernel   int
}

type rlArtifact struct {
	net       *nn.Network
	policy    rl.Policy
	costHours float64
}

// rlPolicy returns the memoized trained policy for key, training via train
// on first use. The returned network is the winning candidate's online net
// (callers clone before mutating; the warm-start path only clones). Hits
// replay the §4.3 wallclock recorded on the miss, so cold and warm runs
// render identical training-cost rows.
func (c *Cache) rlPolicy(key rlKey, train func() (rl.Policy, *nn.Network)) (rl.Policy, *nn.Network, float64) {
	if c == nil {
		start := time.Now() //uerl:nondet-ok §4.3 RL training cost is charged as measured wallclock; trained weights stay seed-deterministic
		pol, net := train()
		return pol, net, time.Since(start).Hours() //uerl:nondet-ok wallclock training-cost metadata, see above
	}
	c.mu.Lock()
	art := c.rls[key]
	c.mu.Unlock()
	if art != nil {
		return art.policy, art.net, art.costHours
	}
	start := time.Now() //uerl:nondet-ok §4.3 RL training cost is charged as measured wallclock; cached artifacts replay the first measurement so cached and cold runs render identically
	pol, net := train()
	cost := time.Since(start).Hours() //uerl:nondet-ok wallclock training-cost metadata, see above
	c.mu.Lock()
	c.rls[key] = &rlArtifact{net: net, policy: pol, costHours: cost}
	c.mu.Unlock()
	return pol, net, cost
}

// buildTickArtifacts runs the uncached pipeline.
func buildTickArtifacts(log *errlog.Log) *TickArtifacts {
	pre := errlog.Preprocess(log)
	byNode := env.GroupTicks(errlog.Merge(pre, errlog.MergeWindow))
	return &TickArtifacts{
		Pre: pre, ByNode: byNode,
		UETimes:   ueTimeIndex(byNode),
		oraclePts: oracleIndex(byNode),
	}
}

// Ticks returns the memoized tick pipeline for log, computing it on first
// use. A nil cache computes it fresh.
func (c *Cache) Ticks(log *errlog.Log) *TickArtifacts {
	if c == nil {
		return buildTickArtifacts(log)
	}
	c.mu.Lock()
	art := c.ticks[log]
	c.mu.Unlock()
	if art != nil {
		return art
	}
	art = buildTickArtifacts(log)
	c.mu.Lock()
	c.ticks[log] = art
	c.mu.Unlock()
	return art
}

// Sampler returns the memoized node-weighted sampler for trace. Keying by
// the trace's backing array identity keeps one sampler per generated
// trace, which in turn lets threshold artifacts key on sampler identity.
func (c *Cache) Sampler(trace []jobs.Job) *jobs.Sampler {
	if c == nil || len(trace) == 0 {
		return jobs.NewSampler(trace)
	}
	key := &trace[0]
	c.mu.Lock()
	s := c.samplers[key]
	c.mu.Unlock()
	if s != nil {
		return s
	}
	s = jobs.NewSampler(trace)
	c.mu.Lock()
	c.samplers[key] = s
	c.mu.Unlock()
	return s
}

// dataset returns the memoized RF training set for ticks before trainTo.
func (c *Cache) dataset(log *errlog.Log, byNode [][]errlog.Tick, trainTo time.Time) RFDataset {
	build := func() RFDataset {
		return BuildRFDataset(ticksUpTo(byNode, trainTo), time.Time{}, trainTo)
	}
	if c == nil {
		return build()
	}
	key := datasetKey{log: log, trainTo: trainTo.UnixNano()}
	c.mu.Lock()
	ds, ok := c.datasets[key]
	c.mu.Unlock()
	if ok {
		return ds
	}
	ds = build()
	c.mu.Lock()
	c.datasets[key] = ds
	c.mu.Unlock()
	return ds
}

// forest returns the memoized trained forest for (log, trainTo, cfg),
// whether its training set had positives, and the §4.3 training cost to
// charge. On first use it builds (or reuses) the dataset and trains via
// train; the recorded cost is the wallclock of dataset construction plus
// training, matching what the uncached path used to measure.
func (c *Cache) forest(log *errlog.Log, byNode [][]errlog.Tick, trainTo time.Time, cfg rf.ForestConfig, train func(RFDataset) (*rf.Forest, bool)) (*rf.Forest, bool, float64) {
	if c == nil {
		start := time.Now() //uerl:nondet-ok §4.3 training cost is charged as measured wallclock; it annotates results and never feeds replay decisions
		f, trained := train(BuildRFDataset(ticksUpTo(byNode, trainTo), time.Time{}, trainTo))
		return f, trained, time.Since(start).Hours() //uerl:nondet-ok wallclock training-cost metadata, see above
	}
	key := forestKey{log: log, trainTo: trainTo.UnixNano(), cfg: cfg}
	c.mu.Lock()
	art := c.forests[key]
	c.mu.Unlock()
	if art != nil {
		return art.forest, art.trained, art.costHours
	}
	start := time.Now() //uerl:nondet-ok §4.3 training cost is charged as measured wallclock; cached artifacts replay the first measurement so cached and cold runs render identically
	f, trained := train(c.dataset(log, byNode, trainTo))
	cost := time.Since(start).Hours() //uerl:nondet-ok wallclock training-cost metadata, see above
	c.mu.Lock()
	c.forests[key] = &forestArtifact{forest: f, trained: trained, costHours: cost}
	c.mu.Unlock()
	return f, trained, cost
}

// threshold returns the memoized optimal threshold for the forest under
// the given replay configuration, searching on first use.
func (c *Cache) threshold(forest *rf.Forest, byNode [][]errlog.Tick, sampler *jobs.Sampler, cfg ReplayConfig) (float64, float64) {
	search := func() (float64, float64) {
		start := time.Now() //uerl:nondet-ok §4.3 threshold-search cost is charged as measured wallclock; the threshold itself is deterministic
		thr, _ := OptimalThreshold(forest, nil, byNode, sampler, cfg)
		return thr, time.Since(start).Hours() //uerl:nondet-ok wallclock search-cost metadata, see above
	}
	if c == nil {
		return search()
	}
	key := thresholdKey{
		forest: forest, sampler: sampler, env: cfg.Env,
		jobSeed: cfg.JobSeed, from: cfg.From.UnixNano(), to: cfg.To.UnixNano(),
	}
	c.mu.Lock()
	art := c.thresholds[key]
	c.mu.Unlock()
	if art != nil {
		return art.threshold, art.costHours
	}
	thr, cost := search()
	c.mu.Lock()
	c.thresholds[key] = &thresholdArtifact{threshold: thr, costHours: cost}
	c.mu.Unlock()
	return thr, cost
}

// ueTimeIndex collects every UE event time in the per-node sequences into
// one sorted slice — the precomputed index behind hasUEIn.
func ueTimeIndex(byNode [][]errlog.Tick) []time.Time {
	var out []time.Time
	for _, ticks := range byNode {
		for _, tick := range ticks {
			if tick.HasUE() {
				out = append(out, ueEventTime(tick))
			}
		}
	}
	sortTimes(out)
	return out
}

// sortTimes sorts in place (UE times arrive near-sorted, so insertion sort
// on the rare out-of-order element is plenty — the slice has tens of
// entries at paper scale).
func sortTimes(ts []time.Time) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Before(ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
