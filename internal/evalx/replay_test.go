package evalx

import (
	"math"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/errlog"
	"repro/internal/features"
	"repro/internal/jobs"
	"repro/internal/mathx"
	"repro/internal/policies"
)

var t0 = time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)

func mkTick(node int, at time.Duration, types ...errlog.EventType) errlog.Tick {
	tk := errlog.Tick{Time: t0.Add(at), Node: node}
	for _, ty := range types {
		tk.Events = append(tk.Events, errlog.Event{
			Time: t0.Add(at), Node: node, Type: ty, Count: 1,
		})
	}
	return tk
}

func fixedSampler(nodes int, hours float64) *jobs.Sampler {
	return jobs.NewSampler([]jobs.Job{{
		ID: 1, Nodes: nodes, Duration: time.Duration(hours * float64(time.Hour)),
	}})
}

func replayCfg() ReplayConfig {
	c := env.DefaultConfig()
	return ReplayConfig{Env: c, JobSeed: 1}
}

// Scenario: CE at 0h, CE at 9h, UE at 10h on a 5-node job.
func ueScenario() [][]errlog.Tick {
	return [][]errlog.Tick{{
		mkTick(1, 0, errlog.CE),
		mkTick(1, 9*time.Hour, errlog.CE),
		mkTick(1, 10*time.Hour, errlog.UE),
	}}
}

func TestReplayNever(t *testing.T) {
	res := Replay(policies.Never{}, ueScenario(), fixedSampler(5, 1000), replayCfg())
	if math.Abs(res.UECost-50) > 1e-9 {
		t.Fatalf("UE cost = %v, want 50", res.UECost)
	}
	if res.MitigationCost != 0 || res.Metrics.Mitigations != 0 {
		t.Fatal("Never must not mitigate")
	}
	if res.Metrics.TPs != 0 || res.Metrics.FNs != 1 {
		t.Fatalf("metrics = %+v", res.Metrics)
	}
	if res.Metrics.Recall() != 0 {
		t.Fatal("recall should be 0")
	}
	if res.UEs != 1 || res.Decisions != 2 {
		t.Fatalf("UEs=%d decisions=%d", res.UEs, res.Decisions)
	}
}

func TestReplayAlways(t *testing.T) {
	res := Replay(policies.Always{}, ueScenario(), fixedSampler(5, 1000), replayCfg())
	// Mitigations at 0h and 9h; UE at 10h costs 5 nodes x 1h = 5.
	if math.Abs(res.UECost-5) > 1e-9 {
		t.Fatalf("UE cost = %v, want 5", res.UECost)
	}
	wantMit := 2 * replayCfg().Env.MitigationCostNodeHours()
	if math.Abs(res.MitigationCost-wantMit) > 1e-9 {
		t.Fatalf("mitigation cost = %v, want %v", res.MitigationCost, wantMit)
	}
	// The 9h mitigation completed within the 24h window before the UE: TP.
	if res.Metrics.TPs != 1 || res.Metrics.FNs != 0 {
		t.Fatalf("metrics = %+v", res.Metrics)
	}
	// One of the two mitigations is redundant: FP.
	if res.Metrics.FPs != 1 {
		t.Fatalf("FPs = %d, want 1", res.Metrics.FPs)
	}
	if res.Metrics.Recall() != 1 {
		t.Fatal("recall should be 1")
	}
}

func TestReplayMitigationOverheadExcluded(t *testing.T) {
	// A mitigation initiated less than the overhead before the UE has not
	// completed and must not count as a TP (§4.4).
	ticks := [][]errlog.Tick{{
		mkTick(1, 0, errlog.CE),
		mkTick(1, 10*time.Hour-time.Minute, errlog.CE), // 1 min before UE < 2 min overhead
		mkTick(1, 10*time.Hour, errlog.UE),
	}}
	d := &policies.FixedProb{Feature: features.CEsTotal, Bound: 1.5} // mitigates on 2nd CE only
	res := Replay(d, ticks, fixedSampler(5, 1000), replayCfg())
	if res.Metrics.Mitigations != 1 {
		t.Fatalf("mitigations = %d, want 1", res.Metrics.Mitigations)
	}
	if res.Metrics.TPs != 0 || res.Metrics.FNs != 1 {
		t.Fatalf("incomplete mitigation counted as TP: %+v", res.Metrics)
	}
}

func TestReplayUEOutsidePredictionWindow(t *testing.T) {
	// Mitigation 30h before the UE is outside the 1-day window: FN, and
	// the UE has no event within the preceding day, so it also counts an
	// implicit non-mitigation.
	ticks := [][]errlog.Tick{{
		mkTick(1, 0, errlog.CE),
		mkTick(1, 40*time.Hour, errlog.UE),
	}}
	res := Replay(policies.Always{}, ticks, fixedSampler(5, 1000), replayCfg())
	if res.Metrics.TPs != 0 || res.Metrics.FNs != 1 {
		t.Fatalf("metrics = %+v", res.Metrics)
	}
	if res.Metrics.NonMitigations != 1 {
		t.Fatalf("implicit non-mitigation missing: %+v", res.Metrics)
	}
	// TNs = non-mitigations - FNs = 0.
	if res.Metrics.TNs != 0 {
		t.Fatalf("TNs = %d", res.Metrics.TNs)
	}
}

func TestReplayAccountingWindow(t *testing.T) {
	cfg := replayCfg()
	cfg.From = t0.Add(5 * time.Hour)
	res := Replay(policies.Always{}, ueScenario(), fixedSampler(5, 1000), cfg)
	// Only the 9h decision and the 10h UE are accounted.
	if res.Decisions != 1 || res.UEs != 1 {
		t.Fatalf("decisions=%d UEs=%d", res.Decisions, res.UEs)
	}
	if math.Abs(res.MitigationCost-cfg.Env.MitigationCostNodeHours()) > 1e-9 {
		t.Fatalf("mitigation cost = %v", res.MitigationCost)
	}
	// The 0h mitigation still reset the baseline (warm-up decisions act):
	// UE cost = 5 nodes x 1h since the 9h mitigation.
	if math.Abs(res.UECost-5) > 1e-9 {
		t.Fatalf("UE cost = %v, want 5", res.UECost)
	}
}

func TestReplayIdenticalWorkloadAcrossPolicies(t *testing.T) {
	// With the same JobSeed, Never and Always see identical job sequences:
	// Always's UE cost can only be <= Never's.
	gen := mathx.NewRNG(3)
	trace := make([]jobs.Job, 50)
	for i := range trace {
		trace[i] = jobs.Job{ID: i, Nodes: 1 + gen.Intn(20),
			Duration: time.Duration(1+gen.Intn(48)) * time.Hour}
	}
	sampler := jobs.NewSampler(trace)
	ticks := ueScenario()
	never := Replay(policies.Never{}, ticks, sampler, replayCfg())
	always := Replay(policies.Always{}, ticks, sampler, replayCfg())
	if always.UECost > never.UECost+1e-9 {
		t.Fatalf("Always UE cost %v > Never %v under identical workload",
			always.UECost, never.UECost)
	}
}

func TestOraclePoints(t *testing.T) {
	ticks := [][]errlog.Tick{{
		mkTick(1, 0, errlog.CE),
		mkTick(1, 9*time.Hour, errlog.CE),
		mkTick(1, 10*time.Hour, errlog.UE),
		mkTick(1, 20*time.Hour, errlog.CE),
	}}
	pts := OraclePoints(ticks, time.Time{}, time.Time{})
	if len(pts) != 1 {
		t.Fatalf("oracle points = %d, want 1", len(pts))
	}
	if !pts[policies.OracleKey{Node: 1, Time: t0.Add(9 * time.Hour)}] {
		t.Fatal("oracle should mitigate at the last event before the UE")
	}
}

func TestOraclePointsWindow(t *testing.T) {
	ticks := ueScenario()
	pts := OraclePoints(ticks, t0.Add(20*time.Hour), time.Time{})
	if len(pts) != 0 {
		t.Fatal("UE outside window must not create oracle points")
	}
}

func TestReplayOracleBeatsEveryone(t *testing.T) {
	ticks := ueScenario()
	sampler := fixedSampler(5, 1000)
	oracle := policies.NewOracle(OraclePoints(ticks, time.Time{}, time.Time{}))
	resO := Replay(oracle, ticks, sampler, replayCfg())
	resN := Replay(policies.Never{}, ticks, sampler, replayCfg())
	resA := Replay(policies.Always{}, ticks, sampler, replayCfg())
	if resO.TotalCost() > resN.TotalCost() || resO.TotalCost() > resA.TotalCost() {
		t.Fatalf("oracle %v not optimal (never %v, always %v)",
			resO.TotalCost(), resN.TotalCost(), resA.TotalCost())
	}
	if resO.Metrics.FPs != 0 || resO.Metrics.Precision() != 1 {
		t.Fatalf("oracle precision must be 1: %+v", resO.Metrics)
	}
}

func TestReplayCostOverride(t *testing.T) {
	cfg := replayCfg()
	cfg.CostOverride = func(*mathx.RNG) float64 { return 42 }
	seen := 0.0
	d := policies.Decider(policyProbe{func(ctx policies.Context) bool {
		seen = ctx.Features[features.UECost]
		return false
	}})
	res := Replay(d, ueScenario(), fixedSampler(5, 1000), cfg)
	if seen != 42 {
		t.Fatalf("override not visible in features: %v", seen)
	}
	if math.Abs(res.UECost-42) > 1e-9 {
		t.Fatalf("override not used for accounting: %v", res.UECost)
	}
}

// policyProbe adapts a func to Decider for tests.
type policyProbe struct {
	f func(policies.Context) bool
}

func (policyProbe) Name() string                     { return "probe" }
func (p policyProbe) Decide(c policies.Context) bool { return p.f(c) }

func TestMLMetricsDerived(t *testing.T) {
	m := MLMetrics{TPs: 3, FNs: 1, FPs: 7, TNs: 89}
	if math.Abs(m.Recall()-0.75) > 1e-12 {
		t.Fatalf("recall = %v", m.Recall())
	}
	if math.Abs(m.Precision()-0.3) > 1e-12 {
		t.Fatalf("precision = %v", m.Precision())
	}
	var zero MLMetrics
	if zero.Recall() != 0 || zero.Precision() != 0 {
		t.Fatal("undefined metrics should return 0")
	}
}

func TestResultAdd(t *testing.T) {
	a := Result{Policy: "x", UECost: 10, MitigationCost: 2, TrainingCost: 1,
		Decisions: 5, UEs: 1, Metrics: MLMetrics{TPs: 1, FNs: 2, FPs: 3, TNs: 4}}
	b := a
	a.Add(b)
	if a.UECost != 20 || a.TotalCost() != 26 || a.Metrics.TPs != 2 {
		t.Fatalf("Add wrong: %+v", a)
	}
}
