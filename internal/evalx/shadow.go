package evalx

import "time"

// ShadowConfig parameterizes a streaming shadow evaluation.
type ShadowConfig struct {
	// MitigationCostNodeHours is the per-action cost charged to a
	// mitigate decision.
	MitigationCostNodeHours float64
	// Restartable reports whether a mitigation establishes a restart
	// point: if true, a UE caught by an in-window mitigation charges no
	// UE cost (the work since the restart point is the mitigation
	// overhead, already charged); if false, the full realized cost is
	// charged regardless — mitigation then only helps through the
	// operational response it triggers, as in the paper's §5.5 ablation.
	Restartable bool
	// Window is the §4.4 prediction window (default 24 h): a UE counts
	// as mitigated when a mitigation completed within this long before.
	Window time.Duration
	// Overhead is the mitigation completion overhead (default 2 min): a
	// mitigation closer to the UE than this cannot complete in time.
	Overhead time.Duration
}

func (c ShadowConfig) withDefaults() ShadowConfig {
	if c.Window <= 0 {
		c.Window = PredictionWindow
	}
	if c.Overhead <= 0 {
		c.Overhead = OracleOverhead
	}
	return c
}

// ShadowEval scores one policy's decision stream against realized UE
// outcomes with the same rolling accounting the replay engine uses, but
// online: decisions and UEs arrive one at a time from live traffic
// instead of from a recorded log. It is how candidate models are scored
// against the incumbent during shadow deployment — both see identical
// traffic, only their decisions differ, so their Results are directly
// comparable.
//
// The accounting mirrors replayNode: every mitigate decision charges the
// mitigation cost; a UE whose node saw a mitigation complete within the
// prediction window is a true positive (UE cost forgiven when
// restartable), otherwise a false negative charging the full realized
// cost. Unlike offline replay there is no workload timeline, so the
// realized UE cost is supplied by the caller (the serving layer's
// potential-cost source at the UE instant).
//
// ShadowEval is not safe for concurrent use; the learning loop owns it.
type ShadowEval struct {
	cfg       ShadowConfig
	res       Result
	recent    map[int][]time.Time
	lastEvent map[int]time.Time
}

// NewShadowEval builds a scorer for the named policy.
func NewShadowEval(name string, cfg ShadowConfig) *ShadowEval {
	return &ShadowEval{
		cfg:       cfg.withDefaults(),
		res:       Result{Policy: name},
		recent:    map[int][]time.Time{},
		lastEvent: map[int]time.Time{},
	}
}

// Decision records one decision for node at time at.
func (s *ShadowEval) Decision(node int, at time.Time, mitigate bool) {
	s.res.Decisions++
	s.lastEvent[node] = at
	if !mitigate {
		s.res.Metrics.NonMitigations++
		return
	}
	s.res.MitigationCost += s.cfg.MitigationCostNodeHours
	s.res.Metrics.Mitigations++
	times := append(s.recent[node], at)
	// Bound per-node memory exactly like the replay engine.
	if len(times) > 64 {
		times = times[len(times)-64:]
	}
	s.recent[node] = times
}

// UE records a realized uncorrected error on node at time at with the
// given realized cost in node–hours.
func (s *ShadowEval) UE(node int, at time.Time, costNodeHours float64) {
	s.res.UEs++
	mitigated := false
	times := s.recent[node]
	for i := len(times) - 1; i >= 0; i-- {
		dt := at.Sub(times[i])
		if dt > s.cfg.Window {
			break
		}
		if dt >= s.cfg.Overhead {
			mitigated = true
			break
		}
	}
	if mitigated {
		s.res.Metrics.TPs++
		if !s.cfg.Restartable {
			s.res.UECost += costNodeHours
		}
	} else {
		s.res.Metrics.FNs++
		s.res.UECost += costNodeHours
		// §4.4 parity with replayNode: a UE with no event on its node in
		// the preceding prediction window is an implicit "no-mitigate"
		// decision — count the non-mitigation so the confusion matrix
		// balances exactly as offline replay reports it.
		last, seen := s.lastEvent[node]
		if !seen || at.Sub(last) > s.cfg.Window {
			s.res.Metrics.NonMitigations++
		}
	}
	s.lastEvent[node] = at
}

// Result returns the accumulated rolling result with the derived
// FP/TN counts filled in, exactly as Replay reports them.
func (s *ShadowEval) Result() Result {
	res := s.res
	res.Metrics.FPs = res.Metrics.Mitigations - res.Metrics.TPs
	res.Metrics.TNs = res.Metrics.NonMitigations - res.Metrics.FNs
	return res
}

// Reset clears the accumulated result and mitigation history, keeping the
// configuration — a new shadow comparison window starts clean.
func (s *ShadowEval) Reset() {
	s.res = Result{Policy: s.res.Policy}
	for k := range s.recent {
		delete(s.recent, k)
	}
	for k := range s.lastEvent {
		delete(s.lastEvent, k)
	}
}
