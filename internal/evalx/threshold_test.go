package evalx

import (
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/errlog"
	"repro/internal/features"
	"repro/internal/jobs"
	"repro/internal/policies"
	"repro/internal/rf"
)

// thresholdWorld builds a tiny deterministic replay world: a forest that
// has learned "many CEs → UE", one node whose CE count escalates into a
// UE, and one quiet node with a few background CEs.
func thresholdWorld(t *testing.T) (*rf.Forest, [][]errlog.Tick, *jobs.Sampler, ReplayConfig) {
	t.Helper()

	// Training set: high cumulative CE count predicts a UE.
	var xs [][]float64
	var ys []bool
	for i := 0; i < 40; i++ {
		row := make([]float64, features.PredictorDim)
		if i%2 == 0 {
			row[features.CEsTotal] = 400 + float64(i)
			row[features.CEsSinceLastEvent] = 20
			ys = append(ys, true)
		} else {
			row[features.CEsTotal] = float64(i)
			ys = append(ys, false)
		}
		xs = append(xs, row)
	}
	forest := rf.TrainForest(xs, ys, rf.DefaultForestConfig())

	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	ce := func(node, count int, at time.Time) errlog.Tick {
		return errlog.Tick{Time: at, Node: node, Events: []errlog.Event{{
			Time: at, Node: node, DIMM: 0, Type: errlog.CE, Count: count,
			Rank: 0, Bank: 0, Row: 1, Col: 1,
		}}}
	}
	ue := func(node int, at time.Time) errlog.Tick {
		return errlog.Tick{Time: at, Node: node, Events: []errlog.Event{{
			Time: at, Node: node, DIMM: 0, Type: errlog.UE, Count: 1,
			Rank: -1, Bank: -1, Row: -1, Col: -1,
		}}}
	}

	var failing, quiet []errlog.Tick
	for i := 0; i < 30; i++ {
		failing = append(failing, ce(0, 30, start.Add(time.Duration(i)*time.Hour)))
	}
	failing = append(failing, ue(0, start.Add(31*time.Hour)))
	for i := 0; i < 5; i++ {
		quiet = append(quiet, ce(1, 1, start.Add(time.Duration(i*7)*time.Hour)))
	}

	trace := []jobs.Job{{ID: 1, Nodes: 64, Duration: 12 * time.Hour}}
	cfg := ReplayConfig{Env: env.DefaultConfig(), JobSeed: 1}
	return forest, [][]errlog.Tick{failing, quiet}, jobs.NewSampler(trace), cfg
}

func TestOptimalThresholdPicksArgmin(t *testing.T) {
	forest, byNode, sampler, cfg := thresholdWorld(t)
	grid := []float64{0.05, 0.3, 0.6, 0.95}

	best, bestCost := OptimalThreshold(forest, grid, byNode, sampler, cfg)

	// The returned pair must be the exact argmin of independent replays
	// over the same grid (first minimum wins on ties).
	wantThr, wantCost, first := 0.0, 0.0, true
	for _, thr := range grid {
		res := Replay(&policies.RFThreshold{Forest: forest, Threshold: thr}, byNode, sampler, cfg)
		if first || res.TotalCost() < wantCost {
			wantThr, wantCost, first = thr, res.TotalCost(), false
		}
	}
	if best != wantThr || bestCost != wantCost {
		t.Fatalf("OptimalThreshold = (%v, %v), want argmin (%v, %v)", best, bestCost, wantThr, wantCost)
	}

	// With an escalating-CE node failing after a clear signal, some grid
	// threshold must beat the most conservative one: the search must not
	// degenerate to "never fire" when the signal is learnable.
	never := Replay(policies.Never{}, byNode, sampler, cfg)
	if bestCost > never.TotalCost() {
		t.Fatalf("optimal threshold cost %v worse than never-mitigate %v", bestCost, never.TotalCost())
	}
}

func TestOptimalThresholdEmptyGridUsesDefault(t *testing.T) {
	forest, byNode, sampler, cfg := thresholdWorld(t)
	best, _ := OptimalThreshold(forest, nil, byNode, sampler, cfg)
	found := false
	for _, thr := range DefaultThresholdGrid {
		if best == thr {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("threshold %v not in DefaultThresholdGrid", best)
	}
}

func TestPerturbThresholdTable(t *testing.T) {
	cases := []struct {
		optimal, offset, want float64
	}{
		{0.5, 0.02, 0.48},            // ordinary downward shift
		{0.5, 0.05, 0.45},            // paper's 5% variant
		{0.01, 0.05, 0.005},          // clamped at the floor
		{1.2, 0.0, 0.995},            // clamped at the ceiling
		{0.005, 0.0, 0.005},          // already at the floor
		{0.02, 0.02, 0.005},          // exact zero clamps up
		{0.9999, -0.0049, 0.995 + 0}, // negative offset still ceiling-clamped
	}
	for _, c := range cases {
		if got := PerturbThreshold(c.optimal, c.offset); got != c.want {
			t.Errorf("PerturbThreshold(%v, %v) = %v, want %v", c.optimal, c.offset, got, c.want)
		}
	}
}
