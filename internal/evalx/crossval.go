package evalx

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/env"
	"repro/internal/errlog"
	"repro/internal/features"
	"repro/internal/jobs"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/parx"
	"repro/internal/policies"
	"repro/internal/rf"
	"repro/internal/rl"
)

// Preset selects the compute budget of the evaluation protocol (DESIGN.md
// §4). The paper's full protocol (60-candidate random search × 20,000
// episodes × 6 splits) is CPU-days; the smaller presets preserve the
// protocol's structure at laptop scale.
type Preset int

const (
	// PresetCI: fixed hyperparameters, tens of episodes. Seconds.
	PresetCI Preset = iota
	// PresetDefault: small candidate search, hundreds of episodes. Minutes.
	PresetDefault
	// PresetPaper: the paper's §4.1 protocol. Hours to days.
	PresetPaper
)

// CVConfig parameterizes the §4.1 time-series nested cross-validation.
type CVConfig struct {
	// Parts is the number of equal time parts (6 in the paper).
	Parts int
	// Env carries mitigation cost and restartability.
	Env env.Config
	// Preset selects the compute budget.
	Preset Preset
	// Seed drives job sequences, hyperparameter search and training.
	Seed int64
	// Forest configures the SC20-RF baseline.
	Forest rf.ForestConfig
	// ThresholdOffsets are the §4.2 suboptimal SC20-RF variants (absolute
	// probability offsets; the paper uses 2% and 5%).
	ThresholdOffsets []float64
	// IncludeRL can be disabled for baseline-only runs.
	IncludeRL bool
	// RLEpisodes overrides the preset's per-candidate episode budget when
	// positive.
	RLEpisodes int
	// TrainParallelism bounds the hyperparameter-search worker pool: 0
	// selects GOMAXPROCS, 1 trains candidates serially. Each in-flight
	// candidate holds its own networks and replay buffer (~10+ MB at
	// paper scale), so memory-constrained runs should bound this.
	// Selection is deterministic for every value.
	TrainParallelism int
	// Cache, when non-nil, memoizes the config-invariant artifacts (tick
	// pipeline, per-split RF datasets and forests, optimal thresholds,
	// trained RL policies) across runs sharing a Cache — e.g. the full
	// figure suite over one experiments.World. Results are identical with
	// or without it.
	Cache *Cache
	// Kernel pins the nn kernel/stream version RL training runs under. Zero
	// selects nn.KernelFast (the FMA kernels, chunked data-parallel
	// training, PCG env RNG); nn.KernelReference reproduces the training
	// trajectories of pre-versioned seeds bit-exactly. Either stream is
	// fully deterministic; they differ only in floating-point rounding.
	Kernel int
}

// kernel resolves the configured kernel version.
func (c CVConfig) kernel() int {
	if c.Kernel == 0 {
		return nn.KernelFast
	}
	return c.Kernel
}

// ResolvedKernel reports the kernel/stream version RL training actually
// runs under: CVConfig.Kernel, with zero resolved to the nn.KernelFast
// default. Callers use it to stamp trained artifacts (ModelHeader
// training metadata) with the stream that produced them.
func (c CVConfig) ResolvedKernel() int { return c.kernel() }

// DefaultCVConfig returns the paper's protocol with the given preset.
func DefaultCVConfig(p Preset) CVConfig {
	return CVConfig{
		Parts:            6,
		Env:              env.DefaultConfig(),
		Preset:           p,
		Seed:             1,
		Forest:           rf.DefaultForestConfig(),
		ThresholdOffsets: []float64{0.02, 0.05},
		IncludeRL:        true,
	}
}

// SplitResult is one split's evaluation.
type SplitResult struct {
	Split    int
	From, To time.Time
	Results  []Result
}

// CVResult aggregates the cross-validation.
type CVResult struct {
	Splits []SplitResult
	// Totals sums each policy across splits, in the same order as the
	// per-split results.
	Totals []Result
}

// Find returns the summed result for the named policy.
func (r CVResult) Find(name string) (Result, bool) {
	for _, res := range r.Totals {
		if res.Policy == name {
			return res, true
		}
	}
	return Result{}, false
}

// episodeBudget returns the per-candidate training episodes for a preset.
func (c CVConfig) episodeBudget() int {
	if c.RLEpisodes > 0 {
		return c.RLEpisodes
	}
	switch c.Preset {
	case PresetPaper:
		return 20000
	case PresetDefault:
		return 1200
	default:
		return 800
	}
}

// ueNodeBoost returns the episode-sampling boost for UE nodes. The paper's
// 20,000-episode protocol samples nodes uniformly; the scaled presets boost
// failing nodes so the agent still experiences enough UEs to learn from.
// The matching reward correction is applied by the environment (see
// env.Config.UENodeBoost); the boost is kept moderate because the
// immediate mitigation penalty is learned much faster than the
// bootstrapped UE-avoidance benefit, so an aggressive boost with full
// correction suppresses mitigation at small budgets.
func (c CVConfig) ueNodeBoost() float64 {
	if c.Preset == PresetPaper {
		return 1
	}
	return 15
}

// hyperCandidates returns the agent configurations searched per split
// (§4.1 tunes learning rate, gamma, network update/sync frequencies and
// the replay batch size).
func (c CVConfig) hyperCandidates(stateLen int, seed int64) []rl.AgentConfig {
	base := rl.AgentConfig{
		StateLen:   stateLen,
		NumActions: env.NumActions,
		Dueling:    true,
		DoubleDQN:  true,
		HuberDelta: 1,
		GradClip:   10,
		TrainEvery: 4, // standard DQN practice: one update per 4 env steps
		Epsilon:    rl.EpsilonSchedule{Start: 1, End: 0.02, DecaySteps: 4000},
		Seed:       seed,
	}
	mk := func(hidden []int, lr, gamma float64, batch, sync int) rl.AgentConfig {
		a := base
		a.Hidden = hidden
		a.LearningRate = lr
		a.Gamma = gamma
		a.BatchSize = batch
		a.SyncEvery = sync
		return a
	}
	switch c.Preset {
	case PresetPaper:
		// The paper's round-1 random search draws 60 candidates; here the
		// space is enumerated around its round-2 neighbourhood with the
		// paper's 256-256-128-64 architecture.
		var out []rl.AgentConfig
		rng := mathx.NewRNG(seed)
		lrs := []float64{3e-4, 1e-3, 3e-3}
		gammas := []float64{0.9, 0.95, 0.99}
		batches := []int{32, 64, 128}
		syncs := []int{250, 500, 1000}
		for i := 0; i < 60; i++ {
			a := mk([]int{256, 256, 128, 64},
				lrs[rng.Intn(len(lrs))], gammas[rng.Intn(len(gammas))],
				batches[rng.Intn(len(batches))], syncs[rng.Intn(len(syncs))])
			a.Seed = seed + int64(i)
			out = append(out, a)
		}
		return out
	case PresetDefault:
		// The default search space is centred on the configuration the CI
		// smoke runs validated (high gamma matters: the mitigation benefit
		// arrives many events after the action).
		return []rl.AgentConfig{
			mk([]int{32, 16}, 3e-3, 0.99, 32, 200),
			mk([]int{64, 64, 32}, 3e-3, 0.99, 32, 200),
			mk([]int{64, 32}, 1e-3, 0.99, 64, 500),
		}
	default:
		return []rl.AgentConfig{mk([]int{32, 16}, 3e-3, 0.99, 32, 200)}
	}
}

// ticksUpTo trims each node's sequence to ticks before t. Per-node tick
// sequences are time-sorted, so the boundary is a binary search instead of
// the full rescans the split loops used to pay.
func ticksUpTo(byNode [][]errlog.Tick, t time.Time) [][]errlog.Tick {
	out := make([][]errlog.Tick, 0, len(byNode))
	for _, ticks := range byNode {
		end := sort.Search(len(ticks), func(i int) bool {
			return !ticks[i].Time.Before(t)
		})
		if end > 0 {
			out = append(out, ticks[:end])
		}
	}
	return out
}

// hasUEIn reports whether any UE event time in the precomputed sorted
// index (Cache.Ticks' UETimes) falls in [from, to). It replaces the old
// full tick-stream rescan with two binary searches.
func hasUEIn(ueTimes []time.Time, from, to time.Time) bool {
	i := sort.Search(len(ueTimes), func(i int) bool {
		return !ueTimes[i].Before(from)
	})
	return i < len(ueTimes) && ueTimes[i].Before(to)
}

// RunCV executes the §4.1 protocol: the log is preprocessed, divided into
// Parts equal time parts, and for each split a model is trained on data
// preceding the test part (75% train / 25% validation; the first split uses
// the first two weeks), then every §4.2 policy is evaluated on the test
// part. Totals accumulate across splits.
func RunCV(log *errlog.Log, trace []jobs.Job, cfg CVConfig) CVResult {
	if cfg.Parts < 2 {
		panic(fmt.Sprintf("evalx: Parts must be at least 2, got %d", cfg.Parts))
	}
	art := cfg.Cache.Ticks(log)
	sampler := cfg.Cache.Sampler(trace)
	bounds := errlog.SplitParts(art.Pre, cfg.Parts)
	start := bounds[0]
	world := cvWorld{log: log, art: art, sampler: sampler}

	var cv CVResult
	var warmStart *nn.Network

	for k := 0; k < cfg.Parts; k++ {
		testFrom, testTo := bounds[k], bounds[k+1]
		var trainTo, valFrom time.Time
		if k == 0 {
			// First split: first two weeks for training and validation.
			trainTo = start.Add(14 * 24 * time.Hour)
			valFrom = start.Add(10 * 24 * time.Hour)
			testFrom = trainTo
		} else {
			span := bounds[k].Sub(start)
			trainTo = bounds[k]
			valFrom = start.Add(time.Duration(float64(span) * 0.75))
		}

		split := evaluateSplit(cfg, world, splitSpec{
			index: k, start: start,
			trainTo: trainTo, valFrom: valFrom,
			testFrom: testFrom, testTo: testTo,
		}, &warmStart)
		cv.Splits = append(cv.Splits, split)
	}

	// Aggregate totals by policy order of the first split.
	if len(cv.Splits) > 0 {
		cv.Totals = make([]Result, len(cv.Splits[0].Results))
		for i := range cv.Totals {
			cv.Totals[i].Policy = cv.Splits[0].Results[i].Policy
		}
		for _, s := range cv.Splits {
			for i, r := range s.Results {
				cv.Totals[i].Add(r)
			}
		}
	}
	return cv
}

// SingleSplit is a trained single-split world: models fitted on the first
// trainFrac of the log's span, with everything needed to replay policies on
// the held-out tail. It backs the Figure 6 behaviour study, the Table 2
// cost-range rows, and the ablation benches.
type SingleSplit struct {
	// Net is the trained RL online network (nil when IncludeRL is false).
	// Callers clone it before mutating or serving; it may be shared with a
	// cache (CVConfig.Cache) and with Policy.
	Net *nn.Network
	// Policy is the frozen greedy policy of Net.
	Policy rl.Policy
	// Forest is the SC20-RF model with its optimal Threshold.
	Forest    *rf.Forest
	Threshold float64
	// ByNode holds the preprocessed, merged per-node ticks of the full log.
	ByNode [][]errlog.Tick
	// Sampler is the node-weighted job sampler.
	Sampler *jobs.Sampler
	// TrainTo is the train/test boundary; the test window is [TrainTo, ∞).
	TrainTo time.Time
	// Env carries the mitigation-cost configuration.
	Env env.Config
}

// TrainSingleSplit trains the RF and RL models on the first trainFrac of
// the log span and returns the fitted split.
func TrainSingleSplit(log *errlog.Log, trace []jobs.Job, cfg CVConfig, trainFrac float64) SingleSplit {
	art := cfg.Cache.Ticks(log)
	byNode := art.ByNode
	sampler := cfg.Cache.Sampler(trace)
	first, last := art.Pre.Span()
	trainTo := first.Add(time.Duration(float64(last.Sub(first)) * trainFrac))

	spec := splitSpec{
		index: 0, start: first,
		trainTo: trainTo,
		valFrom: first.Add(time.Duration(float64(trainTo.Sub(first)) * 0.75)),
	}

	out := SingleSplit{ByNode: byNode, Sampler: sampler, TrainTo: trainTo, Env: cfg.Env}

	forest, trained, _ := cfg.Cache.forest(log, byNode, trainTo, cfg.Forest, func(ds RFDataset) (*rf.Forest, bool) {
		if len(ds.X) > 0 && ds.Positives() > 0 {
			return rf.TrainForest(ds.X, ds.Y, cfg.Forest), true
		}
		return rf.TrainForest([][]float64{make([]float64, features.PredictorDim)}, []bool{false}, cfg.Forest), false
	})
	out.Forest = forest
	if trained {
		// As in evaluateSplit, the threshold gets the §4.2 "maximum
		// advantage" treatment: optimal on the held-out window.
		out.Threshold, _ = cfg.Cache.threshold(out.Forest, byNode, sampler, ReplayConfig{
			Env: cfg.Env, JobSeed: cfg.Seed, From: trainTo,
		})
	} else {
		out.Threshold = 0.99
	}

	if cfg.IncludeRL {
		// split = -1 keeps single-split artifacts from colliding with the
		// cross-validation warm-start chain (whose split-k artifacts assume
		// split k-1's warm input).
		key := rlKey{
			log: log, sampler: sampler, env: cfg.Env,
			seed: cfg.Seed, preset: cfg.Preset, episodes: cfg.episodeBudget(),
			parts: cfg.Parts, split: -1,
			trainTo: spec.trainTo.UnixNano(), valFrom: spec.valFrom.UnixNano(),
			kernel: cfg.kernel(),
		}
		out.Policy, out.Net, _ = cfg.Cache.rlPolicy(key, func() (rl.Policy, *nn.Network) {
			trainTicks := ticksUpTo(byNode, trainTo)
			useValidation := hasUEIn(art.UETimes, spec.valFrom, spec.trainTo)
			return trainRL(cfg, trainTicks, sampler, spec, useValidation, nil)
		})
	}
	return out
}

// splitSpec carries one split's window boundaries.
type splitSpec struct {
	index            int
	start            time.Time
	trainTo, valFrom time.Time
	testFrom, testTo time.Time
}

// cvWorld bundles the memoized inputs one cross-validation run evaluates
// against: the source log (the cache key), its tick pipeline, and the
// node-weighted job sampler.
type cvWorld struct {
	log     *errlog.Log
	art     *TickArtifacts
	sampler *jobs.Sampler
}

// evaluateSplit trains the models for one split and evaluates all policies
// on its test window.
func evaluateSplit(cfg CVConfig, world cvWorld, spec splitSpec, warm **nn.Network) SplitResult {
	byNode, sampler := world.art.ByNode, world.sampler
	jobSeed := cfg.Seed + int64(spec.index)*101
	replayCfg := ReplayConfig{Env: cfg.Env, JobSeed: jobSeed, From: spec.testFrom, To: spec.testTo}

	// --- SC20-RF: train the forest on the training window. The decision
	// threshold is chosen to minimize total cost on the *test* window:
	// §4.2 grants SC20-RF "maximum advantage by using the optimal
	// threshold parameter", and §4.3 excludes the (possibly significant)
	// cost of determining it. The ±2%/±5% variants model realistic
	// threshold selection.
	//
	// Both artifacts go through the cache: the forest (and its training
	// set) is invariant across mitigation costs, so Figure 3's three cost
	// points and the other figures sharing a World train it once; the
	// optimal threshold additionally depends on the replay environment.
	// The charged §4.3 cost is the wallclock recorded when the artifact
	// was computed, so warm runs account the same training cost cold runs
	// measured.
	fc := cfg.Forest
	fc.Seed = cfg.Seed + int64(spec.index)
	forest, trained, rfCost := cfg.Cache.forest(world.log, byNode, spec.trainTo, fc, func(ds RFDataset) (*rf.Forest, bool) {
		if len(ds.X) > 0 && ds.Positives() > 0 {
			return rf.TrainForest(ds.X, ds.Y, fc), true
		}
		// No positives yet (early split): a forest that never fires.
		return rf.TrainForest([][]float64{make([]float64, features.PredictorDim)}, []bool{false}, cfg.Forest), false
	})
	thrOpt := 0.99
	if trained {
		var thrCost float64
		thrOpt, thrCost = cfg.Cache.threshold(forest, byNode, sampler, replayCfg)
		rfCost += thrCost
	}

	// --- RL: train candidates on the training window, select on the
	// validation window (falling back to the training window when it has
	// no UEs, §4.1).
	var rlPolicy rl.Policy
	rlCost := 0.0
	if cfg.IncludeRL {
		key := rlKey{
			log: world.log, sampler: sampler, env: cfg.Env,
			seed: cfg.Seed, preset: cfg.Preset, episodes: cfg.episodeBudget(),
			parts: cfg.Parts, split: spec.index,
			trainTo: spec.trainTo.UnixNano(), valFrom: spec.valFrom.UnixNano(),
			kernel: cfg.kernel(),
		}
		warmIn := *warm
		var rlNet *nn.Network
		rlPolicy, rlNet, rlCost = cfg.Cache.rlPolicy(key, func() (rl.Policy, *nn.Network) {
			trainTicks := ticksUpTo(byNode, spec.trainTo)
			useValidation := hasUEIn(world.art.UETimes, spec.valFrom, spec.trainTo)
			return trainRL(cfg, trainTicks, sampler, spec, useValidation, warmIn)
		})
		// On hits the warm chain advances to the cached winner, so a later
		// cold split trains from exactly the net a fully cold run would see.
		*warm = rlNet
	}

	// --- Assemble deciders.
	ds2 := []policies.Decider{
		policies.Never{},
		policies.Always{},
		&policies.RFThreshold{Forest: forest, Threshold: thrOpt},
	}
	for _, off := range cfg.ThresholdOffsets {
		ds2 = append(ds2, &policies.RFThreshold{
			Forest:    forest,
			Threshold: PerturbThreshold(thrOpt, off),
			Label:     fmt.Sprintf("SC20-RF-%g%%", off*100),
		})
	}
	ds2 = append(ds2, &policies.MyopicRF{Forest: forest, MitigationCostNodeHours: cfg.Env.MitigationCostNodeHours()})
	if rlPolicy != nil {
		ds2 = append(ds2, &policies.RL{Policy: rlPolicy})
	}
	ds2 = append(ds2, policies.NewOracle(world.art.OraclePoints(spec.testFrom, spec.testTo)))

	results := ReplayAll(ds2, byNode, sampler, replayCfg)
	for i := range results {
		switch {
		case results[i].Policy == "RL":
			results[i].TrainingCost = rlCost
		case results[i].Policy == "SC20-RF" || results[i].Policy == "Myopic-RF":
			results[i].TrainingCost = rfCost
		}
	}
	return SplitResult{Split: spec.index, From: spec.testFrom, To: spec.testTo, Results: results}
}

// trainRL runs the per-split hyperparameter search and returns the frozen
// policy and online network of the best candidate.
//
// Candidates are independent given the incoming warm-start network (which is
// only cloned), so they train and score across a bounded worker pool. The
// winner is reduced deterministically — lowest validation cost, ties broken
// by candidate index — which is exactly the serial loop's selection rule,
// so the search returns the same model for any worker count.
//
// Under nn.KernelFast (the default, see CVConfig.Kernel) each candidate
// trains data-parallel: rl.TrainVec steps DefaultEnvFanout environments
// per round (each with its own pre-seeded PCG stream) and the chunked
// trainer reduces minibatch gradients in chunk-index order, so results stay
// bit-identical for every worker count. nn.KernelReference reproduces the
// pre-versioned serial trajectories exactly.
func trainRL(cfg CVConfig, trainTicks [][]errlog.Tick, sampler *jobs.Sampler, spec splitSpec, useValidation bool, warmStart *nn.Network) (rl.Policy, *nn.Network) {
	if len(trainTicks) == 0 {
		return rl.PolicyFunc(func([]float64) int { return env.ActionNone }), nil
	}
	kernel := cfg.kernel()
	episodes := cfg.episodeBudget()
	candidates := cfg.hyperCandidates(features.Dim, cfg.Seed+int64(spec.index)*7)

	// useValidation is precomputed by the caller from the sorted UE-time
	// index: the validation window [valFrom, trainTo) selects the winner
	// only when it contains a UE (§4.1), falling back to the training
	// window otherwise.
	valFrom, valTo := spec.valFrom, spec.trainTo

	// Reduce to a running minimum as candidates finish instead of retaining
	// every trained agent until the end: losers become garbage immediately,
	// so peak memory is one agent per in-flight worker (TrainParallelism)
	// rather than one per candidate (~60 agents of 10+ MB each at paper
	// scale). The total order (cost, candidate index) reproduces the serial
	// selection rule — lowest cost, ties to the earliest candidate — for
	// any completion order.
	var (
		bestMu   sync.Mutex
		bestIdx  = -1
		bestCost float64
		bestAg   *rl.Agent
	)
	parx.For(len(candidates), cfg.TrainParallelism, func(ci int) {
		ac := candidates[ci]
		ac.Kernel = kernel
		envCfg := cfg.Env
		envCfg.Seed = cfg.Seed + int64(spec.index)*1000 + int64(ci)
		envCfg.UENodeBoost = cfg.ueNodeBoost()
		envCfg.FastRNG = kernel == nn.KernelFast
		if cfg.Preset != PresetPaper {
			envCfg.FocusUEWindow = 400
			// A larger reward scale keeps the (tiny) mitigation penalty
			// visible against Huber-clipped UE-cost updates at small
			// training budgets.
			envCfg.RewardScale = 0.05
		}
		agent := rl.NewAgent(ac, rl.NewPrioritizedReplay(rl.PERConfig{
			Capacity: 1 << 15, Alpha: 0.6, Beta: 0.4, BetaSteps: episodes * 20,
			FastPow: kernel == nn.KernelFast,
		}))
		// §4.1: subsequent splits train a mix of previously trained and
		// untrained models. Warm-start alternate candidates (Clone only
		// reads the shared warm network).
		if warmStart != nil && ci%2 == 1 {
			agent.SetOnline(warmStart.Clone())
		}
		opts := rl.TrainOptions{Episodes: episodes, MaxStepsPerEpisode: 4096}
		if kernel == nn.KernelFast {
			// Vectorized training: a fanout of environments share the agent,
			// each replaying a different node/job stream from its own
			// pre-seeded RNG. The large stride keeps slot seeds disjoint
			// from the per-candidate seeds above.
			envs := make([]rl.Environment, rl.DefaultEnvFanout)
			for slot := range envs {
				slotCfg := envCfg
				slotCfg.Seed = envCfg.Seed + int64(slot)*1_000_003
				envs[slot] = env.NewMitigationEnv(slotCfg, trainTicks, sampler)
			}
			rl.TrainVec(agent, envs, opts)
		} else {
			rl.Train(agent, env.NewMitigationEnv(envCfg, trainTicks, sampler), opts)
		}

		// Score the candidate. Scoring replays serially: the candidates
		// themselves already occupy the worker pool.
		pol := &policies.RL{Policy: agent.SnapshotPolicy()}
		scoreCfg := ReplayConfig{Env: cfg.Env, JobSeed: cfg.Seed + 999, From: valFrom, To: valTo, Parallelism: 1}
		if !useValidation {
			scoreCfg.From, scoreCfg.To = time.Time{}, spec.trainTo
		}
		cost := Replay(pol, trainTicks, sampler, scoreCfg).TotalCost()

		bestMu.Lock()
		if bestIdx < 0 || cost < bestCost || (cost == bestCost && ci < bestIdx) {
			bestIdx, bestCost, bestAg = ci, cost, agent
		}
		bestMu.Unlock()
	})

	return bestAg.SnapshotPolicy(), bestAg.Online()
}
