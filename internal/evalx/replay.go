// Package evalx implements the paper's evaluation methodology (§4): policy
// replay over error-log ticks with full cost–benefit accounting in
// node–hours (§4.3), the classical machine-learning metrics with a one-day
// prediction window (§4.4), the SC20-RF optimal-threshold protocol, RF
// training-set construction, and the time-series nested cross-validation
// driver (§4.1).
//
//uerl:deterministic
package evalx

import (
	"fmt"
	"time"

	"repro/internal/env"
	"repro/internal/errlog"
	"repro/internal/features"
	"repro/internal/jobs"
	"repro/internal/mathx"
	"repro/internal/parx"
	"repro/internal/policies"
)

// PredictionWindow is the §4.4 window: a UE counts as mitigated if a
// mitigation completed within the preceding 24 hours.
const PredictionWindow = 24 * time.Hour

// MLMetrics are the §4.4 classification counts and derived metrics.
type MLMetrics struct {
	TPs, FNs, FPs, TNs int
	// Mitigations = TPs + FPs; NonMitigations = TNs + FNs.
	Mitigations, NonMitigations int
}

// Recall returns TPs/(TPs+FNs), or 0 when undefined.
func (m MLMetrics) Recall() float64 {
	d := m.TPs + m.FNs
	if d == 0 {
		return 0
	}
	return float64(m.TPs) / float64(d)
}

// Precision returns TPs/(TPs+FPs), or 0 when undefined (reported as "n/a"
// by the tooling, as for Never-mitigate in Table 2).
func (m MLMetrics) Precision() float64 {
	d := m.TPs + m.FPs
	if d == 0 {
		return 0
	}
	return float64(m.TPs) / float64(d)
}

// Result is one policy's evaluation outcome over an accounting window.
type Result struct {
	Policy string
	// UECost is the total realized UE cost in node–hours.
	UECost float64
	// MitigationCost is the total cost of mitigation actions in
	// node–hours (plus any training cost added by the caller, §4.3).
	MitigationCost float64
	// TrainingCost is the model training/validation cost charged (§4.3).
	TrainingCost float64
	// Decisions is the number of policy invocations accounted.
	Decisions int
	// UEs is the number of uncorrected errors accounted.
	UEs int
	// Metrics are the §4.4 classification metrics.
	Metrics MLMetrics
}

// TotalCost is the §4.3 figure of merit: UE cost plus mitigation cost plus
// training cost, in node–hours.
func (r Result) TotalCost() float64 { return r.UECost + r.MitigationCost + r.TrainingCost }

// Add accumulates another result (e.g. across cross-validation splits).
func (r *Result) Add(o Result) {
	r.UECost += o.UECost
	r.MitigationCost += o.MitigationCost
	r.TrainingCost += o.TrainingCost
	r.Decisions += o.Decisions
	r.UEs += o.UEs
	r.Metrics.TPs += o.Metrics.TPs
	r.Metrics.FNs += o.Metrics.FNs
	r.Metrics.FPs += o.Metrics.FPs
	r.Metrics.TNs += o.Metrics.TNs
	r.Metrics.Mitigations += o.Metrics.Mitigations
	r.Metrics.NonMitigations += o.Metrics.NonMitigations
}

// ReplayConfig parameterizes a replay.
type ReplayConfig struct {
	// Env carries the mitigation cost and restartability.
	Env env.Config
	// JobSeed seeds the per-node job sequences. The same seed gives every
	// policy an identical workload, making costs directly comparable.
	JobSeed int64
	// Window restricts accounting to [From, To); zero values disable the
	// bound. Decisions are still made outside the window (warm-up), they
	// are just not accounted.
	From, To time.Time
	// CostOverride, when non-nil, replaces the potential-UE-cost feature
	// (and the accounted UE cost) with a synthetic draw — used for the
	// Table 2 uniform cost-range rows. It is invoked once per decision.
	CostOverride func(rng *mathx.RNG) float64
	// Parallelism bounds the per-node replay worker pool: 0 selects
	// GOMAXPROCS, 1 forces serial replay. Results are bit-identical for
	// every value — each node replays against its own pre-forked RNG and
	// per-node results reduce in node order — so parallelism is purely a
	// wall-clock knob. Deciders that do not declare themselves
	// concurrency-safe (policies.ConcurrentDecider) replay serially
	// regardless.
	Parallelism int
}

// inWindow reports whether t falls inside the accounting window.
func (c ReplayConfig) inWindow(t time.Time) bool {
	if !c.From.IsZero() && t.Before(c.From) {
		return false
	}
	if !c.To.IsZero() && !t.Before(c.To) {
		return false
	}
	return true
}

// Replay runs one policy over the per-node tick sequences, accounting costs
// and classification metrics inside the configured window. All policies
// replayed with the same ReplayConfig see identical job sequences.
//
// Nodes are independent worlds, so they replay in parallel across a bounded
// worker pool (ReplayConfig.Parallelism). Determinism is preserved by
// construction: per-node RNGs are forked serially in node order before any
// worker starts, each worker accumulates into its own per-node Result, and
// the partials reduce in node order — so serial and parallel runs produce
// bit-identical Results.
func Replay(d policies.Decider, ticksByNode [][]errlog.Tick, sampler *jobs.Sampler, cfg ReplayConfig) Result {
	res := Result{Policy: d.Name()}
	rng := mathx.NewRNG(cfg.JobSeed)

	type nodeWork struct {
		ticks []errlog.Tick
		rng   *mathx.RNG
	}
	work := make([]nodeWork, 0, len(ticksByNode))
	for _, ticks := range ticksByNode {
		if len(ticks) == 0 {
			continue
		}
		work = append(work, nodeWork{ticks: ticks, rng: rng.Fork()})
	}

	workers := parx.Workers(cfg.Parallelism)
	if !policies.IsConcurrentSafe(d) {
		workers = 1
	}
	partials := make([]Result, len(work))
	parx.For(len(work), workers, func(i int) {
		replayNode(d, work[i].ticks, sampler, cfg, work[i].rng, &partials[i])
	})
	for i := range partials {
		res.Add(partials[i])
	}
	res.Metrics.FPs = res.Metrics.Mitigations - res.Metrics.TPs
	res.Metrics.TNs = res.Metrics.NonMitigations - res.Metrics.FNs
	return res
}

// replayNode replays one node's tick sequence.
func replayNode(d policies.Decider, ticks []errlog.Tick, sampler *jobs.Sampler, cfg ReplayConfig, rng *mathx.RNG, res *Result) {
	tracker := features.NewTracker()
	tl := env.NewTimeline(sampler, rng.Fork(), cfg.Env.Restartable, ticks[0].Time)
	costRNG := rng.Fork()
	mitCost := cfg.Env.MitigationCostNodeHours()
	overhead := time.Duration(cfg.Env.MitigationCostNodeMinutes * float64(time.Minute))

	// Recent mitigation times (for the §4.4 prediction window) and the
	// last event time (to detect UEs with no event in the preceding day).
	var mitigations []time.Time
	var lastEvent time.Time
	var haveEvent bool
	lastOverride := 0.0

	for _, tick := range ticks {
		tl.AdvanceTo(tick.Time)
		if tick.HasUE() {
			ut := ueEventTime(tick)
			cost := tl.OnUE(ut)
			if cfg.CostOverride != nil {
				cost = lastOverride
			}
			tracker.Observe(tick, 0)
			if cfg.inWindow(ut) {
				res.UEs++
				res.UECost += cost
				// §4.4: TP if a mitigation completed within the preceding
				// 24 h (initiated at least the mitigation overhead before
				// the UE); otherwise FN. UEs with no event in the window
				// are implicit "no-mitigate" false negatives.
				mitigated := false
				for i := len(mitigations) - 1; i >= 0; i-- {
					dt := ut.Sub(mitigations[i])
					if dt > PredictionWindow {
						break
					}
					if dt >= overhead {
						mitigated = true
						break
					}
				}
				if mitigated {
					res.Metrics.TPs++
				} else {
					res.Metrics.FNs++
					if !haveEvent || ut.Sub(lastEvent) > PredictionWindow {
						// Implicit non-mitigation for the unreachable UE.
						res.Metrics.NonMitigations++
					}
				}
			}
			lastEvent, haveEvent = ut, true
			continue
		}

		ueCost := tl.CostAt(tick.Time)
		if cfg.CostOverride != nil {
			ueCost = cfg.CostOverride(costRNG)
			lastOverride = ueCost
		}
		v := tracker.Observe(tick, ueCost)
		mitigate := d.Decide(policies.Context{Node: tick.Node, Time: tick.Time, Features: v})
		if mitigate {
			tl.Mitigate(tick.Time)
			mitigations = append(mitigations, tick.Time)
			// Trim the window to bound memory.
			if len(mitigations) > 64 {
				mitigations = mitigations[len(mitigations)-64:]
			}
		}
		if cfg.inWindow(tick.Time) {
			res.Decisions++
			if mitigate {
				res.MitigationCost += mitCost
				res.Metrics.Mitigations++
			} else {
				res.Metrics.NonMitigations++
			}
		}
		lastEvent, haveEvent = tick.Time, true
	}
}

// ueEventTime returns the first UE timestamp in the tick.
func ueEventTime(t errlog.Tick) time.Time {
	for _, ev := range t.Events {
		if ev.Type == errlog.UE {
			return ev.Time
		}
	}
	return t.Time
}

// OracleOverhead is the mitigation completion overhead assumed when
// building the Oracle set (2 node–minutes, §3.2.5): a mitigation closer to
// the UE than this cannot complete in time, so the Oracle skips it.
const OracleOverhead = 2 * time.Minute

// OraclePoints computes the §4.2 Oracle mitigation set: for each UE inside
// [from, to) (zero times disable the bound), the last decision tick on the
// same node that precedes it by at least the mitigation overhead and at
// most the prediction window. UEs with no such tick are unreachable — the
// Oracle skips them, which is why Table 2 reports 42 mitigations, zero
// false positives and the 63% recall ceiling.
func OraclePoints(ticksByNode [][]errlog.Tick, from, to time.Time) map[policies.OracleKey]bool {
	points := map[policies.OracleKey]bool{}
	for _, ticks := range ticksByNode {
		lastDecision := time.Time{}
		haveDecision := false
		for _, tick := range ticks {
			if tick.HasUE() {
				ut := ueEventTime(tick)
				inWin := (from.IsZero() || !ut.Before(from)) && (to.IsZero() || ut.Before(to))
				gap := ut.Sub(lastDecision)
				if haveDecision && inWin && gap >= OracleOverhead && gap <= PredictionWindow {
					points[policies.OracleKey{Node: tick.Node, Time: lastDecision}] = true
				}
				continue
			}
			lastDecision = tick.Time
			haveDecision = true
		}
	}
	return points
}

// String renders a result as a compact report row.
func (r Result) String() string {
	return fmt.Sprintf("%-16s total=%10.1f nh (UE %10.1f + mitig %8.1f + train %6.1f)  mitigations=%d recall=%.2f precision=%.5f",
		r.Policy, r.TotalCost(), r.UECost, r.MitigationCost, r.TrainingCost,
		r.Metrics.Mitigations, r.Metrics.Recall(), r.Metrics.Precision())
}
