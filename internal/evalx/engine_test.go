package evalx

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/errlog"
	"repro/internal/features"
	"repro/internal/jobs"
	"repro/internal/mathx"
	"repro/internal/policies"
	"repro/internal/rf"
	"repro/internal/rl"
	"repro/internal/telemetry"
)

// engineFixture builds a realistic tick stream (synthetic MN3-scale log),
// a heavy-tailed job trace, and the full §4.2 decider set: Never, Always,
// SC20-RF at an optimal-ish threshold plus the 2% and 5% perturbed
// variants, Myopic-RF, the RL agent, and the Oracle — eight approaches,
// exactly what evaluateSplit replays.
func engineFixture(t testing.TB) ([][]errlog.Tick, *jobs.Sampler, []policies.Decider) {
	t.Helper()
	tcfg := telemetry.Default().Scale(0.02)
	tcfg.SignaledUEs, tcfg.SuddenUEs = 12, 4
	log := telemetry.Generate(tcfg)
	pre := errlog.Preprocess(log)
	byNode := env.GroupTicks(errlog.Merge(pre, errlog.MergeWindow))

	jcfg := jobs.Default()
	jcfg.Count = 800
	sampler := jobs.NewSampler(jobs.Generate(jcfg))

	// A forest trained on the stream's own early window, so its scores are
	// non-degenerate on the evaluation ticks.
	first, last := pre.Span()
	trainTo := first.Add(time.Duration(float64(last.Sub(first)) * 0.5))
	ds := BuildRFDataset(ticksUpTo(byNode, trainTo), time.Time{}, trainTo)
	if len(ds.X) == 0 || ds.Positives() == 0 {
		t.Fatal("fixture produced a degenerate RF dataset")
	}
	fc := rf.DefaultForestConfig()
	fc.Trees = 25
	forest := rf.TrainForest(ds.X, ds.Y, fc)

	// An RL policy over untrained weights: identical inference cost and
	// non-trivial decisions without paying for training.
	agent := rl.NewAgent(rl.AgentConfig{
		StateLen: features.Dim, NumActions: env.NumActions,
		Hidden: []int{16, 8}, Dueling: true, DoubleDQN: true,
		Gamma: 0.95, LearningRate: 1e-3, BatchSize: 8, Seed: 7,
	}, rl.NewUniformReplay(64))

	dsAll := []policies.Decider{
		policies.Never{},
		policies.Always{},
		&policies.RFThreshold{Forest: forest, Threshold: 0.4},
		&policies.RFThreshold{Forest: forest, Threshold: PerturbThreshold(0.4, 0.02), Label: "SC20-RF-2%"},
		&policies.RFThreshold{Forest: forest, Threshold: PerturbThreshold(0.4, 0.05), Label: "SC20-RF-5%"},
		&policies.MyopicRF{Forest: forest, MitigationCostNodeHours: env.DefaultConfig().MitigationCostNodeHours()},
		&policies.RL{Policy: agent.SnapshotPolicy()},
		policies.NewOracle(OraclePoints(byNode, time.Time{}, time.Time{})),
	}
	return byNode, sampler, dsAll
}

// requireIdentical asserts two Results are bit-identical in every field
// the replay produces (TrainingCost is caller-assigned, not replayed).
func requireIdentical(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Policy != want.Policy {
		t.Fatalf("%s: policy %q != %q", label, got.Policy, want.Policy)
	}
	if got.UECost != want.UECost {
		t.Errorf("%s/%s: UECost %v != %v", label, got.Policy, got.UECost, want.UECost)
	}
	if got.MitigationCost != want.MitigationCost {
		t.Errorf("%s/%s: MitigationCost %v != %v", label, got.Policy, got.MitigationCost, want.MitigationCost)
	}
	if got.Decisions != want.Decisions || got.UEs != want.UEs {
		t.Errorf("%s/%s: counts (%d,%d) != (%d,%d)", label, got.Policy,
			got.Decisions, got.UEs, want.Decisions, want.UEs)
	}
	if got.Metrics != want.Metrics {
		t.Errorf("%s/%s: metrics %+v != %+v", label, got.Policy, got.Metrics, want.Metrics)
	}
}

// TestReplayAllMatchesLegacyPerPolicy is the engine's hard correctness
// bar: the single-pass multi-policy walk must reproduce the legacy
// one-policy-per-walk path bit for bit, for all eight §4.2 approaches,
// across restartable/non-restartable mitigation and accounting windows.
func TestReplayAllMatchesLegacyPerPolicy(t *testing.T) {
	byNode, sampler, ds := engineFixture(t)

	base := env.DefaultConfig()
	var windowFrom time.Time
	for _, ticks := range byNode {
		if len(ticks) > 0 && (windowFrom.IsZero() || ticks[0].Time.Before(windowFrom)) {
			windowFrom = ticks[0].Time
		}
	}
	cases := []struct {
		name string
		cfg  ReplayConfig
	}{
		{"restartable", ReplayConfig{Env: base, JobSeed: 1}},
		{"non-restartable", ReplayConfig{Env: func() env.Config { c := base; c.Restartable = false; return c }(), JobSeed: 1}},
		{"cost-10nm", ReplayConfig{Env: func() env.Config { c := base; c.MitigationCostNodeMinutes = 10; return c }(), JobSeed: 5}},
		{"windowed", ReplayConfig{Env: base, JobSeed: 9, From: windowFrom.Add(90 * 24 * time.Hour), To: windowFrom.Add(400 * 24 * time.Hour)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ReplayAll(ds, byNode, sampler, tc.cfg)
			if len(got) != len(ds) {
				t.Fatalf("results = %d, want %d", len(got), len(ds))
			}
			for i, d := range ds {
				requireIdentical(t, tc.name, got[i], Replay(d, byNode, sampler, tc.cfg))
			}
		})
	}
}

// TestReplayAllCostOverrideMatchesLegacy covers the Table 2 cost-range
// mode: the synthetic cost draws must line up with the legacy per-policy
// RNG streams.
func TestReplayAllCostOverrideMatchesLegacy(t *testing.T) {
	byNode, sampler, ds := engineFixture(t)
	cfg := ReplayConfig{Env: env.DefaultConfig(), JobSeed: 3}
	cfg.CostOverride = func(rng *mathx.RNG) float64 { return 10 + rng.Float64()*990 }
	got := ReplayAll(ds, byNode, sampler, cfg)
	for i, d := range ds {
		requireIdentical(t, "override", got[i], Replay(d, byNode, sampler, cfg))
	}
}

// TestReplayAllParallelMatchesSerial: the engine's node fan-out is a pure
// wall-clock knob, exactly like Replay's.
func TestReplayAllParallelMatchesSerial(t *testing.T) {
	byNode, sampler, ds := engineFixture(t)
	cfgSerial := ReplayConfig{Env: env.DefaultConfig(), JobSeed: 2, Parallelism: 1}
	cfgPar := cfgSerial
	cfgPar.Parallelism = 4
	serial := ReplayAll(ds, byNode, sampler, cfgSerial)
	parallel := ReplayAll(ds, byNode, sampler, cfgPar)
	for i := range ds {
		requireIdentical(t, "parallel", parallel[i], serial[i])
	}
}

// statefulDecider mitigates on every k-th Decide call — no BatchDecider
// implementation, not concurrency-safe, call-order dependent. It exercises
// the engine's per-decider fallback (Decide on a vector copy) and the
// forced-serial path, which must still reproduce the legacy walk exactly
// because per-node decision order is preserved.
type statefulDecider struct {
	k     int
	calls int
}

func (d *statefulDecider) Name() string { return fmt.Sprintf("every-%d", d.k) }
func (d *statefulDecider) Decide(policies.Context) bool {
	d.calls++
	return d.calls%d.k == 0
}

func TestReplayAllStatefulFallbackMatchesLegacy(t *testing.T) {
	byNode, sampler, _ := engineFixture(t)
	cfg := ReplayConfig{Env: env.DefaultConfig(), JobSeed: 4}
	// Fresh decider instances per path: the stateful counter must see the
	// same call sequence in both.
	got := ReplayAll([]policies.Decider{policies.Always{}, &statefulDecider{k: 7}}, byNode, sampler, cfg)
	want := Replay(&statefulDecider{k: 7}, byNode, sampler, cfg)
	requireIdentical(t, "stateful", got[1], want)
}

// TestReplayAllFallbackSeesEffectiveCost: the non-batch fallback must hand
// Decide the decider's own effective UE cost (diverged by its mitigation
// history under restartable mitigation), not the shared baseline.
func TestReplayAllFallbackSeesEffectiveCost(t *testing.T) {
	ticks := [][]errlog.Tick{{
		mkTick(1, 0, errlog.CE),
		mkTick(1, 9*time.Hour, errlog.CE),
		mkTick(1, 10*time.Hour, errlog.CE),
	}}
	sampler := fixedSampler(5, 1000)
	cfg := replayCfg() // restartable

	var batchCosts, legacyCosts []float64
	record := func(out *[]float64) policies.Decider {
		return policyProbe{func(ctx policies.Context) bool {
			*out = append(*out, ctx.Features[features.UECost])
			return true // mitigate every tick, diverging from the baseline
		}}
	}
	ReplayAll([]policies.Decider{policies.Never{}, record(&batchCosts)}, ticks, sampler, cfg)
	Replay(record(&legacyCosts), ticks, sampler, cfg)
	if len(batchCosts) != len(legacyCosts) {
		t.Fatalf("call counts differ: %d vs %d", len(batchCosts), len(legacyCosts))
	}
	for i := range batchCosts {
		if batchCosts[i] != legacyCosts[i] {
			t.Fatalf("cost %d: engine %v != legacy %v", i, batchCosts[i], legacyCosts[i])
		}
	}
	// Sanity: the diverged costs must actually differ from the shared
	// no-mitigation baseline. After the 9h mitigation the 10h decision
	// sees 5 nodes × 1h = 5, not the baseline 5 × 10h = 50.
	if batchCosts[2] != 5 {
		t.Fatalf("expected baseline reset after mitigation (restartable), got %v", batchCosts[2])
	}
}

// TestOptimalThresholdMatchesLegacyGrid: the one-pass grid scoring must
// select the same threshold at the same cost as replaying each candidate.
func TestOptimalThresholdMatchesLegacyGrid(t *testing.T) {
	byNode, sampler, ds := engineFixture(t)
	forest := ds[2].(*policies.RFThreshold).Forest
	cfg := ReplayConfig{Env: env.DefaultConfig(), JobSeed: 1}

	gotThr, gotCost := OptimalThreshold(forest, nil, byNode, sampler, cfg)

	// Legacy reference: one full replay per grid point.
	best, bestCost, first := 0.0, 0.0, true
	for _, thr := range DefaultThresholdGrid {
		res := Replay(&policies.RFThreshold{Forest: forest, Threshold: thr}, byNode, sampler, cfg)
		if first || res.TotalCost() < bestCost {
			best, bestCost, first = thr, res.TotalCost(), false
		}
	}
	if gotThr != best || gotCost != bestCost {
		t.Fatalf("single-pass threshold (%v, %v) != legacy (%v, %v)", gotThr, gotCost, best, bestCost)
	}
}

// TestReplayAllEmptyAndDegenerate covers the trivial shapes.
func TestReplayAllEmptyAndDegenerate(t *testing.T) {
	sampler := fixedSampler(1, 1)
	if out := ReplayAll(nil, ueScenario(), sampler, replayCfg()); len(out) != 0 {
		t.Fatalf("nil deciders -> %d results", len(out))
	}
	out := ReplayAll([]policies.Decider{policies.Never{}}, nil, sampler, replayCfg())
	if len(out) != 1 || out[0].Decisions != 0 || out[0].Policy != "Never-mitigate" {
		t.Fatalf("empty ticks: %+v", out)
	}
	// Nodes with empty tick slices are skipped, like Replay.
	out = ReplayAll([]policies.Decider{policies.Always{}},
		[][]errlog.Tick{{}, ueScenario()[0], {}}, sampler, replayCfg())
	want := Replay(policies.Always{}, ueScenario(), sampler, replayCfg())
	requireIdentical(t, "degenerate", out[0], want)
}

// TestSharedRFProbMemoization: one forest evaluation serves every
// threshold variant at a decision point; a different forest invalidates
// the memo.
func TestSharedRFProbMemoization(t *testing.T) {
	x := [][]float64{make([]float64, features.PredictorDim), make([]float64, features.PredictorDim)}
	for i := range x[1] {
		x[1][i] = 1
	}
	fc := rf.DefaultForestConfig()
	fc.Trees = 5
	f1 := rf.TrainForest(x, []bool{false, true}, fc)
	fc.Seed = 99
	f2 := rf.TrainForest(x, []bool{true, false}, fc)

	var s policies.Shared
	var v features.Vector
	for i := range v {
		v[i] = 1
	}
	s.Reset(1, t0, v)
	p1 := s.RFProb(f1)
	if p1 != f1.PredictProb(v[:features.PredictorDim]) {
		t.Fatal("memoized prob differs from direct evaluation")
	}
	if s.RFProb(f1) != p1 {
		t.Fatal("second lookup changed")
	}
	if s.RFProb(f2) != f2.PredictProb(v[:features.PredictorDim]) {
		t.Fatal("forest switch not detected")
	}
	s.Reset(1, t0, features.Vector{})
	if s.RFProb(f2) != f2.PredictProb(make([]float64, features.PredictorDim)) {
		t.Fatal("Reset did not invalidate the memo")
	}
}
