package evalx

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/nn"
	"repro/internal/telemetry"
)

// TestRLArtifactCacheHit asserts the cross-figure RL memoizer's contract:
// a cache hit returns the very artifact trained on the miss, and a
// cache-backed run produces weights byte-identical to a cold (nil-cache)
// run — so figures rendered warm and cold cannot diverge.
func TestRLArtifactCacheHit(t *testing.T) {
	if testing.Short() {
		t.Skip("RL training integration test in short mode")
	}
	tcfg := telemetry.Default().Scale(0.02)
	jcfg := jobs.Default()
	jcfg.Count = 1000
	log := telemetry.Generate(tcfg)
	trace := jobs.Generate(jcfg)

	cfg := DefaultCVConfig(PresetCI)
	cfg.Parts = 2
	cfg.RLEpisodes = 40 // enough to exercise training, cheap enough for CI

	cold := cfg // Cache == nil: every call trains from scratch
	sCold := TrainSingleSplit(log, trace, cold, 0.5)

	warm := cfg
	warm.Cache = NewCache()
	s1 := TrainSingleSplit(log, trace, warm, 0.5)
	s2 := TrainSingleSplit(log, trace, warm, 0.5)

	// The second warm run must be a hit: the memoizer hands back the same
	// network object, not a retrained copy.
	if s2.Net == nil || s2.Net != s1.Net {
		t.Fatalf("second cached run retrained: net %p vs %p", s2.Net, s1.Net)
	}
	if s2.Forest != s1.Forest {
		t.Fatalf("second cached run retrained the forest: %p vs %p", s2.Forest, s1.Forest)
	}
	if s2.Threshold != s1.Threshold {
		t.Fatalf("cached threshold %v != first run's %v", s2.Threshold, s1.Threshold)
	}

	// Cold and cache-backed training must serialize byte-identically.
	coldJSON, err := json.Marshal(sCold.Net)
	if err != nil {
		t.Fatal(err)
	}
	warmJSON, err := json.Marshal(s1.Net)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Fatal("cold-trained and cache-backed networks are not byte-identical")
	}

	// The kernel version is part of the artifact key: asking the same cache
	// for the reference stream must train a distinct artifact, never serve
	// the fast-stream weights.
	ref := cfg
	ref.Cache = warm.Cache
	ref.Kernel = nn.KernelReference
	s3 := TrainSingleSplit(log, trace, ref, 0.5)
	if s3.Net == s1.Net {
		t.Fatal("reference-kernel request served the fast-kernel artifact")
	}
	// The forest does not depend on the kernel, so it must still hit.
	if s3.Forest != s1.Forest {
		t.Fatal("forest artifact missed on a kernel-only config change")
	}
}

// TestOraclePointsIndexEquivalence asserts the precomputed oracle index
// serves exactly what the standalone OraclePoints scan computes, for
// unbounded, half-bounded and fully bounded query windows.
func TestOraclePointsIndexEquivalence(t *testing.T) {
	log := telemetry.Generate(telemetry.Default().Scale(0.04))
	art := (*Cache)(nil).Ticks(log)
	first, last := art.Pre.Span()
	span := last.Sub(first)

	windows := []struct {
		name     string
		from, to time.Time
	}{
		{"unbounded", time.Time{}, time.Time{}},
		{"from-only", first.Add(span / 3), time.Time{}},
		{"to-only", time.Time{}, first.Add(2 * span / 3)},
		{"bounded", first.Add(span / 4), first.Add(3 * span / 4)},
		{"empty", first.Add(span / 2), first.Add(span / 2)},
	}
	for _, w := range windows {
		got := art.OraclePoints(w.from, w.to)
		want := OraclePoints(art.ByNode, w.from, w.to)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s window: indexed oracle points (%d) differ from scan (%d)",
				w.name, len(got), len(want))
		}
	}
	// The fixture must actually contain reachable UEs, or the equivalence
	// above is vacuous.
	if len(art.OraclePoints(time.Time{}, time.Time{})) == 0 {
		t.Fatal("fixture has no reachable UEs; oracle index untested")
	}
}
