package evalx

import (
	"testing"
	"time"
)

func probT(min int) time.Time {
	return time.Date(2026, 4, 1, 0, min, 0, 0, time.UTC)
}

func newTestProbation(minDecisions int, tol float64) *Probation {
	return NewProbation(ProbationConfig{
		Shadow:             ShadowConfig{MitigationCostNodeHours: 2.0 / 60, Restartable: true},
		MinDecisions:       minDecisions,
		ToleranceNodeHours: tol,
	})
}

// A promoted model that skips a mitigation the reference would have made
// regresses by the full realized UE cost once the UE lands.
func TestProbationRegressionOnMissedUE(t *testing.T) {
	p := newTestProbation(100, 5)
	// Quiet prefix: both sides decide identically; no regression.
	for i := 0; i < 10; i++ {
		p.Decision(1, probT(i), false, false)
	}
	if v := p.Verdict(); v.Decided {
		t.Fatalf("probation decided on identical traffic: %+v", v)
	}
	// The promoted model declines the mitigation the reference takes...
	p.Decision(1, probT(20), false, true)
	// ...and the UE it would have caught lands inside the window.
	p.UE(1, probT(30), 100)
	v := p.Verdict()
	if !v.Decided || !v.Regressed {
		t.Fatalf("missed-UE regression not detected: %+v", v)
	}
	// Margin: promoted paid 100 nh UE cost; reference paid one mitigation.
	want := 100 - 2.0/60
	if diff := v.MarginNodeHours - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("margin = %v, want %v", v.MarginNodeHours, want)
	}
}

// Spend-only differences below tolerance pass probation at the window.
func TestProbationPassWithinTolerance(t *testing.T) {
	p := newTestProbation(32, 5)
	for i := 0; i < 32; i++ {
		// The promoted model mitigates slightly more than the reference —
		// a pure spend difference far below the 5 nh tolerance.
		p.Decision(i%4, probT(i), i%8 == 0, false)
	}
	v := p.Verdict()
	if !v.Decided || v.Regressed {
		t.Fatalf("within-tolerance probation did not pass: %+v", v)
	}
	if v.MarginNodeHours <= 0 {
		t.Fatalf("expected positive (but tolerated) margin, got %v", v.MarginNodeHours)
	}
}

// Over-mitigation alone can regress past tolerance too.
func TestProbationRegressionOnSpend(t *testing.T) {
	p := newTestProbation(1<<20, 0.5)
	for i := 0; i < 20; i++ {
		p.Decision(i, probT(i), true, false)
		if v := p.Verdict(); v.Decided {
			if !v.Regressed {
				t.Fatalf("spend regression decided as pass: %+v", v)
			}
			// 0.5 nh tolerance at 1/30 nh per mitigation: trips at the
			// 16th extra mitigation.
			if v.Decisions != 16 {
				t.Fatalf("spend regression tripped after %d decisions, want 16", v.Decisions)
			}
			return
		}
	}
	t.Fatal("pure spend regression never tripped")
}
