package evalx

import "time"

// ProbationConfig parameterizes a post-promotion probation window.
type ProbationConfig struct {
	// Shadow sets the node-hour accounting both sides are scored with
	// (mitigation cost, restartability, prediction window) — the same
	// parameters the pre-promotion shadow evaluation used.
	Shadow ShadowConfig
	// MinDecisions is the probation window length in served decisions: a
	// promoted model that survives this many decisions without regressing
	// passes probation.
	MinDecisions int
	// ToleranceNodeHours is the regression tolerance: probation fails as
	// soon as the promoted model's total cost exceeds the reference's by
	// more than this, in node-hours. Zero means any strictly positive
	// regression fails — note that one extra mitigation then already
	// counts, so real deployments leave headroom for spend jitter.
	ToleranceNodeHours float64
}

// ProbationVerdict is the current judgement of a probation window.
type ProbationVerdict struct {
	// Decided reports that probation is over: either the promoted model
	// regressed past tolerance (Regressed true — roll back) or it
	// survived MinDecisions (Regressed false — it stays).
	Decided bool
	// Regressed reports a rollback-worthy regression.
	Regressed bool
	// MarginNodeHours is promoted-minus-reference total cost so far;
	// positive means the promoted model is doing worse.
	MarginNodeHours float64
	// Decisions and UEs count the probation traffic scored so far.
	Decisions int
	UEs       int
}

// Probation scores a freshly promoted model against its replaced
// incumbent on identical post-promotion traffic, using the same
// ShadowEval rolling accounting that gated the promotion — but with the
// roles flipped: the promoted model is now serving, and the incumbent
// runs as the counterfactual. The caller feeds every served decision
// (with the incumbent's counterfactual choice on the same feature
// snapshot) and every realized UE, and polls Verdict; a regression past
// tolerance within the window is the rollback trigger the promotion-time
// shadow gate cannot provide, because the traffic that exposes the
// regression (e.g. an adversarial error burst) may only arrive after the
// swap.
//
// Probation is not safe for concurrent use; its owner provides locking.
type Probation struct {
	cfg       ProbationConfig
	promoted  *ShadowEval
	reference *ShadowEval
}

// NewProbation starts a probation window.
func NewProbation(cfg ProbationConfig) *Probation {
	if cfg.MinDecisions <= 0 {
		cfg.MinDecisions = 256
	}
	return &Probation{
		cfg:       cfg,
		promoted:  NewShadowEval("promoted", cfg.Shadow),
		reference: NewShadowEval("reference", cfg.Shadow),
	}
}

// Decision scores one served decision: promotedMitigate is what the
// promoted (serving) model did, referenceMitigate what the replaced
// incumbent would have done on the same snapshot.
func (p *Probation) Decision(node int, at time.Time, promotedMitigate, referenceMitigate bool) {
	p.promoted.Decision(node, at, promotedMitigate)
	p.reference.Decision(node, at, referenceMitigate)
}

// UE scores one realized uncorrected error against both sides; each
// side's own mitigation history decides whether it caught it.
func (p *Probation) UE(node int, at time.Time, costNodeHours float64) {
	p.promoted.UE(node, at, costNodeHours)
	p.reference.UE(node, at, costNodeHours)
}

// Verdict reports the probation state after the traffic fed so far.
func (p *Probation) Verdict() ProbationVerdict {
	prom, ref := p.promoted.Result(), p.reference.Result()
	v := ProbationVerdict{
		MarginNodeHours: prom.TotalCost() - ref.TotalCost(),
		Decisions:       prom.Decisions,
		UEs:             prom.UEs,
	}
	switch {
	case v.MarginNodeHours > p.cfg.ToleranceNodeHours:
		v.Decided, v.Regressed = true, true
	case prom.Decisions >= p.cfg.MinDecisions:
		v.Decided = true
	}
	return v
}

// Results exposes both rolling scoreboards (promoted, reference) for
// audit detail.
func (p *Probation) Results() (promoted, reference Result) {
	return p.promoted.Result(), p.reference.Result()
}
