package evalx

import (
	"time"

	"repro/internal/errlog"
	"repro/internal/features"
)

// RFDataset is a random-forest training set: one sample per decision tick,
// labelled positive when a UE follows on the same node within the
// prediction window (the SC'20 formulation).
type RFDataset struct {
	X [][]float64
	Y []bool
}

// Positives counts positive labels.
func (d RFDataset) Positives() int {
	n := 0
	for _, y := range d.Y {
		if y {
			n++
		}
	}
	return n
}

// BuildRFDataset constructs the SC20-RF training set from per-node tick
// sequences: features are the Table 1 vector without the workload cost
// (features.Vector.Predictor), the label is "UE within the next
// PredictionWindow on this node". Only ticks inside [from, to) become
// samples; the tracker still warms up on earlier ticks.
func BuildRFDataset(ticksByNode [][]errlog.Tick, from, to time.Time) RFDataset {
	var ds RFDataset
	for _, ticks := range ticksByNode {
		// Collect UE times for labelling.
		var ueTimes []time.Time
		for _, tick := range ticks {
			if tick.HasUE() {
				ueTimes = append(ueTimes, ueEventTime(tick))
			}
		}
		tracker := features.NewTracker()
		ueIdx := 0
		for _, tick := range ticks {
			if tick.HasUE() {
				tracker.Observe(tick, 0)
				continue
			}
			v := tracker.Observe(tick, 0)
			if !from.IsZero() && tick.Time.Before(from) {
				continue
			}
			if !to.IsZero() && !tick.Time.Before(to) {
				continue
			}
			for ueIdx < len(ueTimes) && ueTimes[ueIdx].Before(tick.Time) {
				ueIdx++
			}
			label := ueIdx < len(ueTimes) && ueTimes[ueIdx].Sub(tick.Time) <= PredictionWindow
			x := make([]float64, features.PredictorDim)
			copy(x, v.Predictor())
			ds.X = append(ds.X, x)
			ds.Y = append(ds.Y, label)
		}
	}
	return ds
}
