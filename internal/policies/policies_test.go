package policies

import (
	"testing"
	"time"

	"repro/internal/features"
	"repro/internal/rf"
	"repro/internal/rl"
)

func ctxWith(cost float64, ces float64) Context {
	var v features.Vector
	v[features.UECost] = cost
	v[features.CEsTotal] = ces
	return Context{Node: 1, Time: time.Unix(1000, 0), Features: v}
}

func TestNeverAlways(t *testing.T) {
	if (Never{}).Decide(ctxWith(1e9, 1e9)) {
		t.Error("Never mitigated")
	}
	if !(Always{}).Decide(ctxWith(0, 0)) {
		t.Error("Always did not mitigate")
	}
	if (Never{}).Name() != "Never-mitigate" || (Always{}).Name() != "Always-mitigate" {
		t.Error("names wrong")
	}
}

// trainToyForest returns a forest scoring high when CEsTotal is large.
func trainToyForest(t *testing.T) *rf.Forest {
	t.Helper()
	var x [][]float64
	var y []bool
	for i := 0; i < 100; i++ {
		v := make([]float64, features.PredictorDim)
		v[features.CEsTotal] = float64(i)
		x = append(x, v)
		y = append(y, i >= 50)
	}
	return rf.TrainForest(x, y, rf.ForestConfig{Trees: 15, MaxDepth: 3, Seed: 1})
}

func TestRFThreshold(t *testing.T) {
	f := trainToyForest(t)
	p := &RFThreshold{Forest: f, Threshold: 0.5}
	if !p.Decide(ctxWith(0, 90)) {
		t.Error("should mitigate at high CE count")
	}
	if p.Decide(ctxWith(0, 5)) {
		t.Error("should not mitigate at low CE count")
	}
	if p.Name() != "SC20-RF" {
		t.Errorf("name = %q", p.Name())
	}
	labeled := &RFThreshold{Forest: f, Threshold: 0.5, Label: "SC20-RF-2%"}
	if labeled.Name() != "SC20-RF-2%" {
		t.Errorf("label = %q", labeled.Name())
	}
}

func TestMyopicRF(t *testing.T) {
	f := trainToyForest(t)
	p := &MyopicRF{Forest: f, MitigationCostNodeHours: 1.0 / 30}
	// High probability, high cost: expected cost >> mitigation cost.
	if !p.Decide(ctxWith(100, 90)) {
		t.Error("should mitigate when prob*cost is large")
	}
	// High probability but negligible cost: prob*0 = 0 < mitigation cost.
	if p.Decide(ctxWith(0, 90)) {
		t.Error("should not mitigate at zero potential cost")
	}
	if p.Name() != "Myopic-RF" {
		t.Error("name wrong")
	}
}

func TestRLDecider(t *testing.T) {
	calls := 0
	pol := rl.PolicyFunc(func(s []float64) int {
		calls++
		if len(s) != features.Dim {
			t.Fatalf("policy saw %d features", len(s))
		}
		return 1
	})
	p := &RL{Policy: pol}
	if !p.Decide(ctxWith(10, 10)) {
		t.Error("RL decision not forwarded")
	}
	if calls != 1 {
		t.Error("policy not invoked")
	}
	if p.Name() != "RL" {
		t.Error("name wrong")
	}
	if (&RL{Policy: pol, Label: "RL-ablation"}).Name() != "RL-ablation" {
		t.Error("label ignored")
	}
}

func TestOracle(t *testing.T) {
	at := time.Unix(5000, 0)
	o := NewOracle(map[OracleKey]bool{{Node: 3, Time: at}: true})
	if !o.Decide(Context{Node: 3, Time: at}) {
		t.Error("oracle should fire at its point")
	}
	if o.Decide(Context{Node: 3, Time: at.Add(time.Minute)}) {
		t.Error("oracle fired off-point")
	}
	if o.Decide(Context{Node: 4, Time: at}) {
		t.Error("oracle fired on wrong node")
	}
	if o.Len() != 1 || o.Name() != "Oracle" {
		t.Error("metadata wrong")
	}
}

func TestFixedProb(t *testing.T) {
	p := &FixedProb{Feature: features.CEsTotal, Bound: 10}
	if !p.Decide(ctxWith(0, 11)) || p.Decide(ctxWith(0, 9)) {
		t.Error("FixedProb threshold wrong")
	}
}
