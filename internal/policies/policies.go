// Package policies implements the eight mitigation approaches compared in
// §4.2 of the paper: Never-mitigate, Always-mitigate, SC20-RF with optimal
// and perturbed thresholds, Myopic-RF, the RL agent, and the Oracle.
// Every approach is expressed as a Decider invoked once per merged event
// tick with the node, time and Table 1 feature vector.
package policies

import (
	"fmt"
	"time"

	"repro/internal/features"
	"repro/internal/rf"
	"repro/internal/rl"
)

// Context is the information available to a policy at a decision point.
type Context struct {
	// Node is the node id of the tick.
	Node int
	// Time is the tick time.
	Time time.Time
	// Features is the Table 1 feature vector (including potential UE cost).
	Features features.Vector
}

// Decider decides, per event tick, whether to trigger a mitigation.
type Decider interface {
	// Name identifies the approach in reports.
	Name() string
	// Decide returns true to mitigate at this tick.
	Decide(ctx Context) bool
}

// Scorer is an optional Decider extension reporting a real-valued decision
// score on a policy-specific scale: positive means mitigate, negative means
// don't, and magnitude is the margin from the decision boundary. Serving
// layers use it to surface confidence alongside the boolean decision.
type Scorer interface {
	Score(ctx Context) float64
}

// ConcurrentDecider is an optional Decider extension marking it safe for
// concurrent Decide calls. The parallel replay engine (evalx.Replay) fans
// decisions out across per-node workers only for deciders that report
// true; everything else replays serially, which is always correct.
type ConcurrentDecider interface {
	Decider
	ConcurrentSafe() bool
}

// Shared is the per-decision-point state the single-pass multi-policy
// replay engine (evalx.ReplayAll) materializes once and hands to every
// BatchDecider at a tick: the node, the time, the Table 1 feature vector,
// and a memoized random-forest score. Because the RF predictor reads only
// the workload-independent feature prefix (features.Vector.Predictor), one
// forest evaluation serves every threshold variant and the Myopic policy
// at the same decision point.
type Shared struct {
	Node int
	Time time.Time
	// Base is the feature vector at this decision point carrying the
	// engine's shared potential UE cost (the no-mitigation baseline).
	// Deciders whose own mitigation history diverges the cost receive
	// their effective cost separately and must not mutate Base.
	Base features.Vector

	forest *rf.Forest
	prob   float64
}

// Reset points the shared state at a new decision point, invalidating the
// memoized forest score.
func (s *Shared) Reset(node int, t time.Time, base features.Vector) {
	s.Node, s.Time, s.Base = node, t, base
	s.forest = nil
}

// RFProb returns f's positive-class score for the decision point,
// computing it on first use and memoizing it, so N threshold variants of
// the same forest cost one ensemble evaluation per tick instead of N.
func (s *Shared) RFProb(f *rf.Forest) float64 {
	if s.forest != f {
		s.forest, s.prob = f, f.PredictProb(s.Base[:features.PredictorDim])
	}
	return s.prob
}

// BatchDecider is the optional fast path of the single-pass replay engine:
// DecideShared must return exactly what Decide would return for a Context
// whose Features equal s.Base with the UECost entry replaced by cost. The
// engine falls back to Decide (on a per-decider copy of the vector) for
// deciders that do not implement it, so stateful or external deciders keep
// working unchanged.
type BatchDecider interface {
	Decider
	DecideShared(s *Shared, cost float64) bool
}

// IsConcurrentSafe reports whether d declares itself safe for concurrent
// Decide calls.
func IsConcurrentSafe(d Decider) bool {
	cd, ok := d.(ConcurrentDecider)
	return ok && cd.ConcurrentSafe()
}

// Never never mitigates: maximum UE cost, zero mitigation cost.
type Never struct{}

// Name implements Decider.
func (Never) Name() string { return "Never-mitigate" }

// Decide implements Decider.
func (Never) Decide(Context) bool { return false }

// ConcurrentSafe implements ConcurrentDecider.
func (Never) ConcurrentSafe() bool { return true }

// DecideShared implements BatchDecider.
func (Never) DecideShared(*Shared, float64) bool { return false }

// Always mitigates on every event in the error log: minimum UE cost among
// event-triggered policies, maximum mitigation cost.
type Always struct{}

// Name implements Decider.
func (Always) Name() string { return "Always-mitigate" }

// Decide implements Decider.
func (Always) Decide(Context) bool { return true }

// ConcurrentSafe implements ConcurrentDecider.
func (Always) ConcurrentSafe() bool { return true }

// DecideShared implements BatchDecider.
func (Always) DecideShared(*Shared, float64) bool { return true }

// RFThreshold is the SC20-RF policy: mitigate when the random-forest score
// exceeds an externally supplied threshold.
type RFThreshold struct {
	Forest    *rf.Forest
	Threshold float64
	// Label distinguishes optimal from perturbed variants in reports.
	Label string
}

// Name implements Decider.
func (p *RFThreshold) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "SC20-RF"
}

// Decide implements Decider.
func (p *RFThreshold) Decide(ctx Context) bool {
	return p.Forest.PredictProb(ctx.Features.Predictor()) > p.Threshold
}

// Score implements Scorer: the RF probability margin over the threshold.
func (p *RFThreshold) Score(ctx Context) float64 {
	return p.Forest.PredictProb(ctx.Features.Predictor()) - p.Threshold
}

// ConcurrentSafe implements ConcurrentDecider: forest prediction is a pure
// read of the trained trees.
func (p *RFThreshold) ConcurrentSafe() bool { return true }

// DecideShared implements BatchDecider: the forest score is memoized on s,
// so a whole threshold grid costs one ensemble evaluation per tick.
func (p *RFThreshold) DecideShared(s *Shared, _ float64) bool {
	return s.RFProb(p.Forest) > p.Threshold
}

// MyopicRF extends SC20-RF with cost-awareness (§4.2): mitigate when the
// expected UE cost — RF score times current potential UE cost — exceeds
// the mitigation cost. As the paper shows, the RF score is not a reliable
// probability, which is exactly why this seemingly reasonable policy
// underperforms.
type MyopicRF struct {
	Forest *rf.Forest
	// MitigationCostNodeHours is the per-action cost.
	MitigationCostNodeHours float64
}

// Name implements Decider.
func (*MyopicRF) Name() string { return "Myopic-RF" }

// Decide implements Decider.
func (p *MyopicRF) Decide(ctx Context) bool {
	prob := p.Forest.PredictProb(ctx.Features.Predictor())
	return prob*ctx.Features[features.UECost] > p.MitigationCostNodeHours
}

// Score implements Scorer: expected UE cost minus mitigation cost, in
// node–hours.
func (p *MyopicRF) Score(ctx Context) float64 {
	prob := p.Forest.PredictProb(ctx.Features.Predictor())
	return prob*ctx.Features[features.UECost] - p.MitigationCostNodeHours
}

// ConcurrentSafe implements ConcurrentDecider.
func (p *MyopicRF) ConcurrentSafe() bool { return true }

// DecideShared implements BatchDecider. The RF score ignores the cost
// feature, so the memoized evaluation is shared; only the comparison uses
// this decider's effective potential UE cost.
func (p *MyopicRF) DecideShared(s *Shared, cost float64) bool {
	return s.RFProb(p.Forest)*cost > p.MitigationCostNodeHours
}

// RL wraps a trained (frozen) agent policy. Decide normalizes into pooled
// scratch (features.WithNormalized), so the replay hot path allocates
// nothing.
type RL struct {
	Policy rl.Policy
	// Label optionally overrides the report name.
	Label string
}

// Name implements Decider.
func (p *RL) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "RL"
}

// Decide implements Decider.
func (p *RL) Decide(ctx Context) bool {
	act := 0
	ctx.Features.WithNormalized(func(norm []float64) {
		act = p.Policy.Action(norm)
	})
	return act == 1
}

// ConcurrentSafe implements ConcurrentDecider: true when the wrapped
// policy declares itself concurrency-safe (e.g. rl.SharedQPolicy).
func (p *RL) ConcurrentSafe() bool {
	if cs, ok := p.Policy.(interface{ ConcurrentSafe() bool }); ok {
		return cs.ConcurrentSafe()
	}
	return false
}

// DecideShared implements BatchDecider: the network consumes the full
// vector including the cost feature, so the shared vector is completed
// with this decider's effective cost before normalization.
func (p *RL) DecideShared(s *Shared, cost float64) bool {
	v := s.Base
	v[features.UECost] = cost
	act := 0
	v.WithNormalized(func(norm []float64) {
		act = p.Policy.Action(norm)
	})
	return act == 1
}

// OracleKey identifies a decision point.
type OracleKey struct {
	Node int
	Time time.Time
}

// Oracle mitigates exactly on the last event before each UE (§4.2): the
// minimum number of mitigations that catches every catchable UE. It is
// built from the evaluation log with future knowledge and is not a
// realizable policy.
type Oracle struct {
	points map[OracleKey]bool
}

// NewOracle builds an Oracle from the set of (node, time) decision points
// that immediately precede a UE.
func NewOracle(points map[OracleKey]bool) *Oracle {
	return &Oracle{points: points}
}

// Name implements Decider.
func (*Oracle) Name() string { return "Oracle" }

// Decide implements Decider.
func (o *Oracle) Decide(ctx Context) bool {
	return o.points[OracleKey{Node: ctx.Node, Time: ctx.Time}]
}

// Len reports the number of oracle mitigation points.
func (o *Oracle) Len() int { return len(o.points) }

// ConcurrentSafe implements ConcurrentDecider: the point set is read-only.
func (o *Oracle) ConcurrentSafe() bool { return true }

// DecideShared implements BatchDecider.
func (o *Oracle) DecideShared(s *Shared, _ float64) bool {
	return o.points[OracleKey{Node: s.Node, Time: s.Time}]
}

// FixedProb is a trivial decider mitigating when a fixed feature exceeds a
// bound; used in tests and examples as a stand-in policy.
type FixedProb struct {
	Feature int
	Bound   float64
}

// Name implements Decider.
func (p *FixedProb) Name() string { return fmt.Sprintf("Fixed[%d>%g]", p.Feature, p.Bound) }

// Decide implements Decider.
func (p *FixedProb) Decide(ctx Context) bool { return ctx.Features[p.Feature] > p.Bound }

// ConcurrentSafe implements ConcurrentDecider.
func (p *FixedProb) ConcurrentSafe() bool { return true }

// DecideShared implements BatchDecider.
func (p *FixedProb) DecideShared(s *Shared, cost float64) bool {
	if p.Feature == features.UECost {
		return cost > p.Bound
	}
	return s.Base[p.Feature] > p.Bound
}
