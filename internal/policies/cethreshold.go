package policies

import (
	"fmt"

	"repro/internal/features"
)

// CEThreshold is an mcelog-style static trigger, included as an extension
// beyond the paper's §4.2 set: production mcelog triggers page offlining or
// operator actions when a component accumulates more than a fixed number of
// corrected errors in a 24-hour window. Re-cast as a mitigation trigger, it
// mitigates whenever the node's cumulative corrected-error count has grown
// by more than Threshold within the trailing day — the static heuristic the
// paper's adaptive method is designed to supersede.
//
// The trailing-day growth is approximated from the Table 1 features: the
// CE-count variation ratio over one hour (Eq. 2) and the current totals.
// Like mcelog, it is completely workload-blind.
//
//uerl:serial-only Decide mutates the shared per-node lastTriggerTotal map, so parallel replay must (and does) fall back to the serial path
type CEThreshold struct {
	// Threshold is the corrected-error count that triggers action
	// (mcelog's default page-offline trigger is in the tens).
	Threshold float64
	// state tracks the last trigger total per node so one storm produces
	// one action, as mcelog offlines a page once.
	lastTriggerTotal map[int]float64
}

// NewCEThreshold builds the trigger with the given CE-count threshold.
func NewCEThreshold(threshold float64) *CEThreshold {
	return &CEThreshold{Threshold: threshold, lastTriggerTotal: map[int]float64{}}
}

// Name implements Decider.
func (p *CEThreshold) Name() string {
	return fmt.Sprintf("mcelog-CE>%g", p.Threshold)
}

// Decide implements Decider.
func (p *CEThreshold) Decide(ctx Context) bool {
	total := ctx.Features[features.CEsTotal]
	since := total - p.lastTriggerTotal[ctx.Node]
	if since > p.Threshold {
		p.lastTriggerTotal[ctx.Node] = total
		return true
	}
	return false
}
