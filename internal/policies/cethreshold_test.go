package policies

import (
	"testing"
	"time"

	"repro/internal/features"
)

func ceCtx(node int, total float64) Context {
	var v features.Vector
	v[features.CEsTotal] = total
	return Context{Node: node, Time: time.Unix(0, 0), Features: v}
}

func TestCEThresholdFiresOnGrowth(t *testing.T) {
	p := NewCEThreshold(100)
	if p.Decide(ceCtx(1, 50)) {
		t.Fatal("fired below threshold")
	}
	if !p.Decide(ceCtx(1, 151)) {
		t.Fatal("did not fire above threshold")
	}
	// After a trigger, the counter rebases: another 50 CEs are not enough.
	if p.Decide(ceCtx(1, 200)) {
		t.Fatal("re-fired without enough new CEs")
	}
	// But another full threshold's worth is.
	if !p.Decide(ceCtx(1, 260)) {
		t.Fatal("did not re-fire after renewed growth")
	}
}

func TestCEThresholdPerNode(t *testing.T) {
	p := NewCEThreshold(100)
	if !p.Decide(ceCtx(1, 150)) {
		t.Fatal("node 1 should fire")
	}
	// Node 2's counter is independent.
	if p.Decide(ceCtx(2, 50)) {
		t.Fatal("node 2 fired on node 1's state")
	}
	if !p.Decide(ceCtx(2, 150)) {
		t.Fatal("node 2 should fire on its own growth")
	}
}

func TestCEThresholdName(t *testing.T) {
	if NewCEThreshold(30).Name() != "mcelog-CE>30" {
		t.Fatalf("name = %q", NewCEThreshold(30).Name())
	}
}
