package scenario

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/errlog"
)

// validSpec returns a minimal runnable spec tests mutate.
func validSpec() Spec {
	return Spec{
		Name:         "t",
		Seed:         1,
		DurationDays: 10,
		Fleet:        FleetSpec{Nodes: 16},
	}
}

func TestValidateAccepts(t *testing.T) {
	s := validSpec()
	s.Drift = []DriftPhase{{AtDay: 3, Overlay: OverlaySpec{CERateMult: 4}}, {AtDay: 7}}
	s.Faults = []FaultSpec{
		{Kind: FaultBurst, StartDay: 5, UEs: 8, Trains: 2, CEPrefix: 16},
		{Kind: FaultRamp, StartDay: 1, EndDay: 4, RateMult: 3},
		{Kind: FaultBlackout, StartDay: 6, EndDay: 7, FirstNode: 0, Nodes: 4},
		{Kind: FaultDelay, StartDay: 8, EndDay: 9, DelayMinutes: 20},
		{Kind: FaultDuplicate, StartDay: 2, EndDay: 3, Fraction: 0.5},
	}
	s.Workload = WorkloadSpec{CostNodeHours: 50, Phases: []CostPhase{{AtDay: 4, CostNodeHours: 200}}}
	s.Lifecycle = LifecycleSpec{Guard: &GuardSpec{FleetMitigations: 10}}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	intp := func(v int) *int { return &v }
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no name", func(s *Spec) { s.Name = "" }, "name"},
		{"nan duration", func(s *Spec) { s.DurationDays = math.NaN() }, "finite"},
		{"inf duration", func(s *Spec) { s.DurationDays = math.Inf(1) }, "finite"},
		{"negative duration", func(s *Spec) { s.DurationDays = -1 }, "positive"},
		{"zero fleet", func(s *Spec) { s.Fleet.Nodes = 0 }, "fleet.nodes"},
		{"negative overlay", func(s *Spec) { s.Telemetry.CERateMult = -2 }, "non-negative"},
		{"nan overlay", func(s *Spec) { s.Telemetry.UEMult = math.NaN() }, "finite"},
		{"drift at zero", func(s *Spec) { s.Drift = []DriftPhase{{AtDay: 0}} }, "drift[0]"},
		{"drift beyond end", func(s *Spec) { s.Drift = []DriftPhase{{AtDay: 10}} }, "drift[0]"},
		{"drift not increasing", func(s *Spec) {
			s.Drift = []DriftPhase{{AtDay: 5}, {AtDay: 5}}
		}, "drift[1]"},
		{"zero shares", func(s *Spec) {
			s.Fleet.ManufacturerShares = &[errlog.NumManufacturers]float64{}
		}, "sums to zero"},
		{"unknown fault kind", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "meteor", StartDay: 1}}
		}, "unknown kind"},
		{"burst without ues", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: FaultBurst, StartDay: 1}}
		}, "ues"},
		{"negative spacing", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: FaultBurst, StartDay: 1, UEs: 4, SpacingSeconds: -1}}
		}, "non-negative"},
		{"fault outside scenario", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: FaultBurst, StartDay: 12, UEs: 4}}
		}, "outside"},
		{"window non-positive", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: FaultBlackout, StartDay: 5, EndDay: 5}}
		}, "non-positive"},
		{"window past end", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: FaultDelay, StartDay: 5, EndDay: 12, DelayMinutes: 10}}
		}, "beyond"},
		{"nan ramp", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: FaultRamp, StartDay: 1, EndDay: 2, RateMult: math.NaN()}}
		}, "finite"},
		{"bad fraction", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: FaultDuplicate, StartDay: 1, EndDay: 2, Fraction: 1.5}}
		}, "fraction"},
		{"node range off fleet", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: FaultBurst, StartDay: 1, UEs: 4, FirstNode: 40}}
		}, "node range"},
		{"overlapping same-kind windows", func(s *Spec) {
			s.Faults = []FaultSpec{
				{Kind: FaultBlackout, StartDay: 1, EndDay: 5, FirstNode: 0, Nodes: 8},
				{Kind: FaultBlackout, StartDay: 4, EndDay: 6, FirstNode: 4, Nodes: 8},
			}
		}, "overlapping"},
		{"workload phase outside", func(s *Spec) {
			s.Workload.Phases = []CostPhase{{AtDay: 11, CostNodeHours: 1}}
		}, "phases[0]"},
		{"negative shadow ues", func(s *Spec) {
			s.Lifecycle.ShadowUEs = intp(-1)
		}, "shadow_ues"},
		{"bad initial policy", func(s *Spec) {
			s.Lifecycle.InitialPolicy = "oracle"
		}, "initial_policy"},
		{"bad approve", func(s *Spec) {
			s.Lifecycle.Guard = &GuardSpec{Approve: "maybe"}
		}, "approve"},
		{"nan guard budget", func(s *Spec) {
			s.Lifecycle.Guard = &GuardSpec{NodeBudgetNodeHours: math.Inf(-1)}
		}, "finite"},
		{"serving zero workers", func(s *Spec) {
			s.Serving = &ServingSpec{}
		}, "serving.workers"},
		{"serving negative dedup", func(s *Spec) {
			s.Serving = &ServingSpec{Workers: 2, DedupWindowSeconds: -1}
		}, "dedup_window_seconds"},
		{"serving guard promotion knobs", func(s *Spec) {
			s.Lifecycle.Guard = &GuardSpec{PromotionsPerDay: 2}
			s.Serving = &ServingSpec{Workers: 2}
		}, "budget enforcement"},
		{"worker fault unknown kind", func(s *Spec) {
			s.Serving = &ServingSpec{Workers: 2, Faults: []WorkerFaultSpec{{Worker: 0, Kind: "explode", AtDay: 1}}}
		}, "unknown kind"},
		{"worker fault off fleet", func(s *Spec) {
			s.Serving = &ServingSpec{Workers: 2, Faults: []WorkerFaultSpec{{Worker: 2, Kind: WorkerKill, AtDay: 1}}}
		}, "outside the 2-worker fleet"},
		{"worker fault outside window", func(s *Spec) {
			s.Serving = &ServingSpec{Workers: 2, Faults: []WorkerFaultSpec{{Worker: 0, Kind: WorkerKill, AtDay: 10}}}
		}, "outside"},
		{"worker faults out of order", func(s *Spec) {
			s.Serving = &ServingSpec{Workers: 2, Faults: []WorkerFaultSpec{
				{Worker: 0, Kind: WorkerKill, AtDay: 5},
				{Worker: 1, Kind: WorkerHang, AtDay: 3},
			}}
		}, "non-decreasing"},
		{"rejoin of live worker", func(s *Spec) {
			s.Serving = &ServingSpec{Workers: 2, Faults: []WorkerFaultSpec{{Worker: 0, Kind: WorkerRejoin, AtDay: 1}}}
		}, "not down"},
		{"kill of dead worker", func(s *Spec) {
			s.Serving = &ServingSpec{Workers: 2, Faults: []WorkerFaultSpec{
				{Worker: 0, Kind: WorkerKill, AtDay: 1},
				{Worker: 0, Kind: WorkerKill, AtDay: 2},
			}}
		}, "already down"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// Disjoint same-kind windows and overlapping different-kind windows are
// both fine — only same-kind/same-nodes overlap is ambiguous.
func TestValidateWindowOverlapScope(t *testing.T) {
	s := validSpec()
	s.Faults = []FaultSpec{
		{Kind: FaultBlackout, StartDay: 1, EndDay: 3, FirstNode: 0, Nodes: 4},
		{Kind: FaultBlackout, StartDay: 1, EndDay: 3, FirstNode: 8, Nodes: 4},
		{Kind: FaultDelay, StartDay: 1, EndDay: 3, DelayMinutes: 5},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("disjoint/different-kind windows rejected: %v", err)
	}
}

func TestDecodeRejectsUnknownFieldsAndTrailingData(t *testing.T) {
	if _, err := Decode([]byte(`{"name":"x","sneed":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Decode([]byte(`{"name":"x"} {"name":"y"}`)); err == nil {
		t.Fatal("trailing document accepted")
	}
}

func TestEncodeDecodeFixedPoint(t *testing.T) {
	s := validSpec()
	s.Description = "fixed point"
	s.Telemetry = OverlaySpec{CERateMult: 2.5}
	s.Drift = []DriftPhase{{AtDay: 4, Overlay: OverlaySpec{UEMult: 2}}}
	s.Faults = []FaultSpec{{Kind: FaultBurst, StartDay: 6, UEs: 8, CEPrefix: 32}}
	ues := 0
	s.Lifecycle = LifecycleSpec{ShadowUEs: &ues, Guard: &GuardSpec{FleetMitigations: 32}}

	enc1, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(enc1, []byte("\n")) {
		t.Fatal("canonical encoding lacks trailing newline")
	}
	dec, err := Decode(enc1)
	if err != nil {
		t.Fatalf("re-decoding canonical encoding: %v", err)
	}
	enc2, err := Encode(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("Encode∘Decode is not a fixed point:\n%s\nvs\n%s", enc1, enc2)
	}
}
