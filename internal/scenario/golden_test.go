package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the scenario golden summaries")

const (
	specDir   = "../../scenarios"
	goldenDir = "../../scenarios/golden"
)

// namedSpecs loads every named scenario spec under scenarios/.
func namedSpecs(t *testing.T) map[string]Spec {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(specDir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no scenario specs under %s (err %v)", specDir, err)
	}
	out := map[string]Spec{}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		// Named specs are kept canonical so diffs stay meaningful.
		enc, err := Encode(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, data) {
			if *update {
				if err := os.WriteFile(f, enc, 0o644); err != nil {
					t.Fatal(err)
				}
			} else {
				t.Errorf("%s is not canonically encoded; run with -update", f)
			}
		}
		name := strings.TrimSuffix(filepath.Base(f), ".json")
		if spec.Name != name {
			t.Fatalf("%s: spec name %q does not match the file name", f, spec.Name)
		}
		out[name] = spec
	}
	return out
}

// TestScenarioGoldens runs every named scenario and compares its summary
// byte-for-byte against the checked-in golden. Rebuild goldens with
//
//	go test ./internal/scenario -run TestScenarioGoldens -update
func TestScenarioGoldens(t *testing.T) {
	for name, spec := range namedSpecs(t) {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sum, err := Run(spec)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if sum.Survival.ContractViolations != 0 {
				t.Fatalf("graceful-degradation contract violated %d times", sum.Survival.ContractViolations)
			}
			got, err := EncodeSummary(sum)
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join(goldenDir, name+".summary.json")
			if *update {
				if err := os.MkdirAll(goldenDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", golden)
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("summary diverged from %s; run with -update if intended.\n--- got ---\n%s--- want ---\n%s",
					golden, got, want)
			}
		})
	}
}

// TestScenarioDeterminism proves byte-identical summaries across repeated
// runs and across GOMAXPROCS settings, on a scenario exercising every
// injection primitive — the property the goldens stand on.
func TestScenarioDeterminism(t *testing.T) {
	spec := validSpec()
	spec.Name = "determinism-probe"
	spec.Drift = []DriftPhase{{AtDay: 4, Overlay: OverlaySpec{CERateMult: 5}}}
	spec.Faults = []FaultSpec{
		{Kind: FaultBurst, StartDay: 6, UEs: 6, Trains: 2, TrainGapHours: 4, CEPrefix: 12},
		{Kind: FaultRamp, StartDay: 1, EndDay: 3, RateMult: 4},
		{Kind: FaultBlackout, StartDay: 5, EndDay: 5.5, FirstNode: 0, Nodes: 4},
		{Kind: FaultDelay, StartDay: 7, EndDay: 8, DelayMinutes: 20},
		{Kind: FaultDuplicate, StartDay: 8.5, EndDay: 9, Fraction: 0.4},
	}
	ues := 0
	spec.Lifecycle = LifecycleSpec{
		ShadowUEs: &ues,
		Guard:     &GuardSpec{FleetMitigations: 48, ProbationDecisions: 512},
	}

	run := func() []byte {
		sum, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := EncodeSummary(sum)
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	first := run()
	if again := run(); !bytes.Equal(first, again) {
		t.Fatal("summary differs across identical runs")
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	if single := run(); !bytes.Equal(first, single) {
		t.Fatal("summary differs under GOMAXPROCS=1")
	}
}
