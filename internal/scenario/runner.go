package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	uerl "repro"
	"repro/internal/evalx"
	"repro/internal/fleet"
)

// Summary is a scenario run's survival scorecard: how the full serving
// stack — Controller, OnlineLearner, Guard — survived the spec's drift
// and fault schedule. Summaries are deterministic (same spec, identical
// summary, any GOMAXPROCS, race detector on or off) and encode
// canonically, so the named scenarios pin them as golden artifacts.
type Summary struct {
	// Scenario identifies the spec; Seed/Nodes/DurationDays echo its
	// shape so a golden is self-describing.
	Scenario     string  `json:"scenario"`
	Seed         int64   `json:"seed"`
	Nodes        int     `json:"nodes"`
	DurationDays float64 `json:"duration_days"`
	// Guarded reports whether the run had production guardrails.
	Guarded bool `json:"guarded"`
	// InitialVersion is the version serving at event zero.
	InitialVersion string `json:"initial_version"`

	Stream    StreamSummary    `json:"stream"`
	Survival  SurvivalSummary  `json:"survival"`
	Lifecycle LifecycleSummary `json:"lifecycle"`
	// Learner is the stack's own accounting (experience-stream drops,
	// epochs, and — when guarded — GuardStats: vetoes by reason, budget
	// trip/recover transitions, probation outcomes).
	Learner uerl.LearnerStats `json:"learner"`
	// Fleet reports the distributed serving layer's fault arc; nil for
	// single-process scenarios (omitted from their goldens).
	Fleet *FleetSummary `json:"fleet,omitempty"`
}

// FleetSummary scores the distributed serving layer: what the
// coordinator survived (failovers, rejoins, replay traffic), what the
// journal absorbed (dedup, trim), and what degradation the served
// decision stream carried. Degraded/staleness counts come from the
// runner's decision observer — the served stream itself — never from
// Recommend-path coordinator counters, which concurrent probers could
// otherwise perturb.
type FleetSummary struct {
	Workers        int `json:"workers"`
	Failovers      int `json:"failovers"`
	Rejoins        int `json:"rejoins"`
	OrphanNodes    int `json:"orphan_nodes"`
	ReplayedNodes  int `json:"replayed_nodes"`
	ReplayedEvents int `json:"replayed_events"`
	// AckedEvents counts events an owner confirmed applied; the journal
	// counters say what ingestion appended, deduplicated as redelivered,
	// and trimmed past the replay window.
	AckedEvents     uint64 `json:"acked_events"`
	JournalAppended uint64 `json:"journal_appended"`
	JournalDeduped  uint64 `json:"journal_deduped"`
	JournalTrimmed  uint64 `json:"journal_trimmed"`
	// DegradedDecisions counts served decisions answered conservatively
	// because the node's owner couldn't; MaxStaleEvents is the largest
	// staleness bound any served decision carried.
	DegradedDecisions uint64 `json:"degraded_decisions"`
	MaxStaleEvents    int    `json:"max_stale_events"`
	// WorkerStates is the end-of-run health line per worker, id order.
	WorkerStates []WorkerSummary `json:"worker_states"`
}

// WorkerSummary is one worker's end-of-run health line.
type WorkerSummary struct {
	ID         int    `json:"id"`
	State      string `json:"state"`
	OwnedNodes int    `json:"owned_nodes"`
	// ServingVersion is what the worker actually serves (empty when the
	// worker ended unreachable).
	ServingVersion string `json:"serving_version,omitempty"`
	// Vetoes is the worker guard's suppressed-mitigation count. A killed
	// worker's ledger dies with it — a rejoined worker restarts from
	// zero, so these are per-incarnation, not a stream total.
	Vetoes uint64 `json:"vetoes,omitempty"`
}

// StreamSummary describes the compiled event stream the stack was fed.
type StreamSummary struct {
	Events        int `json:"events"`
	GeneratedUEs  int `json:"generated_ues"`
	InjectedUEs   int `json:"injected_ues"`
	Dropped       int `json:"dropped"`
	Delayed       int `json:"delayed"`
	Duplicated    int `json:"duplicated"`
	AttackWindows int `json:"attack_windows"`
}

// SurvivalSummary scores the served decision stream against realized
// outcomes — the metrics that say whether the stack degraded gracefully
// rather than merely whether it ran.
type SurvivalSummary struct {
	// LostNodeHours is the total realized cost (UE + mitigation
	// node-hours) the fleet paid under the serving stack.
	LostNodeHours       float64 `json:"lost_node_hours"`
	UENodeHours         float64 `json:"ue_node_hours"`
	MitigationNodeHours float64 `json:"mitigation_node_hours"`
	Mitigations         int     `json:"mitigations"`
	// Recall is overall served recall; RecallUnderAttack restricts the
	// outcome set to UEs inside injected attack windows (0 when the
	// scenario injects none).
	Recall            float64 `json:"recall"`
	RecallUnderAttack float64 `json:"recall_under_attack"`
	AttackUEs         int     `json:"attack_ues"`
	AttackMitigated   int     `json:"attack_mitigated"`
	// VetoedDecisions counts decisions a tripped budget degraded to
	// ActionNone; VetoedDuringAttack the subset inside attack windows.
	VetoedDecisions    uint64 `json:"vetoed_decisions"`
	VetoedDuringAttack uint64 `json:"vetoed_during_attack"`
	// ContractViolations counts graceful-degradation contract breaches
	// observed on the served stream (always 0 — Run fails otherwise; the
	// field keeps the invariant visible in every golden).
	ContractViolations int `json:"contract_violations"`
}

// LifecycleSummary condenses the audit log.
type LifecycleSummary struct {
	// EventCounts tallies audit events by kind (drift, retrain, promote,
	// budget-trip, budget-recover, rollback, ...).
	EventCounts map[string]int `json:"event_counts"`
	// FinalGeneration and ServingVersion identify where serving landed;
	// Lineage is the served model's version chain, newest first.
	FinalGeneration int      `json:"final_generation"`
	ServingVersion  string   `json:"serving_version"`
	Lineage         []string `json:"lineage"`
	// SwapChurn counts hot swaps of the serving policy (promotions +
	// rollbacks) — the stability metric a thrashing lifecycle fails.
	SwapChurn int `json:"swap_churn"`
}

// Run compiles and executes the scenario, driving the live stack over
// the compiled stream and scoring survival. It returns an error if the
// spec is invalid or the run breaches the graceful-degradation contract:
// serving must never panic, and every vetoed decision must serve
// ActionNone.
func Run(spec Spec) (Summary, error) {
	c, err := Compile(spec)
	if err != nil {
		return Summary{}, err
	}
	return RunCompiled(c)
}

// RunCompiled executes an already-compiled scenario.
func RunCompiled(c *Compiled) (sum Summary, err error) {
	spec := c.Spec
	initial, err := initialPolicy(spec.Lifecycle.InitialPolicy)
	if err != nil {
		return Summary{}, err
	}

	// The contract says serving never panics; a panic anywhere in the
	// stack is a scenario failure, not a crash of the harness.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("scenario %q: serving stack panicked: %v", spec.Name, r)
		}
	}()

	// Single-process scenarios serve from one Controller; a Serving
	// section swaps in the distributed fleet behind the same interface.
	var (
		serving uerl.Serving
		ctl     *uerl.Controller
		coord   *fleet.Coordinator
		tr      *fleet.ChanTransport
	)
	if spec.Serving != nil {
		coord, tr, err = buildFleet(spec, initial, c)
		if err != nil {
			return Summary{}, err
		}
		serving = coord
	} else {
		ctl = uerl.NewController(initial)
		serving = ctl
	}
	opts, g := learnerOptions(spec, ctl, c)

	shadowCfg := evalx.ShadowConfig{
		MitigationCostNodeHours: c.MitigationCostNodeMinutes / 60,
		Restartable:             c.Restartable,
	}
	// Two scoreboards over the identical served stream: one sees every
	// realized UE, the other only the injected-attack subset — their
	// recalls are the overall and under-attack survival metrics.
	served := evalx.NewShadowEval("served", shadowCfg)
	attack := evalx.NewShadowEval("attack", shadowCfg)
	var (
		mitigations        int
		vetoed             uint64
		vetoedDuringAttack uint64
		violations         int
		degradedDecisions  uint64
		maxStale           int
	)
	opts = append(opts,
		uerl.WithDecisionObserver(func(d uerl.Decision) {
			served.Decision(d.Node, d.Time, d.Mitigate())
			attack.Decision(d.Node, d.Time, d.Mitigate())
			if d.Mitigate() {
				mitigations++
			}
			if d.Vetoed {
				vetoed++
				if c.InAttack(d.Time) {
					vetoedDuringAttack++
				}
				if d.Action != uerl.ActionNone {
					violations++
				}
			}
			// The distributed-serving half of the graceful-degradation
			// contract: a degraded answer is always conservative.
			if d.Degraded {
				degradedDecisions++
				if d.Action != uerl.ActionNone {
					violations++
				}
			}
			if d.StaleEvents > maxStale {
				maxStale = d.StaleEvents
			}
		}),
		uerl.WithUEObserver(func(node int, at time.Time, realized float64) {
			served.UE(node, at, realized)
			if c.InAttack(at) {
				attack.UE(node, at, realized)
			}
		}),
	)
	learner := uerl.NewServingLearner(serving, opts...)

	if c.Probe != nil && ctl != nil {
		if stop := c.Probe(ctl); stop != nil {
			defer stop()
		}
	}
	// Worker faults strike just before the first event at or after their
	// scheduled time — the interleaving every run reproduces exactly.
	wf := c.WorkerFaults
	for _, e := range c.Events {
		for len(wf) > 0 && !wf[0].At.After(e.Time) {
			applyWorkerFault(tr, wf[0])
			wf = wf[1:]
		}
		learner.Process(e)
	}
	for _, f := range wf {
		applyWorkerFault(tr, f)
	}
	if coord != nil {
		// Settle the fleet: probe downed workers back in and flush every
		// node's journal backlog so the summary scores the recovered
		// steady state, not a mid-failover snapshot.
		coord.Reconcile()
	}

	stats := learner.Stats()
	events := learner.Events()
	if violations > 0 {
		return Summary{}, fmt.Errorf("scenario %q: %d vetoed decisions served an action other than ActionNone", spec.Name, violations)
	}
	if g != nil && stats.Guard != nil && stats.Guard.SuppressedMitigations != vetoed {
		return Summary{}, fmt.Errorf("scenario %q: guard accounted %d suppressed mitigations but the served stream carried %d vetoes",
			spec.Name, stats.Guard.SuppressedMitigations, vetoed)
	}

	servedRes := served.Result()
	attackRes := attack.Result()
	counts := map[string]int{}
	for _, ev := range events {
		counts[string(ev.Kind)]++
	}

	sum = Summary{
		Scenario:       spec.Name,
		Seed:           spec.Seed,
		Nodes:          spec.Fleet.Nodes,
		DurationDays:   spec.DurationDays,
		Guarded:        g != nil || (coord != nil && spec.Lifecycle.Guard != nil),
		InitialVersion: initial.Version(),
		Stream: StreamSummary{
			Events:        len(c.Events),
			GeneratedUEs:  c.GeneratedUEs,
			InjectedUEs:   c.InjectedUEs,
			Dropped:       c.Dropped,
			Delayed:       c.Delayed,
			Duplicated:    c.Duplicated,
			AttackWindows: len(c.AttackWindows),
		},
		Survival: SurvivalSummary{
			LostNodeHours:       round4(servedRes.TotalCost()),
			UENodeHours:         round4(servedRes.UECost),
			MitigationNodeHours: round4(servedRes.MitigationCost),
			Mitigations:         servedRes.Metrics.Mitigations,
			Recall:              round4(servedRes.Metrics.Recall()),
			RecallUnderAttack:   round4(attackRes.Metrics.Recall()),
			AttackUEs:           attackRes.UEs,
			AttackMitigated:     attackRes.Metrics.TPs,
			VetoedDecisions:     vetoed,
			VetoedDuringAttack:  vetoedDuringAttack,
			ContractViolations:  violations,
		},
		Lifecycle: LifecycleSummary{
			EventCounts:     counts,
			FinalGeneration: stats.Generation,
			ServingVersion:  stats.ServingVersion,
			Lineage:         lineageChain(initial.Version(), stats.ServingVersion, events),
			SwapChurn:       counts[string(uerl.LifecyclePromote)] + counts[string(uerl.LifecycleRollback)],
		},
		Learner: stats,
	}
	if coord != nil {
		sum.Fleet = fleetSummary(coord, spec.Serving.Workers, degradedDecisions, maxStale)
	}
	return sum, nil
}

// fleetSummary condenses the coordinator's end-of-run stats plus the
// served stream's degradation accounting into the summary section.
func fleetSummary(coord *fleet.Coordinator, workers int, degraded uint64, maxStale int) *FleetSummary {
	st := coord.Stats()
	fs := &FleetSummary{
		Workers:           workers,
		Failovers:         st.Failovers,
		Rejoins:           st.Rejoins,
		OrphanNodes:       st.OrphanNodes,
		ReplayedNodes:     st.ReplayedNodes,
		ReplayedEvents:    st.ReplayedEvents,
		AckedEvents:       st.AckedEvents,
		JournalAppended:   st.Journal.Appended,
		JournalDeduped:    st.Journal.Deduped,
		JournalTrimmed:    st.Journal.Trimmed,
		DegradedDecisions: degraded,
		MaxStaleEvents:    maxStale,
	}
	for _, w := range st.Workers {
		ws := WorkerSummary{ID: w.ID, State: string(w.State), OwnedNodes: w.OwnedNodes}
		if w.Stats != nil {
			ws.ServingVersion = w.Stats.ServingVersion
			if w.Stats.Guard != nil {
				ws.Vetoes = w.Stats.Guard.SuppressedMitigations
			}
		}
		fs.WorkerStates = append(fs.WorkerStates, ws)
	}
	return fs
}

// buildFleet lowers the serving section to an in-process fleet. A
// GuardSpec lowers to per-worker guards enforcing its budgets over the
// nodes each worker owns — a failover hands a node to a guard with no
// memory of the previous owner's spend, so the budget is an owner-local
// safety net, not a global ledger.
func buildFleet(spec Spec, initial uerl.Policy, c *Compiled) (*fleet.Coordinator, *fleet.ChanTransport, error) {
	sv := spec.Serving
	cfg := fleet.Config{
		Workers:          sv.Workers,
		Seed:             spec.Seed,
		Initial:          initial,
		JournalCapacity:  sv.JournalCapacity,
		DedupWindow:      time.Duration(sv.DedupWindowSeconds * float64(time.Second)),
		FailureThreshold: sv.FailureThreshold,
		RetryBackoff:     time.Duration(sv.RetryBackoffSeconds * float64(time.Second)),
	}
	if gs := spec.Lifecycle.Guard; gs != nil {
		guardOpts := []uerl.GuardOption{
			uerl.WithNodeCheckpointBudget(gs.NodeBudgetNodeHours, hours(gs.NodeWindowHours, 24*time.Hour)),
			uerl.WithFleetMitigationBudget(gs.FleetMitigations, hours(gs.FleetWindowHours, time.Hour)),
			uerl.WithGuardMitigationCost(c.MitigationCostNodeMinutes),
			uerl.WithGuardRestartable(c.Restartable),
		}
		cfg.NewWorker = func(id int) *fleet.Worker {
			return fleet.NewWorker(id, initial, fleet.WithWorkerGuard(guardOpts...))
		}
	}
	return fleet.NewInProcess(cfg)
}

// applyWorkerFault drives one compiled serving-layer fault into the
// transport's fault injector.
func applyWorkerFault(tr *fleet.ChanTransport, f WorkerFault) {
	switch f.Kind {
	case WorkerKill:
		tr.Kill(f.Worker)
	case WorkerHang:
		tr.Hang(f.Worker)
	case WorkerRejoin:
		tr.Rejoin(f.Worker)
	}
}

// EncodeSummary renders the summary canonically: two-space indented JSON
// with sorted map keys and a trailing newline — the golden artifact
// format. Byte-identical summaries mean byte-identical goldens.
func EncodeSummary(s Summary) ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding summary: %w", err)
	}
	return append(data, '\n'), nil
}

// initialPolicy resolves the spec's starting policy.
func initialPolicy(kind string) (uerl.Policy, error) {
	switch kind {
	case "", "always":
		return uerl.AlwaysPolicy(), nil
	case "never":
		return uerl.NeverPolicy(), nil
	}
	return nil, fmt.Errorf("scenario: unknown initial policy %q", kind)
}

// learnerOptions lowers the lifecycle spec to learner options, building
// the guard when the spec asks for one. With a nil controller (fleet
// mode) the guard is not built here — buildFleet lowers the GuardSpec
// budgets onto each worker instead.
func learnerOptions(spec Spec, ctl *uerl.Controller, c *Compiled) ([]uerl.LearnerOption, *uerl.Guard) {
	l := spec.Lifecycle
	driftThreshold := l.DriftThreshold
	if driftThreshold == 0 {
		driftThreshold = 8
	}
	shadowUEs := 1
	if l.ShadowUEs != nil {
		shadowUEs = *l.ShadowUEs
	}
	opts := []uerl.LearnerOption{
		uerl.WithLearnerSeed(spec.Seed),
		uerl.WithCostSource(c.Cost),
		uerl.WithLearnerMitigationCost(c.MitigationCostNodeMinutes),
		uerl.WithLearnerRestartable(c.Restartable),
		uerl.WithDriftDetection(driftThreshold, orDefault(l.DriftWindow, 256)),
		uerl.WithRetraining(orDefault(l.RetrainMin, 256), orDefault(l.EpochSteps, 64)),
		uerl.WithShadowGate(orDefault(l.ShadowDecisions, 128), shadowUEs),
	}
	if l.ExperienceCapacity > 0 {
		opts = append(opts, uerl.WithExperienceCapacity(l.ExperienceCapacity))
	}
	gs := l.Guard
	if gs == nil || ctl == nil {
		return opts, nil
	}
	hook := uerl.AutoApprove()
	if gs.Approve == "deny" {
		hook = uerl.DenyPromotions("scenario promotion freeze")
	}
	tol := 5.0
	if gs.ProbationToleranceNH != nil {
		tol = *gs.ProbationToleranceNH
	}
	g := uerl.NewGuard(ctl,
		uerl.WithNodeCheckpointBudget(gs.NodeBudgetNodeHours, hours(gs.NodeWindowHours, 24*time.Hour)),
		uerl.WithFleetMitigationBudget(gs.FleetMitigations, hours(gs.FleetWindowHours, time.Hour)),
		uerl.WithPromotionBudget(gs.PromotionsPerDay),
		uerl.WithApprovalHook(hook),
		uerl.WithProbation(orDefault(gs.ProbationDecisions, 4096), tol),
		uerl.WithGuardMitigationCost(c.MitigationCostNodeMinutes),
		uerl.WithGuardRestartable(c.Restartable),
	)
	return append(opts, uerl.WithGuard(g)), g
}

// orDefault substitutes def for a zero spec field.
func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// hours converts a spec hour count to a duration, def when zero.
func hours(h float64, def time.Duration) time.Duration {
	if h == 0 {
		return def
	}
	return time.Duration(h * float64(time.Hour))
}

// round4 rounds to 4 decimals: node-hour totals and recall ratios stay
// readable in goldens without losing the regression signal.
func round4(v float64) float64 {
	return math.Round(v*1e4) / 1e4
}

// lineageChain reconstructs the served model's version chain, newest
// first, from the Parent links the audit log recorded — after a rollback
// it ends where serving actually landed, not at the last promotion.
func lineageChain(initial, serving string, events []uerl.LifecycleEvent) []string {
	parent := map[string]string{}
	for _, ev := range events {
		if ev.ModelVersion != "" && ev.Parent != "" {
			parent[ev.ModelVersion] = ev.Parent
		}
	}
	chain := []string{}
	seen := map[string]bool{}
	for v := serving; v != "" && !seen[v]; v = parent[v] {
		chain = append(chain, v)
		seen[v] = true
	}
	if len(chain) == 0 || chain[len(chain)-1] != initial {
		chain = append(chain, initial)
	}
	return chain
}
