package scenario

import (
	"bytes"
	"testing"
)

// FuzzScenarioSpec drives arbitrary bytes through the spec codec and
// validator: decoding must never panic, a valid spec must survive
// decode→validate→encode as a fixed point, and the validator must keep
// rejecting what it rejected (NaN smuggled through floats, negative
// durations, overlapping schedules) after a round trip.
func FuzzScenarioSpec(f *testing.F) {
	seed := validSpec()
	seed.Drift = []DriftPhase{{AtDay: 3, Overlay: OverlaySpec{CERateMult: 4}}}
	seed.Faults = []FaultSpec{
		{Kind: FaultBurst, StartDay: 5, UEs: 8, Trains: 2, CEPrefix: 16},
		{Kind: FaultDuplicate, StartDay: 1, EndDay: 2, Fraction: 0.5},
	}
	if enc, err := Encode(seed); err == nil {
		f.Add(enc)
	}
	f.Add([]byte(`{"name":"x","seed":3,"duration_days":7,"fleet":{"nodes":8}}`))
	f.Add([]byte(`{"name":"x","duration_days":-1,"fleet":{"nodes":8}}`))
	f.Add([]byte(`{"name":"x","duration_days":1e400}`))
	f.Add([]byte(`{"name":"","faults":[{"kind":"burst"}]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Decode(data)
		if err != nil {
			return
		}
		if spec.Validate() != nil {
			return
		}
		enc1, err := Encode(spec)
		if err != nil {
			t.Fatalf("valid spec failed to encode: %v", err)
		}
		dec, err := Decode(enc1)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v\n%s", err, enc1)
		}
		if err := dec.Validate(); err != nil {
			t.Fatalf("validity lost across a round trip: %v\n%s", err, enc1)
		}
		enc2, err := Encode(dec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("Encode∘Decode not a fixed point:\n%s\nvs\n%s", enc1, enc2)
		}
	})
}
